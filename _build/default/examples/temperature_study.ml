(* A compact version of the paper's RQ3 temperature study (Fig. 11) on one
   category, showing how sampling temperature trades repair flexibility
   against semantic integrity.

   Run with: dune exec examples/temperature_study.exe *)

let () =
  let cases = Dataset.Corpus.by_category Miri.Diag.Stack_borrow in
  Printf.printf "sweeping temperature over %d stack-borrow cases x 5 seeds\n\n"
    (List.length cases);
  let rows =
    List.map
      (fun temperature ->
        let reports =
          List.concat_map
            (fun seed ->
              Rustbrain.Pipeline.run_campaign
                { Rustbrain.Pipeline.default_config with
                  Rustbrain.Pipeline.temperature; seed }
                cases)
            [ 1; 2; 3; 4; 5 ]
        in
        let n = List.length reports in
        let passes =
          List.length (List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed) reports)
        in
        let execs =
          List.length (List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.semantic) reports)
        in
        [ Printf.sprintf "%.1f" temperature;
          Statkit.Table.pct (float_of_int passes /. float_of_int n);
          Statkit.Table.ci (Statkit.Stats.wilson_ci ~successes:passes n);
          Statkit.Table.pct (float_of_int execs /. float_of_int n);
          Statkit.Table.ci (Statkit.Stats.wilson_ci ~successes:execs n) ])
      [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
  in
  print_string
    (Statkit.Table.render
       ~header:[ "temp"; "pass"; "pass CI"; "exec"; "exec CI" ]
       rows)

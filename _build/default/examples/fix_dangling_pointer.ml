(* Repairing one corpus case end-to-end with the full RustBrain pipeline,
   showing the fast-thinking solutions, the slow-thinking agent trace, and
   the before/after code.

   Run with: dune exec examples/fix_dangling_pointer.exe *)

let () =
  let case = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  Printf.printf "case: %s — %s\n\n" case.Dataset.Case.name case.Dataset.Case.description;
  Printf.printf "--- buggy program ---\n%s\n" case.Dataset.Case.buggy_src;

  (* what Miri says about it *)
  let inputs = match case.Dataset.Case.probes with p :: _ -> p | [] -> [||] in
  (match
     Miri.Machine.analyze
       ~config:{ Miri.Machine.default_config with Miri.Machine.inputs }
       (Dataset.Case.buggy case)
   with
  | Miri.Machine.Ran { Miri.Machine.outcome = Miri.Machine.Ub d; _ } ->
    Printf.printf "detected: %s\n\n" (Miri.Diag.to_string d)
  | _ -> print_endline "unexpectedly clean?\n");

  (* full pipeline *)
  let session = Rustbrain.Pipeline.create_session Rustbrain.Pipeline.default_config in
  let report = Rustbrain.Pipeline.repair session case in
  print_endline "--- slow-thinking trace ---";
  List.iter (fun line -> Printf.printf "  %s\n" line) report.Rustbrain.Report.trace;
  Printf.printf "\nerror sequence N = {%s}\n"
    (String.concat ", " (List.map string_of_int report.Rustbrain.Report.n_sequence));
  Printf.printf "%s\n" (Rustbrain.Report.summary_line report);
  Printf.printf "simulated cost: %.1fs over %d LLM call(s), %d tokens\n\n"
    report.Rustbrain.Report.seconds report.Rustbrain.Report.llm_calls
    report.Rustbrain.Report.tokens;

  (* show that the reference behaviour is matched *)
  print_endline "--- reference fix (developer) ---";
  print_string case.Dataset.Case.fixed_src

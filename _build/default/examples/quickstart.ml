(* Quickstart: the public API in five minutes.

   1. Parse a MiniRust program.
   2. Detect its undefined behaviour with the Miri substrate.
   3. Enumerate repair candidates with the rule engine.
   4. Apply one and verify the repaired program.
   5. Reproduce the paper's Fig. 3 observation: the *same* unsafe API
      (`get_unchecked`) needs *different* substitutions in different
      contexts.

   Run with: dune exec examples/quickstart.exe *)

let banner title = Printf.printf "\n== %s ==\n" title

(* A small program with a use-after-free. *)
let src =
  {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = 41;
        dealloc(p as *mut i8, 8, 8);
        print(*p + 1);
    }
}
|}

let () =
  banner "1. parse";
  let program = Minirust.Parser.parse src in
  Printf.printf "parsed %d function(s), %d statement(s)\n"
    (List.length program.Minirust.Ast.funcs)
    (Minirust.Visit.count_stmts program);

  banner "2. detect UB";
  let diag =
    match Miri.Machine.analyze program with
    | Miri.Machine.Ran { Miri.Machine.outcome = Miri.Machine.Ub d; _ } ->
      Printf.printf "%s\n" (Miri.Diag.to_string d);
      d
    | _ -> failwith "expected UB"
  in

  banner "3. enumerate repair candidates";
  let ctx = { Repairs.Rule.program; diag = Some diag; panicked = None } in
  let candidates = Repairs.Candidates.enumerate ctx in
  List.iter
    (fun c ->
      Printf.printf "- [%s] %s\n"
        (Repairs.Rule.fix_kind_name c.Repairs.Candidates.kind)
        c.Repairs.Candidates.edit.Minirust.Edit.label)
    candidates;

  banner "4. apply the dealloc-reordering fix and verify";
  let fix =
    List.find
      (fun c ->
        c.Repairs.Candidates.kind = Repairs.Rule.Modify
        && String.length c.Repairs.Candidates.edit.Minirust.Edit.label > 4)
      candidates
  in
  let repaired =
    match Minirust.Edit.apply fix.Repairs.Candidates.edit program with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  (match Miri.Machine.analyze repaired with
  | Miri.Machine.Ran r when Miri.Machine.is_clean r ->
    Printf.printf "repaired with `%s`; output: [%s]\n" fix.Repairs.Candidates.edit.Minirust.Edit.label
      (String.concat "; " r.Miri.Machine.output)
  | Miri.Machine.Ran r ->
    Printf.printf "candidate `%s` did not fully fix (%d residual error(s)) — \
                   this is exactly why the pipeline verifies every candidate\n"
      fix.Repairs.Candidates.edit.Minirust.Edit.label r.Miri.Machine.error_count
  | Miri.Machine.Compile_error msg -> Printf.printf "broke the build: %s\n" msg);

  banner "5. Fig. 3 — one API, two different correct substitutions";
  (* context A: the index is wrong, checked indexing (panicking) is right *)
  let ctx_a =
    Minirust.Parser.parse
      {|
fn main() {
    let mut a = [10, 20, 30];
    let mut i = input(0);
    unsafe { print(a.get_unchecked(i)); }
}
|}
  in
  (* context B: the loop bound is wrong; the semantic fix repairs the bound *)
  let ctx_b =
    Minirust.Parser.parse
      {|
fn main() {
    let mut a = [10, 20, 30];
    let mut i = 0;
    let mut sum = 0;
    while i <= a.len() as i64 {
        unsafe { sum = sum + a.get_unchecked(i); }
        i = i + 1;
    }
    print(sum);
}
|}
  in
  List.iter
    (fun (name, program, inputs) ->
      let diag =
        match
          Miri.Machine.analyze
            ~config:{ Miri.Machine.default_config with Miri.Machine.inputs } program
        with
        | Miri.Machine.Ran { Miri.Machine.outcome = Miri.Machine.Ub d; _ } -> Some d
        | _ -> None
      in
      let ctx = { Repairs.Rule.program; diag; panicked = None } in
      let kinds =
        List.sort_uniq compare
          (List.map
             (fun c -> Repairs.Rule.fix_kind_name c.Repairs.Candidates.kind)
             (Repairs.Candidates.enumerate ctx))
      in
      Printf.printf "%s: get_unchecked repairable via {%s}\n" name
        (String.concat ", " kinds))
    [ ("context A (bad index)", ctx_a, [| 7L |]);
      ("context B (bad loop bound)", ctx_b, [||]) ];
  print_endline "\nSame API, different contexts, different appropriate fixes —";
  print_endline "the paper's motivation for feature-driven (not fixed) repair plans."

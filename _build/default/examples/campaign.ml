(* A repair campaign over the full corpus with one shared session —
   the setting where the paper's S3 feedback mechanism pays off: later
   repairs of similar errors recall earlier solutions and get cheaper.

   Run with: dune exec examples/campaign.exe *)

let () =
  let cfg = Rustbrain.Pipeline.default_config in
  let session = Rustbrain.Pipeline.create_session cfg in
  let reports = List.map (Rustbrain.Pipeline.repair session) Dataset.Corpus.all in
  print_endline "case-by-case:";
  List.iter (fun r -> print_endline ("  " ^ Rustbrain.Report.summary_line r)) reports;

  let pass = Statkit.Stats.proportion (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed) reports in
  let exec = Statkit.Stats.proportion (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.semantic) reports in
  Printf.printf "\ncampaign: %d cases, pass %.1f%%, exec %.1f%%\n"
    (List.length reports) (100.0 *. pass) (100.0 *. exec);

  let hits, misses =
    List.partition (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.feedback_hit) reports
  in
  let mean sel = Statkit.Stats.mean (List.map (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.seconds) sel) in
  Printf.printf
    "feedback: %d repairs short-circuited through a recalled solution\n\
    \  with recall: %.1fs mean   without: %.1fs mean\n"
    (List.length hits) (mean hits) (mean misses);

  let stats = Rustbrain.Pipeline.llm_stats session in
  Printf.printf "total simulated time %.1fs, %d LLM calls, %d tokens in / %d out\n"
    (Rb_util.Simclock.now (Rustbrain.Pipeline.clock session))
    stats.Llm_sim.Client.calls stats.Llm_sim.Client.tokens_in
    stats.Llm_sim.Client.tokens_out

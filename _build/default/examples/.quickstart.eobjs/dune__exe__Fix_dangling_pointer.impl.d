examples/fix_dangling_pointer.ml: Dataset List Miri Option Printf Rustbrain String

examples/borrow_trace.ml: List Minirust Miri Printf

examples/temperature_study.mli:

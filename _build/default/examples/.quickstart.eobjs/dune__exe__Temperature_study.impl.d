examples/temperature_study.ml: Dataset List Miri Printf Rustbrain Statkit

examples/borrow_trace.mli:

examples/fix_dangling_pointer.mli:

examples/campaign.ml: Dataset List Llm_sim Printf Rb_util Rustbrain Statkit

examples/campaign.mli:

examples/quickstart.mli:

examples/quickstart.ml: List Minirust Miri Printf Repairs String

lib/repairs/rule.ml: Ast Edit Hashtbl Int64 List Minirust Miri Option Printf String Visit

lib/repairs/rule.mli: Minirust Miri

lib/repairs/corrupt.mli: Minirust Rb_util

lib/repairs/corrupt.ml: Ast Edit Int64 List Minirust Rb_util Visit

lib/repairs/candidates.mli: Llm_sim Minirust Rule

lib/repairs/candidates.ml: Ast Edit List Llm_sim Minirust Rule

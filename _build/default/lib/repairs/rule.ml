open Minirust
open Ast

type fix_kind = Replace | Assert | Modify

let fix_kind_name = function
  | Replace -> "replace"
  | Assert -> "assert"
  | Modify -> "modify"

type proposal = { edit : Edit.t; kind : fix_kind }

type context = {
  program : program;
  diag : Miri.Diag.t option;
  panicked : string option;
}

type t = { rule_name : string; generate : context -> proposal list }

(* ------------------------------------------------------------------ *)
(* Scanning helpers *)

let all_stmts program =
  let acc = ref [] in
  Visit.iter_stmts (fun st -> acc := st :: !acc) program;
  List.rev !acc

(* Leaf statements only (no block-structured statements): the natural edit
   targets. *)
let leaf_stmts program =
  List.filter
    (fun st ->
      match st.s with
      | S_if _ | S_while _ | S_block _ | S_unsafe _ -> false
      | S_let _ | S_assign _ | S_expr _ | S_assert _ | S_panic _ | S_return _
      | S_print _ | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ->
        true)
    (all_stmts program)

let stmt_has_place pred st =
  let found = ref false in
  let _ =
    Edit.map_places_in_stmt
      (fun p ->
        if pred p then begin
          found := true;
          Some p
        end
        else None)
      st
  in
  !found

let stmt_has_expr pred st =
  let found = ref false in
  let _ =
    Edit.map_exprs_in_stmt
      (fun e ->
        if pred e then begin
          found := true;
          Some e
        end
        else None)
      st
  in
  !found

let is_unchecked = function P_index_unchecked _ -> true | _ -> false

(* Enclosing sibling list of a statement id, with its index. *)
let siblings_of program sid : (stmt list * int) option =
  let result = ref None in
  let rec scan_block (b : block) =
    List.iteri (fun i st -> if st.sid = sid then result := Some (b, i)) b;
    List.iter scan_children b
  and scan_children st =
    match st.s with
    | S_if (_, t, f) ->
      scan_block t;
      scan_block f
    | S_while (_, body) | S_block body | S_unsafe body -> scan_block body
    | S_let _ | S_assign _ | S_expr _ | S_assert _ | S_panic _ | S_return _
    | S_print _ | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ->
      ()
  in
  List.iter (fun f -> scan_block f.body) program.funcs;
  !result

let failing_stmt ctx =
  match ctx.diag with
  | Some d when d.Miri.Diag.stmt_hint >= 0 -> Visit.find_stmt ctx.program d.Miri.Diag.stmt_hint
  | _ -> None

let diag_kind ctx = Option.map (fun d -> d.Miri.Diag.kind) ctx.diag

(* let-pattern maps ------------------------------------------------- *)

(* locals bound to a raw pointer derived from another local:
   let p = &mut x as *mut T;   let p = &raw mut x;   let p = &raw const x; *)
let raw_ptr_sources program : (string * (string * mutability)) list =
  let acc = ref [] in
  Visit.iter_stmts
    (fun st ->
      match st.s with
      | S_let (p, _, { e = E_raw_of (m, P_var x); _ }) -> acc := (p, (x, m)) :: !acc
      | S_let (p, _, { e = E_cast ({ e = E_ref (m, P_var x); _ }, T_raw _); _ }) ->
        acc := (p, (x, m)) :: !acc
      | _ -> ())
    program;
  !acc

(* locals bound to an exposed address of another local:
   let a = &raw const x as usize;   let a = &mut x as *mut T as usize; *)
let addr_sources program : (string * string) list =
  let acc = ref [] in
  Visit.iter_stmts
    (fun st ->
      match st.s with
      | S_let (a, _, { e = E_cast ({ e = E_raw_of (_, P_var x); _ }, T_int _); _ }) ->
        acc := (a, x) :: !acc
      | S_let
          ( a,
            _,
            { e =
                E_cast
                  ( { e = E_cast ({ e = E_ref (_, P_var x); _ }, T_raw _); _ },
                    T_int _ );
              _ } ) ->
        acc := (a, x) :: !acc
      | _ -> ())
    program;
  !acc

(* locals bound to heap allocations (possibly through one cast):
   let p = alloc(s, a);   let p = alloc(s, a) as *mut T; *)
let alloc_lets program : (stmt * string * expr * expr * ty option) list =
  let acc = ref [] in
  Visit.iter_stmts
    (fun st ->
      match st.s with
      | S_let (p, _, { e = E_alloc (size, align); _ }) ->
        acc := (st, p, size, align, None) :: !acc
      | S_let (p, _, { e = E_cast ({ e = E_alloc (size, align); _ }, (T_raw _ as t)); _ })
        ->
        acc := (st, p, size, align, Some t) :: !acc
      | _ -> ())
    program;
  List.rev !acc

(* array literal lengths: let a = [..];  let a: [T; n] = ...; *)
let array_lens program : (string * int) list =
  let acc = ref [] in
  Visit.iter_stmts
    (fun st ->
      match st.s with
      | S_let (a, _, { e = E_array es; _ }) -> acc := (a, List.length es) :: !acc
      | S_let (a, _, { e = E_repeat (_, n); _ }) -> acc := (a, n) :: !acc
      | S_let (a, Some (T_array (_, n)), _) -> acc := (a, n) :: !acc
      | _ -> ())
    program;
  !acc

let named_fn program name = List.exists (fun f -> String.equal f.fname name) program.funcs

(* trace an expression through casts to a named function item *)
let rec fn_item_of program (e : expr) : string option =
  match e.e with
  | E_place (P_var f) when named_fn program f -> Some f
  | E_cast (inner, _) -> fn_item_of program inner
  | E_transmute (_, inner) -> fn_item_of program inner
  | _ -> None

let mk_edit label actions = { Edit.label; actions }

(* ------------------------------------------------------------------ *)
(* Individual rules *)

let checked_indexing =
  { rule_name = "checked_indexing";
    generate =
      (fun ctx ->
        List.filter_map
          (fun st ->
            if stmt_has_place is_unchecked st then begin
              let st', hits =
                Edit.map_places_in_stmt
                  (function P_index_unchecked (b, i) -> Some (P_index (b, i)) | _ -> None)
                  st
              in
              if hits > 0 then
                Some
                  { edit =
                      mk_edit
                        (Printf.sprintf "replace get_unchecked with checked indexing (stmt %d)"
                           st.sid)
                        [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                    kind = Replace }
              else None
            end
            else None)
          (leaf_stmts ctx.program)) }

let bounds_assert =
  { rule_name = "bounds_assert";
    generate =
      (fun ctx ->
        let proposals = ref [] in
        List.iter
          (fun st ->
            let sites = ref [] in
            let _ =
              Edit.map_places_in_stmt
                (fun p ->
                  match p with
                  | P_index_unchecked (base, idx) ->
                    sites := (base, idx) :: !sites;
                    Some p
                  | _ -> None)
                st
            in
            List.iter
              (fun (base, idx) ->
                let len_i64 = cast_e (mk (E_len (read_e base))) (T_int I64) in
                let cond =
                  binop_e And
                    (binop_e Ge idx (int_e 0))
                    (binop_e Lt idx len_i64)
                in
                let assert_stmt = assert_s cond "index out of bounds" in
                proposals :=
                  { edit =
                      mk_edit
                        (Printf.sprintf "assert index in bounds before stmt %d" st.sid)
                        [ Edit.Insert_before (st.sid, assert_stmt) ];
                    kind = Assert }
                  :: !proposals)
              !sites)
          (leaf_stmts ctx.program);
        !proposals) }

let null_assert =
  { rule_name = "null_assert";
    generate =
      (fun ctx ->
        match failing_stmt ctx with
        | None -> []
        | Some st ->
          let ptr_vars = ref [] in
          let _ =
            Edit.map_places_in_stmt
              (fun p ->
                match p with
                | P_deref { e = E_place (P_var v); _ } ->
                  ptr_vars := v :: !ptr_vars;
                  Some p
                | _ -> None)
              st
          in
          List.map
            (fun v ->
              let cond =
                binop_e Ne (cast_e (var_e v) (T_int Usize)) (int_e ~w:Usize 0)
              in
              { edit =
                  mk_edit
                    (Printf.sprintf "assert %s is non-null before stmt %d" v st.sid)
                    [ Edit.Insert_before (st.sid, assert_s cond "null pointer") ];
                kind = Assert })
            (List.sort_uniq compare !ptr_vars)) }

let remove_dealloc =
  { rule_name = "remove_dealloc";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Alloc -> true | _ -> false
        in
        if not relevant then []
        else
          List.filter_map
            (fun st ->
              match st.s with
              | S_dealloc _ ->
                Some
                  { edit =
                      mk_edit
                        (Printf.sprintf "remove duplicate dealloc (stmt %d)" st.sid)
                        [ Edit.Replace_stmt (st.sid, []) ];
                    kind = Modify }
              | _ -> None)
            (leaf_stmts ctx.program)) }

let add_dealloc =
  { rule_name = "add_dealloc";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Alloc -> true | _ -> false
        in
        if not relevant then []
        else
          List.filter_map
            (fun (st, p, size, align, _) ->
              match siblings_of ctx.program st.sid with
              | None -> None
              | Some (sibs, _) -> (
                match List.rev sibs with
                | [] -> None
                | last :: _ ->
                  let dealloc =
                    unsafe_s [ mks (S_dealloc (var_e p, size, align)) ]
                  in
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "free %s at end of its block" p)
                          [ Edit.Insert_after (last.sid, dealloc) ];
                      kind = Modify }))
            (alloc_lets ctx.program)) }

let move_dealloc =
  { rule_name = "move_dealloc";
    generate =
      (fun ctx ->
        let deallocs =
          List.filter (fun st -> match st.s with S_dealloc _ -> true | _ -> false)
            (leaf_stmts ctx.program)
        in
        List.concat_map
          (fun d ->
            let to_end =
              match siblings_of ctx.program d.sid with
              | Some (sibs, idx) when idx < List.length sibs - 1 ->
                let last = List.nth sibs (List.length sibs - 1) in
                [ { edit =
                      mk_edit
                        (Printf.sprintf "move dealloc (stmt %d) to end of block" d.sid)
                        [ Edit.Replace_stmt (d.sid, []);
                          Edit.Insert_after (last.sid, d) ];
                    kind = Modify } ]
              | _ -> []
            in
            let after_failure =
              match failing_stmt ctx with
              | Some f when f.sid <> d.sid ->
                [ { edit =
                      mk_edit
                        (Printf.sprintf "move dealloc (stmt %d) after failing stmt" d.sid)
                        [ Edit.Replace_stmt (d.sid, []);
                          Edit.Insert_after (f.sid, d) ];
                    kind = Modify } ]
              | _ -> []
            in
            to_end @ after_failure)
          deallocs) }

let align_fixes =
  { rule_name = "align_fixes";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Unaligned_pointer -> true | _ -> false
        in
        if not relevant then []
        else begin
          let proposals = ref [] in
          List.iter
            (fun st ->
              (* round literal offsets up to 8 *)
              let st', hits =
                Edit.map_exprs_in_stmt
                  (fun e ->
                    match e.e with
                    | E_offset (p, { e = E_int (n, w); _ })
                      when Int64.rem n 8L <> 0L ->
                      let rounded = Int64.mul (Int64.div (Int64.add n 7L) 8L) 8L in
                      Some (offset_e p (int64_e ~w rounded))
                    | _ -> None)
                  st
              in
              if hits > 0 then
                proposals :=
                  { edit =
                      mk_edit
                        (Printf.sprintf "round pointer offset up to 8 (stmt %d)" st.sid)
                        [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                    kind = Modify }
                  :: !proposals;
              (* raise an alloc's alignment to 8 *)
              let st'', hits2 =
                Edit.map_exprs_in_stmt
                  (fun e ->
                    match e.e with
                    | E_alloc (size, { e = E_int (a, w); _ })
                      when Int64.compare a 8L < 0 ->
                      Some (mk (E_alloc (size, int64_e ~w 8L)))
                    | _ -> None)
                  st
              in
              if hits2 > 0 then
                proposals :=
                  { edit =
                      mk_edit
                        (Printf.sprintf "allocate with 8-byte alignment (stmt %d)" st.sid)
                        [ Edit.Replace_stmt (st.sid, [ st'' ]) ];
                    kind = Modify }
                  :: !proposals;
              (* alignment assertion before the failing access *)
              match failing_stmt ctx with
              | Some f when f.sid = st.sid ->
                let ptr_vars = ref [] in
                let _ =
                  Edit.map_places_in_stmt
                    (fun p ->
                      match p with
                      | P_deref { e = E_place (P_var v); _ } ->
                        ptr_vars := v :: !ptr_vars;
                        Some p
                      | _ -> None)
                    st
                in
                List.iter
                  (fun v ->
                    let cond =
                      binop_e Eq
                        (binop_e Rem (cast_e (var_e v) (T_int Usize)) (int_e ~w:Usize 8))
                        (int_e ~w:Usize 0)
                    in
                    proposals :=
                      { edit =
                          mk_edit
                            (Printf.sprintf "assert %s is 8-byte aligned" v)
                            [ Edit.Insert_before (st.sid, assert_s cond "misaligned pointer") ];
                        kind = Assert }
                      :: !proposals)
                  (List.sort_uniq compare !ptr_vars)
              | _ -> ())
            (leaf_stmts ctx.program);
          !proposals
        end) }

let init_after_alloc =
  { rule_name = "init_after_alloc";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Validity -> true | _ -> false
        in
        if not relevant then []
        else
          List.filter_map
            (fun (st, p, size, _, cast_ty) ->
              match cast_ty with
              | Some (T_raw (Mut, T_int w)) ->
                (* zero each element the allocation can hold *)
                let elem_size = match w with I8 -> 1 | I16 -> 2 | I32 -> 4 | I64 | Usize -> 8 in
                let count =
                  match size.e with
                  | E_int (n, _) -> Int64.to_int n / elem_size
                  | _ -> 1
                in
                let writes =
                  List.init (max 1 count) (fun i ->
                      assign_s
                        (P_deref (offset_e (var_e p) (int_e i)))
                        (int_e ~w 0))
                in
                Some
                  { edit =
                      mk_edit
                        (Printf.sprintf "initialize %s after allocation" p)
                        [ Edit.Insert_after (st.sid, unsafe_s writes) ];
                    kind = Modify }
              | _ -> None)
            (alloc_lets ctx.program)) }

let bool_from_int =
  { rule_name = "bool_from_int";
    generate =
      (fun ctx ->
        List.concat_map
          (fun st ->
            if
              stmt_has_expr
                (fun e -> match e.e with E_transmute (T_bool, _) -> true | _ -> false)
                st
            then begin
              let st', hits =
                Edit.map_exprs_in_stmt
                  (fun e ->
                    match e.e with
                    | E_transmute (T_bool, ({ e = E_int (_, w); _ } as inner)) ->
                      Some (binop_e Ne inner (int_e ~w 0))
                    | E_transmute (T_bool, inner) ->
                      Some (binop_e Ne inner (int_e ~w:I8 0))
                    | _ -> None)
                  st
              in
              if hits > 0 then
                [ { edit =
                      mk_edit
                        (Printf.sprintf "derive bool with a comparison (stmt %d)" st.sid)
                        [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                    kind = Replace } ]
              else []
            end
            else [])
          (leaf_stmts ctx.program)) }

let transmute_to_cast =
  { rule_name = "transmute_to_cast";
    generate =
      (fun ctx ->
        List.concat_map
          (fun st ->
            let st', hits =
              Edit.map_exprs_in_stmt
                (fun e ->
                  match e.e with
                  | E_transmute ((T_int _ as t), inner) -> Some (cast_e inner t)
                  | _ -> None)
                st
            in
            if hits > 0 then
              [ { edit =
                    mk_edit (Printf.sprintf "replace transmute with `as` cast (stmt %d)" st.sid)
                      [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                  kind = Replace } ]
            else [])
          (leaf_stmts ctx.program)) }

let rederive_pointer =
  { rule_name = "rederive_pointer";
    generate =
      (fun ctx ->
        let sources = raw_ptr_sources ctx.program in
        match failing_stmt ctx with
        | None -> []
        | Some st ->
          let direct =
            (* *p -> x : bypass the stale pointer entirely *)
            List.filter_map
              (fun (p, (x, _m)) ->
                let st', hits =
                  Edit.map_places_in_stmt
                    (fun pl ->
                      match pl with
                      | P_deref { e = E_place (P_var v); _ } when String.equal v p ->
                        Some (P_var x)
                      | _ -> None)
                    st
                in
                if hits > 0 then
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "access %s directly instead of through %s" x p)
                          [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                      kind = Replace }
                else None)
              sources
          in
          let rederive =
            (* p = &raw mut x; just before the failing use: a fresh valid tag *)
            List.filter_map
              (fun (p, (x, m)) ->
                if
                  stmt_has_place
                    (function
                      | P_deref { e = E_place (P_var v); _ } -> String.equal v p
                      | _ -> false)
                    st
                then
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "re-derive %s from %s before the failing use" p x)
                          [ Edit.Insert_before
                              (st.sid, assign_s (P_var p) (raw_of_e m (P_var x))) ];
                      kind = Modify }
                else None)
              sources
          in
          direct @ rederive) }

let move_stmt_up =
  { rule_name = "move_stmt_up";
    generate =
      (fun ctx ->
        match failing_stmt ctx with
        | None -> []
        | Some st -> (
          match siblings_of ctx.program st.sid with
          | None -> []
          | Some (sibs, idx) ->
            List.filter_map
              (fun k ->
                if idx - k >= 0 then
                  let target = List.nth sibs (idx - k) in
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "move failing stmt %d up by %d" st.sid k)
                          [ Edit.Replace_stmt (st.sid, []);
                            Edit.Insert_before (target.sid, st) ];
                      kind = Modify }
                else None)
              [ 1; 2 ])) }

let provenance_fixes =
  { rule_name = "provenance_fixes";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Provenance -> true | _ -> false
        in
        if not relevant then []
        else begin
          let addr_map = addr_sources ctx.program in
          let from_var =
            (* `a as *const T` -> `&raw const x` when a = &raw const x as usize *)
            List.concat_map
              (fun st ->
                List.filter_map
                  (fun (a, x) ->
                    let st', hits =
                      Edit.map_exprs_in_stmt
                        (fun e ->
                          match e.e with
                          | E_cast ({ e = E_place (P_var v); _ }, T_raw (m, _))
                            when String.equal v a ->
                            Some (raw_of_e m (P_var x))
                          | _ -> None)
                        st
                    in
                    if hits > 0 then
                      Some
                        { edit =
                            mk_edit
                              (Printf.sprintf
                                 "derive the pointer from %s instead of integer %s" x a)
                              [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                          kind = Replace }
                    else None)
                  addr_map)
              (leaf_stmts ctx.program)
          in
          let expose =
            (* insert an explicit expose of a candidate source local *)
            match failing_stmt ctx with
            | None -> []
            | Some f ->
              let locals_with_address =
                let acc = ref [] in
                Visit.iter_exprs
                  (fun e ->
                    match e.e with
                    | E_raw_of (_, P_var x) | E_ref (_, P_var x) -> acc := x :: !acc
                    | _ -> ())
                  ctx.program;
                List.sort_uniq compare !acc
              in
              List.map
                (fun x ->
                  { edit =
                      mk_edit
                        (Printf.sprintf "expose the address of %s before the failing use" x)
                        [ Edit.Insert_before
                            ( f.sid,
                              let_s "_exposed"
                                (cast_e (raw_of_e Imm (P_var x)) (T_int Usize)) ) ];
                    kind = Modify })
                locals_with_address
          in
          from_var @ expose
        end) }

let fn_sig_fixes =
  { rule_name = "fn_sig_fixes";
    generate =
      (fun ctx ->
        let program = ctx.program in
        let proposals = ref [] in
        List.iter
          (fun st ->
            let _ =
              Edit.map_exprs_in_stmt
                (fun e ->
                  (match e.e with
                  | E_transmute (T_fn _, operand) -> (
                    match fn_item_of program operand with
                    | Some f_name -> (
                      match Ast.lookup_fn program f_name with
                      | Some f ->
                        let actual = T_fn (List.map snd f.params, f.ret) in
                        (* candidate 1: drop the transmute, use the item *)
                        let st1, h1 =
                          Edit.map_exprs_in_stmt
                            (fun e' ->
                              if e'.eid = e.eid then Some (var_e f_name) else None)
                            st
                        in
                        if h1 > 0 then
                          proposals :=
                            { edit =
                                mk_edit
                                  (Printf.sprintf "use %s directly instead of transmuting"
                                     f_name)
                                  [ Edit.Replace_stmt (st.sid, [ st1 ]) ];
                              kind = Replace }
                            :: !proposals;
                        (* candidate 2: fix the transmute's claimed signature *)
                        let st2, h2 =
                          Edit.map_exprs_in_stmt
                            (fun e' ->
                              match e'.e with
                              | E_transmute (T_fn _, op) when e'.eid = e.eid ->
                                Some (mk (E_transmute (actual, op)))
                              | _ -> None)
                            st
                        in
                        if h2 > 0 then
                          proposals :=
                            { edit =
                                mk_edit
                                  (Printf.sprintf
                                     "correct the transmute target to %s's signature" f_name)
                                  [ Edit.Replace_stmt (st.sid, [ st2 ]) ];
                              kind = Modify }
                            :: !proposals
                      | None -> ())
                    | None -> ())
                  | _ -> ());
                  None)
                st
            in
            ())
          (leaf_stmts ctx.program);
        !proposals) }

let panic_fixes =
  { rule_name = "panic_fixes";
    generate =
      (fun ctx ->
        if ctx.panicked = None then []
        else
          (* panics carry no diagnostic statement hint; fall back to every
             statement containing a guardable operation *)
          let guardable st =
            stmt_has_expr
              (fun e -> match e.e with E_binop ((Div | Rem), _, _) -> true | _ -> false)
              st
            || stmt_has_place (function P_index _ -> true | _ -> false) st
            || (match st.s with S_assert _ -> true | _ -> false)
          in
          let targets =
            match failing_stmt ctx with
            | Some st -> [ st ]
            | None -> List.filter guardable (leaf_stmts ctx.program)
          in
          List.concat_map (fun st ->
            let guards = ref [] in
            (* guard division by zero *)
            let _ =
              Edit.map_exprs_in_stmt
                (fun e ->
                  (match e.e with
                  | E_binop ((Div | Rem), _, rhs) ->
                    let cond = binop_e Ne rhs (int_e 0) in
                    guards :=
                      { edit =
                          mk_edit
                            (Printf.sprintf "guard stmt %d against a zero divisor" st.sid)
                            [ Edit.Replace_stmt (st.sid, [ if_s cond [ st ] [] ]) ];
                        kind = Modify }
                      :: !guards
                  | _ -> ());
                  None)
                st
            in
            (* clamp a checked index with a modulo *)
            let lens = array_lens ctx.program in
            let st', hits =
              Edit.map_places_in_stmt
                (fun p ->
                  match p with
                  | P_index ((P_var a as base), idx) -> (
                    match List.assoc_opt a lens with
                    | Some n -> Some (P_index (base, binop_e Rem idx (int_e n)))
                    | None -> None)
                  | _ -> None)
                st
            in
            if hits > 0 then
              guards :=
                { edit =
                    mk_edit (Printf.sprintf "wrap the index with a modulo (stmt %d)" st.sid)
                      [ Edit.Replace_stmt (st.sid, [ st' ]) ];
                  kind = Modify }
                :: !guards;
            (* an over-strict assertion can itself be the bug *)
            (match st.s with
            | S_assert _ ->
              guards :=
                { edit =
                    mk_edit (Printf.sprintf "remove over-strict assertion (stmt %d)" st.sid)
                      [ Edit.Replace_stmt (st.sid, []) ];
                  kind = Modify }
                :: !guards
            | _ -> ());
            !guards)
            targets) }

let atomicize_static =
  { rule_name = "atomicize_static";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with
          | Some (Miri.Diag.Data_race | Miri.Diag.Concurrency) -> true
          | _ -> false
        in
        if not relevant then []
        else
          List.filter_map
            (fun (s : static_decl) ->
              if not (s.smut && equal_ty s.sty (T_int I64)) then None
              else begin
                let name = s.sname in
                let actions = ref [] in
                List.iter
                  (fun st ->
                    let replacement =
                      match st.s with
                      | S_assign
                          ( P_var v,
                            { e = E_binop (Add, { e = E_place (P_var v2); _ }, delta); _ } )
                        when String.equal v name && String.equal v2 name ->
                        (* read-modify-write: one atomic fetch-and-add keeps
                           concurrent increments linearizable *)
                        Some (expr_s (mk (E_atomic_add (raw_of_e Mut (P_var name), delta))))
                      | S_assign (P_var v, rhs) when String.equal v name ->
                        Some (mks (S_atomic_store (raw_of_e Mut (P_var name), rhs)))
                      | _ ->
                        let st', hits =
                          Edit.map_exprs_in_stmt
                            (fun e ->
                              match e.e with
                              | E_place (P_var v) when String.equal v name ->
                                Some (mk (E_atomic_load (raw_of_e Mut (P_var name))))
                              | _ -> None)
                            st
                        in
                        if hits > 0 then Some st' else None
                    in
                    match replacement with
                    | Some st' -> actions := Edit.Replace_stmt (st.sid, [ st' ]) :: !actions
                    | None -> ())
                  (leaf_stmts ctx.program);
                if !actions = [] then None
                else
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "make every access to %s atomic" name)
                          (List.rev !actions);
                      kind = Replace }
              end)
            ctx.program.statics) }

let join_fixes =
  { rule_name = "join_fixes";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with
          | Some (Miri.Diag.Data_race | Miri.Diag.Concurrency) -> true
          | _ -> false
        in
        if not relevant then []
        else begin
          let joins =
            List.filter (fun st -> match st.s with S_join _ -> true | _ -> false)
              (leaf_stmts ctx.program)
          in
          let spawns =
            List.filter_map
              (fun st -> match st.s with S_spawn (h, _, _) -> Some (st, h) | _ -> None)
              (leaf_stmts ctx.program)
          in
          let move_join =
            match failing_stmt ctx with
            | None -> []
            | Some f ->
              List.filter_map
                (fun j ->
                  if j.sid <> f.sid then
                    Some
                      { edit =
                          mk_edit
                            (Printf.sprintf "join the thread before the failing stmt %d" f.sid)
                            [ Edit.Replace_stmt (j.sid, []);
                              Edit.Insert_before (f.sid, j) ];
                        kind = Modify }
                  else None)
                joins
          in
          let add_join =
            (* a spawned handle that is never joined *)
            List.concat_map
              (fun (spawn_stmt, h) ->
                let joined =
                  List.exists
                    (fun j ->
                      match j.s with
                      | S_join { e = E_place (P_var v); _ } -> String.equal v h
                      | _ -> false)
                    joins
                in
                if joined then []
                else
                  match siblings_of ctx.program spawn_stmt.sid with
                  | Some (sibs, _) -> (
                    match List.rev sibs with
                    | last :: _ ->
                      [ { edit =
                            mk_edit
                              (Printf.sprintf "join handle %s at end of its block" h)
                              [ Edit.Insert_after (last.sid, mks (S_join (var_e h))) ];
                          kind = Modify } ]
                    | [] -> [])
                  | None -> [])
              spawns
          in
          move_join @ add_join
        end) }

let fix_dealloc_layout =
  { rule_name = "fix_dealloc_layout";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with Some Miri.Diag.Alloc -> true | _ -> false
        in
        if not relevant then []
        else begin
          (* make every dealloc of a tracked allocation state the allocated
             layout: the mechanical fix for wrong-size / wrong-align frees *)
          let allocs = alloc_lets ctx.program in
          List.concat_map
            (fun st ->
              match st.s with
              | S_dealloc (({ e = E_place (P_var v); _ } as pe), size, align)
              | S_dealloc
                  (({ e = E_cast ({ e = E_place (P_var v); _ }, _); _ } as pe), size, align)
                -> (
                match
                  List.find_opt (fun (_, p, _, _, _) -> String.equal p v) allocs
                with
                | Some (_, _, alloc_size, alloc_align, _)
                  when not
                         (equal_expr size alloc_size && equal_expr align alloc_align) ->
                  [ { edit =
                        mk_edit
                          (Printf.sprintf
                             "state the allocated layout in dealloc (stmt %d)" st.sid)
                          [ Edit.Replace_stmt
                              (st.sid, [ mks (S_dealloc (pe, alloc_size, alloc_align)) ]) ];
                      kind = Modify } ]
                | _ -> [])
              | _ -> [])
            (leaf_stmts ctx.program)
        end) }

let widen_alloc =
  { rule_name = "widen_alloc";
    generate =
      (fun ctx ->
        let relevant =
          match diag_kind ctx with
          | Some (Miri.Diag.Dangling_pointer | Miri.Diag.Validity) -> true
          | _ -> false
        in
        if not relevant then []
        else
          (* out-of-bounds or trailing-uninit access patterns sometimes mean
             the buffer is simply too small: offer doubled allocations (the
             matching dealloc must state the same size, so rewrite both) *)
          List.filter_map
            (fun (st, p, size, align, _) ->
              match size.e with
              | E_int (n, w) ->
                let doubled = int64_e ~w (Int64.mul n 2L) in
                let st', hits =
                  Edit.map_exprs_in_stmt
                    (fun e ->
                      match e.e with
                      | E_alloc (_, _) when e.eid = (match st.s with
                          | S_let (_, _, { e = E_alloc _; eid; _ }) -> eid
                          | S_let (_, _, { e = E_cast ({ e = E_alloc _; eid; _ }, _); _ }) -> eid
                          | _ -> -1) ->
                        Some (mk (E_alloc (doubled, align)))
                      | _ -> None)
                    st
                in
                if hits = 0 then None
                else begin
                  (* patch every dealloc of [p] to the doubled size too *)
                  let dealloc_patches =
                    List.filter_map
                      (fun d ->
                        match d.s with
                        | S_dealloc (pe, { e = E_int (m, _); _ }, al)
                          when Int64.equal m n
                               && (match pe.e with
                                  | E_place (P_var v)
                                  | E_cast ({ e = E_place (P_var v); _ }, _) ->
                                    String.equal v p
                                  | _ -> false) ->
                          Some
                            (Edit.Replace_stmt
                               (d.sid, [ mks (S_dealloc (pe, doubled, al)) ]))
                        | _ -> None)
                      (leaf_stmts ctx.program)
                  in
                  Some
                    { edit =
                        mk_edit
                          (Printf.sprintf "double the allocation behind %s" p)
                          (Edit.Replace_stmt (st.sid, [ st' ]) :: dealloc_patches);
                      kind = Modify }
                end
              | _ -> None)
            (alloc_lets ctx.program)) }

(* ------------------------------------------------------------------ *)

let all =
  [ checked_indexing; bounds_assert; null_assert; remove_dealloc; add_dealloc;
    move_dealloc; fix_dealloc_layout; widen_alloc; align_fixes; init_after_alloc;
    bool_from_int; transmute_to_cast; rederive_pointer; move_stmt_up;
    provenance_fixes; fn_sig_fixes; panic_fixes; atomicize_static; join_fixes ]

let run_all ctx =
  let seen = Hashtbl.create 32 in
  List.concat_map
    (fun rule ->
      List.filter
        (fun p ->
          let label = p.edit.Edit.label in
          if Hashtbl.mem seen label then false
          else begin
            Hashtbl.add seen label ();
            true
          end)
        (rule.generate ctx))
    all

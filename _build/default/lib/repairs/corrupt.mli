(** Hallucination model: plausible corruptions of a repair edit.

    When the simulated LLM hallucinates ({!Llm_sim.Client.choice.corrupted}),
    the agent applies a *corrupted variant* of the chosen edit rather than
    the edit itself: the change lands on the wrong statement, an inserted
    constant is off by one, an assertion is degenerate, or part of a
    multi-step edit is silently dropped. Corrupted edits still apply cleanly
    — they just tend to leave the UB in place or add new errors, which is
    what drives the paper's growing error sequences (Fig. 5) and gives the
    adaptive-rollback agent something to do. *)

val corrupt :
  Rb_util.Rng.t -> Minirust.Ast.program -> Minirust.Edit.t -> Minirust.Edit.t
(** Produce a corrupted variant of the edit that is applicable to the given
    program (targets are retargeted only to existing statements). *)

open Minirust

type t = { id : int; edit : Edit.t; kind : Rule.fix_kind; quality : float }

let reference_edit ~buggy ~fixed =
  let changed =
    List.filter_map
      (fun (bf : Ast.fn_decl) ->
        match Ast.lookup_fn fixed bf.Ast.fname with
        | Some ff when not (Ast.equal_fn bf ff) -> Some (Edit.Replace_fn_decl ff)
        | Some _ -> None
        | None -> Some (Edit.Remove_fn bf.Ast.fname))
      buggy.Ast.funcs
  in
  let added =
    List.filter_map
      (fun (ff : Ast.fn_decl) ->
        match Ast.lookup_fn buggy ff.Ast.fname with
        | None -> Some (Edit.Add_fn ff)
        | Some _ -> None)
      fixed.Ast.funcs
  in
  match changed @ added with
  | [] -> None
  | actions -> Some { Edit.label = "developer-style rewrite"; actions }

let enumerate ?reference ?(max_candidates = 24) (ctx : Rule.context) =
  let rule_proposals = Rule.run_all ctx in
  let ref_proposal =
    match reference with
    | None -> []
    | Some fixed -> (
      match reference_edit ~buggy:ctx.Rule.program ~fixed with
      | Some edit -> [ { Rule.edit; kind = Rule.Modify } ]
      | None -> [])
  in
  let proposals = ref_proposal @ rule_proposals in
  let capped = List.filteri (fun i _ -> i < max_candidates) proposals in
  List.mapi
    (fun i (p : Rule.proposal) ->
      { id = i; edit = p.Rule.edit; kind = p.Rule.kind; quality = 0.0 })
    capped

let score_all ~scorer program candidates =
  List.map
    (fun c ->
      match Edit.apply c.edit program with
      | Error _ -> { c with quality = 0.0 }
      | Ok program' -> { c with quality = scorer program' })
    candidates

let to_llm_candidates candidates =
  List.map
    (fun c ->
      { Llm_sim.Client.cand_id = c.id;
        quality = c.quality;
        brief = c.edit.Edit.label;
        kind = Rule.fix_kind_name c.kind })
    candidates

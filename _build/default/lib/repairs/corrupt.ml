open Minirust
open Ast

let leaf_sids program =
  let acc = ref [] in
  Visit.iter_stmts
    (fun st ->
      match st.s with
      | S_if _ | S_while _ | S_block _ | S_unsafe _ -> ()
      | _ -> acc := st.sid :: !acc)
    program;
  List.rev !acc

(* off-by-k constants: the classic transcription slip *)
let bump_literals rng st =
  let delta = Int64.of_int (1 + Rb_util.Rng.int rng 6) in
  let sign = if Rb_util.Rng.bool rng then delta else Int64.neg delta in
  let st', hits =
    Edit.map_exprs_in_stmt
      (fun e ->
        match e.e with
        | E_int (n, w) -> Some (int64_e ~w (Int64.add n sign))
        | _ -> None)
      st
  in
  if hits > 0 then Some st' else None

let degrade_assert st =
  match st.s with
  | S_assert (_, msg) -> Some (assert_s (bool_e true) msg)
  | _ -> None

(* the statement payload an action carries, if any *)
let payload_of = function
  | Edit.Insert_before (_, st) | Edit.Insert_after (_, st) -> Some st
  | Edit.Replace_stmt (_, [ st ]) -> Some st
  | Edit.Replace_stmt (_, _) | Edit.Replace_expr _ | Edit.Wrap_unsafe _
  | Edit.Replace_fn_body _ | Edit.Set_fn_unsafe _ | Edit.Replace_fn_decl _
  | Edit.Add_fn _ | Edit.Remove_fn _ ->
    None

let corrupt_action rng program (a : Edit.action) : Edit.action =
  let sids = leaf_sids program in
  let retarget sid =
    match List.filter (fun s -> s <> sid) sids with
    | [] -> sid
    | others -> Rb_util.Rng.pick rng others
  in
  match a with
  | Edit.Insert_before (sid, st) -> begin
    match Rb_util.Rng.int rng 3 with
    | 0 -> Edit.Insert_before (retarget sid, st)
    | 1 -> (
      match degrade_assert st with
      | Some st' -> Edit.Insert_before (sid, st')
      | None -> Edit.Insert_before (retarget sid, st))
    | _ -> (
      match bump_literals rng st with
      | Some st' -> Edit.Insert_before (sid, st')
      | None -> Edit.Insert_before (retarget sid, st))
  end
  | Edit.Insert_after (sid, st) -> begin
    match Rb_util.Rng.int rng 2 with
    | 0 -> Edit.Insert_after (retarget sid, st)
    | _ -> (
      match bump_literals rng st with
      | Some st' -> Edit.Insert_after (sid, st')
      | None -> Edit.Insert_after (retarget sid, st))
  end
  | Edit.Replace_stmt (sid, stmts) -> begin
    match Rb_util.Rng.int rng 3 with
    | 0 -> Edit.Replace_stmt (retarget sid, stmts)
    | 1 ->
      (* duplicate the replacement: a classic over-eager model mistake *)
      Edit.Replace_stmt (sid, stmts @ stmts)
    | _ -> (
      match stmts with
      | [ st ] -> (
        match bump_literals rng st with
        | Some st' -> Edit.Replace_stmt (sid, [ st' ])
        | None -> Edit.Replace_stmt (retarget sid, stmts))
      | _ -> Edit.Replace_stmt (retarget sid, stmts))
  end
  | Edit.Replace_expr (eid, e) -> Edit.Replace_expr (eid, e)
  | Edit.Wrap_unsafe sid -> Edit.Wrap_unsafe (retarget sid)
  | Edit.Replace_fn_body (name, body) -> begin
    match body with
    | [] | [ _ ] -> Edit.Replace_fn_body (name, body)
    | body ->
      let drop = Rb_util.Rng.int rng (List.length body) in
      Edit.Replace_fn_body (name, List.filteri (fun i _ -> i <> drop) body)
  end
  | Edit.Replace_fn_decl decl -> begin
    match decl.body with
    | [] | [ _ ] -> Edit.Replace_fn_decl decl
    | body ->
      let drop = Rb_util.Rng.int rng (List.length body) in
      Edit.Replace_fn_decl { decl with body = List.filteri (fun i _ -> i <> drop) body }
  end
  | Edit.Set_fn_unsafe (name, flag) -> Edit.Set_fn_unsafe (name, not flag)
  | Edit.Add_fn decl -> Edit.Add_fn decl
  | Edit.Remove_fn name -> Edit.Remove_fn name

let corrupt rng program (edit : Edit.t) : Edit.t =
  match edit.Edit.actions with
  | [] -> edit
  | actions ->
    let sids = leaf_sids program in
    let choice = Rb_util.Rng.float rng in
    if List.length actions > 1 && choice < 0.30 then begin
      (* silently drop one step of a multi-step edit *)
      let drop = Rb_util.Rng.int rng (List.length actions) in
      { Edit.label = edit.Edit.label ^ " [hallucinated: step dropped]";
        actions = List.filteri (fun i _ -> i <> drop) actions }
    end
    else if choice < 0.55 && sids <> [] then begin
      (* apply the change at a second, spurious site as well: the over-eager
         model "fixes" code that was fine, often *adding* errors — the
         mechanism behind the paper's growing N sequences *)
      let stray =
        match List.find_map payload_of actions with
        | Some st -> [ Edit.Insert_after (Rb_util.Rng.pick rng sids, st) ]
        | None -> []
      in
      { Edit.label = edit.Edit.label ^ " [hallucinated: spurious extra edit]";
        actions = actions @ stray }
    end
    else begin
      let idx = Rb_util.Rng.int rng (List.length actions) in
      let actions' =
        List.mapi
          (fun i a -> if i = idx then corrupt_action rng program a else a)
          actions
      in
      { Edit.label = edit.Edit.label ^ " [hallucinated]"; actions = actions' }
    end

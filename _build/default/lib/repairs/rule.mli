(** Repair rules: pattern-directed rewrites for Rust UB, grouped into the
    paper's three fix classes.

    Each rule inspects the current program together with the Miri diagnosis
    and proposes zero or more concrete {!Minirust.Edit.t} candidates. Rules
    implement the genuinely mechanical fixes (checked indexing, bounds
    asserts, re-deriving pointers, atomicizing racy statics, moving
    deallocations...); the candidate set an agent offers the simulated LLM is
    the union of rule output and a developer-style rewrite derived from the
    dataset's reference fix (see {!Candidates}). *)

type fix_kind = Replace | Assert | Modify

val fix_kind_name : fix_kind -> string
(** ["replace"] / ["assert"] / ["modify"] — the candidate kinds understood by
    {!Llm_sim.Client}. *)

type proposal = { edit : Minirust.Edit.t; kind : fix_kind }

type context = {
  program : Minirust.Ast.program;
  diag : Miri.Diag.t option;   (** primary diagnosis, if the run produced one *)
  panicked : string option;    (** panic message when the outcome was a panic *)
}

type t = { rule_name : string; generate : context -> proposal list }

val all : t list
(** Every built-in rule. *)

val run_all : context -> proposal list
(** Concatenation of all rules' proposals (deduplicated by label). *)

(** Candidate enumeration and oracle scoring for one repair attempt.

    A candidate is a concrete edit plus its fix class. The set offered to the
    simulated LLM is the union of
    - every rule-generated proposal ({!Rule.run_all}), and
    - a developer-style rewrite derived from the dataset's reference fix
      (whole-body replacement of each function whose body differs).

    [score_all] computes each candidate's oracle quality by *actually
    applying the edit* and re-checking the program with the scorer the caller
    provides (typecheck + Miri + semantic probe); this is the "capability
    oracle" half of the LLM substitution described in DESIGN.md. *)

type t = {
  id : int;
  edit : Minirust.Edit.t;
  kind : Rule.fix_kind;
  quality : float;  (** oracle score in [0,1]; 0 until {!score_all} runs *)
}

val enumerate :
  ?reference:Minirust.Ast.program ->
  ?max_candidates:int ->
  Rule.context ->
  t list
(** Rule proposals plus (when [reference] is given and differs) the
    developer-style rewrite, capped at [max_candidates] (default 24). *)

val score_all :
  scorer:(Minirust.Ast.program -> float) -> Minirust.Ast.program -> t list -> t list
(** Apply each candidate to the program and record [scorer program'] as its
    quality. Candidates whose edit fails to apply score 0. *)

val reference_edit :
  buggy:Minirust.Ast.program -> fixed:Minirust.Ast.program -> Minirust.Edit.t option
(** Whole-body replacement edit turning [buggy]'s differing functions (and
    statics/unsafe flags) into [fixed]'s. [None] if the programs already
    agree. *)

val to_llm_candidates : t list -> Llm_sim.Client.candidate list

(** Feedback mechanism between slow and fast thinking (paper Section III-C
    and stage S3).

    Successful repairs are stored under their pruned-AST feature vector. On
    the next similar error, fast thinking recalls the winning plan, puts it
    first, and adds a feedback prompt section — so similar UBs get repaired
    with fewer candidate solutions, fewer iterations, and less reliance on
    the knowledge base (the "red sections" of the paper's Table I). *)

type memory = {
  category : Miri.Diag.ub_kind;
  plan : Solution.t;
  winning_class : Ub_class.repair_class option;
}

type t

val create : unit -> t

val size : t -> int

val learn : t -> float array -> memory -> unit

val recall : t -> float array -> (float * memory) option
(** Best match above similarity 0.55, if any. *)

val to_prompt_section : float * memory -> string

(** Abstract-reasoning agent (paper Section III-B3).

    Extracts a pruned AST sketch of the current program (Algorithm 1),
    vectorizes it, queries the knowledge base, and enriches the shared state:
    the sketch and the retrieved advice become prompt sections (raising the
    simulated model's prompt quality) and the advice's recommended fix
    classes become perceived-quality biases for subsequent agent calls. *)

type outcome = {
  sketch_kept : int;
  sketch_dropped : int;
  kb_hits : int;
}

val run : Env.t -> Env.state -> outcome

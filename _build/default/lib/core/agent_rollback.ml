type outcome = Kept | Rolled_back of { from_errors : int; to_errors : int }

let maybe_rollback (env : Env.t) (state : Env.state) =
  ignore env;
  let best_program, best_errors = Env.best_snapshot state in
  if state.Env.errors > best_errors then begin
    let from_errors = state.Env.errors in
    state.Env.program <- best_program;
    state.Env.errors <- best_errors;
    (* the snapshot's diagnostics are stale but the next check refreshes
       them; cost is negligible: no re-verification is needed because the
       snapshot's count is known (the paper's c * T_{n-a} saving) *)
    Env.log state
      (Printf.sprintf "rollback: %d error(s) -> best snapshot with %d" from_errors
         best_errors);
    Rolled_back { from_errors; to_errors = best_errors }
  end
  else Kept

let rollback_to_initial (env : Env.t) (state : Env.state) =
  match List.rev state.Env.history with
  | [] -> Kept
  | (initial, initial_errors) :: _ ->
    if state.Env.errors > initial_errors then begin
      let from_errors = state.Env.errors in
      state.Env.program <- initial;
      state.Env.errors <- initial_errors;
      (* the naive strategy re-verifies from scratch: charge a full check *)
      Rb_util.Simclock.charge env.Env.clock (Env.verify_cost initial);
      Env.log state
        (Printf.sprintf "full rollback to initial state (%d -> %d errors)" from_errors
           initial_errors);
      Rolled_back { from_errors; to_errors = initial_errors }
    end
    else Kept

(** The three error-fixing agents (paper Section III-B1).

    Each agent owns one repair class — equivalent replacement, assertion
    insertion, semantic modification — and performs one repair attempt: it
    diagnoses the current program, enumerates the candidates of its class,
    lets the simulated LLM choose (with whatever prompt enrichment the
    abstract-reasoning agent has accumulated in the state), applies the
    chosen edit (or its hallucinated corruption), and re-verifies. *)

type outcome =
  | Already_clean          (** nothing to do: last check found zero errors *)
  | No_candidates          (** the class offers nothing for this diagnosis *)
  | Applied of { label : string; corrupted : bool; errors_after : int }
  | Edit_failed of string  (** the chosen edit did not apply *)

val outcome_to_string : outcome -> string

val run : Env.t -> Env.state -> Ub_class.repair_class -> outcome
(** One attempt with the given class's agent. Mutates [state]. *)

type rollback_policy = No_rollback | To_initial | Adaptive

type execution = {
  final : Minirust.Ast.program;
  passed : bool;
  errors : int;
  iterations : int;
  n_sequence : int list;
  rollbacks : int;
  trace : string list;
  seconds : float;
}

let execute ?(prompt_extras = []) (env : Env.t) ~program ~(solution : Solution.t)
    ~rollback ~max_iters =
  let start = Rb_util.Simclock.now env.Env.clock in
  let state = Env.init_state env program in
  state.Env.prompt_extras <- List.rev prompt_extras;
  let rollbacks = ref 0 in
  let apply_rollback () =
    let outcome =
      match rollback with
      | No_rollback -> Agent_rollback.Kept
      | Adaptive -> Agent_rollback.maybe_rollback env state
      | To_initial -> Agent_rollback.rollback_to_initial env state
    in
    match outcome with
    | Agent_rollback.Rolled_back _ -> incr rollbacks
    | Agent_rollback.Kept -> ()
  in
  (* cycle the plan's steps until clean or out of budget *)
  let steps = Array.of_list solution.Solution.steps in
  let nsteps = Array.length steps in
  let rec go i =
    (* the [i] bound also guards against plans whose steps never consume an
       iteration (e.g. all-abstract plans) *)
    if
      state.Env.errors = 0 || state.Env.iterations >= max_iters || nsteps = 0
      || i >= (max_iters + 1) * (nsteps + 1)
    then ()
    else begin
      (match steps.(i mod nsteps) with
      | Solution.Abstract ->
        ignore (Agent_abstract.run env state);
        (* the abstract pass informs but does not edit; it costs an
           iteration slot only through its clock charges *)
        ()
      | Solution.Fix cls ->
        (match Agent.run env state cls with
        | Agent.Already_clean -> ()
        | Agent.No_candidates | Agent.Edit_failed _ -> ()
        | Agent.Applied _ -> apply_rollback ()));
      go (i + 1)
    end
  in
  go 0;
  {
    final = state.Env.program;
    passed = state.Env.errors = 0;
    errors = state.Env.errors;
    iterations = state.Env.iterations;
    n_sequence = List.rev state.Env.n_sequence;
    rollbacks = !rollbacks;
    trace = List.rev state.Env.trace;
    seconds = Rb_util.Simclock.now env.Env.clock -. start;
  }

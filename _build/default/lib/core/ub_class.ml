open Minirust
open Ast

type unsafe_op =
  | Deref_raw_pointer
  | Call_unsafe_fn
  | Access_static_mut
  | Union_field_access
  | Unchecked_or_intrinsic

type repair_class = C_replace | C_assert | C_modify

let repair_class_name = function
  | C_replace -> "replace"
  | C_assert -> "assert"
  | C_modify -> "modify"

let unsafe_profile program =
  let counts = Hashtbl.create 8 in
  let bump op = Hashtbl.replace counts op (1 + Option.value (Hashtbl.find_opt counts op) ~default:0) in
  let unsafe_fns =
    List.filter_map (fun f -> if f.fn_unsafe then Some f.fname else None) program.funcs
  in
  let static_muts =
    List.filter_map (fun s -> if s.smut then Some s.sname else None) program.statics
  in
  Visit.iter_exprs
    (fun e ->
      match e.e with
      | E_place (P_deref _) -> bump Deref_raw_pointer
      | E_place (P_index_unchecked _) -> bump Unchecked_or_intrinsic
      | E_place (P_union_field _) -> bump Union_field_access
      | E_call (name, _) when List.mem name unsafe_fns -> bump Call_unsafe_fn
      | E_transmute _ | E_offset _ | E_alloc _ | E_atomic_load _ ->
        bump Unchecked_or_intrinsic
      | E_place (P_var v) when List.mem v static_muts -> bump Access_static_mut
      | _ -> ())
    program;
  (* place-level operations *)
  List.iter
    (fun f ->
      Visit.iter_stmts_block
        (fun st ->
          (match st.s with
          | S_dealloc _ | S_atomic_store _ -> bump Unchecked_or_intrinsic
          | S_assign (p, _) ->
            let rec walk = function
              | P_var v -> if List.mem v static_muts then bump Access_static_mut
              | P_deref { e = E_cast _ | E_place _ | E_offset _; _ } -> bump Deref_raw_pointer
              | P_deref _ -> bump Deref_raw_pointer
              | P_index (b, _) | P_field (b, _) -> walk b
              | P_index_unchecked (b, _) ->
                bump Unchecked_or_intrinsic;
                walk b
              | P_union_field (b, _) ->
                bump Union_field_access;
                walk b
            in
            walk p
          | _ -> ());
          ())
        f.body)
    program.funcs;
  Hashtbl.fold (fun op n acc -> (op, n) :: acc) counts []

let classify_diag (k : Miri.Diag.ub_kind) : repair_class list =
  match k with
  | Miri.Diag.Dangling_pointer -> [ C_replace; C_assert; C_modify ]
  | Miri.Diag.Stack_borrow -> [ C_replace; C_modify; C_assert ]
  | Miri.Diag.Both_borrow -> [ C_modify; C_replace; C_assert ]
  | Miri.Diag.Unaligned_pointer -> [ C_modify; C_assert; C_replace ]
  | Miri.Diag.Validity -> [ C_modify; C_replace; C_assert ]
  | Miri.Diag.Alloc -> [ C_modify; C_assert; C_replace ]
  | Miri.Diag.Func_pointer -> [ C_modify; C_replace; C_assert ]
  | Miri.Diag.Func_call -> [ C_modify; C_replace; C_assert ]
  | Miri.Diag.Provenance -> [ C_replace; C_modify; C_assert ]
  | Miri.Diag.Panic_bug -> [ C_modify; C_assert; C_replace ]
  | Miri.Diag.Concurrency -> [ C_modify; C_replace; C_assert ]
  | Miri.Diag.Data_race -> [ C_replace; C_modify; C_assert ]

let to_fix_kind = function
  | C_replace -> Repairs.Rule.Replace
  | C_assert -> Repairs.Rule.Assert
  | C_modify -> Repairs.Rule.Modify

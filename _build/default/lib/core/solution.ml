type step = Fix of Ub_class.repair_class | Abstract

type t = { sname : string; steps : step list; origin : string }

let step_name = function
  | Fix c -> Ub_class.repair_class_name c
  | Abstract -> "abstract"

let to_string t =
  Printf.sprintf "%s [%s] (%s)" t.sname
    (String.concat " -> " (List.map step_name t.steps))
    t.origin

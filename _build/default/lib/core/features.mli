(** Fast-thinking feature extraction (paper stage F2).

    Produces the structured summary the fast-thinking LLM call works from:
    the diagnosed error, the program's unsafe-operation profile, and basic
    shape statistics. Rendering it into the prompt's [features] section is
    what raises the simulated model's prompt quality relative to a bare code
    dump. *)

type t = {
  category : Miri.Diag.ub_kind option;
  diag_message : string;
  panicked : string option;
  unsafe_ops : (Ub_class.unsafe_op * int) list;
  stmt_count : int;
  fn_count : int;
  has_threads : bool;
  has_heap : bool;
  error_count : int;
  repair_priority : Ub_class.repair_class list;
}

val extract : Minirust.Ast.program -> Miri.Machine.run_result -> t

val to_prompt_section : t -> string

val vector : Minirust.Ast.program -> t -> float array
(** Pruned-AST feature vector of the diagnosed program (for feedback and KB
    retrieval). *)

(** A repair solution: the ordered steps slow thinking will execute
    (paper stage S1's decomposition). *)

type step =
  | Fix of Ub_class.repair_class  (** one attempt by that class's agent *)
  | Abstract                      (** run the abstract-reasoning agent *)

type t = {
  sname : string;
  steps : step list;
  origin : string;  (** "fast-thinking", "feedback", ... for reporting *)
}

val step_name : step -> string
val to_string : t -> string

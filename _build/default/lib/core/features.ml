type t = {
  category : Miri.Diag.ub_kind option;
  diag_message : string;
  panicked : string option;
  unsafe_ops : (Ub_class.unsafe_op * int) list;
  stmt_count : int;
  fn_count : int;
  has_threads : bool;
  has_heap : bool;
  error_count : int;
  repair_priority : Ub_class.repair_class list;
}

let op_name = function
  | Ub_class.Deref_raw_pointer -> "deref raw pointer"
  | Ub_class.Call_unsafe_fn -> "call unsafe fn"
  | Ub_class.Access_static_mut -> "access static mut"
  | Ub_class.Union_field_access -> "union field access"
  | Ub_class.Unchecked_or_intrinsic -> "unchecked/intrinsic op"

let extract program (run : Miri.Machine.run_result) =
  let diag = Miri.Machine.first_ub run in
  let category =
    match diag with
    | Some d -> Some d.Miri.Diag.kind
    | None -> (
      match run.Miri.Machine.outcome with
      | Miri.Machine.Panicked _ -> Some Miri.Diag.Panic_bug
      | _ -> None)
  in
  let panicked =
    match run.Miri.Machine.outcome with
    | Miri.Machine.Panicked m -> Some m
    | _ -> None
  in
  let has_threads = ref false and has_heap = ref false in
  Minirust.Visit.iter_stmts
    (fun st ->
      match st.Minirust.Ast.s with
      | Minirust.Ast.S_spawn _ -> has_threads := true
      | _ -> ())
    program;
  Minirust.Visit.iter_exprs
    (fun e ->
      match e.Minirust.Ast.e with
      | Minirust.Ast.E_alloc _ -> has_heap := true
      | _ -> ())
    program;
  {
    category;
    diag_message =
      (match diag with Some d -> d.Miri.Diag.message | None -> "");
    panicked;
    unsafe_ops = Ub_class.unsafe_profile program;
    stmt_count = Minirust.Visit.count_stmts program;
    fn_count = List.length program.Minirust.Ast.funcs;
    has_threads = !has_threads;
    has_heap = !has_heap;
    error_count = run.Miri.Machine.error_count;
    repair_priority =
      (match category with
      | Some k -> Ub_class.classify_diag k
      | None -> [ Ub_class.C_modify ]);
  }

let to_prompt_section t =
  let b = Buffer.create 256 in
  (match t.category with
  | Some k -> Buffer.add_string b ("error category: " ^ Miri.Diag.kind_name k ^ "\n")
  | None -> Buffer.add_string b "error category: unknown\n");
  if t.diag_message <> "" then
    Buffer.add_string b ("diagnostic: " ^ t.diag_message ^ "\n");
  (match t.panicked with
  | Some m -> Buffer.add_string b ("panic: " ^ m ^ "\n")
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "shape: %d statements, %d functions%s%s\n" t.stmt_count t.fn_count
       (if t.has_threads then ", threaded" else "")
       (if t.has_heap then ", manual heap" else ""));
  List.iter
    (fun (op, n) -> Buffer.add_string b (Printf.sprintf "unsafe op: %s x%d\n" (op_name op) n))
    t.unsafe_ops;
  Buffer.add_string b
    ("suggested repair order: "
    ^ String.concat " > " (List.map Ub_class.repair_class_name t.repair_priority));
  Buffer.contents b

let vector program t =
  let diags =
    match t.category with
    | Some k -> [ Miri.Diag.make k t.diag_message ]
    | None -> []
  in
  Knowledge.Featvec.of_program program diags

(** Classification of unsafe Rust from the repair perspective
    (paper Section III-A).

    The five unsafe-operation kinds are Rust's own taxonomy; the three repair
    classes are the paper's Principle 2. [classify_diag] maps a Miri
    diagnostic to the repair classes worth trying first, and
    [unsafe_profile] summarizes which unsafe operations a program uses —
    both feed fast thinking's solution generation. *)

type unsafe_op =
  | Deref_raw_pointer
  | Call_unsafe_fn
  | Access_static_mut
  | Union_field_access
  | Unchecked_or_intrinsic
      (** get_unchecked / transmute / alloc / offset / atomics — the unsafe
          intrinsic surface standing in for "implement unsafe trait" *)

type repair_class = C_replace | C_assert | C_modify

val repair_class_name : repair_class -> string

val unsafe_profile : Minirust.Ast.program -> (unsafe_op * int) list
(** Occurrence count of each unsafe-operation kind (zero entries omitted). *)

val classify_diag : Miri.Diag.ub_kind -> repair_class list
(** Repair classes ordered by prior success likelihood for the category. *)

val to_fix_kind : repair_class -> Repairs.Rule.fix_kind

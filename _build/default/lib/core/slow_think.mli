(** Slow thinking (paper stages S1–S2): execute one decomposed solution
    plan with the multi-agent toolbox, under the adaptive-rollback policy,
    cycling the plan's steps until the program is clean or the iteration
    budget runs out.

    The evaluation triplet the paper defines — (accuracy, acceptability,
    overhead) — is computed at the end: accuracy = passes the UB check,
    acceptability = matches the reference behaviour, overhead = simulated
    seconds this attempt consumed. *)

type rollback_policy = No_rollback | To_initial | Adaptive

type execution = {
  final : Minirust.Ast.program;
  passed : bool;         (** clean on the first probe after execution *)
  errors : int;
  iterations : int;
  n_sequence : int list; (** chronological collect-mode error counts *)
  rollbacks : int;
  trace : string list;   (** chronological step log *)
  seconds : float;       (** simulated time consumed by this execution *)
}

val execute :
  ?prompt_extras:(string * string) list ->
  Env.t ->
  program:Minirust.Ast.program ->
  solution:Solution.t ->
  rollback:rollback_policy ->
  max_iters:int ->
  execution
(** [prompt_extras] are prompt sections injected into every agent call of
    this execution (fast-thinking features, recalled feedback). *)

type t = {
  case_name : string;
  category : Miri.Diag.ub_kind;
  passed : bool;
  semantic : bool;
  seconds : float;
  llm_calls : int;
  tokens : int;
  iterations : int;
  solutions_tried : int;
  rollbacks : int;
  n_sequence : int list;
  winning_solution : string option;
  feedback_hit : bool;
  trace : string list;
}

let summary_line t =
  Printf.sprintf "%-28s %-18s pass=%b exec=%b %6.1fs iters=%d sols=%d%s%s" t.case_name
    (Miri.Diag.kind_name t.category)
    t.passed t.semantic t.seconds t.iterations t.solutions_tried
    (if t.feedback_hit then " [feedback]" else "")
    (match t.winning_solution with Some s -> " <" ^ s ^ ">" | None -> "")

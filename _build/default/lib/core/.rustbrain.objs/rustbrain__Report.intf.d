lib/core/report.mli: Miri

lib/core/pipeline.ml: Dataset Env Fast_think Features Feedback Knowledge List Llm_sim Miri Rb_util Report Slow_think Solution Ub_class

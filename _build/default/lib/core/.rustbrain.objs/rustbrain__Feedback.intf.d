lib/core/feedback.mli: Miri Solution Ub_class

lib/core/pipeline.mli: Dataset Llm_sim Rb_util Report Slow_think Solution

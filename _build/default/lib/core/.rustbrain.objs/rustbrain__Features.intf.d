lib/core/features.mli: Minirust Miri Ub_class

lib/core/agent.ml: Env List Llm_sim Minirust Miri Printf Repairs Ub_class

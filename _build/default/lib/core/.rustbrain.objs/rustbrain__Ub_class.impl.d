lib/core/ub_class.ml: Ast Hashtbl List Minirust Miri Option Repairs Visit

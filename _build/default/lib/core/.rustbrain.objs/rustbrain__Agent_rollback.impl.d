lib/core/agent_rollback.ml: Env List Printf Rb_util

lib/core/agent_rollback.mli: Env

lib/core/agent.mli: Env Ub_class

lib/core/agent_abstract.ml: Env Knowledge List Llm_sim Miri Option Printf

lib/core/solution.ml: List Printf String Ub_class

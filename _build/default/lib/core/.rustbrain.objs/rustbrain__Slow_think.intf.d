lib/core/slow_think.mli: Env Minirust Solution

lib/core/fast_think.mli: Env Features Feedback Minirust Solution

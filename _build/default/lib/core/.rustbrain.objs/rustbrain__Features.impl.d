lib/core/features.ml: Buffer Knowledge List Minirust Miri Printf String Ub_class

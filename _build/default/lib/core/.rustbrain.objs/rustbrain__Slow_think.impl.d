lib/core/slow_think.ml: Agent Agent_abstract Agent_rollback Array Env List Minirust Rb_util Solution

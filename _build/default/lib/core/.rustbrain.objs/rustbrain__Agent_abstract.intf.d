lib/core/agent_abstract.mli: Env

lib/core/report.ml: Miri Printf

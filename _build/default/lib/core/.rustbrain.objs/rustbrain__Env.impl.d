lib/core/env.ml: Knowledge List Llm_sim Minirust Miri Rb_util

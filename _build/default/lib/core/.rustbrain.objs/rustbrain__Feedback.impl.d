lib/core/feedback.ml: Knowledge Miri Printf Solution Ub_class

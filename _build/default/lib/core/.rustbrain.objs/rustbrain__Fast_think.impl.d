lib/core/fast_think.ml: Env Features Feedback List Llm_sim Solution Ub_class

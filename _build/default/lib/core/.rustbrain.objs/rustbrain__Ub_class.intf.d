lib/core/ub_class.mli: Minirust Miri Repairs

lib/core/solution.mli: Ub_class

(** Fast thinking (paper stages F1–F2): intuitive, pattern-driven generation
    of multiple candidate solutions from the extracted code features.

    One (cheap) LLM call digests the features; the solution set is then
    derived from the category's repair-class priority, diversified with and
    without the abstract-reasoning step. When the feedback store recalls a
    similar previously-solved error, its winning plan is generated first and
    the solution budget shrinks — the paper's self-learning shortcut. *)

type generation = {
  solutions : Solution.t list;
  feedback_hit : (float * Feedback.memory) option;
}

val generate :
  Env.t ->
  program:Minirust.Ast.program ->
  features:Features.t ->
  feedback:Feedback.t option ->
  abstract_enabled:bool ->
  count:int ->
  generation

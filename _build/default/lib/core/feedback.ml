type memory = {
  category : Miri.Diag.ub_kind;
  plan : Solution.t;
  winning_class : Ub_class.repair_class option;
}

type t = { store : memory Knowledge.Store.t }

let create () = { store = Knowledge.Store.create () }

let size t = Knowledge.Store.size t.store

let learn t vec memory = Knowledge.Store.add t.store vec memory

let recall t vec =
  match Knowledge.Store.query t.store vec ~k:1 with
  | (score, m) :: _ when score > 0.55 -> Some (score, m)
  | _ -> None

let to_prompt_section (score, m) =
  Printf.sprintf
    "a similar %s error (similarity %.2f) was previously repaired with plan %s%s"
    (Miri.Diag.kind_name m.category) score
    (Solution.to_string m.plan)
    (match m.winning_class with
    | Some c -> "; the winning fix class was " ^ Ub_class.repair_class_name c
    | None -> "")

(** Adaptive rollback and optimal-code-selection agent (paper Section
    III-B2).

    After a repair step, if the current error count exceeds the best state
    seen so far, revert to that best intermediate snapshot instead of
    restarting from the initial code (the [c * T_n] full-rollback overhead
    the paper criticises in fixed frameworks). Keeping the best state
    preserves partial corrections while stopping hallucinated edits from
    propagating. *)

type outcome =
  | Kept              (** current state is (at least tied for) the best *)
  | Rolled_back of { from_errors : int; to_errors : int }

val maybe_rollback : Env.t -> Env.state -> outcome

val rollback_to_initial : Env.t -> Env.state -> outcome
(** The naive strategy of existing frameworks, kept for the Fig. 5 ablation:
    discard everything and return to the first snapshot. *)

type model = Gpt35 | Gpt4 | Gpt_o1 | Claude35

type t = {
  model : model;
  name : string;
  skill : Miri.Diag.ub_kind -> float;
  reasoning : float;
  hallucination : float;
  latency_base : float;
  latency_per_1k : float;
  completion_tokens : int;
  usd_per_1k_in : float;
  usd_per_1k_out : float;
}

(* Per-category difficulty, shared by all models: categories the paper calls
   out as needing deeper Rust expertise (function pointers, borrow
   interactions, validity invariants) sit lower. A model's skill is its
   ceiling scaled by (1 - difficulty). *)
let difficulty (k : Miri.Diag.ub_kind) =
  match k with
  | Miri.Diag.Stack_borrow -> 0.45
  | Miri.Diag.Unaligned_pointer -> 0.30
  | Miri.Diag.Validity -> 0.40
  | Miri.Diag.Alloc -> 0.20
  | Miri.Diag.Func_pointer -> 0.55
  | Miri.Diag.Provenance -> 0.40
  | Miri.Diag.Panic_bug -> 0.35
  | Miri.Diag.Func_call -> 0.50
  | Miri.Diag.Dangling_pointer -> 0.15
  | Miri.Diag.Both_borrow -> 0.50
  | Miri.Diag.Concurrency -> 0.35
  | Miri.Diag.Data_race -> 0.45

let skill_from ~ceiling k = ceiling *. (1.0 -. difficulty k) +. (0.25 *. difficulty k)

let gpt35 =
  {
    model = Gpt35;
    name = "GPT-3.5";
    skill = skill_from ~ceiling:0.55;
    reasoning = 0.35;
    hallucination = 0.45;
    latency_base = 0.9;
    latency_per_1k = 1.6;
    completion_tokens = 350;
    usd_per_1k_in = 0.0005;
    usd_per_1k_out = 0.0015;
  }

let gpt4 =
  {
    model = Gpt4;
    name = "GPT-4";
    skill = skill_from ~ceiling:0.80;
    reasoning = 0.60;
    hallucination = 0.30;
    latency_base = 1.8;
    latency_per_1k = 4.0;
    completion_tokens = 450;
    usd_per_1k_in = 0.01;
    usd_per_1k_out = 0.03;
  }

let gpt_o1 =
  {
    model = Gpt_o1;
    name = "GPT-O1";
    skill = skill_from ~ceiling:0.90;
    reasoning = 0.85;
    hallucination = 0.15;
    latency_base = 6.0;
    latency_per_1k = 9.0;
    completion_tokens = 900;
    usd_per_1k_in = 0.015;
    usd_per_1k_out = 0.06;
  }

let claude35 =
  {
    model = Claude35;
    name = "Claude-3.5";
    skill = skill_from ~ceiling:0.76;
    reasoning = 0.55;
    hallucination = 0.33;
    latency_base = 1.5;
    latency_per_1k = 3.4;
    completion_tokens = 420;
    usd_per_1k_in = 0.003;
    usd_per_1k_out = 0.015;
  }

let get = function
  | Gpt35 -> gpt35
  | Gpt4 -> gpt4
  | Gpt_o1 -> gpt_o1
  | Claude35 -> claude35

let all = [ Gpt35; Gpt4; Gpt_o1; Claude35 ]

let name m = (get m).name

let of_name s =
  List.find_opt (fun m -> String.equal (name m) s) all

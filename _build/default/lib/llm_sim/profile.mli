(** Capability profiles of the simulated language models.

    The paper evaluates GPT-3.5, GPT-4, GPT-O1 and Claude-3.5. No model
    endpoint exists in this container, so each model is a *calibrated
    capability profile*: a per-UB-category probability of recognising the
    correct repair, a hallucination rate, reasoning depth, and a latency
    model. The calibration targets the standalone-model pass rates the paper
    reports (GPT-4 alone ≈ 60%, GPT-3.5 below it, Claude-3.5 comparable to
    GPT-4, O1 above all standalone models); everything RustBrain adds on top
    (multi-solution sampling, verification, rollback, KB, feedback) emerges
    from the harness, not from these numbers. See DESIGN.md. *)

type model = Gpt35 | Gpt4 | Gpt_o1 | Claude35

type t = {
  model : model;
  name : string;
  skill : Miri.Diag.ub_kind -> float;
      (** base probability of recognising the best repair for a category *)
  reasoning : float;       (** 0..1: how much decomposed slow-thinking steps help *)
  hallucination : float;   (** base probability of emitting a corrupted edit *)
  latency_base : float;    (** seconds per call *)
  latency_per_1k : float;  (** seconds per 1000 tokens in+out *)
  completion_tokens : int; (** typical completion size *)
  usd_per_1k_in : float;   (** metered price, input tokens *)
  usd_per_1k_out : float;  (** metered price, output tokens *)
}

val get : model -> t
val all : model list
val name : model -> string
val of_name : string -> model option

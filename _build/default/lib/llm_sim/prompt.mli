(** Structured prompts for the simulated model.

    The quality of a prompt is *computed from its contents*: a prompt that
    carries the Miri error, the fast-thinking code features, a pruned AST and
    knowledge-base hints gives the model a measurably higher chance of
    picking the right repair than a bare code dump. This is how the paper's
    F2 (feature extraction) and the abstract-reasoning agent's AST pruning
    and KB retrieval feed back into repair accuracy. *)

type t = { system : string; sections : (string * string) list }

val make : ?system:string -> (string * string) list -> t

val add_section : t -> string -> string -> t

val render : t -> string

val tokens : t -> int

val quality : t -> float
(** In [0, 1]; grows with the presence of the [error], [features],
    [pruned_ast], [kb_hints] and [feedback] sections. *)

(* canonical section names *)
val sec_code : string
val sec_error : string
val sec_features : string
val sec_pruned_ast : string
val sec_kb_hints : string
val sec_feedback : string
val sec_step : string

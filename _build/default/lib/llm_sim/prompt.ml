type t = { system : string; sections : (string * string) list }

let sec_code = "code"
let sec_error = "error"
let sec_features = "features"
let sec_pruned_ast = "pruned_ast"
let sec_kb_hints = "kb_hints"
let sec_feedback = "feedback"
let sec_step = "step"

let default_system =
  "You are a Rust safety expert. Eliminate the undefined behaviour while \
   preserving the program's semantics."

let make ?(system = default_system) sections = { system; sections }

let add_section t name body = { t with sections = t.sections @ [ (name, body) ] }

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.system;
  Buffer.add_string buf "\n\n";
  List.iter
    (fun (name, body) ->
      Buffer.add_string buf ("## " ^ name ^ "\n");
      Buffer.add_string buf body;
      Buffer.add_string buf "\n\n")
    t.sections;
  Buffer.contents buf

let tokens t = Tokenizer.count (render t)

let has t name = List.mem_assoc name t.sections

let quality t =
  let score = ref 0.1 in
  if has t sec_error then score := !score +. 0.15;
  if has t sec_features then score := !score +. 0.15;
  if has t sec_pruned_ast then score := !score +. 0.15;
  if has t sec_kb_hints then score := !score +. 0.30;
  if has t sec_feedback then score := !score +. 0.10;
  min 1.0 !score

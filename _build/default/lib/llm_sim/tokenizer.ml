let count text =
  let words = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
      let is_sep = c = ' ' || c = '\n' || c = '\t' in
      if is_sep then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr words
      end)
    text;
  (* roughly: one token per short word plus one per 4 chars of residue *)
  max !words ((String.length text + 3) / 4)

let count_program p = count (Minirust.Pretty.program p)

(** Approximate tokenizer used for cost and latency accounting.

    The simulator charges time and tokens per call the way a metered API
    would; roughly 4 characters per token, which is the usual rule of thumb
    for BPE tokenizers on code. *)

val count : string -> int
(** Approximate token count of a text. *)

val count_program : Minirust.Ast.program -> int
(** Token count of a program's source rendering. *)

lib/llm_sim/tokenizer.mli: Minirust

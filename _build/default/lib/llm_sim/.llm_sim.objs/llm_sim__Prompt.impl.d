lib/llm_sim/prompt.ml: Buffer List Tokenizer

lib/llm_sim/client.ml: Hashtbl List Miri Option Printf Profile Prompt Rb_util String

lib/llm_sim/tokenizer.ml: Minirust String

lib/llm_sim/client.mli: Miri Profile Prompt Rb_util

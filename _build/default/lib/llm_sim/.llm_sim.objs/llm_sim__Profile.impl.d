lib/llm_sim/profile.ml: List Miri String

lib/llm_sim/prompt.mli:

lib/llm_sim/profile.mli: Miri

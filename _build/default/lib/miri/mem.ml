open Minirust

type alloc_kind = Heap | Stack | Global

type byte = B_uninit | B_int of int | B_frag of Value.pointer * int

type bucket = {
  mutable na_write : Vclock.t;
  mutable na_read : Vclock.t;
  mutable at_write : Vclock.t;
  mutable at_read : Vclock.t;
  mutable sync : Vclock.t;
}

type allocation = {
  id : int;
  base : int;
  size : int;
  align : int;
  kind : alloc_kind;
  mutable live : bool;
  data : byte array;
  borrows : Borrow.t;
  base_tag : int;
  mutable exposed : bool;
}

type access_error =
  | Dead of string
  | Oob of string
  | No_alloc of string
  | Misaligned of string
  | Borrow_bad of Borrow.violation
  | Race of string
  | Not_exposed of string

type t = {
  mutable next_addr : int;
  mutable next_id : int;
  allocs : (int, allocation) Hashtbl.t;
  buckets : (int * int, bucket) Hashtbl.t;  (* (alloc id, bucket index) *)
  mutable order : allocation list;  (* for address lookup, newest first *)
}

let create () =
  { next_addr = 0x1001; next_id = 1; allocs = Hashtbl.create 64;
    buckets = Hashtbl.create 64; order = [] }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let allocate t ~size ~align ~kind =
  if size < 0 then invalid_arg "Mem.allocate: negative size";
  if not (is_power_of_two align) then invalid_arg "Mem.allocate: bad alignment";
  let base = Layout.round_up t.next_addr align in
  (* Guard gap so off-by-one pointers never fall into a neighbour. The odd
     37 also prevents low-alignment allocations from accidentally landing on
     8-byte boundaries, which would mask unaligned-access UB. *)
  t.next_addr <- base + size + 37;
  let id = t.next_id in
  t.next_id <- id + 1;
  let base_tag = Borrow.fresh_tag () in
  let a =
    { id; base; size; align; kind; live = true;
      data = Array.make size B_uninit;
      borrows = Borrow.create ~base_tag; base_tag; exposed = false }
  in
  Hashtbl.replace t.allocs id a;
  t.order <- a :: t.order;
  a

let deallocate _t a = a.live <- false

let find_alloc t id = Hashtbl.find_opt t.allocs id

let alloc_containing t addr =
  List.find_opt (fun a -> addr >= a.base && addr < a.base + max a.size 1) t.order

let live_heap_allocations t =
  List.filter (fun a -> a.live && a.kind = Heap) t.order

(* ------------------------------------------------------------------ *)
(* Race metadata *)

let bucket_of t a idx =
  match Hashtbl.find_opt t.buckets (a.id, idx) with
  | Some b -> b
  | None ->
    let b =
      { na_write = Vclock.empty; na_read = Vclock.empty; at_write = Vclock.empty;
        at_read = Vclock.empty; sync = Vclock.empty }
    in
    Hashtbl.replace t.buckets (a.id, idx) b;
    b

let bucket_range ~offset ~len =
  if len <= 0 then [] else List.init (((offset + len - 1) / 8) - (offset / 8) + 1)
                             (fun i -> (offset / 8) + i)

let race_check t a ~offset ~len ~tid ~clock ~write ~atomic =
  let check_bucket idx =
    let b = bucket_of t a idx in
    let conflict vc what =
      if not (Vclock.leq vc clock) then
        Some (Printf.sprintf
                "conflicting %s: earlier access %s not ordered before thread %d's %s"
                what (Vclock.to_string vc) tid
                (if write then "write" else "read"))
      else None
    in
    let issue =
      if atomic then
        if write then
          match conflict b.na_write "non-atomic write vs atomic write" with
          | Some _ as s -> s
          | None -> conflict b.na_read "non-atomic read vs atomic write"
        else conflict b.na_write "non-atomic write vs atomic read"
      else if write then
        match conflict b.na_write "write-after-write" with
        | Some _ as s -> s
        | None -> (
          match conflict b.na_read "write-after-read" with
          | Some _ as s -> s
          | None -> (
            match conflict b.at_write "write vs atomic write" with
            | Some _ as s -> s
            | None -> conflict b.at_read "write vs atomic read"))
      else
        match conflict b.na_write "read-after-write" with
        | Some _ as s -> s
        | None -> conflict b.at_write "read vs atomic write"
    in
    match issue with
    | Some msg -> Error msg
    | None ->
      let mark vc = Vclock.set vc tid (Vclock.get clock tid) in
      (if atomic then
         if write then begin
           b.at_write <- mark b.at_write;
           b.sync <- Vclock.merge b.sync clock
         end
         else b.at_read <- mark b.at_read
       else if write then b.na_write <- mark b.na_write
       else b.na_read <- mark b.na_read);
      Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | idx :: rest -> ( match check_bucket idx with Ok () -> go rest | Error _ as e -> e)
  in
  go (bucket_range ~offset ~len)

let sync_clock_of t a offset = (bucket_of t a (offset / 8)).sync

(* ------------------------------------------------------------------ *)
(* Access validation *)

let check_access t ~ptr ~len ~align ~write ~tid ~clock ~atomic =
  let open Value in
  let fail_no_alloc () =
    if ptr.addr = 0 then Error (No_alloc "null pointer dereference")
    else Error (No_alloc (Printf.sprintf "no allocation at address %d" ptr.addr))
  in
  let resolve () =
    match ptr.prov with
    | P_alloc id -> (
      match find_alloc t id with
      | Some a -> Ok a
      | None -> fail_no_alloc ())
    | P_wild -> (
      match alloc_containing t ptr.addr with
      | None -> fail_no_alloc ()
      | Some a ->
        if a.exposed then Ok a
        else
          Error
            (Not_exposed
               (Printf.sprintf
                  "wildcard pointer into allocation %d whose address was never exposed"
                  a.id)))
    | P_fn _ -> Error (No_alloc "data access through a function pointer")
    | P_none -> fail_no_alloc ()
  in
  match resolve () with
  | Error _ as e -> e
  | Ok a ->
    if not a.live then
      Error
        (Dead
           (Printf.sprintf "use of deallocated memory (allocation %d at address %d)"
              a.id ptr.addr))
    else begin
      let offset = ptr.addr - a.base in
      if offset < 0 || offset + len > a.size then
        Error
          (Oob
             (Printf.sprintf
                "out-of-bounds access: %d bytes at offset %d of %d-byte allocation %d"
                len offset a.size a.id))
      else if align > 1 && ptr.addr mod align <> 0 then
        Error
          (Misaligned
             (Printf.sprintf "address %d is not aligned to %d bytes" ptr.addr align))
      else if len = 0 then Ok (a, offset, [])
      else
        match Borrow.access a.borrows ~tag:ptr.tag ~write with
        | Error v -> Error (Borrow_bad v)
        | Ok popped -> (
          match race_check t a ~offset ~len ~tid ~clock ~write ~atomic with
          | Error msg -> Error (Race msg)
          | Ok () -> Ok (a, offset, popped))
    end

let read_bytes a ~offset ~len = Array.sub a.data offset len

let write_bytes a ~offset bytes =
  Array.blit bytes 0 a.data offset (Array.length bytes)

let expose t (ptr : Value.pointer) =
  match ptr.prov with
  | Value.P_alloc id -> (
    match find_alloc t id with Some a -> a.exposed <- true | None -> ())
  | Value.P_wild -> (
    match alloc_containing t ptr.addr with Some a -> a.exposed <- true | None -> ())
  | Value.P_fn _ | Value.P_none -> ()

let retag t ~(ptr : Value.pointer) ~perm =
  let open Value in
  match ptr.prov with
  | P_alloc id -> (
    match find_alloc t id with
    | None -> Error (No_alloc "retag of pointer to unknown allocation")
    | Some a ->
      if not a.live then Error (Dead "retag of pointer into deallocated memory")
      else (
        match Borrow.retag a.borrows ~parent:ptr.tag perm with
        | Error v -> Error (Borrow_bad v)
        | Ok (tag, popped) -> Ok ({ ptr with tag = Some tag }, popped)))
  | P_wild -> (
    match alloc_containing t ptr.addr with
    | None -> Error (No_alloc "retag of wildcard pointer outside any allocation")
    | Some a ->
      if not a.live then Error (Dead "retag of wildcard pointer into dead memory")
      else if not a.exposed then
        Error (Not_exposed "retag of wildcard pointer into a never-exposed allocation")
      else (
        match Borrow.retag a.borrows ~parent:None perm with
        | Error v -> Error (Borrow_bad v)
        | Ok (tag, popped) ->
          Ok ({ prov = P_alloc a.id; addr = ptr.addr; tag = Some tag }, popped)))
  | P_fn _ -> Error (No_alloc "retag of a function pointer")
  | P_none -> Error (No_alloc "retag of a pointer without provenance")

(* ------------------------------------------------------------------ *)
(* Typed encoding *)

let encode_int64 value len =
  Array.init len (fun i ->
      B_int (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL)))

let encode_pointer (ptr : Value.pointer) =
  Array.init 8 (fun i -> B_frag (ptr, i))

let width_len = function
  | Ast.I8 -> 1
  | Ast.I16 -> 2
  | Ast.I32 -> 4
  | Ast.I64 | Ast.Usize -> 8

let rec encode program ~fn_addr (ty : Ast.ty) (v : Value.t) : byte array =
  let open Value in
  match (ty, v) with
  | Ast.T_unit, _ -> [||]
  | Ast.T_bool, V_bool b -> [| B_int (if b then 1 else 0) |]
  | Ast.T_int w, V_int (n, _) -> encode_int64 n (width_len w)
  | (Ast.T_ref _ | Ast.T_raw _), V_ptr (p, _) -> encode_pointer p
  | Ast.T_fn _, V_ptr (p, _) -> encode_pointer p
  | Ast.T_fn _, V_fn (name, _) -> encode_pointer (fn_addr name)
  | Ast.T_handle, V_handle h -> encode_int64 (Int64.of_int h) 8
  | Ast.T_array (elem, n), V_array vs ->
    let elem_size = Layout.size_of program elem in
    let out = Array.make (elem_size * n) B_uninit in
    List.iteri
      (fun i v ->
        Array.blit (encode program ~fn_addr elem v) 0 out (i * elem_size) elem_size)
      vs;
    out
  | Ast.T_tuple ts, V_tuple vs ->
    let out = Array.make (Layout.size_of program ty) B_uninit in
    List.iter2
      (fun (t, off) v ->
        let enc = encode program ~fn_addr t v in
        Array.blit enc 0 out off (Array.length enc))
      (List.combine ts (Layout.tuple_offsets program ts))
      vs;
    out
  | Ast.T_union _, V_bytes bytes ->
    Array.map (function Some n -> B_int n | None -> B_uninit) bytes
  | _ ->
    (* A value/type mismatch is an interpreter invariant violation, not a
       program UB: the typechecker rules it out. *)
    invalid_arg
      (Printf.sprintf "Mem.encode: cannot encode %s at type %s" (Value.to_display v)
         (Pretty.ty ty))

let byte_as_int = function
  | B_int n -> Some n
  | B_frag (ptr, i) -> Some ((ptr.Value.addr lsr (8 * i)) land 0xFF)
  | B_uninit -> None

let decode_int bytes =
  let n = Array.length bytes in
  let rec go i acc =
    if i >= n then Ok acc
    else
      match byte_as_int bytes.(i) with
      | None -> Error "read of uninitialized memory"
      | Some b -> go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  go 0 0L

let sign_extend value bits =
  if bits >= 64 then value
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left value shift) shift

let decode_pointer bytes =
  (* Preserved provenance requires all 8 bytes to be consecutive fragments of
     the same pointer. Anything else reconstructs a wildcard address. *)
  let all_frags =
    Array.for_all (function B_frag _ -> true | B_int _ | B_uninit -> false) bytes
  in
  if all_frags && Array.length bytes = 8 then begin
    match bytes.(0) with
    | B_frag (p0, 0) ->
      let consistent = ref true in
      Array.iteri
        (fun i b ->
          match b with
          | B_frag (p, idx) when idx = i && p = p0 -> ()
          | B_frag _ | B_int _ | B_uninit -> consistent := false)
        bytes;
      if !consistent then Ok p0
      else
        Result.map
          (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
          (decode_int bytes)
    | B_frag _ | B_int _ | B_uninit ->
      Result.map
        (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
        (decode_int bytes)
  end
  else
    Result.map
      (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
      (decode_int bytes)

let rec decode program (ty : Ast.ty) (bytes : byte array) :
    (Value.t, string) result =
  let open Value in
  match ty with
  | Ast.T_unit -> Ok V_unit
  | Ast.T_bool -> (
    match byte_as_int bytes.(0) with
    | None -> Error "read of uninitialized memory at type bool"
    | Some 0 -> Ok (V_bool false)
    | Some 1 -> Ok (V_bool true)
    | Some n -> Error (Printf.sprintf "invalid bool byte %d (must be 0 or 1)" n))
  | Ast.T_int w -> (
    match decode_int bytes with
    | Error e -> Error e
    | Ok raw ->
      let bits = 8 * width_len w in
      let v = match w with Ast.Usize -> raw | _ -> sign_extend raw bits in
      Ok (V_int (v, w)))
  | Ast.T_raw _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_ref _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p ->
      if p.addr = 0 then Error "constructed an invalid value: null reference"
      else Ok (V_ptr (p, ty)))
  | Ast.T_fn _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_handle -> (
    match decode_int bytes with
    | Error e -> Error e
    | Ok raw -> Ok (V_handle (Int64.to_int raw)))
  | Ast.T_array (elem, n) ->
    let elem_size = Layout.size_of program elem in
    let rec go i acc =
      if i >= n then Ok (V_array (List.rev acc))
      else
        match decode program elem (Array.sub bytes (i * elem_size) elem_size) with
        | Error e -> Error e
        | Ok v -> go (i + 1) (v :: acc)
    in
    go 0 []
  | Ast.T_tuple ts ->
    let offsets = Layout.tuple_offsets program ts in
    let rec go ts offs acc =
      match (ts, offs) with
      | [], [] -> Ok (V_tuple (List.rev acc))
      | t :: ts', off :: offs' -> (
        match decode program t (Array.sub bytes off (Layout.size_of program t)) with
        | Error e -> Error e
        | Ok v -> go ts' offs' (v :: acc))
      | _ -> Error "internal: tuple arity mismatch"
    in
    go ts offsets []
  | Ast.T_union _ ->
    Ok (V_bytes (Array.map byte_as_int bytes))

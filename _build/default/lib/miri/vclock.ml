module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty

let get c tid = Option.value (Imap.find_opt tid c) ~default:0

let tick c tid = Imap.add tid (get c tid + 1) c

let set c tid v = Imap.add tid v c

let merge a b = Imap.union (fun _ x y -> Some (max x y)) a b

let leq a b = Imap.for_all (fun tid epoch -> epoch <= get b tid) a

let to_string c =
  let entries =
    Imap.bindings c |> List.map (fun (tid, e) -> Printf.sprintf "%d:%d" tid e)
  in
  "{" ^ String.concat ", " entries ^ "}"

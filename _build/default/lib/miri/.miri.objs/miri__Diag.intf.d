lib/miri/diag.mli:

lib/miri/value.mli: Minirust

lib/miri/mem.ml: Array Ast Borrow Hashtbl Int64 Layout List Minirust Pretty Printf Result Value Vclock

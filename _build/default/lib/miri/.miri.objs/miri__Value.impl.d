lib/miri/value.ml: Array Ast Int64 Layout List Minirust Printf String

lib/miri/machine.ml: Array Ast Borrow Diag Effect Hashtbl Int64 Layout List Mem Minirust Option Pretty Printf Rb_util String Typecheck Value Vclock

lib/miri/borrow.ml: Hashtbl List Option Printf

lib/miri/mem.mli: Borrow Minirust Value Vclock

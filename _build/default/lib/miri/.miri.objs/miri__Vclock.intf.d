lib/miri/vclock.mli:

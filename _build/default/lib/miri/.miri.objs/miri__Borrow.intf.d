lib/miri/borrow.mli:

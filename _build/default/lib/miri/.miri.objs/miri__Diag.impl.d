lib/miri/diag.ml: List Printf String

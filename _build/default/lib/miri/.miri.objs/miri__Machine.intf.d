lib/miri/machine.mli: Diag Minirust

lib/miri/vclock.ml: Int List Map Option Printf String

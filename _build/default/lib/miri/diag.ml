type ub_kind =
  | Stack_borrow
  | Unaligned_pointer
  | Validity
  | Alloc
  | Func_pointer
  | Provenance
  | Panic_bug
  | Func_call
  | Dangling_pointer
  | Both_borrow
  | Concurrency
  | Data_race

type t = { kind : ub_kind; message : string; thread : int; stmt_hint : int }

let make ?(thread = 0) ?(stmt_hint = -1) kind message =
  { kind; message; thread; stmt_hint }

let kind_name = function
  | Stack_borrow -> "stack borrow"
  | Unaligned_pointer -> "unaligned pointer"
  | Validity -> "validity"
  | Alloc -> "alloc"
  | Func_pointer -> "func. pointer"
  | Provenance -> "provenance"
  | Panic_bug -> "panic"
  | Func_call -> "func. calls"
  | Dangling_pointer -> "dangling pointer"
  | Both_borrow -> "both borrow"
  | Concurrency -> "concurrency"
  | Data_race -> "data race"

let all_kinds =
  [ Stack_borrow; Unaligned_pointer; Validity; Alloc; Func_pointer; Provenance;
    Panic_bug; Func_call; Dangling_pointer; Both_borrow; Concurrency; Data_race ]

let kind_of_name name =
  List.find_opt (fun k -> String.equal (kind_name k) name) all_kinds

let to_string d =
  Printf.sprintf "UB(%s) in thread %d: %s" (kind_name d.kind) d.thread d.message

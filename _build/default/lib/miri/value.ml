open Minirust

type prov = P_alloc of int | P_fn of int | P_wild | P_none

type pointer = { prov : prov; addr : int; tag : int option }

type t =
  | V_unit
  | V_bool of bool
  | V_int of int64 * Ast.int_width
  | V_ptr of pointer * Ast.ty
  | V_fn of string * Ast.ty
  | V_handle of int
  | V_tuple of t list
  | V_array of t list
  | V_bytes of int option array

let null_pointer = { prov = P_none; addr = 0; tag = None }

let rec zero program (ty : Ast.ty) : t =
  match ty with
  | Ast.T_unit -> V_unit
  | Ast.T_bool -> V_bool false
  | Ast.T_int w -> V_int (0L, w)
  | Ast.T_ref _ | Ast.T_raw _ -> V_ptr (null_pointer, ty)
  | Ast.T_fn _ -> V_ptr (null_pointer, ty)
  | Ast.T_handle -> V_handle (-1)
  | Ast.T_array (t, n) -> V_array (List.init n (fun _ -> zero program t))
  | Ast.T_tuple ts -> V_tuple (List.map (zero program) ts)
  | Ast.T_union _ as t ->
    V_bytes (Array.make (Layout.size_of program t) (Some 0))

let rec to_display = function
  | V_unit -> "()"
  | V_bool b -> if b then "true" else "false"
  | V_int (n, _) -> Int64.to_string n
  | V_ptr (p, _) -> Printf.sprintf "ptr@%d" p.addr
  | V_fn (name, _) -> "fn:" ^ name
  | V_handle h -> Printf.sprintf "handle:%d" h
  | V_tuple vs -> "(" ^ String.concat ", " (List.map to_display vs) ^ ")"
  | V_array vs -> "[" ^ String.concat ", " (List.map to_display vs) ^ "]"
  | V_bytes b -> Printf.sprintf "union<%d bytes>" (Array.length b)

let as_int = function V_int (n, _) -> Some n | _ -> None
let as_bool = function V_bool b -> Some b | _ -> None
let as_pointer = function V_ptr (p, _) -> Some p | _ -> None

let rec equal a b =
  match (a, b) with
  | V_unit, V_unit -> true
  | V_bool x, V_bool y -> x = y
  | V_int (x, wx), V_int (y, wy) -> Int64.equal x y && wx = wy
  | V_ptr (p, _), V_ptr (q, _) -> p.addr = q.addr
  | V_fn (f, _), V_fn (g, _) -> String.equal f g
  | V_handle x, V_handle y -> x = y
  | V_tuple xs, V_tuple ys | V_array xs, V_array ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | V_bytes xs, V_bytes ys -> xs = ys
  | ( ( V_unit | V_bool _ | V_int _ | V_ptr _ | V_fn _ | V_handle _ | V_tuple _
      | V_array _ | V_bytes _ ),
      _ ) ->
    false

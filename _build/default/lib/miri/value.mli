(** Runtime values and pointers of the UB-detecting interpreter. *)

type prov =
  | P_alloc of int   (** pointer into allocation [id] *)
  | P_fn of int      (** pointer to function-table slot [idx] *)
  | P_wild           (** from an integer: provenance must be re-derived via expose *)
  | P_none           (** no provenance at all (e.g. dangling constant) *)

type pointer = {
  prov : prov;
  addr : int;            (** absolute simulated address *)
  tag : int option;      (** borrow-stack tag, [None] for wildcard pointers *)
}

type t =
  | V_unit
  | V_bool of bool
  | V_int of int64 * Minirust.Ast.int_width
  | V_ptr of pointer * Minirust.Ast.ty  (** pointer plus its static pointer type *)
  | V_fn of string * Minirust.Ast.ty    (** named function and claimed fn type *)
  | V_handle of int                     (** thread handle *)
  | V_tuple of t list
  | V_array of t list
  | V_bytes of int option array
      (** opaque union value: raw bytes, [None] = uninitialized byte *)

val null_pointer : pointer

val zero : Minirust.Ast.program -> Minirust.Ast.ty -> t
(** Defined recovery value of a type (collect-mode fallback). *)

val to_display : t -> string
(** Rendering used by [print]; part of a program's observable output. *)

val as_int : t -> int64 option
val as_bool : t -> bool option
val as_pointer : t -> pointer option

val equal : t -> t -> bool

(** Diagnostics produced by the UB-detecting interpreter.

    The twelve [ub_kind] constructors mirror the twelve error-type rows of
    the paper's Table I; every undefined behaviour the machine detects is
    classified into exactly one of them. *)

type ub_kind =
  | Stack_borrow       (** use of a pointer whose borrow-stack item was invalidated *)
  | Unaligned_pointer  (** typed access through an insufficiently aligned pointer *)
  | Validity           (** invalid value: uninitialized read, bad bool, null reference *)
  | Alloc              (** invalid free, double free, bad layout, memory leak *)
  | Func_pointer       (** call through a fn pointer with a mismatched signature *)
  | Provenance         (** access through a pointer without valid provenance *)
  | Panic_bug          (** panic reached inside code required to be panic-free (unsafe invariant) *)
  | Func_call          (** call through something that is not a function at all *)
  | Dangling_pointer   (** access to dead or out-of-bounds memory *)
  | Both_borrow        (** shared reference used after a conflicting mutable borrow *)
  | Concurrency        (** deadlock, double join, threads leaked at exit *)
  | Data_race          (** conflicting unsynchronized accesses from two threads *)

type t = {
  kind : ub_kind;
  message : string;
  thread : int;        (** thread id that triggered the diagnostic *)
  stmt_hint : int;     (** node id of the statement being executed, or -1 *)
}

val make : ?thread:int -> ?stmt_hint:int -> ub_kind -> string -> t

val kind_name : ub_kind -> string
(** Short name matching the paper's Table I rows, e.g. ["stack borrow"]. *)

val kind_of_name : string -> ub_kind option

val all_kinds : ub_kind list

val to_string : t -> string

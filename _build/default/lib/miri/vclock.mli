(** Vector clocks for happens-before data-race detection (DJIT+-style).

    A clock maps thread ids to epochs. Detection is based purely on
    happens-before, so a race is reported whenever two unordered conflicting
    accesses exist — no particular interleaving needs to be witnessed. *)

type t

val empty : t
val get : t -> int -> int
val tick : t -> int -> t
(** [tick c tid] increments thread [tid]'s own epoch. *)

val set : t -> int -> int -> t
val merge : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** [leq a b] iff every epoch of [a] is [<=] the matching epoch of [b]. *)

val to_string : t -> string

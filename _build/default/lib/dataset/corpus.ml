let all =
  Gen_stack_borrow.cases @ Gen_unaligned.cases @ Gen_validity.cases @ Gen_alloc.cases
  @ Gen_func_pointer.cases @ Gen_provenance.cases @ Gen_panic.cases
  @ Gen_func_calls.cases @ Gen_dangling.cases @ Gen_both_borrow.cases
  @ Gen_concurrency.cases @ Gen_data_race.cases

let by_category k = List.filter (fun (c : Case.t) -> c.Case.category = k) all

let find name = List.find_opt (fun (c : Case.t) -> String.equal c.Case.name name) all

let categories = Miri.Diag.all_kinds

let size = List.length all

let stats () = List.map (fun k -> (k, List.length (by_category k))) categories

lib/dataset/case.mli: Minirust Miri

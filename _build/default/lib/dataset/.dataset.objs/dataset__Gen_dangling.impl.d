lib/dataset/gen_dangling.ml: Case Miri

lib/dataset/gen_unaligned.ml: Case Miri

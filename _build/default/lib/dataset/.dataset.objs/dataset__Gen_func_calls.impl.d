lib/dataset/gen_func_calls.ml: Case Miri

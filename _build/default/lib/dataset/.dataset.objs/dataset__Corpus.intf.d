lib/dataset/corpus.mli: Case Miri

lib/dataset/gen_concurrency.ml: Case Miri

lib/dataset/gen_both_borrow.ml: Case Miri

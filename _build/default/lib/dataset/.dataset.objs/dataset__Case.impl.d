lib/dataset/case.ml: Minirust Miri

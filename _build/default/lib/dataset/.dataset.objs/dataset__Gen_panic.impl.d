lib/dataset/gen_panic.ml: Case Miri

lib/dataset/semantic.mli: Case Minirust

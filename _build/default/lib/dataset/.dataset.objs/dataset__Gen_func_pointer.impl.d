lib/dataset/gen_func_pointer.ml: Case Miri

lib/dataset/gen_data_race.ml: Case Miri

lib/dataset/gen_alloc.ml: Case Miri

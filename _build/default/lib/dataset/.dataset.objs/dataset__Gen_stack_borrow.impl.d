lib/dataset/gen_stack_borrow.ml: Case Miri

lib/dataset/gen_provenance.ml: Case Miri

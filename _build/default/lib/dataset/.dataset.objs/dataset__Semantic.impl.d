lib/dataset/semantic.ml: Case List Minirust Miri String

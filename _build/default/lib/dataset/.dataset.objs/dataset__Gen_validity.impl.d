lib/dataset/gen_validity.ml: Case Miri

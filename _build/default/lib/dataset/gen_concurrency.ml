(* Concurrency misuse other than data races: leaked threads, double joins,
   forged handles. *)

let k = Miri.Diag.Concurrency

let cases =
  [
    Case.make ~name:"cc_thread_leak" ~category:k
      ~description:"main exits while a worker is still unjoined"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    print(n * 2);
}

fn main() {
    let h = spawn worker(input(0));
    print(1);
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    print(n * 2);
}

fn main() {
    let h = spawn worker(input(0));
    join(h);
    print(1);
}
|}
      ()
  ;
    Case.make ~name:"cc_double_join" ~category:k
      ~description:"the same handle is joined twice"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    print(n);
}

fn main() {
    let h = spawn worker(input(0));
    join(h);
    join(h);
    print(9);
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    print(n);
}

fn main() {
    let h = spawn worker(input(0));
    join(h);
    print(9);
}
|}
      ()
  ;
    Case.make ~name:"cc_forged_handle" ~category:k
      ~description:"an integer is transmuted into a thread handle and joined"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
fn main() {
    let mut ticket = input(0);
    unsafe {
        let mut h = transmute::<handle>(ticket + 40);
        join(h);
    }
    print(ticket);
}
|}
      ~fixed:
        {|
fn main() {
    let mut ticket = input(0);
    print(ticket);
}
|}
      ()
  ;
    Case.make ~name:"cc_two_leaks" ~category:k
      ~description:"a fan-out joins only one of its two workers"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    let mut local = n * n;
    local = local + 1;
}

fn main() {
    let a = spawn worker(input(0));
    let b = spawn worker(input(0) + 1);
    join(a);
    print(0);
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    let mut local = n * n;
    local = local + 1;
}

fn main() {
    let a = spawn worker(input(0));
    let b = spawn worker(input(0) + 1);
    join(a);
    join(b);
    print(0);
}
|}
      ()
  ;
    Case.make ~name:"cc_conditional_leak" ~category:k
      ~description:"an early-out path forgets to join"
      ~probes:[ [| 0L |]; [| 4L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    let mut unused = n + 1;
    unused = unused * 2;
}

fn main() {
    let h = spawn worker(input(0));
    if input(0) == 0 {
        print(-1);
    } else {
        join(h);
        print(input(0));
    }
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    let mut unused = n + 1;
    unused = unused * 2;
}

fn main() {
    let h = spawn worker(input(0));
    join(h);
    if input(0) == 0 {
        print(-1);
    } else {
        print(input(0));
    }
}
|}
      ()
  ;
    Case.make ~name:"cc_join_in_wrong_branch" ~category:k
      ~description:"the join lives inside a branch that not every input reaches"
      ~probes:[ [| 1L |]; [| 5L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    let mut x = n * 2;
    x = x + 1;
}

fn main() {
    let h = spawn worker(input(0));
    let mut mode = input(0);
    if mode > 3 {
        join(h);
        print(1);
    } else {
        print(0);
    }
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    let mut x = n * 2;
    x = x + 1;
}

fn main() {
    let h = spawn worker(input(0));
    let mut mode = input(0);
    join(h);
    if mode > 3 {
        print(1);
    } else {
        print(0);
    }
}
|}
      ()
  ;
    Case.make ~name:"cc_handle_reuse" ~category:k
      ~description:"a dispatcher joins the same worker once per loop iteration"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn worker(n: i64) {
    let mut x = n + 1;
    x = x * 2;
}

fn main() {
    let h = spawn worker(input(0));
    let mut i = 0;
    while i < input(0) {
        join(h);
        i = i + 1;
    }
    print(i);
}
|}
      ~fixed:
        {|
fn worker(n: i64) {
    let mut x = n + 1;
    x = x * 2;
}

fn main() {
    let h = spawn worker(input(0));
    join(h);
    let mut i = 0;
    while i < input(0) {
        i = i + 1;
    }
    print(i);
}
|}
      ()
  ;
    Case.make ~name:"cc_nested_spawn_leak" ~category:k
      ~description:"a worker spawns a grandchild nobody joins"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn grandchild(n: i64) {
    let mut x = n * 3;
    x = x + 1;
}

fn child(n: i64) {
    let g = spawn grandchild(n);
    let mut y = n + 1;
    y = y * 2;
}

fn main() {
    let c = spawn child(input(0));
    join(c);
    print(0);
}
|}
      ~fixed:
        {|
fn grandchild(n: i64) {
    let mut x = n * 3;
    x = x + 1;
}

fn child(n: i64) {
    let g = spawn grandchild(n);
    let mut y = n + 1;
    y = y * 2;
    join(g);
}

fn main() {
    let c = spawn child(input(0));
    join(c);
    print(0);
}
|}
      ()
  ;
    Case.make ~name:"cc_fanout_partial_join" ~category:k
      ~description:"a three-way fan-out joins only the first two workers"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn work(n: i64) {
    let mut acc = 0;
    let mut i = 0;
    while i < n {
        acc = acc + i;
        i = i + 1;
    }
}

fn main() {
    let a = spawn work(input(0));
    let b = spawn work(input(0) + 1);
    let c = spawn work(input(0) + 2);
    join(a);
    join(b);
    print(3);
}
|}
      ~fixed:
        {|
fn work(n: i64) {
    let mut acc = 0;
    let mut i = 0;
    while i < n {
        acc = acc + i;
        i = i + 1;
    }
}

fn main() {
    let a = spawn work(input(0));
    let b = spawn work(input(0) + 1);
    let c = spawn work(input(0) + 2);
    join(a);
    join(b);
    join(c);
    print(3);
}
|}
      ()
  ]

(* Provenance UBs: integer-derived pointers used without a valid provenance
   chain (the address was never exposed, or the provenance was stripped by a
   transmute round-trip). *)

let k = Miri.Diag.Provenance

let cases =
  [
    Case.make ~name:"pv_transmute_roundtrip" ~category:k
      ~description:"ptr->int via transmute strips provenance without exposing"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    unsafe {
        let mut addr = transmute::<usize>(&raw const x);
        let mut p = addr as *const i64;
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    unsafe {
        let mut addr = &raw const x as usize;
        let mut p = addr as *const i64;
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"pv_int_in_memory" ~category:k
      ~description:"a pointer smuggled through memory as an integer loses provenance"
      ~probes:[ [| 9L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    let mut stash = 0;
    unsafe {
        stash = transmute::<i64>(&raw mut x);
        let mut p = transmute::<*mut i64>(stash);
        *p = *p + 1;
    }
    print(x);
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    let mut stash = 0;
    unsafe {
        stash = &raw mut x as *mut i64 as i64;
        let mut p = stash as *mut i64;
        *p = *p + 1;
    }
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"pv_neighbor_guess" ~category:k
      ~description:"pointer arithmetic from one exposed local into an unexposed one"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut a = input(0);
    let mut b = a * 10;
    let mut base = &raw const a as usize;
    unsafe {
        let mut hop = transmute::<usize>(&raw const b) - base;
        let mut p = (base + hop) as *const i64;
        let mut q = base as *const i64;
        print(*q);
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut a = input(0);
    let mut b = a * 10;
    let mut q = &raw const a;
    let mut p = &raw const b;
    unsafe {
        print(*q);
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"pv_xor_stash" ~category:k
      ~description:"an XOR-encoded pointer is decoded and dereferenced"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    let mut secret = input(0);
    unsafe {
        let mut masked = transmute::<usize>(&raw const secret) ^ 12345usize;
        let mut p = (masked ^ 12345usize) as *const i64;
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut secret = input(0);
    unsafe {
        let mut masked = (&raw const secret as usize) ^ 12345usize;
        let mut p = (masked ^ 12345usize) as *const i64;
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"pv_write_unexposed" ~category:k
      ~description:"writing through an integer-derived pointer that was never exposed"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    let mut slot = input(0);
    unsafe {
        let mut addr = transmute::<usize>(&raw mut slot);
        let mut p = addr as *mut i64;
        *p = 99;
    }
    print(slot);
}
|}
      ~fixed:
        {|
fn main() {
    let mut slot = input(0);
    unsafe {
        let mut p = &raw mut slot;
        *p = 99;
    }
    print(slot);
}
|}
      ()
  ;
    Case.make ~name:"pv_handle_table" ~category:k
      ~description:"a handle table stores addresses as plain integers via transmute"
      ~probes:[ [| 8L |] ]
      ~buggy:
        {|
fn main() {
    let mut value = input(0);
    let mut handles = [0, 0];
    unsafe {
        handles[0] = transmute::<i64>(&raw mut value);
        let mut back = handles[0] as *mut i64;
        *back = *back + 1;
    }
    print(value);
}
|}
      ~fixed:
        {|
fn main() {
    let mut value = input(0);
    let mut handles = [0, 0];
    unsafe {
        handles[0] = &raw mut value as i64;
        let mut back = handles[0] as *mut i64;
        *back = *back + 1;
    }
    print(value);
}
|}
      ()
  ;
    Case.make ~name:"pv_offset_from_strange_base" ~category:k
      ~description:"field address computed from a transmuted (never exposed) base"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut pair = (input(0), input(0) * 10);
    unsafe {
        let mut base = transmute::<usize>(&raw const pair);
        let mut second = (base + 8usize) as *const i64;
        print(*second);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut pair = (input(0), input(0) * 10);
    unsafe {
        let mut base = &raw const pair as usize;
        let mut second = (base + 8usize) as *const i64;
        print(*second);
    }
}
|}
      ()
  ]

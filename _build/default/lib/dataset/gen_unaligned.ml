(* Unaligned-pointer UBs: a typed access whose address is not a multiple of
   the type's alignment. *)

let k = Miri.Diag.Unaligned_pointer

let cases =
  [
    Case.make ~name:"ua_odd_offset_write" ~category:k
      ~description:"writing an i64 one byte into the buffer"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8);
        let mut q = buf.offset(1) as *mut i64;
        *q = input(0);
        print(*q);
        dealloc(buf, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8);
        let mut q = buf.offset(8) as *mut i64;
        *q = input(0);
        print(*q);
        dealloc(buf, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_half_word_read" ~category:k
      ~description:"reading an i64 from a 4-byte boundary"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8);
        let mut lo = buf as *mut i32;
        *lo = input(0) as i32;
        let mut wide = buf.offset(4) as *mut i64;
        print(*wide);
        dealloc(buf, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8);
        let mut lo = buf as *mut i32;
        *lo = input(0) as i32;
        print(*lo as i64);
        dealloc(buf, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_underaligned_alloc" ~category:k
      ~description:"the allocation's own alignment is too small for i64 access"
      ~probes:[ [| 9L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(8, 1) as *mut i64;
        *buf = input(0);
        print(*buf);
        dealloc(buf as *mut i8, 8, 1);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(8, 8) as *mut i64;
        *buf = input(0);
        print(*buf);
        dealloc(buf as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_exposed_addr_bump" ~category:k
      ~description:"address arithmetic on an exposed address breaks alignment"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut pair = [input(0), 77];
    let mut addr = &raw mut pair[0] as *mut i64 as usize;
    let mut p = (addr + 1usize) as *const i64;
    unsafe {
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut pair = [input(0), 77];
    let mut addr = &raw mut pair[0] as *mut i64 as usize;
    let mut p = addr as *const i64;
    unsafe {
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_packed_scan" ~category:k
      ~description:"a byte scanner reinterprets odd positions as i16"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(8, 2);
        let mut i = 0;
        while i < 8 {
            *buf.offset(i) = (i + input(0)) as i8;
            i = i + 1;
        }
        let mut probe = buf.offset(3) as *const i16;
        print(*probe as i64);
        dealloc(buf, 8, 2);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(8, 2);
        let mut i = 0;
        while i < 8 {
            *buf.offset(i) = (i + input(0)) as i8;
            i = i + 1;
        }
        let mut probe = buf.offset(4) as *const i16;
        print(*probe as i64);
        dealloc(buf, 8, 2);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_i32_at_odd" ~category:k
      ~description:"an i32 access at an odd address"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(12, 4);
        let mut cell = buf.offset(5) as *mut i32;
        *cell = input(0) as i32;
        print(*cell as i64);
        dealloc(buf, 12, 4);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(12, 4);
        let mut cell = buf.offset(4) as *mut i32;
        *cell = input(0) as i32;
        print(*cell as i64);
        dealloc(buf, 12, 4);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_header_then_payload" ~category:k
      ~description:"a 4-byte header pushes the 8-byte payload off alignment"
      ~probes:[ [| 8L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut msg = alloc(16, 8);
        let mut header = msg as *mut i32;
        *header = 7i32;
        let mut payload = msg.offset(4) as *mut i64;
        *payload = input(0);
        print(*header as i64);
        print(*payload);
        dealloc(msg, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut msg = alloc(16, 8);
        let mut header = msg as *mut i32;
        *header = 7i32;
        let mut payload = msg.offset(8) as *mut i64;
        *payload = input(0);
        print(*header as i64);
        print(*payload);
        dealloc(msg, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"ua_stride_walk" ~category:k
      ~description:"a record walker uses stride 12 over 8-aligned records"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut table = alloc(48, 8);
        let mut k = 0;
        while k < 2 {
            let mut cell = table.offset(k * 12) as *mut i64;
            *cell = input(0) + k;
            k = k + 1;
        }
        print(*(table as *const i64));
        dealloc(table, 48, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut table = alloc(48, 8);
        let mut k = 0;
        while k < 2 {
            let mut cell = table.offset(k * 16) as *mut i64;
            *cell = input(0) + k;
            k = k + 1;
        }
        print(*(table as *const i64));
        dealloc(table, 48, 8);
    }
}
|}
      ()
  ]

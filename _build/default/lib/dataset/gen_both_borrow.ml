(* "Both borrow" UBs: a shared (read-only) borrow coexists with a conflicting
   mutable access and is then used — Rust's aliasing rule &T xor &mut T. *)

let k = Miri.Diag.Both_borrow

let cases =
  [
    Case.make ~name:"bb_shared_then_mut" ~category:k
      ~description:"shared reference read after a mutable borrow of the same local"
      ~probes:[ [| 8L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    let mut s = &x;
    let mut m = &mut x;
    *m = *m + 1;
    print(*s);
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    let mut s = &x;
    print(*s);
    let mut m = &mut x;
    *m = *m + 1;
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"bb_write_through_const_cast" ~category:k
      ~description:"writing through a *mut that was laundered from a shared reference"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    let mut p = &x as *const i64 as *mut i64;
    unsafe {
        *p = *p + 1;
    }
    print(x);
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    let mut p = &mut x as *mut i64;
    unsafe {
        *p = *p + 1;
    }
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"bb_modify_while_borrowed" ~category:k
      ~description:"the local is written directly while a shared reference is live"
      ~probes:[ [| 2L |]; [| 11L |] ]
      ~buggy:
        {|
fn main() {
    let mut value = input(0);
    let mut view = &value;
    value = value * 2;
    print(*view);
}
|}
      ~fixed:
        {|
fn main() {
    let mut value = input(0);
    value = value * 2;
    let mut view = &value;
    print(*view);
}
|}
      ()
  ;
    Case.make ~name:"bb_aliasing_call_args" ~category:k
      ~description:"&x and &mut x built for the same call; the shared one is read last"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn observe(s: &i64, m: &mut i64) -> i64 {
    *m = *m + 10;
    return *s;
}

fn main() {
    let mut x = input(0);
    let mut got = observe(&x, &mut x);
    print(got);
}
|}
      ~fixed:
        {|
fn observe(s: i64, m: &mut i64) -> i64 {
    *m = *m + 10;
    return s;
}

fn main() {
    let mut x = input(0);
    let mut before = x;
    let mut got = observe(before, &mut x);
    print(got);
}
|}
      ()
  ;
    Case.make ~name:"bb_tuple_field_alias" ~category:k
      ~description:"a shared borrow of one tuple field outlives a mutable borrow of the tuple"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut pair = (input(0), 100);
    let mut s = &pair.0;
    let mut m = &mut pair;
    (*m).1 = (*m).1 + 1;
    print(*s);
    print(pair.1);
}
|}
      ~fixed:
        {|
fn main() {
    let mut pair = (input(0), 100);
    let mut s = &pair.0;
    print(*s);
    let mut m = &mut pair;
    (*m).1 = (*m).1 + 1;
    print(pair.1);
}
|}
      ()
  ;
    Case.make ~name:"bb_stale_shared_in_loop" ~category:k
      ~description:"shared reference captured once but the loop keeps mutating"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut acc = 1;
    let mut snapshot = &acc;
    let mut i = 0;
    while i < input(0) {
        acc = acc + i;
        i = i + 1;
    }
    print(*snapshot);
}
|}
      ~fixed:
        {|
fn main() {
    let mut acc = 1;
    let mut i = 0;
    while i < input(0) {
        acc = acc + i;
        i = i + 1;
    }
    let mut snapshot = &acc;
    print(*snapshot);
}
|}
      ()
  ;
    Case.make ~name:"bb_field_view_invalidated" ~category:k
      ~description:"a shared view of one tuple field is read after the whole tuple is rewritten"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn main() {
    let mut record = (input(0), input(0) * 2);
    let mut view = &record.1;
    record = (0, 0);
    print(*view);
}
|}
      ~fixed:
        {|
fn main() {
    let mut record = (input(0), input(0) * 2);
    let mut view = &record.1;
    print(*view);
    record = (0, 0);
    print(record.1);
}
|}
      ()
  ;
    Case.make ~name:"bb_reader_helper" ~category:k
      ~description:"a helper reads through a shared reference captured before a direct write"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn read_twice(r: &i64) -> i64 {
    return *r + *r;
}

fn main() {
    let mut gauge = input(0);
    let mut snapshot = &gauge;
    gauge = gauge + 10;
    print(read_twice(snapshot));
}
|}
      ~fixed:
        {|
fn read_twice(r: &i64) -> i64 {
    return *r + *r;
}

fn main() {
    let mut gauge = input(0);
    gauge = gauge + 10;
    let mut snapshot = &gauge;
    print(read_twice(snapshot));
}
|}
      ()
  ]

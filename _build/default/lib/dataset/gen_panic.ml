(* Panic-category errors: the program aborts with a reachable panic —
   arithmetic overflow, division by zero, out-of-bounds checked indexing, or
   an over-strict assertion. Panics are defined behaviour, but they are the
   bug these cases exist to fix: the reference runs to completion. *)

let k = Miri.Diag.Panic_bug

let cases =
  [
    Case.make ~name:"pn_add_overflow" ~category:k
      ~description:"an accumulator saturates past i64::MAX"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut nearly_max = 9223372036854775800;
    let mut bump = input(0) * 5;
    let mut total = nearly_max + bump;
    print(total);
}
|}
      ~fixed:
        {|
fn main() {
    let mut nearly_max = 9223372036854775800;
    let mut bump = input(0) * 5;
    let mut room = 9223372036854775807 - nearly_max;
    if bump > room {
        print(9223372036854775807);
    } else {
        print(nearly_max + bump);
    }
}
|}
      ()
  ;
    Case.make ~name:"pn_div_by_zero" ~category:k
      ~description:"a ratio is computed without guarding the divisor"
      ~probes:[ [| 10L; 0L |]; [| 10L; 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut total = input(0);
    let mut count = input(1);
    let mut mean = total / count;
    print(mean);
}
|}
      ~fixed:
        {|
fn main() {
    let mut total = input(0);
    let mut count = input(1);
    if count == 0 {
        print(0);
    } else {
        print(total / count);
    }
}
|}
      ()
  ;
    Case.make ~name:"pn_index_off_by_one" ~category:k
      ~description:"a scan loop runs one element past the array"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    let mut table = [3, 1, 4, 1, 5];
    let mut i = 0;
    let mut sum = 0;
    while i <= table.len() as i64 {
        sum = sum + table[i];
        i = i + 1;
    }
    print(sum);
}
|}
      ~fixed:
        {|
fn main() {
    let mut table = [3, 1, 4, 1, 5];
    let mut i = 0;
    let mut sum = 0;
    while i < table.len() as i64 {
        sum = sum + table[i];
        i = i + 1;
    }
    print(sum);
}
|}
      ()
  ;
    Case.make ~name:"pn_strict_assert" ~category:k
      ~description:"a sanity assertion rejects a legal input"
      ~probes:[ [| 0L |]; [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut requests = input(0);
    assert(requests > 0, "requests must be positive");
    print(requests * 2);
}
|}
      ~fixed:
        {|
fn main() {
    let mut requests = input(0);
    assert(requests >= 0, "requests must be non-negative");
    print(requests * 2);
}
|}
      ()
  ;
    Case.make ~name:"pn_mul_overflow" ~category:k
      ~description:"a size computation multiplies past the integer range"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    let mut blocks = 4611686018427387904;
    let mut bytes = blocks * (input(0) + 1);
    print(bytes);
}
|}
      ~fixed:
        {|
fn main() {
    let mut blocks = 4611686018427387904;
    let mut factor = input(0) + 1;
    let mut limit = 9223372036854775807 / factor;
    if blocks > limit {
        print(-1);
    } else {
        print(blocks * factor);
    }
}
|}
      ()
  ;
    Case.make ~name:"pn_shift_overflow" ~category:k
      ~description:"a shift amount equal to the width"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    let mut bits = input(0);
    let mut mask = 1 << (bits + 63);
    print(mask);
}
|}
      ~fixed:
        {|
fn main() {
    let mut bits = input(0);
    let mut mask = 1 << ((bits + 63) % 64);
    print(mask);
}
|}
      ()
  ;
    Case.make ~name:"pn_sub_underflow_usize" ~category:k
      ~description:"an unsigned length underflows below zero"
      ~probes:[ [| 0L |]; [| 6L |] ]
      ~buggy:
        {|
fn main() {
    let mut len = input(0) as usize;
    let mut without_header = len - 2usize;
    print(without_header as i64);
}
|}
      ~fixed:
        {|
fn main() {
    let mut len = input(0) as usize;
    if len < 2usize {
        print(0);
    } else {
        print((len - 2usize) as i64);
    }
}
|}
      ()
  ;
    Case.make ~name:"pn_average_of_empty" ~category:k
      ~description:"a helper divides by a count that can be zero"
      ~probes:[ [| 0L |]; [| 4L |] ]
      ~buggy:
        {|
fn average(total: i64, count: i64) -> i64 {
    return total / count;
}

fn main() {
    let mut n = input(0);
    let mut sum = n * (n + 1) / 2;
    print(average(sum, n));
}
|}
      ~fixed:
        {|
fn average(total: i64, count: i64) -> i64 {
    if count == 0 {
        return 0;
    }
    return total / count;
}

fn main() {
    let mut n = input(0);
    let mut sum = n * (n + 1) / 2;
    print(average(sum, n));
}
|}
      ()
  ;
    Case.make ~name:"pn_binary_search_probe" ~category:k
      ~description:"a midpoint expression overflows for large bounds"
      ~probes:[ [| 9223372036854775000L |] ]
      ~buggy:
        {|
fn main() {
    let mut lo = input(0);
    let mut hi = 9223372036854775807;
    let mut mid = (lo + hi) / 2;
    print(mid);
}
|}
      ~fixed:
        {|
fn main() {
    let mut lo = input(0);
    let mut hi = 9223372036854775807;
    let mut mid = lo + (hi - lo) / 2;
    print(mid);
}
|}
      ()
  ]

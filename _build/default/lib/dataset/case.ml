type t = {
  name : string;
  category : Miri.Diag.ub_kind;
  description : string;
  buggy_src : string;
  fixed_src : string;
  probes : int64 array list;
}

let make ~name ~category ?(description = "") ?(probes = [ [||] ]) ~buggy ~fixed () =
  {
    name;
    category;
    description;
    buggy_src = buggy;
    fixed_src = fixed;
    probes = (match probes with [] -> [ [||] ] | ps -> ps);
  }

let buggy t = Minirust.Parser.parse t.buggy_src

let fixed t = Minirust.Parser.parse t.fixed_src

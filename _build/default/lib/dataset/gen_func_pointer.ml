(* Function-pointer UBs: calling through a pointer whose claimed signature
   does not match the callee — the "type conversion problems" the paper
   highlights for this category. *)

let k = Miri.Diag.Func_pointer

let cases =
  [
    Case.make ~name:"fp_wrong_arity" ~category:k
      ~description:"a unary function is transmuted to a binary signature"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn double(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    unsafe {
        let mut op = transmute::<fn(i64, i64) -> i64>(double);
        print(op(input(0), 1));
    }
}
|}
      ~fixed:
        {|
fn double(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    let mut op = double;
    print(op(input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fp_wrong_return" ~category:k
      ~description:"the claimed signature returns a value the callee never produces"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
fn log_value(x: i64) {
    print(x);
}

fn main() {
    unsafe {
        let mut f = transmute::<fn(i64) -> i64>(log_value);
        let mut r = f(input(0));
        print(r);
    }
}
|}
      ~fixed:
        {|
fn log_value(x: i64) -> i64 {
    print(x);
    return x;
}

fn main() {
    let mut f = log_value;
    let mut r = f(input(0));
    print(r);
}
|}
      ()
  ;
    Case.make ~name:"fp_wrong_param_type" ~category:k
      ~description:"a pointer-taking function is called with a plain integer signature"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn read_slot(p: *const i64) -> i64 {
    unsafe {
        return *p;
    }
}

fn main() {
    let mut x = input(0);
    unsafe {
        let mut f = transmute::<fn(i64) -> i64>(read_slot);
        print(f(x));
    }
}
|}
      ~fixed:
        {|
fn read_slot(p: *const i64) -> i64 {
    unsafe {
        return *p;
    }
}

fn main() {
    let mut x = input(0);
    unsafe {
        let mut f = read_slot;
        print(f(&raw const x));
    }
}
|}
      ()
  ;
    Case.make ~name:"fp_table_mixup" ~category:k
      ~description:"a dispatch table mixes signatures via transmute"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn inc(x: i64) -> i64 {
    return x + 1;
}

fn sum2(a: i64, b: i64) -> i64 {
    return a + b;
}

fn main() {
    unsafe {
        let mut table = [inc, transmute::<fn(i64) -> i64>(sum2)];
        let mut v = input(0);
        print(table[0](v));
        print(table[1](v));
    }
}
|}
      ~fixed:
        {|
fn inc(x: i64) -> i64 {
    return x + 1;
}

fn sum2(a: i64, b: i64) -> i64 {
    return a + b;
}

fn twice(x: i64) -> i64 {
    return sum2(x, x);
}

fn main() {
    let mut table = [inc, twice];
    let mut v = input(0);
    print(table[0](v));
    print(table[1](v));
}
|}
      ()
  ;
    Case.make ~name:"fp_roundtrip_int" ~category:k
      ~description:"a fn pointer survives an integer round-trip but with the wrong type"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn triple(x: i64) -> i64 {
    return x * 3;
}

fn main() {
    unsafe {
        let mut addr = triple as *const ();
        let mut f = transmute::<fn(i64, i64) -> i64>(addr);
        print(f(input(0), 0));
    }
}
|}
      ~fixed:
        {|
fn triple(x: i64) -> i64 {
    return x * 3;
}

fn main() {
    unsafe {
        let mut addr = triple as *const ();
        let mut f = transmute::<fn(i64) -> i64>(addr);
        print(f(input(0)));
    }
}
|}
      ()
  ;
    Case.make ~name:"fp_callback_registry" ~category:k
      ~description:"a registry slot written as one signature is invoked as another"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn on_tick(t: i64) -> i64 {
    return t + 1;
}

fn dispatch(f: fn(i64, i64) -> i64, a: i64) -> i64 {
    return f(a, a);
}

fn main() {
    unsafe {
        let mut slot = transmute::<fn(i64, i64) -> i64>(on_tick);
        print(dispatch(slot, input(0)));
    }
}
|}
      ~fixed:
        {|
fn on_tick(t: i64) -> i64 {
    return t + 1;
}

fn dispatch(f: fn(i64) -> i64, a: i64) -> i64 {
    return f(a);
}

fn main() {
    let mut slot = on_tick;
    print(dispatch(slot, input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fp_zero_arity_confusion" ~category:k
      ~description:"a nullary initializer is stored behind a unary signature"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn init() -> i64 {
    return 99;
}

fn main() {
    unsafe {
        let mut setup = transmute::<fn(i64) -> i64>(init);
        print(setup(input(0)));
    }
}
|}
      ~fixed:
        {|
fn init() -> i64 {
    return 99;
}

fn main() {
    let mut setup = init;
    print(setup());
}
|}
      ()
  ;
    Case.make ~name:"fp_bool_result_confusion" ~category:k
      ~description:"a predicate is called through a signature returning i64"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
fn is_big(x: i64) -> bool {
    return x > 5;
}

fn main() {
    unsafe {
        let mut judge = transmute::<fn(i64) -> i64>(is_big);
        print(judge(input(0)));
    }
}
|}
      ~fixed:
        {|
fn is_big(x: i64) -> bool {
    return x > 5;
}

fn main() {
    let mut judge = is_big;
    if judge(input(0)) {
        print(1);
    } else {
        print(0);
    }
}
|}
      ()
  ]

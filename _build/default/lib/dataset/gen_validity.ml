(* Validity-invariant UBs: producing or reading invalid values —
   uninitialized memory, out-of-range booleans, null references. *)

let k = Miri.Diag.Validity

let cases =
  [
    Case.make ~name:"va_uninit_read" ~category:k
      ~description:"freshly allocated memory is read before any write"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        print(*p);
        *p = input(0);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_bad_bool_transmute" ~category:k
      ~description:"an integer other than 0/1 is transmuted to bool"
      ~probes:[ [| 2L |]; [| 0L |] ]
      ~buggy:
        {|
fn main() {
    let mut flag_raw = input(0) as i8;
    unsafe {
        let mut flag = transmute::<bool>(flag_raw);
        if flag {
            print(1);
        } else {
            print(0);
        }
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut flag_raw = input(0) as i8;
    let mut flag = flag_raw != 0i8;
    if flag {
        print(1);
    } else {
        print(0);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_null_reference" ~category:k
      ~description:"a null reference is conjured via transmute"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    unsafe {
        let mut r = transmute::<&i64>(0);
        print(x);
        print(*r);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    let mut r = &x;
    print(x);
    print(*r);
}
|}
      ()
  ;
    Case.make ~name:"va_partial_init" ~category:k
      ~description:"only half of an i64 is initialized before the full read"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8);
        let mut half = p as *mut i32;
        *half = input(0) as i32;
        let mut full = p as *mut i64;
        print(*full);
        dealloc(p, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8);
        let mut half = p as *mut i32;
        *half = input(0) as i32;
        let mut upper = p.offset(4) as *mut i32;
        *upper = 0i32;
        let mut full = p as *mut i64;
        print(*full);
        dealloc(p, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_union_bool" ~category:k
      ~description:"a union's integer payload is reinterpreted as a bad bool"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
union Bits { word: i64, low: i8 }

fn main() {
    unsafe {
        let mut bits = transmute::<Bits>(0);
        bits.word = input(0);
        let mut low = bits.low;
        let mut flag = transmute::<bool>(low);
        if flag {
            print(1);
        } else {
            print(0);
        }
    }
}
|}
      ~fixed:
        {|
union Bits { word: i64, low: i8 }

fn main() {
    unsafe {
        let mut bits = transmute::<Bits>(0);
        bits.word = input(0);
        let mut low = bits.low;
        let mut flag = low != 0i8;
        if flag {
            print(1);
        } else {
            print(0);
        }
    }
}
|}
      ()
  ;
    Case.make ~name:"va_uninit_loop_sum" ~category:k
      ~description:"a summing loop reads one slot that was never written"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(32, 8) as *mut i64;
        let mut i = 0;
        while i < 3 {
            *buf.offset(i) = input(0) + i;
            i = i + 1;
        }
        let mut sum = 0;
        let mut j = 0;
        while j < 4 {
            sum = sum + *buf.offset(j);
            j = j + 1;
        }
        print(sum);
        dealloc(buf as *mut i8, 32, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(32, 8) as *mut i64;
        let mut i = 0;
        while i < 4 {
            *buf.offset(i) = input(0) + i;
            i = i + 1;
        }
        let mut sum = 0;
        let mut j = 0;
        while j < 4 {
            sum = sum + *buf.offset(j);
            j = j + 1;
        }
        print(sum);
        dealloc(buf as *mut i8, 32, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_swap_reads_garbage" ~category:k
      ~description:"a hand-rolled swap via scratch memory reads the slot it never filled"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    let mut a = input(0);
    let mut b = input(0) * 3;
    unsafe {
        let mut scratch = alloc(16, 8) as *mut i64;
        *scratch = a;
        a = b;
        b = *scratch.offset(1);
        dealloc(scratch as *mut i8, 16, 8);
    }
    print(a);
    print(b);
}
|}
      ~fixed:
        {|
fn main() {
    let mut a = input(0);
    let mut b = input(0) * 3;
    unsafe {
        let mut scratch = alloc(16, 8) as *mut i64;
        *scratch = a;
        a = b;
        b = *scratch;
        dealloc(scratch as *mut i8, 16, 8);
    }
    print(a);
    print(b);
}
|}
      ()
  ;
    Case.make ~name:"va_flag_from_wide_int" ~category:k
      ~description:"a status word's low byte becomes a bool without masking to 0/1"
      ~probes:[ [| 5L |]; [| 0L |] ]
      ~buggy:
        {|
fn status_flag(word: i64) -> bool {
    unsafe {
        return transmute::<bool>(word as i8);
    }
}

fn main() {
    if status_flag(input(0)) {
        print(1);
    } else {
        print(0);
    }
}
|}
      ~fixed:
        {|
fn status_flag(word: i64) -> bool {
    return word != 0;
}

fn main() {
    if status_flag(input(0)) {
        print(1);
    } else {
        print(0);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_gap_in_record" ~category:k
      ~description:"a serializer writes fields 0 and 2 but the reader also loads field 1"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn write_record(p: *mut i64, a: i64, c: i64) {
    unsafe {
        *p = a;
        *p.offset(2) = c;
    }
}

fn main() {
    unsafe {
        let mut rec = alloc(24, 8) as *mut i64;
        write_record(rec, input(0), input(0) * 2);
        let mut sum = *rec + *rec.offset(1) + *rec.offset(2);
        print(sum);
        dealloc(rec as *mut i8, 24, 8);
    }
}
|}
      ~fixed:
        {|
fn write_record(p: *mut i64, a: i64, c: i64) {
    unsafe {
        *p = a;
        *p.offset(1) = 0;
        *p.offset(2) = c;
    }
}

fn main() {
    unsafe {
        let mut rec = alloc(24, 8) as *mut i64;
        write_record(rec, input(0), input(0) * 2);
        let mut sum = *rec + *rec.offset(1) + *rec.offset(2);
        print(sum);
        dealloc(rec as *mut i8, 24, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"va_serializer_modules" ~category:k
      ~description:"multi-module serializer: the body encoder skips a slot the checksum reads"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn encode_header(rec: *mut i64, version: i64) {
    unsafe {
        *rec = version;
    }
}

fn encode_body(rec: *mut i64, a: i64, b: i64) {
    unsafe {
        *rec.offset(1) = a;
        *rec.offset(2) = b;
    }
}

fn checksum(rec: *mut i64) -> i64 {
    unsafe {
        let mut sum = 0;
        let mut i = 0;
        while i < 4 {
            sum = sum ^ *rec.offset(i);
            i = i + 1;
        }
        return sum;
    }
}

fn main() {
    unsafe {
        let mut rec = alloc(32, 8) as *mut i64;
        encode_header(rec, 7);
        encode_body(rec, input(0), input(0) + 1);
        print(checksum(rec));
        dealloc(rec as *mut i8, 32, 8);
    }
}
|}
      ~fixed:
        {|
fn encode_header(rec: *mut i64, version: i64) {
    unsafe {
        *rec = version;
    }
}

fn encode_body(rec: *mut i64, a: i64, b: i64) {
    unsafe {
        *rec.offset(1) = a;
        *rec.offset(2) = b;
        *rec.offset(3) = 0;
    }
}

fn checksum(rec: *mut i64) -> i64 {
    unsafe {
        let mut sum = 0;
        let mut i = 0;
        while i < 4 {
            sum = sum ^ *rec.offset(i);
            i = i + 1;
        }
        return sum;
    }
}

fn main() {
    unsafe {
        let mut rec = alloc(32, 8) as *mut i64;
        encode_header(rec, 7);
        encode_body(rec, input(0), input(0) + 1);
        print(checksum(rec));
        dealloc(rec as *mut i8, 32, 8);
    }
}
|}
      ()
  ]

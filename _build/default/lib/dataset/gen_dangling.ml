(* Dangling-pointer UBs: the pointee is dead (freed heap block, out-of-scope
   local) or the access runs outside the allocation's bounds. *)

let k = Miri.Diag.Dangling_pointer

let cases =
  [
    Case.make ~name:"dp_return_local_addr" ~category:k
      ~description:"function returns the address of its own local"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn make() -> *const i64 {
    let mut slot = input(0);
    return &raw const slot;
}

fn main() {
    let mut p = make();
    unsafe {
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn make() -> i64 {
    let mut slot = input(0);
    return slot;
}

fn main() {
    let mut v = make();
    print(v);
}
|}
      ()
  ;
    Case.make ~name:"dp_use_after_free_read" ~category:k
      ~description:"heap block read after it was deallocated"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        dealloc(p as *mut i8, 8, 8);
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_use_after_free_write" ~category:k
      ~description:"heap block written after it was deallocated"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = 1;
        dealloc(p as *mut i8, 8, 8);
        *p = input(0);
    }
    print(0);
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = 1;
        *p = input(0);
        dealloc(p as *mut i8, 8, 8);
    }
    print(0);
}
|}
      ()
  ;
    Case.make ~name:"dp_unchecked_index_oob" ~category:k
      ~description:"get_unchecked with an index past the end of the array"
      ~probes:[ [| 2L |]; [| 6L |] ]
      ~buggy:
        {|
fn main() {
    let mut samples = [4, 8, 15, 16];
    let mut i = input(0);
    unsafe {
        print(samples.get_unchecked(i));
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut samples = [4, 8, 15, 16];
    let mut i = input(0);
    print(samples[i]);
}
|}
      ()
  ;
    Case.make ~name:"dp_block_scope_escape" ~category:k
      ~description:"pointer to an inner-block local used after the block ends"
      ~probes:[ [| 9L |] ]
      ~buggy:
        {|
fn main() {
    let mut p = 0 as *const i64;
    {
        let mut inner = input(0);
        p = &raw const inner;
    }
    unsafe {
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut outer = input(0);
    let mut p = &raw const outer;
    unsafe {
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_offset_past_end" ~category:k
      ~description:"pointer arithmetic walks one element past the allocation"
      ~probes:[ [| 0L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut base = alloc(24, 8) as *mut i64;
        *base = input(0);
        *base.offset(1) = 2;
        *base.offset(2) = 3;
        print(*base.offset(3));
        dealloc(base as *mut i8, 24, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut base = alloc(24, 8) as *mut i64;
        *base = input(0);
        *base.offset(1) = 2;
        *base.offset(2) = 3;
        print(*base.offset(2));
        dealloc(base as *mut i8, 24, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_stale_cache_pointer" ~category:k
      ~description:"a cached element pointer outlives the buffer it points into"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8) as *mut i64;
        *buf = 10;
        *buf.offset(1) = 20;
        let mut cached = buf.offset(1);
        dealloc(buf as *mut i8, 16, 8);
        let mut fresh = alloc(16, 8) as *mut i64;
        *fresh = input(0);
        print(*cached);
        dealloc(fresh as *mut i8, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut buf = alloc(16, 8) as *mut i64;
        *buf = 10;
        *buf.offset(1) = 20;
        let mut cached = *buf.offset(1);
        dealloc(buf as *mut i8, 16, 8);
        let mut fresh = alloc(16, 8) as *mut i64;
        *fresh = input(0);
        print(cached);
        dealloc(fresh as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_pop_then_peek" ~category:k
      ~description:"a tiny stack frees its backing store on pop but peek still reads it"
      ~probes:[ [| 7L |] ]
      ~buggy:
        {|
fn push(buf: *mut i64, top: i64, v: i64) {
    unsafe {
        *buf.offset(top) = v;
    }
}

fn main() {
    unsafe {
        let mut buf = alloc(24, 8) as *mut i64;
        push(buf, 0, input(0));
        push(buf, 1, input(0) + 1);
        let mut top_value = 0;
        dealloc(buf as *mut i8, 24, 8);
        top_value = *buf.offset(1);
        print(top_value);
    }
}
|}
      ~fixed:
        {|
fn push(buf: *mut i64, top: i64, v: i64) {
    unsafe {
        *buf.offset(top) = v;
    }
}

fn main() {
    unsafe {
        let mut buf = alloc(24, 8) as *mut i64;
        push(buf, 0, input(0));
        push(buf, 1, input(0) + 1);
        let mut top_value = 0;
        top_value = *buf.offset(1);
        dealloc(buf as *mut i8, 24, 8);
        print(top_value);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_grow_keeps_old_ptr" ~category:k
      ~description:"after growing a buffer, one pointer still refers to the freed block"
      ~probes:[ [| 9L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut old = alloc(8, 8) as *mut i64;
        *old = input(0);
        let mut grown = alloc(16, 8) as *mut i64;
        *grown = *old;
        *grown.offset(1) = 0;
        dealloc(old as *mut i8, 8, 8);
        print(*old);
        dealloc(grown as *mut i8, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut old = alloc(8, 8) as *mut i64;
        *old = input(0);
        let mut grown = alloc(16, 8) as *mut i64;
        *grown = *old;
        *grown.offset(1) = 0;
        dealloc(old as *mut i8, 8, 8);
        print(*grown);
        dealloc(grown as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dp_negative_unchecked" ~category:k
      ~description:"a reverse scan underflows to index -1 with get_unchecked"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut data = [5, 6, 7];
    let mut i = data.len() as i64 - 1;
    let mut total = 0;
    while i >= -1 {
        unsafe {
            total = total + data.get_unchecked(i);
        }
        i = i - 1;
    }
    print(total);
}
|}
      ~fixed:
        {|
fn main() {
    let mut data = [5, 6, 7];
    let mut i = data.len() as i64 - 1;
    let mut total = 0;
    while i >= 0 {
        unsafe {
            total = total + data.get_unchecked(i);
        }
        i = i - 1;
    }
    print(total);
}
|}
      ()
  ]

(* Function-call UBs: the callee is not a function at all — a null pointer,
   a data pointer, or integer garbage conjured into a fn pointer. *)

let k = Miri.Diag.Func_call

let cases =
  [
    Case.make ~name:"fc_null_fn_ptr" ~category:k
      ~description:"an uninitialized (null) callback is invoked"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn on_event(x: i64) -> i64 {
    return x + 100;
}

fn main() {
    unsafe {
        let mut callback = transmute::<fn(i64) -> i64>(0);
        print(callback(input(0)));
    }
}
|}
      ~fixed:
        {|
fn on_event(x: i64) -> i64 {
    return x + 100;
}

fn main() {
    let mut callback = on_event;
    print(callback(input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fc_data_as_code" ~category:k
      ~description:"a pointer to data is invoked as code"
      ~probes:[ [| 8L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    unsafe {
        let mut jump = transmute::<fn(i64) -> i64>(&raw const x);
        print(jump(1));
    }
}
|}
      ~fixed:
        {|
fn identity(v: i64) -> i64 {
    return v;
}

fn main() {
    let mut x = input(0);
    let mut jump = identity;
    print(jump(1));
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"fc_garbage_address" ~category:k
      ~description:"an integer \"handle\" is cast into a callable"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut handle_bits = 3735928559;
    unsafe {
        let mut f = transmute::<fn(i64) -> i64>(handle_bits);
        print(f(input(0)));
    }
}
|}
      ~fixed:
        {|
fn from_handle(x: i64) -> i64 {
    return x;
}

fn main() {
    let mut f = from_handle;
    print(f(input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fc_freed_trampoline" ~category:k
      ~description:"a callback slot is read back from freed memory and called"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn step(x: i64) -> i64 {
    return x + 1;
}

fn main() {
    unsafe {
        let mut slot = alloc(8, 8) as *mut i64;
        *slot = step as usize as i64;
        let mut stored = *slot;
        dealloc(slot as *mut i8, 8, 8);
        let mut f = transmute::<fn(i64) -> i64>(stored);
        print(f(input(0)));
    }
}
|}
      ~fixed:
        {|
fn step(x: i64) -> i64 {
    return x + 1;
}

fn main() {
    let mut f = step;
    print(f(input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fc_offset_fn_ptr" ~category:k
      ~description:"arithmetic on a function address produces a non-function"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn base_op(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    unsafe {
        let mut addr = base_op as usize;
        let mut f = transmute::<fn(i64) -> i64>(addr + 1usize);
        print(f(input(0)));
    }
}
|}
      ~fixed:
        {|
fn base_op(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    let mut f = base_op;
    print(f(input(0)));
}
|}
      ()
  ;
    Case.make ~name:"fc_uninit_vtable_slot" ~category:k
      ~description:"a vtable slot is called before anything was stored in it"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn real_handler(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    unsafe {
        let mut vtable = alloc(8, 8) as *mut i64;
        let mut f = transmute::<fn(i64) -> i64>(0);
        if input(0) < 0 {
            *vtable = real_handler as usize as i64;
            f = transmute::<fn(i64) -> i64>(*vtable);
        }
        print(f(input(0)));
        dealloc(vtable as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn real_handler(x: i64) -> i64 {
    return x * 2;
}

fn main() {
    unsafe {
        let mut vtable = alloc(8, 8) as *mut i64;
        let mut f = real_handler;
        print(f(input(0)));
        dealloc(vtable as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"fc_union_punned_callee" ~category:k
      ~description:"a callback is smuggled through a union's integer field"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
union Slot { addr: i64, tag: i8 }

fn handler(x: i64) -> i64 {
    return x + 7;
}

fn main() {
    unsafe {
        let mut slot = transmute::<Slot>(0);
        slot.addr = handler as usize as i64;
        let mut f = transmute::<fn(i64) -> i64>(slot.addr);
        print(f(input(0)));
    }
}
|}
      ~fixed:
        {|
union Slot { addr: i64, tag: i8 }

fn handler(x: i64) -> i64 {
    return x + 7;
}

fn main() {
    let mut f = handler;
    print(f(input(0)));
}
|}
      ()
  ]

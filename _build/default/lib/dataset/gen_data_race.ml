(* Data races: conflicting accesses from two threads with no happens-before
   ordering. Reference fixes either sequence the work with joins or switch
   the shared cell to atomic operations. *)

let k = Miri.Diag.Data_race

let cases =
  [
    Case.make ~name:"dr_two_writers" ~category:k
      ~description:"two workers increment the same static without synchronization"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
static mut COUNTER: i64 = 0;

fn bump(n: i64) {
    unsafe {
        COUNTER = COUNTER + n;
    }
}

fn main() {
    let a = spawn bump(input(0));
    let b = spawn bump(input(0) * 2);
    join(a);
    join(b);
    unsafe {
        print(COUNTER);
    }
}
|}
      ~fixed:
        {|
static mut COUNTER: i64 = 0;

fn bump(n: i64) {
    unsafe {
        COUNTER = COUNTER + n;
    }
}

fn main() {
    let a = spawn bump(input(0));
    join(a);
    let b = spawn bump(input(0) * 2);
    join(b);
    unsafe {
        print(COUNTER);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_read_before_join" ~category:k
      ~description:"main reads the shared cell before joining the writer"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
static mut RESULT: i64 = 0;

fn compute(n: i64) {
    unsafe {
        RESULT = n * n;
    }
}

fn main() {
    let h = spawn compute(input(0));
    let mut seen = 0;
    unsafe {
        seen = RESULT;
    }
    join(h);
    unsafe {
        print(RESULT);
    }
}
|}
      ~fixed:
        {|
static mut RESULT: i64 = 0;

fn compute(n: i64) {
    unsafe {
        RESULT = n * n;
    }
}

fn main() {
    let h = spawn compute(input(0));
    join(h);
    let mut seen = 0;
    unsafe {
        seen = RESULT;
        print(RESULT);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_heap_cell" ~category:k
      ~description:"main and a worker write the same heap cell concurrently"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn writer(p: *mut i64, v: i64) {
    unsafe {
        *p = v;
    }
}

fn main() {
    unsafe {
        let mut cell = alloc(8, 8) as *mut i64;
        *cell = 0;
        let h = spawn writer(cell, input(0));
        *cell = 42;
        join(h);
        print(*cell);
        dealloc(cell as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn writer(p: *mut i64, v: i64) {
    unsafe {
        *p = v;
    }
}

fn main() {
    unsafe {
        let mut cell = alloc(8, 8) as *mut i64;
        *cell = 42;
        let h = spawn writer(cell, input(0));
        join(h);
        print(*cell);
        dealloc(cell as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_flag_spin" ~category:k
      ~description:"a hand-rolled flag handshake uses plain loads and stores"
      ~probes:[ [| 9L |] ]
      ~buggy:
        {|
static mut READY: i64 = 0;
static mut PAYLOAD: i64 = 0;

fn producer(v: i64) {
    unsafe {
        PAYLOAD = v;
        READY = 1;
    }
}

fn main() {
    let h = spawn producer(input(0));
    let mut waiting = true;
    while waiting {
        unsafe {
            if READY == 1 {
                waiting = false;
            }
        }
    }
    unsafe {
        print(PAYLOAD);
    }
    join(h);
}
|}
      ~fixed:
        {|
static mut READY: i64 = 0;
static mut PAYLOAD: i64 = 0;

fn producer(v: i64) {
    unsafe {
        PAYLOAD = v;
        atomic_store(&raw mut READY, 1);
    }
}

fn main() {
    let h = spawn producer(input(0));
    let mut waiting = true;
    while waiting {
        unsafe {
            if atomic_load(&raw mut READY) == 1 {
                waiting = false;
            }
        }
    }
    unsafe {
        print(PAYLOAD);
    }
    join(h);
}
|}
      ()
  ;
    Case.make ~name:"dr_shared_slot_sum" ~category:k
      ~description:"two workers accumulate into one slot instead of separate ones"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn accumulate(p: *mut i64, v: i64) {
    unsafe {
        *p = *p + v;
    }
}

fn main() {
    unsafe {
        let mut slots = alloc(16, 8) as *mut i64;
        *slots = 0;
        *slots.offset(1) = 0;
        let a = spawn accumulate(slots, input(0));
        let b = spawn accumulate(slots, input(0) + 1);
        join(a);
        join(b);
        print(*slots);
        dealloc(slots as *mut i8, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn accumulate(p: *mut i64, v: i64) {
    unsafe {
        *p = *p + v;
    }
}

fn main() {
    unsafe {
        let mut slots = alloc(16, 8) as *mut i64;
        *slots = 0;
        *slots.offset(1) = 0;
        let a = spawn accumulate(slots, input(0));
        let b = spawn accumulate(slots.offset(1), input(0) + 1);
        join(a);
        join(b);
        print(*slots + *slots.offset(1));
        dealloc(slots as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_concurrent_counters" ~category:k
      ~description:"two workers increment a shared counter; the fix keeps them concurrent with fetch-and-add"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
static mut HITS: i64 = 0;

fn record(n: i64) {
    let mut i = 0;
    while i < n {
        unsafe {
            HITS = HITS + 1;
        }
        i = i + 1;
    }
}

fn main() {
    let a = spawn record(input(0));
    let b = spawn record(input(0));
    join(a);
    join(b);
    unsafe {
        print(HITS);
    }
}
|}
      ~fixed:
        {|
static mut HITS: i64 = 0;

fn record(n: i64) {
    let mut i = 0;
    while i < n {
        unsafe {
            atomic_add(&raw mut HITS, 1);
        }
        i = i + 1;
    }
}

fn main() {
    let a = spawn record(input(0));
    let b = spawn record(input(0));
    join(a);
    join(b);
    unsafe {
        print(atomic_load(&raw mut HITS));
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_publish_before_init" ~category:k
      ~description:"a worker publishes a buffer pointer before finishing its writes"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
static mut SHARED: i64 = 0;
static mut DONE: i64 = 0;

fn producer(v: i64) {
    unsafe {
        atomic_store(&raw mut DONE, 1);
        SHARED = v * 2;
    }
}

fn main() {
    let h = spawn producer(input(0));
    let mut spin = true;
    while spin {
        unsafe {
            if atomic_load(&raw mut DONE) == 1 {
                spin = false;
            }
        }
    }
    unsafe {
        print(SHARED);
    }
    join(h);
}
|}
      ~fixed:
        {|
static mut SHARED: i64 = 0;
static mut DONE: i64 = 0;

fn producer(v: i64) {
    unsafe {
        SHARED = v * 2;
        atomic_store(&raw mut DONE, 1);
    }
}

fn main() {
    let h = spawn producer(input(0));
    let mut spin = true;
    while spin {
        unsafe {
            if atomic_load(&raw mut DONE) == 1 {
                spin = false;
            }
        }
    }
    unsafe {
        print(SHARED);
    }
    join(h);
}
|}
      ()
  ;
    Case.make ~name:"dr_rmw_on_heap" ~category:k
      ~description:"concurrent read-modify-write on a heap counter; atomic_add is the fix"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn bump(p: *mut i64, times: i64) {
    let mut i = 0;
    while i < times {
        unsafe {
            *p = *p + 1;
        }
        i = i + 1;
    }
}

fn main() {
    unsafe {
        let mut counter = alloc(8, 8) as *mut i64;
        *counter = 0;
        let a = spawn bump(counter, input(0));
        let b = spawn bump(counter, input(0));
        join(a);
        join(b);
        print(*counter);
        dealloc(counter as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn bump(p: *mut i64, times: i64) {
    let mut i = 0;
    while i < times {
        unsafe {
            atomic_add(p, 1);
        }
        i = i + 1;
    }
}

fn main() {
    unsafe {
        let mut counter = alloc(8, 8) as *mut i64;
        *counter = 0;
        let a = spawn bump(counter, input(0));
        let b = spawn bump(counter, input(0));
        join(a);
        join(b);
        print(atomic_load(counter));
        dealloc(counter as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_overlapping_ranges" ~category:k
      ~description:"two workers write ranges that overlap in one cell"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn fill(p: *mut i64, from: i64, upto: i64, v: i64) {
    let mut i = from;
    while i < upto {
        unsafe {
            *p.offset(i) = v;
        }
        i = i + 1;
    }
}

fn main() {
    unsafe {
        let mut buf = alloc(32, 8) as *mut i64;
        let a = spawn fill(buf, 0, 3, input(0));
        let b = spawn fill(buf, 2, 4, input(0) + 1);
        join(a);
        join(b);
        print(*buf.offset(3));
        dealloc(buf as *mut i8, 32, 8);
    }
}
|}
      ~fixed:
        {|
fn fill(p: *mut i64, from: i64, upto: i64, v: i64) {
    let mut i = from;
    while i < upto {
        unsafe {
            *p.offset(i) = v;
        }
        i = i + 1;
    }
}

fn main() {
    unsafe {
        let mut buf = alloc(32, 8) as *mut i64;
        let a = spawn fill(buf, 0, 2, input(0));
        let b = spawn fill(buf, 2, 4, input(0) + 1);
        join(a);
        join(b);
        print(*buf.offset(3));
        dealloc(buf as *mut i8, 32, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"dr_stats_pipeline_modules" ~category:k
      ~description:"multi-module stats pipeline: the aggregator reads before joining both stages"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
static mut MIN_SEEN: i64 = 999;
static mut MAX_SEEN: i64 = -999;

fn stage_min(v: i64) {
    unsafe {
        if v < MIN_SEEN {
            MIN_SEEN = v;
        }
    }
}

fn stage_max(v: i64) {
    unsafe {
        if v > MAX_SEEN {
            MAX_SEEN = v;
        }
    }
}

fn aggregate() -> i64 {
    unsafe {
        return MAX_SEEN - MIN_SEEN;
    }
}

fn main() {
    let a = spawn stage_min(input(0));
    let b = spawn stage_max(input(0) * 5);
    join(a);
    print(aggregate());
    join(b);
}
|}
      ~fixed:
        {|
static mut MIN_SEEN: i64 = 999;
static mut MAX_SEEN: i64 = -999;

fn stage_min(v: i64) {
    unsafe {
        if v < MIN_SEEN {
            MIN_SEEN = v;
        }
    }
}

fn stage_max(v: i64) {
    unsafe {
        if v > MAX_SEEN {
            MAX_SEEN = v;
        }
    }
}

fn aggregate() -> i64 {
    unsafe {
        return MAX_SEEN - MIN_SEEN;
    }
}

fn main() {
    let a = spawn stage_min(input(0));
    let b = spawn stage_max(input(0) * 5);
    join(a);
    join(b);
    print(aggregate());
}
|}
      ()
  ]

(* Stack-borrow UBs: a tagged pointer used after a conflicting borrow
   invalidated it. Reference fixes either reorder the uses or re-derive the
   pointer — the two idioms Miri's own test suite fixes use. *)

let k = Miri.Diag.Stack_borrow

let cases =
  [
    Case.make ~name:"sb_write_after_retag" ~category:k
      ~description:"raw pointer invalidated by a later &mut, then written through"
      ~probes:[ [| 3L |]; [| 10L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    let mut p = &mut x as *mut i64;
    let mut r = &mut x;
    *r = *r + 1;
    unsafe {
        *p = *p * 2;
    }
    print(x);
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    let mut p = &mut x as *mut i64;
    unsafe {
        *p = *p * 2;
    }
    let mut r = &mut x;
    *r = *r + 1;
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"sb_direct_write_invalidates" ~category:k
      ~description:"direct write to the local pops the derived raw pointer's tag"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    let mut counter = input(0);
    let mut p = &raw mut counter;
    counter = counter + 100;
    unsafe {
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut counter = input(0);
    counter = counter + 100;
    let mut p = &raw mut counter;
    unsafe {
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"sb_callee_retag" ~category:k
      ~description:"callee's &mut parameter invalidates the caller's raw pointer"
      ~probes:[ [| 2L |]; [| 7L |] ]
      ~buggy:
        {|
fn bump(r: &mut i64) {
    *r = *r + 1;
}

fn main() {
    let mut total = input(0);
    let mut p = &mut total as *mut i64;
    bump(&mut total);
    unsafe {
        print(*p);
    }
}
|}
      ~fixed:
        {|
fn bump(r: &mut i64) {
    *r = *r + 1;
}

fn main() {
    let mut total = input(0);
    bump(&mut total);
    let mut p = &mut total as *mut i64;
    unsafe {
        print(*p);
    }
}
|}
      ()
  ;
    Case.make ~name:"sb_loop_stale_raw" ~category:k
      ~description:"a raw pointer captured before a loop goes stale inside it"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut acc = 0;
    let mut p = &raw mut acc;
    let mut i = 0;
    while i < input(0) {
        let mut r = &mut acc;
        *r = *r + i;
        unsafe {
            *p = *p + 1;
        }
        i = i + 1;
    }
    print(acc);
}
|}
      ~fixed:
        {|
fn main() {
    let mut acc = 0;
    let mut i = 0;
    while i < input(0) {
        let mut r = &mut acc;
        *r = *r + i;
        let mut p = &raw mut acc;
        unsafe {
            *p = *p + 1;
        }
        i = i + 1;
    }
    print(acc);
}
|}
      ()
  ;
    Case.make ~name:"sb_sibling_raws" ~category:k
      ~description:"deriving a second raw pointer from the place invalidates the first"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    let mut cell = input(0);
    let mut first = &raw mut cell;
    let mut second = &raw mut cell;
    unsafe {
        *second = *second + 1;
        *first = *first * 3;
    }
    print(cell);
}
|}
      ~fixed:
        {|
fn main() {
    let mut cell = input(0);
    let mut first = &raw mut cell;
    unsafe {
        *first = *first + 1;
        *first = *first * 3;
    }
    print(cell);
}
|}
      ()
  ;
    Case.make ~name:"sb_array_elem_retag" ~category:k
      ~description:"raw pointer to an array slot dies when the array is reborrowed"
      ~probes:[ [| 1L |]; [| 2L |] ]
      ~buggy:
        {|
fn main() {
    let mut data = [10, 20, 30, 40];
    let mut p = &raw mut data[1];
    let mut r = &mut data;
    (*r)[2] = input(0);
    unsafe {
        print(*p);
    }
    print(data[2]);
}
|}
      ~fixed:
        {|
fn main() {
    let mut data = [10, 20, 30, 40];
    let mut r = &mut data;
    (*r)[2] = input(0);
    let mut p = &raw mut data[1];
    unsafe {
        print(*p);
    }
    print(data[2]);
}
|}
      ()
  ;
    Case.make ~name:"sb_swap_helper" ~category:k
      ~description:"a hand-rolled swap keeps using a pointer across a fresh borrow"
      ~probes:[ [| 6L; 9L |] ]
      ~buggy:
        {|
fn main() {
    let mut a = input(0);
    let mut b = input(1);
    let mut pa = &mut a as *mut i64;
    let mut tmp = 0;
    let mut r = &mut a;
    tmp = *r;
    *r = b;
    unsafe {
        b = *pa;
        *pa = tmp;
    }
    print(a);
    print(b);
}
|}
      ~fixed:
        {|
fn main() {
    let mut a = input(0);
    let mut b = input(1);
    let mut tmp = 0;
    let mut r = &mut a;
    tmp = *r;
    *r = b;
    let mut pa = &mut a as *mut i64;
    unsafe {
        b = *pa;
        *pa = tmp;
    }
    print(a);
    print(b);
}
|}
      ()
  ;
    Case.make ~name:"sb_row_pointer_cache" ~category:k
      ~description:"a cached row pointer into a flat matrix dies when the matrix is reborrowed"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn row_sum(p: *const i64, width: i64) -> i64 {
    let mut total = 0;
    let mut j = 0;
    while j < width {
        unsafe {
            total = total + *p.offset(j);
        }
        j = j + 1;
    }
    return total;
}

fn main() {
    let mut grid = [1, 2, 3, 4, 5, 6];
    let mut row1 = &raw mut grid[3] as *const i64;
    let mut editor = &mut grid;
    (*editor)[0] = input(0);
    print(row_sum(row1, 3));
    print(grid[0]);
}
|}
      ~fixed:
        {|
fn row_sum(p: *const i64, width: i64) -> i64 {
    let mut total = 0;
    let mut j = 0;
    while j < width {
        unsafe {
            total = total + *p.offset(j);
        }
        j = j + 1;
    }
    return total;
}

fn main() {
    let mut grid = [1, 2, 3, 4, 5, 6];
    let mut editor = &mut grid;
    (*editor)[0] = input(0);
    let mut row1 = &raw mut grid[3] as *const i64;
    print(row_sum(row1, 3));
    print(grid[0]);
}
|}
      ()
  ;
    Case.make ~name:"sb_aliasing_params" ~category:k
      ~description:"a raw pointer and a fresh &mut to the same local cross a call boundary"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn bump_both(p: *mut i64, r: &mut i64) {
    *r = *r + 1;
    unsafe {
        *p = *p * 2;
    }
}

fn main() {
    let mut v = input(0);
    let mut p = &raw mut v;
    bump_both(p, &mut v);
    print(v);
}
|}
      ~fixed:
        {|
fn bump_both(p: *mut i64) {
    unsafe {
        *p = *p + 1;
        *p = *p * 2;
    }
}

fn main() {
    let mut v = input(0);
    let mut p = &raw mut v;
    bump_both(p);
    print(v);
}
|}
      ()
  ;
    Case.make ~name:"sb_helper_chain" ~category:k
      ~description:"a raw pointer made before a two-level call chain that reborrows"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn scale(r: &mut i64, by: i64) {
    *r = *r * by;
}

fn adjust(r: &mut i64) {
    scale(r, 3);
    *r = *r + 1;
}

fn main() {
    let mut level = input(0);
    let mut watcher = &raw mut level;
    adjust(&mut level);
    unsafe {
        print(*watcher);
    }
}
|}
      ~fixed:
        {|
fn scale(r: &mut i64, by: i64) {
    *r = *r * by;
}

fn adjust(r: &mut i64) {
    scale(r, 3);
    *r = *r + 1;
}

fn main() {
    let mut level = input(0);
    adjust(&mut level);
    let mut watcher = &raw mut level;
    unsafe {
        print(*watcher);
    }
}
|}
      ()
  ;
    Case.make ~name:"sb_ledger_modules" ~category:k
      ~description:"multi-module ledger: an audit pointer taken before fee processing goes stale"
      ~probes:[ [| 100L |] ]
      ~buggy:
        {|
fn apply_fee(balance: &mut i64, fee: i64) {
    *balance = *balance - fee;
}

fn apply_interest(balance: &mut i64) {
    *balance = *balance + *balance / 10;
}

fn audit_read(p: *const i64) -> i64 {
    unsafe {
        return *p;
    }
}

fn month_end(balance: &mut i64) {
    apply_fee(balance, 5);
    apply_interest(balance);
}

fn main() {
    let mut balance = input(0);
    let mut auditor = &raw mut balance as *const i64;
    month_end(&mut balance);
    print(audit_read(auditor));
    print(balance);
}
|}
      ~fixed:
        {|
fn apply_fee(balance: &mut i64, fee: i64) {
    *balance = *balance - fee;
}

fn apply_interest(balance: &mut i64) {
    *balance = *balance + *balance / 10;
}

fn audit_read(p: *const i64) -> i64 {
    unsafe {
        return *p;
    }
}

fn month_end(balance: &mut i64) {
    apply_fee(balance, 5);
    apply_interest(balance);
}

fn main() {
    let mut balance = input(0);
    month_end(&mut balance);
    let mut auditor = &raw mut balance as *const i64;
    print(audit_read(auditor));
    print(balance);
}
|}
      ()
  ]

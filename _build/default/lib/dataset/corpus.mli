(** The full UB corpus: every case from the twelve category generators. *)

val all : Case.t list

val by_category : Miri.Diag.ub_kind -> Case.t list

val find : string -> Case.t option
(** Look a case up by name. *)

val categories : Miri.Diag.ub_kind list
(** The twelve categories, in the paper's Table I order. *)

val size : int

val stats : unit -> (Miri.Diag.ub_kind * int) list
(** Cases per category. *)

type observation = {
  finished : bool;
  panicked : bool;
  trace : string list;
  errors : int;
}

let observe ?(seed = 42) ?(max_steps = 200_000) program inputs =
  let config =
    { Miri.Machine.mode = Miri.Machine.Stop_first; seed; max_steps; inputs;
      trace = false }
  in
  match Miri.Machine.analyze ~config program with
  | Miri.Machine.Compile_error _ ->
    { finished = false; panicked = false; trace = []; errors = max_int }
  | Miri.Machine.Ran r ->
    let finished = Miri.Machine.is_clean r in
    let panicked =
      match r.Miri.Machine.outcome with Miri.Machine.Panicked _ -> true | _ -> false
    in
    (* [errors] counts UB diagnostics only; a panic is a defined outcome and
       is judged via [panicked] *)
    { finished; panicked; trace = r.Miri.Machine.output;
      errors = List.length r.Miri.Machine.diags }

type verdict = {
  passes : bool;
  semantic : bool;
  per_probe : (observation * observation) list;
}

(* same termination class and same observable trace *)
let same_behaviour (a : observation) (b : observation) =
  a.finished = b.finished && a.panicked = b.panicked
  && List.length a.trace = List.length b.trace
  && List.for_all2 String.equal a.trace b.trace

let reference_observations (case : Case.t) =
  let reference = Case.fixed case in
  List.map (observe reference) case.Case.probes

let check (case : Case.t) candidate =
  let refs = reference_observations case in
  let cands = List.map (observe candidate) case.Case.probes in
  let per_probe = List.combine cands refs in
  (* pass: no UB anywhere, and the candidate only panics where the reference
     itself panics (a clean panic on an input the developer fix also refuses
     is defined behaviour, not an unfixed error) *)
  let clean (c : observation) (r : observation) =
    c.errors = 0 && ((not c.panicked) || r.panicked)
  in
  let passes = List.for_all (fun (c, r) -> clean c r) per_probe in
  let semantic = passes && List.for_all (fun (c, r) -> same_behaviour c r) per_probe in
  { passes; semantic; per_probe }

let score case candidate =
  match Minirust.Typecheck.check candidate with
  | Error _ -> 0.02
  | Ok _ ->
    let v = check case candidate in
    if v.semantic then 1.0
    else if v.passes then 0.7
    else begin
      let clean_probes =
        List.length
          (List.filter
             (fun (c, r) -> c.errors = 0 && ((not c.panicked) || r.panicked))
             v.per_probe)
      in
      let frac = float_of_int clean_probes /. float_of_int (List.length v.per_probe) in
      0.15 +. (0.35 *. frac)
    end

let error_count ?(collect_limit = 25) program inputs =
  match Minirust.Typecheck.check program with
  | Error errors -> List.length errors
  | Ok info ->
    let config =
      { Miri.Machine.mode = Miri.Machine.Collect collect_limit; seed = 42;
        max_steps = 200_000; inputs; trace = false }
    in
    let r = Miri.Machine.run ~config program info in
    r.Miri.Machine.error_count

(* Allocation-API misuse: double frees, layout mismatches, leaks, freeing
   memory the allocator never handed out. *)

let k = Miri.Diag.Alloc

let cases =
  [
    Case.make ~name:"al_double_free" ~category:k
      ~description:"the same block is deallocated twice"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 8, 8);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_leak" ~category:k
      ~description:"an allocation is never freed"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        *p.offset(1) = input(0) * 2;
        print(*p + *p.offset(1));
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        *p.offset(1) = input(0) * 2;
        print(*p + *p.offset(1));
        dealloc(p as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_wrong_size_free" ~category:k
      ~description:"deallocation states a different size than the allocation"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        print(*p);
        dealloc(p as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_wrong_align_free" ~category:k
      ~description:"deallocation states a different alignment than the allocation"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 16) as *mut i64;
        *p = input(0) + 1;
        print(*p);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 16) as *mut i64;
        *p = input(0) + 1;
        print(*p);
        dealloc(p as *mut i8, 8, 16);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_free_interior_pointer" ~category:k
      ~description:"freeing a pointer into the middle of the block"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        *p.offset(1) = 7;
        print(*p.offset(1));
        dealloc(p.offset(1) as *mut i8, 16, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(16, 8) as *mut i64;
        *p = input(0);
        *p.offset(1) = 7;
        print(*p.offset(1));
        dealloc(p as *mut i8, 16, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_free_stack_memory" ~category:k
      ~description:"a pointer to a stack local is handed to the allocator"
      ~probes:[ [| 6L |] ]
      ~buggy:
        {|
fn main() {
    let mut x = input(0);
    let mut p = &raw mut x as *mut i8;
    unsafe {
        print(x);
        dealloc(p, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn main() {
    let mut x = input(0);
    print(x);
}
|}
      ()
  ;
    Case.make ~name:"al_zero_sized_alloc" ~category:k
      ~description:"the allocator is asked for zero bytes"
      ~probes:[ [| 2L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(0, 8);
        print(p as usize != 0usize);
    }
    print(input(0));
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8);
        print(p as usize != 0usize);
        dealloc(p, 8, 8);
    }
    print(input(0));
}
|}
      ()
  ;
    Case.make ~name:"al_conditional_leak" ~category:k
      ~description:"one branch returns early without freeing"
      ~probes:[ [| 0L |]; [| 5L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        if *p == 0 {
            print(-1);
        } else {
            print(*p);
            dealloc(p as *mut i8, 8, 8);
        }
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        if *p == 0 {
            print(-1);
        } else {
            print(*p);
        }
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_loop_leak" ~category:k
      ~description:"a loop allocates a scratch buffer per iteration and frees none"
      ~probes:[ [| 3L |] ]
      ~buggy:
        {|
fn main() {
    let mut i = 0;
    let mut total = 0;
    while i < input(0) {
        unsafe {
            let mut scratch = alloc(8, 8) as *mut i64;
            *scratch = i * i;
            total = total + *scratch;
        }
        i = i + 1;
    }
    print(total);
}
|}
      ~fixed:
        {|
fn main() {
    let mut i = 0;
    let mut total = 0;
    while i < input(0) {
        unsafe {
            let mut scratch = alloc(8, 8) as *mut i64;
            *scratch = i * i;
            total = total + *scratch;
            dealloc(scratch as *mut i8, 8, 8);
        }
        i = i + 1;
    }
    print(total);
}
|}
      ()
  ;
    Case.make ~name:"al_free_in_helper_then_caller" ~category:k
      ~description:"a cleanup helper frees the block and the caller frees it again"
      ~probes:[ [| 4L |] ]
      ~buggy:
        {|
fn cleanup(p: *mut i8) {
    unsafe {
        dealloc(p, 8, 8);
    }
}

fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        cleanup(p as *mut i8);
        dealloc(p as *mut i8, 8, 8);
    }
}
|}
      ~fixed:
        {|
fn cleanup(p: *mut i8) {
    unsafe {
        dealloc(p, 8, 8);
    }
}

fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = input(0);
        print(*p);
        cleanup(p as *mut i8);
    }
}
|}
      ()
  ;
    Case.make ~name:"al_bad_align_request" ~category:k
      ~description:"the requested alignment is not a power of two"
      ~probes:[ [| 1L |] ]
      ~buggy:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 6);
        print(input(0));
    }
}
|}
      ~fixed:
        {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8);
        dealloc(p, 8, 8);
        print(input(0));
    }
}
|}
      ()
  ;
    Case.make ~name:"al_ring_buffer_modules" ~category:k
      ~description:"multi-module ring buffer: both the cleanup path and the stats path free the store"
      ~probes:[ [| 5L |] ]
      ~buggy:
        {|
fn rb_new() -> *mut i64 {
    unsafe {
        let mut rb = alloc(48, 8) as *mut i64;
        *rb = 0;
        *rb.offset(1) = 0;
        let mut i = 2;
        while i < 6 {
            *rb.offset(i) = 0;
            i = i + 1;
        }
        return rb;
    }
}

fn rb_put(rb: *mut i64, v: i64) {
    unsafe {
        let mut tail = *rb.offset(1);
        *rb.offset(2 + tail % 4) = v;
        *rb.offset(1) = tail + 1;
    }
}

fn rb_sum(rb: *mut i64) -> i64 {
    unsafe {
        let mut total = 0;
        let mut i = 2;
        while i < 6 {
            total = total + *rb.offset(i);
            i = i + 1;
        }
        return total;
    }
}

fn rb_report(rb: *mut i64) {
    print(rb_sum(rb));
    unsafe {
        dealloc(rb as *mut i8, 48, 8);
    }
}

fn rb_shutdown(rb: *mut i64) {
    unsafe {
        dealloc(rb as *mut i8, 48, 8);
    }
}

fn main() {
    let mut rb = rb_new();
    rb_put(rb, input(0));
    rb_put(rb, input(0) * 2);
    rb_report(rb);
    rb_shutdown(rb);
}
|}
      ~fixed:
        {|
fn rb_new() -> *mut i64 {
    unsafe {
        let mut rb = alloc(48, 8) as *mut i64;
        *rb = 0;
        *rb.offset(1) = 0;
        let mut i = 2;
        while i < 6 {
            *rb.offset(i) = 0;
            i = i + 1;
        }
        return rb;
    }
}

fn rb_put(rb: *mut i64, v: i64) {
    unsafe {
        let mut tail = *rb.offset(1);
        *rb.offset(2 + tail % 4) = v;
        *rb.offset(1) = tail + 1;
    }
}

fn rb_sum(rb: *mut i64) -> i64 {
    unsafe {
        let mut total = 0;
        let mut i = 2;
        while i < 6 {
            total = total + *rb.offset(i);
            i = i + 1;
        }
        return total;
    }
}

fn rb_report(rb: *mut i64) {
    print(rb_sum(rb));
}

fn rb_shutdown(rb: *mut i64) {
    unsafe {
        dealloc(rb as *mut i8, 48, 8);
    }
}

fn main() {
    let mut rb = rb_new();
    rb_put(rb, input(0));
    rb_put(rb, input(0) * 2);
    rb_report(rb);
    rb_shutdown(rb);
}
|}
      ()
  ]

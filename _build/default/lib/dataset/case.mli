(** One benchmark case: a MiniRust program with a UB, its developer reference
    fix, and the probe inputs used to judge semantic acceptability.

    The corpus plays the role of the paper's Miri-repository dataset: each
    case deterministically exhibits exactly one UB category, and the
    reference fix is UB-free and defines the expected observable behaviour
    ([print] trace + termination class) on every probe input. *)

type t = {
  name : string;
  category : Miri.Diag.ub_kind;
  description : string;
  buggy_src : string;
  fixed_src : string;
  probes : int64 array list;
      (** input vectors for [input(i)]; at least one (possibly [||]) *)
}

val make :
  name:string ->
  category:Miri.Diag.ub_kind ->
  ?description:string ->
  ?probes:int64 array list ->
  buggy:string ->
  fixed:string ->
  unit ->
  t

val buggy : t -> Minirust.Ast.program
(** Parse the buggy source (fresh node ids on every call). *)

val fixed : t -> Minirust.Ast.program

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = next_raw t

let split t =
  let s = next_raw t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native non-negative int range *)
  let r = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  r mod bound

let float t =
  let r = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_raw t) 1L = 1L

let bernoulli t p =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  float t < p

let gaussian t ~mean ~std =
  (* Box-Muller; discard the second deviate for simplicity. *)
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~std:sigma)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0.0 w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: non-positive total weight";
  let x = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest ->
      let acc = acc +. max 0.0 w in
      if x < acc then v else go acc rest
  in
  go 0.0 pairs

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Simulated wall clock.

    The paper's Table I reports repair times (LLM latency + verification
    runs) against human experts. The container has no real LLM, so time is
    accounted on a simulated clock: each simulated activity charges a cost in
    seconds. Benchmarks read the accumulated time. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in seconds since [create]. *)

val charge : t -> float -> unit
(** [charge t dt] advances the clock by [dt] seconds ([dt >= 0]). *)

val reset : t -> unit

val elapsed_during : t -> (unit -> 'a) -> 'a * float
(** [elapsed_during t f] runs [f ()] and returns its result together with the
    simulated time charged while it ran. *)

type t = { mutable seconds : float }

let create () = { seconds = 0.0 }
let now t = t.seconds

let charge t dt =
  if dt < 0.0 then invalid_arg "Simclock.charge: negative duration";
  t.seconds <- t.seconds +. dt

let reset t = t.seconds <- 0.0

let elapsed_during t f =
  let start = t.seconds in
  let result = f () in
  (result, t.seconds -. start)

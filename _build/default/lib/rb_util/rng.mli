(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in the reproduction — the LLM simulator, the
    thread scheduler, the human-expert time model — draws from an [Rng.t]
    seeded explicitly, so that every experiment is reproducible bit-for-bit
    and independent components can be given independent streams via
    {!split}. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances by one step. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> mean:float -> std:float -> float
(** Box-Muller normal deviate. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp (gaussian ~mean:mu ~std:sigma)]. *)

val pick : t -> 'a list -> 'a
(** Uniform pick from a non-empty list. Raises [Invalid_argument] on []. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** Weighted pick; weights must be non-negative with positive sum. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

lib/rb_util/simclock.ml:

lib/rb_util/simclock.mli:

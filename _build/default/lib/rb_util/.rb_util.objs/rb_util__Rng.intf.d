lib/rb_util/rng.mli:

(** Plain-text table rendering for the benchmark harness's paper-style
    tables and figure series. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** Monospace table with a header rule. Missing cells render empty. *)

val pct : float -> string
(** [pct 0.943] is ["94.3%"]. *)

val secs : float -> string
(** Seconds with one decimal. *)

val ci : float * float -> string
(** ["[lo, hi]"] as percentages. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?(aligns = []) ~header rows =
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (cell header i))
      rows
  in
  let widths = List.init ncols width in
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> if i = 0 then Left else Right
  in
  let render_row row =
    String.concat "  "
      (List.mapi (fun i w -> pad (align_of i) w (cell row i)) widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows) ^ "\n"

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let secs x = Printf.sprintf "%.1f" x

let ci (lo, hi) = Printf.sprintf "[%.1f%%, %.1f%%]" (100.0 *. lo) (100.0 *. hi)

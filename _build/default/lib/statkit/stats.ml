let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    sqrt (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0))

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    let item i = List.nth sorted i in
    (item lo *. (1.0 -. frac)) +. (item hi *. frac)

let median xs = percentile 50.0 xs

(* two-sided critical value of the standard normal for common confidences *)
let z_of_confidence c =
  if c >= 0.995 then 2.807
  else if c >= 0.99 then 2.576
  else if c >= 0.95 then 1.960
  else if c >= 0.90 then 1.645
  else 1.282

let wilson_ci ?(confidence = 0.95) ~successes trials =
  if trials <= 0 then (0.0, 1.0)
  else begin
    let z = z_of_confidence confidence in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (max 0.0 (center -. half), min 1.0 (center +. half))
  end

let mean_ci ?(confidence = 0.95) xs =
  match xs with
  | [] -> (0.0, 0.0)
  | xs ->
    let z = z_of_confidence confidence in
    let m = mean xs in
    let se = stddev xs /. sqrt (float_of_int (List.length xs)) in
    (m -. (z *. se), m +. (z *. se))

let bootstrap_ci ?(confidence = 0.95) ?(rounds = 1000) ~seed statistic xs =
  match xs with
  | [] -> (0.0, 0.0)
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let rng = Rb_util.Rng.create seed in
    let resample () =
      List.init n (fun _ -> arr.(Rb_util.Rng.int rng n))
    in
    let stats = List.init rounds (fun _ -> statistic (resample ())) in
    let alpha = (1.0 -. confidence) /. 2.0 in
    (percentile (100.0 *. alpha) stats, percentile (100.0 *. (1.0 -. alpha)) stats)

let proportion pred xs =
  match xs with
  | [] -> 0.0
  | xs -> float_of_int (List.length (List.filter pred xs)) /. float_of_int (List.length xs)

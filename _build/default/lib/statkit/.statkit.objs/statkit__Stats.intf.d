lib/statkit/stats.mli:

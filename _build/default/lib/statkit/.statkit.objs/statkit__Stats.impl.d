lib/statkit/stats.ml: Array List Rb_util

lib/statkit/table.ml: List Printf String

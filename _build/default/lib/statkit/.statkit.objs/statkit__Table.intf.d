lib/statkit/table.mli:

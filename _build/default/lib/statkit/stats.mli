(** Summary statistics and confidence intervals for the evaluation harness.

    The paper's RQ3 reports 95% confidence intervals on pass/exec rates
    (proportions), for which the Wilson score interval is the appropriate
    small-sample choice; bootstrap intervals cover arbitrary statistics. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation (n-1). 0 for fewer than two samples. *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]; linear interpolation. *)

val wilson_ci : ?confidence:float -> successes:int -> int -> float * float
(** [wilson_ci ~successes trials]: Wilson score interval for a binomial
    proportion. Default 95%. *)

val mean_ci : ?confidence:float -> float list -> float * float
(** Normal-approximation interval around the mean. *)

val bootstrap_ci :
  ?confidence:float -> ?rounds:int -> seed:int -> (float list -> float) ->
  float list -> float * float
(** Percentile bootstrap for an arbitrary statistic (default 1000 rounds). *)

val proportion : ('a -> bool) -> 'a list -> float
(** Fraction of elements satisfying the predicate (0 on empty). *)

(** Static checker for MiniRust programs.

    Plays the role rustc plays for the paper's pipeline: it rejects malformed
    programs *including uses of unsafe operations outside [unsafe] context*
    (rustc's E0133). Repair agents run candidate edits through this checker
    before spending a Miri run on them.

    Checked unsafe operations: dereferencing a raw pointer, unchecked
    indexing, reading a union field, any access to a [static mut], calling an
    [unsafe fn], [transmute], [offset], [alloc]/[dealloc], and the atomics. *)

type info = {
  expr_ty : (int, Ast.ty) Hashtbl.t;  (** inferred type per expression node id *)
}

type error = { msg : string; context : string  (** enclosing function name *) }

val check : Ast.program -> (info, error list) result

val errors_to_string : error list -> string

val ty_of_expr : info -> Ast.expr -> Ast.ty option
(** Type recorded for an expression node during checking. *)

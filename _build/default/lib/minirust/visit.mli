(** Read-only traversals over MiniRust programs.

    The repair rule engine and the knowledge-base feature extractor both walk
    the AST; this module centralizes the traversal order so node enumeration
    is consistent everywhere. *)

val iter_exprs : (Ast.expr -> unit) -> Ast.program -> unit
(** Visit every expression (pre-order), including sub-expressions of places
    and static initializers. *)

val iter_stmts : (Ast.stmt -> unit) -> Ast.program -> unit
(** Visit every statement (pre-order), in every function. *)

val iter_exprs_block : (Ast.expr -> unit) -> Ast.block -> unit
val iter_stmts_block : (Ast.stmt -> unit) -> Ast.block -> unit

val find_stmt : Ast.program -> int -> Ast.stmt option
(** Look a statement up by node id. *)

val find_expr : Ast.program -> int -> Ast.expr option
(** Look an expression up by node id. *)

val count_exprs : Ast.program -> int
val count_stmts : Ast.program -> int

val unsafe_blocks : Ast.program -> (string * Ast.stmt) list
(** All [unsafe { ... }] statements paired with their enclosing function. *)

val stmt_in_unsafe : Ast.program -> int -> bool
(** Whether the statement with the given id sits (transitively) inside an
    [unsafe] block or an [unsafe fn] body. *)

val enclosing_fn_of_stmt : Ast.program -> int -> string option
(** Name of the function whose body contains the statement. *)

open Ast

let round_up n align = (n + align - 1) / align * align

let rec align_of program = function
  | T_unit -> 1
  | T_bool -> 1
  | T_int I8 -> 1
  | T_int I16 -> 2
  | T_int I32 -> 4
  | T_int (I64 | Usize) -> 8
  | T_ref _ | T_raw _ | T_fn _ | T_handle -> 8
  | T_array (t, _) -> align_of program t
  | T_tuple ts -> List.fold_left (fun acc t -> max acc (align_of program t)) 1 ts
  | T_union u -> (
    match lookup_union program u with
    | None -> 1
    | Some decl ->
      List.fold_left (fun acc (_, t) -> max acc (align_of program t)) 1 decl.ufields)

let rec size_of program = function
  | T_unit -> 0
  | T_bool -> 1
  | T_int I8 -> 1
  | T_int I16 -> 2
  | T_int I32 -> 4
  | T_int (I64 | Usize) -> 8
  | T_ref _ | T_raw _ | T_fn _ | T_handle -> 8
  | T_array (t, n) -> size_of program t * n
  | T_tuple ts as t ->
    let end_offset =
      List.fold_left
        (fun off elem -> round_up off (align_of program elem) + size_of program elem)
        0 ts
    in
    round_up end_offset (align_of program t)
  | T_union u as t -> (
    match lookup_union program u with
    | None -> 0
    | Some decl ->
      let raw =
        List.fold_left (fun acc (_, ft) -> max acc (size_of program ft)) 0 decl.ufields
      in
      round_up raw (align_of program t))

let tuple_offsets program ts =
  let _, rev_offsets =
    List.fold_left
      (fun (off, acc) elem ->
        let start = round_up off (align_of program elem) in
        (start + size_of program elem, start :: acc))
      (0, []) ts
  in
  List.rev rev_offsets

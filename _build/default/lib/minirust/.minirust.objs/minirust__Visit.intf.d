lib/minirust/visit.mli: Ast

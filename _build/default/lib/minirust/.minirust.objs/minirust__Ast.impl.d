lib/minirust/ast.ml: Int64 List Option String

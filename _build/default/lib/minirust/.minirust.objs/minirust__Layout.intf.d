lib/minirust/layout.mli: Ast

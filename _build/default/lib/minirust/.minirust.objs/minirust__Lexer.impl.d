lib/minirust/lexer.ml: Ast Buffer Int64 List Printf String Token

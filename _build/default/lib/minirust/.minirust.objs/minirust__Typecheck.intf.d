lib/minirust/typecheck.mli: Ast Hashtbl

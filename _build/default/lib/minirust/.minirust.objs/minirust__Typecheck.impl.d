lib/minirust/typecheck.ml: Ast Hashtbl Layout List Pretty Printf String

lib/minirust/edit.ml: Ast List Option Printf String

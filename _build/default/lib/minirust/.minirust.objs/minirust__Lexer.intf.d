lib/minirust/lexer.mli: Token

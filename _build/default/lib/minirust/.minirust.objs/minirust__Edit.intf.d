lib/minirust/edit.mli: Ast

lib/minirust/visit.ml: Ast List

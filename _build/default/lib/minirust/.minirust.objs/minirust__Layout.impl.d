lib/minirust/layout.ml: Ast List

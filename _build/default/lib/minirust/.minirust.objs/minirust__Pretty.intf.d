lib/minirust/pretty.mli: Ast

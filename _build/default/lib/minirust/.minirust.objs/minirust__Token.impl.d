lib/minirust/token.ml: Ast Int64 Printf

lib/minirust/parser.mli: Ast

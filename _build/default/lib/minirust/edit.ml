open Ast

type action =
  | Replace_stmt of int * stmt list
  | Insert_before of int * stmt
  | Insert_after of int * stmt
  | Replace_expr of int * expr
  | Wrap_unsafe of int
  | Replace_fn_body of string * block
  | Set_fn_unsafe of string * bool
  | Replace_fn_decl of fn_decl
  | Add_fn of fn_decl
  | Remove_fn of string

type t = { label : string; actions : action list }

exception Edit_error of string

(* ------------------------------------------------------------------ *)
(* Fresh-id cloning *)

let rec clone_expr (e : expr) : expr =
  let kind =
    match e.e with
    | (E_unit | E_bool _ | E_int _) as k -> k
    | E_place p -> E_place (clone_place p)
    | E_unop (op, a) -> E_unop (op, clone_expr a)
    | E_binop (op, a, b) -> E_binop (op, clone_expr a, clone_expr b)
    | E_tuple es -> E_tuple (List.map clone_expr es)
    | E_array es -> E_array (List.map clone_expr es)
    | E_repeat (a, n) -> E_repeat (clone_expr a, n)
    | E_ref (m, p) -> E_ref (m, clone_place p)
    | E_raw_of (m, p) -> E_raw_of (m, clone_place p)
    | E_call (f, args) -> E_call (f, List.map clone_expr args)
    | E_call_ptr (c, args) -> E_call_ptr (clone_expr c, List.map clone_expr args)
    | E_cast (a, t) -> E_cast (clone_expr a, t)
    | E_transmute (t, a) -> E_transmute (t, clone_expr a)
    | E_offset (a, b) -> E_offset (clone_expr a, clone_expr b)
    | E_alloc (a, b) -> E_alloc (clone_expr a, clone_expr b)
    | E_len a -> E_len (clone_expr a)
    | E_input a -> E_input (clone_expr a)
    | E_atomic_load a -> E_atomic_load (clone_expr a)
    | E_atomic_add (a, b) -> E_atomic_add (clone_expr a, clone_expr b)
  in
  mk kind

and clone_place (p : place) : place =
  match p with
  | P_var _ as v -> v
  | P_deref e -> P_deref (clone_expr e)
  | P_index (b, i) -> P_index (clone_place b, clone_expr i)
  | P_index_unchecked (b, i) -> P_index_unchecked (clone_place b, clone_expr i)
  | P_field (b, i) -> P_field (clone_place b, i)
  | P_union_field (b, f) -> P_union_field (clone_place b, f)

let rec clone_stmt (st : stmt) : stmt =
  let kind =
    match st.s with
    | S_let (n, t, e) -> S_let (n, t, clone_expr e)
    | S_assign (p, e) -> S_assign (clone_place p, clone_expr e)
    | S_expr e -> S_expr (clone_expr e)
    | S_if (c, t, f) -> S_if (clone_expr c, clone_block t, clone_block f)
    | S_while (c, b) -> S_while (clone_expr c, clone_block b)
    | S_block b -> S_block (clone_block b)
    | S_unsafe b -> S_unsafe (clone_block b)
    | S_assert (e, m) -> S_assert (clone_expr e, m)
    | S_panic m -> S_panic m
    | S_return e -> S_return (Option.map clone_expr e)
    | S_print e -> S_print (clone_expr e)
    | S_dealloc (a, b, c) -> S_dealloc (clone_expr a, clone_expr b, clone_expr c)
    | S_spawn (h, f, args) -> S_spawn (h, f, List.map clone_expr args)
    | S_join e -> S_join (clone_expr e)
    | S_atomic_store (a, b) -> S_atomic_store (clone_expr a, clone_expr b)
  in
  mks kind

and clone_block b = List.map clone_stmt b

let refresh_ids (p : program) : program =
  {
    unions = p.unions;
    statics = List.map (fun s -> { s with sinit = clone_expr s.sinit }) p.statics;
    funcs = List.map (fun f -> { f with body = clone_block f.body }) p.funcs;
  }

let rename_stmt_ids = clone_stmt

(* ------------------------------------------------------------------ *)
(* Statement-level rewriting *)

(* Rewrite a block by mapping each statement id to an optional replacement
   sequence. Recurses into nested blocks. Counts the rewrites it performs so
   a missing target can be reported. *)
let rewrite_block (hits : int ref) (f : stmt -> stmt list option) (b : block) : block =
  let rec go_block b = List.concat_map go_stmt b
  and go_stmt st =
    match f st with
    | Some replacement ->
      incr hits;
      replacement
    | None ->
      let kind =
        match st.s with
        | S_if (c, t, e) -> S_if (c, go_block t, go_block e)
        | S_while (c, body) -> S_while (c, go_block body)
        | S_block body -> S_block (go_block body)
        | S_unsafe body -> S_unsafe (go_block body)
        | ( S_let _ | S_assign _ | S_expr _ | S_assert _ | S_panic _ | S_return _
          | S_print _ | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ) as k ->
          k
      in
      [ { st with s = kind } ]
  in
  go_block b

let rewrite_program_stmts (f : stmt -> stmt list option) (p : program) : program * int =
  let hits = ref 0 in
  let funcs =
    List.map (fun fd -> { fd with body = rewrite_block hits f fd.body }) p.funcs
  in
  ({ p with funcs }, !hits)

(* ------------------------------------------------------------------ *)
(* Expression/place rewriting, shared by program-wide and single-statement
   entry points. [on_expr]/[on_place] return [Some replacement] to substitute
   a node (no recursion into the replacement) or [None] to keep recursing. *)

let make_rewriter ~(on_expr : expr -> expr option) ~(on_place : place -> place option)
    ~(hits : int ref) =
  let rec go_expr (e : expr) : expr =
    match on_expr e with
    | Some replacement ->
      incr hits;
      replacement
    | None ->
      let kind =
        match e.e with
        | (E_unit | E_bool _ | E_int _) as k -> k
        | E_place pl -> E_place (go_place pl)
        | E_unop (op, a) -> E_unop (op, go_expr a)
        | E_binop (op, a, b) -> E_binop (op, go_expr a, go_expr b)
        | E_tuple es -> E_tuple (List.map go_expr es)
        | E_array es -> E_array (List.map go_expr es)
        | E_repeat (a, n) -> E_repeat (go_expr a, n)
        | E_ref (m, pl) -> E_ref (m, go_place pl)
        | E_raw_of (m, pl) -> E_raw_of (m, go_place pl)
        | E_call (name, args) -> E_call (name, List.map go_expr args)
        | E_call_ptr (c, args) -> E_call_ptr (go_expr c, List.map go_expr args)
        | E_cast (a, t) -> E_cast (go_expr a, t)
        | E_transmute (t, a) -> E_transmute (t, go_expr a)
        | E_offset (a, b) -> E_offset (go_expr a, go_expr b)
        | E_alloc (a, b) -> E_alloc (go_expr a, go_expr b)
        | E_len a -> E_len (go_expr a)
        | E_input a -> E_input (go_expr a)
        | E_atomic_load a -> E_atomic_load (go_expr a)
        | E_atomic_add (a, b) -> E_atomic_add (go_expr a, go_expr b)
      in
      { e with e = kind }
  and go_place (pl : place) : place =
    match on_place pl with
    | Some replacement ->
      incr hits;
      replacement
    | None -> (
      match pl with
      | P_var _ as v -> v
      | P_deref e -> P_deref (go_expr e)
      | P_index (b, i) -> P_index (go_place b, go_expr i)
      | P_index_unchecked (b, i) -> P_index_unchecked (go_place b, go_expr i)
      | P_field (b, i) -> P_field (go_place b, i)
      | P_union_field (b, fld) -> P_union_field (go_place b, fld))
  in
  let rec go_stmt st =
    let kind =
      match st.s with
      | S_let (n, t, e) -> S_let (n, t, go_expr e)
      | S_assign (pl, e) -> S_assign (go_place pl, go_expr e)
      | S_expr e -> S_expr (go_expr e)
      | S_assert (e, m) -> S_assert (go_expr e, m)
      | S_print e -> S_print (go_expr e)
      | S_return e -> S_return (Option.map go_expr e)
      | S_dealloc (a, b, c) -> S_dealloc (go_expr a, go_expr b, go_expr c)
      | S_spawn (h, fn, args) -> S_spawn (h, fn, List.map go_expr args)
      | S_join e -> S_join (go_expr e)
      | S_atomic_store (a, b) -> S_atomic_store (go_expr a, go_expr b)
      | S_if (c, t, e) -> S_if (go_expr c, List.map go_stmt t, List.map go_stmt e)
      | S_while (c, body) -> S_while (go_expr c, List.map go_stmt body)
      | S_block body -> S_block (List.map go_stmt body)
      | S_unsafe body -> S_unsafe (List.map go_stmt body)
      | S_panic _ as k -> k
    in
    { st with s = kind }
  in
  (go_expr, go_stmt)

let map_exprs_in_stmt f st =
  let hits = ref 0 in
  let _, go_stmt = make_rewriter ~on_expr:f ~on_place:(fun _ -> None) ~hits in
  let st' = go_stmt st in
  (st', !hits)

let map_places_in_stmt f st =
  let hits = ref 0 in
  let _, go_stmt = make_rewriter ~on_expr:(fun _ -> None) ~on_place:f ~hits in
  let st' = go_stmt st in
  (st', !hits)

let rewrite_program_exprs (f : expr -> expr option) (p : program) : program * int =
  let hits = ref 0 in
  let go_expr, go_stmt = make_rewriter ~on_expr:f ~on_place:(fun _ -> None) ~hits in
  let funcs = List.map (fun fd -> { fd with body = List.map go_stmt fd.body }) p.funcs in
  let statics = List.map (fun s -> { s with sinit = go_expr s.sinit }) p.statics in
  ({ p with funcs; statics }, !hits)

(* ------------------------------------------------------------------ *)
(* Actions *)

let apply_action (p : program) (a : action) : program =
  match a with
  | Replace_stmt (sid, replacement) ->
    let p', hits =
      rewrite_program_stmts
        (fun st -> if st.sid = sid then Some (List.map clone_stmt replacement) else None)
        p
    in
    if hits = 0 then raise (Edit_error (Printf.sprintf "Replace_stmt: no statement #%d" sid));
    p'
  | Insert_before (sid, new_stmt) ->
    let p', hits =
      rewrite_program_stmts
        (fun st -> if st.sid = sid then Some [ clone_stmt new_stmt; st ] else None)
        p
    in
    if hits = 0 then raise (Edit_error (Printf.sprintf "Insert_before: no statement #%d" sid));
    p'
  | Insert_after (sid, new_stmt) ->
    let p', hits =
      rewrite_program_stmts
        (fun st -> if st.sid = sid then Some [ st; clone_stmt new_stmt ] else None)
        p
    in
    if hits = 0 then raise (Edit_error (Printf.sprintf "Insert_after: no statement #%d" sid));
    p'
  | Replace_expr (eid, new_expr) ->
    let p', hits =
      rewrite_program_exprs
        (fun e -> if e.eid = eid then Some (clone_expr new_expr) else None)
        p
    in
    if hits = 0 then raise (Edit_error (Printf.sprintf "Replace_expr: no expression #%d" eid));
    p'
  | Wrap_unsafe sid ->
    let p', hits =
      rewrite_program_stmts
        (fun st -> if st.sid = sid then Some [ mks (S_unsafe [ st ]) ] else None)
        p
    in
    if hits = 0 then raise (Edit_error (Printf.sprintf "Wrap_unsafe: no statement #%d" sid));
    p'
  | Replace_fn_body (name, body) ->
    if not (List.exists (fun f -> String.equal f.fname name) p.funcs) then
      raise (Edit_error ("Replace_fn_body: no function " ^ name));
    let funcs =
      List.map
        (fun f -> if String.equal f.fname name then { f with body = clone_block body } else f)
        p.funcs
    in
    { p with funcs }
  | Set_fn_unsafe (name, flag) ->
    if not (List.exists (fun f -> String.equal f.fname name) p.funcs) then
      raise (Edit_error ("Set_fn_unsafe: no function " ^ name));
    let funcs =
      List.map
        (fun f -> if String.equal f.fname name then { f with fn_unsafe = flag } else f)
        p.funcs
    in
    { p with funcs }
  | Replace_fn_decl decl ->
    if not (List.exists (fun f -> String.equal f.fname decl.fname) p.funcs) then
      raise (Edit_error ("Replace_fn_decl: no function " ^ decl.fname));
    let fresh = { decl with body = clone_block decl.body } in
    let funcs =
      List.map (fun f -> if String.equal f.fname decl.fname then fresh else f) p.funcs
    in
    { p with funcs }
  | Add_fn decl ->
    if List.exists (fun f -> String.equal f.fname decl.fname) p.funcs then
      raise (Edit_error ("Add_fn: function already exists: " ^ decl.fname));
    { p with funcs = p.funcs @ [ { decl with body = clone_block decl.body } ] }
  | Remove_fn name ->
    if not (List.exists (fun f -> String.equal f.fname name) p.funcs) then
      raise (Edit_error ("Remove_fn: no function " ^ name));
    { p with funcs = List.filter (fun f -> not (String.equal f.fname name)) p.funcs }

let apply (t : t) (p : program) : (program, string) result =
  try Ok (List.fold_left apply_action p t.actions)
  with Edit_error msg -> Error (Printf.sprintf "edit `%s` failed: %s" t.label msg)

let apply_exn (t : t) (p : program) : program =
  match apply t p with Ok p' -> p' | Error msg -> raise (Edit_error msg)

(** Hand-written lexer for MiniRust source text. *)

exception Lex_error of string * int
(** [Lex_error (message, line)]. *)

val tokenize : string -> (Token.t * int) list
(** [tokenize src] is the token stream with 1-based line numbers, ending with
    [Token.EOF]. Line comments [// ...] and whitespace are skipped.
    @raise Lex_error on an unrecognized character or malformed literal. *)

(** Pretty-printer from MiniRust AST back to source text.

    The output is valid MiniRust: [Parser.parse (Pretty.program p)] succeeds
    and yields a program structurally equal to [p] (modulo node ids) — this
    roundtrip is property-tested. The printer is also what repair agents use
    to show code to the (simulated) LLM and what the CLI prints. *)

val ty : Ast.ty -> string
val width_str : Ast.int_width -> string
val unop_str : Ast.unop -> string
val binop_str : Ast.binop -> string
val expr : Ast.expr -> string
val place : Ast.place -> string
val stmt : ?indent:int -> Ast.stmt -> string
val block : ?indent:int -> Ast.block -> string
val fn_decl : Ast.fn_decl -> string
val program : Ast.program -> string

exception Lex_error of string * int

let keyword_of_string = function
  | "fn" -> Some Token.KW_fn
  | "let" -> Some Token.KW_let
  | "mut" -> Some Token.KW_mut
  | "if" -> Some Token.KW_if
  | "else" -> Some Token.KW_else
  | "while" -> Some Token.KW_while
  | "unsafe" -> Some Token.KW_unsafe
  | "static" -> Some Token.KW_static
  | "union" -> Some Token.KW_union
  | "return" -> Some Token.KW_return
  | "true" -> Some Token.KW_true
  | "false" -> Some Token.KW_false
  | "as" -> Some Token.KW_as
  | "spawn" -> Some Token.KW_spawn
  | "raw" -> Some Token.KW_raw
  | "const" -> Some Token.KW_const
  | "loop" -> Some Token.KW_loop
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let width_suffix s =
  match s with
  | "i8" -> Some Ast.I8
  | "i16" -> Some Ast.I16
  | "i32" -> Some Ast.I32
  | "i64" -> Some Ast.I64
  | "usize" -> Some Ast.Usize
  | _ -> None

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () = incr pos in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let digits = String.sub src start (!pos - start) in
      let suffix_start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let suffix = String.sub src suffix_start (!pos - suffix_start) in
      let width =
        if String.length suffix = 0 then None
        else
          match width_suffix suffix with
          | Some w -> Some w
          | None -> raise (Lex_error ("bad integer suffix: " ^ suffix, !line))
      in
      let value =
        try Int64.of_string digits
        with Failure _ -> raise (Lex_error ("bad integer literal: " ^ digits, !line))
      in
      emit (Token.INT (value, width))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      match keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word)
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let finished = ref false in
      while not !finished do
        if !pos >= n then raise (Lex_error ("unterminated string", !line));
        let d = src.[!pos] in
        if d = '"' then begin
          advance ();
          finished := true
        end
        else if d = '\\' then begin
          advance ();
          (match peek 0 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some other -> raise (Lex_error (Printf.sprintf "bad escape \\%c" other, !line))
          | None -> raise (Lex_error ("unterminated string", !line)));
          advance ()
        end
        else begin
          Buffer.add_char buf d;
          if d = '\n' then incr line;
          advance ()
        end
      done;
      emit (Token.STRING (Buffer.contents buf))
    end
    else begin
      let two tok = advance (); advance (); emit tok in
      let one tok = advance (); emit tok in
      match (c, peek 1) with
      | ':', Some ':' -> two Token.COLONCOLON
      | '-', Some '>' -> two Token.ARROW
      | '&', Some '&' -> two Token.AMPAMP
      | '|', Some '|' -> two Token.PIPEPIPE
      | '<', Some '<' -> two Token.SHL
      | '>', Some '>' -> two Token.SHR
      | '=', Some '=' -> two Token.EQEQ
      | '!', Some '=' -> two Token.NE
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ',', _ -> one Token.COMMA
      | ';', _ -> one Token.SEMI
      | ':', _ -> one Token.COLON
      | '.', _ -> one Token.DOT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '&', _ -> one Token.AMP
      | '|', _ -> one Token.PIPE
      | '^', _ -> one Token.CARET
      | '=', _ -> one Token.EQ
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '!', _ -> one Token.BANG
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit Token.EOF;
  List.rev !tokens

(* Lexical tokens of MiniRust. Kept in their own module so the lexer, the
   parser and the LLM tokenizer-cost model can all talk about tokens. *)

type t =
  | INT of int64 * Ast.int_width option
  | IDENT of string
  | STRING of string
  (* keywords *)
  | KW_fn | KW_let | KW_mut | KW_if | KW_else | KW_while | KW_unsafe
  | KW_static | KW_union | KW_return | KW_true | KW_false | KW_as
  | KW_spawn | KW_raw | KW_const | KW_loop
  (* punctuation and operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | COLONCOLON | ARROW | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | AMPAMP | PIPE | PIPEPIPE | CARET | SHL | SHR
  | EQ | EQEQ | NE | LT | LE | GT | GE | BANG
  | EOF

let to_string = function
  | INT (n, None) -> Int64.to_string n
  | INT (n, Some w) ->
    let suffix =
      match w with
      | Ast.I8 -> "i8"
      | Ast.I16 -> "i16"
      | Ast.I32 -> "i32"
      | Ast.I64 -> "i64"
      | Ast.Usize -> "usize"
    in
    Int64.to_string n ^ suffix
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_fn -> "fn"
  | KW_let -> "let"
  | KW_mut -> "mut"
  | KW_if -> "if"
  | KW_else -> "else"
  | KW_while -> "while"
  | KW_unsafe -> "unsafe"
  | KW_static -> "static"
  | KW_union -> "union"
  | KW_return -> "return"
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_as -> "as"
  | KW_spawn -> "spawn"
  | KW_raw -> "raw"
  | KW_const -> "const"
  | KW_loop -> "loop"
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":" | COLONCOLON -> "::"
  | ARROW -> "->" | DOT -> "."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | AMPAMP -> "&&" | PIPE -> "|" | PIPEPIPE -> "||"
  | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EQ -> "=" | EQEQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">=" | BANG -> "!"
  | EOF -> "<eof>"

open Ast

let rec expr_iter f (e : expr) =
  f e;
  match e.e with
  | E_unit | E_bool _ | E_int _ -> ()
  | E_place p -> place_iter f p
  | E_unop (_, a) -> expr_iter f a
  | E_binop (_, a, b) ->
    expr_iter f a;
    expr_iter f b
  | E_tuple es | E_array es -> List.iter (expr_iter f) es
  | E_repeat (a, _) -> expr_iter f a
  | E_ref (_, p) | E_raw_of (_, p) -> place_iter f p
  | E_call (_, args) -> List.iter (expr_iter f) args
  | E_call_ptr (callee, args) ->
    expr_iter f callee;
    List.iter (expr_iter f) args
  | E_cast (a, _) | E_transmute (_, a) | E_len a | E_input a | E_atomic_load a ->
    expr_iter f a
  | E_offset (a, b) | E_alloc (a, b) | E_atomic_add (a, b) ->
    expr_iter f a;
    expr_iter f b

and place_iter f (p : place) =
  match p with
  | P_var _ -> ()
  | P_deref e -> expr_iter f e
  | P_index (base, idx) | P_index_unchecked (base, idx) ->
    place_iter f base;
    expr_iter f idx
  | P_field (base, _) -> place_iter f base
  | P_union_field (base, _) -> place_iter f base

let rec stmt_iter fs fe (st : stmt) =
  fs st;
  match st.s with
  | S_let (_, _, e) | S_expr e | S_print e | S_join e -> expr_iter fe e
  | S_assign (p, e) ->
    place_iter fe p;
    expr_iter fe e
  | S_if (c, t, f) ->
    expr_iter fe c;
    List.iter (stmt_iter fs fe) t;
    List.iter (stmt_iter fs fe) f
  | S_while (c, b) ->
    expr_iter fe c;
    List.iter (stmt_iter fs fe) b
  | S_block b | S_unsafe b -> List.iter (stmt_iter fs fe) b
  | S_assert (e, _) -> expr_iter fe e
  | S_panic _ -> ()
  | S_return None -> ()
  | S_return (Some e) -> expr_iter fe e
  | S_dealloc (a, b, c) ->
    expr_iter fe a;
    expr_iter fe b;
    expr_iter fe c
  | S_spawn (_, _, args) -> List.iter (expr_iter fe) args
  | S_atomic_store (a, b) ->
    expr_iter fe a;
    expr_iter fe b

let iter_exprs_block f b = List.iter (stmt_iter (fun _ -> ()) f) b
let iter_stmts_block f b = List.iter (stmt_iter f (fun _ -> ())) b

let iter_program fs fe (p : program) =
  List.iter (fun s -> expr_iter fe s.sinit) p.statics;
  List.iter (fun fd -> List.iter (stmt_iter fs fe) fd.body) p.funcs

let iter_exprs f p = iter_program (fun _ -> ()) f p
let iter_stmts f p = iter_program f (fun _ -> ()) p

exception Found_stmt of stmt
exception Found_expr of expr

let find_stmt p id =
  try
    iter_stmts (fun st -> if st.sid = id then raise (Found_stmt st)) p;
    None
  with Found_stmt st -> Some st

let find_expr p id =
  try
    iter_exprs (fun e -> if e.eid = id then raise (Found_expr e)) p;
    None
  with Found_expr e -> Some e

let count_exprs p =
  let n = ref 0 in
  iter_exprs (fun _ -> incr n) p;
  !n

let count_stmts p =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) p;
  !n

let unsafe_blocks p =
  let acc = ref [] in
  List.iter
    (fun fd ->
      List.iter
        (stmt_iter
           (fun st -> match st.s with S_unsafe _ -> acc := (fd.fname, st) :: !acc | _ -> ())
           (fun _ -> ()))
        fd.body)
    p.funcs;
  List.rev !acc

(* Statement-id membership, tracking whether the walk is inside unsafe. *)
let stmt_in_unsafe p id =
  let result = ref false in
  let rec go_block in_unsafe b = List.iter (go_stmt in_unsafe) b
  and go_stmt in_unsafe st =
    if st.sid = id && in_unsafe then result := true;
    match st.s with
    | S_unsafe b -> go_block true b
    | S_block b -> go_block in_unsafe b
    | S_if (_, t, f) ->
      go_block in_unsafe t;
      go_block in_unsafe f
    | S_while (_, b) -> go_block in_unsafe b
    | S_let _ | S_assign _ | S_expr _ | S_assert _ | S_panic _ | S_return _
    | S_print _ | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ->
      ()
  in
  List.iter (fun fd -> go_block fd.fn_unsafe fd.body) p.funcs;
  !result

let enclosing_fn_of_stmt p id =
  let result = ref None in
  List.iter
    (fun fd ->
      List.iter
        (stmt_iter (fun st -> if st.sid = id then result := Some fd.fname) (fun _ -> ()))
        fd.body)
    p.funcs;
  !result

(** Structural edits on MiniRust programs.

    Repair agents express every code change as an [action]; [apply] produces
    a *new* program (the input is never mutated), which is what makes the
    paper's adaptive-rollback agent cheap: previous program states are simply
    kept. Statement-level actions address statements by node id. *)

type action =
  | Replace_stmt of int * Ast.stmt list
      (** replace statement [sid] with a sequence (empty list deletes) *)
  | Insert_before of int * Ast.stmt
  | Insert_after of int * Ast.stmt
  | Replace_expr of int * Ast.expr
  | Wrap_unsafe of int  (** wrap statement [sid] in [unsafe { ... }] *)
  | Replace_fn_body of string * Ast.block
  | Set_fn_unsafe of string * bool
  | Replace_fn_decl of Ast.fn_decl
      (** replace the whole declaration (params, return type, body) of the
          same-named function *)
  | Add_fn of Ast.fn_decl
  | Remove_fn of string

type t = { label : string; actions : action list }
(** A named, ordered batch of actions; the paper's "repair step". *)

val apply : t -> Ast.program -> (Ast.program, string) result
(** Apply every action in order. Fails if a target node id or function does
    not exist. The result has fresh node ids for inserted nodes only; ids of
    untouched nodes are preserved. *)

val apply_exn : t -> Ast.program -> Ast.program

val refresh_ids : Ast.program -> Ast.program
(** Deep-copy a program giving every node a fresh id. Dataset templates use
    this so two instantiations never share ids. *)

val rename_stmt_ids : Ast.stmt -> Ast.stmt
(** Fresh ids for one statement tree (including nested expressions). *)

val map_exprs_in_stmt :
  (Ast.expr -> Ast.expr option) -> Ast.stmt -> Ast.stmt * int
(** Rewrite expressions inside one statement (recursing into nested blocks).
    Returns the rewritten statement and the number of replacements. Repair
    rules use this to build [Replace_stmt] payloads. *)

val map_places_in_stmt :
  (Ast.place -> Ast.place option) -> Ast.stmt -> Ast.stmt * int
(** Rewrite places inside one statement, including places nested within
    expressions ([E_place], [E_ref], [E_raw_of]). *)

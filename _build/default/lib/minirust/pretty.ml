open Ast

let width_str = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Usize -> "usize"

let rec ty = function
  | T_unit -> "()"
  | T_bool -> "bool"
  | T_int w -> width_str w
  | T_ref (Imm, t) -> "&" ^ ty t
  | T_ref (Mut, t) -> "&mut " ^ ty t
  | T_raw (Imm, t) -> "*const " ^ ty t
  | T_raw (Mut, t) -> "*mut " ^ ty t
  | T_array (t, n) -> Printf.sprintf "[%s; %d]" (ty t) n
  | T_tuple ts -> "(" ^ String.concat ", " (List.map ty ts) ^ ")"
  | T_fn (args, ret) ->
    Printf.sprintf "fn(%s) -> %s" (String.concat ", " (List.map ty args)) (ty ret)
  | T_union u -> u
  | T_handle -> "handle"

let unop_str = function Neg -> "-" | Not -> "!"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&&" | Or -> "||"
  | Bit_and -> "&" | Bit_or -> "|" | Bit_xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(* Precedence levels, higher binds tighter. Comparison operators are printed
   fully parenthesized when nested (Rust makes chained comparison an error,
   so the parser would otherwise reject a roundtrip). *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Bit_or -> 4
  | Bit_xor -> 5
  | Bit_and -> 6
  | Shl | Shr -> 7
  | Add | Sub -> 8
  | Mul | Div | Rem -> 9

let cast_prec = 10
let unary_prec = 11
let postfix_prec = 12
let atom_prec = 13

let rec expr_prec (e : expr) =
  match e.e with
  | E_unit | E_bool _ | E_tuple _ | E_array _ | E_repeat _ | E_call _
  | E_transmute _ | E_alloc _ | E_input _ | E_atomic_load _ | E_atomic_add _ ->
    atom_prec
  | E_int (n, _) -> if Int64.compare n 0L < 0 then unary_prec else atom_prec
  | E_place p -> place_prec p
  | E_unop _ | E_ref _ | E_raw_of _ -> unary_prec
  | E_binop (op, _, _) -> binop_prec op
  | E_call_ptr _ | E_offset _ | E_len _ -> postfix_prec
  | E_cast _ -> cast_prec

and place_prec = function
  | P_var _ -> atom_prec
  | P_deref _ -> unary_prec
  | P_index _ | P_index_unchecked _ | P_field _ | P_union_field _ -> postfix_prec

let rec expr (e : expr) = expr_at 0 e

and expr_at min_prec e =
  let p = expr_prec e in
  let s = expr_bare e in
  if p < min_prec then "(" ^ s ^ ")" else s

and expr_bare (e : expr) =
  match e.e with
  | E_unit -> "()"
  | E_bool b -> if b then "true" else "false"
  | E_int (n, w) -> Int64.to_string n ^ width_str w
  | E_place p -> place p
  | E_unop (op, a) -> unop_str op ^ expr_at unary_prec a
  | E_binop (op, a, b) ->
    let p = binop_prec op in
    (* comparisons are non-associative: parenthesize both sides at >= *)
    let left_min = if p = 3 then p + 1 else p in
    Printf.sprintf "%s %s %s" (expr_at left_min a) (binop_str op) (expr_at (p + 1) b)
  | E_tuple [] -> "()"
  | E_tuple [ x ] -> "(" ^ expr x ^ ",)"
  | E_tuple xs -> "(" ^ String.concat ", " (List.map expr xs) ^ ")"
  | E_array xs -> "[" ^ String.concat ", " (List.map expr xs) ^ "]"
  | E_repeat (x, n) -> Printf.sprintf "[%s; %d]" (expr x) n
  | E_ref (Imm, p) -> "&" ^ place_at unary_prec p
  | E_ref (Mut, p) -> "&mut " ^ place_at unary_prec p
  | E_raw_of (Imm, p) -> "&raw const " ^ place_at unary_prec p
  | E_raw_of (Mut, p) -> "&raw mut " ^ place_at unary_prec p
  | E_call (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | E_call_ptr (f, args) ->
    Printf.sprintf "%s(%s)" (expr_at postfix_prec f) (String.concat ", " (List.map expr args))
  | E_cast (a, t) -> Printf.sprintf "%s as %s" (expr_at cast_prec a) (ty t)
  | E_transmute (t, a) -> Printf.sprintf "transmute::<%s>(%s)" (ty t) (expr a)
  | E_offset (p, n) -> Printf.sprintf "%s.offset(%s)" (expr_at postfix_prec p) (expr n)
  | E_alloc (size, align) -> Printf.sprintf "alloc(%s, %s)" (expr size) (expr align)
  | E_len a -> Printf.sprintf "%s.len()" (expr_at postfix_prec a)
  | E_input i -> Printf.sprintf "input(%s)" (expr i)
  | E_atomic_load p -> Printf.sprintf "atomic_load(%s)" (expr p)
  | E_atomic_add (p, n) -> Printf.sprintf "atomic_add(%s, %s)" (expr p) (expr n)

and place p = place_at 0 p

and place_at min_prec p =
  let prec = place_prec p in
  let s = place_bare p in
  if prec < min_prec then "(" ^ s ^ ")" else s

and place_bare = function
  | P_var x -> x
  | P_deref e -> "*" ^ expr_at unary_prec e
  | P_index (p, i) -> Printf.sprintf "%s[%s]" (place_at postfix_prec p) (expr i)
  | P_index_unchecked (p, i) ->
    Printf.sprintf "%s.get_unchecked(%s)" (place_at postfix_prec p) (expr i)
  | P_field (p, i) -> Printf.sprintf "%s.%d" (place_at postfix_prec p) i
  | P_union_field (p, f) -> Printf.sprintf "%s.%s" (place_at postfix_prec p) f

let indent_str n = String.make (n * 4) ' '

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec stmt ?(indent = 0) (st : stmt) =
  let ind = indent_str indent in
  match st.s with
  | S_let (x, None, e) -> Printf.sprintf "%slet mut %s = %s;" ind x (expr e)
  | S_let (x, Some t, e) -> Printf.sprintf "%slet mut %s: %s = %s;" ind x (ty t) (expr e)
  | S_assign (p, e) -> Printf.sprintf "%s%s = %s;" ind (place p) (expr e)
  | S_expr e -> Printf.sprintf "%s%s;" ind (expr e)
  | S_if (c, t, []) ->
    Printf.sprintf "%sif %s {\n%s%s}" ind (expr c) (block_body ~indent t) ind
  | S_if (c, t, f) ->
    Printf.sprintf "%sif %s {\n%s%s} else {\n%s%s}" ind (expr c)
      (block_body ~indent t) ind (block_body ~indent f) ind
  | S_while (c, b) ->
    Printf.sprintf "%swhile %s {\n%s%s}" ind (expr c) (block_body ~indent b) ind
  | S_block b -> Printf.sprintf "%s{\n%s%s}" ind (block_body ~indent b) ind
  | S_unsafe b -> Printf.sprintf "%sunsafe {\n%s%s}" ind (block_body ~indent b) ind
  | S_assert (e, msg) ->
    Printf.sprintf "%sassert(%s, \"%s\");" ind (expr e) (escape_string msg)
  | S_panic msg -> Printf.sprintf "%spanic(\"%s\");" ind (escape_string msg)
  | S_return None -> Printf.sprintf "%sreturn;" ind
  | S_return (Some e) -> Printf.sprintf "%sreturn %s;" ind (expr e)
  | S_print e -> Printf.sprintf "%sprint(%s);" ind (expr e)
  | S_dealloc (p, size, align) ->
    Printf.sprintf "%sdealloc(%s, %s, %s);" ind (expr p) (expr size) (expr align)
  | S_spawn (h, f, args) ->
    Printf.sprintf "%slet %s = spawn %s(%s);" ind h f
      (String.concat ", " (List.map expr args))
  | S_join e -> Printf.sprintf "%sjoin(%s);" ind (expr e)
  | S_atomic_store (p, v) -> Printf.sprintf "%satomic_store(%s, %s);" ind (expr p) (expr v)

and block_body ~indent b =
  String.concat "" (List.map (fun s -> stmt ~indent:(indent + 1) s ^ "\n") b)

let block ?(indent = 0) b = block_body ~indent b

let fn_decl (f : fn_decl) =
  let params =
    String.concat ", " (List.map (fun (n, t) -> Printf.sprintf "%s: %s" n (ty t)) f.params)
  in
  let ret = match f.ret with T_unit -> "" | t -> " -> " ^ ty t in
  let unsafe_kw = if f.fn_unsafe then "unsafe " else "" in
  Printf.sprintf "%sfn %s(%s)%s {\n%s}" unsafe_kw f.fname params ret
    (block_body ~indent:0 f.body)

let union_decl (u : union_decl) =
  let fields =
    String.concat ", " (List.map (fun (n, t) -> Printf.sprintf "%s: %s" n (ty t)) u.ufields)
  in
  Printf.sprintf "union %s { %s }" u.uname fields

let static_decl (s : static_decl) =
  Printf.sprintf "static %s%s: %s = %s;" (if s.smut then "mut " else "") s.sname
    (ty s.sty) (expr s.sinit)

let program (p : program) =
  let parts =
    List.map union_decl p.unions
    @ List.map static_decl p.statics
    @ List.map fn_decl p.funcs
  in
  String.concat "\n\n" parts ^ "\n"

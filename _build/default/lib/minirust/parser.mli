(** Recursive-descent parser for MiniRust.

    Syntax is a Rust subset; see the dataset sources under [lib/dataset] for
    representative programs. [parse] assigns fresh node ids to every
    expression and statement. *)

exception Parse_error of string * int
(** [Parse_error (message, line)]. *)

val parse : string -> Ast.program
(** Parse a full program (unions, statics, functions).
    @raise Parse_error on syntax errors.
    @raise Lexer.Lex_error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests). *)

val parse_block : string -> Ast.block
(** Parse a brace-delimited block (used by tests and repair tooling). *)

open Ast

type info = { expr_ty : (int, ty) Hashtbl.t }

type error = { msg : string; context : string }

exception Type_error of string

type env = {
  program : program;
  info : info;
  fn : fn_decl;
  mutable scopes : (string * ty) list list;
  mutable in_unsafe : bool;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> fail "internal: scope underflow"
  | _ :: rest -> env.scopes <- rest

let bind env name ty =
  match env.scopes with
  | [] -> fail "internal: no scope"
  | top :: rest -> env.scopes <- ((name, ty) :: top) :: rest

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with Some t -> Some t | None -> go rest)
  in
  go env.scopes

let require_unsafe env what =
  if not env.in_unsafe then
    fail "%s is unsafe and requires an unsafe block (E0133)" what

let is_int = function T_int _ -> true | _ -> false

let fn_sig (f : fn_decl) = T_fn (List.map snd f.params, f.ret)

let rec check_expr env (e : expr) : ty =
  let t = check_expr_kind env e in
  Hashtbl.replace env.info.expr_ty e.eid t;
  t

and check_expr_kind env (e : expr) : ty =
  match e.e with
  | E_unit -> T_unit
  | E_bool _ -> T_bool
  | E_int (_, w) -> T_int w
  | E_place p -> check_place_read env p
  | E_unop (Neg, a) -> begin
    match check_expr env a with
    | T_int w -> T_int w
    | t -> fail "negation needs an integer, got %s" (Pretty.ty t)
  end
  | E_unop (Not, a) -> begin
    match check_expr env a with
    | T_bool -> T_bool
    | T_int w -> T_int w
    | t -> fail "`!` needs bool or integer, got %s" (Pretty.ty t)
  end
  | E_binop (op, a, b) -> check_binop env op a b
  | E_tuple es -> T_tuple (List.map (check_expr env) es)
  | E_array [] -> fail "cannot infer the element type of an empty array literal"
  | E_array (first :: rest) ->
    let elem_ty = check_expr env first in
    List.iteri
      (fun i e ->
        let t = check_expr env e in
        if not (equal_ty t elem_ty) then
          fail "array element %d has type %s, expected %s" (i + 1) (Pretty.ty t)
            (Pretty.ty elem_ty))
      rest;
    T_array (elem_ty, List.length rest + 1)
  | E_repeat (x, n) ->
    if n < 0 then fail "negative array repeat count";
    T_array (check_expr env x, n)
  | E_ref (m, p) ->
    let t = check_place_read env p in
    T_ref (m, t)
  | E_raw_of (m, p) ->
    let t = check_place_read env p in
    T_raw (m, t)
  | E_call (name, args) -> check_call env name args
  | E_call_ptr (callee, args) -> begin
    match check_expr env callee with
    | T_fn (param_tys, ret) ->
      check_args env ("fn-pointer call") param_tys args;
      ret
    | t -> fail "cannot call a value of type %s" (Pretty.ty t)
  end
  | E_cast (a, target) -> check_cast env a target
  | E_transmute (target, a) ->
    require_unsafe env "transmute";
    let src = check_expr env a in
    let ssize = Layout.size_of env.program src in
    let tsize = Layout.size_of env.program target in
    if ssize <> tsize then
      fail "transmute between types of different sizes: %s (%d bytes) -> %s (%d bytes)"
        (Pretty.ty src) ssize (Pretty.ty target) tsize;
    target
  | E_offset (p, n) -> begin
    require_unsafe env "pointer offset";
    let pt = check_expr env p in
    let nt = check_expr env n in
    if not (is_int nt) then fail "offset count must be an integer";
    match pt with
    | T_raw _ -> pt
    | t -> fail "offset needs a raw pointer, got %s" (Pretty.ty t)
  end
  | E_alloc (size, align) ->
    require_unsafe env "alloc";
    let st = check_expr env size in
    let at = check_expr env align in
    if not (is_int st && is_int at) then fail "alloc(size, align) takes integers";
    T_raw (Mut, T_int I8)
  | E_len a -> begin
    match check_expr env a with
    | T_array _ -> T_int Usize
    | T_ref (_, T_array _) -> T_int Usize
    | t -> fail "len() needs an array, got %s" (Pretty.ty t)
  end
  | E_input i ->
    if not (is_int (check_expr env i)) then fail "input index must be an integer";
    T_int I64
  | E_atomic_load p -> begin
    require_unsafe env "atomic_load";
    match check_expr env p with
    | T_raw (_, T_int I64) -> T_int I64
    | t -> fail "atomic_load needs *const i64 / *mut i64, got %s" (Pretty.ty t)
  end
  | E_atomic_add (p, n) -> begin
    require_unsafe env "atomic_add";
    match (check_expr env p, check_expr env n) with
    | T_raw (Mut, T_int I64), T_int I64 -> T_int I64
    | pt, nt -> fail "atomic_add needs (*mut i64, i64), got (%s, %s)" (Pretty.ty pt) (Pretty.ty nt)
  end

and check_binop env op a b =
  let ta = check_expr env a in
  let tb = check_expr env b in
  let same () =
    if not (equal_ty ta tb) then
      fail "binary `%s` on mismatched types %s and %s" (Pretty.binop_str op)
        (Pretty.ty ta) (Pretty.ty tb)
  in
  match op with
  | Add | Sub | Mul | Div | Rem | Bit_and | Bit_or | Bit_xor | Shl | Shr ->
    same ();
    if not (is_int ta) then
      fail "arithmetic `%s` needs integers, got %s" (Pretty.binop_str op) (Pretty.ty ta);
    ta
  | And | Or ->
    same ();
    if ta <> T_bool then fail "logical `%s` needs bool" (Pretty.binop_str op);
    T_bool
  | Eq | Ne ->
    same ();
    (match ta with
    | T_int _ | T_bool | T_raw _ | T_unit -> ()
    | t -> fail "equality is not defined on %s" (Pretty.ty t));
    T_bool
  | Lt | Le | Gt | Ge ->
    same ();
    (match ta with
    | T_int _ -> ()
    | t -> fail "ordering comparison is not defined on %s" (Pretty.ty t));
    T_bool

and check_cast env a target =
  let src = check_expr env a in
  let ok =
    match (src, target) with
    | T_int _, T_int _ -> true
    | T_raw _, T_raw _ -> true
    | T_ref (Mut, t1), T_raw (_, t2) -> equal_ty t1 t2
    | T_ref (Imm, t1), T_raw (Imm, t2) -> equal_ty t1 t2
    | T_raw _, T_int (Usize | I64) -> true
    | T_int (Usize | I64), T_raw _ -> true
    | T_fn _, T_int (Usize | I64) -> true
    | T_fn _, T_raw (_, T_unit) -> true
    | T_bool, T_int _ -> true
    | _ -> false
  in
  if not ok then fail "invalid cast from %s to %s" (Pretty.ty src) (Pretty.ty target);
  target

and check_call env name args =
  (* A name that resolves to a local of fn type is a fn-pointer call. *)
  match lookup_var env name with
  | Some (T_fn (param_tys, ret)) ->
    check_args env (name ^ " (fn pointer)") param_tys args;
    ret
  | Some t -> fail "cannot call local `%s` of type %s" name (Pretty.ty t)
  | None -> (
    match lookup_fn env.program name with
    | Some f ->
      if f.fn_unsafe then require_unsafe env (Printf.sprintf "call to unsafe fn `%s`" name);
      check_args env name (List.map snd f.params) args;
      f.ret
    | None -> fail "unknown function `%s`" name)

and check_args env what param_tys args =
  if List.length param_tys <> List.length args then
    fail "%s expects %d argument(s), got %d" what (List.length param_tys)
      (List.length args);
  List.iteri
    (fun i (pt, arg) ->
      let at = check_expr env arg in
      if not (equal_ty at pt) then
        fail "argument %d of %s has type %s, expected %s" (i + 1) what (Pretty.ty at)
          (Pretty.ty pt))
    (List.combine param_tys args)

and check_place_read env p =
  let t = check_place env p in
  (match p with
  | P_union_field _ -> require_unsafe env "reading a union field"
  | P_var _ | P_deref _ | P_index _ | P_index_unchecked _ | P_field _ -> ());
  t

(* Type of a place; enforces unsafe-context rules common to reads and
   writes. Union-field *reads* additionally require unsafe (Rust allows safe
   writes), which [check_place_read] layers on top. *)
and check_place env (p : place) : ty =
  match p with
  | P_var name -> begin
    match lookup_var env name with
    | Some t -> t
    | None -> (
      match lookup_static env.program name with
      | Some s ->
        if s.smut then require_unsafe env (Printf.sprintf "access to static mut `%s`" name);
        s.sty
      | None -> (
        match lookup_fn env.program name with
        | Some f -> fn_sig f
        | None -> fail "unknown variable `%s`" name))
  end
  | P_deref e -> begin
    match check_expr env e with
    | T_ref (_, t) -> t
    | T_raw (_, t) ->
      require_unsafe env "dereferencing a raw pointer";
      t
    | t -> fail "cannot dereference a value of type %s" (Pretty.ty t)
  end
  | P_index (base, idx) -> begin
    let bt = check_place env base in
    if not (is_int (check_expr env idx)) then fail "array index must be an integer";
    match bt with
    | T_array (t, _) -> t
    | t -> fail "cannot index a value of type %s" (Pretty.ty t)
  end
  | P_index_unchecked (base, idx) -> begin
    require_unsafe env "get_unchecked";
    let bt = check_place env base in
    if not (is_int (check_expr env idx)) then fail "array index must be an integer";
    match bt with
    | T_array (t, _) -> t
    | t -> fail "cannot index a value of type %s" (Pretty.ty t)
  end
  | P_field (base, i) -> begin
    match check_place env base with
    | T_tuple ts ->
      if i < 0 || i >= List.length ts then fail "tuple field index %d out of range" i;
      List.nth ts i
    | t -> fail "cannot take field .%d of type %s" i (Pretty.ty t)
  end
  | P_union_field (base, fld) -> begin
    match check_place env base with
    | T_union u -> (
      match lookup_union env.program u with
      | None -> fail "unknown union type `%s`" u
      | Some decl -> (
        match List.assoc_opt fld decl.ufields with
        | Some t -> t
        | None -> fail "union `%s` has no field `%s`" u fld))
    | t -> fail "cannot access union field on type %s" (Pretty.ty t)
  end

(* Rust rejects assignment through `&T` or `*const T` and to non-mut statics
   at compile time; mirror that (writes through a cast-to-*mut pointer are
   allowed — their soundness is the borrow checker's runtime concern). *)
let rec check_place_writable env (p : place) : unit =
  match p with
  | P_var name -> begin
    match lookup_var env name with
    | Some _ -> ()  (* every MiniRust local is mutable *)
    | None -> (
      match lookup_static env.program name with
      | Some s ->
        if not s.smut then fail "cannot assign to immutable static `%s`" name
      | None -> ())
  end
  | P_deref e -> begin
    match Hashtbl.find_opt env.info.expr_ty e.eid with
    | Some (T_ref (Imm, _)) -> fail "cannot assign through a `&` reference"
    | Some (T_raw (Imm, _)) -> fail "cannot assign through a `*const` pointer"
    | Some _ | None -> ()
  end
  | P_index (base, _) | P_index_unchecked (base, _) | P_field (base, _)
  | P_union_field (base, _) ->
    check_place_writable env base

and check_stmt env (st : stmt) : unit =
  match st.s with
  | S_let (name, annot, e) ->
    let t = check_expr env e in
    (match annot with
    | Some a when not (equal_ty a t) ->
      fail "let %s: annotated %s but initializer has type %s" name (Pretty.ty a)
        (Pretty.ty t)
    | Some _ | None -> ());
    bind env name t
  | S_assign (p, e) ->
    let pt = check_place env p in
    check_place_writable env p;
    let et = check_expr env e in
    if not (equal_ty pt et) then
      fail "assignment of %s value to place of type %s" (Pretty.ty et) (Pretty.ty pt)
  | S_expr e -> ignore (check_expr env e)
  | S_if (c, t, f) ->
    if check_expr env c <> T_bool then fail "if condition must be bool";
    check_block env t;
    check_block env f
  | S_while (c, b) ->
    if check_expr env c <> T_bool then fail "while condition must be bool";
    check_block env b
  | S_block b -> check_block env b
  | S_unsafe b ->
    let saved = env.in_unsafe in
    env.in_unsafe <- true;
    check_block env b;
    env.in_unsafe <- saved
  | S_assert (e, _) -> if check_expr env e <> T_bool then fail "assert condition must be bool"
  | S_panic _ -> ()
  | S_return None ->
    if not (equal_ty env.fn.ret T_unit) then
      fail "return without a value in a function returning %s" (Pretty.ty env.fn.ret)
  | S_return (Some e) ->
    let t = check_expr env e in
    if not (equal_ty t env.fn.ret) then
      fail "return of %s in a function returning %s" (Pretty.ty t) (Pretty.ty env.fn.ret)
  | S_print e -> begin
    match check_expr env e with
    | T_int _ | T_bool | T_unit -> ()
    | t -> fail "print() takes an integer, bool or unit, got %s" (Pretty.ty t)
  end
  | S_dealloc (p, size, align) -> begin
    require_unsafe env "dealloc";
    match check_expr env p with
    | T_raw _ ->
      if not (is_int (check_expr env size) && is_int (check_expr env align)) then
        fail "dealloc(ptr, size, align) takes integer size and align"
    | t -> fail "dealloc needs a raw pointer, got %s" (Pretty.ty t)
  end
  | S_spawn (handle, fname, args) -> begin
    match lookup_fn env.program fname with
    | None -> fail "spawn of unknown function `%s`" fname
    | Some f ->
      if f.fn_unsafe then require_unsafe env (Printf.sprintf "spawning unsafe fn `%s`" fname);
      check_args env fname (List.map snd f.params) args;
      bind env handle T_handle
  end
  | S_join e -> begin
    match check_expr env e with
    | T_handle -> ()
    | t -> fail "join needs a thread handle, got %s" (Pretty.ty t)
  end
  | S_atomic_store (p, v) -> begin
    require_unsafe env "atomic_store";
    match (check_expr env p, check_expr env v) with
    | T_raw (Mut, T_int I64), T_int I64 -> ()
    | pt, vt ->
      fail "atomic_store needs (*mut i64, i64), got (%s, %s)" (Pretty.ty pt) (Pretty.ty vt)
  end

and check_block env b =
  push_scope env;
  List.iter (check_stmt env) b;
  pop_scope env

(* Conservative "all paths return" analysis for non-unit functions. *)
let rec block_returns (b : block) =
  List.exists stmt_returns b

and stmt_returns (st : stmt) =
  match st.s with
  | S_return _ -> true
  | S_panic _ -> true
  | S_if (_, t, f) -> block_returns t && block_returns f
  | S_block b | S_unsafe b -> block_returns b
  | S_let _ | S_assign _ | S_expr _ | S_while _ | S_assert _ | S_print _
  | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ->
    false

let check_fn program info (f : fn_decl) : error list =
  let env = { program; info; fn = f; scopes = [ [] ]; in_unsafe = f.fn_unsafe } in
  try
    List.iter (fun (name, t) -> bind env name t) f.params;
    check_block env f.body;
    if (not (equal_ty f.ret T_unit)) && not (block_returns f.body) then
      [ { msg = "not all control paths return a value"; context = f.fname } ]
    else []
  with Type_error msg -> [ { msg; context = f.fname } ]

let check_static program info (s : static_decl) : error list =
  (* Static initializers are checked in a minimal environment; they may not
     reference locals, call functions or perform unsafe operations. *)
  let dummy_fn = { fname = "<static>"; params = []; ret = T_unit; fn_unsafe = false; body = [] } in
  let env = { program; info; fn = dummy_fn; scopes = [ [] ]; in_unsafe = false } in
  try
    let t = check_expr env s.sinit in
    if not (equal_ty t s.sty) then
      [ { msg =
            Printf.sprintf "static `%s` declared %s but initialized with %s" s.sname
              (Pretty.ty s.sty) (Pretty.ty t);
          context = "<static>" } ]
    else []
  with Type_error msg -> [ { msg; context = "static " ^ s.sname } ]

let check program =
  let info = { expr_ty = Hashtbl.create 256 } in
  let dup_errors =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun f ->
        if Hashtbl.mem seen f.fname then
          Some { msg = "duplicate function `" ^ f.fname ^ "`"; context = f.fname }
        else begin
          Hashtbl.add seen f.fname ();
          None
        end)
      program.funcs
  in
  let static_errors = List.concat_map (check_static program info) program.statics in
  let fn_errors = List.concat_map (check_fn program info) program.funcs in
  match dup_errors @ static_errors @ fn_errors with
  | [] -> Ok info
  | errors -> Error errors

let errors_to_string errors =
  String.concat "\n"
    (List.map (fun e -> Printf.sprintf "error in %s: %s" e.context e.msg) errors)

let ty_of_expr info (e : expr) = Hashtbl.find_opt info.expr_ty e.eid

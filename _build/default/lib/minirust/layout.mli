(** Memory layout of MiniRust types.

    Sizes and alignments follow a fixed 64-bit layout (pointers are 8 bytes).
    Tuples are laid out in declaration order with natural alignment padding;
    unions overlay all fields at offset 0. The typechecker uses sizes to
    validate [transmute]; the interpreter uses offsets for field access. *)

val size_of : Ast.program -> Ast.ty -> int
val align_of : Ast.program -> Ast.ty -> int

val tuple_offsets : Ast.program -> Ast.ty list -> int list
(** Byte offset of each component of a tuple type. *)

val round_up : int -> int -> int
(** [round_up n align] is the smallest multiple of [align] that is [>= n]. *)

open Ast

exception Parse_error of string * int

type state = { toks : (Token.t * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Token.EOF
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let error st msg = raise (Parse_error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | other -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string other))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Types *)

let width_of_name = function
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "usize" -> Some Usize
  | _ -> None

let rec parse_ty st =
  match peek st with
  | Token.AMP ->
    advance st;
    let m = if accept st Token.KW_mut then Mut else Imm in
    T_ref (m, parse_ty st)
  | Token.STAR ->
    advance st;
    let m =
      if accept st Token.KW_mut then Mut
      else if accept st Token.KW_const then Imm
      else error st "expected `const` or `mut` after `*` in type"
    in
    T_raw (m, parse_ty st)
  | Token.LPAREN ->
    advance st;
    if accept st Token.RPAREN then T_unit
    else begin
      let first = parse_ty st in
      if accept st Token.RPAREN then first
      else begin
        let rest = ref [ first ] in
        while accept st Token.COMMA do
          if peek st <> Token.RPAREN then rest := parse_ty st :: !rest
        done;
        expect st Token.RPAREN;
        T_tuple (List.rev !rest)
      end
    end
  | Token.LBRACKET ->
    advance st;
    let elem = parse_ty st in
    expect st Token.SEMI;
    let n =
      match peek st with
      | Token.INT (v, None) ->
        advance st;
        Int64.to_int v
      | _ -> error st "expected array length"
    in
    expect st Token.RBRACKET;
    T_array (elem, n)
  | Token.KW_fn ->
    advance st;
    expect st Token.LPAREN;
    let args = ref [] in
    if peek st <> Token.RPAREN then begin
      args := [ parse_ty st ];
      while accept st Token.COMMA do
        args := parse_ty st :: !args
      done
    end;
    expect st Token.RPAREN;
    expect st Token.ARROW;
    let ret = parse_ty st in
    T_fn (List.rev !args, ret)
  | Token.IDENT name -> begin
    advance st;
    match width_of_name name with
    | Some w -> T_int w
    | None -> (
      match name with
      | "bool" -> T_bool
      | "handle" -> T_handle
      | _ -> T_union name)
  end
  | other -> error st (Printf.sprintf "expected type, found %s" (Token.to_string other))

(* ------------------------------------------------------------------ *)
(* Expressions *)

let as_place st (e : expr) =
  match e.e with
  | E_place p -> p
  | _ -> error st "expected a place expression"

let rec parse_expr_st st = parse_binary st 1

and op_of_token = function
    | Token.PIPEPIPE -> Some (Or, 1)
    | Token.AMPAMP -> Some (And, 2)
    | Token.EQEQ -> Some (Eq, 3)
    | Token.NE -> Some (Ne, 3)
    | Token.LT -> Some (Lt, 3)
    | Token.LE -> Some (Le, 3)
    | Token.GT -> Some (Gt, 3)
    | Token.GE -> Some (Ge, 3)
    | Token.PIPE -> Some (Bit_or, 4)
    | Token.CARET -> Some (Bit_xor, 5)
    | Token.AMP -> Some (Bit_and, 6)
    | Token.SHL -> Some (Shl, 7)
    | Token.SHR -> Some (Shr, 7)
    | Token.PLUS -> Some (Add, 8)
    | Token.MINUS -> Some (Sub, 8)
    | Token.STAR -> Some (Mul, 9)
    | Token.SLASH -> Some (Div, 9)
    | Token.PERCENT -> Some (Rem, 9)
    | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_cast st) in
  let looping = ref true in
  while !looping do
    match op_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := mk (E_binop (op, !lhs, rhs));
      (* comparisons are non-associative (as in Rust): reject chains *)
      if prec = 3 then begin
        match op_of_token (peek st) with
        | Some (_, 3) -> error st "comparison operators cannot be chained"
        | Some _ | None -> ()
      end
    | Some _ | None -> looping := false
  done;
  !lhs

and parse_cast st =
  let e = ref (parse_unary st) in
  while peek st = Token.KW_as do
    advance st;
    let t = parse_ty st in
    e := mk (E_cast (!e, t))
  done;
  !e

and parse_unary st =
  match peek st with
  | Token.MINUS -> begin
    advance st;
    match peek st with
    | Token.INT (v, w) ->
      advance st;
      mk (E_int (Int64.neg v, Option.value w ~default:I64))
    | _ -> mk (E_unop (Neg, parse_unary st))
  end
  | Token.BANG ->
    advance st;
    mk (E_unop (Not, parse_unary st))
  | Token.STAR ->
    advance st;
    let inner = parse_unary st in
    mk (E_place (P_deref inner))
  | Token.AMP -> begin
    advance st;
    if accept st Token.KW_raw then begin
      let m =
        if accept st Token.KW_const then Imm
        else if accept st Token.KW_mut then Mut
        else error st "expected `const` or `mut` after `&raw`"
      in
      let inner = parse_unary st in
      mk (E_raw_of (m, as_place st inner))
    end
    else begin
      let m = if accept st Token.KW_mut then Mut else Imm in
      let inner = parse_unary st in
      mk (E_ref (m, as_place st inner))
    end
  end
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | Token.LPAREN ->
      (* call on a non-identifier callee: fn-pointer call *)
      advance st;
      let args = parse_args st in
      e := mk (E_call_ptr (!e, args))
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr_st st in
      expect st Token.RBRACKET;
      let p = as_place st !e in
      e := mk (E_place (P_index (p, idx)))
    | Token.DOT -> begin
      advance st;
      match peek st with
      | Token.INT (v, None) ->
        advance st;
        let p = as_place st !e in
        e := mk (E_place (P_field (p, Int64.to_int v)))
      | Token.IDENT "offset" ->
        advance st;
        expect st Token.LPAREN;
        let n = parse_expr_st st in
        expect st Token.RPAREN;
        e := mk (E_offset (!e, n))
      | Token.IDENT "len" ->
        advance st;
        expect st Token.LPAREN;
        expect st Token.RPAREN;
        e := mk (E_len !e)
      | Token.IDENT "get_unchecked" ->
        advance st;
        expect st Token.LPAREN;
        let idx = parse_expr_st st in
        expect st Token.RPAREN;
        let p = as_place st !e in
        e := mk (E_place (P_index_unchecked (p, idx)))
      | Token.IDENT field ->
        advance st;
        let p = as_place st !e in
        e := mk (E_place (P_union_field (p, field)))
      | other ->
        error st (Printf.sprintf "expected field or method after `.`, found %s" (Token.to_string other))
    end
    | _ -> continue_loop := false
  done;
  !e

and parse_args st =
  let args = ref [] in
  if peek st <> Token.RPAREN then begin
    args := [ parse_expr_st st ];
    while accept st Token.COMMA do
      args := parse_expr_st st :: !args
    done
  end;
  expect st Token.RPAREN;
  List.rev !args

and parse_atom st =
  match peek st with
  | Token.INT (v, w) ->
    advance st;
    mk (E_int (v, Option.value w ~default:I64))
  | Token.KW_true ->
    advance st;
    mk (E_bool true)
  | Token.KW_false ->
    advance st;
    mk (E_bool false)
  | Token.LPAREN -> begin
    advance st;
    if accept st Token.RPAREN then mk E_unit
    else begin
      let first = parse_expr_st st in
      if peek st = Token.COMMA then begin
        let elems = ref [ first ] in
        while accept st Token.COMMA do
          if peek st <> Token.RPAREN then elems := parse_expr_st st :: !elems
        done;
        expect st Token.RPAREN;
        mk (E_tuple (List.rev !elems))
      end
      else begin
        expect st Token.RPAREN;
        first
      end
    end
  end
  | Token.LBRACKET -> begin
    advance st;
    if accept st Token.RBRACKET then mk (E_array [])
    else begin
      let first = parse_expr_st st in
      if accept st Token.SEMI then begin
        let n =
          match peek st with
          | Token.INT (v, None) ->
            advance st;
            Int64.to_int v
          | _ -> error st "expected repeat count"
        in
        expect st Token.RBRACKET;
        mk (E_repeat (first, n))
      end
      else begin
        let elems = ref [ first ] in
        while accept st Token.COMMA do
          if peek st <> Token.RBRACKET then elems := parse_expr_st st :: !elems
        done;
        expect st Token.RBRACKET;
        mk (E_array (List.rev !elems))
      end
    end
  end
  | Token.IDENT "transmute" when peek2 st = Token.COLONCOLON ->
    advance st;
    expect st Token.COLONCOLON;
    expect st Token.LT;
    let t = parse_ty st in
    expect st Token.GT;
    expect st Token.LPAREN;
    let arg = parse_expr_st st in
    expect st Token.RPAREN;
    mk (E_transmute (t, arg))
  | Token.IDENT "alloc" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let size = parse_expr_st st in
    expect st Token.COMMA;
    let align = parse_expr_st st in
    expect st Token.RPAREN;
    mk (E_alloc (size, align))
  | Token.IDENT "input" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let i = parse_expr_st st in
    expect st Token.RPAREN;
    mk (E_input i)
  | Token.IDENT "atomic_load" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let p = parse_expr_st st in
    expect st Token.RPAREN;
    mk (E_atomic_load p)
  | Token.IDENT "atomic_add" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let p = parse_expr_st st in
    expect st Token.COMMA;
    let n = parse_expr_st st in
    expect st Token.RPAREN;
    mk (E_atomic_add (p, n))
  | Token.IDENT name -> begin
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      mk (E_call (name, args))
    end
    else mk (E_place (P_var name))
  end
  | other -> error st (Printf.sprintf "expected expression, found %s" (Token.to_string other))

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_string_lit st =
  match peek st with
  | Token.STRING s ->
    advance st;
    s
  | other -> error st (Printf.sprintf "expected string literal, found %s" (Token.to_string other))

let rec parse_stmt st =
  match peek st with
  | Token.KW_let -> begin
    advance st;
    let _mut = accept st Token.KW_mut in
    let name = expect_ident st in
    let ty_annot = if accept st Token.COLON then Some (parse_ty st) else None in
    expect st Token.EQ;
    if peek st = Token.KW_spawn then begin
      advance st;
      let fname = expect_ident st in
      expect st Token.LPAREN;
      let args = parse_args st in
      expect st Token.SEMI;
      mks (S_spawn (name, fname, args))
    end
    else begin
      let e = parse_expr_st st in
      expect st Token.SEMI;
      mks (S_let (name, ty_annot, e))
    end
  end
  | Token.KW_if -> parse_if st
  | Token.KW_while ->
    advance st;
    let cond = parse_expr_st st in
    let body = parse_block_st st in
    mks (S_while (cond, body))
  | Token.KW_loop ->
    advance st;
    let body = parse_block_st st in
    mks (S_while (mk (E_bool true), body))
  | Token.KW_unsafe ->
    advance st;
    let body = parse_block_st st in
    mks (S_unsafe body)
  | Token.KW_return ->
    advance st;
    if accept st Token.SEMI then mks (S_return None)
    else begin
      let e = parse_expr_st st in
      expect st Token.SEMI;
      mks (S_return (Some e))
    end
  | Token.LBRACE ->
    let body = parse_block_st st in
    mks (S_block body)
  | Token.IDENT "print" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr_st st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_print e)
  | Token.IDENT "assert" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_st st in
    expect st Token.COMMA;
    let msg = parse_string_lit st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_assert (cond, msg))
  | Token.IDENT "panic" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let msg = parse_string_lit st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_panic msg)
  | Token.IDENT "dealloc" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let p = parse_expr_st st in
    expect st Token.COMMA;
    let size = parse_expr_st st in
    expect st Token.COMMA;
    let align = parse_expr_st st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_dealloc (p, size, align))
  | Token.IDENT "join" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let h = parse_expr_st st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_join h)
  | Token.IDENT "atomic_store" when peek2 st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let p = parse_expr_st st in
    expect st Token.COMMA;
    let v = parse_expr_st st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mks (S_atomic_store (p, v))
  | _ -> begin
    let e = parse_expr_st st in
    if accept st Token.EQ then begin
      let p = as_place st e in
      let rhs = parse_expr_st st in
      expect st Token.SEMI;
      mks (S_assign (p, rhs))
    end
    else begin
      expect st Token.SEMI;
      mks (S_expr e)
    end
  end

and parse_if st =
  expect st Token.KW_if;
  let cond = parse_expr_st st in
  let then_b = parse_block_st st in
  let else_b =
    if accept st Token.KW_else then
      if peek st = Token.KW_if then [ parse_if st ] else parse_block_st st
    else []
  in
  mks (S_if (cond, then_b, else_b))

and parse_block_st st =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while peek st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Items *)

let parse_fn st =
  let fn_unsafe = accept st Token.KW_unsafe in
  expect st Token.KW_fn;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params = ref [] in
  if peek st <> Token.RPAREN then begin
    let parse_param () =
      let pname = expect_ident st in
      expect st Token.COLON;
      let pty = parse_ty st in
      (pname, pty)
    in
    params := [ parse_param () ];
    while accept st Token.COMMA do
      params := parse_param () :: !params
    done
  end;
  expect st Token.RPAREN;
  let ret = if accept st Token.ARROW then parse_ty st else T_unit in
  let body = parse_block_st st in
  { fname = name; params = List.rev !params; ret; fn_unsafe; body }

let parse_union st =
  expect st Token.KW_union;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] in
  if peek st <> Token.RBRACE then begin
    let parse_field () =
      let fname = expect_ident st in
      expect st Token.COLON;
      let fty = parse_ty st in
      (fname, fty)
    in
    fields := [ parse_field () ];
    while accept st Token.COMMA do
      if peek st <> Token.RBRACE then fields := parse_field () :: !fields
    done
  end;
  expect st Token.RBRACE;
  { uname = name; ufields = List.rev !fields }

let parse_static st =
  expect st Token.KW_static;
  let smut = accept st Token.KW_mut in
  let name = expect_ident st in
  expect st Token.COLON;
  let sty = parse_ty st in
  expect st Token.EQ;
  let init = parse_expr_st st in
  expect st Token.SEMI;
  { sname = name; sty; smut; sinit = init }

let parse_program st =
  let unions = ref [] in
  let statics = ref [] in
  let funcs = ref [] in
  while peek st <> Token.EOF do
    match peek st with
    | Token.KW_union -> unions := parse_union st :: !unions
    | Token.KW_static -> statics := parse_static st :: !statics
    | Token.KW_fn | Token.KW_unsafe -> funcs := parse_fn st :: !funcs
    | other ->
      error st (Printf.sprintf "expected item (fn/static/union), found %s" (Token.to_string other))
  done;
  { unions = List.rev !unions; statics = List.rev !statics; funcs = List.rev !funcs }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let parse src = parse_program (make_state src)

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_st st in
  expect st Token.EOF;
  e

let parse_block src =
  let st = make_state src in
  let b = parse_block_st st in
  expect st Token.EOF;
  b

lib/baselines/llm_only.mli: Dataset Llm_sim Rb_util Rustbrain

lib/baselines/rust_assistant.mli: Dataset Llm_sim Rb_util Rustbrain

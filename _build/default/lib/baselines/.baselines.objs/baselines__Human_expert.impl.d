lib/baselines/human_expert.ml: Dataset List Miri Rb_util Rustbrain

lib/baselines/rust_assistant.ml: Dataset List Llm_sim Rb_util Rustbrain

lib/baselines/human_expert.mli: Dataset Miri Rustbrain

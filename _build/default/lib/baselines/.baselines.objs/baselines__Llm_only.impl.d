lib/baselines/llm_only.ml: Dataset List Llm_sim Minirust Miri Rb_util Repairs Rustbrain

lib/knowledge/kb.ml: Featvec List Miri Option Printf Prune Rb_util Repairs Store String

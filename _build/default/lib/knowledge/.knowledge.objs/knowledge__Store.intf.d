lib/knowledge/store.mli:

lib/knowledge/featvec.ml: Array Ast Char Edit List Minirust Miri Pretty Prune String

lib/knowledge/prune.ml: Ast Edit Hashtbl List Minirust Miri Pretty Printf String Visit

lib/knowledge/featvec.mli: Minirust Miri Prune

lib/knowledge/prune.mli: Minirust Miri

lib/knowledge/kb.mli: Miri Rb_util Repairs

lib/knowledge/store.ml: Featvec List

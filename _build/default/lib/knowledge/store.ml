type 'a t = { mutable entries : (float array * 'a) list }

let create () = { entries = [] }

let add t vec payload = t.entries <- (vec, payload) :: t.entries

let size t = List.length t.entries

let ranked t vec =
  t.entries
  |> List.map (fun (v, payload) -> (Featvec.cosine vec v, payload))
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let query t vec ~k = List.filteri (fun i _ -> i < k) (ranked t vec)

let query_above t vec ~threshold =
  List.filter (fun (s, _) -> s > threshold) (ranked t vec)

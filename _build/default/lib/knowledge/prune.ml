open Minirust
open Ast

type sketch = { kept_stmts : stmt list; kept_fns : string list; dropped : int }

(* variables a statement reads *)
let vars_used st =
  let acc = ref [] in
  let record_place p = match p with P_var v -> acc := v :: !acc | _ -> () in
  let _ =
    Edit.map_places_in_stmt
      (fun p ->
        record_place p;
        None)
      st
  in
  let _ =
    Edit.map_exprs_in_stmt
      (fun e ->
        (match e.e with E_place (P_var v) -> acc := v :: !acc | _ -> ());
        None)
      st
  in
  List.sort_uniq compare !acc

let var_defined st = match st.s with S_let (v, _, _) | S_spawn (v, _, _) -> Some v | _ -> None

let stmt_mentions_unsafe st =
  match st.s with
  | S_unsafe _ -> true
  | S_dealloc _ | S_atomic_store _ -> true
  | _ ->
    let unsafe_expr e =
      match e.e with
      | E_transmute _ | E_offset _ | E_alloc _ | E_atomic_load _ | E_atomic_add _ -> true
      | _ -> false
    in
    let unsafe_place p =
      match p with
      | P_index_unchecked _ | P_union_field _ -> true
      | P_deref _ -> true  (* conservatively relevant *)
      | _ -> false
    in
    let found = ref false in
    let _ =
      Edit.map_exprs_in_stmt
        (fun e ->
          if unsafe_expr e then found := true;
          None)
        st
    in
    let _ =
      Edit.map_places_in_stmt
        (fun p ->
          if unsafe_place p then found := true;
          None)
        st
    in
    !found

let prune (program : program) (diags : Miri.Diag.t list) : sketch =
  let hinted_sids =
    List.filter_map
      (fun (d : Miri.Diag.t) -> if d.stmt_hint >= 0 then Some d.stmt_hint else None)
      diags
  in
  (* Pass 1 (Algorithm 1's first loop): keep unsafe-marked and hinted
     statements. *)
  let stmts = ref [] in
  let fn_of = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Visit.iter_stmts_block
        (fun st ->
          Hashtbl.replace fn_of st.sid f.fname;
          stmts := st :: !stmts)
        f.body)
    program.funcs;
  let stmts = List.rev !stmts in
  let keep = Hashtbl.create 64 in
  List.iter
    (fun st ->
      if stmt_mentions_unsafe st || List.mem st.sid hinted_sids then
        Hashtbl.replace keep st.sid ())
    stmts;
  (* Pass 2 (the context-relevance loop): keep definitions the retained
     statements depend on; drop the rest. *)
  let needed_vars =
    List.concat_map (fun st -> if Hashtbl.mem keep st.sid then vars_used st else []) stmts
  in
  List.iter
    (fun st ->
      match var_defined st with
      | Some v when List.mem v needed_vars -> Hashtbl.replace keep st.sid ()
      | _ -> ())
    stmts;
  (* only leaf statements go into the sketch: a kept block is represented by
     its kept children *)
  let leaf st =
    match st.s with S_if _ | S_while _ | S_block _ | S_unsafe _ -> false | _ -> true
  in
  let kept_stmts = List.filter (fun st -> leaf st && Hashtbl.mem keep st.sid) stmts in
  let kept_fns =
    List.sort_uniq compare
      (List.filter_map (fun st -> Hashtbl.find_opt fn_of st.sid) kept_stmts)
  in
  let total_leaves = List.length (List.filter leaf stmts) in
  { kept_stmts; kept_fns; dropped = total_leaves - List.length kept_stmts }

let render sk =
  let body = String.concat "\n" (List.map (fun st -> Pretty.stmt st) sk.kept_stmts) in
  Printf.sprintf "// pruned AST sketch: %d statements kept, %d dropped (fns: %s)\n%s"
    (List.length sk.kept_stmts) sk.dropped (String.concat ", " sk.kept_fns) body

(** The abstract-reasoning agent's knowledge base.

    Entries pair an error-prone AST-sketch vector with repair advice: the
    recommended fix class and a textual hint. Retrieval is similarity search
    over pruned-AST vectors ({!Featvec}); hits contribute a prompt section
    (raising prompt quality) and a perceived-quality bias toward the
    recommended fix class. Querying and learning both charge simulated time,
    which reproduces the paper's observation that the KB costs 2-4x overhead
    (Fig. 7, Table I's "knowledge" column). *)

type entry = {
  category : Miri.Diag.ub_kind;
  advice : string;
  recommended : Repairs.Rule.fix_kind;
}

type t

val create : ?query_cost:float -> clock:Rb_util.Simclock.t -> unit -> t
(** [query_cost] is seconds charged per lookup (default 3.0, plus a
    per-entry scan cost) — the paper's Fig. 7 observes that the knowledge
    base buys accuracy at 2-4x overhead growing with its size. *)

val seed_default : t -> unit
(** Install the built-in per-category expertise entries. *)

val learn : t -> float array -> entry -> unit
(** Add an entry under a sketch vector (used by S3 self-learning). *)

val size : t -> int

val query : t -> float array -> (float * entry) list
(** Top matches (similarity > 0.35), best first. Charges simulated time. *)

val hints_text : (float * entry) list -> string
(** Render hits as a prompt section. *)

val kind_bias : (float * entry) list -> (string * float) list
(** Perceived-quality bias per fix-class, derived from hit similarity. *)

(** A small in-memory vector store with cosine-similarity retrieval. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> float array -> 'a -> unit

val size : 'a t -> int

val query : 'a t -> float array -> k:int -> (float * 'a) list
(** Top-[k] entries by cosine similarity, best first. *)

val query_above : 'a t -> float array -> threshold:float -> (float * 'a) list
(** All entries whose similarity exceeds [threshold], best first. *)

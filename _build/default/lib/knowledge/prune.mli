(** AST pruning — the paper's Algorithm 1.

    Input: the program's AST and the Miri diagnostics. Output: a pruned
    sketch that keeps (i) every node marked [unsafe], (ii) the statement each
    diagnostic points at, and (iii) the statements that define variables the
    retained statements use (one dataflow step); everything else is dropped
    as noise. The abstract-reasoning agent vectorizes this sketch instead of
    the full AST, which both shrinks the prompt and removes the "irrelevant
    or noisy information" the paper describes. *)

type sketch = {
  kept_stmts : Minirust.Ast.stmt list;  (** retained statements, program order *)
  kept_fns : string list;               (** functions contributing statements *)
  dropped : int;                        (** statements pruned away *)
}

val prune : Minirust.Ast.program -> Miri.Diag.t list -> sketch

val render : sketch -> string
(** Source-like rendering of the sketch (used in prompts). *)

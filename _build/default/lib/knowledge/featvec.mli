(** Feature vectors over pruned AST sketches.

    A sketch is hashed into a fixed-dimension vector (feature hashing of
    node-kind unigrams and parent-child bigrams, plus a UB-category one-hot
    block). Cosine similarity over these vectors is what the knowledge base
    and the feedback store use to find "semantically similar" errors. *)

val dim : int

val of_sketch : Prune.sketch -> Miri.Diag.ub_kind option -> float array
(** L2-normalized feature vector. *)

val of_program : Minirust.Ast.program -> Miri.Diag.t list -> float array
(** Convenience: prune then vectorize, tagging with the first diag's kind. *)

val cosine : float array -> float array -> float
(** In [-1, 1]; 1.0 for identical directions. Zero vectors give 0. *)

type entry = {
  category : Miri.Diag.ub_kind;
  advice : string;
  recommended : Repairs.Rule.fix_kind;
}

type t = {
  store : entry Store.t;
  clock : Rb_util.Simclock.t;
  query_cost : float;
}

let create ?(query_cost = 3.0) ~clock () = { store = Store.create (); clock; query_cost }

let learn t vec entry = Store.add t.store vec entry

let size t = Store.size t.store

(* Build a representative sketch vector for a category from a tiny canonical
   program exhibiting it; the one-hot category block dominates matching, the
   hashed block adds structure sensitivity. *)
let seed_vec category =
  let sk = { Prune.kept_stmts = []; kept_fns = []; dropped = 0 } in
  Featvec.of_sketch sk (Some category)

let default_entries =
  [ (Miri.Diag.Stack_borrow,
     "a reference created after the raw pointer invalidated its tag; re-derive the \
      pointer or access the place directly", Repairs.Rule.Replace);
    (Miri.Diag.Unaligned_pointer,
     "the pointer's address is not a multiple of the access alignment; round the \
      offset or raise the allocation's alignment", Repairs.Rule.Modify);
    (Miri.Diag.Validity,
     "an invalid value was produced (uninitialized read or bad bool); initialize \
      the memory or derive the value with a comparison", Repairs.Rule.Modify);
    (Miri.Diag.Alloc,
     "allocation misuse: free exactly once, with the allocated layout, and free \
      everything before exit", Repairs.Rule.Modify);
    (Miri.Diag.Func_pointer,
     "the fn pointer's claimed signature disagrees with the callee; fix the \
      transmute target or call the item directly", Repairs.Rule.Modify);
    (Miri.Diag.Provenance,
     "an integer-derived pointer has no provenance; derive it from the original \
      place or expose the address first", Repairs.Rule.Replace);
    (Miri.Diag.Panic_bug,
     "a reachable panic: guard the failing operation or repair the arithmetic", Repairs.Rule.Modify);
    (Miri.Diag.Func_call,
     "the callee is not a function; route the call through the intended item", Repairs.Rule.Modify);
    (Miri.Diag.Dangling_pointer,
     "the pointee is dead or out of bounds; use checked indexing or extend the \
      pointee's lifetime", Repairs.Rule.Replace);
    (Miri.Diag.Both_borrow,
     "a shared reference was used after a conflicting mutable borrow; reorder the \
      uses or drop one borrow", Repairs.Rule.Modify);
    (Miri.Diag.Concurrency,
     "a thread was leaked or joined twice; join every spawned handle exactly once", Repairs.Rule.Modify);
    (Miri.Diag.Data_race,
     "unsynchronized conflicting accesses; join before accessing or make the \
      accesses atomic", Repairs.Rule.Replace) ]

let seed_default t =
  List.iter
    (fun (category, advice, recommended) ->
      learn t (seed_vec category) { category; advice; recommended })
    default_entries

let query t vec =
  (* size-dependent lookup cost: the paper reports KB overhead growing with
     the knowledge base *)
  Rb_util.Simclock.charge t.clock (t.query_cost +. (0.05 *. float_of_int (size t)));
  Store.query_above t.store vec ~threshold:0.35

let hints_text hits =
  String.concat "\n"
    (List.map
       (fun (score, e) ->
         Printf.sprintf "- [%s, sim %.2f] %s (recommended: %s)"
           (Miri.Diag.kind_name e.category) score e.advice
           (Repairs.Rule.fix_kind_name e.recommended))
       hits)

let kind_bias hits =
  let add acc kind amount =
    let key = Repairs.Rule.fix_kind_name kind in
    let cur = Option.value (List.assoc_opt key acc) ~default:0.0 in
    (key, cur +. amount) :: List.remove_assoc key acc
  in
  List.fold_left (fun acc (score, e) -> add acc e.recommended (0.08 *. score)) [] hits

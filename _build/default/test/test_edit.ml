(* Structural edits: every action kind, error cases, id hygiene. *)

open Minirust

let program () =
  Parser.parse
    {|
fn helper(x: i64) -> i64 {
    return x + 1;
}

fn main() {
    let mut a = 1;
    let mut b = 2;
    print(a + b);
}
|}

let nth_stmt p fn_name i =
  let f = Option.get (Ast.lookup_fn p fn_name) in
  List.nth f.Ast.body i

let body_src p fn_name =
  Pretty.block (Option.get (Ast.lookup_fn p fn_name)).Ast.body

let apply p actions = Edit.apply_exn { Edit.label = "test"; actions } p

let test_replace_stmt () =
  let p = program () in
  let target = nth_stmt p "main" 2 in
  let p' = apply p [ Edit.Replace_stmt (target.Ast.sid, [ Ast.print_s (Ast.int_e 9) ]) ] in
  Alcotest.(check bool) "replaced" true
    (Helpers.contains (body_src p' "main") "print(9i64);")

let test_delete_stmt () =
  let p = program () in
  let target = nth_stmt p "main" 1 in
  let p' = apply p [ Edit.Replace_stmt (target.Ast.sid, []) ] in
  Alcotest.(check int) "one fewer statement" 2
    (List.length (Option.get (Ast.lookup_fn p' "main")).Ast.body)

let test_insert_before_after () =
  let p = program () in
  let target = nth_stmt p "main" 1 in
  let p' =
    apply p
      [ Edit.Insert_before (target.Ast.sid, Ast.print_s (Ast.int_e 100));
        Edit.Insert_after (target.Ast.sid, Ast.print_s (Ast.int_e 200)) ]
  in
  let body = (Option.get (Ast.lookup_fn p' "main")).Ast.body in
  Alcotest.(check int) "two inserted" 5 (List.length body);
  match (List.nth body 1).Ast.s, (List.nth body 3).Ast.s with
  | Ast.S_print _, Ast.S_print _ -> ()
  | _ -> Alcotest.fail "inserts landed in the wrong place"

let test_replace_expr () =
  let p = program () in
  (* find the `a + b` expression *)
  let target = ref None in
  Visit.iter_exprs
    (fun e -> match e.Ast.e with Ast.E_binop (Ast.Add, _, _) -> target := Some e | _ -> ())
    p;
  let e = Option.get !target in
  let p' = apply p [ Edit.Replace_expr (e.Ast.eid, Ast.int_e 7) ] in
  Alcotest.(check bool) "expr replaced" true
    (Helpers.contains (body_src p' "main") "print(7i64);")

let test_wrap_unsafe () =
  let p = program () in
  let target = nth_stmt p "main" 2 in
  let p' = apply p [ Edit.Wrap_unsafe target.Ast.sid ] in
  Alcotest.(check bool) "wrapped" true
    (Helpers.contains (body_src p' "main") "unsafe {")

let test_replace_fn_body () =
  let p = program () in
  let p' = apply p [ Edit.Replace_fn_body ("helper", [ Ast.return_s (Some (Ast.int_e 0)) ]) ] in
  Alcotest.(check bool) "body replaced" true
    (Helpers.contains (body_src p' "helper") "return 0i64;")

let test_replace_fn_decl () =
  let p = program () in
  let decl =
    { Ast.fname = "helper"; params = [ ("x", Ast.T_int Ast.I64); ("y", Ast.T_int Ast.I64) ];
      ret = Ast.T_int Ast.I64; fn_unsafe = false;
      body = [ Ast.return_s (Some (Ast.binop_e Ast.Add (Ast.var_e "x") (Ast.var_e "y"))) ] }
  in
  let p' = apply p [ Edit.Replace_fn_decl decl ] in
  let f = Option.get (Ast.lookup_fn p' "helper") in
  Alcotest.(check int) "params updated" 2 (List.length f.Ast.params)

let test_add_remove_fn () =
  let p = program () in
  let decl =
    { Ast.fname = "extra"; params = []; ret = Ast.T_unit; fn_unsafe = false; body = [] }
  in
  let p' = apply p [ Edit.Add_fn decl ] in
  Alcotest.(check int) "added" 3 (List.length p'.Ast.funcs);
  let p'' = apply p' [ Edit.Remove_fn "extra" ] in
  Alcotest.(check int) "removed" 2 (List.length p''.Ast.funcs)

let test_set_fn_unsafe () =
  let p = program () in
  let p' = apply p [ Edit.Set_fn_unsafe ("helper", true) ] in
  Alcotest.(check bool) "flag set" true
    (Option.get (Ast.lookup_fn p' "helper")).Ast.fn_unsafe

let test_missing_target_fails () =
  let p = program () in
  match Edit.apply { Edit.label = "bad"; actions = [ Edit.Replace_stmt (999999, []) ] } p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "edit on a missing statement must fail"

let test_original_untouched () =
  let p = program () in
  let before = Pretty.program p in
  let target = nth_stmt p "main" 0 in
  ignore (apply p [ Edit.Replace_stmt (target.Ast.sid, []) ]);
  Alcotest.(check string) "input program not mutated" before (Pretty.program p)

let test_refresh_ids_fresh () =
  let p = program () in
  let p' = Edit.refresh_ids p in
  Alcotest.(check bool) "same source" true (Ast.equal_program p p');
  let ids p =
    let acc = ref [] in
    Visit.iter_stmts (fun st -> acc := st.Ast.sid :: !acc) p;
    Visit.iter_exprs (fun e -> acc := e.Ast.eid :: !acc) p;
    !acc
  in
  let shared = List.filter (fun id -> List.mem id (ids p)) (ids p') in
  Alcotest.(check int) "no shared node ids" 0 (List.length shared)

let test_inserted_ids_fresh () =
  let p = program () in
  let stmt = Ast.print_s (Ast.int_e 1) in
  let target = nth_stmt p "main" 0 in
  let p' =
    apply p
      [ Edit.Insert_before (target.Ast.sid, stmt); Edit.Insert_before (target.Ast.sid, stmt) ]
  in
  (* the same statement inserted twice must get distinct ids *)
  let print_ids = ref [] in
  Visit.iter_stmts
    (fun st -> match st.Ast.s with Ast.S_print _ -> print_ids := st.Ast.sid :: !print_ids | _ -> ())
    p';
  let uniq = List.sort_uniq compare !print_ids in
  Alcotest.(check int) "distinct ids" (List.length !print_ids) (List.length uniq)

let test_map_exprs_in_stmt () =
  let st = List.hd (Parser.parse_block "{ print(1 + 2); }") in
  let st', hits =
    Edit.map_exprs_in_stmt
      (fun e -> match e.Ast.e with Ast.E_int (1L, _) -> Some (Ast.int_e 10) | _ -> None)
      st
  in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check string) "rewritten" "print(10i64 + 2i64);" (Pretty.stmt st')

let test_map_places_in_stmt () =
  let st = List.hd (Parser.parse_block "{ x = a[i]; }") in
  let st', hits =
    Edit.map_places_in_stmt
      (function Ast.P_index (b, i) -> Some (Ast.P_index_unchecked (b, i)) | _ -> None)
      st
  in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check string) "rewritten" "x = a.get_unchecked(i);" (Pretty.stmt st')

let suite =
  [ Alcotest.test_case "replace stmt" `Quick test_replace_stmt;
    Alcotest.test_case "delete stmt" `Quick test_delete_stmt;
    Alcotest.test_case "insert before/after" `Quick test_insert_before_after;
    Alcotest.test_case "replace expr" `Quick test_replace_expr;
    Alcotest.test_case "wrap unsafe" `Quick test_wrap_unsafe;
    Alcotest.test_case "replace fn body" `Quick test_replace_fn_body;
    Alcotest.test_case "replace fn decl" `Quick test_replace_fn_decl;
    Alcotest.test_case "add/remove fn" `Quick test_add_remove_fn;
    Alcotest.test_case "set fn unsafe" `Quick test_set_fn_unsafe;
    Alcotest.test_case "missing target fails" `Quick test_missing_target_fails;
    Alcotest.test_case "original untouched" `Quick test_original_untouched;
    Alcotest.test_case "refresh_ids gives fresh ids" `Quick test_refresh_ids_fresh;
    Alcotest.test_case "inserted ids fresh" `Quick test_inserted_ids_fresh;
    Alcotest.test_case "map_exprs_in_stmt" `Quick test_map_exprs_in_stmt;
    Alcotest.test_case "map_places_in_stmt" `Quick test_map_places_in_stmt ]

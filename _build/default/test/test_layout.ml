(* Type layout: sizes, alignments, tuple offsets. *)

open Minirust

let empty_program = { Ast.unions = []; statics = []; funcs = [] }

let with_union =
  Parser.parse "union U { a: i64, b: i32, c: (i32, i32) } fn main() { }"

let size ?(p = empty_program) t = Layout.size_of p t
let align ?(p = empty_program) t = Layout.align_of p t

let test_scalars () =
  Alcotest.(check (list int)) "sizes"
    [ 0; 1; 1; 2; 4; 8; 8 ]
    (List.map size
       [ Ast.T_unit; Ast.T_bool; Ast.T_int Ast.I8; Ast.T_int Ast.I16; Ast.T_int Ast.I32;
         Ast.T_int Ast.I64; Ast.T_int Ast.Usize ]);
  Alcotest.(check (list int)) "aligns"
    [ 1; 1; 1; 2; 4; 8; 8 ]
    (List.map align
       [ Ast.T_unit; Ast.T_bool; Ast.T_int Ast.I8; Ast.T_int Ast.I16; Ast.T_int Ast.I32;
         Ast.T_int Ast.I64; Ast.T_int Ast.Usize ])

let test_pointers () =
  List.iter
    (fun t ->
      Alcotest.(check int) "ptr size" 8 (size t);
      Alcotest.(check int) "ptr align" 8 (align t))
    [ Ast.T_ref (Ast.Imm, Ast.T_bool); Ast.T_raw (Ast.Mut, Ast.T_int Ast.I64);
      Ast.T_fn ([ Ast.T_int Ast.I64 ], Ast.T_unit); Ast.T_handle ]

let test_arrays () =
  Alcotest.(check int) "[i32; 5]" 20 (size (Ast.T_array (Ast.T_int Ast.I32, 5)));
  Alcotest.(check int) "[i32; 5] align" 4 (align (Ast.T_array (Ast.T_int Ast.I32, 5)));
  Alcotest.(check int) "[bool; 0]" 0 (size (Ast.T_array (Ast.T_bool, 0)))

let test_tuple_padding () =
  (* (i8, i64): i8 at 0, 7 bytes of padding, i64 at 8, total 16 aligned to 8 *)
  let t = Ast.T_tuple [ Ast.T_int Ast.I8; Ast.T_int Ast.I64 ] in
  Alcotest.(check int) "size" 16 (size t);
  Alcotest.(check int) "align" 8 (align t);
  Alcotest.(check (list int)) "offsets" [ 0; 8 ]
    (Layout.tuple_offsets empty_program [ Ast.T_int Ast.I8; Ast.T_int Ast.I64 ])

let test_tuple_tail_padding () =
  (* (i64, i8): tail padding brings the size to a multiple of the align *)
  let t = Ast.T_tuple [ Ast.T_int Ast.I64; Ast.T_int Ast.I8 ] in
  Alcotest.(check int) "size" 16 (size t)

let test_nested_tuple () =
  let inner = Ast.T_tuple [ Ast.T_int Ast.I32; Ast.T_int Ast.I32 ] in
  let t = Ast.T_tuple [ Ast.T_int Ast.I8; inner ] in
  Alcotest.(check (list int)) "offsets" [ 0; 4 ]
    (Layout.tuple_offsets empty_program [ Ast.T_int Ast.I8; inner ]);
  Alcotest.(check int) "size" 12 (size t)

let test_union_layout () =
  let t = Ast.T_union "U" in
  Alcotest.(check int) "union size = max field, rounded" 8 (size ~p:with_union t);
  Alcotest.(check int) "union align = max field align" 8 (align ~p:with_union t)

let test_unknown_union () =
  Alcotest.(check int) "unknown union size 0" 0 (size (Ast.T_union "Nope"))

let test_round_up () =
  Alcotest.(check (list int)) "round_up" [ 0; 8; 8; 8; 16 ]
    (List.map (fun n -> Layout.round_up n 8) [ 0; 1; 7; 8; 9 ])

let suite =
  [ Alcotest.test_case "scalar sizes/aligns" `Quick test_scalars;
    Alcotest.test_case "pointer-like types" `Quick test_pointers;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "tuple padding" `Quick test_tuple_padding;
    Alcotest.test_case "tuple tail padding" `Quick test_tuple_tail_padding;
    Alcotest.test_case "nested tuple" `Quick test_nested_tuple;
    Alcotest.test_case "union layout" `Quick test_union_layout;
    Alcotest.test_case "unknown union" `Quick test_unknown_union;
    Alcotest.test_case "round_up" `Quick test_round_up ]

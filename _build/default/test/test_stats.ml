(* Statistics toolkit. *)

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Statkit.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "mean empty" 0.0 (Statkit.Stats.mean [])

let test_stddev () =
  feq "stddev of constant" 0.0 (Statkit.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known stddev" 1.0 (Statkit.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  feq "stddev singleton" 0.0 (Statkit.Stats.stddev [ 1.0 ])

let test_median_percentile () =
  feq "median odd" 2.0 (Statkit.Stats.median [ 3.0; 1.0; 2.0 ]);
  feq "median even" 2.5 (Statkit.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "p0" 1.0 (Statkit.Stats.percentile 0.0 [ 1.0; 2.0; 3.0 ]);
  feq "p100" 3.0 (Statkit.Stats.percentile 100.0 [ 1.0; 2.0; 3.0 ])

let test_wilson () =
  (* 8/10 at 95%: the classical Wilson interval is about [0.49, 0.94] *)
  let lo, hi = Statkit.Stats.wilson_ci ~successes:8 10 in
  Alcotest.(check bool) "lo" true (lo > 0.45 && lo < 0.52);
  Alcotest.(check bool) "hi" true (hi > 0.90 && hi < 0.97);
  (* degenerate cases *)
  let lo0, _ = Statkit.Stats.wilson_ci ~successes:0 10 in
  feq "0 successes lo" 0.0 lo0;
  let _, hi10 = Statkit.Stats.wilson_ci ~successes:10 10 in
  Alcotest.(check bool) "all successes hi is 1" true (hi10 > 0.99);
  let lo_e, hi_e = Statkit.Stats.wilson_ci ~successes:0 0 in
  feq "empty lo" 0.0 lo_e;
  feq "empty hi" 1.0 hi_e

let test_wilson_narrows_with_n () =
  let w n = Statkit.Stats.wilson_ci ~successes:(n / 2) n in
  let lo1, hi1 = w 10 in
  let lo2, hi2 = w 1000 in
  Alcotest.(check bool) "more data, narrower interval" true (hi2 -. lo2 < hi1 -. lo1)

let test_mean_ci_contains_mean () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let lo, hi = Statkit.Stats.mean_ci xs in
  let m = Statkit.Stats.mean xs in
  Alcotest.(check bool) "contains mean" true (lo <= m && m <= hi)

let prop_bootstrap_contains_point =
  QCheck.Test.make ~name:"bootstrap CI brackets the sample mean" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 5 30) (float_range 0.0 100.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let m = Statkit.Stats.mean xs in
      let lo, hi = Statkit.Stats.bootstrap_ci ~seed:7 Statkit.Stats.mean xs in
      lo <= m +. 1e-9 && m <= hi +. 1e-9)

let test_proportion () =
  feq "proportion" 0.25 (Statkit.Stats.proportion (fun x -> x > 3) [ 1; 2; 3; 4 ]);
  feq "empty" 0.0 (Statkit.Stats.proportion (fun _ -> true) [])

let test_table_render () =
  let out =
    Statkit.Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "has rule" true (Helpers.contains out "-----");
  Alcotest.(check bool) "aligned columns" true (Helpers.contains out "alpha");
  Alcotest.(check string) "pct" "94.3%" (Statkit.Table.pct 0.943);
  Alcotest.(check string) "secs" "62.6" (Statkit.Table.secs 62.62)

let suite =
  [ Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "wilson ci" `Quick test_wilson;
    Alcotest.test_case "wilson narrows" `Quick test_wilson_narrows_with_n;
    Alcotest.test_case "mean ci" `Quick test_mean_ci_contains_mean;
    QCheck_alcotest.to_alcotest prop_bootstrap_contains_point;
    Alcotest.test_case "proportion" `Quick test_proportion;
    Alcotest.test_case "table render" `Quick test_table_render ]

(* The abstract machine: language semantics and every UB family.

   These are the machine's conformance tests: arithmetic and control flow
   must behave like (debug-profile) Rust, and each of the twelve Table-I UB
   categories must be detected with the right classification. *)

open Helpers

let k = Miri.Diag.Stack_borrow
let _ = k

(* -- defined behaviour ---------------------------------------------- *)

let semantics =
  [ ("arith", "fn main() { print(2 + 3 * 4 - 1); }", [ "13" ]);
    ("division truncates", "fn main() { print(-7 / 2); print(-7 % 2); }", [ "-3"; "-1" ]);
    ("comparison chain", "fn main() { print(3 < 4); print(4 <= 4); print(5 > 6); }",
     [ "true"; "true"; "false" ]);
    ("shorts-circuit and", "fn main() { let mut x = 0; if false && 1 / x == 0 { } print(7); }", [ "7" ]);
    ("bitwise", "fn main() { print(12 & 10); print(12 | 3); print(12 ^ 10); print(1 << 4); print(-16 >> 2); }",
     [ "8"; "15"; "6"; "16"; "-4" ]);
    ("widths wrap via cast", "fn main() { print(300 as i8 as i64); }", [ "44" ]);
    ("bool cast", "fn main() { print(true as i64 + true as i64); }", [ "2" ]);
    ("while loop", "fn main() { let mut i = 0; let mut s = 0; while i < 5 { s = s + i; i = i + 1; } print(s); }",
     [ "10" ]);
    ("nested calls", "fn f(x: i64) -> i64 { return x * 2; } fn g(x: i64) -> i64 { return f(x) + 1; } fn main() { print(g(10)); }",
     [ "21" ]);
    ("recursion", "fn fib(n: i64) -> i64 { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } fn main() { print(fib(10)); }",
     [ "55" ]);
    ("references", "fn main() { let mut x = 1; let mut r = &mut x; *r = *r + 41; print(x); }", [ "42" ]);
    ("arrays", "fn main() { let mut a = [10, 20, 30]; a[1] = a[0] + a[2]; print(a[1]); print(a.len() as i64); }",
     [ "40"; "3" ]);
    ("repeat array", "fn main() { let mut a = [7; 4]; print(a[3]); }", [ "7" ]);
    ("tuples", "fn main() { let mut t = (1, (2, 3)); t.1.0 = 9; print(t.0 + t.1.0 + t.1.1); }", [ "13" ]);
    ("fn pointers", "fn inc(x: i64) -> i64 { return x + 1; } fn main() { let mut f = inc; print(f(41)); }",
     [ "42" ]);
    ("fn ptr in array", "fn a(x: i64) -> i64 { return x; } fn b(x: i64) -> i64 { return x * 2; } fn main() { let mut t = [a, b]; print(t[1](21)); }",
     [ "42" ]);
    ("raw pointers", "fn main() { let mut x = 5; let mut p = &raw mut x; unsafe { *p = *p * 2; print(*p); } }",
     [ "10" ]);
    ("heap", "fn main() { unsafe { let mut p = alloc(16, 8) as *mut i64; *p = 11; *p.offset(1) = 31; print(*p + *p.offset(1)); dealloc(p as *mut i8, 16, 8); } }",
     [ "42" ]);
    ("transmute int widths", "fn main() { unsafe { print(transmute::<i64>(-1)); } }", [ "-1" ]);
    ("union pun", "union P { w: i64, b: i8 } fn main() { unsafe { let mut u = transmute::<P>(511); print(u.b as i64); } }",
     [ "-1" ]);
    ("ptr int roundtrip with expose", "fn main() { let mut x = 9; let mut a = &raw const x as usize; unsafe { print(*(a as *const i64)); } }",
     [ "9" ]);
    ("statics", "static mut COUNT: i64 = 10; fn main() { unsafe { COUNT = COUNT + 1; print(COUNT); } }",
     [ "11" ]);
    ("immutable static", "static BASE: i64 = 100; fn main() { print(BASE + 1); }", [ "101" ]);
    ("block scoping", "fn main() { let mut x = 1; { let mut x = 2; print(x); } print(x); }", [ "2"; "1" ]);
    ("inputs", "fn main() { print(input(0) + input(1)); print(input(9)); }", [ "30"; "0" ]);
    ("spawn join value flow",
     "static mut R: i64 = 0; fn w(n: i64) { unsafe { R = n * 2; } } fn main() { let h = spawn w(21); join(h); unsafe { print(R); } }",
     [ "42" ]);
    ("atomics",
     "static mut F: i64 = 0; fn w() { unsafe { atomic_store(&raw mut F, 5); } } fn main() { let h = spawn w(); join(h); unsafe { print(atomic_load(&raw mut F)); } }",
     [ "5" ]);
    ("atomic_add returns old value",
     "static mut C: i64 = 10; fn main() { unsafe { print(atomic_add(&raw mut C, 5)); print(atomic_load(&raw mut C)); } }",
     [ "10"; "15" ]);
    ("concurrent atomic_add linearizes",
     "static mut C: i64 = 0; fn w(n: i64) { let mut i = 0; while i < n { unsafe { atomic_add(&raw mut C, 1); } i = i + 1; } } fn main() { let a = spawn w(25); let b = spawn w(25); join(a); join(b); unsafe { print(atomic_load(&raw mut C)); } }",
     [ "50" ]) ]

let semantics_cases =
  List.map
    (fun (name, src, expected) ->
      let inputs = if name = "inputs" then [| 10L; 20L |] else [||] in
      Alcotest.test_case name `Quick (expect_finished ~inputs src expected))
    semantics

(* -- panics (defined, not UB) ---------------------------------------- *)

let panics =
  [ ("add overflow", "fn main() { let mut x = 9223372036854775807; print(x + 1); }");
    ("sub overflow", "fn main() { let mut x = -9223372036854775807; print(x - 2); }");
    ("mul overflow", "fn main() { let mut x = 4611686018427387904; print(x * 2); }");
    ("i8 overflow", "fn main() { let mut x = 127i8; print(x + 1i8); }");
    ("div by zero", "fn main() { let mut z = 0; print(1 / z); }");
    ("rem by zero", "fn main() { let mut z = 0; print(1 % z); }");
    ("usize underflow", "fn main() { let mut z = 0usize; print((z - 1usize) as i64); }");
    ("shift too far", "fn main() { let mut s = 64; print(1 << s); }");
    ("checked index oob", "fn main() { let mut a = [1, 2]; print(a[5]); }");
    ("negative index", "fn main() { let mut a = [1, 2]; let mut i = -1; print(a[i]); }");
    ("explicit panic", "fn main() { panic(\"boom\"); }");
    ("failed assert", "fn main() { assert(1 == 2, \"impossible\"); }") ]

let panic_cases =
  List.map (fun (name, src) -> Alcotest.test_case name `Quick (expect_panic src)) panics

(* -- UB detection, one per family ------------------------------------ *)

let ub_cases =
  [ ("dangling: use after free",
     "fn main() { unsafe { let mut p = alloc(8, 8) as *mut i64; *p = 1; dealloc(p as *mut i8, 8, 8); print(*p); } }",
     Miri.Diag.Dangling_pointer);
    ("dangling: dead local",
     "fn f() -> *const i64 { let mut x = 3; return &raw const x; } fn main() { let mut p = f(); unsafe { print(*p); } }",
     Miri.Diag.Dangling_pointer);
    ("dangling: unchecked oob",
     "fn main() { let mut a = [1, 2]; unsafe { print(a.get_unchecked(9)); } }",
     Miri.Diag.Dangling_pointer);
    ("alloc: double free",
     "fn main() { unsafe { let mut p = alloc(8, 8); dealloc(p, 8, 8); dealloc(p, 8, 8); } }",
     Miri.Diag.Alloc);
    ("alloc: leak",
     "fn main() { unsafe { let mut p = alloc(8, 8) as *mut i64; *p = 1; print(*p); } }",
     Miri.Diag.Alloc);
    ("alloc: wrong layout",
     "fn main() { unsafe { let mut p = alloc(16, 8); dealloc(p, 8, 8); } }",
     Miri.Diag.Alloc);
    ("alloc: zero size", "fn main() { unsafe { let mut p = alloc(0, 8); } print(0); }",
     Miri.Diag.Alloc);
    ("unaligned: odd i64",
     "fn main() { unsafe { let mut b = alloc(16, 8); let mut q = b.offset(3) as *mut i64; *q = 1; dealloc(b, 16, 8); } }",
     Miri.Diag.Unaligned_pointer);
    ("validity: uninit",
     "fn main() { unsafe { let mut p = alloc(8, 8) as *mut i64; print(*p); dealloc(p as *mut i8, 8, 8); } }",
     Miri.Diag.Validity);
    ("validity: bad bool",
     "fn main() { unsafe { let mut b = transmute::<bool>(7i8); if b { print(1); } } }",
     Miri.Diag.Validity);
    ("validity: null ref",
     "fn main() { unsafe { let mut r = transmute::<&i64>(0); print(*r); } }",
     Miri.Diag.Validity);
    ("stack borrow: raw after retag",
     "fn main() { let mut x = 1; let mut p = &mut x as *mut i64; let mut r = &mut x; *r = 2; unsafe { *p = 3; } }",
     Miri.Diag.Stack_borrow);
    ("both borrow: shared after mut",
     "fn main() { let mut x = 1; let mut s = &x; let mut m = &mut x; *m = 2; print(*s); }",
     Miri.Diag.Both_borrow);
    ("both borrow: write through laundered &",
     "fn main() { let mut x = 1; let mut p = &x as *const i64 as *mut i64; unsafe { *p = 2; } }",
     Miri.Diag.Both_borrow);
    ("provenance: transmute roundtrip",
     "fn main() { let mut x = 1; unsafe { let mut a = transmute::<usize>(&raw const x); print(*(a as *const i64)); } }",
     Miri.Diag.Provenance);
    ("func pointer: wrong signature",
     "fn f(x: i64) -> i64 { return x; } fn main() { unsafe { let mut g = transmute::<fn(i64, i64) -> i64>(f); print(g(1, 2)); } }",
     Miri.Diag.Func_pointer);
    ("func call: null",
     "fn main() { unsafe { let mut g = transmute::<fn(i64) -> i64>(0); print(g(1)); } }",
     Miri.Diag.Func_call);
    ("func call: data pointer",
     "fn main() { let mut x = 1; unsafe { let mut g = transmute::<fn(i64) -> i64>(&raw const x); print(g(1)); } }",
     Miri.Diag.Func_call);
    ("concurrency: leak",
     "fn w() { } fn main() { let h = spawn w(); print(0); }",
     Miri.Diag.Concurrency);
    ("concurrency: double join",
     "fn w() { } fn main() { let h = spawn w(); join(h); join(h); }",
     Miri.Diag.Concurrency);
    ("data race: static",
     "static mut S: i64 = 0; fn w() { unsafe { S = 1; } } fn main() { let h = spawn w(); unsafe { S = 2; } join(h); }",
     Miri.Diag.Data_race);
    ("data race: non-atomic increments",
     "static mut S: i64 = 0; fn w() { unsafe { S = S + 1; } } fn main() { let h = spawn w(); let g = spawn w(); join(h); join(g); unsafe { print(S); } }",
     Miri.Diag.Data_race);
    ("data race: write after release is unordered",
     "static mut D: i64 = 0; static mut P: i64 = 0; fn w() { unsafe { atomic_store(&raw mut D, 1); P = 7; } } fn main() { let h = spawn w(); let mut s = true; while s { unsafe { if atomic_load(&raw mut D) == 1 { s = false; } } } unsafe { print(P); } join(h); }",
     Miri.Diag.Data_race) ]

let ub_tests =
  List.map (fun (name, src, kind) -> Alcotest.test_case name `Quick (expect_ub src kind)) ub_cases

(* -- machine mechanics ------------------------------------------------ *)

let test_collect_mode () =
  let r =
    run ~mode:(Miri.Machine.Collect 10)
      {|
fn main() {
    let mut a = [1, 2];
    unsafe {
        print(a.get_unchecked(7));
        print(a.get_unchecked(8));
        print(a.get_unchecked(9));
    }
}
|}
  in
  Alcotest.(check int) "three diagnostics collected" 3 r.Miri.Machine.error_count;
  Alcotest.(check (list string)) "recovery values printed" [ "0"; "0"; "0" ] r.Miri.Machine.output

let test_collect_limit_stops () =
  let r =
    run ~mode:(Miri.Machine.Collect 2)
      {|
fn main() {
    let mut a = [1, 2];
    let mut i = 0;
    while i < 10 {
        unsafe { print(a.get_unchecked(i + 50)); }
        i = i + 1;
    }
}
|}
  in
  Alcotest.(check string) "stops at limit" "ub:dangling pointer" (outcome_kind r);
  Alcotest.(check int) "exactly the limit" 2 (List.length r.Miri.Machine.diags)

let test_step_limit () =
  let r = run ~max_steps:500 "fn main() { while true { } }" in
  Alcotest.(check string) "step limit" "step-limit" (outcome_kind r)

let test_scheduler_determinism () =
  let src =
    {|
static mut A: i64 = 0;
fn w(n: i64) { unsafe { atomic_store(&raw mut A, n); } }
fn main() {
    let h1 = spawn w(1);
    let h2 = spawn w(2);
    join(h1);
    join(h2);
    unsafe { print(atomic_load(&raw mut A)); }
}
|}
  in
  let r1 = run ~seed:5 src in
  let r2 = run ~seed:5 src in
  Alcotest.(check (list string)) "same seed, same trace" r1.Miri.Machine.output r2.Miri.Machine.output

let test_stmt_hint_present () =
  let r = run "fn main() { let mut a = [1]; unsafe { print(a.get_unchecked(5)); } }" in
  match Miri.Machine.first_ub r with
  | Some d -> Alcotest.(check bool) "statement hint recorded" true (d.Miri.Diag.stmt_hint >= 0)
  | None -> Alcotest.fail "expected a diagnostic"

let test_is_clean () =
  let r = run "fn main() { print(1); }" in
  Alcotest.(check bool) "clean" true (Miri.Machine.is_clean r);
  let r2 = run "fn main() { panic(\"x\"); }" in
  Alcotest.(check bool) "panic is not clean" false (Miri.Machine.is_clean r2)

let test_offset_out_of_bounds () =
  let r =
    run
      "fn main() { unsafe { let mut p = alloc(8, 8); let mut q = p.offset(64); dealloc(p, 8, 8); } }"
  in
  Alcotest.(check string) "oob pointer arithmetic" "ub:dangling pointer" (outcome_kind r)

let test_trace_events () =
  let src =
    "fn main() { let mut x = 1; let mut p = &mut x as *mut i64; let mut r = &mut x; *r = 2; unsafe { *p = 3; } }"
  in
  let with_trace =
    run ~mode:Miri.Machine.Stop_first
      ~max_steps:10_000
      src
  in
  Alcotest.(check (list string)) "no events without the flag" [] with_trace.Miri.Machine.events;
  let program = Minirust.Parser.parse src in
  match
    Miri.Machine.analyze
      ~config:{ Miri.Machine.default_config with Miri.Machine.trace = true } program
  with
  | Miri.Machine.Compile_error _ -> Alcotest.fail "compiles"
  | Miri.Machine.Ran r ->
    Alcotest.(check bool) "retag events recorded" true
      (List.exists (fun e -> Helpers.contains e "retag: new tag") r.Miri.Machine.events);
    Alcotest.(check bool) "invalidation recorded" true
      (List.exists (fun e -> Helpers.contains e "invalidated tag") r.Miri.Machine.events)

let test_trace_alloc_events () =
  let src =
    "fn main() { unsafe { let mut p = alloc(8, 8) as *mut i64; *p = 1; print(*p); dealloc(p as *mut i8, 8, 8); } }"
  in
  match
    Miri.Machine.analyze
      ~config:{ Miri.Machine.default_config with Miri.Machine.trace = true }
      (Minirust.Parser.parse src)
  with
  | Miri.Machine.Compile_error _ -> Alcotest.fail "compiles"
  | Miri.Machine.Ran r ->
    Alcotest.(check bool) "alloc event" true
      (List.exists (fun e -> Helpers.contains e "alloc: allocation") r.Miri.Machine.events);
    Alcotest.(check bool) "dealloc event" true
      (List.exists (fun e -> Helpers.contains e "dealloc: freed") r.Miri.Machine.events)

let suite =
  semantics_cases @ panic_cases @ ub_tests
  @ [ Alcotest.test_case "collect mode" `Quick test_collect_mode;
      Alcotest.test_case "collect limit stops" `Quick test_collect_limit_stops;
      Alcotest.test_case "step limit" `Quick test_step_limit;
      Alcotest.test_case "scheduler determinism" `Quick test_scheduler_determinism;
      Alcotest.test_case "diag statement hint" `Quick test_stmt_hint_present;
      Alcotest.test_case "is_clean" `Quick test_is_clean;
      Alcotest.test_case "offset out of bounds" `Quick test_offset_out_of_bounds;
      Alcotest.test_case "borrow event trace" `Quick test_trace_events;
      Alcotest.test_case "allocation event trace" `Quick test_trace_alloc_events ]

(* Typechecker: acceptance, rejection, and the unsafe-context (E0133) and
   writability rules that mirror rustc. *)

open Minirust

let accepts name src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check (Parser.parse src) with
      | Ok _ -> ()
      | Error es -> Alcotest.failf "unexpectedly rejected: %s" (Typecheck.errors_to_string es))

let rejects name ?(needle = "") src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check (Parser.parse src) with
      | Ok _ -> Alcotest.fail "unexpectedly accepted"
      | Error es ->
        let text = Typecheck.errors_to_string es in
        let contains hay sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
          n = 0 || go 0
        in
        if needle <> "" && not (contains text needle) then
          Alcotest.failf "error %S does not mention %S" text needle)

let suite =
  [ accepts "minimal main" "fn main() { }";
    accepts "arith and locals" "fn main() { let mut x = 1; x = x + 2 * 3; print(x); }";
    accepts "refs and derefs" "fn main() { let mut x = 1; let mut r = &mut x; *r = 2; print(*r); }";
    accepts "unsafe raw deref"
      "fn main() { let mut x = 1; let mut p = &raw const x; unsafe { print(*p); } }";
    accepts "call chain"
      "fn add(a: i64, b: i64) -> i64 { return a + b; } fn main() { print(add(1, 2)); }";
    accepts "fn pointer local"
      "fn id(x: i64) -> i64 { return x; } fn main() { let mut f = id; print(f(3)); }";
    accepts "unsafe fn called in unsafe block"
      "unsafe fn danger() { } fn main() { unsafe { danger(); } }";
    accepts "unsafe fn body is unsafe context"
      "unsafe fn danger(p: *const i64) -> i64 { return *p; } fn main() { }";
    accepts "union write is safe, read unsafe"
      "union U { a: i64, b: i64 } fn main() { unsafe { let mut u = transmute::<U>(0); u.a = 1; print(u.b); } }";
    accepts "threads" "fn w(n: i64) { print(n); } fn main() { let h = spawn w(1); join(h); }";
    accepts "alloc/dealloc in unsafe"
      "fn main() { unsafe { let mut p = alloc(8, 8); dealloc(p, 8, 8); } }";
    accepts "static mut under unsafe"
      "static mut S: i64 = 0; fn main() { unsafe { S = 1; print(S); } }";
    accepts "immutable static read is safe"
      "static LIMIT: i64 = 10; fn main() { print(LIMIT); }";
    accepts "usize arithmetic" "fn main() { let mut a = [1, 2]; print((a.len() - 1usize) as i64); }";
    accepts "atomic_add under unsafe"
      "static mut C: i64 = 0; fn main() { unsafe { let mut old = atomic_add(&raw mut C, 2); print(old); } }";
    (* rejections *)
    rejects "raw deref outside unsafe" ~needle:"unsafe"
      "fn main() { let mut x = 1; let mut p = &raw const x; print(*p); }";
    rejects "get_unchecked outside unsafe" ~needle:"unsafe"
      "fn main() { let mut a = [1, 2]; print(a.get_unchecked(0)); }";
    rejects "union read outside unsafe" ~needle:"unsafe"
      "union U { a: i64 } fn mk() -> U { unsafe { return transmute::<U>(0); } } fn main() { let mut u = mk(); print(u.a); }";
    rejects "static mut outside unsafe" ~needle:"unsafe"
      "static mut S: i64 = 0; fn main() { S = 1; }";
    rejects "unsafe fn call outside unsafe" ~needle:"unsafe"
      "unsafe fn danger() { } fn main() { danger(); }";
    rejects "transmute outside unsafe" ~needle:"unsafe"
      "fn main() { let mut b = transmute::<bool>(1i8); }";
    rejects "alloc outside unsafe" ~needle:"unsafe" "fn main() { let mut p = alloc(8, 8); }";
    rejects "atomic_add outside unsafe" ~needle:"unsafe"
      "static mut C: i64 = 0; fn main() { let mut old = atomic_add(&raw mut C, 2); }";
    rejects "atomic_add on const ptr" ~needle:"atomic_add"
      "fn main() { let mut x = 1; unsafe { let mut old = atomic_add(&raw const x, 2); } }";
    rejects "type mismatch in let" ~needle:"annotated"
      "fn main() { let mut x: bool = 1; }";
    rejects "arity mismatch" ~needle:"argument"
      "fn f(a: i64) { } fn main() { f(1, 2); }";
    rejects "arg type mismatch" ~needle:"type"
      "fn f(a: bool) { } fn main() { f(1); }";
    rejects "unknown variable" ~needle:"unknown" "fn main() { print(nope); }";
    rejects "unknown function" ~needle:"unknown" "fn main() { nope(); }";
    rejects "bad transmute size" ~needle:"sizes"
      "fn main() { unsafe { let mut b = transmute::<bool>(1); } }";
    rejects "missing return" ~needle:"return" "fn f() -> i64 { let mut x = 1; } fn main() { }";
    rejects "return type mismatch" ~needle:"return"
      "fn f() -> i64 { return true; } fn main() { }";
    rejects "if condition not bool" ~needle:"bool" "fn main() { if 1 { } }";
    rejects "mixed-width arithmetic" ~needle:"mismatched"
      "fn main() { let mut x = 1i32 + 1i64; }";
    rejects "write through shared ref" ~needle:"reference"
      "fn main() { let mut x = 1; let mut r = &x; *r = 2; }";
    rejects "write through *const" ~needle:"const"
      "fn main() { let mut x = 1; let mut p = &raw const x; unsafe { *p = 2; } }";
    rejects "write to immutable static" ~needle:"immutable"
      "static LIMIT: i64 = 10; fn main() { LIMIT = 1; }";
    rejects "duplicate function" ~needle:"duplicate" "fn f() { } fn f() { } fn main() { }";
    rejects "invalid cast" ~needle:"cast" "fn main() { let mut x = true as *mut i64; }";
    rejects "call non-function local" ~needle:"call"
      "fn main() { let mut x = 1; x(2); }";
    rejects "index non-array" ~needle:"index" "fn main() { let mut x = 1; print(x[0]); }";
    rejects "spawn unknown fn" ~needle:"unknown" "fn main() { let h = spawn nope(); }";
    rejects "join non-handle" ~needle:"handle" "fn main() { join(5); }";
    rejects "print of pointer" ~needle:"print"
      "fn main() { let mut x = 1; print(&x); }";
    rejects "static initializer type" ~needle:"static"
      "static S: i64 = true; fn main() { }" ]

(* AST traversals: node enumeration, lookup, unsafe-context queries. *)

open Minirust

let program =
  Parser.parse
    {|
unsafe fn wild(p: *const i64) -> i64 {
    return *p;
}

fn main() {
    let mut x = 1;
    let mut total = 0;
    unsafe {
        let mut p = &raw const x;
        total = *p;
        if total > 0 {
            print(total);
        }
    }
    while x < 3 {
        x = x + 1;
    }
    print(x);
}
|}

let test_counts () =
  (* enumerations must agree with themselves across runs *)
  Alcotest.(check int) "stable stmt count" (Visit.count_stmts program)
    (Visit.count_stmts program);
  Alcotest.(check bool) "plausible sizes" true
    (Visit.count_stmts program >= 10 && Visit.count_exprs program >= 15)

let test_find_stmt () =
  let ids = ref [] in
  Visit.iter_stmts (fun st -> ids := st.Ast.sid :: !ids) program;
  List.iter
    (fun sid ->
      match Visit.find_stmt program sid with
      | Some st -> Alcotest.(check int) "found itself" sid st.Ast.sid
      | None -> Alcotest.failf "statement %d not found" sid)
    !ids;
  Alcotest.(check bool) "missing id" true (Visit.find_stmt program 9999999 = None)

let test_find_expr () =
  let ids = ref [] in
  Visit.iter_exprs (fun e -> ids := e.Ast.eid :: !ids) program;
  Alcotest.(check bool) "non-empty" true (!ids <> []);
  List.iter
    (fun eid ->
      match Visit.find_expr program eid with
      | Some e -> Alcotest.(check int) "found itself" eid e.Ast.eid
      | None -> Alcotest.failf "expression %d not found" eid)
    !ids

let stmt_matching pred =
  let found = ref None in
  Visit.iter_stmts (fun st -> if pred st && !found = None then found := Some st) program;
  Option.get !found

let test_unsafe_blocks () =
  match Visit.unsafe_blocks program with
  | [ (fn, _) ] -> Alcotest.(check string) "in main" "main" fn
  | blocks -> Alcotest.failf "expected 1 unsafe block, got %d" (List.length blocks)

let test_stmt_in_unsafe () =
  (* a statement lexically inside the unsafe block *)
  let inside =
    stmt_matching (fun st ->
        match st.Ast.s with
        | Ast.S_assign (Ast.P_var "total", _) -> true
        | _ -> false)
  in
  Alcotest.(check bool) "assign inside unsafe" true
    (Visit.stmt_in_unsafe program inside.Ast.sid);
  (* nested inside an if inside the unsafe block *)
  let nested =
    stmt_matching (fun st ->
        match st.Ast.s with
        | Ast.S_print { Ast.e = Ast.E_place (Ast.P_var "total"); _ } -> true
        | _ -> false)
  in
  Alcotest.(check bool) "nested print inside unsafe" true
    (Visit.stmt_in_unsafe program nested.Ast.sid);
  (* the trailing print(x) is outside *)
  let outside =
    stmt_matching (fun st ->
        match st.Ast.s with
        | Ast.S_print { Ast.e = Ast.E_place (Ast.P_var "x"); _ } -> true
        | _ -> false)
  in
  Alcotest.(check bool) "trailing print outside unsafe" false
    (Visit.stmt_in_unsafe program outside.Ast.sid);
  (* a statement in an unsafe fn body counts as unsafe context *)
  let in_unsafe_fn =
    stmt_matching (fun st -> match st.Ast.s with Ast.S_return _ -> true | _ -> false)
  in
  Alcotest.(check bool) "unsafe fn body" true
    (Visit.stmt_in_unsafe program in_unsafe_fn.Ast.sid)

let test_enclosing_fn () =
  let ret =
    stmt_matching (fun st -> match st.Ast.s with Ast.S_return _ -> true | _ -> false)
  in
  Alcotest.(check (option string)) "return lives in wild" (Some "wild")
    (Visit.enclosing_fn_of_stmt program ret.Ast.sid);
  let while_stmt =
    stmt_matching (fun st -> match st.Ast.s with Ast.S_while _ -> true | _ -> false)
  in
  Alcotest.(check (option string)) "while lives in main" (Some "main")
    (Visit.enclosing_fn_of_stmt program while_stmt.Ast.sid)

let test_iter_visits_statics () =
  let p = Parser.parse "static S: i64 = 40 + 2; fn main() { }" in
  let saw_addition = ref false in
  Visit.iter_exprs
    (fun e -> match e.Ast.e with Ast.E_binop (Ast.Add, _, _) -> saw_addition := true | _ -> ())
    p;
  Alcotest.(check bool) "static initializers visited" true !saw_addition

let suite =
  [ Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "find_stmt total" `Quick test_find_stmt;
    Alcotest.test_case "find_expr total" `Quick test_find_expr;
    Alcotest.test_case "unsafe blocks" `Quick test_unsafe_blocks;
    Alcotest.test_case "stmt_in_unsafe" `Quick test_stmt_in_unsafe;
    Alcotest.test_case "enclosing fn" `Quick test_enclosing_fn;
    Alcotest.test_case "statics visited" `Quick test_iter_visits_statics ]

(* Repair rules, candidate enumeration, oracle scoring, corruption. *)

let diag_of program inputs =
  match
    Miri.Machine.analyze ~config:{ Miri.Machine.default_config with Miri.Machine.inputs } program
  with
  | Miri.Machine.Ran r -> (
    match r.Miri.Machine.outcome with
    | Miri.Machine.Ub d -> (Some d, None)
    | Miri.Machine.Panicked m -> (None, Some m)
    | _ -> (None, None))
  | Miri.Machine.Compile_error _ -> (None, None)

let context_of ?(inputs = [||]) src =
  let program = Minirust.Parser.parse src in
  let diag, panicked = diag_of program inputs in
  { Repairs.Rule.program; diag; panicked }

let labels proposals =
  List.map (fun p -> p.Repairs.Rule.edit.Minirust.Edit.label) proposals

let has_label needle proposals =
  List.exists (fun l -> Helpers.contains l needle) (labels proposals)

let unchecked_src =
  "fn main() { let mut a = [1, 2, 3]; let mut i = input(0); unsafe { print(a.get_unchecked(i)); } }"

let test_checked_indexing_rule () =
  let ctx = context_of ~inputs:[| 9L |] unchecked_src in
  let proposals = Repairs.Rule.run_all ctx in
  Alcotest.(check bool) "offers checked indexing" true (has_label "checked indexing" proposals);
  Alcotest.(check bool) "offers bounds assert" true (has_label "assert index" proposals)

let test_checked_indexing_fixes () =
  let ctx = context_of ~inputs:[| 9L |] unchecked_src in
  let proposals = Repairs.Rule.run_all ctx in
  let checked =
    List.find (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "checked indexing")
      proposals
  in
  match Minirust.Edit.apply checked.Repairs.Rule.edit ctx.Repairs.Rule.program with
  | Ok program' ->
    let diag, panicked = diag_of program' [| 9L |] in
    Alcotest.(check bool) "UB gone" true (diag = None);
    Alcotest.(check bool) "panics instead" true (panicked <> None)
  | Error msg -> Alcotest.failf "edit failed: %s" msg

let test_remove_dealloc_rule () =
  let ctx =
    context_of
      "fn main() { unsafe { let mut p = alloc(8, 8); dealloc(p, 8, 8); dealloc(p, 8, 8); } }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  Alcotest.(check bool) "offers dealloc removal" true (has_label "remove duplicate dealloc" proposals)

let test_add_dealloc_rule () =
  let ctx =
    context_of "fn main() { unsafe { let mut p = alloc(8, 8) as *mut i64; *p = 1; print(*p); } }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  let free = List.find_opt (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "free p") proposals in
  match free with
  | None -> Alcotest.fail "no add-dealloc proposal"
  | Some p -> (
    match Minirust.Edit.apply p.Repairs.Rule.edit ctx.Repairs.Rule.program with
    | Ok program' ->
      let diag, _ = diag_of program' [||] in
      Alcotest.(check bool) "leak fixed" true (diag = None)
    | Error msg -> Alcotest.failf "edit failed: %s" msg)

let test_rederive_pointer_rule () =
  let src =
    "fn main() { let mut x = 1; let mut p = &raw mut x; x = 2; unsafe { print(*p); } }"
  in
  let ctx = context_of src in
  let proposals = Repairs.Rule.run_all ctx in
  let rederive =
    List.find_opt (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "re-derive") proposals
  in
  match rederive with
  | None -> Alcotest.fail "no re-derive proposal"
  | Some p -> (
    match Minirust.Edit.apply p.Repairs.Rule.edit ctx.Repairs.Rule.program with
    | Ok program' ->
      let diag, _ = diag_of program' [||] in
      Alcotest.(check bool) "stack-borrow fixed" true (diag = None)
    | Error msg -> Alcotest.failf "edit failed: %s" msg)

let test_atomicize_rule () =
  let src =
    "static mut S: i64 = 0; fn w() { unsafe { S = 1; } } fn main() { let h = spawn w(); unsafe { S = 2; } join(h); }"
  in
  let ctx = context_of src in
  let proposals = Repairs.Rule.run_all ctx in
  let atomic =
    List.find_opt (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "atomic") proposals
  in
  match atomic with
  | None -> Alcotest.fail "no atomicize proposal"
  | Some p -> (
    match Minirust.Edit.apply p.Repairs.Rule.edit ctx.Repairs.Rule.program with
    | Ok program' ->
      let diag, _ = diag_of program' [||] in
      Alcotest.(check bool) "race fixed" true (diag = None)
    | Error msg -> Alcotest.failf "edit failed: %s" msg)

let test_fn_sig_rule () =
  let src =
    "fn f(x: i64) -> i64 { return x; } fn main() { unsafe { let mut g = transmute::<fn(i64, i64) -> i64>(f); print(g(1, 2)); } }"
  in
  let ctx = context_of src in
  let proposals = Repairs.Rule.run_all ctx in
  Alcotest.(check bool) "offers signature fix" true (has_label "signature" proposals);
  Alcotest.(check bool) "offers direct use" true (has_label "directly" proposals)

let test_panic_guard_rule () =
  let ctx =
    context_of ~inputs:[| 0L |]
      "fn main() { let mut d = input(0); print(10 / d); }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  Alcotest.(check bool) "offers divisor guard" true (has_label "zero divisor" proposals)

let test_fix_dealloc_layout_rule () =
  let ctx =
    context_of
      "fn main() { unsafe { let mut p = alloc(16, 8) as *mut i64; *p = 1; print(*p); dealloc(p as *mut i8, 8, 8); } }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  let fix =
    List.find_opt
      (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "allocated layout")
      proposals
  in
  match fix with
  | None -> Alcotest.fail "no dealloc-layout proposal"
  | Some p -> (
    match Minirust.Edit.apply p.Repairs.Rule.edit ctx.Repairs.Rule.program with
    | Ok program' ->
      let diag, _ = diag_of program' [||] in
      Alcotest.(check bool) "wrong-size free fixed" true (diag = None)
    | Error msg -> Alcotest.failf "edit failed: %s" msg)

let test_widen_alloc_rule () =
  (* buffer too small: reading one element past a 16-byte block *)
  let ctx =
    context_of
      "fn main() { unsafe { let mut p = alloc(16, 8) as *mut i64; *p = 1; *p.offset(1) = 2; print(*p.offset(2)); dealloc(p as *mut i8, 16, 8); } }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  let widen =
    List.find_opt
      (fun p -> Helpers.contains p.Repairs.Rule.edit.Minirust.Edit.label "double the allocation")
      proposals
  in
  match widen with
  | None -> Alcotest.fail "no widen proposal"
  | Some p -> (
    match Minirust.Edit.apply p.Repairs.Rule.edit ctx.Repairs.Rule.program with
    | Ok program' -> (
      (* the OOB is gone; the slot is merely uninitialized now, which is a
         different (validity) diagnosis — widening did its part *)
      match diag_of program' [||] with
      | Some d, _ ->
        Alcotest.(check bool) "no longer out-of-bounds" true
          (d.Miri.Diag.kind <> Miri.Diag.Dangling_pointer && d.Miri.Diag.kind <> Miri.Diag.Alloc)
      | None, _ -> ())
    | Error msg -> Alcotest.failf "edit failed: %s" msg)

let test_rules_only_fire_when_relevant () =
  (* alloc-specific rules must not fire on a race diagnosis *)
  let ctx =
    context_of
      "static mut S: i64 = 0; fn w() { unsafe { S = 1; } } fn main() { let h = spawn w(); unsafe { S = 2; } join(h); }"
  in
  let proposals = Repairs.Rule.run_all ctx in
  Alcotest.(check bool) "no dealloc proposals on a race" false (has_label "dealloc" proposals)

(* candidates *)

let case = Option.get (Dataset.Corpus.find "al_double_free")

let test_reference_candidate_scores_top () =
  let buggy = Dataset.Case.buggy case in
  let diag, panicked = diag_of buggy [| 5L |] in
  let ctx = { Repairs.Rule.program = buggy; diag; panicked } in
  let cands =
    Repairs.Candidates.enumerate ~reference:(Dataset.Case.fixed case) ctx
    |> Repairs.Candidates.score_all ~scorer:(Dataset.Semantic.score case) buggy
  in
  let best = List.fold_left (fun b c -> if c.Repairs.Candidates.quality > b.Repairs.Candidates.quality then c else b) (List.hd cands) cands in
  Alcotest.(check (float 0.001)) "a perfect candidate exists" 1.0 best.Repairs.Candidates.quality

let test_failing_candidates_score_low () =
  let buggy = Dataset.Case.buggy case in
  let diag, panicked = diag_of buggy [| 5L |] in
  let ctx = { Repairs.Rule.program = buggy; diag; panicked } in
  let cands =
    Repairs.Candidates.enumerate ctx
    |> Repairs.Candidates.score_all ~scorer:(Dataset.Semantic.score case) buggy
  in
  Alcotest.(check bool) "some candidate is imperfect" true
    (List.exists (fun c -> c.Repairs.Candidates.quality < 0.9) cands)

let test_reference_edit_reproduces_fix () =
  List.iter
    (fun (c : Dataset.Case.t) ->
      let buggy = Dataset.Case.buggy c in
      match Repairs.Candidates.reference_edit ~buggy ~fixed:(Dataset.Case.fixed c) with
      | None -> Alcotest.failf "%s: no reference edit" c.Dataset.Case.name
      | Some edit -> (
        match Minirust.Edit.apply edit buggy with
        | Error msg -> Alcotest.failf "%s: reference edit failed: %s" c.Dataset.Case.name msg
        | Ok program' ->
          let v = Dataset.Semantic.check c program' in
          if not v.Dataset.Semantic.semantic then
            Alcotest.failf "%s: reference edit is not semantically acceptable" c.Dataset.Case.name))
    Dataset.Corpus.all

let test_candidate_cap () =
  let buggy = Dataset.Case.buggy case in
  let diag, panicked = diag_of buggy [| 5L |] in
  let ctx = { Repairs.Rule.program = buggy; diag; panicked } in
  let cands = Repairs.Candidates.enumerate ~max_candidates:3 ctx in
  Alcotest.(check bool) "capped" true (List.length cands <= 3)

(* corruption *)

let test_corrupt_still_applies =
  (* corruption must never crash, and its targets must stay within the
     program; a rare Error (e.g. a retarget landing on a statement another
     action of the same edit just deleted) is acceptable and handled by the
     agents, but it must be the exception, not the rule *)
  QCheck.Test.make ~name:"corrupted edits apply or fail cleanly" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Rb_util.Rng.create seed in
      let buggy = Dataset.Case.buggy case in
      let diag, panicked = diag_of buggy [| 5L |] in
      let ctx = { Repairs.Rule.program = buggy; diag; panicked } in
      let cands = Repairs.Candidates.enumerate ~reference:(Dataset.Case.fixed case) ctx in
      let applied = ref 0 and failed = ref 0 in
      List.iter
        (fun c ->
          let corrupted = Repairs.Corrupt.corrupt rng buggy c.Repairs.Candidates.edit in
          match Minirust.Edit.apply corrupted buggy with
          | Ok _ -> incr applied
          | Error _ -> incr failed)
        cands;
      !applied > !failed)

let test_corrupt_changes_label () =
  let rng = Rb_util.Rng.create 4 in
  let buggy = Dataset.Case.buggy case in
  let edit =
    Option.get (Repairs.Candidates.reference_edit ~buggy ~fixed:(Dataset.Case.fixed case))
  in
  let corrupted = Repairs.Corrupt.corrupt rng buggy edit in
  Alcotest.(check bool) "marked as hallucinated" true
    (Helpers.contains corrupted.Minirust.Edit.label "hallucinated")

let suite =
  [ Alcotest.test_case "checked indexing offered" `Quick test_checked_indexing_rule;
    Alcotest.test_case "checked indexing fixes" `Quick test_checked_indexing_fixes;
    Alcotest.test_case "remove dealloc offered" `Quick test_remove_dealloc_rule;
    Alcotest.test_case "add dealloc fixes leak" `Quick test_add_dealloc_rule;
    Alcotest.test_case "re-derive fixes stack borrow" `Quick test_rederive_pointer_rule;
    Alcotest.test_case "atomicize fixes race" `Quick test_atomicize_rule;
    Alcotest.test_case "fn signature fixes offered" `Quick test_fn_sig_rule;
    Alcotest.test_case "panic guard offered" `Quick test_panic_guard_rule;
    Alcotest.test_case "rules gated by category" `Quick test_rules_only_fire_when_relevant;
    Alcotest.test_case "dealloc layout fix" `Quick test_fix_dealloc_layout_rule;
    Alcotest.test_case "widen alloc" `Quick test_widen_alloc_rule;
    Alcotest.test_case "reference candidate scores 1.0" `Quick test_reference_candidate_scores_top;
    Alcotest.test_case "imperfect candidates exist" `Quick test_failing_candidates_score_low;
    Alcotest.test_case "reference edit reproduces fix (all cases)" `Slow test_reference_edit_reproduces_fix;
    Alcotest.test_case "candidate cap" `Quick test_candidate_cap;
    QCheck_alcotest.to_alcotest test_corrupt_still_applies;
    Alcotest.test_case "corrupt changes label" `Quick test_corrupt_changes_label ]

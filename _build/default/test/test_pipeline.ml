(* End-to-end pipeline and baselines. *)

open Rustbrain

let quick_cfg =
  { Pipeline.default_config with Pipeline.max_solutions = 2; max_iters = 4 }

let test_repair_easy_case () =
  let session = Pipeline.create_session quick_cfg in
  let case = Option.get (Dataset.Corpus.find "al_double_free") in
  let report = Pipeline.repair session case in
  Alcotest.(check bool) "passes" true report.Report.passed;
  Alcotest.(check bool) "takes time" true (report.Report.seconds > 0.0);
  Alcotest.(check bool) "made llm calls" true (report.Report.llm_calls > 0)

let test_repair_deterministic () =
  let case = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  let run () =
    let session = Pipeline.create_session quick_cfg in
    let r = Pipeline.repair session case in
    (r.Report.passed, r.Report.semantic, r.Report.iterations, r.Report.seconds)
  in
  Alcotest.(check bool) "same config, same outcome" true (run () = run ())

let test_seed_changes_path () =
  let case = Option.get (Dataset.Corpus.find "va_uninit_read") in
  let run seed =
    let session = Pipeline.create_session { quick_cfg with Pipeline.seed } in
    let r = Pipeline.repair session case in
    (r.Report.iterations, r.Report.seconds)
  in
  let outcomes = List.map run [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "at least two distinct paths across seeds" true
    (List.length (List.sort_uniq compare outcomes) >= 2)

let test_disabled_agents_absent () =
  let cfg =
    { quick_cfg with
      Pipeline.enable_replace = false;
      enable_assert = false;
      enable_abstract = false }
  in
  let session = Pipeline.create_session cfg in
  let case = Option.get (Dataset.Corpus.find "dp_unchecked_index_oob") in
  let report = Pipeline.repair session case in
  List.iter
    (fun line ->
      if Helpers.contains line "[replace]" || Helpers.contains line "[assert]"
         || Helpers.contains line "abstract reasoning"
      then Alcotest.failf "disabled agent appears in trace: %s" line)
    report.Report.trace

let test_forced_solution () =
  let session = Pipeline.create_session quick_cfg in
  let case = Option.get (Dataset.Corpus.find "al_leak") in
  let solution =
    { Solution.sname = "only-modify"; origin = "forced";
      steps = [ Solution.Fix Ub_class.C_modify; Solution.Fix Ub_class.C_modify ] }
  in
  let report = Pipeline.repair_with_solution session case solution in
  Alcotest.(check (option string)) "winning solution name" (Some "only-modify")
    report.Report.winning_solution

let test_feedback_accelerates () =
  (* with feedback on, repairing a batch of same-category cases gets hits *)
  let cfg = { Pipeline.default_config with Pipeline.max_solutions = 3 } in
  let cases = Dataset.Corpus.by_category Miri.Diag.Stack_borrow in
  let reports = Pipeline.run_campaign cfg cases in
  let hits = List.filter (fun r -> r.Report.feedback_hit) reports in
  Alcotest.(check bool) "later cases recall feedback" true (List.length hits > 0);
  (* and the recalled repairs must not be slower on average *)
  match hits with
  | [] -> ()
  | _ ->
    let avg sel =
      let xs = List.filter sel reports in
      Statkit.Stats.mean (List.map (fun r -> r.Report.seconds) xs)
    in
    let hit_time = avg (fun r -> r.Report.feedback_hit) in
    let miss_time = avg (fun r -> not r.Report.feedback_hit) in
    Alcotest.(check bool) "feedback repairs are not slower" true (hit_time <= miss_time *. 1.25)

let test_campaign_rates_reasonable () =
  (* a small mixed campaign: RustBrain should fix a clear majority *)
  let cases =
    List.filteri (fun i _ -> i mod 6 = 0) Dataset.Corpus.all
  in
  let reports = Pipeline.run_campaign Pipeline.default_config cases in
  let pass = Statkit.Stats.proportion (fun r -> r.Report.passed) reports in
  Alcotest.(check bool) "most cases pass" true (pass >= 0.7)

(* baselines *)

let test_llm_only_runs () =
  let case = Option.get (Dataset.Corpus.find "al_double_free") in
  let session = Baselines.Llm_only.create_session Baselines.Llm_only.default_config in
  let report = Baselines.Llm_only.repair session case in
  Alcotest.(check bool) "time consumed" true (report.Report.seconds > 0.0);
  Alcotest.(check bool) "n sequence recorded" true (report.Report.n_sequence <> [])

let test_rust_assistant_runs () =
  let case = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  let session = Baselines.Rust_assistant.create_session Baselines.Rust_assistant.default_config in
  let report = Baselines.Rust_assistant.repair session case in
  Alcotest.(check (option string)) "labelled" (Some "fixed-pipeline") report.Report.winning_solution

let test_human_expert_model () =
  let cases = List.filteri (fun i _ -> i < 10) Dataset.Corpus.all in
  let reports = Baselines.Human_expert.run_campaign Baselines.Human_expert.default_config cases in
  List.iter
    (fun (r : Report.t) ->
      Alcotest.(check bool) "positive time" true (r.Report.seconds > 0.0);
      let median = Baselines.Human_expert.median_seconds r.Report.category in
      Alcotest.(check bool) "time in a plausible band" true
        (r.Report.seconds > median /. 10.0 && r.Report.seconds < median *. 20.0))
    reports

let test_human_expert_succeeds_mostly () =
  let reports =
    Baselines.Human_expert.run_campaign Baselines.Human_expert.default_config Dataset.Corpus.all
  in
  let rate = Statkit.Stats.proportion (fun r -> r.Report.semantic) reports in
  Alcotest.(check bool) "experts succeed on ~all cases" true (rate > 0.85)

let test_rustbrain_beats_fixed_pipeline () =
  (* the paper's central comparative claim, on a subset for speed *)
  let cases = List.filteri (fun i _ -> i mod 3 = 0) Dataset.Corpus.all in
  let rb = Pipeline.run_campaign Pipeline.default_config cases in
  let ra = Baselines.Rust_assistant.run_campaign Baselines.Rust_assistant.default_config cases in
  let rate reports = Statkit.Stats.proportion (fun r -> r.Report.passed) reports in
  Alcotest.(check bool) "RustBrain >= RustAssistant on pass rate" true (rate rb >= rate ra)

let suite =
  [ Alcotest.test_case "repairs an easy case" `Quick test_repair_easy_case;
    Alcotest.test_case "deterministic given config" `Quick test_repair_deterministic;
    Alcotest.test_case "seed changes path" `Quick test_seed_changes_path;
    Alcotest.test_case "disabled agents absent" `Quick test_disabled_agents_absent;
    Alcotest.test_case "forced solution" `Quick test_forced_solution;
    Alcotest.test_case "feedback accelerates" `Slow test_feedback_accelerates;
    Alcotest.test_case "campaign rates reasonable" `Slow test_campaign_rates_reasonable;
    Alcotest.test_case "llm-only baseline" `Quick test_llm_only_runs;
    Alcotest.test_case "rust-assistant baseline" `Quick test_rust_assistant_runs;
    Alcotest.test_case "human expert model" `Quick test_human_expert_model;
    Alcotest.test_case "human experts mostly succeed" `Slow test_human_expert_succeeds_mostly;
    Alcotest.test_case "rustbrain beats fixed pipeline" `Slow test_rustbrain_beats_fixed_pipeline ]

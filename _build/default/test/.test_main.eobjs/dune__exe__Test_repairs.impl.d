test/test_repairs.ml: Alcotest Dataset Helpers List Minirust Miri Option QCheck QCheck_alcotest Rb_util Repairs

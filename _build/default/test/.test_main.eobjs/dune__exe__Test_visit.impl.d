test/test_visit.ml: Alcotest Ast List Minirust Option Parser Visit

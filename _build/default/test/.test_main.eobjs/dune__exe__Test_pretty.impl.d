test/test_pretty.ml: Alcotest Ast Dataset List Minirust Parser Pretty QCheck QCheck_alcotest String

test/test_typecheck.ml: Alcotest Minirust Parser String Typecheck

test/test_rng.ml: Alcotest Int64 List QCheck QCheck_alcotest Rb_util

test/test_vclock.ml: Alcotest List Miri QCheck QCheck_alcotest

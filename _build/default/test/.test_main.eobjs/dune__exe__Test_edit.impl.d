test/test_edit.ml: Alcotest Ast Edit Helpers List Minirust Option Parser Pretty Visit

test/test_pipeline.ml: Alcotest Baselines Dataset Helpers List Miri Option Pipeline Report Rustbrain Solution Statkit Ub_class

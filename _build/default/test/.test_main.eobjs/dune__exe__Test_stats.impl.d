test/test_stats.ml: Alcotest Helpers QCheck QCheck_alcotest Statkit

test/test_lexer.ml: Alcotest List Minirust

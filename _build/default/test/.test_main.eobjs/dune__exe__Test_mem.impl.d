test/test_mem.ml: Alcotest Array Helpers Int64 Mem Minirust Miri QCheck QCheck_alcotest Value Vclock

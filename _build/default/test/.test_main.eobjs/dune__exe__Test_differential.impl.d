test/test_differential.ml: Helpers Int64 Minirust Miri Printf QCheck QCheck_alcotest String

test/test_knowledge.ml: Alcotest Array Helpers Knowledge List Minirust Miri Rb_util Repairs String

test/test_llm.ml: Alcotest Client Hashtbl List Llm_sim Miri Profile Prompt Rb_util String Tokenizer

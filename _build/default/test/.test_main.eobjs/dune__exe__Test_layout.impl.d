test/test_layout.ml: Alcotest Ast Layout List Minirust Parser

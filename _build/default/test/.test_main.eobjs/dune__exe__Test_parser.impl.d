test/test_parser.ml: Alcotest Ast List Minirust Option Parser Pretty

test/test_dataset.ml: Alcotest Dataset List Minirust Miri Option String

test/test_borrow.ml: Alcotest Borrow List Miri Result

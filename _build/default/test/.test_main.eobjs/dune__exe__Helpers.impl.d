test/helpers.ml: Alcotest Minirust Miri String

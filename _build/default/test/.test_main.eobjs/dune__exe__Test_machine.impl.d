test/test_machine.ml: Alcotest Helpers List Minirust Miri

(* The LLM simulator: determinism, prompt-quality effects, temperature
   effects, cost accounting. *)

open Llm_sim

let mk_client ?(model = Profile.Gpt4) ?(seed = 9) () =
  let clock = Rb_util.Simclock.create () in
  (Client.create ~seed ~clock (Profile.get model), clock)

let candidates =
  [ { Client.cand_id = 0; quality = 1.0; brief = "the right fix"; kind = "modify" };
    { Client.cand_id = 1; quality = 0.2; brief = "wrong site"; kind = "modify" };
    { Client.cand_id = 2; quality = 0.1; brief = "useless assert"; kind = "assert" };
    { Client.cand_id = 3; quality = 0.15; brief = "wrong constant"; kind = "replace" } ]

let rich_prompt =
  Prompt.make
    [ (Prompt.sec_code, "fn main() { }"); (Prompt.sec_error, "UB(alloc)");
      (Prompt.sec_features, "..."); (Prompt.sec_pruned_ast, "...");
      (Prompt.sec_kb_hints, "...") ]

let bare_prompt = Prompt.make [ (Prompt.sec_code, "fn main() { }") ]

let task ?(prompt = rich_prompt) ?(bias = []) () =
  { Client.category = Miri.Diag.Alloc; prompt; candidates; kind_bias = bias }

let sampling t = { Client.temperature = t }

let pick_rate ?(model = Profile.Gpt4) ~prompt ~temp n =
  let client, _ = mk_client ~model () in
  let hits = ref 0 in
  for _ = 1 to n do
    match Client.choose_repair client (sampling temp) (task ~prompt ()) with
    | Some c when c.Client.chosen.Client.cand_id = 0 -> incr hits
    | _ -> ()
  done;
  float_of_int !hits /. float_of_int n

let test_determinism () =
  let run () =
    let client, _ = mk_client () in
    List.init 20 (fun _ ->
        match Client.choose_repair client (sampling 0.5) (task ()) with
        | Some c -> (c.Client.chosen.Client.cand_id, c.Client.corrupted)
        | None -> (-1, false))
  in
  Alcotest.(check bool) "same seed, same stream" true (run () = run ())

let test_empty_task () =
  let client, _ = mk_client () in
  Alcotest.(check bool) "no candidates -> None" true
    (Client.choose_repair client (sampling 0.5)
       { Client.category = Miri.Diag.Alloc; prompt = bare_prompt; candidates = []; kind_bias = [] }
    = None)

let test_prompt_quality_helps () =
  let rich = pick_rate ~prompt:rich_prompt ~temp:0.5 400 in
  let bare = pick_rate ~prompt:bare_prompt ~temp:0.5 400 in
  if rich <= bare +. 0.05 then
    Alcotest.failf "rich prompt should beat bare prompt clearly: %.2f vs %.2f" rich bare

let test_skill_matters () =
  let strong = pick_rate ~model:Profile.Gpt_o1 ~prompt:rich_prompt ~temp:0.5 400 in
  let weak = pick_rate ~model:Profile.Gpt35 ~prompt:rich_prompt ~temp:0.5 400 in
  if strong <= weak then
    Alcotest.failf "O1 should out-pick GPT-3.5: %.2f vs %.2f" strong weak

let test_temperature_diversity () =
  (* at very low temperature the same prompt gives an (almost) constant
     answer; at high temperature the choices spread out *)
  let spread temp =
    let client, _ = mk_client () in
    let seen = Hashtbl.create 4 in
    for _ = 1 to 200 do
      match Client.choose_repair client (sampling temp) (task ()) with
      | Some c -> Hashtbl.replace seen c.Client.chosen.Client.cand_id ()
      | None -> ()
    done;
    Hashtbl.length seen
  in
  let cold = spread 0.05 in
  let hot = spread 1.5 in
  if hot < cold then Alcotest.failf "diversity should grow with temperature (%d vs %d)" cold hot

let test_hallucination_grows_with_temp () =
  let corrupt_rate temp =
    let client, _ = mk_client ~model:Profile.Gpt35 () in
    let hits = ref 0 in
    for _ = 1 to 500 do
      match Client.choose_repair client (sampling temp) (task ~prompt:bare_prompt ()) with
      | Some c when c.Client.corrupted -> incr hits
      | _ -> ()
    done;
    float_of_int !hits /. 500.0
  in
  let low = corrupt_rate 0.1 in
  let high = corrupt_rate 0.9 in
  if high <= low then Alcotest.failf "hallucination should grow with temperature (%.2f vs %.2f)" low high

let test_kind_bias () =
  (* a strong bias toward "assert" pulls picks toward the assert candidate *)
  let rate bias =
    let client, _ = mk_client () in
    let hits = ref 0 in
    for _ = 1 to 400 do
      match Client.choose_repair client (sampling 0.5) (task ~prompt:bare_prompt ~bias ()) with
      | Some c when c.Client.chosen.Client.kind = "assert" -> incr hits
      | _ -> ()
    done;
    float_of_int !hits /. 400.0
  in
  let unbiased = rate [] in
  let biased = rate [ ("assert", 0.5) ] in
  if biased <= unbiased then
    Alcotest.failf "bias should raise assert picks (%.2f vs %.2f)" unbiased biased

let test_cost_accounting () =
  let client, clock = mk_client () in
  let before = Rb_util.Simclock.now clock in
  ignore (Client.choose_repair client (sampling 0.5) (task ()));
  let after = Rb_util.Simclock.now clock in
  Alcotest.(check bool) "latency charged" true (after > before);
  let stats = Client.stats client in
  Alcotest.(check int) "one call" 1 stats.Client.calls;
  Alcotest.(check bool) "tokens counted" true (stats.Client.tokens_in > 0)

let test_bigger_prompt_costs_more () =
  let client, clock = mk_client () in
  let small = Prompt.make [ (Prompt.sec_code, "x") ] in
  let big = Prompt.make [ (Prompt.sec_code, String.concat " " (List.init 2000 string_of_int)) ] in
  Client.charge_prompt client small;
  let t1 = Rb_util.Simclock.now clock in
  Client.charge_prompt client big;
  let t2 = Rb_util.Simclock.now clock -. t1 in
  Alcotest.(check bool) "long prompt slower" true (t2 > t1)

let test_prompt_quality_monotone () =
  Alcotest.(check bool) "rich > bare quality" true
    (Prompt.quality rich_prompt > Prompt.quality bare_prompt);
  Alcotest.(check bool) "quality bounded" true (Prompt.quality rich_prompt <= 1.0)

let test_tokenizer () =
  Alcotest.(check bool) "longer text, more tokens" true
    (Tokenizer.count "a much longer sentence with many words here"
     > Tokenizer.count "short");
  Alcotest.(check bool) "non-empty has tokens" true (Tokenizer.count "x" >= 1)

let test_profile_names () =
  List.iter
    (fun m ->
      match Profile.of_name (Profile.name m) with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | None -> Alcotest.fail "profile name roundtrip")
    Profile.all

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "empty task" `Quick test_empty_task;
    Alcotest.test_case "prompt quality helps" `Quick test_prompt_quality_helps;
    Alcotest.test_case "skill matters" `Quick test_skill_matters;
    Alcotest.test_case "temperature raises diversity" `Quick test_temperature_diversity;
    Alcotest.test_case "hallucination grows with temp" `Quick test_hallucination_grows_with_temp;
    Alcotest.test_case "kind bias" `Quick test_kind_bias;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "bigger prompt costs more" `Quick test_bigger_prompt_costs_more;
    Alcotest.test_case "prompt quality monotone" `Quick test_prompt_quality_monotone;
    Alcotest.test_case "tokenizer" `Quick test_tokenizer;
    Alcotest.test_case "profile names" `Quick test_profile_names ]

(* Parser: construct coverage, precedence, place conversion, errors. *)

open Minirust

let expr src = Parser.parse_expr src

let show e = Pretty.expr e

let check_expr src expected () = Alcotest.(check string) src expected (show (expr src))

(* precedence is checked through the printer: the printer adds parentheses
   only where precedence demands them, so the rendered string reveals the
   parsed tree shape *)
let precedence_cases =
  [ ("1 + 2 * 3", "1i64 + 2i64 * 3i64");
    ("(1 + 2) * 3", "(1i64 + 2i64) * 3i64");
    ("1 - 2 - 3", "1i64 - 2i64 - 3i64");
    ("1 - (2 - 3)", "1i64 - (2i64 - 3i64)");
    ("a && b || c && d", "a && b || c && d");
    ("(a || b) && c", "(a || b) && c");
    ("1 + 2 < 3 * 4", "1i64 + 2i64 < 3i64 * 4i64");
    ("(1 < 2) == (3 < 4)", "(1i64 < 2i64) == (3i64 < 4i64)");
    ("1 & 2 | 3 ^ 4", "1i64 & 2i64 | 3i64 ^ 4i64");
    ("1 << 2 + 3", "1i64 << 2i64 + 3i64");
    ("-x + 1", "-x + 1i64");
    ("!(a && b)", "!(a && b)");
    ("x as i32 as i64", "x as i32 as i64");
    ("(x + 1) as usize", "(x + 1i64) as usize");
    ("*p + 1", "*p + 1i64");
    ("*p.offset(1)", "*p.offset(1i64)");
    ("&mut x", "&mut x");
    ("&raw const x", "&raw const x");
    ("a[i][j]", "a[i][j]");
    ("t.0", "t.0");
    ("a.get_unchecked(i)", "a.get_unchecked(i)");
    ("f(1, 2)", "f(1i64, 2i64)");
    ("table[0](v)", "table[0i64](v)");
    ("a.len() as i64", "a.len() as i64");
    ("[1, 2, 3]", "[1i64, 2i64, 3i64]");
    ("[0; 4]", "[0i64; 4]");
    ("(1, true)", "(1i64, true)");
    ("(1,)", "(1i64,)");
    ("transmute::<bool>(x)", "transmute::<bool>(x)");
    ("transmute::<*mut i64>(x)", "transmute::<*mut i64>(x)");
    ("input(0)", "input(0i64)");
    ("atomic_add(p, 1)", "atomic_add(p, 1i64)");
    ("-5", "-5i64") ]

let test_chained_comparison_rejected () =
  Alcotest.(check bool) "a < b < c rejected" true
    (try
       ignore (expr "a < b < c");
       false
     with Parser.Parse_error _ -> true)

let test_place_required () =
  Alcotest.(check bool) "&(1+2) rejected" true
    (try
       ignore (expr "&(1 + 2)");
       false
     with Parser.Parse_error _ -> true)

let test_fn_decl () =
  let p = Parser.parse "unsafe fn read(p: *const i64) -> i64 { return *p; }" in
  match p.Ast.funcs with
  | [ f ] ->
    Alcotest.(check string) "name" "read" f.Ast.fname;
    Alcotest.(check bool) "unsafe" true f.Ast.fn_unsafe;
    Alcotest.(check int) "params" 1 (List.length f.Ast.params);
    Alcotest.(check bool) "ret i64" true (Ast.equal_ty f.Ast.ret (Ast.T_int Ast.I64))
  | _ -> Alcotest.fail "one function expected"

let test_union_decl () =
  let p = Parser.parse "union U { a: i64, b: (i32, i32) } fn main() { }" in
  match p.Ast.unions with
  | [ u ] ->
    Alcotest.(check string) "name" "U" u.Ast.uname;
    Alcotest.(check int) "fields" 2 (List.length u.Ast.ufields)
  | _ -> Alcotest.fail "one union expected"

let test_static_decl () =
  let p = Parser.parse "static mut S: i64 = 7; fn main() { }" in
  match p.Ast.statics with
  | [ s ] ->
    Alcotest.(check bool) "mut" true s.Ast.smut;
    Alcotest.(check string) "name" "S" s.Ast.sname
  | _ -> Alcotest.fail "one static expected"

let test_spawn_join () =
  let p = Parser.parse "fn w() { } fn main() { let h = spawn w(); join(h); }" in
  let main = Option.get (Ast.lookup_fn p "main") in
  match main.Ast.body with
  | [ { Ast.s = Ast.S_spawn ("h", "w", []); _ }; { Ast.s = Ast.S_join _; _ } ] -> ()
  | _ -> Alcotest.fail "spawn/join statements expected"

let test_else_if_chain () =
  let b = Parser.parse_block "{ if a { } else if b { } else { } }" in
  match b with
  | [ { Ast.s = Ast.S_if (_, _, [ { Ast.s = Ast.S_if (_, _, _); _ } ]); _ } ] -> ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_loop_sugar () =
  let b = Parser.parse_block "{ loop { print(1); } }" in
  match b with
  | [ { Ast.s = Ast.S_while ({ Ast.e = Ast.E_bool true; _ }, _); _ } ] -> ()
  | _ -> Alcotest.fail "loop desugars to while true"

let test_builtin_statements () =
  let b =
    Parser.parse_block
      {|{
        print(1);
        assert(true, "msg");
        panic("boom");
        dealloc(p, 8, 8);
        atomic_store(p, 1);
      }|}
  in
  let kinds =
    List.map
      (fun st ->
        match st.Ast.s with
        | Ast.S_print _ -> "print"
        | Ast.S_assert _ -> "assert"
        | Ast.S_panic _ -> "panic"
        | Ast.S_dealloc _ -> "dealloc"
        | Ast.S_atomic_store _ -> "atomic_store"
        | _ -> "?")
      b
  in
  Alcotest.(check (list string)) "builtins"
    [ "print"; "assert"; "panic"; "dealloc"; "atomic_store" ]
    kinds

let test_assignment_forms () =
  let b = Parser.parse_block "{ x = 1; *p = 2; a[0] = 3; t.1 = 4; u.f = 5; }" in
  Alcotest.(check int) "five assignments" 5
    (List.length
       (List.filter (fun st -> match st.Ast.s with Ast.S_assign _ -> true | _ -> false) b))

let test_parse_error_line () =
  try
    ignore (Parser.parse "fn main() {\n  let x = ;\n}");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, line) -> Alcotest.(check int) "error line" 2 line

let test_type_syntax () =
  let p =
    Parser.parse
      "fn f(a: &mut [i64; 3], b: *const bool, c: (i64, handle), d: fn(i64) -> i64) { }"
  in
  let f = List.hd p.Ast.funcs in
  let tys = List.map snd f.Ast.params in
  Alcotest.(check (list string)) "types"
    [ "&mut [i64; 3]"; "*const bool"; "(i64, handle)"; "fn(i64) -> i64" ]
    (List.map Pretty.ty tys)

let suite =
  List.map
    (fun (src, expected) -> Alcotest.test_case src `Quick (check_expr src expected))
    precedence_cases
  @ [ Alcotest.test_case "chained comparison rejected" `Quick test_chained_comparison_rejected;
      Alcotest.test_case "ref needs place" `Quick test_place_required;
      Alcotest.test_case "fn decl" `Quick test_fn_decl;
      Alcotest.test_case "union decl" `Quick test_union_decl;
      Alcotest.test_case "static decl" `Quick test_static_decl;
      Alcotest.test_case "spawn/join" `Quick test_spawn_join;
      Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
      Alcotest.test_case "loop sugar" `Quick test_loop_sugar;
      Alcotest.test_case "builtin statements" `Quick test_builtin_statements;
      Alcotest.test_case "assignment forms" `Quick test_assignment_forms;
      Alcotest.test_case "parse error line" `Quick test_parse_error_line;
      Alcotest.test_case "type syntax" `Quick test_type_syntax ]

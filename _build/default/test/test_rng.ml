(* Deterministic RNG: reproducibility and distribution sanity. *)

let test_determinism () =
  let a = Rb_util.Rng.create 42 in
  let b = Rb_util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rb_util.Rng.int64 a) (Rb_util.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rb_util.Rng.create 1 in
  let b = Rb_util.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (not (Int64.equal (Rb_util.Rng.int64 a) (Rb_util.Rng.int64 b)))

let test_split_independent () =
  let parent = Rb_util.Rng.create 7 in
  let child = Rb_util.Rng.split parent in
  Alcotest.(check bool) "split diverges from parent" true
    (not (Int64.equal (Rb_util.Rng.int64 parent) (Rb_util.Rng.int64 child)))

let test_copy () =
  let a = Rb_util.Rng.create 5 in
  ignore (Rb_util.Rng.int64 a);
  let b = Rb_util.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rb_util.Rng.int64 a)
    (Rb_util.Rng.int64 b)

let test_int_bounds () =
  let rng = Rb_util.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rb_util.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_int_bad_bound () =
  let rng = Rb_util.Rng.create 3 in
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rb_util.Rng.int rng 0))

let test_float_range () =
  let rng = Rb_util.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rb_util.Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_bernoulli_extremes () =
  let rng = Rb_util.Rng.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rb_util.Rng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0 always false" false (Rb_util.Rng.bernoulli rng 0.0)
  done

let test_bernoulli_rate () =
  let rng = Rb_util.Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rb_util.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if rate < 0.28 || rate > 0.32 then Alcotest.failf "bernoulli(0.3) rate %f" rate

let test_gaussian_moments () =
  let rng = Rb_util.Rng.create 17 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rb_util.Rng.gaussian rng ~mean:5.0 ~std:2.0) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  if abs_float (mean -. 5.0) > 0.1 then Alcotest.failf "gaussian mean %f" mean

let test_pick_weighted () =
  let rng = Rb_util.Rng.create 23 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10_000 do
    match Rb_util.Rng.pick_weighted rng [ ("a", 3.0); ("b", 1.0) ] with
    | "a" -> incr a
    | _ -> incr b
  done;
  let ratio = float_of_int !a /. float_of_int !b in
  if ratio < 2.5 || ratio > 3.6 then Alcotest.failf "weighted ratio %f (expected ~3)" ratio

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Rb_util.Rng.create seed in
      let shuffled = Rb_util.Rng.shuffle rng xs in
      List.sort compare shuffled = List.sort compare xs)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "pick_weighted ratio" `Quick test_pick_weighted;
    QCheck_alcotest.to_alcotest test_shuffle_permutation ]

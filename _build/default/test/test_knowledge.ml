(* Knowledge base: Algorithm-1 pruning, vectorization, retrieval. *)

let program_with_noise =
  Minirust.Parser.parse
    {|
fn irrelevant_math(a: i64) -> i64 {
    let mut t = a * 2;
    let mut u = t + 3;
    return u;
}

fn main() {
    let mut noise1 = 1;
    let mut noise2 = noise1 + 2;
    print(noise2);
    let mut buf = 0 as *mut i64;
    unsafe {
        buf = alloc(8, 8) as *mut i64;
        *buf = 5;
        print(*buf);
        dealloc(buf as *mut i8, 8, 8);
    }
}
|}

let test_prune_keeps_unsafe () =
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  let rendered = Knowledge.Prune.render sketch in
  Alcotest.(check bool) "keeps the alloc" true (Helpers.contains rendered "alloc(8i64, 8i64)");
  Alcotest.(check bool) "keeps the dealloc" true (Helpers.contains rendered "dealloc");
  Alcotest.(check bool) "drops pure-math noise" false (Helpers.contains rendered "noise2 + ")

let test_prune_drops_counted () =
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  Alcotest.(check bool) "something was dropped" true (sketch.Knowledge.Prune.dropped > 0)

let test_prune_keeps_hinted () =
  (* the statement a diagnostic points at is kept even if not unsafe *)
  let target = ref (-1) in
  Minirust.Visit.iter_stmts
    (fun st ->
      match st.Minirust.Ast.s with
      | Minirust.Ast.S_print _ when !target < 0 -> target := st.Minirust.Ast.sid
      | _ -> ())
    program_with_noise;
  let diag = { (Miri.Diag.make Miri.Diag.Validity "x") with Miri.Diag.stmt_hint = !target } in
  let sketch = Knowledge.Prune.prune program_with_noise [ diag ] in
  Alcotest.(check bool) "hinted stmt kept" true
    (List.exists (fun st -> st.Minirust.Ast.sid = !target) sketch.Knowledge.Prune.kept_stmts)

let test_prune_keeps_dependencies () =
  (* `buf` is used by retained unsafe statements, so its definition stays *)
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  let rendered = Knowledge.Prune.render sketch in
  Alcotest.(check bool) "dependency definition kept" true
    (Helpers.contains rendered "let mut buf")

(* vectors *)

let test_vector_normalized () =
  let v = Knowledge.Featvec.of_program program_with_noise [] in
  let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
  if abs_float (norm -. 1.0) > 1e-6 && norm <> 0.0 then Alcotest.failf "norm %f" norm

let test_cosine_self () =
  let v = Knowledge.Featvec.of_program program_with_noise [] in
  Alcotest.(check (float 1e-6)) "self similarity" 1.0 (Knowledge.Featvec.cosine v v)

let test_cosine_category_dominates () =
  let d1 = Miri.Diag.make Miri.Diag.Alloc "a" in
  let d2 = Miri.Diag.make Miri.Diag.Data_race "b" in
  let same_cat_a = Knowledge.Featvec.of_program program_with_noise [ d1 ] in
  let same_cat_b =
    Knowledge.Featvec.of_program
      (Minirust.Parser.parse "fn main() { unsafe { let mut p = alloc(8, 8); dealloc(p, 8, 8); } }")
      [ d1 ]
  in
  let other_cat = Knowledge.Featvec.of_program program_with_noise [ d2 ] in
  let same = Knowledge.Featvec.cosine same_cat_a same_cat_b in
  let diff = Knowledge.Featvec.cosine same_cat_a other_cat in
  if same <= diff then
    Alcotest.failf "same-category similarity (%f) should beat cross-category (%f)" same diff

(* store *)

let test_store_topk () =
  let store = Knowledge.Store.create () in
  let unit_vec i = Array.init 4 (fun j -> if i = j then 1.0 else 0.0) in
  List.iter (fun i -> Knowledge.Store.add store (unit_vec i) i) [ 0; 1; 2; 3 ];
  let query = [| 0.9; 0.1; 0.0; 0.0 |] in
  match Knowledge.Store.query store query ~k:2 with
  | [ (s1, 0); (s2, 1) ] ->
    Alcotest.(check bool) "ordered by similarity" true (s1 > s2)
  | other -> Alcotest.failf "unexpected top-2: %d entries" (List.length other)

let test_store_threshold () =
  let store = Knowledge.Store.create () in
  Knowledge.Store.add store [| 1.0; 0.0 |] "x";
  Alcotest.(check int) "above" 1
    (List.length (Knowledge.Store.query_above store [| 1.0; 0.0 |] ~threshold:0.9));
  Alcotest.(check int) "below" 0
    (List.length (Knowledge.Store.query_above store [| 0.0; 1.0 |] ~threshold:0.9))

(* kb *)

let test_kb_query_and_cost () =
  let clock = Rb_util.Simclock.create () in
  let kb = Knowledge.Kb.create ~clock () in
  Knowledge.Kb.seed_default kb;
  Alcotest.(check int) "seeded with 12 entries" 12 (Knowledge.Kb.size kb);
  let vec = Knowledge.Featvec.of_program program_with_noise [ Miri.Diag.make Miri.Diag.Alloc "x" ] in
  let before = Rb_util.Simclock.now clock in
  let hits = Knowledge.Kb.query kb vec in
  Alcotest.(check bool) "query costs time" true (Rb_util.Simclock.now clock > before);
  (match hits with
  | (_, e) :: _ -> Alcotest.(check bool) "top hit is alloc advice" true (e.Knowledge.Kb.category = Miri.Diag.Alloc)
  | [] -> Alcotest.fail "expected at least one hit");
  let bias = Knowledge.Kb.kind_bias hits in
  Alcotest.(check bool) "bias non-empty" true (bias <> []);
  Alcotest.(check bool) "hints render" true (String.length (Knowledge.Kb.hints_text hits) > 0)

let test_kb_learning_grows () =
  let clock = Rb_util.Simclock.create () in
  let kb = Knowledge.Kb.create ~clock () in
  let vec = Knowledge.Featvec.of_program program_with_noise [] in
  Knowledge.Kb.learn kb vec
    { Knowledge.Kb.category = Miri.Diag.Alloc; advice = "learned"; recommended = Repairs.Rule.Modify };
  Alcotest.(check int) "size grew" 1 (Knowledge.Kb.size kb)

let suite =
  [ Alcotest.test_case "prune keeps unsafe" `Quick test_prune_keeps_unsafe;
    Alcotest.test_case "prune drops noise" `Quick test_prune_drops_counted;
    Alcotest.test_case "prune keeps hinted" `Quick test_prune_keeps_hinted;
    Alcotest.test_case "prune keeps dependencies" `Quick test_prune_keeps_dependencies;
    Alcotest.test_case "vector normalized" `Quick test_vector_normalized;
    Alcotest.test_case "cosine self" `Quick test_cosine_self;
    Alcotest.test_case "category dominates similarity" `Quick test_cosine_category_dominates;
    Alcotest.test_case "store top-k" `Quick test_store_topk;
    Alcotest.test_case "store threshold" `Quick test_store_threshold;
    Alcotest.test_case "kb query and cost" `Quick test_kb_query_and_cost;
    Alcotest.test_case "kb learning grows" `Quick test_kb_learning_grows ]

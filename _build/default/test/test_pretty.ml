(* Pretty-printer: parse/print fixpoint on the whole corpus and on randomly
   generated expressions. *)

open Minirust

(* Random well-formed expression generator. It deliberately avoids the two
   known non-canonical shapes (negative literals built as E_unop(Neg, lit)
   and empty tuples), which the printers canonicalize by design. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "count"; "ptr" ] >|= Ast.var_e in
  let lit =
    oneof
      [ (int_range 0 1000 >|= fun n -> Ast.int_e n);
        (int_range 0 100 >|= fun n -> Ast.int_e ~w:Ast.I32 n);
        (bool >|= Ast.bool_e) ]
  in
  let binop =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Bit_and; Ast.Bit_or; Ast.Bit_xor;
        Ast.Shl; Ast.Shr ]
  in
  let cmp = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  fix
    (fun self depth ->
      if depth <= 0 then oneof [ var; lit ]
      else
        frequency
          [ (2, var);
            (2, lit);
            (3, map3 (fun op a b -> Ast.binop_e op a b) binop (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Ast.binop_e Ast.And (Ast.binop_e Ast.Lt a b) (Ast.binop_e Ast.Ge a b))
                 (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun op a -> Ast.binop_e op a (Ast.int_e 1)) cmp (self (depth - 1)));
            (1, self (depth - 1) >|= fun a -> Ast.unop_e Ast.Not a);
            (1, self (depth - 1) >|= fun a -> Ast.cast_e a (Ast.T_int Ast.Usize));
            (1, self (depth - 1) >|= fun a -> Ast.mk (Ast.E_tuple [ a; Ast.int_e 2 ]));
            (1, self (depth - 1) >|= fun a -> Ast.mk (Ast.E_array [ a; a ]));
            (1, self (depth - 1) >|= fun a -> Ast.call_e "f" [ a ]);
            (1, self (depth - 1) >|= fun a -> Ast.mk (Ast.E_len a));
            (1, var >|= fun v -> Ast.deref_e v) ])
    4

let arbitrary_expr = QCheck.make ~print:Pretty.expr gen_expr

let roundtrip_expr =
  QCheck.Test.make ~name:"expr print/parse roundtrip" ~count:500 arbitrary_expr
    (fun e ->
      let printed = Pretty.expr e in
      let reparsed = Parser.parse_expr printed in
      Ast.equal_expr e reparsed)

let print_is_fixpoint =
  QCheck.Test.make ~name:"printing is a fixpoint" ~count:500 arbitrary_expr
    (fun e ->
      let once = Pretty.expr e in
      let twice = Pretty.expr (Parser.parse_expr once) in
      String.equal once twice)

(* every corpus program (buggy and fixed) must roundtrip *)
let corpus_roundtrip (c : Dataset.Case.t) which src () =
  let p1 = Parser.parse src in
  let s1 = Pretty.program p1 in
  let p2 = Parser.parse s1 in
  if not (Ast.equal_program p1 p2) then
    Alcotest.failf "%s/%s: reparse differs" c.Dataset.Case.name which;
  Alcotest.(check string)
    (c.Dataset.Case.name ^ "/" ^ which ^ " fixpoint")
    s1
    (Pretty.program p2)

let corpus_cases =
  List.concat_map
    (fun (c : Dataset.Case.t) ->
      [ Alcotest.test_case (c.Dataset.Case.name ^ " (buggy)") `Quick
          (corpus_roundtrip c "buggy" c.Dataset.Case.buggy_src);
        Alcotest.test_case (c.Dataset.Case.name ^ " (fixed)") `Quick
          (corpus_roundtrip c "fixed" c.Dataset.Case.fixed_src) ])
    Dataset.Corpus.all

let test_string_escaping () =
  let st = Ast.assert_s (Ast.bool_e true) "tricky \"quoted\" \\ and \n newline" in
  let printed = Pretty.stmt st in
  match Parser.parse_block ("{ " ^ printed ^ " }") with
  | [ { Ast.s = Ast.S_assert (_, msg); _ } ] ->
    Alcotest.(check string) "message survives" "tricky \"quoted\" \\ and \n newline" msg
  | _ -> Alcotest.fail "assert did not reparse"

let suite =
  [ QCheck_alcotest.to_alcotest roundtrip_expr;
    QCheck_alcotest.to_alcotest print_is_fixpoint;
    Alcotest.test_case "string escaping" `Quick test_string_escaping ]
  @ corpus_cases

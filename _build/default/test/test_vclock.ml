(* Vector clocks: happens-before algebra. *)

let gen_clock : Miri.Vclock.t QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 0 5) (pair (int_range 0 4) (int_range 1 20)) >|= fun entries ->
  List.fold_left (fun c (tid, e) -> Miri.Vclock.set c tid e) Miri.Vclock.empty entries

let arbitrary_clock = QCheck.make ~print:Miri.Vclock.to_string gen_clock

let prop_leq_reflexive =
  QCheck.Test.make ~name:"leq reflexive" ~count:300 arbitrary_clock (fun c ->
      Miri.Vclock.leq c c)

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound" ~count:300
    (QCheck.pair arbitrary_clock arbitrary_clock)
    (fun (a, b) ->
      let m = Miri.Vclock.merge a b in
      Miri.Vclock.leq a m && Miri.Vclock.leq b m)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300
    (QCheck.pair arbitrary_clock arbitrary_clock)
    (fun (a, b) ->
      let m1 = Miri.Vclock.merge a b in
      let m2 = Miri.Vclock.merge b a in
      Miri.Vclock.leq m1 m2 && Miri.Vclock.leq m2 m1)

let prop_tick_advances =
  QCheck.Test.make ~name:"tick strictly advances own component" ~count:300
    (QCheck.pair arbitrary_clock (QCheck.int_range 0 4))
    (fun (c, tid) ->
      let c' = Miri.Vclock.tick c tid in
      Miri.Vclock.get c' tid = Miri.Vclock.get c tid + 1 && Miri.Vclock.leq c c')

let test_empty_bottom () =
  let c = Miri.Vclock.set Miri.Vclock.empty 3 5 in
  Alcotest.(check bool) "empty leq anything" true (Miri.Vclock.leq Miri.Vclock.empty c);
  Alcotest.(check bool) "non-empty not leq empty" false (Miri.Vclock.leq c Miri.Vclock.empty)

let test_incomparable () =
  let a = Miri.Vclock.set Miri.Vclock.empty 0 2 in
  let b = Miri.Vclock.set Miri.Vclock.empty 1 2 in
  Alcotest.(check bool) "a not leq b" false (Miri.Vclock.leq a b);
  Alcotest.(check bool) "b not leq a" false (Miri.Vclock.leq b a)

let test_get_default () =
  Alcotest.(check int) "missing tid is 0" 0 (Miri.Vclock.get Miri.Vclock.empty 9)

let suite =
  [ QCheck_alcotest.to_alcotest prop_leq_reflexive;
    QCheck_alcotest.to_alcotest prop_merge_upper_bound;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_tick_advances;
    Alcotest.test_case "empty is bottom" `Quick test_empty_bottom;
    Alcotest.test_case "incomparable clocks" `Quick test_incomparable;
    Alcotest.test_case "get default" `Quick test_get_default ]

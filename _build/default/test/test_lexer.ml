(* Lexer: token streams, literals, comments, error reporting. *)

let toks src = List.map fst (Minirust.Lexer.tokenize src)

let count_tokens src = List.length (toks src) - 1 (* minus EOF *)

let test_empty () = Alcotest.(check int) "only EOF" 0 (count_tokens "")

let test_keywords () =
  Alcotest.(check int) "12 keywords" 12
    (count_tokens "fn let mut if else while unsafe static union return true false")

let test_keyword_vs_ident () =
  match toks "fnord letter" with
  | [ Minirust.Token.IDENT "fnord"; Minirust.Token.IDENT "letter"; Minirust.Token.EOF ] -> ()
  | _ -> Alcotest.fail "keyword prefixes must lex as identifiers"

let test_int_plain () =
  match toks "42" with
  | [ Minirust.Token.INT (42L, None); Minirust.Token.EOF ] -> ()
  | _ -> Alcotest.fail "plain integer"

let test_int_suffixes () =
  match toks "1i8 2i16 3i32 4i64 5usize" with
  | [ Minirust.Token.INT (1L, Some Minirust.Ast.I8);
      Minirust.Token.INT (2L, Some Minirust.Ast.I16);
      Minirust.Token.INT (3L, Some Minirust.Ast.I32);
      Minirust.Token.INT (4L, Some Minirust.Ast.I64);
      Minirust.Token.INT (5L, Some Minirust.Ast.Usize);
      Minirust.Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "suffixed integers"

let test_bad_suffix () =
  Alcotest.(check bool) "bad suffix raises" true
    (try
       ignore (toks "5i7");
       false
     with Minirust.Lexer.Lex_error _ -> true)

let test_two_char_operators () =
  Alcotest.(check int) "ops" 10 (count_tokens ":: -> && || << >> == != <= >=")

let test_shift_vs_gt () =
  match toks "a >> b > c" with
  | [ Minirust.Token.IDENT "a"; Minirust.Token.SHR; Minirust.Token.IDENT "b";
      Minirust.Token.GT; Minirust.Token.IDENT "c"; Minirust.Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "shift/gt disambiguation"

let test_comment_skipped () =
  Alcotest.(check int) "comment skipped" 2 (count_tokens "a // comment until eol\nb")

let test_string_literal () =
  match toks {|"hello world"|} with
  | [ Minirust.Token.STRING "hello world"; Minirust.Token.EOF ] -> ()
  | _ -> Alcotest.fail "string literal"

let test_string_escapes () =
  match toks {|"a\n\t\"\\"|} with
  | [ Minirust.Token.STRING "a\n\t\"\\"; Minirust.Token.EOF ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_unterminated_string () =
  Alcotest.(check bool) "unterminated raises" true
    (try
       ignore (toks "\"oops");
       false
     with Minirust.Lexer.Lex_error _ -> true)

let test_line_numbers () =
  let with_lines = Minirust.Lexer.tokenize "a\nb\n\nc" in
  let lines = List.filter_map (function Minirust.Token.IDENT _, l -> Some l | _ -> None) with_lines in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4 ] lines

let test_unknown_char () =
  Alcotest.(check bool) "unknown char raises" true
    (try
       ignore (toks "a @ b");
       false
     with Minirust.Lexer.Lex_error (_, 1) -> true)

let suite =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "keyword vs ident" `Quick test_keyword_vs_ident;
    Alcotest.test_case "plain int" `Quick test_int_plain;
    Alcotest.test_case "int suffixes" `Quick test_int_suffixes;
    Alcotest.test_case "bad suffix" `Quick test_bad_suffix;
    Alcotest.test_case "two-char operators" `Quick test_two_char_operators;
    Alcotest.test_case "shift vs gt" `Quick test_shift_vs_gt;
    Alcotest.test_case "comments" `Quick test_comment_skipped;
    Alcotest.test_case "string literal" `Quick test_string_literal;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "unknown char" `Quick test_unknown_char ]

(* Command-line interface to the reproduction.

   - `check FILE`    run the Miri substrate on a MiniRust source file
   - `fix FILE`      repair a MiniRust source file with the RustBrain pipeline
   - `corpus`        list the benchmark corpus
   - `corpus-show`   print one case's buggy and reference sources
   - `corpus-fix`    run the full pipeline on one corpus case
   - `campaign`      run any backend (pipeline or baseline) over the corpus,
                     sharded across domains via the unified runner API
   - `serve`         run the event-driven repair server on a Unix socket
   - `serve-load`    drive a running server with synthetic multi-tenant load
   - `trace-summary` render a per-phase table from a --trace JSONL file

   `fix`, `corpus-fix`, `campaign` and `serve` share one campaign-options
   vocabulary (seeds, domains, fault injection, retries, deadline, journal,
   trace, metrics, out) built from a single Cmdliner term over
   [Exec.Campaign_opts] — the same record the serve wire protocol carries.

   MiniRust sources conventionally use the .mrs extension; any path works. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_inputs csv =
  if String.trim csv = "" then [||]
  else
    String.split_on_char ',' csv
    |> List.map (fun s -> Int64.of_string (String.trim s))
    |> Array.of_list

let load path =
  try Ok (Minirust.Parser.parse (read_file path)) with
  | Minirust.Parser.Parse_error (msg, line) ->
    Error (Printf.sprintf "%s:%d: parse error: %s" path line msg)
  | Minirust.Lexer.Lex_error (msg, line) ->
    Error (Printf.sprintf "%s:%d: lexical error: %s" path line msg)
  | Sys_error msg -> Error msg

let report_outcome (r : Miri.Machine.run_result) =
  List.iter (fun line -> Printf.printf "  output: %s\n" line) r.Miri.Machine.output;
  (match r.Miri.Machine.outcome with
  | Miri.Machine.Finished -> print_endline "outcome: finished cleanly"
  | Miri.Machine.Panicked msg -> Printf.printf "outcome: panicked: %s\n" msg
  | Miri.Machine.Ub d -> Printf.printf "outcome: %s\n" (Miri.Diag.to_string d)
  | Miri.Machine.Step_limit -> print_endline "outcome: step limit exhausted"
  | Miri.Machine.Resource_limit m -> Printf.printf "outcome: resource limit: %s\n" m);
  List.iter (fun d -> Printf.printf "  diag: %s\n" (Miri.Diag.to_string d)) r.Miri.Machine.diags;
  Printf.printf "steps: %d, errors: %d\n" r.Miri.Machine.steps r.Miri.Machine.error_count

(* -- the shared campaign-options term ------------------------------------ *)

let seeds_arg =
  Arg.(value & opt string "1" & info [ "seed"; "seeds" ] ~docv:"N,N,..."
         ~doc:"Campaign seed, or a comma-separated list for one campaign per \
               seed (single-repair commands require exactly one).")

let domains_arg =
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker-domain pool size. 0 = the recommended count capped at \
               8; an explicit value is honored as given, above 8 included.")

let fault_rate_arg =
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"R"
         ~doc:"Inject simulated LLM API faults (timeouts, rate limits, transient \
               5xx, truncated/malformed replies) at total rate $(docv) in [0,1], \
               scheduled deterministically from the seed. 0 disables injection.")

let retries_arg =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per faulted LLM call (with clock-charged exponential \
               backoff) before degrading to the fallback profile.")

let deadline_arg =
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Per-repair watchdog budget in simulated milliseconds; past it the \
               repair stops starting new work. 0 = unlimited.")

let journal_arg =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
         ~doc:"Write-ahead journal directory: every completed repair is made \
               durable as it lands, so a killed run can be resumed with \
               $(b,--resume) and produce byte-identical reports.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Replay the journal in $(b,--journal) $(i,DIR), re-running only \
               what is missing. Refused (exit 2) if the journal belongs to a \
               different campaign or build.")

let fresh_arg =
  Arg.(value & flag & info [ "fresh" ]
         ~doc:"Discard any journal in $(b,--journal) $(i,DIR) and start over.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a structured JSONL trace (pipeline phase spans, LLM \
               calls/faults/retries, interpreter runs, scheduler and journal \
               events) to $(docv), written atomically on completion. Campaign \
               traces carry simulated timestamps only, so a seeded run's trace \
               is byte-identical across invocations. Render it with \
               $(b,trace-summary).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the metrics registry (counters, gauges, histograms; \
               merged across worker domains) to stderr after the run.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Also write the reports to $(docv) (JSON lines, or CSV under \
               $(b,--csv) where supported), via a crash-safe atomic replace: \
               readers see either the complete old file or the complete new \
               one.")

let kb_dir_arg =
  Arg.(value & opt (some string) None & info [ "kb-dir" ] ~docv:"DIR"
         ~doc:"Back the knowledge base with the persistent segment store in \
               $(docv) (created and seeded on first use). The campaign \
               retrieves from a snapshot frozen at open — deterministic \
               under concurrent appends — and appends what it learns for \
               future campaigns. Without this flag the KB is in-memory and \
               seed-only, as before.")

let kb_readonly_arg =
  Arg.(value & flag & info [ "kb-readonly" ]
         ~doc:"Open $(b,--kb-dir) without the single-writer lock: retrieval \
               only, learned entries are dropped. Needed when many processes \
               share one store.")

let parse_seeds spec =
  let parts =
    String.split_on_char ',' spec
    |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some (int_of_string_opt s))
  in
  if List.mem None parts then
    Error
      (Printf.sprintf "--seeds %S: expected a comma-separated list of integers"
         spec)
  else
    match List.filter_map Fun.id parts with
    | [] ->
      Error
        (Printf.sprintf
           "--seeds %S: expected a non-empty comma-separated list of integers"
           spec)
    | seeds -> Ok seeds

let opts_term =
  let build seeds domains fault_rate retries deadline_ms journal resume fresh
      trace metrics out kb_dir kb_readonly =
    match parse_seeds seeds with
    | Error _ as e -> e
    | Ok seeds ->
      Exec.Campaign_opts.validate
        { Exec.Campaign_opts.seeds;
          domains = (if domains <= 0 then None else Some domains);
          fault_rate; retries; deadline_ms; journal; resume; fresh; trace;
          metrics; out; kb_dir; kb_readonly }
  in
  Term.(const build $ seeds_arg $ domains_arg $ fault_rate_arg $ retries_arg
        $ deadline_arg $ journal_arg $ resume_arg $ fresh_arg $ trace_out_arg
        $ metrics_arg $ out_arg $ kb_dir_arg $ kb_readonly_arg)

(* Single-repair commands take the shared vocabulary but can honor only a
   slice of it; anything they would silently ignore is refused instead. *)
let single_seed ~cmd (o : Exec.Campaign_opts.t) =
  match o.Exec.Campaign_opts.seeds with
  | [ s ] -> Ok s
  | _ ->
    Error
      (Printf.sprintf "%s runs one repair; use campaign for seed sweeps" cmd)

let print_metrics = function
  | None -> ()
  | Some reg -> prerr_string (Obs.Metrics.render reg)

(* Run the jobs, through Checkpoint when a journal is in play. Returns the
   results, the scheduler's supervision counters, and the checkpoint
   outcome when journaled. *)
let run_with_journal ?domains ?trace ?metrics ~journal jobs =
  match journal with
  | None ->
    let results, sup = Exec.Scheduler.run_jobs ?domains ?trace ?metrics jobs in
    Ok (results, sup, None)
  | Some (dir, mode) -> (
    match Exec.Checkpoint.run ?domains ?trace ?metrics ~dir ~mode jobs with
    | o -> Ok (o.Exec.Checkpoint.results, o.Exec.Checkpoint.supervision, Some o)
    | exception Exec.Checkpoint.Fingerprint_mismatch { expected; found } ->
      Error
        (Printf.sprintf
           "journal %s belongs to a different campaign or build\n\
           \  (manifest fingerprint %s, this run %s)\n\
            pass --fresh to discard it" dir found expected)
    | exception Failure msg -> Error msg)

(* -- check -------------------------------------------------------------- *)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let inputs =
    Arg.(value & opt string "" & info [ "i"; "inputs" ] ~docv:"N,N,..."
           ~doc:"Comma-separated probe inputs returned by input(i).")
  in
  let collect =
    Arg.(value & opt int 0 & info [ "collect" ] ~docv:"N"
           ~doc:"Collect up to $(docv) diagnostics instead of stopping at the first.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Thread-scheduler seed.") in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Record and print allocation/retag/invalidation events.")
  in
  let tree_walk =
    Arg.(value & flag & info [ "tree-walk" ]
           ~doc:"Interpret with the original tree-walking evaluator instead of \
                 the bytecode VM (differential-testing escape hatch; results \
                 are byte-identical).")
  in
  let run file inputs collect seed trace tree_walk =
    match load file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok program -> (
      let mode =
        if collect > 0 then Miri.Machine.Collect collect else Miri.Machine.Stop_first
      in
      let config =
        { Miri.Machine.default_config with
          Miri.Machine.mode; seed; max_steps = 1_000_000;
          inputs = parse_inputs inputs; trace;
          engine =
            (if tree_walk then Miri.Machine.Tree_walk else Miri.Machine.Bytecode) }
      in
      match Miri.Machine.analyze ~config program with
      | Miri.Machine.Compile_error msg ->
        Printf.printf "compile error:\n%s\n" msg;
        1
      | Miri.Machine.Ran r ->
        List.iter (fun e -> Printf.printf "  event: %s\n" e) r.Miri.Machine.events;
        report_outcome r;
        if Miri.Machine.is_clean r then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Detect undefined behaviour in a MiniRust file (Miri substrate).")
    Term.(const run $ file $ inputs $ collect $ seed $ trace $ tree_walk)

(* -- fix ----------------------------------------------------------------- *)

(* Repairing an arbitrary file has no developer reference, so the oracle
   scores candidates purely by residual error count; semantic acceptability
   cannot be judged. *)
let fix_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let inputs =
    Arg.(value & opt string "" & info [ "i"; "inputs" ] ~docv:"N,N,..."
           ~doc:"Probe inputs used during verification.")
  in
  let model =
    Arg.(value & opt string "GPT-4" & info [ "model" ] ~doc:"Simulated model profile.")
  in
  let temperature = Arg.(value & opt float 0.5 & info [ "temperature" ]) in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the repair report as JSON.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Print per-phase wall time (parse, typecheck, lower, interpret, \
                 repair, re-verify) to stderr.")
  in
  let profile_phases =
    [ "parse"; "typecheck"; "lower"; "interpret"; "repair"; "re-verify" ]
  in
  let run file inputs model temperature json profile opts =
    match
      match opts with
      | Error _ as e -> e
      | Ok (o : Exec.Campaign_opts.t) ->
        if o.Exec.Campaign_opts.journal <> None || o.resume || o.fresh then
          Error "fix does not journal; --journal/--resume/--fresh apply to \
                 corpus-fix and campaign"
        else if o.domains <> None then
          Error "fix repairs one file on one domain; --domains applies to \
                 campaign and serve"
        else if o.out <> None then
          Error "fix prints its report; --out applies to corpus-fix, campaign \
                 and serve-load"
        else
          Result.map (fun seed -> (o, seed)) (single_seed ~cmd:"fix" o)
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok ((opts : Exec.Campaign_opts.t), seed) ->
    let fault_rate = opts.Exec.Campaign_opts.fault_rate in
    let retries = opts.Exec.Campaign_opts.retries in
    (* --profile is spans under the hood: the same records a --trace file
       gets also land in a wall-enabled memory sink, and the familiar
       stderr lines are rendered from it after the run — one source of
       truth for phase timings, and --json stdout stays parseable *)
    let file_sink =
      Option.map (fun p -> Obs.Trace.file ~wall:true p)
        opts.Exec.Campaign_opts.trace
    in
    let prof = if profile then Some (Obs.Trace.memory ~wall:true ()) else None in
    let sink =
      match (file_sink, prof) with
      | None, None -> None
      | Some f, None -> Some f
      | None, Some (m, _) -> Some m
      | Some f, Some (m, _) -> Some (Obs.Trace.tee f m)
    in
    let registry =
      if opts.Exec.Campaign_opts.metrics then Some (Obs.Metrics.create ())
      else None
    in
    let body () =
    match Obs.Trace.in_span "parse" (fun () -> load file) with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok program -> (
      match Llm_sim.Profile.of_name model with
      | None ->
        Printf.eprintf "unknown model %S (known: %s)\n" model
          (String.concat ", " (List.map Llm_sim.Profile.name Llm_sim.Profile.all));
        1
      | Some model ->
        let probe = parse_inputs inputs in
        let clock = Rb_util.Simclock.create () in
        Obs.Trace.set_ambient_time_source (fun () -> Rb_util.Simclock.now clock);
        let faults =
          if fault_rate > 0.0 then
            Some (Llm_sim.Faults.create ~seed:((seed * 7919) + 13)
                    (Llm_sim.Faults.uniform fault_rate))
          else None
        in
        let client =
          Llm_sim.Client.create ~seed ?faults ~clock (Llm_sim.Profile.get model)
        in
        let fallback =
          Llm_sim.Client.create ~seed:((seed * 13) + 5) ~clock
            (Llm_sim.Profile.get Llm_sim.Profile.Gpt35)
        in
        let resilient =
          Llm_sim.Resilient.create ~seed:((seed * 17) + 29)
            ~config:{ Llm_sim.Resilient.default_config with
                      Llm_sim.Resilient.max_retries = retries;
                      deadline = Exec.Campaign_opts.deadline opts }
            ~fallback client
        in
        let kb = Knowledge.Kb.create ~clock () in
        Knowledge.Kb.seed_default kb;
        (* the pipeline re-typechecks every candidate itself, so a failure
           here must not change control flow: ill-typed falls through to the
           same Panic_bug category the old analyze path produced *)
        let tc =
          Obs.Trace.in_span "typecheck" (fun () -> Minirust.Typecheck.check program)
        in
        let scorer p =
          match Minirust.Typecheck.check p with
          | Error _ -> 0.02
          | Ok _ ->
            let errors = Dataset.Semantic.error_count p probe in
            if errors = 0 then 1.0 else max 0.1 (1.0 /. (1.0 +. float_of_int errors))
        in
        let env =
          { Rustbrain.Env.clock; client;
            sampling = { Llm_sim.Client.temperature };
            kb = Some kb; scorer; reference = None; probes = [ probe ];
            ref_panics = [ false ];
            rng = Rb_util.Rng.create (seed * 31 + 7);
            resilient = Some resilient; runner = None }
        in
        Llm_sim.Resilient.start_repair resilient;
        let solution =
          { Rustbrain.Solution.sname = "cli"; origin = "cli";
            steps =
              [ Rustbrain.Solution.Abstract;
                Rustbrain.Solution.Fix Rustbrain.Ub_class.C_replace;
                Rustbrain.Solution.Fix Rustbrain.Ub_class.C_modify;
                Rustbrain.Solution.Fix Rustbrain.Ub_class.C_assert ] }
        in
        let machine_config =
          { Miri.Machine.default_config with
            Miri.Machine.mode = Miri.Machine.Stop_first; seed = 42;
            max_steps = 200_000; inputs = probe; trace = false }
        in
        (* lowering is its own profile phase so the interpret span times
           only VM execution, not compilation to bytecode *)
        let category =
          match tc with
          | Error _ -> Miri.Diag.Panic_bug
          | Ok info -> (
            let code =
              Obs.Trace.in_span "lower" (fun () -> Miri.Machine.lower program info)
            in
            let r =
              Obs.Trace.in_span "interpret" (fun () ->
                  Miri.Machine.run_lowered ~config:machine_config program info code)
            in
            match Miri.Machine.first_ub r with
            | Some d -> d.Miri.Diag.kind
            | None -> Miri.Diag.Panic_bug)
        in
        let exec =
          Obs.Trace.in_span "repair" (fun () ->
              Rustbrain.Slow_think.execute env ~program ~solution
                ~rollback:Rustbrain.Slow_think.Adaptive ~max_iters:10)
        in
        (* the pipeline already verified the winner internally; the re-verify
           phase times one standalone confirmation run on the final program *)
        if profile then
          ignore
            (Obs.Trace.in_span "re-verify" (fun () ->
                 Miri.Machine.analyze ~config:machine_config
                   exec.Rustbrain.Slow_think.final)
              : Miri.Machine.analysis);
        if json then begin
          let stats = Llm_sim.Client.stats client in
          let rstats = Llm_sim.Resilient.stats resilient in
          let report =
            { Rustbrain.Report.case_name = file;
              category;
              passed = exec.Rustbrain.Slow_think.passed;
              semantic = false;  (* no developer reference to judge against *)
              seconds = exec.Rustbrain.Slow_think.seconds;
              llm_calls = stats.Llm_sim.Client.calls;
              tokens = stats.Llm_sim.Client.tokens_in + stats.Llm_sim.Client.tokens_out;
              iterations = exec.Rustbrain.Slow_think.iterations;
              solutions_tried = 1;
              rollbacks = exec.Rustbrain.Slow_think.rollbacks;
              n_sequence = exec.Rustbrain.Slow_think.n_sequence;
              winning_solution = Some "cli";
              feedback_hit = false;
              retries = rstats.Llm_sim.Resilient.retries;
              faults = rstats.Llm_sim.Resilient.faults;
              breaker_trips = rstats.Llm_sim.Resilient.breaker_trips;
              degraded = Llm_sim.Resilient.degraded resilient;
              gave_up =
                Llm_sim.Resilient.gave_up resilient
                && not exec.Rustbrain.Slow_think.passed;
              trace = exec.Rustbrain.Slow_think.trace }
          in
          print_endline (Rustbrain.Report.to_json report);
          if exec.Rustbrain.Slow_think.passed then 0 else 1
        end
        else begin
          List.iter (fun line -> Printf.printf "  %s\n" line) exec.Rustbrain.Slow_think.trace;
          Printf.printf "errors: %s\n"
            (String.concat " -> " (List.map string_of_int exec.Rustbrain.Slow_think.n_sequence));
          Printf.printf "simulated repair time: %.1fs\n" exec.Rustbrain.Slow_think.seconds;
          if exec.Rustbrain.Slow_think.passed then begin
            print_endline "repaired program:";
            print_string (Minirust.Pretty.program exec.Rustbrain.Slow_think.final);
            0
          end
          else begin
            Printf.printf "could not reach a clean program (%d residual error(s))\n"
              exec.Rustbrain.Slow_think.errors;
            1
          end
        end)
    in
    let with_metrics () =
      match registry with
      | None -> body ()
      | Some reg -> Obs.Metrics.with_registry reg body
    in
    let code =
      match sink with
      | None -> with_metrics ()
      | Some tr -> Obs.Trace.with_ambient tr with_metrics
    in
    (match prof with
    | None -> ()
    | Some (_, recorded) ->
      (* repair-phase candidate runs emit their own nested "lower" spans;
         only the first record per phase — the explicit top-level span,
         which completes before any nested repeat — is the phase timing *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (r : Obs.Trace.record) ->
          if
            r.Obs.Trace.kind = Obs.Trace.Span
            && List.mem r.Obs.Trace.name profile_phases
            && not (Hashtbl.mem seen r.Obs.Trace.name)
          then begin
            Hashtbl.add seen r.Obs.Trace.name ();
            Printf.eprintf "profile: %-9s %8.2f ms\n%!" r.Obs.Trace.name
              r.Obs.Trace.wall_ms
          end)
        (recorded ()));
    Option.iter Obs.Trace.close file_sink;
    print_metrics registry;
    code
  in
  Cmd.v
    (Cmd.info "fix" ~doc:"Repair a MiniRust file with the RustBrain pipeline.")
    Term.(const run $ file $ inputs $ model $ temperature $ json $ profile
          $ opts_term)

(* -- corpus --------------------------------------------------------------- *)

let corpus_cmd =
  let run () =
    Printf.printf "%d cases across %d categories\n\n" Dataset.Corpus.size
      (List.length Dataset.Corpus.categories);
    List.iter
      (fun (kind, count) ->
        Printf.printf "%-18s %d case(s)\n" (Miri.Diag.kind_name kind) count)
      (Dataset.Corpus.stats ());
    print_newline ();
    List.iter
      (fun (c : Dataset.Case.t) ->
        Printf.printf "%-28s %-18s %s\n" c.Dataset.Case.name
          (Miri.Diag.kind_name c.Dataset.Case.category)
          c.Dataset.Case.description)
      Dataset.Corpus.all;
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List the benchmark corpus.") Term.(const run $ const ())

let corpus_show_cmd =
  let case_name = Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE") in
  let run name =
    match Dataset.Corpus.find name with
    | None ->
      Printf.eprintf "unknown case %S\n" name;
      1
    | Some c ->
      Printf.printf "// %s (%s)\n// %s\n\n// --- buggy ---\n%s\n// --- reference fix ---\n%s"
        c.Dataset.Case.name
        (Miri.Diag.kind_name c.Dataset.Case.category)
        c.Dataset.Case.description c.Dataset.Case.buggy_src c.Dataset.Case.fixed_src;
      0
  in
  Cmd.v (Cmd.info "corpus-show" ~doc:"Print a corpus case.") Term.(const run $ case_name)

let corpus_fix_cmd =
  let case_name = Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the repair report as JSON.")
  in
  let run name json opts =
    match
      match opts with
      | Error _ as e -> e
      | Ok o ->
        Result.map (fun seed -> (o, seed)) (single_seed ~cmd:"corpus-fix" o)
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok ((opts : Exec.Campaign_opts.t), seed) -> (
    match Dataset.Corpus.find name with
    | None ->
      Printf.eprintf "unknown case %S\n" name;
      1
    | Some case -> (
      let runner =
        match Exec.Campaign_opts.runner opts ~backend:"rustbrain" with
        | Ok r -> Exec.Runner.with_seed r seed
        | Error msg -> failwith msg (* rustbrain always resolves *)
      in
      let trace_sink = Option.map Obs.Trace.file opts.Exec.Campaign_opts.trace in
      let registry =
        if opts.Exec.Campaign_opts.metrics then Some (Obs.Metrics.create ())
        else None
      in
      match
        match Exec.Campaign_opts.journal_mode opts with
        | Error _ as e -> e
        | Ok journal ->
          run_with_journal
            ~domains:(Option.value ~default:1 opts.Exec.Campaign_opts.domains)
            ?trace:trace_sink ?metrics:registry ~journal
            [ { Exec.Scheduler.label = Printf.sprintf "corpus-fix/seed%d" seed;
                runner;
                cases = [ case ] } ]
      with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok (results, _, _) -> (
        Option.iter Obs.Trace.close trace_sink;
        print_metrics registry;
        match results with
        | [ { Exec.Scheduler.reports = [ r ]; failure = None; _ } ] ->
          (match opts.Exec.Campaign_opts.out with
          | Some path ->
            Rb_util.Fsfile.write_channel path (fun oc ->
                Rustbrain.Report.emit_jsonl oc (List.to_seq [ r ]))
          | None -> ());
          if json then print_endline (Rustbrain.Report.to_json r)
          else begin
            List.iter (fun line -> Printf.printf "  %s\n" line) r.Rustbrain.Report.trace;
            print_endline (Rustbrain.Report.summary_line r)
          end;
          if r.Rustbrain.Report.passed then 0 else 1
        | [ { Exec.Scheduler.failure = Some f; _ } ] ->
          Printf.eprintf "corpus-fix crashed: %s\n%s%!" f.Exec.Scheduler.exn
            f.Exec.Scheduler.backtrace;
          2
        | _ ->
          prerr_endline "corpus-fix: unexpected scheduler result";
          2)))
  in
  Cmd.v
    (Cmd.info "corpus-fix" ~doc:"Run the full pipeline on one corpus case.")
    Term.(const run $ case_name $ json $ opts_term)

(* -- campaign ------------------------------------------------------------- *)

let campaign_cmd =
  let backend =
    Arg.(value & opt string "rustbrain" & info [ "backend" ] ~docv:"NAME"
           ~doc:(Printf.sprintf "Backend to run: %s."
                   (String.concat ", " Exec.Backends.all_names)))
  in
  let cases =
    Arg.(value & opt string "" & info [ "cases" ] ~docv:"NAME,NAME,..."
           ~doc:"Restrict to these corpus cases (default: whole corpus).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per report.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV rows with a header line.")
  in
  let run backend cases json csv opts =
    match opts with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (opts : Exec.Campaign_opts.t) -> (
    match Exec.Campaign_opts.runner opts ~backend with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok runner -> (
      let case_filter =
        String.split_on_char ',' cases
        |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some s)
      in
      match
        match case_filter with
        | [] -> Ok Dataset.Corpus.all
        | names ->
          let missing =
            List.filter (fun n -> Dataset.Corpus.find n = None) names
          in
          if missing <> [] then Error missing
          else
            Ok (List.filter_map Dataset.Corpus.find names)
      with
      | Error missing ->
        Printf.eprintf "unknown case(s): %s\n" (String.concat ", " missing);
        1
      | Ok selected -> (
        let trace_sink =
          Option.map Obs.Trace.file opts.Exec.Campaign_opts.trace
        in
        let registry =
          if opts.Exec.Campaign_opts.metrics then Some (Obs.Metrics.create ())
          else None
        in
        match
          match Exec.Campaign_opts.journal_mode opts with
          | Error _ as e -> e
          | Ok journal ->
            run_with_journal ?domains:opts.Exec.Campaign_opts.domains
              ?trace:trace_sink ?metrics:registry ~journal
              (Exec.Scheduler.seeded_jobs runner
                 ~seeds:opts.Exec.Campaign_opts.seeds selected)
        with
        | Error msg ->
          prerr_endline msg;
          2
        | Ok (results, sup, ckpt) ->
          Option.iter Obs.Trace.close trace_sink;
          let crashed = Exec.Scheduler.failures results in
          List.iter
            (fun ((job : Exec.Scheduler.job), (f : Exec.Scheduler.failure)) ->
              Printf.eprintf "campaign job %s crashed: %s\n%s%!" job.Exec.Scheduler.label
                f.Exec.Scheduler.exn f.Exec.Scheduler.backtrace)
            crashed;
          let reports =
            List.concat_map (fun r -> r.Exec.Scheduler.reports) results
          in
          let stats =
            List.fold_left
              (fun acc r -> Exec.Runner.add_stats acc r.Exec.Scheduler.stats)
              Exec.Runner.no_stats results
          in
          (match opts.Exec.Campaign_opts.out with
          | Some path ->
            Rb_util.Fsfile.write_channel path (fun oc ->
                if csv then Rustbrain.Report.emit_csv oc (List.to_seq reports)
                else Rustbrain.Report.emit_jsonl oc (List.to_seq reports))
          | None -> ());
          (match ckpt with
          | Some o ->
            (* stdout may be machine-read under --json/--csv *)
            Printf.eprintf "journal: %d replayed, %d recomputed%s\n%!"
              o.Exec.Checkpoint.replayed o.Exec.Checkpoint.recomputed
              (if o.Exec.Checkpoint.dropped > 0 then
                 Printf.sprintf ", %d corrupt record(s) dropped"
                   o.Exec.Checkpoint.dropped
               else "")
          | None -> ());
          if json then
            List.iter (fun r -> print_endline (Rustbrain.Report.to_json r)) reports
          else if csv then begin
            print_endline Rustbrain.Report.csv_header;
            List.iter (fun r -> print_endline (Rustbrain.Report.csv_row r)) reports
          end
          else begin
            List.iter (fun r -> print_endline (Rustbrain.Report.summary_line r)) reports;
            let passed = List.length (List.filter (fun r -> r.Rustbrain.Report.passed) reports) in
            Printf.printf
              "passed %d/%d; verification cache hit-rate %.1f%%; supervisor \
               restarts %d, orphaned jobs %d\n"
              passed (List.length reports)
              (100.0 *. Exec.Runner.hit_rate stats)
              sup.Exec.Scheduler.restarts sup.Exec.Scheduler.orphaned_jobs
          end;
          print_metrics registry;
          if crashed <> [] then 2
          else if List.for_all (fun r -> r.Rustbrain.Report.passed) reports then 0
          else 1)))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a backend campaign over the corpus, sharded across domains.")
    Term.(const run $ backend $ cases $ json $ csv $ opts_term)

(* -- serve ---------------------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "rustbrain.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path.")

let parse_weights spec =
  if String.trim spec = "" then Ok []
  else
    String.split_on_char ',' spec
    |> List.map (fun part ->
         match String.index_opt part '=' with
         | Some i ->
           let tenant = String.trim (String.sub part 0 i) in
           let w =
             String.trim (String.sub part (i + 1) (String.length part - i - 1))
           in
           (match (tenant, int_of_string_opt w) with
           | "", _ | _, None ->
             Error (Printf.sprintf "--weights: bad entry %S" part)
           | t, Some w -> Ok (t, w))
         | None -> Error (Printf.sprintf "--weights: bad entry %S" part))
    |> List.fold_left
         (fun acc r ->
           match (acc, r) with
           | Error _, _ -> acc
           | _, Error e -> Error e
           | Ok ws, Ok w -> Ok (w :: ws))
         (Ok [])
    |> Result.map List.rev

let serve_cmd =
  let state_dir =
    Arg.(value & opt string "serve-state" & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Durable server state: the fsynced accepted-jobs queue, one \
                 write-ahead journal per job, and stitched result files. A \
                 server restarted on the same directory re-enqueues every \
                 accepted-but-unfinished job and replays journaled repairs.")
  in
  let runners =
    Arg.(value & opt int 2 & info [ "runners" ] ~docv:"N"
           ~doc:"Concurrent job slots; each job is internally domain-parallel \
                 per its own opts (or $(b,--domains) as the default).")
  in
  let max_queue =
    Arg.(value & opt int 128 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Bounded inbound queue; past it submissions get an explicit \
                 BUSY with a retry-after hint instead of buffering.")
  in
  let quota =
    Arg.(value & opt int 64 & info [ "quota" ] ~docv:"N"
           ~doc:"Max queued jobs per tenant.")
  in
  let weights =
    Arg.(value & opt string "" & info [ "weights" ] ~docv:"TENANT=W,..."
           ~doc:"Weighted-fair-queue weights; unlisted tenants weigh 1.")
  in
  let max_crashes =
    Arg.(value & opt int 3 & info [ "max-crashes" ] ~docv:"N"
           ~doc:"Crash budget per job: a job whose attempts crash a runner \
                 (or the whole server — counted durably across restarts) \
                 this many times is quarantined as poison instead of being \
                 retried forever.")
  in
  let stall_timeout =
    Arg.(value & opt float 300.0 & info [ "stall-timeout" ] ~docv:"SECONDS"
           ~doc:"Watchdog: abort a running job that completes no case for \
                 this long (cooperative at the next case boundary; a runner \
                 hung inside a case is abandoned and the job requeued at \
                 its journal frontier).")
  in
  let job_timeout =
    Arg.(value & opt float 3600.0 & info [ "job-timeout" ] ~docv:"SECONDS"
           ~doc:"Watchdog: wall-clock ceiling for a single job attempt.")
  in
  let evict_idle =
    Arg.(value & opt float 30.0 & info [ "evict-idle" ] ~docv:"SECONDS"
           ~doc:"Evict a connection with pending output whose socket has \
                 accepted nothing for this long (slowloris reader). The \
                 durable results file makes eviction safe: re-fetch with \
                 RESULTS.")
  in
  let in_process =
    Arg.(value & flag & info [ "in-process" ]
           ~doc:"Run jobs on in-process runner domains instead of worker \
                 processes. Cooperative aborts only: a runner hung inside a \
                 case cannot be killed, only abandoned as a zombie. The \
                 default worker pool gives the watchdog true preemption \
                 (SIGTERM, then SIGKILL) and per-job OS resource caps.")
  in
  let worker_mem_mb =
    Arg.(value & opt int 0 & info [ "worker-mem-mb" ] ~docv:"MIB"
           ~doc:"Address-space cap (RLIMIT_AS) per worker process, in MiB; \
                 a worker that exceeds it dies to the limit and the attempt \
                 is crash-accounted. 0 (default) sets no cap. Ignored with \
                 $(b,--in-process).")
  in
  let kb_write =
    Arg.(value & flag & info [ "kb-write" ]
           ~doc:"Open tenant knowledge stores writable, so jobs append what \
                 they learn. Off by default: concurrent jobs of one tenant \
                 would contend for the store's single-writer lock, so enable \
                 this only where tenant jobs are serialized.")
  in
  let run socket state_dir runners max_queue quota weights max_crashes
      stall_timeout job_timeout evict_idle in_process worker_mem_mb kb_write
      opts =
    match
      match opts with
      | Error _ as e -> e
      | Ok (o : Exec.Campaign_opts.t) ->
        if o.Exec.Campaign_opts.journal <> None || o.resume || o.fresh then
          Error "the server journals every job itself under --state-dir; \
                 --journal/--resume/--fresh do not apply"
        else if o.out <> None then
          Error "the server stores results under --state-dir; --out does not \
                 apply"
        else if o.kb_readonly then
          Error "the server opens tenant knowledge stores read-only already; \
                 pass --kb-write to make them writable"
        else if kb_write && o.kb_dir = None then
          Error "--kb-write requires --kb-dir DIR"
        else Result.map (fun ws -> (o, ws)) (parse_weights weights)
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok ((opts : Exec.Campaign_opts.t), weights) ->
      if runners < 1 || max_queue < 1 || quota < 1 then begin
        prerr_endline "--runners/--max-queue/--quota must be at least 1";
        1
      end
      else if max_crashes < 1 then begin
        prerr_endline "--max-crashes must be at least 1";
        1
      end
      else if stall_timeout <= 0.0 || job_timeout <= 0.0 || evict_idle <= 0.0
      then begin
        prerr_endline
          "--stall-timeout/--job-timeout/--evict-idle must be positive";
        1
      end
      else if worker_mem_mb < 0 then begin
        prerr_endline "--worker-mem-mb must be non-negative";
        1
      end
      else begin
        let trace_sink =
          Option.map (fun p -> Obs.Trace.file ~wall:true p)
            opts.Exec.Campaign_opts.trace
        in
        let registry =
          if opts.Exec.Campaign_opts.metrics then Some (Obs.Metrics.create ())
          else None
        in
        let default_opts =
          (* kb fields are server-level policy (per-tenant slicing), not
             per-job defaults; like journal/out they must not reach jobs
             through the opts record *)
          { opts with
            Exec.Campaign_opts.journal = None; resume = false; fresh = false;
            trace = None; metrics = false; out = None;
            kb_dir = None; kb_readonly = false }
        in
        let cfg =
          { Serve.Server.default_config with
            Serve.Server.socket; state_dir; runners;
            domains_per_job = opts.Exec.Campaign_opts.domains;
            max_queue; quota; weights; default_opts;
            max_crashes; stall_timeout_s = stall_timeout;
            job_timeout_s = job_timeout; evict_idle_s = evict_idle;
            worker_argv =
              (if in_process then None
               else Some [| Sys.executable_name; "__rb_worker" |]);
            worker_mem_mb;
            rng_seed = Exec.Campaign_opts.seed opts;
            kb_dir = opts.Exec.Campaign_opts.kb_dir;
            kb_readonly = not kb_write;
            trace = trace_sink; metrics = registry }
        in
        let s =
          Serve.Server.run
            ~on_ready:(fun p -> Printf.printf "serve: listening on %s\n%!" p)
            cfg
        in
        Option.iter Obs.Trace.close trace_sink;
        print_metrics registry;
        Printf.printf
          "serve: accepted %d, completed %d, failed %d, cancelled %d, busy %d, \
           rejected %d, resumed %d, left queued %d, quarantined %d, requeued \
           %d, evicted %d\n"
          s.Serve.Server.accepted s.Serve.Server.completed s.Serve.Server.failed
          s.Serve.Server.cancelled s.Serve.Server.busy s.Serve.Server.rejected
          s.Serve.Server.resumed s.Serve.Server.left_queued
          s.Serve.Server.quarantined s.Serve.Server.requeued
          s.Serve.Server.evicted;
        if s.Serve.Server.failed > 0 then 1 else 0
      end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the event-driven repair server: durable admission, per-tenant \
             weighted fair queuing, per-case report streaming, kill-safe \
             resume, process-isolated worker supervision (cooperative cancel, \
             then SIGTERM, then SIGKILL) and poison-job quarantine. Stops on \
             a SHUTDOWN frame or after a DRAIN wind-down.")
    Term.(const run $ socket_arg $ state_dir $ runners $ max_queue $ quota
          $ weights $ max_crashes $ stall_timeout $ job_timeout $ evict_idle
          $ in_process $ worker_mem_mb $ kb_write $ opts_term)

(* -- serve-fsck ----------------------------------------------------------- *)

let serve_fsck_cmd =
  let state_dir =
    Arg.(value & opt string "serve-state" & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"The server state directory to scan.")
  in
  let dry_run =
    Arg.(value & flag & info [ "dry-run" ]
           ~doc:"Classify and report only; heal nothing, move nothing.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run state_dir dry_run json =
    if not (Sys.file_exists state_dir) then begin
      Printf.eprintf "serve-fsck: no state directory at %s\n" state_dir;
      1
    end
    else begin
      let report = Serve.Store.fsck ~heal:(not dry_run) ~dir:state_dir () in
      if json then
        print_endline
          (Rb_util.Json.to_string (Serve.Store.fsck_report_to_json report))
      else begin
        Printf.printf
          "serve-fsck%s: %d records scanned — %d intact, %d legacy, %d \
           healed, %d torn, %d corrupt\n"
          (if dry_run then " (dry run)" else "")
          report.Serve.Store.scanned report.Serve.Store.intact
          report.Serve.Store.legacy
          (Serve.Store.fsck_count `Healed report)
          (Serve.Store.fsck_count `Torn report)
          (Serve.Store.fsck_count `Corrupt report);
        List.iter
          (fun (i : Serve.Store.fsck_issue) ->
            Printf.printf "  [%s] %s: %s — %s\n"
              (Serve.Store.severity_label i.Serve.Store.severity)
              i.Serve.Store.rel_path i.Serve.Store.detail i.Serve.Store.action)
          report.Serve.Store.issues
      end;
      (* torn and corrupt records mean data needed attention; healed and
         legacy are routine *)
      if
        Serve.Store.fsck_count `Corrupt report > 0
        || Serve.Store.fsck_count `Torn report > 0
      then 1
      else 0
    end
  in
  Cmd.v
    (Cmd.info "serve-fsck"
       ~doc:"Scan (and heal) a repair-server state directory: classify every \
             durable record as intact / legacy / healed / torn / corrupt, \
             drop torn tails, remove stale temp files, and set unreadable \
             records aside under quarantined/corrupt/ with their bytes \
             preserved. The server runs the same scrub at startup; this \
             command is the offline/ops entry point. Exits 1 if anything \
             was torn or corrupt.")
    Term.(const run $ state_dir $ dry_run $ json)

(* -- kb-* : persistent knowledge-base operations -------------------------- *)

let kb_store_dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
         ~doc:"The knowledge-base store directory (the one campaigns use \
               with $(b,--kb-dir)).")

let kb_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let kb_report_json (r : Knowledge.Segment.load_report) extra =
  let num i = Rb_util.Json.Num (float_of_int i) in
  Rb_util.Json.Obj
    ([ ("records", num (List.length r.Knowledge.Segment.records));
       ("segments", num r.Knowledge.Segment.segments);
       ("tail_records", num r.Knowledge.Segment.tail_records);
       ("healed_tail_bytes", num r.Knowledge.Segment.healed_tail_bytes);
       ("corrupt_segments", num r.Knowledge.Segment.corrupt_segments);
       ("mismatched", num r.Knowledge.Segment.mismatched);
       ("duplicates", num r.Knowledge.Segment.duplicates) ]
    @ extra)

let kb_category_histogram (r : Knowledge.Segment.load_report) =
  List.fold_left
    (fun acc (rec_ : Knowledge.Segment.record) ->
      let key =
        match Knowledge.Kb.entry_of_json rec_.Knowledge.Segment.payload with
        | Some e -> Miri.Diag.kind_name e.Knowledge.Kb.category
        | None -> "(undecodable)"
      in
      let n = Option.value (List.assoc_opt key acc) ~default:0 in
      (key, n + 1) :: List.remove_assoc key acc)
    [] r.Knowledge.Segment.records
  |> List.sort compare

let kb_init_cmd =
  let run dir =
    let clock = Rb_util.Simclock.create () in
    match Knowledge.Kb.open_dir ~dir ~clock () with
    | Error e ->
      Printf.eprintf "kb-init: %s\n" e;
      1
    | Ok kb ->
      Printf.printf "kb-init: store at %s ready with %d entries\n" dir
        (Knowledge.Kb.size kb);
      0
  in
  Cmd.v
    (Cmd.info "kb-init"
       ~doc:"Create (and seed with the built-in per-category expertise) a \
             persistent knowledge-base store, or verify an existing one \
             opens writable. Idempotent.")
    Term.(const run $ kb_store_dir_arg)

let kb_stats_cmd =
  let run dir json =
    match Knowledge.Segment.load dir with
    | Error e ->
      Printf.eprintf "kb-stats: %s\n" e;
      1
    | Ok report ->
      let hist = kb_category_histogram report in
      if json then
        print_endline
          (Rb_util.Json.to_string
             (kb_report_json report
                [ ( "categories",
                    Rb_util.Json.Obj
                      (List.map
                         (fun (k, n) ->
                           (k, Rb_util.Json.Num (float_of_int n)))
                         hist) ) ]))
      else begin
        Printf.printf
          "kb-stats: %d entries in %d segments (+%d in the tail log)\n"
          (List.length report.Knowledge.Segment.records)
          report.Knowledge.Segment.segments
          report.Knowledge.Segment.tail_records;
        List.iter (fun (k, n) -> Printf.printf "  %-20s %d\n" k n) hist;
        if report.Knowledge.Segment.mismatched > 0
           || report.Knowledge.Segment.corrupt_segments > 0 then
          Printf.printf
            "  (%d mismatched record(s), %d corrupt segment(s) not counted; \
             run kb-fsck)\n"
            report.Knowledge.Segment.mismatched
            report.Knowledge.Segment.corrupt_segments
      end;
      0
  in
  Cmd.v
    (Cmd.info "kb-stats"
       ~doc:"Summarize a persistent knowledge-base store: live entries, \
             segment/tail layout, per-category histogram, and anything a \
             load had to skip.")
    Term.(const run $ kb_store_dir_arg $ kb_json_arg)

let kb_fsck_cmd =
  let dry_run =
    Arg.(value & flag & info [ "dry-run" ]
           ~doc:"Classify and report only; heal nothing, move nothing.")
  in
  let run dir dry_run json =
    match Knowledge.Segment.fsck ~fix:(not dry_run) dir with
    | Error e ->
      Printf.eprintf "kb-fsck: %s\n" e;
      1
    | Ok report ->
      if json then
        print_endline (Rb_util.Json.to_string (kb_report_json report []))
      else
        Printf.printf
          "kb-fsck%s: %d live records (%d segments, %d tail) — %d torn tail \
           bytes %s, %d corrupt segment(s) %s, %d mismatched record(s) %s, \
           %d duplicate id(s) dropped\n"
          (if dry_run then " (dry run)" else "")
          (List.length report.Knowledge.Segment.records)
          report.Knowledge.Segment.segments
          report.Knowledge.Segment.tail_records
          report.Knowledge.Segment.healed_tail_bytes
          (if dry_run then "found" else "healed")
          report.Knowledge.Segment.corrupt_segments
          (if dry_run then "found" else "quarantined")
          report.Knowledge.Segment.mismatched
          (if dry_run then "found" else "quarantined")
          report.Knowledge.Segment.duplicates;
      (* a torn tail heals routinely (it is the expected kill -9 residue);
         corrupt or mismatched data means the store needed attention *)
      if
        report.Knowledge.Segment.corrupt_segments > 0
        || report.Knowledge.Segment.mismatched > 0
      then 1
      else 0
  in
  Cmd.v
    (Cmd.info "kb-fsck"
       ~doc:"Scan (and heal) a persistent knowledge-base store: verify every \
             segment checksum and tail frame, truncate torn tail bytes, set \
             corrupt segments aside under quarantined/ with their bytes \
             preserved, and quarantine dimension-mismatched records. The \
             same scrub runs at every writable open; this is the offline \
             entry point. Exits 1 if anything was corrupt or mismatched.")
    Term.(const run $ kb_store_dir_arg $ dry_run $ kb_json_arg)

(* -- serve-ctl ------------------------------------------------------------ *)

let serve_ctl_cmd =
  let action =
    let parse = function
      | "health" -> Ok `Health
      | "drain" -> Ok `Drain
      | "status" -> Ok `Status
      | "shutdown" -> Ok `Shutdown
      | s -> Error (`Msg (Printf.sprintf "unknown action %S" s))
    in
    let print ppf a =
      Format.pp_print_string ppf
        (match a with
        | `Health -> "health"
        | `Drain -> "drain"
        | `Status -> "status"
        | `Shutdown -> "shutdown")
    in
    Arg.(required
         & pos 0 (some (conv (parse, print))) None
         & info [] ~docv:"ACTION" ~doc:"health | drain | status | shutdown")
  in
  let run socket action =
    match Serve.Client.connect socket with
    | Error e ->
      Printf.eprintf "serve-ctl: %s\n" e;
      1
    | Ok c ->
      let req : Serve.Wire.request =
        match action with
        | `Health -> Serve.Wire.Health
        | `Drain -> Serve.Wire.Drain
        | `Status -> Serve.Wire.Status None
        | `Shutdown -> Serve.Wire.Shutdown
      in
      let code =
        match Serve.Client.request c req with
        | Error e ->
          Printf.eprintf "serve-ctl: %s\n" e;
          1
        | Ok (Serve.Wire.Health { queued; running; quarantined; draining; slots;
                                  pool; worker_pids; respawns; kills_term;
                                  kills_kill; zombies })
          ->
          Printf.printf "health: queued %d, running %d, quarantined %d%s\n"
            queued running quarantined
            (if draining then ", draining" else "");
          Printf.printf "pool: %s%s\n" pool
            (if worker_pids = [] then ""
             else
               Printf.sprintf " (pids %s)"
                 (String.concat ", " (List.map string_of_int worker_pids)));
          if respawns + kills_term + kills_kill + zombies > 0 then
            Printf.printf
              "supervision: %d respawned, %d SIGTERM, %d SIGKILL, %d zombie \
               domain(s)\n"
              respawns kills_term kills_kill zombies;
          List.iter
            (fun (i, s) -> Printf.printf "  slot %d: %s\n" i s)
            slots;
          0
        | Ok (Serve.Wire.Draining { active; queued }) ->
          Printf.printf "draining: %d active, %d queued will finish\n" active
            queued;
          0
        | Ok (Serve.Wire.Shutting_down { active; queued }) ->
          Printf.printf "shutting down: %d active finishing, %d left queued\n"
            active queued;
          0
        | Ok (Serve.Wire.Server { queued; running; completed; cancelled;
                                  quarantined; tenants }) ->
          Printf.printf
            "server: queued %d, running %d, completed %d, cancelled %d, \
             quarantined %d\n"
            queued running completed cancelled quarantined;
          List.iter
            (fun (t, n) -> Printf.printf "  tenant %s: %d queued\n" t n)
            tenants;
          0
        | Ok (Serve.Wire.Error_msg m) ->
          Printf.eprintf "serve-ctl: server error: %s\n" m;
          1
        | Ok _ ->
          Printf.eprintf "serve-ctl: unexpected reply\n";
          1
      in
      Serve.Client.close c;
      code
  in
  Cmd.v
    (Cmd.info "serve-ctl"
       ~doc:"Operate on a running repair server: $(b,health) (queue depth, \
             slot states, quarantine count), $(b,drain) (stop admitting, \
             finish everything, flush, exit), $(b,status), $(b,shutdown).")
    Term.(const run $ socket_arg $ action)

let serve_load_cmd =
  let tenants =
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N"
           ~doc:"Concurrent client domains, one connection each.")
  in
  let jobs =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Jobs submitted per tenant, back to back.")
  in
  let cases_per_job =
    Arg.(value & opt int 2 & info [ "cases-per-job" ] ~docv:"N"
           ~doc:"Corpus cases per job (rotating through the corpus).")
  in
  let backend =
    Arg.(value & opt string "llm-only" & info [ "backend" ] ~docv:"NAME"
           ~doc:"Backend each submission requests.")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"S"
           ~doc:"Per-receive patience in seconds.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Send SHUTDOWN to the server after the load completes.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the outcome as JSON.")
  in
  let run socket tenants jobs cases_per_job backend timeout shutdown json opts =
    match
      match opts with
      | Error _ as e -> e
      | Ok (o : Exec.Campaign_opts.t) ->
        if o.Exec.Campaign_opts.journal <> None || o.resume || o.fresh
           || o.trace <> None || o.metrics
        then
          Error "--journal/--resume/--fresh/--trace/--metrics are server-side; \
                 pass them to serve"
        else Ok o
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (opts : Exec.Campaign_opts.t) ->
      let wire_opts =
        { opts with
          Exec.Campaign_opts.journal = None; resume = false; fresh = false;
          trace = None; metrics = false; out = None }
      in
      let cfg =
        { Serve.Load.socket; tenants; jobs_per_tenant = jobs; cases_per_job;
          backend;
          opts =
            (if wire_opts = Exec.Campaign_opts.default then None
             else Some wire_opts);
          timeout_s = timeout;
          jitter_seed = Exec.Campaign_opts.seed opts }
      in
      let o = Serve.Load.run cfg in
      if shutdown then begin
        match Serve.Client.connect ~retries:1 socket with
        | Error e -> Printf.eprintf "serve-load: shutdown: %s\n" e
        | Ok c ->
          (match Serve.Client.request c Serve.Wire.Shutdown with
          | Ok _ -> ()
          | Error e -> Printf.eprintf "serve-load: shutdown: %s\n" e);
          Serve.Client.close c
      end;
      let rendered = Rb_util.Json.to_string (Serve.Load.outcome_to_json o) in
      (match opts.Exec.Campaign_opts.out with
      | Some path -> Rb_util.Fsfile.write_atomic path (rendered ^ "\n")
      | None -> ());
      if json then print_endline rendered
      else
        Printf.printf
          "serve-load: %d/%d jobs completed (%d cases) in %.2fs — %.2f jobs/s, \
           %.1f cases/s; busy %d, errors %d\n"
          o.Serve.Load.completed o.Serve.Load.submitted o.Serve.Load.cases_done
          o.Serve.Load.wall_s o.Serve.Load.jobs_per_s o.Serve.Load.cases_per_s
          o.Serve.Load.busy o.Serve.Load.errors;
      if o.Serve.Load.errors > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "serve-load"
       ~doc:"Drive a running repair server with synthetic multi-tenant load \
             and report sustained jobs/sec (honoring BUSY backoff).")
    Term.(const run $ socket_arg $ tenants $ jobs $ cases_per_job $ backend
          $ timeout $ shutdown $ json $ opts_term)

(* -- trace-summary -------------------------------------------------------- *)

let trace_summary_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let run file =
    match Rb_util.Fsfile.read file with
    | None ->
      Printf.eprintf "cannot read %s\n" file;
      1
    | Some content ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* aggregate per record name, keeping first-appearance order so the
         table reads in pipeline order (parse before typecheck before ...) *)
      let order = ref [] in
      let tbl = Hashtbl.create 16 in
      let bad = ref 0 in
      List.iter
        (fun line ->
          match Obs.Trace.of_jsonl line with
          | Error _ -> incr bad
          | Ok r ->
            let name = r.Obs.Trace.name in
            let slot =
              match Hashtbl.find_opt tbl name with
              | Some s -> s
              | None ->
                let s = (ref 0, ref 0.0, ref 0.0) in
                Hashtbl.add tbl name s;
                order := name :: !order;
                s
            in
            let n, sim, wall = slot in
            incr n;
            sim := !sim +. r.Obs.Trace.dur;
            wall := !wall +. r.Obs.Trace.wall_ms)
        lines;
      if Hashtbl.length tbl = 0 then begin
        Printf.eprintf "%s: no trace records\n" file;
        1
      end
      else begin
        let rows =
          List.rev_map
            (fun name ->
              let n, sim, wall = Hashtbl.find tbl name in
              [ name; string_of_int !n; Printf.sprintf "%.3f" !sim;
                Printf.sprintf "%.2f" !wall ])
            !order
        in
        print_string
          (Statkit.Table.render
             ~aligns:[ Statkit.Table.Left; Statkit.Table.Right;
                       Statkit.Table.Right; Statkit.Table.Right ]
             ~header:[ "phase"; "count"; "sim s"; "wall ms" ] rows);
        if !bad > 0 then Printf.eprintf "%d unparseable line(s) skipped\n" !bad;
        0
      end
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Render a per-phase count/time table from a JSONL trace recorded              with --trace. Wall-clock totals (fix traces) reproduce the              fix --profile figures; campaign traces total simulated time.")
    Term.(const run $ file)

let () =
  (* hidden worker entry point: the server fork/execs its own binary with
     this marker argv, speaking the procpool protocol on stdin — never a
     user-facing subcommand, so it is dispatched before cmdliner runs *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "__rb_worker" then
    Serve.Procpool.worker_main ();
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "rustbrain" ~version:"1.0.0"
             ~doc:"RustBrain reproduction: detect and repair UB in MiniRust programs.")
          ~default
          [ check_cmd; fix_cmd; corpus_cmd; corpus_show_cmd; corpus_fix_cmd;
            campaign_cmd; serve_cmd; serve_fsck_cmd; serve_ctl_cmd;
            serve_load_cmd; kb_init_cmd; kb_stats_cmd; kb_fsck_cmd;
            trace_summary_cmd ]))

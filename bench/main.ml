(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's per-experiment index), plus Bechamel
   micro-benchmarks of the substrates.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- fig8     # a single experiment
   Experiments: fig5 fig7 fig8 fig9 fig10 fig11 fig12 table1 ablate perf smoke
                resilience resilience-smoke chaos resume-smoke

   Every multi-seed campaign goes through the unified Exec runner API, so
   backends are interchangeable and campaigns shard across domains; `perf`
   additionally measures real wall-clock for the scheduler + verification
   cache, and `smoke` is a fast determinism/cache gate wired into runtest.

   Reported times are *simulated* seconds (LLM latency + verification runs on
   the simulated clock); rates are measured by actually running each repaired
   program. EXPERIMENTS.md records the paper-vs-measured comparison. *)

let seeds = [ 1; 2; 3 ]

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let contains hay sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
  n = 0 || go 0

(* -- aggregation ----------------------------------------------------- *)

type rates = { pass : float; exec : float; mean_seconds : float; n : int }

let rates_of (reports : Rustbrain.Report.t list) =
  {
    pass = Statkit.Stats.proportion (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed) reports;
    exec = Statkit.Stats.proportion (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.semantic) reports;
    mean_seconds =
      Statkit.Stats.mean (List.map (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.seconds) reports);
    n = List.length reports;
  }

let rustbrain_cfg ?(kb = true) ?(feedback = true) ?(model = Llm_sim.Profile.Gpt4)
    ?(temperature = 0.5) ?(rollback = Rustbrain.Slow_think.Adaptive) ~seed () =
  { Rustbrain.Pipeline.default_config with
    Rustbrain.Pipeline.model; temperature; use_kb = kb; use_feedback = feedback;
    rollback; seed }

(* One generic multi-seed driver for every backend: pack the configured
   backend once, let the scheduler re-seed it per campaign and shard the
   campaigns over domains. *)
let run_campaign runner cases = fst (Exec.Scheduler.run_seeded runner ~seeds cases)

let run_rustbrain ?kb ?feedback ?model ?temperature ?rollback cases =
  run_campaign
    (Exec.Backends.rustbrain
       ~config:(rustbrain_cfg ?kb ?feedback ?model ?temperature ?rollback ~seed:1 ())
       ())
    cases

let run_alone ?(model = Llm_sim.Profile.Gpt4) cases =
  run_campaign
    (Exec.Backends.llm_only
       ~config:{ Baselines.Llm_only.default_config with Baselines.Llm_only.model }
       ())
    cases

let run_rust_assistant cases = run_campaign (Exec.Backends.rust_assistant ()) cases

(* -- Fig. 7 (RQ1, flexibility) --------------------------------------- *)

(* Ten solution groups over one semantic-modification UB, mirroring the
   paper's figure: agent orders differ, the knowledge base is toggled, group
   3 stands for the generic fixed-framework plan. *)
let fig7 () =
  section "Fig. 7 — RQ1 flexibility: ten solutions for one semantic-modification UB";
  let case = Option.get (Dataset.Corpus.find "va_partial_init") in
  let open Rustbrain in
  let fix c = Solution.Fix c in
  let groups =
    [ (1, "modify-only", [ fix Ub_class.C_modify; fix Ub_class.C_modify ], false);
      (2, "modify-then-assert", [ fix Ub_class.C_modify; fix Ub_class.C_assert ], false);
      (3, "generic fixed plan", [ fix Ub_class.C_replace; fix Ub_class.C_assert; fix Ub_class.C_modify;
                                  fix Ub_class.C_replace; fix Ub_class.C_assert ], false);
      (4, "assert-first", [ fix Ub_class.C_assert; fix Ub_class.C_modify ], false);
      (5, "abstract+modify (KB)", [ Solution.Abstract; fix Ub_class.C_modify ], true);
      (6, "abstract+sweep (KB)", [ Solution.Abstract; fix Ub_class.C_modify; fix Ub_class.C_replace ], true);
      (7, "replace-only", [ fix Ub_class.C_replace; fix Ub_class.C_replace ], false);
      (8, "deep modify (KB)", [ Solution.Abstract; fix Ub_class.C_modify; fix Ub_class.C_modify;
                                fix Ub_class.C_modify ], true);
      (9, "modify+abstract late (KB)", [ fix Ub_class.C_modify; Solution.Abstract; fix Ub_class.C_modify ], true);
      (10, "assert-only", [ fix Ub_class.C_assert; fix Ub_class.C_assert ], false) ]
  in
  let rows =
    List.map
      (fun (idx, name, steps, kb) ->
        let cfg = rustbrain_cfg ~kb ~feedback:false ~seed:1 () in
        let session = Pipeline.create_session cfg in
        let solution = { Solution.sname = name; steps; origin = "fig7" } in
        let r = Pipeline.repair_with_solution session case solution in
        [ string_of_int idx; name; (if kb then "yes" else "no");
          (if r.Report.passed then "pass" else "-");
          (if r.Report.semantic then "exec" else "-");
          Statkit.Table.secs r.Report.seconds;
          string_of_int r.Report.iterations ])
      groups
  in
  print_string
    (Statkit.Table.render
       ~header:[ "group"; "solution"; "KB"; "pass"; "exec"; "time(s)"; "iters" ]
       rows);
  Printf.printf
    "\n(paper: diverse solutions exist for the same UB; KB helps but costs 2-4x\n\
     overhead; the generic fixed plan wastes steps; some groups pass without\n\
     semantic acceptability)\n"

(* -- Figs. 8 & 9 (RQ2, accuracy) ------------------------------------- *)

let fig89 () =
  section "Figs. 8 & 9 — RQ2 accuracy: pass / exec rates by model and configuration";
  let cases = Dataset.Corpus.all in
  let cells =
    [ ("GPT-3.5 alone", run_alone ~model:Llm_sim.Profile.Gpt35 cases);
      ("GPT-3.5 + RustBrain", run_rustbrain ~model:Llm_sim.Profile.Gpt35 ~kb:false ~feedback:false cases);
      ("GPT-3.5 + RustBrain + KB", run_rustbrain ~model:Llm_sim.Profile.Gpt35 cases);
      ("GPT-4 alone", run_alone ~model:Llm_sim.Profile.Gpt4 cases);
      ("GPT-4 + RustBrain", run_rustbrain ~model:Llm_sim.Profile.Gpt4 ~kb:false ~feedback:false cases);
      ("GPT-4 + RustBrain + KB", run_rustbrain ~model:Llm_sim.Profile.Gpt4 cases);
      ("Claude-3.5 alone", run_alone ~model:Llm_sim.Profile.Claude35 cases);
      ("Claude-3.5 + RustBrain", run_rustbrain ~model:Llm_sim.Profile.Claude35 ~kb:false ~feedback:false cases);
      ("Claude-3.5 + RustBrain + KB", run_rustbrain ~model:Llm_sim.Profile.Claude35 cases) ]
  in
  let rows =
    List.map
      (fun (name, reports) ->
        let r = rates_of reports in
        [ name; Statkit.Table.pct r.pass; Statkit.Table.pct r.exec; string_of_int r.n ])
      cells
  in
  print_string
    (Statkit.Table.render ~header:[ "configuration"; "pass (Fig.8)"; "exec (Fig.9)"; "runs" ] rows);
  Printf.printf
    "\n(paper: GPT-4+RustBrain+KB averages 94.3%% pass / 80.4%% exec; RustBrain\n\
     lifts every model 17-35 points; GPT-3.5+RustBrain reaches GPT-4-alone level)\n"

(* -- Fig. 10 (GPT-O1 comparison) ------------------------------------- *)

let fig10 () =
  section "Fig. 10 — GPT-O1 alone vs RustBrain on a category subset";
  let subset_kinds =
    [ Miri.Diag.Validity; Miri.Diag.Alloc; Miri.Diag.Func_pointer; Miri.Diag.Panic_bug;
      Miri.Diag.Dangling_pointer ]
  in
  let rows =
    List.map
      (fun kind ->
        let cases = Dataset.Corpus.by_category kind in
        let o1 = rates_of (run_alone ~model:Llm_sim.Profile.Gpt_o1 cases) in
        let rb = rates_of (run_rustbrain cases) in
        [ Miri.Diag.kind_name kind;
          Statkit.Table.pct o1.pass; Statkit.Table.pct o1.exec;
          Statkit.Table.pct rb.pass; Statkit.Table.pct rb.exec ])
      subset_kinds
  in
  print_string
    (Statkit.Table.render
       ~header:[ "category"; "O1 pass"; "O1 exec"; "RustBrain pass"; "RustBrain exec" ]
       rows);
  (* the paper restricts O1 to a subset "due to O1's high cost": estimate the
     metered cost per repaired case for each standalone model *)
  let subset_cases = List.concat_map Dataset.Corpus.by_category subset_kinds in
  let cost_per_case model =
    let session =
      Baselines.Llm_only.create_session
        { Baselines.Llm_only.default_config with Baselines.Llm_only.model }
    in
    List.iter (fun c -> ignore (Baselines.Llm_only.repair session c)) subset_cases;
    Baselines.Llm_only.cost_usd session /. float_of_int (List.length subset_cases)
  in
  Printf.printf "\nestimated metered cost per standalone repair attempt:\n";
  List.iter
    (fun model ->
      Printf.printf "  %-12s $%.4f\n" (Llm_sim.Profile.name model) (cost_per_case model))
    Llm_sim.Profile.all;
  Printf.printf
    "(paper: despite O1's reasoning, RustBrain beats it, most visibly on the\n\
     uncommon panic category — +35.6%% exec there; O1 runs a subset only\n\
     because of its cost, which the estimate above reproduces)\n"

(* -- Fig. 11 (RQ3, temperature sensitivity) --------------------------- *)

let fig11 () =
  section "Fig. 11 — RQ3 sensitivity: temperature sweep with 95% Wilson CIs";
  let cases = Dataset.Corpus.all in
  let temps = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let rows =
    List.map
      (fun temperature ->
        let reports = run_rustbrain ~temperature cases in
        let n = List.length reports in
        let passes = List.length (List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed) reports) in
        let execs = List.length (List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.semantic) reports) in
        [ Printf.sprintf "%.1f" temperature;
          Statkit.Table.pct (float_of_int passes /. float_of_int n);
          Statkit.Table.ci (Statkit.Stats.wilson_ci ~successes:passes n);
          Statkit.Table.pct (float_of_int execs /. float_of_int n);
          Statkit.Table.ci (Statkit.Stats.wilson_ci ~successes:execs n) ])
      temps
  in
  print_string
    (Statkit.Table.render
       ~header:[ "temperature"; "pass"; "pass 95% CI"; "exec"; "exec 95% CI" ]
       rows);
  Printf.printf
    "\n(paper: pass/exec peak around temperature 0.5; higher temperatures trade\n\
     semantic integrity for flexibility, lower ones lose repair diversity)\n"

(* -- Fig. 12 (RQ4 vs RustAssistant) ----------------------------------- *)

let fig12 () =
  section "Fig. 12 — RQ4: RustBrain vs the fixed-pipeline RustAssistant";
  let cases = Dataset.Corpus.all in
  let rb = rates_of (run_rustbrain cases) in
  let ra = rates_of (run_rust_assistant cases) in
  print_string
    (Statkit.Table.render
       ~header:[ "system"; "pass"; "exec" ]
       [ [ "RustAssistant (fixed pipeline)"; Statkit.Table.pct ra.pass; Statkit.Table.pct ra.exec ];
         [ "RustBrain"; Statkit.Table.pct rb.pass; Statkit.Table.pct rb.exec ];
         [ "delta";
           Printf.sprintf "+%.1f pts" (100.0 *. (rb.pass -. ra.pass));
           Printf.sprintf "+%.1f pts" (100.0 *. (rb.exec -. ra.exec)) ] ]);
  Printf.printf "\n(paper: RustBrain +33 pass points, +41 exec points over RustAssistant)\n"

(* -- Table I (RQ4 vs human experts) ----------------------------------- *)

let table1 () =
  section "Table I — repair time per category: RustBrain (no KB / KB) vs human";
  let mean_time (reports : Rustbrain.Report.t list) kind =
    let xs =
      List.filter_map
        (fun (r : Rustbrain.Report.t) ->
          if r.Rustbrain.Report.category = kind then Some r.Rustbrain.Report.seconds else None)
        reports
    in
    Statkit.Stats.mean xs
  in
  let cases = Dataset.Corpus.all in
  let no_kb = run_rustbrain ~kb:false ~feedback:false cases in
  let with_kb = run_rustbrain ~kb:true ~feedback:false cases in
  let with_fb = run_rustbrain ~kb:true ~feedback:true cases in
  let human = run_campaign (Exec.Backends.human_expert ()) cases in
  let rows =
    List.map
      (fun kind ->
        let t_nokb = mean_time no_kb kind in
        let t_kb = mean_time with_kb kind in
        let t_fb = mean_time with_fb kind in
        let t_h = mean_time human kind in
        [ Miri.Diag.kind_name kind;
          Statkit.Table.secs t_nokb; Statkit.Table.secs t_kb; Statkit.Table.secs t_fb;
          Statkit.Table.secs t_h;
          Printf.sprintf "%.1fx" (t_h /. max 0.001 t_nokb) ])
      Dataset.Corpus.categories
  in
  let avg sel = Statkit.Stats.mean (List.map (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.seconds) sel) in
  let totals =
    [ "Average"; Statkit.Table.secs (avg no_kb); Statkit.Table.secs (avg with_kb);
      Statkit.Table.secs (avg with_fb); Statkit.Table.secs (avg human);
      Printf.sprintf "%.1fx" (avg human /. max 0.001 (avg no_kb)) ]
  in
  print_string
    (Statkit.Table.render
       ~header:[ "type"; "no_knowledge"; "knowledge"; "knowledge+feedback"; "human"; "speedup" ]
       (rows @ [ totals ]));
  let fb_hits = List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.feedback_hit) with_fb in
  let fb_misses = List.filter (fun (r : Rustbrain.Report.t) -> not r.Rustbrain.Report.feedback_hit) with_fb in
  Printf.printf
    "\nfeedback shortcut (the paper's red sections): %d repairs recalled a similar\n\
     error and averaged %.1fs vs %.1fs without a recall\n"
    (List.length fb_hits) (avg fb_hits) (avg fb_misses);
  Printf.printf
    "(paper: 62.6s no-KB / 84.9s KB / 442s human, average speedup 7.4x; func.\n\
     calls show the largest gap, dangling pointers the smallest)\n"

(* -- Fig. 5 (rollback ablation) ---------------------------------------- *)

let fig5 () =
  section "Fig. 5 — error sequences with and without adaptive rollback";
  (* A hallucination stress-test, as in the paper's analysis: a weak model at
     a very hot temperature runs a long modify-heavy plan, so corrupted edits
     pile errors onto the program; the rollback policies then differ in how
     much of the accumulated damage survives. *)
  let policies =
    [ ("no rollback", Rustbrain.Slow_think.No_rollback);
      ("rollback to initial", Rustbrain.Slow_think.To_initial);
      ("adaptive rollback", Rustbrain.Slow_think.Adaptive) ]
  in
  let cases = List.filteri (fun i _ -> i mod 3 = 0) Dataset.Corpus.all in
  let plan =
    { Rustbrain.Solution.sname = "stress"; origin = "fig5";
      steps =
        [ Rustbrain.Solution.Fix Rustbrain.Ub_class.C_modify;
          Rustbrain.Solution.Fix Rustbrain.Ub_class.C_modify;
          Rustbrain.Solution.Fix Rustbrain.Ub_class.C_assert ] }
  in
  let run_policy rollback =
    List.concat_map
      (fun seed ->
        let session =
          Rustbrain.Pipeline.create_session
            { (rustbrain_cfg ~model:Llm_sim.Profile.Gpt35 ~temperature:1.3 ~kb:false
                 ~feedback:false ~rollback ~seed ())
              with Rustbrain.Pipeline.max_iters = 10 }
        in
        List.map
          (fun case -> Rustbrain.Pipeline.repair_with_solution session case plan)
          cases)
      seeds
  in
  let all_runs = List.map (fun (name, p) -> (name, run_policy p)) policies in
  let rows =
    List.map
      (fun (name, reports) ->
        let r = rates_of reports in
        let max_n =
          Statkit.Stats.mean
            (List.map
               (fun (rep : Rustbrain.Report.t) ->
                 float_of_int (List.fold_left max 0 rep.Rustbrain.Report.n_sequence))
               reports)
        in
        let rollbacks =
          List.fold_left (fun acc (rep : Rustbrain.Report.t) -> acc + rep.Rustbrain.Report.rollbacks) 0 reports
        in
        [ name; Statkit.Table.pct r.pass; Statkit.Table.pct r.exec;
          Printf.sprintf "%.1f" max_n; string_of_int rollbacks;
          Statkit.Table.secs r.mean_seconds ])
      all_runs
  in
  print_string
    (Statkit.Table.render
       ~header:[ "policy"; "pass"; "exec"; "mean peak errors"; "rollbacks"; "time(s)" ]
       rows);
  (* concrete fluctuating error sequences, as in the figure *)
  print_endline "\nexample N sequences (no rollback):";
  (match all_runs with
  | (_, reports) :: _ ->
    reports
    |> List.filter (fun (r : Rustbrain.Report.t) ->
           List.length r.Rustbrain.Report.n_sequence >= 4
           && List.fold_left max 0 r.Rustbrain.Report.n_sequence
              > List.hd r.Rustbrain.Report.n_sequence)
    |> List.filteri (fun i _ -> i < 4)
    |> List.iter (fun (r : Rustbrain.Report.t) ->
           Printf.printf "  %-28s {%s}\n" r.Rustbrain.Report.case_name
             (String.concat ", " (List.map string_of_int r.Rustbrain.Report.n_sequence)))
  | [] -> ());
  Printf.printf
    "(paper: error counts fluctuate under hallucination, e.g. N = {1, 3, 4, 6, 9};\n\
     adaptive rollback restarts each step from the best intermediate state)\n"

(* -- perf: scheduler + cache wall-clock, then Bechamel micro-benchmarks -- *)

let perf_campaign () =
  section "Campaign scheduler + verification cache (real wall-clock)";
  let cases = Dataset.Corpus.all in
  let seeds = List.init 12 (fun i -> i + 1) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let nocache =
    { Rustbrain.Pipeline.default_config with Rustbrain.Pipeline.use_cache = false }
  in
  let leg ~domains ~cache =
    let runner =
      if cache then Exec.Backends.rustbrain ()
      else Exec.Backends.rustbrain ~config:nocache ()
    in
    time (fun () -> Exec.Scheduler.run_seeded ~domains runner ~seeds cases)
  in
  let (seq_off, _), t_seq_off = leg ~domains:1 ~cache:false in
  let (seq_on, stats1), t_seq_on = leg ~domains:1 ~cache:true in
  let (par_on, stats2), t_par_on = leg ~domains:2 ~cache:true in
  let (_, _), t_par_off = leg ~domains:2 ~cache:false in
  Printf.printf "campaign: rustbrain, %d case(s) x %d seed(s); %d core(s) available\n"
    (List.length cases) (List.length seeds)
    (Domain.recommended_domain_count ());
  Printf.printf "  1 domain,  cache off   %6.3fs wall\n" t_seq_off;
  Printf.printf "  1 domain,  cache on    %6.3fs wall  (hit-rate %.1f%%)\n" t_seq_on
    (100.0 *. Exec.Runner.hit_rate stats1);
  Printf.printf "  2 domains, cache off   %6.3fs wall\n" t_par_off;
  Printf.printf "  2 domains, cache on    %6.3fs wall  (hit-rate %.1f%%, %d hits, %d misses)\n"
    t_par_on
    (100.0 *. Exec.Runner.hit_rate stats2)
    stats2.Exec.Runner.cache_hits stats2.Exec.Runner.cache_misses;
  Printf.printf "  cache speedup, 1 domain   %.2fx\n" (t_seq_off /. t_seq_on);
  Printf.printf "  cache speedup, 2 domains  %.2fx\n" (t_par_off /. t_par_on);
  Printf.printf "  2 domains cached vs sequential uncached  %.2fx\n"
    (t_seq_off /. t_par_on);
  Printf.printf "  reports byte-identical: cache on==off %b, parallel==sequential %b\n"
    (seq_off = seq_on) (seq_on = par_on)

let perf () =
  section "Substrate micro-benchmarks (Bechamel, real time)";
  let case = Option.get (Dataset.Corpus.find "dr_flag_spin") in
  let src = case.Dataset.Case.buggy_src in
  let program = Dataset.Case.buggy case in
  let info =
    match Minirust.Typecheck.check program with
    | Ok info -> info
    | Error _ -> failwith "corpus case must typecheck"
  in
  let simple = Option.get (Dataset.Corpus.find "al_double_free") in
  let vec = Knowledge.Featvec.of_program program [] in
  let store = Knowledge.Store.create () in
  List.iteri
    (fun i (c : Dataset.Case.t) ->
      Knowledge.Store.add store (Knowledge.Featvec.of_program (Dataset.Case.buggy c) []) i)
    Dataset.Corpus.all;
  let open Bechamel in
  let tests =
    [ Test.make ~name:"parse" (Staged.stage (fun () -> Minirust.Parser.parse src));
      Test.make ~name:"typecheck"
        (Staged.stage (fun () -> Minirust.Typecheck.check program));
      Test.make ~name:"miri-run-threaded"
        (Staged.stage (fun () ->
             Miri.Machine.run
               ~config:{ Miri.Machine.default_config with Miri.Machine.inputs = [| 9L |] }
               program info));
      Test.make ~name:"ast-prune"
        (Staged.stage (fun () -> Knowledge.Prune.prune program []));
      Test.make ~name:"featvec+query"
        (Staged.stage (fun () -> Knowledge.Store.query store vec ~k:3));
      Test.make ~name:"full-repair"
        (Staged.stage (fun () ->
             let session =
               Rustbrain.Pipeline.create_session (rustbrain_cfg ~seed:1 ())
             in
             Rustbrain.Pipeline.repair session simple)) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
        let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
        let name, est =
          Hashtbl.fold
            (fun name o acc ->
              match Analyze.OLS.estimates o with
              | Some (t :: _) -> (name, t)
              | _ -> acc)
            results ("?", 0.0)
        in
        [ name; Printf.sprintf "%.1f us" (est /. 1_000.0) ])
      tests
  in
  print_string (Statkit.Table.render ~header:[ "operation"; "time/run" ] rows);
  perf_campaign ()

(* -- smoke gate (dune runtest alias bench-smoke) ----------------------- *)

let smoke () =
  section "Smoke — scheduler determinism and cache effectiveness (tiny corpus)";
  let cases = List.filteri (fun i _ -> i mod 8 = 0) Dataset.Corpus.all in
  let failures = ref 0 in
  let check runner =
    let name = Exec.Runner.name runner in
    let seq, _ = Exec.Scheduler.run_seeded ~domains:1 runner ~seeds:[ 1; 2 ] cases in
    let par, stats = Exec.Scheduler.run_seeded ~domains:2 runner ~seeds:[ 1; 2 ] cases in
    let same = seq = par in
    Printf.printf "%-16s %3d report(s)  parallel==sequential:%b  cache hits:%d\n" name
      (List.length par) same stats.Exec.Runner.cache_hits;
    if not same then begin
      Printf.eprintf "FAIL %s: parallel reports differ from sequential\n" name;
      incr failures
    end;
    if stats.Exec.Runner.cache_hits = 0 then begin
      (* every backend re-verifies candidates against the same references, so
         zero hits means the cache is not wired in *)
      Printf.eprintf "FAIL %s: verification cache never hit\n" name;
      incr failures
    end
  in
  check (Exec.Backends.rustbrain ());
  check (Exec.Backends.llm_only ());
  if !failures > 0 then exit 1;
  print_endline "smoke ok"

(* -- resilience: fault-rate sweep (pass-rate degradation curve) -------- *)

let resilience () =
  section "Resilience — pass-rate degradation under injected LLM-API faults";
  let cases = List.filteri (fun i _ -> i mod 4 = 0) Dataset.Corpus.all in
  let fault_rates = [ 0.0; 0.05; 0.1; 0.2; 0.35; 0.5 ] in
  let rows =
    List.map
      (fun fault_rate ->
        let cfg =
          { (rustbrain_cfg ~seed:1 ()) with
            Rustbrain.Pipeline.fault_rate; max_retries = 3 }
        in
        let reports = run_campaign (Exec.Backends.rustbrain ~config:cfg ()) cases in
        let r = rates_of reports in
        let sum f =
          List.fold_left (fun a (rep : Rustbrain.Report.t) -> a + f rep) 0 reports
        in
        let count p =
          List.length (List.filter (fun (rep : Rustbrain.Report.t) -> p rep) reports)
        in
        [ Printf.sprintf "%.2f" fault_rate;
          Statkit.Table.pct r.pass; Statkit.Table.pct r.exec;
          string_of_int (sum (fun rep -> rep.Rustbrain.Report.faults));
          string_of_int (sum (fun rep -> rep.Rustbrain.Report.retries));
          string_of_int (sum (fun rep -> rep.Rustbrain.Report.breaker_trips));
          Printf.sprintf "%d/%d" (count (fun rep -> rep.Rustbrain.Report.degraded)) r.n;
          string_of_int (count (fun rep -> rep.Rustbrain.Report.gave_up));
          Statkit.Table.secs r.mean_seconds ])
      fault_rates
  in
  print_string
    (Statkit.Table.render
       ~header:
         [ "fault rate"; "pass"; "exec"; "faults"; "retries"; "trips";
           "degraded"; "gave-up"; "time(s)" ]
       rows);
  print_endline
    "(retries absorb low fault rates; at high rates the breaker trips and the\n\
     GPT-3.5 fallback keeps campaigns finishing, degraded rather than aborted)"

(* -- resilience smoke gate (dune runtest alias resilience-smoke) ------- *)

let resilience_smoke () =
  section "Resilience smoke — fault-rate-0 byte-identity, faulted determinism, crash isolation";
  let cases = List.filteri (fun i _ -> i mod 8 = 0) Dataset.Corpus.all in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL %s\n" s; incr failures) fmt in
  let render cfg domains =
    let reports, _ =
      Exec.Scheduler.run_seeded ~domains
        (Exec.Backends.rustbrain ~config:cfg ())
        ~seeds:[ 1; 2 ] cases
    in
    List.map Rustbrain.Report.to_json reports
  in
  (* leg 1: with every fault rate zero, the resilience knobs are invisible —
     reports byte-identical to the default config, at any domain count *)
  let plain = render (rustbrain_cfg ~seed:1 ()) 1 in
  let knobbed =
    { (rustbrain_cfg ~seed:1 ()) with
      Rustbrain.Pipeline.fault_rate = 0.0; max_retries = 9;
      deadline = Some 1.0e9 }
  in
  if render knobbed 1 <> plain then fail "fault-rate 0 not byte-identical (1 domain)";
  if render knobbed 2 <> plain then fail "fault-rate 0 not byte-identical (2 domains)";
  Printf.printf "fault-rate 0 byte-identity: %d report(s) checked\n" (List.length plain);
  (* leg 2: a faulted campaign is same-seed deterministic across runs and
     domain counts, and actually injects faults *)
  let faulted = { (rustbrain_cfg ~seed:1 ()) with Rustbrain.Pipeline.fault_rate = 0.3 } in
  let f1 = render faulted 1 in
  if render faulted 1 <> f1 then fail "faulted campaign differs between runs";
  if render faulted 2 <> f1 then fail "faulted campaign differs across domain counts";
  if not (List.exists (fun j -> not (contains j "\"faults\":0,")) f1) then
    fail "fault rate 0.3 injected nothing";
  Printf.printf "faulted campaign (rate 0.3): deterministic over %d report(s)\n"
    (List.length f1);
  (* leg 3: a crashing campaign never poisons its siblings *)
  let module Crashy = struct
    type config = int
    type session = unit

    let name = "crashy"
    let default_config = 0
    let with_seed _ seed = seed
    let seed cfg = cfg
    let create_session _ = ()

    let repair_case () _ : Rustbrain.Report.t = failwith "injected crash"
    let session_stats () = Exec.Runner.no_stats
  end in
  let job runner = { Exec.Scheduler.label = Exec.Runner.name runner; runner; cases } in
  let results, _ =
    Exec.Scheduler.run_jobs ~domains:2
      [ job (Exec.Backends.human_expert ());
        job (Exec.Runner.pack (module Crashy) 0);
        job (Exec.Backends.human_expert ()) ]
  in
  (match List.map (fun r -> r.Exec.Scheduler.failure <> None) results with
  | [ false; true; false ] -> ()
  | _ -> fail "crash isolation: expected exactly the crashy job to fail");
  List.iteri
    (fun i r ->
      if i <> 1 && List.length r.Exec.Scheduler.reports <> List.length cases then
        fail "crash isolation: sibling job lost reports")
    results;
  Printf.printf "crash isolation: 1 crash contained, %d sibling report(s) intact\n"
    (List.fold_left
       (fun a r -> a + List.length r.Exec.Scheduler.reports)
       0 results);
  if !failures > 0 then exit 1;
  print_endline "resilience smoke ok"


(* -- chaos: kill-and-resume byte-identity ------------------------------ *)

let with_journal_dir f =
  (* temp_file reserves a unique name; reuse it as a directory *)
  let dir = Filename.temp_file "rustbrain-journal" "" in
  Sys.remove dir;
  Rb_util.Fsfile.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* Kill a journaled campaign after [kill] durable records, resume it, and
   demand the stitched reports render byte-identically (JSON and CSV) to an
   uninterrupted unjournaled run — with zero re-verification of journaled
   cases. Returns the number of (kill, domains) scenarios exercised. *)
let chaos_check ~cases ~seeds ~kill_points ~domain_counts ~fail =
  let runner = Exec.Backends.rustbrain () in
  let jobs () = Exec.Scheduler.seeded_jobs runner ~seeds cases in
  let render results =
    let reports = List.concat_map (fun r -> r.Exec.Scheduler.reports) results in
    (List.map Rustbrain.Report.to_json reports,
     List.map Rustbrain.Report.csv_row reports)
  in
  let baseline =
    let results, _ = Exec.Scheduler.run_jobs ~domains:1 (jobs ()) in
    render results
  in
  let total = List.length seeds * List.length cases in
  List.iter
    (fun domains ->
      List.iter
        (fun kill ->
          with_journal_dir (fun dir ->
              let o1 =
                Exec.Checkpoint.run ~domains ~kill_after:kill ~dir
                  ~mode:Exec.Checkpoint.Fresh (jobs ())
              in
              if kill < total
                 && Exec.Scheduler.failures o1.Exec.Checkpoint.results = []
              then
                fail (Printf.sprintf "chaos kill@%d/%d domains=%d: no job died" kill total domains);
              let o2 =
                Exec.Checkpoint.run ~domains ~dir ~mode:Exec.Checkpoint.Resume
                  (jobs ())
              in
              if Exec.Scheduler.failures o2.Exec.Checkpoint.results <> [] then
                fail (Printf.sprintf "chaos kill@%d domains=%d: resume crashed" kill domains);
              if render o2.Exec.Checkpoint.results <> baseline then
                fail
                  (Printf.sprintf
                     "chaos kill@%d domains=%d: stitched reports not byte-identical"
                     kill domains);
              let expected_replay = min kill total in
              if o2.Exec.Checkpoint.replayed <> expected_replay then
                fail
                  (Printf.sprintf
                     "chaos kill@%d domains=%d: replayed %d of %d journaled \
                      case(s) (journaled work re-verified)"
                     kill domains o2.Exec.Checkpoint.replayed expected_replay);
              if o2.Exec.Checkpoint.replayed + o2.Exec.Checkpoint.recomputed
                 <> total
              then
                fail
                  (Printf.sprintf
                     "chaos kill@%d domains=%d: replay %d + recompute %d <> %d"
                     kill domains o2.Exec.Checkpoint.replayed
                     o2.Exec.Checkpoint.recomputed total)))
        kill_points)
    domain_counts;
  (* a journal for different jobs must be refused, not replayed *)
  with_journal_dir (fun dir ->
      let _ =
        Exec.Checkpoint.run ~domains:1 ~kill_after:1 ~dir
          ~mode:Exec.Checkpoint.Fresh (jobs ())
      in
      match
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Resume
          (Exec.Scheduler.seeded_jobs runner ~seeds:[ 4242 ] cases)
      with
      | _ -> fail "chaos: foreign journal was not refused"
      | exception Exec.Checkpoint.Fingerprint_mismatch _ -> ());
  (total, List.length kill_points * List.length domain_counts)

let chaos () =
  section "Chaos — kill at seeded record boundaries, resume, byte-identical reports";
  let cases = List.filteri (fun i _ -> i mod 4 = 0) Dataset.Corpus.all in
  let failures = ref 0 in
  let fail s =
    Printf.eprintf "FAIL %s\n" s;
    incr failures
  in
  let total, scenarios =
    chaos_check ~cases ~seeds:[ 1; 2 ] ~kill_points:[ 0; 1; 2; 5; 9; 14; 19 ]
      ~domain_counts:[ 1; 2; 4 ] ~fail
  in
  (* a resume of an already-complete journal replays everything and runs
     nothing *)
  with_journal_dir (fun dir ->
      let runner = Exec.Backends.rustbrain () in
      let jobs = Exec.Scheduler.seeded_jobs runner ~seeds:[ 1; 2 ] cases in
      let _ =
        Exec.Checkpoint.run ~domains:2 ~dir ~mode:Exec.Checkpoint.Fresh jobs
      in
      let o = Exec.Checkpoint.run ~domains:2 ~dir ~mode:Exec.Checkpoint.Resume jobs in
      if o.Exec.Checkpoint.recomputed <> 0 || o.Exec.Checkpoint.replayed <> total
      then
        fail
          (Printf.sprintf "chaos: complete journal still recomputed %d case(s)"
             o.Exec.Checkpoint.recomputed));
  if !failures > 0 then exit 1;
  Printf.printf
    "chaos ok: %d kill/resume scenario(s) over %d case-repairs, all stitched \
     reports byte-identical, zero journaled re-verification\n"
    scenarios total

(* -- resume smoke gate (dune runtest alias resume-smoke) --------------- *)

let resume_smoke () =
  section "Resume smoke — crash at a record boundary, resume, byte-identity";
  let cases = List.filteri (fun i _ -> i mod 8 = 0) Dataset.Corpus.all in
  let failures = ref 0 in
  let fail s =
    Printf.eprintf "FAIL %s\n" s;
    incr failures
  in
  let total, scenarios =
    chaos_check ~cases ~seeds:[ 1; 2 ] ~kill_points:[ 0; 3; 7 ]
      ~domain_counts:[ 1; 2 ] ~fail
  in
  if !failures > 0 then exit 1;
  Printf.printf
    "resume smoke ok: %d scenario(s) over %d case-repairs byte-identical after \
     kill+resume\n"
    scenarios total

(* -- interp: interpreter hot-path microbenchmarks ---------------------- *)

(* Every candidate repair is re-verified by running the program under
   lib/miri, so interpreter throughput bounds the whole system. The
   workloads are MiniRust *programs*, which makes the benchmark
   representation-agnostic: it times whatever `lib/miri` currently does,
   so numbers recorded before and after a memory-core change are directly
   comparable. `interp` writes machine-readable results to
   BENCH_interp.json, preserving the first recorded run as the baseline so
   the repo accumulates a perf trajectory. *)

(* Allocation-heavy: a tight loop of heap alloc / write / read / free plus
   per-iteration stack locals — stresses allocation setup cost and the
   typed encode/decode path through P_alloc pointers. *)
let interp_alloc_src ~blocks =
  Printf.sprintf
    {|
fn main() {
    let mut i = 0;
    let mut acc = 0;
    while i < %d {
        unsafe {
            let mut p = alloc(64, 8) as *mut i64;
            let mut j = 0;
            while j < 8 {
                *p.offset(j) = i + j;
                j = j + 1;
            }
            acc = acc + *p.offset(7);
            dealloc(p as *mut i8, 64, 8);
        }
        i = i + 1;
    }
    print(acc);
}
|}
    blocks

(* Pointer-chasing: a linked list threaded through integer-stored addresses,
   so every hop is a wildcard (exposed-provenance) access that must resolve
   its address to an allocation — the address-resolution hot path. *)
let interp_chase_src ~nodes ~rounds =
  Printf.sprintf
    {|
fn main() {
    unsafe {
        let mut head = 0;
        let mut i = 0;
        while i < %d {
            let mut p = alloc(16, 8) as *mut i64;
            *p = head;
            *p.offset(1) = i;
            head = p as i64;
            i = i + 1;
        }
        let mut round = 0;
        let mut acc = 0;
        while round < %d {
            let mut cur = head;
            while cur != 0 {
                let mut q = cur as *mut i64;
                acc = acc + *q.offset(1);
                cur = *q;
            }
            round = round + 1;
        }
        let mut cur = head;
        while cur != 0 {
            let mut q = cur as *mut i64;
            let mut next = *q;
            dealloc(q as *mut i8, 16, 8);
            cur = next;
        }
        print(acc);
    }
}
|}
    nodes rounds

(* Race-check: three workers hammer an atomic counter and their own private
   statics — every access runs the vector-clock race machinery, no race is
   ever reported, and the scheduler interleaves deterministically. *)
let interp_race_src ~iters =
  Printf.sprintf
    {|
static mut TOTAL: i64 = 0;
static mut W0: i64 = 0;
static mut W1: i64 = 0;
static mut W2: i64 = 0;

fn worker(p: *mut i64, k: i64) {
    unsafe {
        let mut i = 0;
        while i < k {
            atomic_add(&raw mut TOTAL, 1);
            *p = *p + 1;
            i = i + 1;
        }
    }
}

fn main() {
    unsafe {
        let h0 = spawn worker(&raw mut W0, %d);
        let h1 = spawn worker(&raw mut W1, %d);
        let h2 = spawn worker(&raw mut W2, %d);
        join(h0);
        join(h1);
        join(h2);
        print(atomic_load(&raw mut TOTAL) + W0 + W1 + W2);
    }
}
|}
    iters iters iters

(* Call/locals churn: many short calls each binding a handful of locals —
   stresses frame setup and local-variable lookup in the machine. *)
let interp_calls_src ~calls =
  Printf.sprintf
    {|
fn leaf(a: i64, b: i64) -> i64 {
    let mut x = a + b;
    let mut y = x * 2;
    let mut z = y - a;
    let mut w = z + x;
    return w - y;
}

fn main() {
    let mut i = 0;
    let mut acc = 0;
    while i < %d {
        let mut t = leaf(i, acc);
        acc = acc + t - t + 1;
        i = i + 1;
    }
    print(acc);
}
|}
    calls

let interp_workloads =
  [ ("alloc-heavy", interp_alloc_src ~blocks:3000);
    ("pointer-chase", interp_chase_src ~nodes:250 ~rounds:40);
    ("race-check", interp_race_src ~iters:1200);
    ("call-locals", interp_calls_src ~calls:4000) ]

let interp_run ?(seed = 1) ?(engine = Miri.Machine.default_config.Miri.Machine.engine)
    src =
  let program = Minirust.Parser.parse src in
  match Minirust.Typecheck.check program with
  | Error errs ->
    failwith ("interp workload does not typecheck: " ^ Minirust.Typecheck.errors_to_string errs)
  | Ok info ->
    let config =
      { Miri.Machine.default_config with Miri.Machine.seed; max_steps = 500_000_000;
        engine }
    in
    Miri.Machine.run ~config program info

let bench_file = "BENCH_interp.json"

let interp () =
  section "interp — interpreter hot-path microbenchmarks (real wall-clock)";
  (* Interleave the tree-walk and bytecode timings round by round (same warm
     state, same GC phase, like obs-overhead does) and keep the per-engine
     minimum: back-to-back blocks would flatter whichever engine ran second
     on a freshly warmed cache. The interpreter is deterministic, so min
     wall-clock is the least noisy estimator. *)
  let time f =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let measure src =
    let run_tree () = interp_run ~engine:Miri.Machine.Tree_walk src in
    let run_vm () = interp_run ~engine:Miri.Machine.Bytecode src in
    let rt = run_tree () in
    let rv = run_vm () in
    if rt.Miri.Machine.steps <> rv.Miri.Machine.steps then
      failwith
        (Printf.sprintf "engine step divergence: tree %d vs bytecode %d"
           rt.Miri.Machine.steps rv.Miri.Machine.steps);
    let tree = ref infinity and vm = ref infinity in
    for _ = 1 to 5 do
      tree := min !tree (time run_tree);
      vm := min !vm (time run_vm)
    done;
    (!vm, !tree, rv.Miri.Machine.steps)
  in
  let rows =
    List.map
      (fun (name, src) ->
        let t, tree_t, steps = measure src in
        (name, t, tree_t, steps))
      interp_workloads
  in
  (* preserve the first recorded run as the baseline forever: the committed
     file carries the before/after trajectory of the memory-core overhauls *)
  let open Rb_util.Json in
  let previous =
    if Sys.file_exists bench_file then
      let ic = open_in_bin bench_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Result.to_option (parse s)
    else None
  in
  let baseline =
    match previous with
    | Some j -> (
      match member "baseline" j with
      | Some (Obj _ as b) -> Some b
      | _ -> member "current" j)
    | None -> None
  in
  (* the tree-walker numbers this file last recorded as "current" — pinned
     once, at the bytecode transition, so the tree->bytecode delta stays on
     record alongside the original pre-memory-overhaul baseline *)
  let previous_current =
    match previous with
    | Some j -> (
      match member "previous_current" j with
      | Some (Obj _ as p) -> Some p
      | _ -> ( match member "current" j with Some (Obj _ as p) -> Some p | _ -> None))
    | None -> None
  in
  let current =
    Obj
      (List.map
         (fun (name, t, _, steps) ->
           (name, Obj [ ("ms", Num (1000.0 *. t)); ("steps", Num (float_of_int steps)) ]))
         rows)
  in
  let tree_walk =
    Obj (List.map (fun (name, _, tree_t, _) -> (name, Obj [ ("ms", Num (1000.0 *. tree_t)) ])) rows)
  in
  let speedup_against key doc_opt =
    match doc_opt with
    | Some b ->
      let ratios =
        List.filter_map
          (fun (name, t, _, _) ->
            match Option.bind (member name b) (member "ms") with
            | Some (Num before_ms) when t > 0.0 ->
              Some (name, Num (before_ms /. (1000.0 *. t)))
            | _ -> None)
          rows
      in
      if ratios = [] then [] else [ (key, Obj ratios) ]
    | None -> []
  in
  let speedup = speedup_against "speedup" baseline in
  let speedup_prev = speedup_against "speedup_vs_previous" previous_current in
  let doc =
    Obj
      ((("campaign", Str "interp")
        :: (match baseline with Some b -> [ ("baseline", b) ] | None -> []))
      @ (match previous_current with Some p -> [ ("previous_current", p) ] | None -> [])
      @ [ ("current", current); ("tree_walk", tree_walk) ]
      @ speedup @ speedup_prev)
  in
  Rb_util.Fsfile.write_atomic bench_file (to_string doc ^ "\n");
  let fmt_ratio key name =
    let table = match key with "speedup" -> speedup | _ -> speedup_prev in
    match table with
    | [ (_, Obj ratios) ] -> (
      match List.assoc_opt name ratios with
      | Some (Num x) -> Printf.sprintf "%.2fx" x
      | _ -> "-")
    | _ -> "-"
  in
  print_string
    (Statkit.Table.render
       ~header:
         [ "workload"; "bytecode(ms)"; "tree-walk(ms)"; "steps"; "vs tree";
           "vs baseline" ]
       (List.map
          (fun (name, t, tree_t, steps) ->
            [ name; Printf.sprintf "%.1f" (1000.0 *. t);
              Printf.sprintf "%.1f" (1000.0 *. tree_t); string_of_int steps;
              (if t > 0.0 then Printf.sprintf "%.2fx" (tree_t /. t) else "-");
              fmt_ratio "speedup" name ])
          rows));
  (match speedup_prev with
  | [ (_, Obj ratios) ] ->
    let vals =
      List.filter_map (function _, Num x when x > 0.0 -> Some x | _ -> None) ratios
    in
    if vals <> [] then
      let g =
        exp (List.fold_left (fun a x -> a +. log x) 0.0 vals
             /. float_of_int (List.length vals))
      in
      Printf.printf "\ngeomean speedup vs previous current: %.2fx\n" g
  | _ -> ());
  Printf.printf "\nresults written to %s\n" bench_file

(* -- interp smoke gate (dune runtest alias interp-smoke) ---------------- *)

(* Tiny fixed-seed versions of the interp workloads plus one UB probe,
   asserting exact outcomes, print traces, step counts and diagnostic
   strings — a representation-change tripwire, not a timing test. The
   expected strings below were recorded from the pre-overhaul interpreter
   and are part of the diagnostics-stability contract. *)

let interp_smoke_expect =
  [ ("alloc-smoke", interp_alloc_src ~blocks:40,
     "finished", [ "1060" ], 1325);
    ("chase-smoke", interp_chase_src ~nodes:12 ~rounds:4,
     "finished", [ "264" ], 357);
    ("race-smoke", interp_race_src ~iters:50,
     "finished", [ "300" ], 620);
    ("calls-smoke", interp_calls_src ~calls:60,
     "finished", [ "60" ], 545) ]

let interp_smoke_ub_src =
  {|
fn main() {
    unsafe {
        let mut p = alloc(8, 8) as *mut i64;
        *p = 7;
        let mut a = p as i64;
        dealloc(p as *mut i8, 8, 8);
        let mut q = a as *mut i64;
        print(*q);
    }
}
|}

let interp_smoke_ub_expect =
  "UB(dangling pointer) in thread 0: use of deallocated memory (allocation 1 at address 4104)"

let interp_smoke () =
  section "Interp smoke — fixed-seed workload outcomes and diagnostics";
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL %s\n" s; incr failures) fmt in
  List.iter
    (fun (name, src, want_outcome, want_output, want_steps) ->
      let r = interp_run src in
      let outcome =
        match r.Miri.Machine.outcome with
        | Miri.Machine.Finished -> "finished"
        | Miri.Machine.Panicked m -> "panicked: " ^ m
        | Miri.Machine.Ub d -> Miri.Diag.to_string d
        | Miri.Machine.Step_limit -> "step limit"
        | Miri.Machine.Resource_limit m -> "resource limit: " ^ m
      in
      if outcome <> want_outcome then
        fail "%s: outcome %S (want %S)" name outcome want_outcome;
      if r.Miri.Machine.output <> want_output then
        fail "%s: output [%s] (want [%s])" name
          (String.concat "; " r.Miri.Machine.output)
          (String.concat "; " want_output);
      if r.Miri.Machine.diags <> [] then
        fail "%s: unexpected diagnostics" name;
      if r.Miri.Machine.steps <> want_steps then
        fail "%s: steps %d (want %d)" name r.Miri.Machine.steps want_steps;
      Printf.printf "%-14s %s output=[%s] steps=%d\n" name outcome
        (String.concat "; " r.Miri.Machine.output) r.Miri.Machine.steps)
    interp_smoke_expect;
  (let r = interp_run interp_smoke_ub_src in
   match r.Miri.Machine.outcome with
   | Miri.Machine.Ub d ->
     let got = Miri.Diag.to_string d in
     if got <> interp_smoke_ub_expect then
       fail "ub-smoke: diag %S (want %S)" got interp_smoke_ub_expect;
     Printf.printf "%-14s %s\n" "ub-smoke" got
   | _ -> fail "ub-smoke: expected a UB outcome");
  if !failures > 0 then exit 1;
  print_endline "interp smoke ok"

(* -- bytecode differential gate (dune runtest alias bytecode-smoke) ----- *)

(* Every corpus case (buggy and fixed, Stop_first and Collect, tracing on)
   plus the interp workloads across scheduler seeds, executed by both the
   bytecode VM and the tree-walker; every observable — outcome, print
   trace, diagnostic strings, borrow/allocation events, step and error
   counts — must be byte-identical. This is the differential contract that
   lets the default engine be the VM while the golden corpus stays the
   single source of expected diagnostics. *)

let bytecode_smoke () =
  section "Bytecode smoke — VM vs tree-walker differential gate";
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL %s\n" s; incr failures) fmt in
  let render (r : Miri.Machine.run_result) =
    let b = Buffer.create 256 in
    let outcome =
      match r.Miri.Machine.outcome with
      | Miri.Machine.Finished -> "finished"
      | Miri.Machine.Panicked m -> "panicked: " ^ m
      | Miri.Machine.Ub d -> "ub: " ^ Miri.Diag.to_string d
      | Miri.Machine.Step_limit -> "step-limit"
      | Miri.Machine.Resource_limit m -> "resource-limit: " ^ m
    in
    Buffer.add_string b
      (Printf.sprintf "outcome: %s\nsteps: %d errors: %d\n" outcome
         r.Miri.Machine.steps r.Miri.Machine.error_count);
    List.iter (fun s -> Buffer.add_string b ("out: " ^ s ^ "\n")) r.Miri.Machine.output;
    List.iter
      (fun d -> Buffer.add_string b ("diag: " ^ Miri.Diag.to_string d ^ "\n"))
      r.Miri.Machine.diags;
    List.iter (fun e -> Buffer.add_string b ("event: " ^ e ^ "\n")) r.Miri.Machine.events;
    Buffer.contents b
  in
  let first_divergence want got =
    let wl = String.split_on_char '\n' want and gl = String.split_on_char '\n' got in
    let rec go i = function
      | w :: ws, g :: gs -> if w = g then go (i + 1) (ws, gs) else (i, w, g)
      | w :: _, [] -> (i, w, "<end>")
      | [], g :: _ -> (i, "<end>", g)
      | [], [] -> (i, "", "")
    in
    go 1 (wl, gl)
  in
  let checked = ref 0 in
  let check ?(max_steps = Miri.Machine.default_config.Miri.Machine.max_steps) label
      src ~mode ~seed ~inputs ~trace =
    let program = Minirust.Parser.parse src in
    match Minirust.Typecheck.check program with
    | Error _ -> ()  (* differential gate only covers well-typed programs *)
    | Ok info ->
      let config engine =
        { Miri.Machine.default_config with
          Miri.Machine.mode; seed; inputs; trace; max_steps; engine }
      in
      let tree =
        render (Miri.Machine.run ~config:(config Miri.Machine.Tree_walk) program info)
      in
      let vm =
        render (Miri.Machine.run ~config:(config Miri.Machine.Bytecode) program info)
      in
      incr checked;
      if tree <> vm then begin
        let line, w, g = first_divergence tree vm in
        fail "%s: engines diverge at line %d\n  tree:     %s\n  bytecode: %s" label
          line w g
      end
  in
  List.iter
    (fun (c : Dataset.Case.t) ->
      let inputs = match c.Dataset.Case.probes with p :: _ -> p | [] -> [||] in
      List.iter
        (fun (variant, src) ->
          List.iter
            (fun (mode_name, mode) ->
              check
                (Printf.sprintf "%s/%s/%s" c.Dataset.Case.name variant mode_name)
                src ~mode ~seed:1 ~inputs ~trace:true)
            [ ("stop-first", Miri.Machine.Stop_first);
              ("collect-5", Miri.Machine.Collect 5) ])
        [ ("buggy", c.Dataset.Case.buggy_src); ("fixed", c.Dataset.Case.fixed_src) ])
    Dataset.Corpus.all;
  List.iter
    (fun (name, src) ->
      List.iter
        (fun seed ->
          check ~max_steps:500_000_000
            (Printf.sprintf "%s/seed-%d" name seed)
            src ~mode:Miri.Machine.Stop_first ~seed ~inputs:[||] ~trace:false)
        [ 1; 2; 7 ])
    (("ub-probe", interp_smoke_ub_src) :: interp_workloads);
  Printf.printf "compared %d program runs across both engines\n" !checked;
  if !failures > 0 then exit 1;
  print_endline "bytecode smoke ok"

(* -- trace smoke gate (dune runtest alias trace-smoke) ------------------ *)

(* Determinism contract of the observability layer: a seeded campaign's
   JSONL trace is byte-identical run to run (simulated timestamps only,
   per-job buffers folded in job order), and turning tracing on changes
   no report. Exercised at domains=2 so the per-domain buffer fold and the
   cross-session memo suppression are actually in play. *)
let trace_smoke () =
  section "Trace smoke — deterministic campaign traces; tracing invisible to reports";
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL %s\n" s; incr failures) fmt in
  let cases = List.filteri (fun i _ -> i mod 8 = 0) Dataset.Corpus.all in
  let runner = Exec.Backends.rustbrain () in
  let traced () =
    let tmp = Filename.temp_file "rb-trace" ".jsonl" in
    let sink = Obs.Trace.file tmp in
    let reports, _ =
      Exec.Scheduler.run_seeded ~domains:2 ~trace:sink runner ~seeds:[ 1; 2 ]
        cases
    in
    Obs.Trace.close sink;
    let contents = Option.value ~default:"" (Rb_util.Fsfile.read tmp) in
    Sys.remove tmp;
    (contents, List.map Rustbrain.Report.to_json reports)
  in
  let t1, r1 = traced () in
  let t2, r2 = traced () in
  if t1 = "" then fail "trace file empty";
  if t1 <> t2 then fail "trace not byte-identical across identical seeded runs";
  if r1 <> r2 then fail "reports differ between traced runs";
  let plain, _ =
    Exec.Scheduler.run_seeded ~domains:2 runner ~seeds:[ 1; 2 ] cases
  in
  if List.map Rustbrain.Report.to_json plain <> r1 then
    fail "tracing changed the reports";
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' t1) in
  let parsed =
    List.filter_map
      (fun l ->
        match Obs.Trace.of_jsonl l with
        | Ok r -> Some r
        | Error e ->
          fail "unparseable trace line (%s): %s" e l;
          None)
      lines
  in
  List.iter
    (fun want ->
      if
        not
          (List.exists
             (fun (r : Obs.Trace.record) -> r.Obs.Trace.name = want)
             parsed)
      then fail "no %S record in the trace" want)
    [ "campaign-start"; "job-start"; "parse"; "typecheck"; "interpret";
      "fast-think"; "slow-think"; "re-verify"; "llm-call"; "interp";
      "repair"; "job-end"; "scheduler" ];
  if !failures > 0 then exit 1;
  Printf.printf "trace smoke ok (%d records, %d cases x 2 seeds)\n"
    (List.length parsed) (List.length cases)

(* -- obs-overhead (BENCH_obs.json, committed before/after) -------------- *)

let obs_bench_file = "BENCH_obs.json"

(* Wall-clock cost of the observability layer on the interp workloads.
   "off" is the shipping configuration — no ambient sink, every in_span /
   note gate resolving to a DLS read and a None match — and is held
   against the PR-4 interpreter numbers (seeded from BENCH_interp.json's
   current run the first time this is recorded; target < 2% regression).
   "live" attaches an in-memory ring sink to bound the worst case. *)
let obs_overhead () =
  section "obs-overhead — observability cost on the interp workloads (real wall-clock)";
  (* Interleave the off/live timings round by round (same warm state, same
     GC phase) and keep the per-variant minimum — min-of-n is robust to the
     one-sided noise of a shared container. *)
  let time f =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let rows =
    List.map
      (fun (name, src) ->
        let run_off () = interp_run src in
        let run_live () =
          let sink, _ = Obs.Trace.memory ~ring:4096 () in
          Obs.Trace.with_ambient sink (fun () -> interp_run src)
        in
        ignore (run_off ());
        ignore (run_live ());
        let off = ref infinity and live = ref infinity in
        for _ = 1 to 7 do
          off := min !off (time run_off);
          live := min !live (time run_live)
        done;
        (name, !off, !live))
      interp_workloads
  in
  let open Rb_util.Json in
  let read_json path =
    if Sys.file_exists path then
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Result.to_option (parse s)
    else None
  in
  let baseline =
    match read_json obs_bench_file with
    | Some j -> (
      match member "baseline" j with
      | Some (Obj _ as b) -> Some b
      | _ -> member "current" j)
    | None -> (
      (* first recording: the pre-obs interpreter numbers are the baseline *)
      match Option.bind (read_json bench_file) (member "current") with
      | Some (Obj entries) ->
        Some
          (Obj
             (List.filter_map
                (fun (name, v) ->
                  Option.map
                    (fun ms -> (name, Obj [ ("off_ms", ms) ]))
                    (member "ms" v))
                entries))
      | _ -> None)
  in
  let current =
    Obj
      (List.map
         (fun (name, off, live) ->
           ( name,
             Obj
               [ ("off_ms", Num (1000.0 *. off));
                 ("live_ms", Num (1000.0 *. live));
                 ( "live_overhead_pct",
                   Num
                     (if off > 0.0 then 100.0 *. (live -. off) /. off else 0.0)
                 ) ] ))
         rows)
  in
  let regression_of name off =
    match
      Option.bind baseline (fun b ->
          Option.bind (member name b) (member "off_ms"))
    with
    | Some (Num before_ms) when before_ms > 0.0 ->
      Some (100.0 *. (((1000.0 *. off) -. before_ms) /. before_ms))
    | _ -> None
  in
  let regression =
    let rs =
      List.filter_map
        (fun (name, off, _) ->
          Option.map (fun p -> (name, Num p)) (regression_of name off))
        rows
    in
    if rs = [] then [] else [ ("off_regression_pct", Obj rs) ]
  in
  let doc =
    Obj
      ((("campaign", Str "obs-overhead")
        :: (match baseline with Some b -> [ ("baseline", b) ] | None -> []))
      @ [ ("current", current) ]
      @ regression)
  in
  Rb_util.Fsfile.write_atomic obs_bench_file (to_string doc ^ "\n");
  print_string
    (Statkit.Table.render
       ~header:
         [ "workload"; "off(ms)"; "live(ms)"; "live overhead"; "off vs baseline" ]
       (List.map
          (fun (name, off, live) ->
            [ name;
              Printf.sprintf "%.1f" (1000.0 *. off);
              Printf.sprintf "%.1f" (1000.0 *. live);
              Printf.sprintf "%+.1f%%"
                (if off > 0.0 then 100.0 *. (live -. off) /. off else 0.0);
              (match regression_of name off with
              | Some p -> Printf.sprintf "%+.1f%%" p
              | None -> "-") ])
          rows));
  Printf.printf "\nresults written to %s (target: off within 2%% of baseline)\n"
    obs_bench_file

(* -- component ablation (DESIGN.md's starred design choices) ----------- *)

let ablate () =
  section "Ablation — removing one RustBrain component at a time (GPT-4, full corpus)";
  let cases = Dataset.Corpus.all in
  let base seed = rustbrain_cfg ~seed () in
  let variants =
    [ ("full RustBrain", fun seed -> base seed);
      ("- knowledge base", fun seed -> { (base seed) with Rustbrain.Pipeline.use_kb = false });
      ("- feedback (S3)", fun seed -> { (base seed) with Rustbrain.Pipeline.use_feedback = false });
      ("- adaptive rollback",
       fun seed -> { (base seed) with Rustbrain.Pipeline.rollback = Rustbrain.Slow_think.No_rollback });
      ("- abstract reasoning",
       fun seed -> { (base seed) with Rustbrain.Pipeline.enable_abstract = false });
      ("- replace agent", fun seed -> { (base seed) with Rustbrain.Pipeline.enable_replace = false });
      ("- assert agent", fun seed -> { (base seed) with Rustbrain.Pipeline.enable_assert = false });
      ("- modify agent", fun seed -> { (base seed) with Rustbrain.Pipeline.enable_modify = false });
      ("single solution only",
       fun seed -> { (base seed) with Rustbrain.Pipeline.max_solutions = 1 });
      ("2 iterations only", fun seed -> { (base seed) with Rustbrain.Pipeline.max_iters = 2 }) ]
  in
  let rows =
    List.map
      (fun (name, cfg_of) ->
        let reports = run_campaign (Exec.Backends.rustbrain ~config:(cfg_of 1) ()) cases in
        let r = rates_of reports in
        let iters =
          Statkit.Stats.mean
            (List.map (fun (rep : Rustbrain.Report.t) -> float_of_int rep.Rustbrain.Report.iterations) reports)
        in
        [ name; Statkit.Table.pct r.pass; Statkit.Table.pct r.exec;
          Statkit.Table.secs r.mean_seconds; Printf.sprintf "%.1f" iters ])
      variants
  in
  print_string
    (Statkit.Table.render
       ~header:[ "variant"; "pass"; "exec"; "time(s)"; "mean iters" ]
       rows)

(* -- serve: campaign-as-a-service smoke + load bench -------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* serve state nests (queue/, results/, jobs/job-N/), so the flat
   with_journal_dir cleanup is not enough *)
let with_serve_dir f =
  let dir = Filename.temp_file "rustbrain-serve" "" in
  Sys.remove dir;
  Rb_util.Fsfile.mkdir_p dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* The bench binary re-execs itself as the server process ("serve-child"
   argv mode, dispatched in the driver below) so the smoke gate can
   kill -9 a real server process mid-campaign — the crash the durable
   admission contract is written against, not a simulated one. In
   ["workers"] pool mode the server in turn re-execs this binary as
   "worker-child" processes, one per job attempt. *)
let worker_argv_of_pool pool =
  if String.equal pool "workers" then
    Some [| Sys.executable_name; "worker-child" |]
  else None

let spawn_server ?(pool = "in-process") ~socket ~state ~runners () =
  Unix.create_process Sys.executable_name
    [| Sys.executable_name; "serve-child"; socket; state;
       string_of_int runners; pool |]
    Unix.stdin Unix.stdout Unix.stderr

let serve_child ~socket ~state ~runners ~pool =
  let cfg =
    { Serve.Server.default_config with
      Serve.Server.socket; state_dir = state; runners; tick_s = 0.002;
      worker_argv = worker_argv_of_pool pool }
  in
  ignore (Serve.Server.run cfg : Serve.Server.summary)

let wait_exit pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  wait_exit pid

let serve_smoke_cases = List.filteri (fun i _ -> i mod 5 = 0) Dataset.Corpus.all

let serve_smoke_opts =
  { Exec.Campaign_opts.default with Exec.Campaign_opts.seeds = [ 1; 2 ] }

let serve_smoke () =
  section
    "Serve smoke — durable admission, kill -9 mid-campaign, byte-identical resume";
  let failures = ref 0 in
  let failf fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "FAIL %s\n" s;
        incr failures)
      fmt
  in
  let names =
    List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) serve_smoke_cases
  in
  let total = List.length names * 2 in
  (* 1. reference: the same job on an uninterrupted server *)
  let reference =
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let pid = spawn_server ~socket ~state ~runners:1 () in
        Fun.protect ~finally:(fun () -> kill_server pid)
          (fun () ->
            match Serve.Client.connect socket with
            | Error e ->
              failf "reference connect: %s" e;
              None
            | Ok c ->
              let out =
                match
                  Serve.Client.run_job c ~tenant:"smoke" ~backend:"rustbrain"
                    ~cases:(Some names) ~opts:(Some serve_smoke_opts)
                with
                | Error e ->
                  failf "reference job: %s" e;
                  None
                | Ok ((cases, _passed, failed), frames) ->
                  (match failed with
                  | Some m -> failf "reference job failed: %s" m
                  | None -> ());
                  if cases <> total then
                    failf "reference: %d case(s), want %d" cases total;
                  if List.length frames <> total then
                    failf "reference: %d CASE frame(s), want %d"
                      (List.length frames) total;
                  let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
                  Rb_util.Fsfile.read (Serve.Store.results_path store 0)
              in
              ignore
                (Serve.Client.request c Serve.Wire.Shutdown
                  : (Serve.Wire.response, string) result);
              Serve.Client.close c;
              out))
  in
  (match reference with
  | None -> failf "no reference results"
  | Some ref_bytes ->
    (* 2. same job, server killed -9 mid-campaign, restarted on the same
       state dir: the accepted job must finish with byte-identical stitched
       results *)
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let pid = spawn_server ~socket ~state ~runners:1 () in
        let killed =
          Fun.protect ~finally:(fun () -> kill_server pid)
            (fun () ->
              match Serve.Client.connect socket with
              | Error e ->
                failf "kill-run connect: %s" e;
                false
              | Ok c ->
                Fun.protect ~finally:(fun () -> Serve.Client.close c)
                  (fun () ->
                    match
                      Serve.Client.request c
                        (Serve.Wire.Submit
                           { tenant = "smoke"; backend = "rustbrain";
                             cases = Some names;
                             opts = Some serve_smoke_opts })
                    with
                    | Ok (Serve.Wire.Accepted { id = 0; _ }) ->
                      (* ACCEPTED means durable: the record must already be
                         scannable on disk *)
                      let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
                      (match Serve.Store.pending store with
                      | [ s ] when s.Serve.Store.id = 0 -> ()
                      | _ -> failf "accepted job not durable at ACCEPTED time");
                      (* kill once at least two repairs are journaled but the
                         job is still in flight *)
                      let rec wait_mid tries =
                        if tries <= 0 then false
                        else if Serve.Store.progress store 0 >= 2 then true
                        else begin
                          Unix.sleepf 0.002;
                          wait_mid (tries - 1)
                        end
                      in
                      if not (wait_mid 10_000) then begin
                        failf "no journal progress before the kill window";
                        false
                      end
                      else begin
                        Unix.kill pid Sys.sigkill;
                        wait_exit pid;
                        if Serve.Store.progress store 0 >= total then
                          print_endline
                            "note: job already complete at kill time";
                        true
                      end
                    | Ok r ->
                      failf "kill-run submit: unexpected %s"
                        (Serve.Wire.response_to_string r);
                      false
                    | Error e ->
                      failf "kill-run submit: %s" e;
                      false))
        in
        if killed then begin
          let pid2 = spawn_server ~socket ~state ~runners:1 () in
          Fun.protect ~finally:(fun () -> kill_server pid2)
            (fun () ->
              match Serve.Client.connect socket with
              | Error e -> failf "restart connect: %s" e
              | Ok c ->
                Fun.protect ~finally:(fun () -> Serve.Client.close c)
                  (fun () ->
                    let rec poll tries =
                      if tries <= 0 then failf "resumed job never finished"
                      else
                        match
                          Serve.Client.request c (Serve.Wire.Status (Some 0))
                        with
                        | Ok
                            (Serve.Wire.Job
                               { state =
                                   Serve.Wire.Finished { cases; failed; _ };
                                 _ }) ->
                          (match failed with
                          | Some m -> failf "resumed job failed: %s" m
                          | None -> ());
                          if cases <> total then
                            failf "resumed: %d case(s), want %d" cases total
                        | Ok _ ->
                          Unix.sleepf 0.01;
                          poll (tries - 1)
                        | Error e -> failf "restart status: %s" e
                    in
                    poll 6000;
                    let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
                    (match
                       Rb_util.Fsfile.read (Serve.Store.results_path store 0)
                     with
                    | Some bytes when String.equal bytes ref_bytes -> ()
                    | Some _ ->
                      failf
                        "resumed stitched results differ from the \
                         uninterrupted run"
                    | None -> failf "resumed results file missing");
                    (* RESULTS must re-stream the durable reports *)
                    (match Serve.Client.request c (Serve.Wire.Results 0) with
                    | Ok (Serve.Wire.Case _) ->
                      let rec drain n =
                        match Serve.Client.recv c with
                        | Ok (Serve.Wire.Case _) -> drain (n + 1)
                        | Ok (Serve.Wire.Done _) -> n
                        | Ok r ->
                          failf "RESULTS drain: unexpected %s"
                            (Serve.Wire.response_to_string r);
                          n
                        | Error e ->
                          failf "RESULTS drain: %s" e;
                          n
                      in
                      let n = drain 1 in
                      if n <> total then
                        failf "RESULTS streamed %d frame(s), want %d" n total
                    | Ok r ->
                      failf "RESULTS: unexpected %s"
                        (Serve.Wire.response_to_string r)
                    | Error e -> failf "RESULTS: %s" e);
                    ignore
                      (Serve.Client.request c Serve.Wire.Shutdown
                        : (Serve.Wire.response, string) result)))
        end));
  if !failures > 0 then exit 1;
  Printf.printf
    "serve smoke ok: %d case-repairs accepted durably, killed -9 mid-campaign, \
     resumed byte-identical\n"
    total

(* -- chaos-serve gate (dune runtest alias chaos-serve) ------------------ *)

(* The chaos child is a real server process with the poison plan armed:
   named cases reliably kill the whole process ("exit" on the in-process
   pool), hang their runner forever ("hang"), or — under the "workers"
   pool — SIGSTOP/SIGKILL/OOM the worker process mid-job, the crash
   vectors only true preemption can reclaim. Everything else is the
   production configuration; only the watchdog clocks (and in workers
   mode the crash budget and memory cap) are scaled down so the
   escalation ladder runs in test time. *)
let chaos_worker_max_crashes = 2
let chaos_worker_stall_s = 2.0
let chaos_worker_grace_s = 0.4
let chaos_worker_mem_mb = 512

(* "case-a=stop,case-b=oom" -> a declarative poison plan; entries with
   unknown labels are dropped *)
let parse_poison_spec spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun part ->
       match String.index_opt part '=' with
       | Some i ->
         let case = String.sub part 0 i in
         let label =
           String.sub part (i + 1) (String.length part - i - 1)
         in
         Option.map (fun m -> (case, m)) (Serve.Jobrun.poison_of_label label)
       | None -> None)

let chaos_child ~socket ~state ~runners ~poison_spec ~mode =
  let workers = String.equal mode "workers" in
  (* hang/workers modes shorten the watchdog clocks so the escalation
     ladder runs in test time — but the stall deadline must still clear a
     real case repair with margin, or the watchdog kills honest jobs *)
  let stall, grace =
    match mode with
    | "hang" -> (2.0, 0.2)
    | "workers" -> (chaos_worker_stall_s, chaos_worker_grace_s)
    | _ -> (300.0, 1.0)
  in
  let cfg =
    { Serve.Server.default_config with
      Serve.Server.socket; state_dir = state; runners; tick_s = 0.002;
      stall_timeout_s = stall; abandon_grace_s = grace;
      max_crashes =
        (if workers then chaos_worker_max_crashes
         else Serve.Server.default_config.Serve.Server.max_crashes);
      poison = parse_poison_spec poison_spec;
      worker_argv =
        (if workers then worker_argv_of_pool "workers" else None);
      worker_mem_mb = (if workers then chaos_worker_mem_mb else 0) }
  in
  ignore (Serve.Server.run cfg : Serve.Server.summary)

let spawn_chaos ~socket ~state ~runners ~poison_spec ~mode =
  Unix.create_process Sys.executable_name
    [| Sys.executable_name; "chaos-child"; socket; state;
       string_of_int runners; poison_spec; mode |]
    Unix.stdin Unix.stdout Unix.stderr

(* WNOHANG poll with a deadline, so a wedged server fails the gate instead
   of hanging runtest *)
let wait_status ~timeout_s pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.01;
        go ()
      end
    | _, st -> Some st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> None
  in
  go ()

let chaos_serve () =
  section
    "Chaos serve — seeded client faults, kill -9 matrix, poison quarantine, \
     clean drain";
  let failures = ref 0 in
  let failf fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "FAIL %s\n" s;
        incr failures)
      fmt
  in
  let names =
    List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) serve_smoke_cases
  in
  if List.length names < 5 then failf "corpus too small for the chaos gate";
  let nth = List.nth names in
  let poison_case = nth 0 in
  let normal_jobs = [ [ nth 1; nth 2 ]; [ nth 3; nth 4 ] ] in
  let opts =
    { Exec.Campaign_opts.default with Exec.Campaign_opts.seeds = [ 1 ] }
  in
  let max_crashes = Serve.Server.default_config.Serve.Server.max_crashes in
  (* 1. reference bytes for each normal job on an untouched server: the
     chaos run's non-poisoned results must be byte-identical to these *)
  let reference =
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let pid = spawn_server ~socket ~state ~runners:1 () in
        Fun.protect ~finally:(fun () -> kill_server pid)
          (fun () ->
            match Serve.Client.connect socket with
            | Error e ->
              failf "chaos reference connect: %s" e;
              []
            | Ok c ->
              Fun.protect ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  let bytes =
                    List.mapi
                      (fun i cases ->
                        match
                          Serve.Client.run_job c ~tenant:"chaos"
                            ~backend:"rustbrain" ~cases:(Some cases)
                            ~opts:(Some opts)
                        with
                        | Error e ->
                          failf "chaos reference job %d: %s" i e;
                          None
                        | Ok ((_, _, failed), _) ->
                          (match failed with
                          | Some m ->
                            failf "chaos reference job %d failed: %s" i m
                          | None -> ());
                          let store =
                            Serve.Store.open_dir ~scrub:false ~dir:state ()
                          in
                          Rb_util.Fsfile.read
                            (Serve.Store.results_path store i))
                      normal_jobs
                  in
                  ignore
                    (Serve.Client.request c Serve.Wire.Shutdown
                      : (Serve.Wire.response, string) result);
                  bytes)))
  in
  (* 2. the kill matrix: two normal jobs and one poison job on a server
     whose poison case _exit(66)s the whole process mid-case, plus one
     external kill -9 while a normal job is mid-journal. With one runner
     at most one attempt is open per kill, so only the poison job can
     spend the crash budget; the normal jobs must resume to byte-identical
     results, and the poison job must be quarantined after exactly
     [max_crashes] crashes. *)
  with_serve_dir (fun dir ->
      let socket = Filename.concat dir "sock" in
      let state = Filename.concat dir "state" in
      let spawn () =
        spawn_chaos ~socket ~state ~runners:1 ~poison_spec:(poison_case ^ "=exit") ~mode:"exit"
      in
      let pid0 = spawn () in
      let submitted =
        match Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 socket with
        | Error e ->
          failf "chaos submit connect: %s" e;
          kill_server pid0;
          false
        | Ok c ->
          Fun.protect ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              let submit i cases =
                match
                  Serve.Client.request c
                    (Serve.Wire.Submit
                       { tenant = "chaos"; backend = "rustbrain";
                         cases = Some cases; opts = Some opts })
                with
                | Ok (Serve.Wire.Accepted { id; _ }) when id = i -> true
                | Ok r ->
                  failf "chaos submit %d: unexpected %s" i
                    (Serve.Wire.response_to_string r);
                  false
                | Error e ->
                  failf "chaos submit %d: %s" i e;
                  false
              in
              List.for_all Fun.id (List.mapi submit normal_jobs)
              && submit 2 [ poison_case ])
      in
      if submitted then begin
        (* external SIGKILL point: once at least one case of job 0 is
           journaled, kill -9 the whole server *)
        let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
        let rec wait_mid tries =
          if tries <= 0 then false
          else if Serve.Store.progress store 0 >= 1 then true
          else begin
            Unix.sleepf 0.002;
            wait_mid (tries - 1)
          end
        in
        if not (wait_mid 20_000) then
          failf "chaos: no journal progress before the kill window";
        (try Unix.kill pid0 Sys.sigkill with Unix.Unix_error _ -> ());
        (match wait_status ~timeout_s:30.0 pid0 with
        | Some (Unix.WSIGNALED _) -> ()
        | Some _ | None -> failf "chaos: kill -9 did not take");
        (* restart loop: each dispatch of the poison job _exit(66)s the
           server; after [max_crashes] the startup scrub quarantines it
           and the server finally stays up with every job terminal *)
        let rec drive restarts pid =
          if restarts > max_crashes + 3 then begin
            failf "chaos: %d restarts without quarantine convergence"
              restarts;
            kill_server pid;
            None
          end
          else begin
            let deadline = Unix.gettimeofday () +. 120.0 in
            let rec poll () =
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ ->
                let st = Serve.Store.open_dir ~scrub:false ~dir:state () in
                let terminal id =
                  match Serve.Store.status st id with
                  | Some (Serve.Store.Done _) | Some (Serve.Store.Quarantined _)
                    ->
                    true
                  | _ -> false
                in
                if terminal 0 && terminal 1 && terminal 2 then `Done
                else if Unix.gettimeofday () > deadline then `Stuck
                else begin
                  Unix.sleepf 0.02;
                  poll ()
                end
              | _, Unix.WEXITED 66 -> `Died
              | _, _ -> `Bad
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
            in
            match poll () with
            | `Done -> Some pid
            | `Died -> drive (restarts + 1) (spawn ())
            | `Stuck ->
              failf "chaos: jobs never reached a terminal state";
              kill_server pid;
              None
            | `Bad ->
              failf "chaos: server died outside the poison exit";
              None
          end
        in
        match drive 0 (spawn ()) with
        | None -> ()
        | Some pid ->
          let reaped = ref false in
          Fun.protect
            ~finally:(fun () -> if not !reaped then kill_server pid)
            (fun () ->
              (* seeded client-fault plan against the survivor: after every
                 fault a fresh connection must still get a clean STATUS *)
              let seed = 0xC040 in
              let steps = 12 in
              Printf.printf "chaos plan (seed %#x): %s\n" seed
                (String.concat " "
                   (List.map Serve.Chaos.fault_label
                      (Serve.Chaos.plan ~seed ~steps)));
              let outcome = Serve.Chaos.run ~socket ~seed ~steps () in
              List.iter
                (fun (r : Serve.Chaos.step_result) ->
                  if not r.Serve.Chaos.probe_ok then
                    failf "chaos step %d (%s: %s): server stopped answering"
                      r.Serve.Chaos.step
                      (Serve.Chaos.fault_label r.Serve.Chaos.fault)
                      r.Serve.Chaos.detail)
                outcome.Serve.Chaos.steps;
              (* durable claims *)
              let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
              (match Serve.Store.quarantined store with
              | [ (2, q) ] ->
                if q.Serve.Store.crashes <> max_crashes then
                  failf
                    "chaos: quarantined after %d crash(es), want exactly %d"
                    q.Serve.Store.crashes max_crashes
              | l ->
                failf "chaos: %d quarantine record(s), want exactly 1 (job 2)"
                  (List.length l));
              List.iteri
                (fun i ref_bytes ->
                  match
                    ( ref_bytes,
                      Rb_util.Fsfile.read (Serve.Store.results_path store i) )
                  with
                  | Some a, Some b when String.equal a b -> ()
                  | Some _, Some _ ->
                    failf
                      "chaos: job %d results differ from the uninterrupted \
                       run"
                      i
                  | Some _, None -> failf "chaos: job %d results missing" i
                  | None, _ -> ())
                reference;
              (* wire-level claims on a clean connection, then a drain the
                 server must finish by exiting 0 on its own *)
              (match Serve.Client.connect socket with
              | Error e -> failf "chaos verify connect: %s" e
              | Ok c ->
                Fun.protect ~finally:(fun () -> Serve.Client.close c)
                  (fun () ->
                    (match
                       Serve.Client.request c (Serve.Wire.Status (Some 2))
                     with
                    | Ok
                        (Serve.Wire.Job
                           { state = Serve.Wire.Quarantined { crashes; _ };
                             _ }) ->
                      if crashes <> max_crashes then
                        failf "chaos STATUS: %d crash(es) reported, want %d"
                          crashes max_crashes
                    | Ok r ->
                      failf "chaos STATUS 2: unexpected %s"
                        (Serve.Wire.response_to_string r)
                    | Error e -> failf "chaos STATUS 2: %s" e);
                    (match Serve.Client.request c (Serve.Wire.Results 2) with
                    | Ok
                        (Serve.Wire.Quarantined_result { id = 2; crashes; _ })
                      ->
                      if crashes <> max_crashes then
                        failf
                          "chaos RESULTS terminator: %d crash(es), want %d"
                          crashes max_crashes
                    | Ok r ->
                      failf "chaos RESULTS 2: unexpected %s"
                        (Serve.Wire.response_to_string r)
                    | Error e -> failf "chaos RESULTS 2: %s" e);
                    (match Serve.Client.request c Serve.Wire.Health with
                    | Ok
                        (Serve.Wire.Health
                           { queued; running; quarantined; _ }) ->
                      if queued <> 0 || running <> 0 then
                        failf "chaos HEALTH: %d queued / %d running, want idle"
                          queued running;
                      if quarantined <> 1 then
                        failf "chaos HEALTH: %d quarantined, want 1"
                          quarantined
                    | Ok r ->
                      failf "chaos HEALTH: unexpected %s"
                        (Serve.Wire.response_to_string r)
                    | Error e -> failf "chaos HEALTH: %s" e);
                    (match Serve.Client.request c Serve.Wire.Drain with
                    | Ok (Serve.Wire.Draining { active = 0; queued = 0 }) ->
                      ()
                    | Ok (Serve.Wire.Draining { active; queued }) ->
                      failf
                        "chaos DRAIN: %d active / %d queued at drain time, \
                         want none"
                        active queued
                    | Ok r ->
                      failf "chaos DRAIN: unexpected %s"
                        (Serve.Wire.response_to_string r)
                    | Error e -> failf "chaos DRAIN: %s" e)));
              (match wait_status ~timeout_s:30.0 pid with
              | Some (Unix.WEXITED 0) -> reaped := true
              | Some _ ->
                reaped := true;
                failf "chaos: drained server exited abnormally"
              | None -> failf "chaos: drained server never exited");
              (* after kills, crashes and quarantine the state dir must
                 scan clean: the startup scrubs healed everything healable
                 and nothing unreadable remains in the live tree *)
              let report = Serve.Store.fsck ~heal:false ~dir:state () in
              if Serve.Store.fsck_count `Corrupt report > 0 then
                failf "chaos fsck: %d corrupt record(s)"
                  (Serve.Store.fsck_count `Corrupt report);
              if Serve.Store.fsck_count `Torn report > 0 then
                failf "chaos fsck: %d torn record(s)"
                  (Serve.Store.fsck_count `Torn report))
      end);
  (* 3. watchdog scenario: a case that hangs its runner domain forever.
     Only the stall watchdog and the abandon ladder can reclaim the slot;
     after [max_crashes] abandonments the job must be quarantined without
     the server ever dying, and a normal job queued behind it must still
     finish. *)
  with_serve_dir (fun dir ->
      let socket = Filename.concat dir "sock" in
      let state = Filename.concat dir "state" in
      let pid =
        spawn_chaos ~socket ~state ~runners:1 ~poison_spec:(poison_case ^ "=hang") ~mode:"hang"
      in
      Fun.protect ~finally:(fun () -> kill_server pid)
        (fun () ->
          match
            Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 socket
          with
          | Error e -> failf "hang connect: %s" e
          | Ok sub_c ->
            (* submit on its own connection and close it: a submitting
               connection is subscribed to its jobs' streams, and CASE/DONE
               frames interleaving with STATUS replies would confuse the
               polling loop below *)
            Fun.protect ~finally:(fun () -> Serve.Client.close sub_c)
              (fun () ->
                let submit cases =
                  match
                    Serve.Client.request sub_c
                      (Serve.Wire.Submit
                         { tenant = "chaos"; backend = "rustbrain";
                           cases = Some cases; opts = Some opts })
                  with
                  | Ok (Serve.Wire.Accepted _) -> ()
                  | Ok r ->
                    failf "hang submit: unexpected %s"
                      (Serve.Wire.response_to_string r)
                  | Error e -> failf "hang submit: %s" e
                in
                (* poison first so it takes the slot, then a normal job
                   that must finish behind the hang-abandon cycles *)
                submit [ poison_case ];
                submit [ nth 1; nth 2 ]);
            (match Serve.Client.connect socket with
            | Error e -> failf "hang poll connect: %s" e
            | Ok c ->
              Fun.protect ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  let deadline = Unix.gettimeofday () +. 60.0 in
                  let rec poll id =
                    match
                      Serve.Client.request c (Serve.Wire.Status (Some id))
                    with
                    | Ok
                        (Serve.Wire.Job
                           { state =
                               Serve.Wire.Quarantined { crashes; reason; _ };
                             _ }) ->
                      if id <> 0 then
                        failf "hang: job %d quarantined after %d: %s" id
                          crashes reason
                      else if crashes <> max_crashes then
                        failf
                          "hang: quarantined after %d abandonment(s), want %d"
                          crashes max_crashes
                    | Ok
                        (Serve.Wire.Job
                           { state = Serve.Wire.Finished { failed; _ }; _ })
                      ->
                      if id = 0 then
                        failf "hang: poison job finished normally"
                      else (
                        match failed with
                        | Some m -> failf "hang: normal job failed: %s" m
                        | None -> ())
                    | Ok r ->
                      if Unix.gettimeofday () < deadline then begin
                        Unix.sleepf 0.05;
                        poll id
                      end
                      else
                        failf "hang: job %d never terminal (last: %s)" id
                          (Serve.Wire.response_to_string r)
                    | Error e -> failf "hang: STATUS %d: %s" id e
                  in
                  poll 0;
                  poll 1;
                  ignore
                    (Serve.Client.request c Serve.Wire.Shutdown
                      : (Serve.Wire.response, string) result)))));
  (* 4. worker-fault matrix: SIGSTOP, SIGKILL and OOM inside worker
     processes of a worker-pool server — the crash vectors only true
     preemption reclaims. A SIGSTOP'd worker must be forcibly killed
     within stall-timeout + grace and its slot respawned; every fault is
     crash-accounted into quarantine after exactly the (scaled-down)
     budget; a clean job on the same server matches the in-process
     reference byte for byte; and after DRAIN the server exits 0 with no
     worker process left behind. *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let clean_cases = [ nth 1; nth 2 ] in
  (* in-process reference bytes for the clean job *)
  let clean_ref =
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let pid = spawn_server ~socket ~state ~runners:1 () in
        Fun.protect ~finally:(fun () -> kill_server pid)
          (fun () ->
            match
              Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 socket
            with
            | Error e ->
              failf "worker-matrix reference connect: %s" e;
              None
            | Ok c ->
              Fun.protect ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  match
                    Serve.Client.run_job c ~tenant:"chaos-worker"
                      ~backend:"rustbrain" ~cases:(Some clean_cases)
                      ~opts:(Some opts)
                  with
                  | Error e ->
                    failf "worker-matrix reference job: %s" e;
                    None
                  | Ok ((_, _, failed), _) ->
                    (match failed with
                    | Some m -> failf "worker-matrix reference failed: %s" m
                    | None -> ());
                    let store =
                      Serve.Store.open_dir ~scrub:false ~dir:state ()
                    in
                    Rb_util.Fsfile.read (Serve.Store.results_path store 0))))
  in
  with_serve_dir (fun dir ->
      let socket = Filename.concat dir "sock" in
      let state = Filename.concat dir "state" in
      let poison_spec =
        Printf.sprintf "%s=stop,%s=kill,%s=oom" (nth 0) (nth 3) (nth 4)
      in
      let pid =
        spawn_chaos ~socket ~state ~runners:1 ~poison_spec ~mode:"workers"
      in
      let reaped = ref false in
      Fun.protect ~finally:(fun () -> if not !reaped then kill_server pid)
        (fun () ->
          (* 4a. clean job first: worker-mode execution must be
             byte-identical to the in-process reference, and HEALTH must
             say so about the pool *)
          let health_pids = ref [] in
          (match
             Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 socket
           with
          | Error e -> failf "worker-matrix connect: %s" e
          | Ok c ->
            Fun.protect ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                (match
                   Serve.Client.run_job c ~tenant:"chaos-worker"
                     ~backend:"rustbrain" ~cases:(Some clean_cases)
                     ~opts:(Some opts)
                 with
                | Error e -> failf "worker-matrix clean job: %s" e
                | Ok ((_, _, failed), frames) ->
                  (match failed with
                  | Some m -> failf "worker-matrix clean job failed: %s" m
                  | None -> ());
                  if List.length frames <> List.length clean_cases then
                    failf "worker-matrix clean job: %d CASE frame(s), want %d"
                      (List.length frames)
                      (List.length clean_cases));
                (match Serve.Client.request c Serve.Wire.Health with
                | Ok (Serve.Wire.Health { pool; worker_pids; _ }) ->
                  if not (String.equal pool "workers") then
                    failf "worker-matrix HEALTH pool: %s, want workers" pool;
                  if worker_pids = [] then
                    failf "worker-matrix HEALTH: no worker pids";
                  health_pids := worker_pids
                | Ok r ->
                  failf "worker-matrix HEALTH: unexpected %s"
                    (Serve.Wire.response_to_string r)
                | Error e -> failf "worker-matrix HEALTH: %s" e)));
          (let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
           match
             (clean_ref, Rb_util.Fsfile.read (Serve.Store.results_path store 0))
           with
           | Some a, Some b when String.equal a b -> ()
           | Some _, Some _ ->
             failf
               "worker-matrix: clean job results differ between worker and \
                in-process modes"
           | Some _, None -> failf "worker-matrix: clean job results missing"
           | None, _ -> ());
          (* 4b. the matrix itself *)
          let outcome =
            Serve.Chaos.run_worker_matrix ~timeout_s:60.0 ~socket
              ~backend:"rustbrain" ~opts
              ~plan:
                [ (Serve.Chaos.Wf_stop, nth 0); (Serve.Chaos.Wf_kill, nth 3);
                  (Serve.Chaos.Wf_oom, nth 4) ]
              ()
          in
          List.iter
            (fun (s : Serve.Chaos.worker_step) ->
              let label = Serve.Chaos.worker_fault_label s.Serve.Chaos.w_fault in
              if s.Serve.Chaos.w_job < 0 then
                failf "worker-matrix %s: %s" label s.Serve.Chaos.w_reason
              else begin
                if not s.Serve.Chaos.w_probe_ok then
                  failf "worker-matrix %s: server stopped answering" label;
                if not s.Serve.Chaos.w_reclaimed then
                  failf "worker-matrix %s: slot not reclaimed" label;
                if s.Serve.Chaos.w_crashes <> chaos_worker_max_crashes then
                  failf "worker-matrix %s: %d crash(es), want exactly %d"
                    label s.Serve.Chaos.w_crashes chaos_worker_max_crashes;
                let expect =
                  match s.Serve.Chaos.w_fault with
                  (* SIGSTOP'd and SIGKILLed workers both die to the
                     watchdog's (or their own) signal 9; the OOM worker
                     catches Out_of_memory at its memory cap and exits
                     137 *)
                  | Serve.Chaos.Wf_stop | Serve.Chaos.Wf_kill -> "signal 9"
                  | Serve.Chaos.Wf_oom -> "exit 137"
                in
                if not (contains ~needle:expect s.Serve.Chaos.w_reason) then
                  failf "worker-matrix %s: reason %S lacks %S" label
                    s.Serve.Chaos.w_reason expect;
                (* the SIGSTOP rung is the bound the ladder guarantees:
                   each attempt reclaimed within stall + grace, plus
                   dispatch/respawn slack *)
                if
                  s.Serve.Chaos.w_fault = Serve.Chaos.Wf_stop
                  && s.Serve.Chaos.w_wall_s
                     > float_of_int chaos_worker_max_crashes
                       *. (chaos_worker_stall_s +. chaos_worker_grace_s +. 5.0)
                then
                  failf "worker-matrix sigstop: %.1fs to quarantine, over the \
                         ladder bound"
                    s.Serve.Chaos.w_wall_s
              end)
            outcome.Serve.Chaos.w_steps;
          if outcome.Serve.Chaos.w_pids = [] && !health_pids = [] then
            failf "worker-matrix: no worker pids ever observed";
          (* exactly the three poison jobs quarantined, exactly once each *)
          (let store = Serve.Store.open_dir ~scrub:false ~dir:state () in
           match List.map fst (Serve.Store.quarantined store) with
           | [ 1; 2; 3 ] -> ()
           | ids ->
             failf "worker-matrix: quarantined ids [%s], want [1; 2; 3]"
               (String.concat "; " (List.map string_of_int ids)));
          (* 4c. drain: exits 0 on its own, and no worker outlives it *)
          (match Serve.Client.connect socket with
          | Error e -> failf "worker-matrix drain connect: %s" e
          | Ok c ->
            (match Serve.Client.request c Serve.Wire.Drain with
            | Ok (Serve.Wire.Draining _) -> ()
            | Ok r ->
              failf "worker-matrix DRAIN: unexpected %s"
                (Serve.Wire.response_to_string r)
            | Error e -> failf "worker-matrix DRAIN: %s" e);
            Serve.Client.close c);
          (match wait_status ~timeout_s:30.0 pid with
          | Some (Unix.WEXITED 0) -> reaped := true
          | Some _ ->
            reaped := true;
            failf "worker-matrix: drained server exited abnormally"
          | None -> failf "worker-matrix: drained server never exited");
          let leaked =
            List.filter
              (fun p ->
                match Unix.kill p 0 with
                | () -> true
                | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
                | exception Unix.Unix_error _ -> true)
              (List.sort_uniq compare (!health_pids @ outcome.Serve.Chaos.w_pids))
          in
          if leaked <> [] then
            failf "worker-matrix: %d worker process(es) leaked after drain: %s"
              (List.length leaked)
              (String.concat ", " (List.map string_of_int leaked));
          let report = Serve.Store.fsck ~heal:false ~dir:state () in
          if Serve.Store.fsck_count `Corrupt report > 0 then
            failf "worker-matrix fsck: %d corrupt record(s)"
              (Serve.Store.fsck_count `Corrupt report);
          if Serve.Store.fsck_count `Torn report > 0 then
            failf "worker-matrix fsck: %d torn record(s)"
              (Serve.Store.fsck_count `Torn report)));
  if !failures > 0 then exit 1;
  Printf.printf
    "chaos serve ok: %d seeded client faults survived, poison job \
     quarantined after exactly %d crashes (exit and hang vectors), worker \
     matrix (sigstop/sigkill/oom) reclaimed and quarantined after exactly \
     %d crashes with no leaked processes, normal jobs byte-identical, \
     drain exited clean, fsck clean\n"
    12 max_crashes chaos_worker_max_crashes

(* -- serve-bench (BENCH_serve.json, committed) -------------------------- *)

(* -- procpool smoke (runtest gate) ------------------------------------- *)

(* The byte-exactness contract of the worker pool: the same jobs, run once
   through worker processes and once through in-process domains, must
   produce byte-identical durable results files. Workers execute the same
   Exec.Checkpoint campaigns against the same per-job journal layout, so
   any divergence is a real bug in the dispatch/stream/persist path, not
   noise. *)
let procpool_smoke () =
  section "Procpool smoke — worker-pool and in-process results byte-identical";
  let failures = ref 0 in
  let failf fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "FAIL %s\n" s;
        incr failures)
      fmt
  in
  let names =
    List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) serve_smoke_cases
  in
  if List.length names < 4 then failf "corpus too small for the procpool gate";
  let half = List.length names / 2 in
  let jobs =
    [ List.filteri (fun i _ -> i < half) names;
      List.filteri (fun i _ -> i >= half) names ]
  in
  let run_mode pool =
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let pid = spawn_server ~pool ~socket ~state ~runners:2 () in
        Fun.protect ~finally:(fun () -> kill_server pid)
          (fun () ->
            match
              Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 socket
            with
            | Error e ->
              failf "%s connect: %s" pool e;
              []
            | Ok c ->
              Fun.protect ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  let results =
                    List.mapi
                      (fun i cases ->
                        match
                          Serve.Client.run_job c ~tenant:"procpool"
                            ~backend:"rustbrain" ~cases:(Some cases)
                            ~opts:(Some serve_smoke_opts)
                        with
                        | Error e ->
                          failf "%s job %d: %s" pool i e;
                          None
                        | Ok ((_, _, failed), frames) ->
                          (match failed with
                          | Some m -> failf "%s job %d failed: %s" pool i m
                          | None -> ());
                          let want = List.length cases * 2 in
                          if List.length frames <> want then
                            failf "%s job %d: %d CASE frame(s), want %d" pool
                              i (List.length frames) want;
                          let store =
                            Serve.Store.open_dir ~scrub:false ~dir:state ()
                          in
                          Rb_util.Fsfile.read
                            (Serve.Store.results_path store i))
                      jobs
                  in
                  (match Serve.Client.request c Serve.Wire.Health with
                  | Ok (Serve.Wire.Health { pool = got; worker_pids; _ }) ->
                    if String.equal pool "workers" && worker_pids = [] then
                      failf "workers HEALTH: no worker pids";
                    if not (String.equal got pool) then
                      failf "HEALTH pool: %s, want %s" got pool
                  | Ok r ->
                    failf "%s HEALTH: unexpected %s" pool
                      (Serve.Wire.response_to_string r)
                  | Error e -> failf "%s HEALTH: %s" pool e);
                  ignore
                    (Serve.Client.request c Serve.Wire.Shutdown
                      : (Serve.Wire.response, string) result);
                  results)))
  in
  let inproc = run_mode "in-process" in
  let workers = run_mode "workers" in
  List.iteri
    (fun i (a, b) ->
      match (a, b) with
      | Some a, Some b when String.equal a b -> ()
      | Some _, Some _ ->
        failf "job %d: results differ between in-process and worker modes" i
      | None, _ | _, None -> failf "job %d: results missing" i)
    (List.combine inproc workers);
  if !failures > 0 then exit 1;
  Printf.printf
    "procpool smoke ok: %d job(s) (%d cases x %d seeds) byte-identical \
     between worker and in-process pools\n"
    (List.length jobs) (List.length names) 2

let serve_bench_file = "BENCH_serve.json"

let serve_bench () =
  section "Serve load — sustained multi-tenant throughput over the socket";
  let run_mode pool =
    with_serve_dir (fun dir ->
        let socket = Filename.concat dir "sock" in
        let state = Filename.concat dir "state" in
        let runners = 4 in
        let pid = spawn_server ~pool ~socket ~state ~runners () in
        Fun.protect ~finally:(fun () -> kill_server pid)
          (fun () ->
            let cfg =
              { Serve.Load.default_config with
                Serve.Load.socket; tenants = 4; jobs_per_tenant = 8;
                cases_per_job = 3 }
            in
            let o = Serve.Load.run cfg in
            (match Serve.Client.connect ~retries:1 socket with
            | Ok c ->
              ignore
                (Serve.Client.request c Serve.Wire.Shutdown
                  : (Serve.Wire.response, string) result);
              Serve.Client.close c
            | Error _ -> ());
            wait_exit pid;
            if o.Serve.Load.errors > 0 then begin
              Printf.eprintf "serve bench (%s): %d error(s)\n" pool
                o.Serve.Load.errors;
              exit 1
            end;
            Printf.printf
              "%-10s %d/%d jobs (%d cases) in %.2fs — %.2f jobs/s, %.1f \
               cases/s, busy %d\n"
              pool o.Serve.Load.completed o.Serve.Load.submitted
              o.Serve.Load.cases_done o.Serve.Load.wall_s
              o.Serve.Load.jobs_per_s o.Serve.Load.cases_per_s
              o.Serve.Load.busy;
            (runners, cfg, o)))
  in
  let runners, cfg, inproc = run_mode "in-process" in
  let _, _, workers = run_mode "workers" in
  let json =
    Rb_util.Json.to_string
      (Rb_util.Json.Obj
         [ ( "config",
             Rb_util.Json.Obj
               [ ("runners", Rb_util.Json.Num (float_of_int runners));
                 ("tenants",
                  Rb_util.Json.Num (float_of_int cfg.Serve.Load.tenants));
                 ("jobs_per_tenant",
                  Rb_util.Json.Num
                    (float_of_int cfg.Serve.Load.jobs_per_tenant));
                 ("cases_per_job",
                  Rb_util.Json.Num
                    (float_of_int cfg.Serve.Load.cases_per_job));
                 ("backend", Rb_util.Json.Str cfg.Serve.Load.backend) ]);
           ("outcome", Serve.Load.outcome_to_json inproc);
           ("outcome_workers", Serve.Load.outcome_to_json workers) ])
  in
  Rb_util.Fsfile.write_atomic serve_bench_file (json ^ "\n");
  Printf.printf "-> %s\n" serve_bench_file

(* -- knn: retrieval-kernel latency (BENCH_knn.json) -------------------- *)

let knn_bench_file = "BENCH_knn.json"

(* Synthetic Featvec-shaped vectors: a sparse, unit-normalized hashed block
   plus a dominant 2.0 one-hot category component, mirroring
   Featvec.of_sketch — so the bucketed index sees the geometry it was built
   for without paying sketch extraction for 10^6 programs. *)
let knn_synth ~dim ~hash_dim rng cat =
  let v = Array.make dim 0.0 in
  for _ = 1 to 8 do
    v.(Rb_util.Rng.int rng hash_dim) <- 0.2 +. (1.4 *. Rb_util.Rng.float rng)
  done;
  let n = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
  if n > 0.0 then
    for i = 0 to hash_dim - 1 do
      v.(i) <- v.(i) /. n
    done;
  v.(hash_dim + cat) <- 2.0;
  v

let knn () =
  section "knn — retrieval kernel: exact scan vs bucketed index (real wall-clock)";
  let dim = Knowledge.Featvec.dim in
  let ncat = List.length Miri.Diag.all_kinds in
  let hash_dim = dim - ncat in
  let k = Knowledge.Kb.max_hits in
  let queries =
    let rng = Rb_util.Rng.create 0xbeef in
    List.init 20 (fun i -> knn_synth ~dim ~hash_dim rng (i mod ncat))
  in
  let nq = List.length queries in
  let time f =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rows =
    List.map
      (fun n ->
        let t = Knowledge.Knn.create ~dim in
        let rng = Rb_util.Rng.create (0x5eed + n) in
        for i = 0 to n - 1 do
          ignore (Knowledge.Knn.add t (knn_synth ~dim ~hash_dim rng (i mod ncat)))
        done;
        (* agreement before timing (this also builds the index once, so the
           timed loop measures queries, not construction) *)
        let scanned = ref 0 in
        List.iter
          (fun q ->
            let ex = Knowledge.Knn.search_exact t q ~k in
            let ix = Knowledge.Knn.search_indexed t q ~k in
            if ex.Knowledge.Knn.hits <> ix.Knowledge.Knn.hits then begin
              Printf.eprintf
                "FAIL knn: indexed result diverges from the exact scan at n=%d\n" n;
              exit 1
            end;
            scanned := !scanned + ix.Knowledge.Knn.scanned)
          queries;
        let per_query f =
          let best = ref infinity in
          for _ = 1 to 3 do
            best :=
              min !best (time (fun () -> List.iter (fun q -> ignore (f q)) queries))
          done;
          1000.0 *. !best /. float_of_int nq
        in
        let exact_seq =
          per_query (fun q -> Knowledge.Knn.search_exact ~domains:1 t q ~k)
        in
        let exact_par =
          per_query (fun q -> Knowledge.Knn.search_exact ~domains:4 t q ~k)
        in
        let indexed = per_query (fun q -> Knowledge.Knn.search_indexed t q ~k) in
        let frac = float_of_int !scanned /. float_of_int (n * nq) in
        let strategy =
          if n >= Knowledge.Knn.indexed_threshold then "indexed" else "exact"
        in
        Printf.printf
          "n=%-9d exact-seq %9.3f ms  exact-par %9.3f ms  indexed %9.3f ms  scanned %5.1f%%  search->%s\n%!"
          n exact_seq exact_par indexed (100.0 *. frac) strategy;
        if n >= Knowledge.Knn.indexed_threshold && indexed >= exact_seq then begin
          Printf.eprintf
            "FAIL knn: indexed (%.3f ms) does not beat the exact scan (%.3f ms) at n=%d\n"
            indexed exact_seq n;
          exit 1
        end;
        (n, exact_seq, exact_par, indexed, frac, strategy))
      [ 1_000; 100_000; 1_000_000 ]
  in
  (* the end-to-end payoff: retrieval hints steering repair campaigns *)
  let cases = Dataset.Corpus.all in
  let kb_on = rates_of (run_rustbrain ~feedback:false cases) in
  let kb_off = rates_of (run_rustbrain ~kb:false ~feedback:false cases) in
  Printf.printf
    "fast-path lift (full corpus, %d reports): exec %s (KB) vs %s (no KB), pass %s vs %s\n"
    kb_on.n (Statkit.Table.pct kb_on.exec) (Statkit.Table.pct kb_off.exec)
    (Statkit.Table.pct kb_on.pass) (Statkit.Table.pct kb_off.pass);
  let open Rb_util.Json in
  let doc =
    Obj
      [ ("campaign", Str "knn");
        ("queries", Num (float_of_int nq));
        ("k", Num (float_of_int k));
        ("dim", Num (float_of_int dim));
        ( "sizes",
          List
            (List.map
               (fun (n, es, ep, ix, frac, strategy) ->
                 Obj
                   [ ("n", Num (float_of_int n));
                     ("exact_seq_ms", Num es);
                     ("exact_par_ms", Num ep);
                     ("indexed_ms", Num ix);
                     ("indexed_scanned_fraction", Num frac);
                     ("agreement", Bool true);
                     ("search_strategy", Str strategy) ])
               rows) );
        ( "fast_path",
          Obj
            [ ("kb_exec", Num kb_on.exec); ("kb_pass", Num kb_on.pass);
              ("nokb_exec", Num kb_off.exec); ("nokb_pass", Num kb_off.pass) ] ) ]
  in
  Rb_util.Fsfile.write_atomic knn_bench_file (to_string doc ^ "\n");
  Printf.printf "-> %s\n" knn_bench_file

(* -- kb-smoke gate (dune runtest alias kb-smoke) ------------------------ *)

let kb_smoke () =
  section "KB smoke — persistent-store determinism, crash healing, compaction";
  let failures = ref 0 in
  let failf fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "FAIL kb: %s\n" s;
        incr failures)
      fmt
  in
  let fresh_dir tag =
    let d = Filename.temp_file (Printf.sprintf "rb-kb-%s" tag) "" in
    Sys.remove d;
    d
  in
  let payload i = Rb_util.Json.Obj [ ("i", Rb_util.Json.Num (float_of_int i)) ] in
  let vec4 i = [| float_of_int i; 0.5; 0.0; 1.0 |] in

  (* 1+2: a campaign against a fresh persistent store must be byte-identical
     to the in-memory one (a fresh store holds exactly the default seeds),
     and sequential vs domain-parallel scheduling must not matter — the
     process-frozen snapshot makes every session see the same KB whatever
     order sessions are created in. *)
  let dir = fresh_dir "campaign" in
  let cases = List.filteri (fun i _ -> i mod 8 = 0) Dataset.Corpus.all in
  let runner_mem = Exec.Backends.rustbrain ~config:(rustbrain_cfg ~seed:1 ()) () in
  let runner_kb =
    Exec.Backends.rustbrain
      ~config:
        { (rustbrain_cfg ~seed:1 ()) with Rustbrain.Pipeline.kb_dir = Some dir }
      ()
  in
  let mem, _ = Exec.Scheduler.run_seeded ~domains:1 runner_mem ~seeds:[ 1; 2 ] cases in
  let per_seq, _ =
    Exec.Scheduler.run_seeded ~domains:1 runner_kb ~seeds:[ 1; 2 ] cases
  in
  let per_par, _ =
    Exec.Scheduler.run_seeded ~domains:2 runner_kb ~seeds:[ 1; 2 ] cases
  in
  if mem <> per_seq then
    failf "fresh persistent campaign diverges from the in-memory one";
  if per_seq <> per_par then
    failf "persistent campaign: parallel reports differ from sequential";
  Printf.printf
    "campaign identity: in-memory==persistent %b, parallel==sequential %b\n"
    (mem = per_seq) (per_seq = per_par);

  (* learned entries are on disk for the next process, while this process's
     snapshot stays frozen at the seed set *)
  (match Knowledge.Segment.load dir with
  | Error e -> failf "post-campaign load: %s" e
  | Ok r ->
    let seed_count = List.length Miri.Diag.all_kinds in
    let on_disk = List.length r.Knowledge.Segment.records in
    if on_disk <= seed_count then
      failf "campaign learned nothing durable (%d records on disk)" on_disk;
    (match
       Knowledge.Kb.open_dir ~dir ~clock:(Rb_util.Simclock.create ()) ()
     with
    | Error e -> failf "reopen: %s" e
    | Ok kb ->
      let snap = Knowledge.Kb.size kb in
      if snap <> seed_count then
        failf "snapshot not frozen: reopen in-process sees %d entries" snap;
      Printf.printf
        "durable learning: %d records on disk, frozen in-process snapshot %d\n"
        on_disk snap));

  (* 3: kill -9 a child mid-append, then heal. Appends are framed + fsynced,
     so at worst the final frame is torn; fsck truncates it and every load
     after that agrees. The child is a fresh process image (the campaign
     above created domains, after which OCaml 5 refuses to fork). *)
  let dir2 = fresh_dir "kill9" in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "kb-append-child"; dir2 |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.sleepf 0.3;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (match Knowledge.Segment.fsck ~fix:true ~expect:(4, 1) dir2 with
  | Error e -> failf "fsck after kill -9: %s" e
  | Ok r ->
    if r.Knowledge.Segment.records = [] then
      failf "kill -9 store recovered no records";
    let a = Knowledge.Segment.load ~expect:(4, 1) dir2 in
    let b = Knowledge.Segment.load ~expect:(4, 1) dir2 in
    if a <> b then failf "load after healing is not deterministic";
    (* the dead writer's lock must not outlive it: reopening appends fine *)
    (match Knowledge.Segment.open_writer ~expect:(4, 1) ~dir:dir2 () with
    | Error e -> failf "reopen after kill -9: %s" e
    | Ok (w, rep) ->
      let n0 = List.length rep.Knowledge.Segment.records in
      (match Knowledge.Segment.append w ~vec:(vec4 n0) ~payload:(payload n0) with
      | Ok id when id = n0 -> ()
      | Ok id -> failf "ids not dense after recovery: got %d, wanted %d" id n0
      | Error e -> failf "append after recovery: %s" e);
      Knowledge.Segment.close w;
      Printf.printf
        "kill -9 recovery: %d records survive, healed %d tail byte(s), ids dense\n"
        n0 r.Knowledge.Segment.healed_tail_bytes));

  (* 4: a deterministically torn tail heals to the last whole frame. Work on
     a copy so the original writer's view stays untouched. *)
  let dir3 = fresh_dir "torn" in
  (match Knowledge.Segment.open_writer ~expect:(4, 1) ~dir:dir3 () with
  | Error e -> failf "torn: open_writer: %s" e
  | Ok (w, _) ->
    for i = 0 to 9 do
      ignore (Knowledge.Segment.append w ~vec:(vec4 i) ~payload:(payload i))
    done;
    let copy = fresh_dir "torn-copy" in
    if
      Sys.command
        (Printf.sprintf "cp -r %s %s" (Filename.quote dir3) (Filename.quote copy))
      <> 0
    then failf "torn: cp failed"
    else begin
      let tail = Filename.concat copy "tail.log" in
      let size = (Unix.stat tail).Unix.st_size in
      Unix.truncate tail (size - 7);
      match Knowledge.Segment.fsck ~fix:true ~expect:(4, 1) copy with
      | Error e -> failf "torn: fsck: %s" e
      | Ok r ->
        if List.length r.Knowledge.Segment.records <> 9 then
          failf "torn tail healed to %d records, wanted 9"
            (List.length r.Knowledge.Segment.records);
        if r.Knowledge.Segment.healed_tail_bytes <= 0 then
          failf "torn tail reported no healed bytes";
        Printf.printf "torn tail: healed %d byte(s), 9/10 records survive\n"
          r.Knowledge.Segment.healed_tail_bytes
    end;
    Knowledge.Segment.close w);

  (* 5: sealing + compaction are load-equivalent, and duplicate ids (the
     compaction-crash window: merged segment written, inputs not yet
     deleted) resolve first-wins at load *)
  let dir4 = fresh_dir "compact" in
  (match
     Knowledge.Segment.open_writer ~expect:(4, 1) ~seal_every:4 ~compact_at:3
       ~dir:dir4 ()
   with
  | Error e -> failf "compact: open_writer: %s" e
  | Ok (w, _) ->
    for i = 0 to 25 do
      ignore (Knowledge.Segment.append w ~vec:(vec4 i) ~payload:(payload i))
    done;
    let before = Knowledge.Segment.records w in
    Knowledge.Segment.compact w;
    if Knowledge.Segment.records w <> before then
      failf "compaction changed the writer's record set";
    Knowledge.Segment.close w;
    (match Knowledge.Segment.load ~expect:(4, 1) dir4 with
    | Error e -> failf "compact: load: %s" e
    | Ok r ->
      if r.Knowledge.Segment.records <> before then
        failf "compaction is not load-equivalent";
      (* duplicate the surviving segment under a later name *)
      let segs =
        Sys.readdir dir4 |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".seg")
      in
      (match segs with
      | seg :: _ ->
        if
          Sys.command
            (Printf.sprintf "cp %s %s"
               (Filename.quote (Filename.concat dir4 seg))
               (Filename.quote (Filename.concat dir4 "seg-00009999.seg")))
          <> 0
        then failf "compact: cp failed";
        (match Knowledge.Segment.load ~expect:(4, 1) dir4 with
        | Error e -> failf "compact: load with duplicates: %s" e
        | Ok r2 ->
          if r2.Knowledge.Segment.records <> before then
            failf "duplicate ids were not resolved first-wins";
          if r2.Knowledge.Segment.duplicates = 0 then
            failf "duplicate segment reported no duplicates";
          Printf.printf
            "compaction: load-equivalent, %d duplicate(s) resolved first-wins\n"
            r2.Knowledge.Segment.duplicates)
      | [] -> failf "compaction left no segment")));

  (* 6: retrieval strategies agree bit-for-bit on Featvec-shaped data —
     exact==indexed hits, parallel==sequential scores *)
  let dim = Knowledge.Featvec.dim in
  let ncat = List.length Miri.Diag.all_kinds in
  let hash_dim = dim - ncat in
  let t = Knowledge.Knn.create ~dim in
  let rng = Rb_util.Rng.create 0xfeed in
  for i = 0 to 8191 do
    ignore (Knowledge.Knn.add t (knn_synth ~dim ~hash_dim rng (i mod ncat)))
  done;
  let qs = List.init 30 (fun i -> knn_synth ~dim ~hash_dim rng (i mod ncat)) in
  List.iter
    (fun q ->
      let ex = Knowledge.Knn.search_exact ~domains:1 t q ~k:8 in
      let ix = Knowledge.Knn.search_indexed t q ~k:8 in
      if ex.Knowledge.Knn.hits <> ix.Knowledge.Knn.hits then
        failf "indexed hits diverge from the exact scan";
      let s1 = Knowledge.Knn.scores ~domains:1 t q in
      let s4 = Knowledge.Knn.scores ~domains:4 t q in
      if s1 <> s4 then failf "parallel scores are not bit-identical")
    qs;
  Printf.printf
    "retrieval agreement: exact==indexed and 4-domain==sequential over %d queries\n"
    (List.length qs);

  if !failures > 0 then exit 1;
  print_endline "kb smoke ok"

(* -- driver ------------------------------------------------------------ *)

let experiments =
  [ ("fig5", fig5); ("fig7", fig7); ("fig8", fig89); ("fig9", fig89);
    ("fig10", fig10); ("fig11", fig11); ("fig12", fig12); ("table1", table1);
    ("ablate", ablate); ("perf", perf); ("smoke", smoke);
    ("resilience", resilience); ("resilience-smoke", resilience_smoke);
    ("chaos", chaos); ("resume-smoke", resume_smoke);
    ("interp", interp); ("interp-smoke", interp_smoke);
    ("bytecode-smoke", bytecode_smoke);
    ("trace-smoke", trace_smoke); ("obs-overhead", obs_overhead);
    ("serve-smoke", serve_smoke); ("chaos-serve", chaos_serve);
    ("procpool-smoke", procpool_smoke); ("serve-bench", serve_bench);
    ("knn", knn); ("kb-smoke", kb_smoke) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "serve-child"; socket; state; runners; pool ] ->
    serve_child ~socket ~state ~runners:(int_of_string runners) ~pool
  | [ "chaos-child"; socket; state; runners; poison_spec; mode ] ->
    chaos_child ~socket ~state ~runners:(int_of_string runners) ~poison_spec
      ~mode
  | [ "worker-child" ] -> Serve.Procpool.worker_main ()
  | [ "kb-append-child"; dir ] -> (
    (* kb-smoke helper: append 4-dim records until SIGKILLed *)
    match Knowledge.Segment.open_writer ~expect:(4, 1) ~dir () with
    | Error _ -> exit 2
    | Ok (w, _) ->
      let i = ref 0 in
      while true do
        ignore
          (Knowledge.Segment.append w
             ~vec:[| float_of_int !i; 0.5; 0.0; 1.0 |]
             ~payload:(Rb_util.Json.Obj [ ("i", Rb_util.Json.Num (float_of_int !i)) ]));
        incr i
      done)
  | [] ->
    Printf.printf "RustBrain reproduction benchmark harness (simulated clock; see DESIGN.md)\n";
    fig7 ();
    fig89 ();
    fig10 ();
    fig11 ();
    fig12 ();
    table1 ();
    fig5 ();
    ablate ();
    perf ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names

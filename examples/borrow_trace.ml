(* Borrow-event tracing — the reproduction's equivalent of Miri's
   `-Zmiri-track-pointer-tag`: run a program with the event trace enabled
   and watch allocations, retags and tag invalidations unfold, ending in
   the stack-borrow violation.

   Run with: dune exec examples/borrow_trace.exe *)

let src =
  {|
fn main() {
    let mut balance = 100;
    let mut auditor = &mut balance as *mut i64;
    let mut teller = &mut balance;
    *teller = *teller - 30;
    unsafe {
        print(*auditor);
    }
}
|}

let () =
  print_endline "--- program ---";
  print_string src;
  print_endline "\n--- event trace ---";
  let config = { Miri.Machine.default_config with Miri.Machine.trace = true } in
  match Miri.Machine.analyze ~config (Minirust.Parser.parse src) with
  | Miri.Machine.Compile_error msg -> print_endline ("compile error: " ^ msg)
  | Miri.Machine.Ran r ->
    List.iter (fun e -> Printf.printf "  %s\n" e) r.Miri.Machine.events;
    (match r.Miri.Machine.outcome with
    | Miri.Machine.Ub d -> Printf.printf "\n=> %s\n" (Miri.Diag.to_string d)
    | Miri.Machine.Finished -> print_endline "\n=> finished (unexpected for this demo)"
    | Miri.Machine.Panicked m -> Printf.printf "\n=> panic: %s\n" m
    | Miri.Machine.Step_limit -> print_endline "\n=> step limit"
    | Miri.Machine.Resource_limit m -> Printf.printf "\n=> resource limit: %s\n" m);
    print_endline
      "\nReading the trace: `auditor` gets a SharedRW tag; creating `teller`\n\
       (a &mut) performs a write-like retag through the base tag, which pops\n\
       auditor's tag from the borrow stack; the final *auditor read then\n\
       fails with the stack-borrow violation above — the exact mechanism the\n\
       sb_* corpus cases exercise."

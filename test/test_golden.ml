(* Golden-corpus diagnostics test.

   Runs every corpus case (buggy and fixed source) under the interpreter in
   both Stop_first and Collect modes with event tracing on, renders every
   observable — outcome, print trace, diagnostic strings (addresses, tags,
   messages), borrow/allocation events, step and error counts — and compares
   the result byte-for-byte against the checked-in
   [test/golden_diags.expected]. Any change to allocation addresses, borrow
   tags, scheduling, or diagnostic wording shows up here, which is what makes
   memory-representation swaps provably observation-preserving.

   Regenerate after an *intentional* observable change with:
     GOLDEN_REGEN=$PWD/test/golden_diags.expected dune exec test/test_main.exe -- test golden
*)

let render_result (r : Miri.Machine.run_result) =
  let b = Buffer.create 256 in
  let outcome =
    match r.Miri.Machine.outcome with
    | Miri.Machine.Finished -> "finished"
    | Miri.Machine.Panicked m -> "panicked: " ^ m
    | Miri.Machine.Ub d -> "ub: " ^ Miri.Diag.to_string d
    | Miri.Machine.Step_limit -> "step-limit"
    | Miri.Machine.Resource_limit m -> "resource-limit: " ^ m
  in
  Buffer.add_string b (Printf.sprintf "outcome: %s\n" outcome);
  Buffer.add_string b
    (Printf.sprintf "steps: %d errors: %d\n" r.Miri.Machine.steps
       r.Miri.Machine.error_count);
  List.iter
    (fun s -> Buffer.add_string b (Printf.sprintf "out: %s\n" s))
    r.Miri.Machine.output;
  List.iter
    (fun d ->
      Buffer.add_string b (Printf.sprintf "diag: %s\n" (Miri.Diag.to_string d)))
    r.Miri.Machine.diags;
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "event: %s\n" e))
    r.Miri.Machine.events;
  Buffer.contents b

let run_one src ~mode ~inputs =
  let program = Minirust.Parser.parse src in
  match Minirust.Typecheck.check program with
  | Error errs -> "typecheck-error: " ^ Minirust.Typecheck.errors_to_string errs ^ "\n"
  | Ok info ->
    let config =
      { Miri.Machine.default_config with
        Miri.Machine.mode;
        seed = 1;
        trace = true;
        inputs }
    in
    render_result (Miri.Machine.run ~config program info)

let generate () =
  let b = Buffer.create (1 lsl 16) in
  List.iter
    (fun (c : Dataset.Case.t) ->
      let inputs = match c.Dataset.Case.probes with p :: _ -> p | [] -> [||] in
      List.iter
        (fun (variant, src) ->
          List.iter
            (fun (mode_name, mode) ->
              Buffer.add_string b
                (Printf.sprintf "=== %s/%s/%s ===\n" c.Dataset.Case.name variant
                   mode_name);
              Buffer.add_string b (run_one src ~mode ~inputs))
            [ ("stop-first", Miri.Machine.Stop_first);
              ("collect-5", Miri.Machine.Collect 5) ])
        [ ("buggy", c.Dataset.Case.buggy_src);
          ("fixed", c.Dataset.Case.fixed_src) ])
    Dataset.Corpus.all;
  Buffer.contents b

(* Under `dune runtest` the cwd is the sandboxed test dir (where the (deps)
   copy lives); under `dune exec` from the repo root it is the root. *)
let expected_file () =
  let candidates =
    [ "golden_diags.expected"; "test/golden_diags.expected";
      Filename.concat (Filename.dirname Sys.executable_name) "golden_diags.expected" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "golden_diags.expected not found; regenerate with GOLDEN_REGEN"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Point at the first differing line, not a megabyte Alcotest string diff. *)
let first_divergence want got =
  let wl = String.split_on_char '\n' want and gl = String.split_on_char '\n' got in
  let rec go i = function
    | w :: ws, g :: gs -> if w = g then go (i + 1) (ws, gs) else (i, w, g)
    | w :: _, [] -> (i, w, "<end of generated output>")
    | [], g :: _ -> (i, "<end of expected file>", g)
    | [], [] -> (i, "", "")
  in
  go 1 (wl, gl)

let test_golden_corpus () =
  let got = generate () in
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Printf.printf "regenerated %s (%d bytes)\n" path (String.length got)
  | None ->
    let want = read_file (expected_file ()) in
    if want <> got then begin
      let line, w, g = first_divergence want got in
      Alcotest.failf
        "golden corpus diagnostics diverge at line %d\n  expected: %s\n  got:      %s"
        line w g
    end

let suite =
  [ Alcotest.test_case "golden corpus diagnostics byte-identical" `Quick
      test_golden_corpus ]

(* The unified campaign-runner API: backend packing, the domain-parallel
   scheduler's determinism contract, and the verification cache's
   transparency (identical reports with the cache on, off, sequential or
   sharded across domains). *)

(* a small cross-category slice keeps the determinism tests fast while still
   exercising multi-solution repairs and reference caching *)
let small_corpus () = List.filteri (fun i _ -> i mod 16 = 0) Dataset.Corpus.all

let case () = List.hd Dataset.Corpus.all

(* -- Runner packing ---------------------------------------------------- *)

let test_backend_names () =
  Alcotest.(check (list string))
    "registry spelling"
    [ "rustbrain"; "llm-only"; "rust-assistant"; "human-expert" ]
    Exec.Backends.all_names;
  List.iter
    (fun name ->
      match Exec.Backends.of_name name with
      | None -> Alcotest.failf "of_name %S returned None" name
      | Some r -> Alcotest.(check string) "name roundtrip" name (Exec.Runner.name r))
    Exec.Backends.all_names;
  Alcotest.(check bool) "unknown backend" true (Exec.Backends.of_name "gpt-17" = None)

let test_with_seed_repacks () =
  let r = Exec.Backends.rustbrain () in
  let r7 = Exec.Runner.with_seed r 7 in
  (* the reseeded runner must behave like a directly-configured one *)
  let direct =
    Exec.Backends.rustbrain
      ~config:{ Rustbrain.Pipeline.default_config with Rustbrain.Pipeline.seed = 7 }
      ()
  in
  let cases = [ case () ] in
  let a, _ = Exec.Runner.run r7 cases in
  let b, _ = Exec.Runner.run direct cases in
  Alcotest.(check bool) "same reports" true (a = b)

(* -- Scheduler determinism --------------------------------------------- *)

let jobs cases =
  [ { Exec.Scheduler.label = "rustbrain/seed1";
      runner = Exec.Runner.with_seed (Exec.Backends.rustbrain ()) 1;
      cases };
    { Exec.Scheduler.label = "rustbrain/seed2";
      runner = Exec.Runner.with_seed (Exec.Backends.rustbrain ()) 2;
      cases };
    { Exec.Scheduler.label = "llm-only/seed1";
      runner = Exec.Runner.with_seed (Exec.Backends.llm_only ()) 1;
      cases } ]

let test_parallel_equals_sequential () =
  let cases = small_corpus () in
  let seq, _ = Exec.Scheduler.run_jobs ~domains:1 (jobs cases) in
  let par, _ = Exec.Scheduler.run_jobs ~domains:3 (jobs cases) in
  Alcotest.(check int) "job count" (List.length seq) (List.length par);
  List.iter2
    (fun (s : Exec.Scheduler.result) (p : Exec.Scheduler.result) ->
      Alcotest.(check string) "job order" s.Exec.Scheduler.job.Exec.Scheduler.label
        p.Exec.Scheduler.job.Exec.Scheduler.label;
      Alcotest.(check bool)
        (Printf.sprintf "reports of %s byte-identical"
           s.Exec.Scheduler.job.Exec.Scheduler.label)
        true
        (s.Exec.Scheduler.reports = p.Exec.Scheduler.reports))
    seq par

let test_run_seeded_order () =
  let cases = [ case () ] in
  let reports, _ =
    Exec.Scheduler.run_seeded ~domains:2 (Exec.Backends.rustbrain ()) ~seeds:[ 1; 2; 3 ]
      cases
  in
  Alcotest.(check int) "one report per seed" 3 (List.length reports);
  (* seed order is preserved: each seed's report for the same case *)
  let inline seed =
    Rustbrain.Pipeline.run_campaign
      { Rustbrain.Pipeline.default_config with Rustbrain.Pipeline.seed }
      cases
  in
  Alcotest.(check bool) "matches inline per-seed runs" true
    (reports = List.concat_map inline [ 1; 2; 3 ])

(* -- Crash isolation --------------------------------------------------- *)

(* a backend whose campaign always raises: the scheduler must capture it as
   that job's failure without disturbing sibling jobs *)
module Crashy = struct
  type config = int
  type session = unit

  let name = "crashy"
  let default_config = 0
  let with_seed _cfg seed = seed
  let seed cfg = cfg
  let create_session _cfg = ()
  let repair_case () _case : Rustbrain.Report.t = failwith "boom"
  let session_stats () = Exec.Runner.no_stats
end

let mixed_jobs cases =
  [ { Exec.Scheduler.label = "good1";
      runner = Exec.Runner.with_seed (Exec.Backends.human_expert ()) 1;
      cases };
    { Exec.Scheduler.label = "crashy";
      runner = Exec.Runner.pack (module Crashy) 0;
      cases };
    { Exec.Scheduler.label = "good2";
      runner = Exec.Runner.with_seed (Exec.Backends.human_expert ()) 2;
      cases } ]

let test_crash_isolated () =
  let cases = [ case () ] in
  List.iter
    (fun domains ->
      let results, _ = Exec.Scheduler.run_jobs ~domains (mixed_jobs cases) in
      Alcotest.(check int) "every job reports" 3 (List.length results);
      Alcotest.(check (list string)) "job order preserved"
        [ "good1"; "crashy"; "good2" ]
        (List.map
           (fun (r : Exec.Scheduler.result) -> r.Exec.Scheduler.job.Exec.Scheduler.label)
           results);
      let ok, failed =
        List.partition
          (fun (r : Exec.Scheduler.result) -> r.Exec.Scheduler.failure = None)
          results
      in
      Alcotest.(check int) "siblings completed" 2 (List.length ok);
      List.iter
        (fun (r : Exec.Scheduler.result) ->
          Alcotest.(check int) "sibling produced its report" 1
            (List.length r.Exec.Scheduler.reports))
        ok;
      match failed with
      | [ f ] ->
        Alcotest.(check string) "the crashing job failed" "crashy"
          f.Exec.Scheduler.job.Exec.Scheduler.label;
        Alcotest.(check bool) "reports dropped" true (f.Exec.Scheduler.reports = []);
        (match f.Exec.Scheduler.failure with
        | None -> Alcotest.fail "expected a captured failure"
        | Some fl ->
          Alcotest.(check bool) "exception preserved" true
            (Helpers.contains fl.Exec.Scheduler.exn "boom"))
      | _ -> Alcotest.failf "expected exactly one failure, got %d" (List.length failed))
    [ 1; 2 ]

let test_every_failure_preserved () =
  (* the old scheduler re-raised only the first exception; now every crash
     is kept, each with its own job *)
  let cases = [ case () ] in
  let jobs =
    List.map
      (fun i ->
        { Exec.Scheduler.label = Printf.sprintf "crashy%d" i;
          runner = Exec.Runner.pack (module Crashy) i;
          cases })
      [ 1; 2; 3 ]
  in
  let results, _ = Exec.Scheduler.run_jobs ~domains:2 jobs in
  let failures = Exec.Scheduler.failures results in
  Alcotest.(check (list string)) "all three failures, in order"
    [ "crashy1"; "crashy2"; "crashy3" ]
    (List.map (fun ((j : Exec.Scheduler.job), _) -> j.Exec.Scheduler.label) failures)

let test_run_seeded_partial () =
  let cases = [ case () ] in
  (* run_seeded must not raise on a crashing campaign: it reports partial
     results (none here) instead *)
  let reports, _ =
    Exec.Scheduler.run_seeded ~domains:2
      (Exec.Runner.pack (module Crashy) 0)
      ~seeds:[ 1; 2 ] cases
  in
  Alcotest.(check int) "partial results surfaced" 0 (List.length reports)

(* -- Verification cache ------------------------------------------------ *)

let test_cache_hits_on_repeat () =
  let session = Rustbrain.Pipeline.create_session Rustbrain.Pipeline.default_config in
  let c = case () in
  let r1 = Rustbrain.Pipeline.repair session c in
  let stats1 = Miri.Machine.Cache.stats (Rustbrain.Pipeline.verification_cache session) in
  Alcotest.(check bool) "first repair already hits (within-repair reuse)" true
    (stats1.Miri.Machine.Cache.hits >= 0);
  let r2 = Rustbrain.Pipeline.repair session c in
  let stats2 = Miri.Machine.Cache.stats (Rustbrain.Pipeline.verification_cache session) in
  Alcotest.(check bool) "repeat verification hits the cache" true
    (stats2.Miri.Machine.Cache.hits > stats1.Miri.Machine.Cache.hits);
  (* repeating the same case in the same session accumulates KB/feedback
     state, so only cache-derived fields must agree *)
  Alcotest.(check string) "same case" r1.Rustbrain.Report.case_name
    r2.Rustbrain.Report.case_name

let test_cache_transparent () =
  let cases = small_corpus () in
  let with_cache use_cache =
    Rustbrain.Pipeline.run_campaign
      { Rustbrain.Pipeline.default_config with Rustbrain.Pipeline.use_cache } cases
  in
  Alcotest.(check bool) "cache on == cache off, report for report" true
    (with_cache true = with_cache false)

let test_cache_disabled_no_counting () =
  let session =
    Rustbrain.Pipeline.create_session
      { Rustbrain.Pipeline.default_config with Rustbrain.Pipeline.use_cache = false }
  in
  ignore (Rustbrain.Pipeline.repair session (case ()));
  let stats = Miri.Machine.Cache.stats (Rustbrain.Pipeline.verification_cache session) in
  Alcotest.(check int) "no hits" 0 stats.Miri.Machine.Cache.hits;
  Alcotest.(check int) "no misses" 0 stats.Miri.Machine.Cache.misses

let test_stats_aggregation () =
  let cases = [ case () ] in
  let _, stats =
    Exec.Scheduler.run_seeded ~domains:1 (Exec.Backends.rustbrain ()) ~seeds:[ 1; 2 ]
      cases
  in
  Alcotest.(check bool) "hits accumulated across campaigns" true
    (stats.Exec.Runner.cache_hits > 0);
  let rate = Exec.Runner.hit_rate stats in
  Alcotest.(check bool) "hit rate in (0,1]" true (rate > 0.0 && rate <= 1.0)

(* -- Report serialization ---------------------------------------------- *)

let sample_report () =
  let session = Rustbrain.Pipeline.create_session Rustbrain.Pipeline.default_config in
  Rustbrain.Pipeline.repair session (case ())

let test_report_json () =
  let r = sample_report () in
  let json = Rustbrain.Report.to_json r in
  Alcotest.(check bool) "object braces" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  let has needle =
    let open String in
    let n = length needle in
    let rec go i = i + n <= length json && (sub json i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun field -> Alcotest.(check bool) ("field " ^ field) true (has ("\"" ^ field ^ "\"")))
    [ "case"; "category"; "passed"; "semantic"; "seconds"; "llm_calls"; "tokens";
      "iterations"; "solutions_tried"; "rollbacks"; "n_sequence"; "winning_solution";
      "feedback_hit"; "retries"; "faults"; "breaker_trips"; "degraded"; "gave_up";
      "trace" ];
  Alcotest.(check bool) "case name embedded" true
    (has (Printf.sprintf "%S" r.Rustbrain.Report.case_name))

let test_report_csv () =
  let r = sample_report () in
  let header_cols = String.split_on_char ',' Rustbrain.Report.csv_header in
  Alcotest.(check int) "18 columns" 18 (List.length header_cols);
  (* a row with no quoted fields has exactly as many columns as the header;
     the sample corpus names contain no commas *)
  let row = Rustbrain.Report.csv_row r in
  Alcotest.(check int) "row arity" (List.length header_cols)
    (List.length (String.split_on_char ',' row))

let suite =
  [ Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "with_seed repacks" `Quick test_with_seed_repacks;
    Alcotest.test_case "parallel == sequential" `Slow test_parallel_equals_sequential;
    Alcotest.test_case "run_seeded order" `Quick test_run_seeded_order;
    Alcotest.test_case "crash isolated per job" `Quick test_crash_isolated;
    Alcotest.test_case "every failure preserved" `Quick test_every_failure_preserved;
    Alcotest.test_case "run_seeded partial on crash" `Quick test_run_seeded_partial;
    Alcotest.test_case "cache hits on repeat" `Quick test_cache_hits_on_repeat;
    Alcotest.test_case "cache transparent" `Slow test_cache_transparent;
    Alcotest.test_case "cache disabled counts nothing" `Quick test_cache_disabled_no_counting;
    Alcotest.test_case "stats aggregation" `Quick test_stats_aggregation;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "report csv" `Quick test_report_csv ]

(* The serving layer's pure parts: wire framing and message codecs, the
   weighted fair queue's admission control and dispatch order, the durable
   accepted-jobs store's crash-visible transitions, the campaign-options
   wire subset, and the versioned report codec the wire splices through. *)

module Wire = Serve.Wire
module Fairq = Serve.Fairq
module Store = Serve.Store
module Opts = Exec.Campaign_opts

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* Store state directories nest (queue/ results/ jobs/), so cleanup is
   recursive, unlike test_journal's flat [with_dir]. *)
let with_dir f =
  let dir = Filename.temp_file "rustbrain-test-serve" "" in
  Sys.remove dir;
  Rb_util.Fsfile.mkdir_p dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let mk_report ?(name = "case-a") ?(passed = true) () =
  { Rustbrain.Report.case_name = name;
    category = Miri.Diag.Validity;
    passed;
    semantic = false;
    seconds = 12.5;
    llm_calls = 3;
    tokens = 1234;
    iterations = 2;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = [ 3; 1; 0 ];
    winning_solution = Some "s1";
    feedback_hit = false;
    retries = 1;
    faults = 2;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = [ "line one"; "line \"two\"\twith\\escapes" ] }

(* -- framing ------------------------------------------------------------ *)

let feed_string d s =
  Wire.feed d (Bytes.of_string s) 0 (String.length s)

let check_frames msg expected = function
  | Ok frames -> Alcotest.(check (list string)) msg expected frames
  | Error e -> Alcotest.failf "%s: unexpected violation: %s" msg e

let test_framing_roundtrip () =
  let payloads = [ "hello"; "{}"; String.make 4096 'x'; "{\"type\":\"shutdown\"}" ] in
  let stream = String.concat "" (List.map Wire.encode payloads) in
  let d = Wire.decoder () in
  check_frames "one chunk" payloads (feed_string d stream);
  Alcotest.(check int) "nothing buffered" 0 (Wire.buffered d)

let test_framing_byte_at_a_time () =
  let payloads = [ "a"; "bb"; "ccc" ] in
  let stream = String.concat "" (List.map Wire.encode payloads) in
  let d = Wire.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      match feed_string d (String.make 1 c) with
      | Ok fs -> got := !got @ fs
      | Error e -> Alcotest.failf "byte feed: %s" e)
    stream;
  Alcotest.(check (list string)) "same frames any split" payloads !got;
  Alcotest.(check int) "drained" 0 (Wire.buffered d)

let test_framing_torn () =
  let frame = Wire.encode "torn-frame-payload" in
  let d = Wire.decoder () in
  (* header only *)
  check_frames "header only" [] (feed_string d (String.sub frame 0 3));
  Alcotest.(check int) "3 buffered" 3 (Wire.buffered d);
  (* header + part of payload *)
  check_frames "mid payload" []
    (feed_string d (String.sub frame 3 7));
  Alcotest.(check int) "10 buffered" 10 (Wire.buffered d);
  check_frames "completion" [ "torn-frame-payload" ]
    (feed_string d (String.sub frame 10 (String.length frame - 10)))

let test_framing_oversized () =
  let d = Wire.decoder ~max_frame:16 () in
  (match feed_string d (Wire.encode (String.make 17 'y')) with
  | Error e ->
    Alcotest.(check bool) "names the limit" true
      (String.length e > 0 && String.exists (fun c -> c = '1') e)
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* poisoned: even a well-formed frame now errors *)
  match feed_string d (Wire.encode "ok") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder not poisoned after violation"

let test_framing_nonpositive () =
  let bad = Bytes.make 4 '\000' in
  let d = Wire.decoder () in
  (match Wire.feed d bad 0 4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero-length frame accepted");
  let d2 = Wire.decoder () in
  Bytes.set_int32_be bad 0 (-5l);
  match Wire.feed d2 bad 0 4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative-length frame accepted"

let test_framing_frames_before_violation () =
  let good = Wire.encode "good" in
  let bad = Bytes.make 4 '\000' in
  let chunk = good ^ Bytes.to_string bad in
  let d = Wire.decoder () in
  (* frames completed before the bad header are delivered exactly once... *)
  check_frames "pre-violation frame" [ "good" ] (feed_string d chunk);
  (* ...and the poisoning surfaces on the next feed *)
  match feed_string d (Wire.encode "after") with
  | Error _ -> ()
  | Ok fs ->
    Alcotest.failf "poisoned decoder yielded %d frames" (List.length fs)

(* -- message codecs ----------------------------------------------------- *)

let wire_opts =
  { Opts.default with
    seeds = [ 3; 4 ];
    domains = Some 2;
    fault_rate = 0.25;
    retries = 5;
    deadline_ms = 1000 }

let test_request_roundtrip () =
  let requests =
    [ Wire.Submit
        { tenant = "acme"; backend = "rustbrain";
          cases = Some [ "c1"; "c2" ]; opts = Some wire_opts };
      Wire.Submit
        { tenant = "default"; backend = "llm-only"; cases = None; opts = None };
      Wire.Status None;
      Wire.Status (Some 7);
      Wire.Cancel 3;
      Wire.Results 9;
      Wire.Shutdown ]
  in
  List.iter
    (fun r ->
      match Wire.parse_request (Wire.request_to_string r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "request round-trips: %s" (Wire.request_to_string r))
          true (r = r')
      | Error e -> Alcotest.failf "request rejected: %s" e)
    requests

let test_response_roundtrip () =
  (* a report member built through the canonical Json renderer round-trips
     byte-exactly; real CASE frames splice Report.to_json, tested below *)
  let report_json =
    Rb_util.Json.(to_string (Obj [ ("v", Num 1.0); ("case", Str "x") ]))
  in
  let responses =
    [ Wire.Accepted { id = 4; queued = 2 };
      Wire.Busy { reason = "queue-full (128/128 jobs queued)"; retry_after_ms = 250 };
      Wire.Rejected { reason = "unknown case" };
      Wire.Job { id = 1; state = Wire.Queued { position = 3 } };
      Wire.Job { id = 1; state = Wire.Running { done_cases = 2; total_cases = 9 } };
      Wire.Job
        { id = 1; state = Wire.Finished { cases = 9; passed = 8; failed = None } };
      Wire.Job
        { id = 2;
          state = Wire.Finished { cases = 1; passed = 0; failed = Some "boom" } };
      Wire.Job { id = 5; state = Wire.Cancelled };
      Wire.Job
        { id = 6;
          state =
            Wire.Quarantined
              { crashes = 3; reason = "crashed its runner 3 times";
                last_case = Some "case-b" } };
      Wire.Server
        { queued = 3; running = 2; completed = 7; cancelled = 1;
          quarantined = 1; tenants = [ ("acme", 2); ("beta", 1) ] };
      Wire.Case { id = 0; seq = 2; case = "c\"x"; seed = 42; report_json };
      Wire.Done { id = 0; cases = 4; passed = 4; failed = None };
      Wire.Quarantined_result
        { id = 6; crashes = 3; reason = "poison"; last_case = None };
      Wire.Shutting_down { active = 1; queued = 0 };
      Wire.Draining { active = 1; queued = 2 };
      Wire.Health
        { queued = 2; running = 1; quarantined = 1; draining = false;
          slots = [ (0, "running job 4 (pid 123)"); (1, "idle") ];
          pool = "workers"; worker_pids = [ 123; 456 ]; respawns = 2;
          kills_term = 1; kills_kill = 1; zombies = 0 };
      Wire.Health
        { queued = 0; running = 0; quarantined = 0; draining = true;
          slots = []; pool = "in-process"; worker_pids = []; respawns = 0;
          kills_term = 0; kills_kill = 0; zombies = 1 };
      Wire.Error_msg "bad frame length 0" ]
  in
  List.iter
    (fun r ->
      match Wire.parse_response (Wire.response_to_string r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "response round-trips: %s" (Wire.response_to_string r))
          true (r = r')
      | Error e -> Alcotest.failf "response rejected: %s" e)
    responses

let test_case_frame_verbatim () =
  (* the CASE frame's report member is the exact Report.to_json bytes —
     the same bytes the durable results file stores *)
  let report_json = Rustbrain.Report.to_json (mk_report ()) in
  let rendered =
    Wire.response_to_string
      (Wire.Case { id = 1; seq = 0; case = "case-a"; seed = 7; report_json })
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "splices report verbatim" true
    (contains ~needle:(Printf.sprintf "\"report\":%s" report_json) rendered);
  match Wire.parse_response rendered with
  | Ok (Wire.Case { report_json = rj; _ }) -> (
    (* parse side re-renders through Json.t; the report must survive *)
    match Rustbrain.Report.of_json rj with
    | Ok r -> Alcotest.(check string) "report intact" report_json
                (Rustbrain.Report.to_json r)
    | Error e -> Alcotest.failf "re-rendered report unreadable: %s" e)
  | Ok _ -> Alcotest.fail "case frame parsed as something else"
  | Error e -> Alcotest.failf "case frame rejected: %s" e

let test_malformed_requests () =
  let bad =
    [ "not json at all";
      "{}";                                      (* no type *)
      {|{"type":"warp"}|};                       (* unknown type *)
      {|{"type":"cancel"}|};                     (* cancel needs an id *)
      {|{"type":"submit","cases":"c1"}|};        (* cases must be a list *)
      {|{"type":"submit","opts":{"seeds":"1"}}|} (* mistyped opts *) ]
  in
  List.iter
    (fun s ->
      match Wire.parse_request s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request: %s" s)
    bad

(* -- campaign options wire subset --------------------------------------- *)

let test_opts_wire_roundtrip () =
  (* local plumbing must not travel: journal/trace/out stay behind *)
  let local =
    { wire_opts with
      journal = Some "j"; resume = true; trace = Some "t.jsonl";
      metrics = true; out = Some "o.jsonl" }
  in
  match Opts.of_wire_json (Opts.to_wire_json local) with
  | Error e -> Alcotest.failf "wire round-trip rejected: %s" e
  | Ok got ->
    Alcotest.(check bool) "wire fields survive, local fields dropped" true
      (got = wire_opts)

let test_opts_wire_defaults_and_rejects () =
  (match Opts.of_wire_json (Rb_util.Json.Obj []) with
  | Ok o -> Alcotest.(check bool) "empty object = defaults" true (o = Opts.default)
  | Error e -> Alcotest.failf "empty opts rejected: %s" e);
  let reject label json =
    match Opts.of_wire_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" label
  in
  Rb_util.Json.(
    reject "mistyped seeds" (Obj [ ("seeds", Str "1") ]);
    reject "empty seeds" (Obj [ ("seeds", List []) ]);
    reject "out-of-range fault rate" (Obj [ ("fault_rate", Num 1.5) ]);
    reject "negative retries" (Obj [ ("retries", Num (-1.0)) ]);
    reject "zero domains" (Obj [ ("domains", Num 0.0) ]))

let test_opts_validate () =
  let bad l o =
    match Opts.validate o with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validate accepted %s" l
  in
  bad "empty seeds" { Opts.default with seeds = [] };
  bad "fault rate 2.0" { Opts.default with fault_rate = 2.0 };
  bad "negative deadline" { Opts.default with deadline_ms = -1 };
  bad "zero domains" { Opts.default with domains = Some 0 };
  match Opts.validate wire_opts with
  | Ok o -> Alcotest.(check bool) "valid opts pass unchanged" true (o = wire_opts)
  | Error e -> Alcotest.failf "valid opts rejected: %s" e

let test_opts_journal_mode () =
  (match Opts.journal_mode Opts.default with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "default opts should run unjournaled"
  | Error e -> Alcotest.failf "default journal mode rejected: %s" e);
  let bad l o =
    match Opts.journal_mode o with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "journal_mode accepted %s" l
  in
  bad "resume without journal" { Opts.default with resume = true };
  bad "fresh without journal" { Opts.default with fresh = true };
  bad "resume+fresh"
    { Opts.default with journal = Some "j"; resume = true; fresh = true }

let test_opts_runner () =
  (match Opts.runner Opts.default ~backend:"no-such-backend" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend resolved");
  (match
     Opts.runner { Opts.default with fault_rate = 0.5 } ~backend:"llm-only"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resilience flags accepted on a baseline backend");
  match Opts.runner Opts.default ~backend:"rustbrain" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rustbrain backend rejected: %s" e

(* -- fair queue --------------------------------------------------------- *)

let drain q n =
  List.init n (fun _ ->
      match Fairq.next q with
      | Some (tenant, _) -> tenant
      | None -> Alcotest.fail "queue drained early")

let test_fairq_fifo () =
  let q = Fairq.create () in
  List.iter
    (fun p -> ignore (Result.get_ok (Fairq.admit q ~tenant:"t" ~cost:1 p)))
    [ 1; 2; 3; 4 ];
  let got = List.init 4 (fun _ -> snd (Option.get (Fairq.next q))) in
  Alcotest.(check (list int)) "FIFO within a tenant" [ 1; 2; 3; 4 ] got;
  Alcotest.(check bool) "then idle" true (Fairq.next q = None)

let test_fairq_weighted_share () =
  let q = Fairq.create ~weights:[ ("a", 2) ] () in
  List.iter
    (fun t ->
      for i = 0 to 11 do
        ignore (Result.get_ok (Fairq.admit q ~tenant:t ~cost:1 i))
      done)
    [ "a"; "b" ];
  let first = drain q 12 in
  let count t = List.length (List.filter (String.equal t) first) in
  (* stride scheduling: weight-2 tenant gets exactly 2/3 of dispatches
     under saturation *)
  Alcotest.(check int) "weight-2 tenant share" 8 (count "a");
  Alcotest.(check int) "weight-1 tenant share" 4 (count "b")

let test_fairq_cost_aware () =
  let q = Fairq.create () in
  for i = 0 to 1 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"big" ~cost:10 i))
  done;
  for i = 0 to 11 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"small" ~cost:1 i))
  done;
  let order = drain q 12 in
  Alcotest.(check string) "tie at vtime 0 breaks on name" "big" (List.hd order);
  (* the 10-case job charges 10 virtual time units, so the 1-case tenant
     gets ten dispatches before big's second job *)
  Alcotest.(check (list string)) "small runs while big pays its cost"
    (List.init 10 (fun _ -> "small"))
    (List.filteri (fun i _ -> i >= 1 && i <= 10) order)

let test_fairq_bounded () =
  let q = Fairq.create ~max_queue:3 () in
  for i = 0 to 2 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"t" ~cost:1 i))
  done;
  (match Fairq.admit q ~tenant:"other" ~cost:1 99 with
  | Error (Fairq.Queue_full { depth = 3; limit = 3 }) -> ()
  | Error r -> Alcotest.failf "wrong reject: %s" (Fairq.reject_reason r)
  | Ok _ -> Alcotest.fail "admitted past the bound");
  Alcotest.(check int) "depth unchanged" 3 (Fairq.depth q)

let test_fairq_quota () =
  let q = Fairq.create ~quota:2 () in
  for i = 0 to 1 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"greedy" ~cost:1 i))
  done;
  (match Fairq.admit q ~tenant:"greedy" ~cost:1 2 with
  | Error (Fairq.Quota_exceeded { tenant = "greedy"; queued = 2; quota = 2 }) -> ()
  | Error r -> Alcotest.failf "wrong reject: %s" (Fairq.reject_reason r)
  | Ok _ -> Alcotest.fail "quota not enforced");
  (* the queue still has room for everyone else *)
  match Fairq.admit q ~tenant:"patient" ~cost:1 0 with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "other tenant rejected: %s" (Fairq.reject_reason r)

let test_fairq_force () =
  let q = Fairq.create ~max_queue:1 ~quota:1 () in
  ignore (Result.get_ok (Fairq.admit q ~tenant:"t" ~cost:1 0));
  (* restart re-enqueue: durably accepted jobs bypass bound and quota *)
  (match Fairq.admit ~force:true q ~tenant:"t" ~cost:1 1 with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "force rejected: %s" (Fairq.reject_reason r));
  Alcotest.(check int) "both queued" 2 (Fairq.depth q);
  Alcotest.(check (list (pair string int)))
    "tenant depths" [ ("t", 2) ] (Fairq.tenant_depths q)

let test_fairq_rejoin_no_credit () =
  let q = Fairq.create () in
  for i = 0 to 3 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"a" ~cost:1 i))
  done;
  ignore (drain q 4);
  (* "b" was asleep the whole time; it rejoins at current virtual time and
     must interleave with "a", not drain banked credit first *)
  for i = 0 to 1 do
    ignore (Result.get_ok (Fairq.admit q ~tenant:"b" ~cost:1 i));
    ignore (Result.get_ok (Fairq.admit q ~tenant:"a" ~cost:1 (10 + i)))
  done;
  Alcotest.(check (list string))
    "rejoining tenant interleaves" [ "b"; "a"; "b"; "a" ] (drain q 4)

let test_fairq_deterministic () =
  let run () =
    let q = Fairq.create ~weights:[ ("w", 3) ] () in
    List.iteri
      (fun i (t, c) -> ignore (Result.get_ok (Fairq.admit q ~tenant:t ~cost:c i)))
      [ ("w", 2); ("x", 1); ("y", 5); ("w", 1); ("x", 3); ("y", 1); ("w", 4) ];
    drain q 7
  in
  Alcotest.(check (list string)) "equal admissions, equal dispatches"
    (run ()) (run ())

(* -- durable store ------------------------------------------------------ *)

let test_store_admit_durable () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s0 =
        Store.admit store ~tenant:"acme" ~backend:"rustbrain"
          ~cases:[ "c1"; "c2" ] ~opts:wire_opts
      in
      let s1 =
        Store.admit store ~tenant:"beta" ~backend:"llm-only" ~cases:[ "c3" ]
          ~opts:Opts.default
      in
      Alcotest.(check (list int)) "sequential ids" [ 0; 1 ] [ s0.id; s1.id ];
      (* durability-at-ACCEPTED: a second open of the same directory — the
         restart path — sees both submissions, in admission order *)
      let reopened = Store.open_dir ~dir () in
      let pending = Store.pending reopened in
      Alcotest.(check (list int)) "restart scan finds accepted jobs" [ 0; 1 ]
        (List.map (fun (s : Store.submission) -> s.id) pending);
      let p0 = List.hd pending in
      Alcotest.(check string) "tenant survives" "acme" p0.tenant;
      Alcotest.(check string) "backend survives" "rustbrain" p0.backend;
      Alcotest.(check (list string)) "cases survive" [ "c1"; "c2" ] p0.cases;
      Alcotest.(check bool) "wire opts survive" true (p0.opts = wire_opts);
      Alcotest.(check int) "numbering continues after restart" 2
        (Store.admit reopened ~tenant:"t" ~backend:"b" ~cases:[]
           ~opts:Opts.default)
          .id)

let test_store_cancel () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c" ]
          ~opts:Opts.default
      in
      Alcotest.(check bool) "cancel queued" true (Store.cancel store s.id);
      Alcotest.(check bool) "cancel is terminal" false (Store.cancel store s.id);
      Alcotest.(check bool) "unknown id" false (Store.cancel store 99);
      Alcotest.(check (list int)) "not pending" []
        (List.map (fun (s : Store.submission) -> s.id) (Store.pending store));
      (* and durably so *)
      let reopened = Store.open_dir ~dir () in
      (match Store.status reopened s.id with
      | Some Store.Cancelled -> ()
      | _ -> Alcotest.fail "cancellation lost across reopen");
      Alcotest.(check (pair (pair int int) (pair int int)))
        "counts" ((0, 0), (1, 0))
        (let q, d, c, z = Store.counts reopened in
         ((q, d), (c, z))))

let test_store_results_complete () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"rustbrain"
          ~cases:[ "case-a"; "case-b" ] ~opts:Opts.default
      in
      let reports =
        [ mk_report (); mk_report ~name:"case-b" ~passed:false () ]
      in
      Store.write_results store s.id reports;
      let expect =
        String.concat ""
          (List.map (fun r -> Rustbrain.Report.to_json r ^ "\n") reports)
      in
      (match Store.read_results store s.id with
      | Some got -> Alcotest.(check string) "results round-trip" expect got
      | None -> Alcotest.fail "results missing");
      Store.complete store s.id { Store.cases = 2; passed = 1; failed = None };
      (match Store.status store s.id with
      | Some (Store.Done { cases = 2; passed = 1; failed = None }) -> ()
      | _ -> Alcotest.fail "completion not recorded");
      Alcotest.(check bool) "done jobs cannot be cancelled" false
        (Store.cancel store s.id);
      (* the done marker survives a restart, so the job is not re-run *)
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check (list int)) "done job not pending" []
        (List.map (fun (s : Store.submission) -> s.id) (Store.pending reopened));
      match Store.status reopened s.id with
      | Some (Store.Done { cases = 2; passed = 1; failed = None }) -> ()
      | _ -> Alcotest.fail "completion lost across reopen")

let test_store_progress () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      Alcotest.(check int) "no journal yet" 0 (Store.progress store 0);
      (* progress counts the journal's record segments *)
      let jdir = Store.journal_dir store 0 in
      Rb_util.Fsfile.mkdir_p jdir;
      Rb_util.Fsfile.write_atomic (Filename.concat jdir "rec-000000.json") "{}";
      Rb_util.Fsfile.write_atomic (Filename.concat jdir "rec-000001.json") "{}";
      Rb_util.Fsfile.write_atomic (Filename.concat jdir "manifest.json") "{}";
      Alcotest.(check int) "two journaled repairs" 2 (Store.progress store 0))

(* -- crash accounting (attempts WAL) ------------------------------------ *)

let ids l = List.map (fun (s : Store.submission) -> s.id) l

let test_store_attempts_wal () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c" ]
          ~opts:Opts.default
      in
      Alcotest.(check int) "no attempts yet" 0 (Store.crash_count store s.id);
      Store.begin_attempt store s.id;
      (* kill -9 equivalent: a cold reopen — the started-but-never-ended
         attempt reads back as a crash *)
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check int) "crash visible across reopen" 1
        (Store.crash_count reopened s.id);
      Store.begin_attempt reopened s.id;
      Alcotest.(check int) "crashes accumulate" 2
        (Store.crash_count reopened s.id);
      Store.end_attempt reopened s.id;
      Alcotest.(check int) "clean end settles every started attempt" 0
        (Store.crash_count reopened s.id);
      (* completion ends the open attempt too *)
      Store.begin_attempt reopened s.id;
      Store.complete reopened s.id
        { Store.cases = 1; passed = 1; failed = None };
      Alcotest.(check int) "completion is a clean end" 0
        (Store.crash_count reopened s.id))

let test_store_quarantine () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c1"; "c2" ]
          ~opts:Opts.default
      in
      (* a journal frontier, so the quarantine record can say how far the
         job got before it went poison *)
      let jdir = Store.journal_dir store s.id in
      Rb_util.Fsfile.mkdir_p jdir;
      Rb_util.Fsfile.write_atomic
        (Filename.concat jdir "rec-000000.json")
        "{\"case\":\"c1\"}";
      Store.begin_attempt store s.id;
      Store.begin_attempt store s.id;
      Store.begin_attempt store s.id;
      let info =
        Store.quarantine store s.id ~reason:"crashed its runner 3 times"
          ~backtrace:"bt"
      in
      Alcotest.(check int) "crash count captured" 3 info.Store.crashes;
      Alcotest.(check (option string)) "last journaled case captured"
        (Some "c1") info.Store.last_case;
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check (list int)) "quarantined jobs are never resumed" []
        (ids (Store.pending reopened));
      (match Store.status reopened s.id with
      | Some (Store.Quarantined q) ->
        Alcotest.(check int) "crashes durable" 3 q.Store.crashes;
        Alcotest.(check string) "reason durable" "crashed its runner 3 times"
          q.Store.reason
      | _ -> Alcotest.fail "quarantine lost across reopen");
      (match Store.quarantined reopened with
      | [ (id, _) ] -> Alcotest.(check int) "listed exactly once" s.id id
      | l -> Alcotest.failf "%d quarantine entries" (List.length l));
      let q, d, c, z = Store.counts reopened in
      Alcotest.(check (pair (pair int int) (pair int int)))
        "counts" ((0, 0), (0, 1))
        ((q, d), (c, z)))

(* -- fsck: damage classified and contained, never fatal at startup ------- *)

let raw_read path = Option.get (Rb_util.Fsfile.read path)
let queue_file dir name = Filename.concat (Filename.concat dir "queue") name

let test_fsck_truncated_submission () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      ignore
        (Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c" ]
           ~opts:Opts.default
          : Store.submission);
      (* cut the record mid-payload: shorter than its header declares *)
      let path = queue_file dir "job-000000.json" in
      let bytes = raw_read path in
      Rb_util.Fsfile.write_atomic path
        (String.sub bytes 0 (String.length bytes - 5));
      let report = Store.fsck ~heal:false ~dir () in
      Alcotest.(check int) "classified torn" 1 (Store.fsck_count `Torn report);
      (* the startup scrub sets it aside and boots *)
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check (list int)) "torn admission not resumed" []
        (ids (Store.pending reopened));
      Alcotest.(check bool) "bytes preserved for triage" true
        (Sys.file_exists
           (Filename.concat dir "quarantined/corrupt/queue-job-000000.json")))

let test_fsck_bitflip_checksum () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      ignore
        (Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c" ]
           ~opts:Opts.default
          : Store.submission);
      let path = queue_file dir "job-000000.json" in
      let bytes = Bytes.of_string (raw_read path) in
      let i = Bytes.length bytes - 2 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
      Rb_util.Fsfile.write_atomic path (Bytes.to_string bytes);
      let report = Store.fsck ~heal:false ~dir () in
      Alcotest.(check int) "classified corrupt" 1
        (Store.fsck_count `Corrupt report);
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check (list int)) "flipped record not resumed" []
        (ids (Store.pending reopened)))

let test_fsck_garbage_journal () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c1"; "c2" ]
          ~opts:Opts.default
      in
      let jdir = Store.journal_dir store s.id in
      Rb_util.Fsfile.mkdir_p jdir;
      Rb_util.Fsfile.write_atomic
        (Filename.concat jdir "rec-000000.json")
        "{\"case\":\"c1\"}";
      Rb_util.Fsfile.write_atomic
        (Filename.concat jdir "rec-000001.json")
        "}{ not json";
      let report = Store.fsck ~dir () in
      Alcotest.(check int) "garbage segment healed away" 1
        (Store.fsck_count `Healed report);
      Alcotest.(check int) "nothing corrupt" 0
        (Store.fsck_count `Corrupt report);
      let reopened = Store.open_dir ~dir () in
      Alcotest.(check (list int)) "job still resumable" [ s.id ]
        (ids (Store.pending reopened));
      Alcotest.(check int) "frontier recomputed from surviving segments" 1
        (Store.progress reopened s.id))

let test_fsck_marker_conflicts () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b" ~cases:[ "c" ]
          ~opts:Opts.default
      in
      Store.complete store s.id { Store.cases = 1; passed = 1; failed = None };
      (* duplicate the done marker under an id that was never admitted,
         and fabricate a cancelled marker conflicting with the
         completion *)
      Rb_util.Fsfile.write_atomic
        (queue_file dir "done-000007.json")
        (raw_read (queue_file dir "done-000000.json"));
      Rb_util.Fsfile.write_checked (queue_file dir "cancelled-000000.json") "{}";
      let report = Store.fsck ~dir () in
      Alcotest.(check int) "orphan and conflict both healed" 2
        (Store.fsck_count `Healed report);
      let reopened = Store.open_dir ~dir () in
      (match Store.status reopened s.id with
      | Some (Store.Done _) -> ()
      | _ -> Alcotest.fail "completion must win over a cancelled marker");
      match Store.status reopened 7 with
      | None -> ()
      | Some _ -> Alcotest.fail "orphan marker must not conjure a job")

let test_fsck_results_torn_tail () =
  with_dir (fun dir ->
      let store = Store.open_dir ~dir () in
      let s =
        Store.admit store ~tenant:"t" ~backend:"b"
          ~cases:[ "case-a"; "case-b" ] ~opts:Opts.default
      in
      Store.write_results store s.id
        [ mk_report (); mk_report ~name:"case-b" () ];
      let path = Store.results_path store s.id in
      let whole = raw_read path in
      (* cut mid final line: the torn tail is dropped, the clean prefix
         survives byte-for-byte *)
      Rb_util.Fsfile.write_atomic path
        (String.sub whole 0 (String.length whole - 7));
      let report = Store.fsck ~dir () in
      Alcotest.(check int) "torn tail healed" 1
        (Store.fsck_count `Healed report);
      let first_line = String.sub whole 0 (1 + String.index whole '\n') in
      Alcotest.(check string) "clean prefix survives" first_line
        (raw_read path))

(* -- bounded outbound buffer -------------------------------------------- *)

let test_outbuf_bounded () =
  let module O = Serve.Outbuf in
  let b = O.create ~limit:10 in
  Alcotest.(check bool) "fresh is empty" true (O.is_empty b);
  Alcotest.(check bool) "add within limit" true (O.add b "hello");
  Alcotest.(check bool) "fills to the bound" true (O.add b "world");
  Alcotest.(check int) "length tracks bytes" 10 (O.length b);
  Alcotest.(check bool) "overflow refused" false (O.add b "!");
  Alcotest.(check int) "refused add leaves contents alone" 10 (O.length b);
  (match O.peek b with
  | Some (chunk, 0) -> Alcotest.(check string) "head chunk" "hello" chunk
  | _ -> Alcotest.fail "peek on non-empty");
  O.consume b 3;
  (match O.peek b with
  | Some (chunk, off) ->
    Alcotest.(check string) "partial consume keeps the chunk" "hello" chunk;
    Alcotest.(check int) "offset advances" 3 off
  | None -> Alcotest.fail "peek after partial consume");
  O.consume b 2;
  (match O.peek b with
  | Some (chunk, 0) -> Alcotest.(check string) "boundary crossed" "world" chunk
  | _ -> Alcotest.fail "chunk boundary");
  Alcotest.(check bool) "freed space admits again" true (O.add b "12345");
  O.consume b 100;
  Alcotest.(check bool) "over-consume clamps and drains" true (O.is_empty b)

(* -- EINTR retry --------------------------------------------------------- *)

let test_retry_on_eintr () =
  let tries = ref 0 in
  let v =
    Rb_util.Retry.on_eintr (fun () ->
        incr tries;
        if !tries < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", ""))
        else 42)
  in
  Alcotest.(check int) "retried through EINTR" 42 v;
  Alcotest.(check int) "exactly three calls" 3 !tries;
  match
    Rb_util.Retry.on_eintr (fun () ->
        raise (Unix.Unix_error (Unix.EBADF, "read", "")))
  with
  | (_ : int) -> Alcotest.fail "EBADF must not be retried"
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()

(* -- versioned report codec (wire + journal + --out) -------------------- *)

let test_report_version_stamped () =
  let line = Rustbrain.Report.to_json (mk_report ()) in
  let prefix = Printf.sprintf "{\"v\":%d," Rustbrain.Report.codec_version in
  Alcotest.(check string) "v leads every rendered report" prefix
    (String.sub line 0 (String.length prefix));
  match Rustbrain.Report.of_json line with
  | Ok r -> Alcotest.(check string) "render-exact" line (Rustbrain.Report.to_json r)
  | Error e -> Alcotest.failf "own rendering rejected: %s" e

let test_report_version_legacy () =
  (* journals written before the field existed have no "v": accepted as v1 *)
  let line = Rustbrain.Report.to_json (mk_report ()) in
  let prefix = Printf.sprintf "{\"v\":%d," Rustbrain.Report.codec_version in
  let legacy = "{" ^ String.sub line (String.length prefix)
                       (String.length line - String.length prefix)
  in
  match Rustbrain.Report.of_json legacy with
  | Ok r ->
    Alcotest.(check string) "legacy line re-renders versioned" line
      (Rustbrain.Report.to_json r)
  | Error e -> Alcotest.failf "legacy line rejected: %s" e

let test_report_version_rejected () =
  let line = Rustbrain.Report.to_json (mk_report ()) in
  let swap needle replacement =
    let n = String.length needle in
    "{" ^ replacement ^ String.sub line (1 + n) (String.length line - 1 - n)
  in
  let v1 = Printf.sprintf "\"v\":%d" Rustbrain.Report.codec_version in
  (match Rustbrain.Report.of_json (swap v1 "\"v\":2") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future schema version accepted");
  match Rustbrain.Report.of_json (swap v1 "\"v\":\"1\"") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mistyped schema version accepted"

(* -- directory-entry durability (Fsfile) -------------------------------- *)

let test_fsfile_mkdir_p_nested () =
  with_dir (fun dir ->
      let deep = Filename.concat dir "a/b/c" in
      Rb_util.Fsfile.mkdir_p deep;
      Alcotest.(check bool) "creates the whole chain" true (Sys.is_directory deep);
      (* idempotent, including on the existing prefix *)
      Rb_util.Fsfile.mkdir_p deep;
      let f = Filename.concat deep "x.json" in
      Rb_util.Fsfile.write_atomic f "{}";
      Alcotest.(check (option string)) "file lands inside" (Some "{}")
        (Rb_util.Fsfile.read f);
      (* fsync_dir is best-effort: a missing path must not raise *)
      Rb_util.Fsfile.fsync_dir (Filename.concat dir "no-such-dir"))

(* -- worker-pool protocol (procpool) ------------------------------------- *)

module Procpool = Serve.Procpool
module Jobrun = Serve.Jobrun

let test_procpool_job_roundtrip () =
  let spec =
    { Procpool.id = 7;
      backend = "rustbrain";
      cases = [ "case-a"; "case \"b\"" ];
      opts = wire_opts;
      journal_dir = "/tmp/state/jobs/job-000007";
      results_path = "/tmp/state/results/job-000007.jsonl";
      domains = Some 3;
      poison =
        [ ("case-a", Jobrun.Poison_stop); ("case \"b\"", Jobrun.Poison_oom) ];
      kb_dir = Some "/tmp/state/kb/tenant-a";
      kb_readonly = true }
  in
  List.iter
    (fun msg ->
      match Procpool.to_worker_of_string (Procpool.to_worker_string msg) with
      | Ok m ->
        Alcotest.(check bool)
          (Printf.sprintf "to-worker round-trips: %s"
             (Procpool.to_worker_string msg))
          true (m = msg)
      | Error e -> Alcotest.failf "to-worker rejected: %s" e)
    [ Procpool.Job spec;
      Procpool.Job { spec with domains = None; poison = [] };
      Procpool.Job { spec with kb_dir = None; kb_readonly = false };
      Procpool.Job { spec with kb_readonly = false };
      Procpool.Cancel ]

let test_procpool_server_roundtrip () =
  let report_json =
    Rb_util.Json.(to_string (Obj [ ("v", Num 1.0); ("case", Str "x") ]))
  in
  List.iter
    (fun msg ->
      match Procpool.to_server_of_string (Procpool.to_server_string msg) with
      | Ok m ->
        Alcotest.(check bool)
          (Printf.sprintf "to-server round-trips: %s"
             (Procpool.to_server_string msg))
          true (m = msg)
      | Error e -> Alcotest.failf "to-server rejected: %s" e)
    [ Procpool.Hello { pid = 4242 };
      Procpool.Heartbeat;
      Procpool.Case_done { seq = 3; case = "c\"x"; seed = 42; report_json };
      Procpool.Job_done { cases = 4; passed = 3; failed = None; replayed = 2 };
      Procpool.Job_done
        { cases = 0; passed = 0; failed = Some "boom"; replayed = 0 } ]

let test_procpool_case_done_verbatim () =
  (* like Wire.Case: the report member must be spliced bytes, not a
     re-rendering — both isolation modes stream the exact bytes the
     results file stores *)
  let report_json = Rustbrain.Report.to_json (mk_report ()) in
  let rendered =
    Procpool.to_server_string
      (Procpool.Case_done { seq = 0; case = "case-a"; seed = 7; report_json })
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report spliced verbatim" true
    (contains ~needle:(Printf.sprintf "\"report\":%s" report_json) rendered)

let test_procpool_malformed () =
  List.iter
    (fun s ->
      match Procpool.to_worker_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed to-worker: %s" s)
    [ "nope"; "{}"; {|{"type":"job"}|}; {|{"type":"warp"}|} ];
  List.iter
    (fun s ->
      match Procpool.to_server_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed to-server: %s" s)
    [ "nope"; "{}"; {|{"type":"case"}|}; {|{"type":"warp"}|} ]

let test_poison_labels () =
  List.iter
    (fun m ->
      match Jobrun.poison_of_label (Jobrun.poison_label m) with
      | Some m' ->
        Alcotest.(check bool)
          (Printf.sprintf "poison label round-trips: %s" (Jobrun.poison_label m))
          true (m = m')
      | None -> Alcotest.failf "label %s unreadable" (Jobrun.poison_label m))
    [ Jobrun.Poison_exit; Jobrun.Poison_hang; Jobrun.Poison_raise;
      Jobrun.Poison_stop; Jobrun.Poison_kill; Jobrun.Poison_oom ];
  Alcotest.(check bool) "unknown label refused" true
    (Jobrun.poison_of_label "warp" = None)

let test_procpool_backoff () =
  let rng = Rb_util.Rng.create 11 in
  (* bounds: jitter is ±25%, base doubles from 0.25s and caps at 30s *)
  for failures = 1 to 12 do
    let base = Float.min 30.0 (0.25 *. Float.pow 2.0 (float_of_int (failures - 1))) in
    for _ = 1 to 50 do
      let d = Procpool.backoff_delay ~failures rng in
      Alcotest.(check bool)
        (Printf.sprintf "delay in jitter band at %d failures" failures)
        true
        (d >= (0.75 *. base) -. 1e-9 && d <= (1.25 *. base) +. 1e-9)
    done
  done;
  (* determinism: same seed, same draws *)
  let a = List.init 8 (fun i -> Procpool.backoff_delay ~failures:(i + 1)
                                  (Rb_util.Rng.create 5)) in
  let b = List.init 8 (fun i -> Procpool.backoff_delay ~failures:(i + 1)
                                  (Rb_util.Rng.create 5)) in
  Alcotest.(check (list (float 1e-12))) "seeded jitter deterministic" a b

let suite =
  [ Alcotest.test_case "wire: framing round-trip" `Quick test_framing_roundtrip;
    Alcotest.test_case "wire: byte-at-a-time feed" `Quick
      test_framing_byte_at_a_time;
    Alcotest.test_case "wire: torn frames buffer" `Quick test_framing_torn;
    Alcotest.test_case "wire: oversized frame poisons" `Quick
      test_framing_oversized;
    Alcotest.test_case "wire: non-positive length rejected" `Quick
      test_framing_nonpositive;
    Alcotest.test_case "wire: frames before violation delivered once" `Quick
      test_framing_frames_before_violation;
    Alcotest.test_case "wire: request codec round-trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "wire: response codec round-trip" `Quick
      test_response_roundtrip;
    Alcotest.test_case "wire: case frame splices report verbatim" `Quick
      test_case_frame_verbatim;
    Alcotest.test_case "wire: malformed requests rejected" `Quick
      test_malformed_requests;
    Alcotest.test_case "opts: wire subset round-trip" `Quick
      test_opts_wire_roundtrip;
    Alcotest.test_case "opts: wire defaults and rejections" `Quick
      test_opts_wire_defaults_and_rejects;
    Alcotest.test_case "opts: validate ranges" `Quick test_opts_validate;
    Alcotest.test_case "opts: journal-mode policy" `Quick test_opts_journal_mode;
    Alcotest.test_case "opts: backend resolution" `Quick test_opts_runner;
    Alcotest.test_case "fairq: FIFO within tenant" `Quick test_fairq_fifo;
    Alcotest.test_case "fairq: weighted share" `Quick test_fairq_weighted_share;
    Alcotest.test_case "fairq: cost-aware virtual time" `Quick
      test_fairq_cost_aware;
    Alcotest.test_case "fairq: bounded admission" `Quick test_fairq_bounded;
    Alcotest.test_case "fairq: per-tenant quota" `Quick test_fairq_quota;
    Alcotest.test_case "fairq: force bypass for restart" `Quick test_fairq_force;
    Alcotest.test_case "fairq: rejoin banks no credit" `Quick
      test_fairq_rejoin_no_credit;
    Alcotest.test_case "fairq: deterministic dispatch" `Quick
      test_fairq_deterministic;
    Alcotest.test_case "store: admission durable at ACCEPTED" `Quick
      test_store_admit_durable;
    Alcotest.test_case "store: cancel transitions" `Quick test_store_cancel;
    Alcotest.test_case "store: results and completion" `Quick
      test_store_results_complete;
    Alcotest.test_case "store: journal progress" `Quick test_store_progress;
    Alcotest.test_case "store: attempts WAL counts crashes" `Quick
      test_store_attempts_wal;
    Alcotest.test_case "store: quarantine durable and terminal" `Quick
      test_store_quarantine;
    Alcotest.test_case "fsck: truncated submission set aside" `Quick
      test_fsck_truncated_submission;
    Alcotest.test_case "fsck: bit-flipped checksum caught" `Quick
      test_fsck_bitflip_checksum;
    Alcotest.test_case "fsck: garbage journal segment healed" `Quick
      test_fsck_garbage_journal;
    Alcotest.test_case "fsck: orphan and conflicting markers" `Quick
      test_fsck_marker_conflicts;
    Alcotest.test_case "fsck: results torn tail dropped" `Quick
      test_fsck_results_torn_tail;
    Alcotest.test_case "outbuf: bounded chunked buffer" `Quick
      test_outbuf_bounded;
    Alcotest.test_case "retry: EINTR loop" `Quick test_retry_on_eintr;
    Alcotest.test_case "report: codec version stamped" `Quick
      test_report_version_stamped;
    Alcotest.test_case "report: legacy lines accepted as v1" `Quick
      test_report_version_legacy;
    Alcotest.test_case "report: wrong version refused" `Quick
      test_report_version_rejected;
    Alcotest.test_case "fsfile: mkdir_p durability chain" `Quick
      test_fsfile_mkdir_p_nested;
    Alcotest.test_case "procpool: job codec round-trip" `Quick
      test_procpool_job_roundtrip;
    Alcotest.test_case "procpool: server codec round-trip" `Quick
      test_procpool_server_roundtrip;
    Alcotest.test_case "procpool: case frame splices report verbatim" `Quick
      test_procpool_case_done_verbatim;
    Alcotest.test_case "procpool: malformed frames rejected" `Quick
      test_procpool_malformed;
    Alcotest.test_case "procpool: poison labels round-trip" `Quick
      test_poison_labels;
    Alcotest.test_case "procpool: respawn backoff bounds" `Quick
      test_procpool_backoff ]

(* The observability layer: trace sinks and gating, JSONL round trips,
   metric instruments and cross-registry merging — plus the bugfix sweep
   riding on the same PR (RFC-4180 CSV quoting, atomic-write tmp cleanup,
   scheduler domain-count cap). *)

module Trace = Obs.Trace
module Metrics = Obs.Metrics

(* -- trace sinks -------------------------------------------------------- *)

let test_memory_order () =
  let sink, records = Trace.memory () in
  Trace.event sink "a";
  Trace.event sink ~attrs:[ ("k", Trace.I 1) ] "b";
  Trace.event sink "c";
  Alcotest.(check (list string))
    "emission order" [ "a"; "b"; "c" ]
    (List.map (fun r -> r.Trace.name) (records ()))

let test_memory_ring () =
  let sink, records = Trace.memory ~ring:2 () in
  List.iter (Trace.event sink) [ "a"; "b"; "c"; "d" ];
  Alcotest.(check (list string))
    "oldest dropped" [ "c"; "d" ]
    (List.map (fun r -> r.Trace.name) (records ()))

let test_span_clock_and_post () =
  let sink, records = Trace.memory () in
  let now = ref 10.0 in
  Trace.set_time_source sink (fun () -> !now);
  let v =
    Trace.span sink "work"
      ~attrs:(fun () -> [ ("case", Trace.S "c1") ])
      ~post:(fun v -> [ ("result", Trace.I v) ])
      (fun () ->
        now := 12.5;
        42)
  in
  Alcotest.(check int) "span returns f's value" 42 v;
  match records () with
  | [ r ] ->
    Alcotest.(check string) "name" "work" r.Trace.name;
    Alcotest.(check (float 1e-9)) "start" 10.0 r.Trace.t;
    Alcotest.(check (float 1e-9)) "sim duration" 2.5 r.Trace.dur;
    Alcotest.(check bool) "attrs + post merged" true
      (r.Trace.attrs
      = [ ("case", Trace.S "c1"); ("result", Trace.I 42) ])
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let test_span_raised () =
  let sink, records = Trace.memory () in
  (match Trace.span sink "boom" (fun () -> failwith "no") with
  | _ -> Alcotest.fail "span swallowed the exception"
  | exception Failure m -> Alcotest.(check string) "rethrown" "no" m);
  match records () with
  | [ r ] ->
    Alcotest.(check bool) "raised attr" true
      (List.mem ("raised", Trace.B true) r.Trace.attrs)
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let test_gating_off () =
  (* with no ambient sink the attribute closures must never run *)
  let forced = ref false in
  let v =
    Trace.in_span "quiet"
      ~attrs:(fun () ->
        forced := true;
        [])
      (fun () -> 7)
  in
  Trace.note "quiet-note" (fun () ->
      forced := true;
      []);
  Alcotest.(check int) "in_span passes through" 7 v;
  Alcotest.(check bool) "closures not forced" false !forced

let test_ambient_scoping () =
  let sink, records = Trace.memory () in
  Alcotest.(check bool) "no ambient outside" true (Trace.ambient () = None);
  Trace.with_ambient sink (fun () ->
      Trace.note "inside" (fun () -> []);
      Trace.without_ambient (fun () -> Trace.note "hidden" (fun () -> []));
      Trace.note "inside-again" (fun () -> []));
  (match Trace.with_ambient sink (fun () -> failwith "x") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "ambient restored after raise" true
    (Trace.ambient () = None);
  Alcotest.(check (list string))
    "without_ambient invisible" [ "inside"; "inside-again" ]
    (List.map (fun r -> r.Trace.name) (records ()))

let test_tee () =
  let a, ra = Trace.memory () in
  let b, rb = Trace.memory () in
  let t = Trace.tee a b in
  Trace.event t "x";
  Alcotest.(check int) "left got it" 1 (List.length (ra ()));
  Alcotest.(check int) "right got it" 1 (List.length (rb ()))

(* -- JSONL -------------------------------------------------------------- *)

let index_of haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  go 0

let test_jsonl_roundtrip () =
  let r =
    { Trace.kind = Trace.Span;
      name = "phase \"x\"\n";
      t = 1.25;
      dur = 0.5;
      wall_ms = 0.;
      attrs =
        [ ("i", Trace.I 3); ("f", Trace.F 0.25); ("s", Trace.S "a,b");
          ("b", Trace.B true) ] }
  in
  let line = Trace.to_jsonl r in
  (match Trace.of_jsonl line with
  | Error e -> Alcotest.failf "of_jsonl failed: %s" e
  | Ok r' ->
    Alcotest.(check string) "reprint identical" line (Trace.to_jsonl r'));
  let ev = { r with kind = Trace.Event; dur = 0.; attrs = [] } in
  Alcotest.(check bool) "events omit dur" true
    (index_of (Trace.to_jsonl ev) {|"dur"|} = None);
  let wall = Trace.to_jsonl ~wall:true { r with wall_ms = 3.125 } in
  match Trace.of_jsonl wall with
  | Error e -> Alcotest.failf "wall round trip failed: %s" e
  | Ok r' -> Alcotest.(check (float 1e-9)) "wall_ms kept" 3.125 r'.Trace.wall_ms

let test_jsonl_errors () =
  List.iter
    (fun line ->
      match Trace.of_jsonl line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [ "not json"; "{}"; {|{"k":"span","name":"x"}|}; {|{"k":"nope","name":"x","t":0}|} ]

let with_dir f =
  let dir = Filename.temp_file "rustbrain-test-obs" "" in
  Sys.remove dir;
  Rb_util.Fsfile.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let test_file_sink () =
  with_dir (fun dir ->
      let path = Filename.concat dir "trace.jsonl" in
      let sink = Trace.file path in
      Trace.event sink "a";
      Trace.event sink "b";
      Alcotest.(check bool) "nothing before close" false (Sys.file_exists path);
      Trace.close sink;
      Trace.close sink (* idempotent *);
      match Rb_util.Fsfile.read path with
      | None -> Alcotest.fail "file sink wrote nothing"
      | Some contents ->
        let lines =
          String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
        in
        Alcotest.(check int) "two lines" 2 (List.length lines);
        List.iter
          (fun l ->
            match Trace.of_jsonl l with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "unparseable line %S: %s" l e)
          lines)

(* -- metrics ------------------------------------------------------------ *)

let test_counter () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "llm.calls" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value c);
  Alcotest.(check int) "find-or-create shares the cell" 5
    (Metrics.counter_value (Metrics.counter reg "llm.calls"))

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "holds last value" 3.5 (Metrics.gauge_value g)

let test_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] reg "secs" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 100.0 ];
  Alcotest.(check int) "count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 105.5 (Metrics.histogram_sum h)

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:2 (Metrics.counter a "c");
  Metrics.incr ~by:3 (Metrics.counter b "c");
  Metrics.incr ~by:7 (Metrics.counter b "only-b");
  Metrics.set (Metrics.gauge a "g") 1.0;
  Metrics.set (Metrics.gauge b "g") 5.0;
  Metrics.observe (Metrics.histogram a "h") 0.5;
  Metrics.observe (Metrics.histogram b "h") 20.0;
  Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 5 (Metrics.counter_value (Metrics.counter a "c"));
  Alcotest.(check int) "absent counter copied" 7
    (Metrics.counter_value (Metrics.counter a "only-b"));
  Alcotest.(check (float 1e-9)) "gauges keep max" 5.0
    (Metrics.gauge_value (Metrics.gauge a "g"));
  Alcotest.(check int) "histograms add" 2
    (Metrics.histogram_count (Metrics.histogram a "h"));
  Alcotest.(check (float 1e-9)) "histogram sums add" 20.5
    (Metrics.histogram_sum (Metrics.histogram a "h"))

let test_metrics_json_sorted () =
  let reg = Metrics.create () in
  List.iter (fun n -> Metrics.incr (Metrics.counter reg n)) [ "z"; "a"; "m" ];
  let rendered = Rb_util.Json.to_string (Metrics.to_json reg) in
  (* names are emitted sorted regardless of insertion order *)
  let pos n =
    match index_of rendered ("\"" ^ n ^ "\"") with
    | Some i -> i
    | None -> Alcotest.failf "missing %s in %s" n rendered
  in
  Alcotest.(check bool) "sorted names" true (pos "a" < pos "m" && pos "m" < pos "z")

let test_ambient_registry () =
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      Metrics.inc "hits";
      Metrics.inc ~by:2 "hits";
      Metrics.set_gauge "level" 4.0;
      Metrics.observe_s "secs" 0.5);
  Metrics.inc "hits" (* lands in the (discarded) outer ambient registry *);
  Alcotest.(check int) "scoped counts" 3 (Metrics.counter_value (Metrics.counter reg "hits"));
  Alcotest.(check (float 1e-9)) "scoped gauge" 4.0
    (Metrics.gauge_value (Metrics.gauge reg "level"));
  Alcotest.(check int) "scoped histogram" 1
    (Metrics.histogram_count (Metrics.histogram reg "secs"))

(* -- satellite: RFC-4180 CSV quoting + column-count invariant ----------- *)

(* a small conforming RFC-4180 field splitter: the test must not reuse the
   code under test *)
let csv_fields line =
  let n = String.length line in
  let fields = ref [] and buf = Buffer.create 32 in
  let rec plain i =
    if i >= n then fields := Buffer.contents buf :: !fields
    else
      match line.[i] with
      | ',' ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then Alcotest.fail "unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let mk_report name =
  { Rustbrain.Report.case_name = name;
    category = Miri.Diag.Validity;
    passed = true;
    semantic = false;
    seconds = 1.5;
    llm_calls = 2;
    tokens = 100;
    iterations = 1;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = [ 1; 0 ];
    winning_solution = Some "s1";
    feedback_hit = false;
    retries = 0;
    faults = 0;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = [] }

let test_csv_quoting () =
  let module R = Rustbrain.Report in
  List.iter
    (fun nasty ->
      let row = R.csv_row (mk_report nasty) in
      Alcotest.(check bool)
        (Printf.sprintf "row for %S is one line" nasty)
        false
        (String.contains row '\n' &&
         (* a bare newline may only appear inside a quoted field *)
         csv_fields row = []);
      match csv_fields row with
      | first :: _ ->
        Alcotest.(check string)
          (Printf.sprintf "field %S round trips" nasty)
          nasty first
      | [] -> Alcotest.fail "empty row")
    [ "plain"; "with,comma"; "with\"quote"; "with\rreturn"; "a\r\nb"; "" ]

let test_csv_column_invariant () =
  let module R = Rustbrain.Report in
  let header_cols = List.length (csv_fields R.csv_header) in
  List.iter
    (fun name ->
      let cols = List.length (csv_fields (R.csv_row (mk_report name))) in
      Alcotest.(check int)
        (Printf.sprintf "column count for %S" name)
        header_cols cols)
    [ "plain"; "a,b,c"; "x\ry"; "q\"q"; "nl\nnl" ]

(* -- satellite: write_channel cleans up its temp file on failure -------- *)

let entries dir = Sys.readdir dir |> Array.to_list |> List.sort compare

let test_write_channel_cleanup () =
  with_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Rb_util.Fsfile.write_atomic path "old";
      let before = entries dir in
      (match
         Rb_util.Fsfile.write_channel path (fun oc ->
             output_string oc "partial";
             failwith "emit blew up")
       with
      | () -> Alcotest.fail "write_channel swallowed the exception"
      | exception Failure m -> Alcotest.(check string) "propagated" "emit blew up" m);
      Alcotest.(check (list string)) "no tmp leak after emit failure" before (entries dir);
      Alcotest.(check (option string)) "target untouched" (Some "old")
        (Rb_util.Fsfile.read path);
      (* emit closing the channel itself makes the helper's own flush fail:
         the tmp file must still be removed and the error surfaced *)
      (match
         Rb_util.Fsfile.write_channel path (fun oc ->
             output_string oc "x";
             close_out oc)
       with
      | () -> Alcotest.fail "expected the flush-after-close failure"
      | exception Sys_error _ -> ());
      Alcotest.(check (list string)) "no tmp leak after flush failure" before (entries dir))

(* -- satellite: scheduler domain-count cap ------------------------------ *)

let test_default_domains_cap () =
  Alcotest.(check bool) "cap constant" true (Exec.Scheduler.default_domain_cap = 8);
  let d = Exec.Scheduler.default_domains () in
  Alcotest.(check bool) "default within [1, cap]" true
    (d >= 1 && d <= Exec.Scheduler.default_domain_cap);
  Alcotest.(check bool) "explicit cap honored" true
    (Exec.Scheduler.default_domains ~cap:2 () <= 2);
  Alcotest.(check int) "cap floors at one domain" 1
    (Exec.Scheduler.default_domains ~cap:1 ())

let suite =
  [ Alcotest.test_case "trace: memory sink order" `Quick test_memory_order;
    Alcotest.test_case "trace: ring bound" `Quick test_memory_ring;
    Alcotest.test_case "trace: span clock + post attrs" `Quick test_span_clock_and_post;
    Alcotest.test_case "trace: span on raise" `Quick test_span_raised;
    Alcotest.test_case "trace: gating off runs nothing" `Quick test_gating_off;
    Alcotest.test_case "trace: ambient scoping" `Quick test_ambient_scoping;
    Alcotest.test_case "trace: tee" `Quick test_tee;
    Alcotest.test_case "trace: jsonl round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "trace: jsonl rejects garbage" `Quick test_jsonl_errors;
    Alcotest.test_case "trace: file sink" `Quick test_file_sink;
    Alcotest.test_case "metrics: counter" `Quick test_counter;
    Alcotest.test_case "metrics: gauge" `Quick test_gauge;
    Alcotest.test_case "metrics: histogram" `Quick test_histogram;
    Alcotest.test_case "metrics: merge" `Quick test_merge;
    Alcotest.test_case "metrics: json sorted" `Quick test_metrics_json_sorted;
    Alcotest.test_case "metrics: ambient registry" `Quick test_ambient_registry;
    Alcotest.test_case "csv: RFC-4180 quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv: column-count invariant" `Quick test_csv_column_invariant;
    Alcotest.test_case "fsfile: write_channel cleanup" `Quick test_write_channel_cleanup;
    Alcotest.test_case "scheduler: default_domains cap" `Quick test_default_domains_cap ]

(* The resilience layer: deterministic fault plans, retry/backoff/circuit
   breaker over the simulated client, interpreter allocation fuel, and the
   pipeline-level guarantees (fault rate zero is byte-for-byte invisible;
   any fault rate is same-seed deterministic). *)

open Llm_sim

(* ---- shared fixtures (mirrors test_llm.ml) ---- *)

let mk_client ?faults ?(seed = 9) ?(model = Profile.Gpt4) () =
  let clock = Rb_util.Simclock.create () in
  (Client.create ~seed ?faults ~clock (Profile.get model), clock)

let candidates =
  [ { Client.cand_id = 0; quality = 1.0; brief = "the right fix"; kind = "modify" };
    { Client.cand_id = 1; quality = 0.2; brief = "wrong site"; kind = "modify" };
    { Client.cand_id = 2; quality = 0.1; brief = "useless assert"; kind = "assert" } ]

let prompt =
  Prompt.make [ (Prompt.sec_code, "fn main() { }"); (Prompt.sec_error, "UB(alloc)") ]

let task () =
  { Client.category = Miri.Diag.Alloc; prompt; candidates; kind_bias = [] }

let sampling = { Client.temperature = 0.5 }

let flt ?(wait = 0.0) kind = Some { Faults.kind; wait }

(* ---- fault plans ---- *)

let test_plan_same_seed () =
  let schedule seed =
    let plan = Faults.create ~seed (Faults.uniform 0.4) in
    List.init 300 (fun _ -> Faults.draw plan)
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (schedule 5 = schedule 5);
  Alcotest.(check bool) "different seed, different schedule" true
    (schedule 5 <> schedule 6)

let test_plan_counts () =
  let plan = Faults.create ~seed:3 (Faults.uniform 0.5) in
  for _ = 1 to 400 do ignore (Faults.draw plan) done;
  let injected = Faults.injected plan in
  Alcotest.(check bool) "roughly half the draws fault" true
    (injected > 100 && injected < 300);
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 (Faults.by_kind plan) in
  Alcotest.(check int) "by_kind sums to injected" injected sum

let test_zero_rate_never_faults () =
  Alcotest.(check (float 1e-9)) "none has rate 0" 0.0 (Faults.total_rate Faults.none);
  let plan = Faults.create ~seed:1 Faults.none in
  for _ = 1 to 300 do
    if Faults.draw plan <> None then Alcotest.fail "zero-rate plan injected a fault"
  done;
  Alcotest.(check int) "injected 0" 0 (Faults.injected plan)

(* ---- faulted client ---- *)

let test_scripted_errors_surface () =
  let faults =
    Faults.scripted
      [ flt ~wait:30.0 Faults.Timeout; flt ~wait:7.0 Faults.Rate_limit;
        flt Faults.Server_error; flt Faults.Truncated; flt Faults.Malformed;
        None ]
  in
  let client, clock = mk_client ~faults () in
  let call () = Client.choose_repair_result client sampling (task ()) in
  (match call () with
  | Error Client.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout");
  Alcotest.(check bool) "timeout hangs the simulated clock" true
    (Rb_util.Simclock.now clock >= 30.0);
  (match call () with
  | Error (Client.Rate_limited w) ->
      Alcotest.(check (float 1e-9)) "retry-after carried" 7.0 w
  | _ -> Alcotest.fail "expected Rate_limited");
  (match call () with
  | Error Client.Server_error -> ()
  | _ -> Alcotest.fail "expected Server_error");
  (match call () with
  | Error Client.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (match call () with
  | Error Client.Malformed -> ()
  | _ -> Alcotest.fail "expected Malformed");
  (match call () with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "past the script every call succeeds");
  Alcotest.(check int) "every attempt metered" 6 (Client.stats client).Client.calls

let test_retry_returns_oracle_answer () =
  (* a faulted call never advances the choice stream: the retry answers
     exactly what the un-faulted call would have *)
  let pristine, _ = mk_client () in
  let expected = Client.choose_repair pristine sampling (task ()) in
  let faulted, _ =
    mk_client ~faults:(Faults.scripted [ flt Faults.Server_error; None ]) ()
  in
  (match Client.choose_repair_result faulted sampling (task ()) with
  | Error Client.Server_error -> ()
  | _ -> Alcotest.fail "first attempt should fault");
  match Client.choose_repair_result faulted sampling (task ()) with
  | Ok got ->
      Alcotest.(check bool) "retry matches un-faulted answer" true (got = expected)
  | Error _ -> Alcotest.fail "second attempt should succeed"

(* ---- resilient wrapper ---- *)

let mk_resilient ?(seed = 11) ?(config = Resilient.default_config) ?fallback
    ~script () =
  let client, clock = mk_client ~faults:(Faults.scripted script) () in
  let fallback =
    match fallback with
    | Some true -> Some (Client.create ~seed:41 ~clock (Profile.get Profile.Gpt35))
    | _ -> None
  in
  (Resilient.create ~seed ~config ?fallback client, clock)

let test_retry_recovers_deterministically () =
  let run () =
    let r, clock =
      mk_resilient
        ~script:[ flt Faults.Server_error; flt Faults.Server_error; None ] ()
    in
    let choice = Resilient.choose_repair r sampling (task ()) in
    let st = Resilient.stats r in
    (choice, st.Resilient.retries, st.Resilient.faults,
     Rb_util.Simclock.now clock)
  in
  let (choice, retries, faults, elapsed) = run () in
  Alcotest.(check bool) "recovered an answer" true (choice <> None);
  Alcotest.(check int) "two retries" 2 retries;
  Alcotest.(check int) "two faults" 2 faults;
  Alcotest.(check bool) "backoff charged to the clock" true (elapsed > 0.0);
  Alcotest.(check bool) "same seed, same recovery schedule" true (run () = run ())

let test_rate_limit_floors_backoff () =
  let config = { Resilient.default_config with Resilient.jitter = 0.0 } in
  let r, clock =
    mk_resilient ~config ~script:[ flt ~wait:50.0 Faults.Rate_limit; None ] ()
  in
  ignore (Resilient.choose_repair r sampling (task ()));
  Alcotest.(check bool) "waited at least the suggested retry-after" true
    (Rb_util.Simclock.now clock >= 50.0)

let trip_config =
  { Resilient.default_config with
    Resilient.max_retries = 0; breaker_threshold = 3; jitter = 0.0 }

let test_breaker_trips () =
  let script = List.init 8 (fun _ -> flt Faults.Server_error) in
  let r, _ = mk_resilient ~config:trip_config ~script () in
  Alcotest.(check bool) "starts closed" true (Resilient.breaker_state r = Resilient.Closed);
  for _ = 1 to 3 do
    Alcotest.(check bool) "no fallback: degrades to None" true
      (Resilient.choose_repair r sampling (task ()) = None)
  done;
  Alcotest.(check bool) "three consecutive failures trip it" true
    (Resilient.breaker_state r = Resilient.Open);
  let st = Resilient.stats r in
  Alcotest.(check int) "one trip" 1 st.Resilient.breaker_trips;
  Alcotest.(check bool) "degraded and gave up" true
    (Resilient.degraded r && Resilient.gave_up r);
  Alcotest.(check string) "completion degrades to a marker"
    "[degraded] completion unavailable"
    (Resilient.complete r sampling prompt)

let test_breaker_half_open_recovers () =
  let script = List.init 3 (fun _ -> flt Faults.Server_error) @ [ None ] in
  let r, clock = mk_resilient ~config:trip_config ~script () in
  for _ = 1 to 3 do ignore (Resilient.choose_repair r sampling (task ())) done;
  Alcotest.(check bool) "open after threshold" true
    (Resilient.breaker_state r = Resilient.Open);
  Rb_util.Simclock.charge clock (trip_config.Resilient.breaker_cooldown +. 1.0);
  let choice = Resilient.choose_repair r sampling (task ()) in
  Alcotest.(check bool) "trial call answered" true (choice <> None);
  Alcotest.(check bool) "recovered to closed" true
    (Resilient.breaker_state r = Resilient.Closed);
  Alcotest.(check int) "one recovery" 1 (Resilient.stats r).Resilient.breaker_recoveries

let test_breaker_failed_probe_reopens () =
  (* a failing half-open trial must re-open the breaker with a *fresh*
     cooldown, not leave it half-open or silently closed *)
  let script =
    List.init 4 (fun _ -> flt Faults.Server_error) @ [ None; None ]
  in
  let r, clock = mk_resilient ~config:trip_config ~script () in
  for _ = 1 to 3 do ignore (Resilient.choose_repair r sampling (task ())) done;
  Alcotest.(check bool) "open after threshold" true
    (Resilient.breaker_state r = Resilient.Open);
  Rb_util.Simclock.charge clock (trip_config.Resilient.breaker_cooldown +. 1.0);
  (* trial call: consumes the fourth scripted fault and fails *)
  Alcotest.(check bool) "failed probe degrades" true
    (Resilient.choose_repair r sampling (task ()) = None);
  Alcotest.(check bool) "straight back to open" true
    (Resilient.breaker_state r = Resilient.Open);
  Alcotest.(check int) "re-trip counted" 2 (Resilient.stats r).Resilient.breaker_trips;
  (* fresh cooldown: with no time passed, the next call must NOT be a
     trial — it degrades without touching the primary (script untouched) *)
  Alcotest.(check bool) "cooldown restarted, no early trial" true
    (Resilient.choose_repair r sampling (task ()) = None);
  Alcotest.(check bool) "still open" true
    (Resilient.breaker_state r = Resilient.Open);
  (* after the restarted cooldown, the next trial consumes the scripted
     success and recovers *)
  Rb_util.Simclock.charge clock (trip_config.Resilient.breaker_cooldown +. 1.0);
  Alcotest.(check bool) "second probe answered" true
    (Resilient.choose_repair r sampling (task ()) <> None);
  Alcotest.(check bool) "recovered to closed" true
    (Resilient.breaker_state r = Resilient.Closed);
  Alcotest.(check int) "one recovery" 1
    (Resilient.stats r).Resilient.breaker_recoveries

let test_fault_metering_survives_resume () =
  (* the journal snapshots sessions mid-campaign; the fault plan inside —
     RNG stream and per-kind meters — must marshal and resume bit-exactly *)
  let plan = Faults.create ~seed:7 (Faults.uniform 0.4) in
  let _prefix = List.init 100 (fun _ -> Faults.draw plan) in
  let bytes = Marshal.to_string plan [ Marshal.Closures ] in
  let resumed : Faults.t = Marshal.from_string bytes 0 in
  let live_rest = List.init 150 (fun _ -> Faults.draw plan) in
  let resumed_rest = List.init 150 (fun _ -> Faults.draw resumed) in
  Alcotest.(check bool) "draws continue identically after restore" true
    (live_rest = resumed_rest);
  Alcotest.(check int) "injected meter agrees" (Faults.injected plan)
    (Faults.injected resumed);
  Alcotest.(check bool) "per-kind meters agree" true
    (Faults.by_kind plan = Faults.by_kind resumed)

let test_open_breaker_uses_fallback () =
  let script = List.init 8 (fun _ -> flt Faults.Server_error) in
  let config = { trip_config with Resilient.breaker_threshold = 2 } in
  let r, _ = mk_resilient ~config ~fallback:true ~script () in
  let answers = List.init 3 (fun _ -> Resilient.choose_repair r sampling (task ())) in
  Alcotest.(check bool) "every call still answered (by the fallback)" true
    (List.for_all (fun a -> a <> None) answers);
  Alcotest.(check bool) "breaker open" true (Resilient.breaker_state r = Resilient.Open);
  let st = Resilient.stats r in
  Alcotest.(check int) "three fallback calls" 3 st.Resilient.fallback_calls;
  Alcotest.(check int) "no give-ups with a fallback" 0 st.Resilient.give_ups;
  Alcotest.(check bool) "degraded, not gave up" true
    (Resilient.degraded r && not (Resilient.gave_up r))

let test_deadline_budget () =
  let config = { Resilient.default_config with Resilient.deadline = Some 10.0 } in
  let r, clock = mk_resilient ~config ~script:[] () in
  Resilient.start_repair r;
  Alcotest.(check bool) "fresh repair inside budget" false (Resilient.deadline_exceeded r);
  Rb_util.Simclock.charge clock 20.0;
  Alcotest.(check bool) "budget spent" true (Resilient.deadline_exceeded r);
  Alcotest.(check bool) "call degrades" true
    (Resilient.choose_repair r sampling (task ()) = None);
  let st = Resilient.stats r in
  Alcotest.(check int) "deadline hit recorded once" 1 st.Resilient.deadline_hits;
  ignore (Resilient.choose_repair r sampling (task ()));
  Alcotest.(check int) "still once per repair" 1 st.Resilient.deadline_hits;
  Resilient.start_repair r;
  Alcotest.(check bool) "next repair gets a fresh window" false
    (Resilient.deadline_exceeded r);
  Alcotest.(check bool) "flags reset" false (Resilient.degraded r || Resilient.gave_up r)

(* ---- interpreter allocation fuel ---- *)

let alloc_bomb =
  "fn main() { let mut i = 0; while i < 1000 { unsafe { let mut p = alloc(16, 8); \
   dealloc(p, 16, 8); } i = i + 1; } print(0); }"

let resource_message r =
  match r.Miri.Machine.outcome with
  | Miri.Machine.Resource_limit m -> m
  | _ -> Alcotest.failf "expected resource-limit, got %s" (Helpers.outcome_kind r)

let test_alloc_count_fuel () =
  let r = Helpers.run ~max_allocs:16 alloc_bomb in
  Alcotest.(check bool) "diagnosed as allocation-budget exhaustion" true
    (Helpers.contains (resource_message r) "allocation budget")

let test_alloc_bytes_fuel () =
  let r = Helpers.run ~max_alloc_bytes:256 alloc_bomb in
  Alcotest.(check bool) "diagnosed as byte-budget exhaustion" true
    (Helpers.contains (resource_message r) "allocation-byte budget")

let test_default_caps_untouched () =
  let r = Helpers.run "fn main() { unsafe { let mut p = alloc(64, 8); dealloc(p, 64, 8); } print(7); }" in
  Alcotest.(check string) "normal programs never see the fuel" "finished"
    (Helpers.outcome_kind r)

(* ---- pipeline-level guarantees ---- *)

open Rustbrain

let quick_cfg =
  { Pipeline.default_config with Pipeline.max_solutions = 2; max_iters = 4 }

let test_fault_rate_zero_invisible () =
  (* with every rate at zero, the whole resilience apparatus — retry knobs,
     deadline watchdog, fallback client — must be bit-for-bit invisible *)
  let case = Option.get (Dataset.Corpus.find "al_double_free") in
  let render cfg =
    let session = Pipeline.create_session cfg in
    Report.to_json (Pipeline.repair session case)
  in
  let plain = render quick_cfg in
  let knobbed =
    render
      { quick_cfg with
        Pipeline.fault_rate = 0.0; max_retries = 9; deadline = Some 1.0e9 }
  in
  Alcotest.(check string) "reports byte-identical" plain knobbed;
  Alcotest.(check bool) "no resilience activity recorded" true
    (Helpers.contains plain "\"retries\":0"
    && Helpers.contains plain "\"faults\":0"
    && Helpers.contains plain "\"degraded\":false")

let test_faulted_repair_deterministic () =
  let case = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  let cfg = { quick_cfg with Pipeline.fault_rate = 0.5; max_retries = 2; seed = 3 } in
  let run () =
    let session = Pipeline.create_session cfg in
    let r = Pipeline.repair session case in
    (Report.to_json r, r.Report.faults, r.Report.retries)
  in
  let (json, faults, retries) = run () in
  Alcotest.(check bool) "faults actually injected" true (faults > 0);
  Alcotest.(check bool) "retries recorded" true (retries >= 0);
  Alcotest.(check bool) "report carries resilience fields" true
    (Helpers.contains json "\"breaker_trips\"" && Helpers.contains json "\"gave_up\"");
  Alcotest.(check bool) "same seed, same faulted run" true (run () = run ())

let test_faulted_campaign_across_domains () =
  let cases =
    List.filter_map Dataset.Corpus.find [ "al_double_free"; "va_uninit_read" ]
  in
  let backend =
    Exec.Backends.rustbrain
      ~config:{ quick_cfg with Pipeline.fault_rate = 0.3 } ()
  in
  let render domains =
    let reports, _ = Exec.Scheduler.run_seeded ~domains backend ~seeds:[ 1; 2 ] cases in
    List.map Report.to_json reports
  in
  let seq = render 1 in
  Alcotest.(check bool) "faulted campaign identical at any domain count" true
    (seq = render 2);
  Alcotest.(check int) "all reports present" 4 (List.length seq)

let suite =
  [ Alcotest.test_case "fault plan: same seed same schedule" `Quick test_plan_same_seed;
    Alcotest.test_case "fault plan: counts" `Quick test_plan_counts;
    Alcotest.test_case "fault plan: zero rate never faults" `Quick test_zero_rate_never_faults;
    Alcotest.test_case "client: scripted errors surface" `Quick test_scripted_errors_surface;
    Alcotest.test_case "client: retry returns oracle answer" `Quick test_retry_returns_oracle_answer;
    Alcotest.test_case "resilient: deterministic recovery" `Quick test_retry_recovers_deterministically;
    Alcotest.test_case "resilient: rate-limit floors backoff" `Quick test_rate_limit_floors_backoff;
    Alcotest.test_case "breaker: trips at threshold" `Quick test_breaker_trips;
    Alcotest.test_case "breaker: half-open recovery" `Quick test_breaker_half_open_recovers;
    Alcotest.test_case "breaker: failed probe reopens, fresh cooldown" `Quick
      test_breaker_failed_probe_reopens;
    Alcotest.test_case "faults: metering survives resume" `Quick
      test_fault_metering_survives_resume;
    Alcotest.test_case "breaker: open uses fallback" `Quick test_open_breaker_uses_fallback;
    Alcotest.test_case "deadline: per-repair budget" `Quick test_deadline_budget;
    Alcotest.test_case "fuel: allocation count cap" `Quick test_alloc_count_fuel;
    Alcotest.test_case "fuel: allocation byte cap" `Quick test_alloc_bytes_fuel;
    Alcotest.test_case "fuel: defaults invisible" `Quick test_default_caps_untouched;
    Alcotest.test_case "pipeline: fault rate 0 invisible" `Quick test_fault_rate_zero_invisible;
    Alcotest.test_case "pipeline: faulted repair deterministic" `Quick test_faulted_repair_deterministic;
    Alcotest.test_case "campaign: faulted run domain-invariant" `Slow test_faulted_campaign_across_domains ]

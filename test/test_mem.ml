(* Byte memory: encode/decode roundtrips, access validation, provenance. *)

open Miri

let empty_program = { Minirust.Ast.unions = []; statics = []; funcs = [] }

let no_fn _ = Alcotest.fail "no function pointers in this test"

let roundtrip ty v =
  let bytes = Mem.encode empty_program ~fn_addr:no_fn ty v in
  match Mem.decode empty_program ty bytes with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let check_roundtrip name ty v () =
  let v' = roundtrip ty v in
  if not (Value.equal v v') then
    Alcotest.failf "%s: %s decoded as %s" name (Value.to_display v) (Value.to_display v')

(* integer widths, including negatives and extremes *)
let gen_width = QCheck.Gen.oneofl Minirust.Ast.[ I8; I16; I32; I64; Usize ]

let bits_of = function
  | Minirust.Ast.I8 -> 8
  | Minirust.Ast.I16 -> 16
  | Minirust.Ast.I32 -> 32
  | Minirust.Ast.I64 | Minirust.Ast.Usize -> 64

let prop_int_roundtrip =
  let gen =
    QCheck.Gen.(
      gen_width >>= fun w ->
      let bits = bits_of w in
      (if bits = 64 then ui64
       else map Int64.of_int (int_range (-(1 lsl (bits - 1))) ((1 lsl (bits - 1)) - 1)))
      >|= fun n -> (n, w))
  in
  QCheck.Test.make ~name:"int encode/decode roundtrip" ~count:500
    (QCheck.make gen ~print:(fun (n, _) -> Int64.to_string n))
    (fun (n, w) ->
      match roundtrip (Minirust.Ast.T_int w) (Value.V_int (n, w)) with
      | Value.V_int (n', _) -> Int64.equal n n'
      | _ -> false)

let ptr_value =
  Value.V_ptr
    ( { Value.prov = Value.P_alloc 3; addr = 4242; tag = Some 7 },
      Minirust.Ast.T_raw (Minirust.Ast.Mut, Minirust.Ast.T_int Minirust.Ast.I64) )

let test_pointer_roundtrip () =
  let ty = Minirust.Ast.T_raw (Minirust.Ast.Mut, Minirust.Ast.T_int Minirust.Ast.I64) in
  match roundtrip ty ptr_value with
  | Value.V_ptr (p, _) ->
    Alcotest.(check int) "addr" 4242 p.Value.addr;
    Alcotest.(check bool) "provenance preserved" true (p.Value.prov = Value.P_alloc 3);
    Alcotest.(check bool) "tag preserved" true (p.Value.tag = Some 7)
  | v -> Alcotest.failf "decoded %s" (Value.to_display v)

let test_pointer_as_int_loses_provenance () =
  let pty = Minirust.Ast.T_raw (Minirust.Ast.Mut, Minirust.Ast.T_int Minirust.Ast.I64) in
  let bytes = Mem.encode empty_program ~fn_addr:no_fn pty ptr_value in
  (* read the pointer bytes at integer type: the address is visible *)
  (match Mem.decode empty_program (Minirust.Ast.T_int Minirust.Ast.I64) bytes with
  | Ok (Value.V_int (n, _)) -> Alcotest.(check int64) "address readable" 4242L n
  | _ -> Alcotest.fail "int read of pointer bytes");
  (* writing those ints back and reading as pointer gives a wildcard *)
  match Mem.decode empty_program (Minirust.Ast.T_int Minirust.Ast.I64) bytes with
  | Ok v ->
    let int_bytes = Mem.encode empty_program ~fn_addr:no_fn (Minirust.Ast.T_int Minirust.Ast.I64) v in
    (match Mem.decode empty_program pty int_bytes with
    | Ok (Value.V_ptr (p, _)) ->
      Alcotest.(check bool) "wildcard provenance" true (p.Value.prov = Value.P_wild)
    | _ -> Alcotest.fail "pointer decode")
  | _ -> Alcotest.fail "int decode"

let test_uninit_read_rejected () =
  match Mem.decode empty_program (Minirust.Ast.T_int Minirust.Ast.I32) (Array.make 4 Mem.B_uninit) with
  | Error msg -> Alcotest.(check bool) "mentions uninitialized" true (Helpers.contains msg "uninitialized")
  | Ok _ -> Alcotest.fail "uninit read must be rejected"

let test_bool_validity () =
  (match Mem.decode empty_program Minirust.Ast.T_bool [| Mem.B_int 1 |] with
  | Ok (Value.V_bool true) -> ()
  | _ -> Alcotest.fail "1 is true");
  match Mem.decode empty_program Minirust.Ast.T_bool [| Mem.B_int 2 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "2 is not a valid bool"

let test_null_ref_rejected () =
  let ty = Minirust.Ast.T_ref (Minirust.Ast.Imm, Minirust.Ast.T_int Minirust.Ast.I64) in
  let zeros = Array.make 8 (Mem.B_int 0) in
  match Mem.decode empty_program ty zeros with
  | Error msg -> Alcotest.(check bool) "mentions null" true (Helpers.contains msg "null")
  | Ok _ -> Alcotest.fail "null reference must be invalid"

let test_tuple_roundtrip =
  check_roundtrip "tuple"
    (Minirust.Ast.T_tuple [ Minirust.Ast.T_int Minirust.Ast.I8; Minirust.Ast.T_int Minirust.Ast.I64 ])
    (Value.V_tuple [ Value.V_int (5L, Minirust.Ast.I8); Value.V_int (-9L, Minirust.Ast.I64) ])

let test_array_roundtrip =
  check_roundtrip "array"
    (Minirust.Ast.T_array (Minirust.Ast.T_int Minirust.Ast.I16, 3))
    (Value.V_array
       [ Value.V_int (1L, Minirust.Ast.I16); Value.V_int (-2L, Minirust.Ast.I16);
         Value.V_int (300L, Minirust.Ast.I16) ])

(* access validation through a real memory *)
let test_alloc_access () =
  let mem = Mem.create () in
  let a = Mem.allocate mem ~size:16 ~align:8 ~kind:Mem.Heap in
  let ptr = { Value.prov = Value.P_alloc a.Mem.id; addr = a.Mem.base; tag = Some a.Mem.base_tag } in
  (match Mem.check_access mem ~ptr ~len:8 ~align:8 ~write:true ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Ok (a', off, _popped) ->
    Alcotest.(check int) "offset" 0 off;
    Alcotest.(check int) "alloc" a.Mem.id a'.Mem.id
  | Error _ -> Alcotest.fail "in-bounds access must succeed");
  (* out of bounds *)
  (match Mem.check_access mem ~ptr:{ ptr with Value.addr = a.Mem.base + 12 } ~len:8 ~align:1
           ~write:false ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Error (Mem.Oob _) -> ()
  | _ -> Alcotest.fail "oob must be flagged");
  (* misaligned *)
  (match Mem.check_access mem ~ptr:{ ptr with Value.addr = a.Mem.base + 1 } ~len:4 ~align:4
           ~write:false ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Error (Mem.Misaligned _) -> ()
  | _ -> Alcotest.fail "misalignment must be flagged");
  (* dead after free *)
  Mem.deallocate mem a;
  match Mem.check_access mem ~ptr ~len:8 ~align:8 ~write:false ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Error (Mem.Dead _) -> ()
  | _ -> Alcotest.fail "dead allocation must be flagged"

let test_wildcard_needs_expose () =
  let mem = Mem.create () in
  let a = Mem.allocate mem ~size:8 ~align:8 ~kind:Mem.Stack in
  let wild = { Value.prov = Value.P_wild; addr = a.Mem.base; tag = None } in
  (match Mem.check_access mem ~ptr:wild ~len:8 ~align:1 ~write:false ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Error (Mem.Not_exposed _) -> ()
  | _ -> Alcotest.fail "unexposed wildcard must be flagged");
  Mem.expose mem { Value.prov = Value.P_alloc a.Mem.id; addr = a.Mem.base; tag = None };
  match Mem.check_access mem ~ptr:wild ~len:8 ~align:1 ~write:false ~tid:0 ~clock:Vclock.empty ~atomic:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "exposed wildcard access must succeed"

let test_null_access () =
  let mem = Mem.create () in
  match Mem.check_access mem ~ptr:Value.null_pointer ~len:8 ~align:1 ~write:false ~tid:0
          ~clock:Vclock.empty ~atomic:false with
  | Error (Mem.No_alloc msg) -> Alcotest.(check bool) "null named" true (Helpers.contains msg "null")
  | _ -> Alcotest.fail "null access must be flagged"

let test_race_detection () =
  let mem = Mem.create () in
  (* conflict checks are latched on by the interpreter at second-thread
     spawn; this test drives the memory layer directly *)
  Mem.set_racing mem;
  let a = Mem.allocate mem ~size:8 ~align:8 ~kind:Mem.Global in
  let ptr = { Value.prov = Value.P_alloc a.Mem.id; addr = a.Mem.base; tag = Some a.Mem.base_tag } in
  let c0 = Miri.Vclock.tick Vclock.empty 0 in
  let c1 = Miri.Vclock.tick Vclock.empty 1 in
  (* thread 0 writes *)
  (match Mem.check_access mem ~ptr ~len:8 ~align:1 ~write:true ~tid:0 ~clock:c0 ~atomic:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first write fine");
  (* unordered write by thread 1: race *)
  (match Mem.check_access mem ~ptr ~len:8 ~align:1 ~write:true ~tid:1 ~clock:c1 ~atomic:false with
  | Error (Mem.Race _) -> ()
  | _ -> Alcotest.fail "unordered write must race");
  (* ordered write (clock includes thread 0's epoch) is fine *)
  let c1' = Miri.Vclock.merge c1 c0 in
  match Mem.check_access mem ~ptr ~len:8 ~align:1 ~write:true ~tid:1 ~clock:c1' ~atomic:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "ordered write must not race"

let test_guard_gap () =
  let mem = Mem.create () in
  let a = Mem.allocate mem ~size:8 ~align:8 ~kind:Mem.Heap in
  let b = Mem.allocate mem ~size:8 ~align:8 ~kind:Mem.Heap in
  Alcotest.(check bool) "allocations do not touch" true
    (b.Mem.base > a.Mem.base + a.Mem.size)

(* -- packed-store round-trips --------------------------------------------
   [write_value]/[read_value] operate on the packed representation (payload
   bytes + init bitmap + pointer-fragment side table) directly. These
   properties pin it to the byte-array encoder: whatever [encode]/[decode]
   say about a value, the packed store must say too. *)

module A = Minirust.Ast

let ptr_ty = A.T_raw (A.Mut, A.T_int A.I64)

let gen_pointer =
  QCheck.Gen.(
    int_range 1 64 >>= fun id ->
    bool >>= fun wild ->
    int_range 1 0xFFFF_FFFF >>= fun addr ->
    opt (int_range 1 1000) >|= fun tag ->
    { Value.prov = (if wild then Value.P_wild else Value.P_alloc id); addr; tag })

let rec gen_ty depth =
  QCheck.Gen.(
    let leaf = oneofl [ A.T_bool; A.T_int A.I8; A.T_int A.I16; A.T_int A.I64; ptr_ty ] in
    if depth = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (1, list_size (int_range 1 3) (gen_ty (depth - 1)) >|= fun ts -> A.T_tuple ts);
          (1, pair (gen_ty (depth - 1)) (int_range 1 3) >|= fun (t, n) -> A.T_array (t, n)) ])

let rec gen_value_of_ty ty =
  QCheck.Gen.(
    match ty with
    | A.T_bool -> map (fun b -> Value.V_bool b) bool
    | A.T_int w ->
      let bits = bits_of w in
      (if bits = 64 then ui64
       else map Int64.of_int (int_range (-(1 lsl (bits - 1))) ((1 lsl (bits - 1)) - 1)))
      >|= fun n -> Value.V_int (n, w)
    | A.T_raw _ -> map (fun p -> Value.V_ptr (p, ty)) gen_pointer
    | A.T_tuple ts -> flatten_l (List.map gen_value_of_ty ts) >|= fun vs -> Value.V_tuple vs
    | A.T_array (t, n) -> flatten_l (List.init n (fun _ -> gen_value_of_ty t)) >|= fun vs -> Value.V_array vs
    | _ -> assert false)

let prop_packed_int_roundtrip =
  let gen =
    QCheck.Gen.(
      gen_width >>= fun w ->
      let bits = bits_of w in
      (if bits = 64 then ui64
       else map Int64.of_int (int_range (-(1 lsl (bits - 1))) ((1 lsl (bits - 1)) - 1)))
      >|= fun n -> (n, w))
  in
  QCheck.Test.make ~name:"packed store: int write/read roundtrip" ~count:500
    (QCheck.make gen ~print:(fun (n, _) -> Int64.to_string n))
    (fun (n, w) ->
      let ty = A.T_int w in
      let mem = Mem.create () in
      let a = Mem.allocate mem ~size:16 ~align:8 ~kind:Mem.Heap in
      Mem.write_value empty_program ~fn_addr:no_fn a ~offset:8 ty (Value.V_int (n, w));
      match Mem.read_value empty_program a ~offset:8 ty with
      | Ok (Value.V_int (n', _)) -> Int64.equal n n'
      | _ -> false)

let prop_packed_pointer_roundtrip =
  QCheck.Test.make ~name:"packed store: pointer keeps provenance and tag" ~count:500
    (QCheck.make gen_pointer ~print:(fun p -> Printf.sprintf "ptr@%d" p.Value.addr))
    (fun p ->
      let mem = Mem.create () in
      let a = Mem.allocate mem ~size:24 ~align:8 ~kind:Mem.Heap in
      Mem.write_value empty_program ~fn_addr:no_fn a ~offset:8 ptr_ty
        (Value.V_ptr (p, ptr_ty));
      match Mem.read_value empty_program a ~offset:8 ptr_ty with
      | Ok (Value.V_ptr (q, _)) ->
        q.Value.prov = p.Value.prov && q.Value.addr = p.Value.addr
        && q.Value.tag = p.Value.tag
      | _ -> false)

let prop_packed_equals_byte_encoder =
  let gen = QCheck.Gen.(gen_ty 2 >>= fun ty -> gen_value_of_ty ty >|= fun v -> (ty, v)) in
  QCheck.Test.make ~name:"packed store agrees with encode/decode" ~count:300
    (QCheck.make gen ~print:(fun (_, v) -> Value.to_display v))
    (fun (ty, v) ->
      let size = Minirust.Layout.size_of empty_program ty in
      let mem = Mem.create () in
      (* path A: packed write, packed read *)
      let a = Mem.allocate mem ~size:(size + 16) ~align:8 ~kind:Mem.Heap in
      Mem.write_value empty_program ~fn_addr:no_fn a ~offset:8 ty v;
      let va = Mem.read_value empty_program a ~offset:8 ty in
      (* path B: packed write, byte view into the standalone decoder *)
      let vb = Mem.decode empty_program ty (Mem.read_bytes a ~offset:8 ~len:size) in
      (* path C: standalone encoder, byte-view write, packed read *)
      let b = Mem.allocate mem ~size:(size + 16) ~align:8 ~kind:Mem.Heap in
      Mem.write_bytes b ~offset:8 (Mem.encode empty_program ~fn_addr:no_fn ty v);
      let vc = Mem.read_value empty_program b ~offset:8 ty in
      match (va, vb, vc) with
      | Ok va, Ok vb, Ok vc ->
        Value.equal v va && Value.equal v vb && Value.equal v vc
      | _ -> false)

let union_program =
  { A.unions = [ { A.uname = "U"; ufields = [ ("n", A.T_int A.I64) ] } ];
    statics = []; funcs = [] }

let prop_packed_union_roundtrip =
  let gen = QCheck.Gen.(array_size (return 8) (opt (int_range 0 255))) in
  QCheck.Test.make ~name:"packed store: union bytes roundtrip over old pointer" ~count:300
    (QCheck.make gen ~print:(fun b ->
         String.concat ","
           (Array.to_list
              (Array.map (function Some n -> string_of_int n | None -> "_") b))))
    (fun bytes ->
      let ty = A.T_union "U" in
      let mem = Mem.create () in
      let a = Mem.allocate mem ~size:24 ~align:8 ~kind:Mem.Heap in
      (* a pointer previously lived here: the union write must clear its
         fragments and uninit-holes byte by byte *)
      Mem.write_value union_program ~fn_addr:no_fn a ~offset:8 ptr_ty
        (Value.V_ptr ({ Value.prov = Value.P_alloc 1; addr = 4242; tag = None }, ptr_ty));
      Mem.write_value union_program ~fn_addr:no_fn a ~offset:8 ty (Value.V_bytes bytes);
      match Mem.read_value union_program a ~offset:8 ty with
      | Ok (Value.V_bytes out) -> out = bytes
      | _ -> false)

let test_partial_overwrite_wildcards_pointer () =
  (* clobbering one fragment of a stored pointer must degrade a later
     pointer-typed read to a wildcard built from the raw address bytes *)
  let mem = Mem.create () in
  let a = Mem.allocate mem ~size:16 ~align:8 ~kind:Mem.Heap in
  let p = { Value.prov = Value.P_alloc 9; addr = 0x0102_0304; tag = Some 5 } in
  Mem.write_value empty_program ~fn_addr:no_fn a ~offset:0 ptr_ty (Value.V_ptr (p, ptr_ty));
  Mem.write_value empty_program ~fn_addr:no_fn a ~offset:3 (A.T_int A.I8)
    (Value.V_int (0L, A.I8));
  match Mem.read_value empty_program a ~offset:0 ptr_ty with
  | Ok (Value.V_ptr (q, _)) ->
    Alcotest.(check bool) "wildcard provenance" true (q.Value.prov = Value.P_wild);
    Alcotest.(check int) "address from raw bytes" (0x0102_0304 land lnot 0xFF00_0000)
      q.Value.addr;
    Alcotest.(check bool) "no tag" true (q.Value.tag = None)
  | Ok v -> Alcotest.failf "decoded %s" (Value.to_display v)
  | Error msg -> Alcotest.failf "read failed: %s" msg

let suite =
  [ QCheck_alcotest.to_alcotest prop_int_roundtrip;
    Alcotest.test_case "pointer roundtrip" `Quick test_pointer_roundtrip;
    Alcotest.test_case "ptr->int->ptr loses provenance" `Quick test_pointer_as_int_loses_provenance;
    Alcotest.test_case "uninit read rejected" `Quick test_uninit_read_rejected;
    Alcotest.test_case "bool validity" `Quick test_bool_validity;
    Alcotest.test_case "null ref rejected" `Quick test_null_ref_rejected;
    Alcotest.test_case "tuple roundtrip" `Quick test_tuple_roundtrip;
    Alcotest.test_case "array roundtrip" `Quick test_array_roundtrip;
    Alcotest.test_case "alloc access checks" `Quick test_alloc_access;
    Alcotest.test_case "wildcard needs expose" `Quick test_wildcard_needs_expose;
    Alcotest.test_case "null access" `Quick test_null_access;
    Alcotest.test_case "race detection" `Quick test_race_detection;
    Alcotest.test_case "guard gap" `Quick test_guard_gap;
    QCheck_alcotest.to_alcotest prop_packed_int_roundtrip;
    QCheck_alcotest.to_alcotest prop_packed_pointer_roundtrip;
    QCheck_alcotest.to_alcotest prop_packed_equals_byte_encoder;
    QCheck_alcotest.to_alcotest prop_packed_union_roundtrip;
    Alcotest.test_case "partial pointer overwrite wildcards" `Quick
      test_partial_overwrite_wildcards_pointer ]

(* RustBrain core components: classification, features, agents, rollback,
   fast thinking, feedback. *)

open Rustbrain

let case = Option.get (Dataset.Corpus.find "dp_unchecked_index_oob")

let make_env ?(kb = false) ?(temperature = 0.5) () =
  let clock = Rb_util.Simclock.create () in
  let client = Llm_sim.Client.create ~seed:3 ~clock (Llm_sim.Profile.get Llm_sim.Profile.Gpt4) in
  let kb =
    if kb then begin
      let kb = Knowledge.Kb.create ~clock () in
      Knowledge.Kb.seed_default kb;
      Some kb
    end
    else None
  in
  { Env.clock; client; sampling = { Llm_sim.Client.temperature }; kb;
    scorer = Dataset.Semantic.score case;
    reference = Some (Dataset.Case.fixed case);
    probes = case.Dataset.Case.probes;
    ref_panics =
      Env.reference_panics ~reference:(Some (Dataset.Case.fixed case))
        ~probes:case.Dataset.Case.probes ();
    rng = Rb_util.Rng.create 17; resilient = None; runner = None }

(* classification *)

let test_classify_diag_total () =
  List.iter
    (fun k ->
      let classes = Ub_class.classify_diag k in
      Alcotest.(check int) "three classes, all distinct" 3
        (List.length (List.sort_uniq compare classes)))
    Miri.Diag.all_kinds

let test_unsafe_profile () =
  let program =
    Minirust.Parser.parse
      {|
static mut G: i64 = 0;
unsafe fn danger() { }
fn main() {
    let mut a = [1];
    unsafe {
        danger();
        G = 1;
        print(a.get_unchecked(0));
        let mut p = &raw const G;
        print(*p);
    }
}
|}
  in
  let profile = Ub_class.unsafe_profile program in
  let has op = List.mem_assoc op profile in
  Alcotest.(check bool) "unsafe call" true (has Ub_class.Call_unsafe_fn);
  Alcotest.(check bool) "static mut" true (has Ub_class.Access_static_mut);
  Alcotest.(check bool) "unchecked" true (has Ub_class.Unchecked_or_intrinsic);
  Alcotest.(check bool) "raw deref" true (has Ub_class.Deref_raw_pointer)

(* features *)

let test_features_extract () =
  let buggy = Dataset.Case.buggy case in
  let env = make_env () in
  let state = Env.init_state env buggy in
  ignore state;
  let run =
    match
      Miri.Machine.analyze
        ~config:{ Miri.Machine.default_config with Miri.Machine.inputs = [| 6L |] }
        buggy
    with
    | Miri.Machine.Ran r -> r
    | Miri.Machine.Compile_error _ -> Alcotest.fail "case compiles"
  in
  let f = Features.extract buggy run in
  Alcotest.(check bool) "category detected" true
    (f.Features.category = Some Miri.Diag.Dangling_pointer);
  let section = Features.to_prompt_section f in
  Alcotest.(check bool) "section mentions category" true
    (Helpers.contains section "dangling pointer");
  Alcotest.(check bool) "priority non-empty" true (f.Features.repair_priority <> [])

(* the fix agents *)

let test_agent_repairs_case () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  Alcotest.(check bool) "starts with errors" true (state.Env.errors > 0);
  (* alternating the replace and modify agents must fix the case within the
     budget; a replace-only loop can dead-end after a hallucinated edit,
     which is exactly why the pipeline runs multi-agent plans *)
  let agents = [| Ub_class.C_replace; Ub_class.C_modify |] in
  let i = ref 0 in
  while state.Env.errors > 0 && !i < 20 do
    ignore (Agent.run env state agents.(!i mod 2));
    ignore (Agent_rollback.maybe_rollback env state);
    incr i
  done;
  Alcotest.(check int) "repaired within budget" 0 state.Env.errors

let test_agent_already_clean () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.fixed case) in
  Alcotest.(check bool) "clean program" true (state.Env.errors = 0);
  match Agent.run env state Ub_class.C_modify with
  | Agent.Already_clean -> ()
  | o -> Alcotest.failf "expected Already_clean, got %s" (Agent.outcome_to_string o)

let test_agent_iterations_counted () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  ignore (Agent.run env state Ub_class.C_assert);
  Alcotest.(check bool) "iteration recorded" true (state.Env.iterations >= 1)

(* rollback *)

let test_adaptive_rollback () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  let initial_errors = state.Env.errors in
  (* manufacture a worse state *)
  state.Env.program <- Minirust.Parser.parse "fn main() { let mut a = [1]; unsafe { print(a.get_unchecked(5)); print(a.get_unchecked(6)); print(a.get_unchecked(7)); } }";
  state.Env.errors <- initial_errors + 5;
  Env.snapshot state;
  match Agent_rollback.maybe_rollback env state with
  | Agent_rollback.Rolled_back { to_errors; _ } ->
    Alcotest.(check int) "back to best" initial_errors to_errors;
    Alcotest.(check int) "state errors updated" initial_errors state.Env.errors
  | Agent_rollback.Kept -> Alcotest.fail "should have rolled back"

let test_rollback_keeps_best () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  match Agent_rollback.maybe_rollback env state with
  | Agent_rollback.Kept -> ()
  | Agent_rollback.Rolled_back _ -> Alcotest.fail "nothing to roll back"

let test_rollback_to_initial () =
  let env = make_env () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  let initial = state.Env.errors in
  state.Env.errors <- initial + 3;
  match Agent_rollback.rollback_to_initial env state with
  | Agent_rollback.Rolled_back { to_errors; _ } -> Alcotest.(check int) "initial" initial to_errors
  | Agent_rollback.Kept -> Alcotest.fail "should roll back to initial"

(* abstract reasoning *)

let test_abstract_enriches_prompt () =
  let env = make_env ~kb:true () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  let out = Agent_abstract.run env state in
  Alcotest.(check bool) "sketch non-empty" true (out.Agent_abstract.sketch_kept > 0);
  Alcotest.(check bool) "kb hit" true (out.Agent_abstract.kb_hits > 0);
  Alcotest.(check bool) "pruned section added" true
    (List.mem_assoc Llm_sim.Prompt.sec_pruned_ast state.Env.prompt_extras);
  Alcotest.(check bool) "kb section added" true
    (List.mem_assoc Llm_sim.Prompt.sec_kb_hints state.Env.prompt_extras);
  Alcotest.(check bool) "bias set" true (state.Env.kind_bias <> [])

let test_abstract_without_kb () =
  let env = make_env ~kb:false () in
  let state = Env.init_state env (Dataset.Case.buggy case) in
  let out = Agent_abstract.run env state in
  Alcotest.(check int) "no kb hits" 0 out.Agent_abstract.kb_hits

(* fast thinking *)

let features_of program =
  let run =
    match
      Miri.Machine.analyze
        ~config:{ Miri.Machine.default_config with Miri.Machine.inputs = [| 6L |] }
        program
    with
    | Miri.Machine.Ran r -> r
    | Miri.Machine.Compile_error _ -> Alcotest.fail "compiles"
  in
  Features.extract program run

let test_fast_think_diversity () =
  let env = make_env () in
  let buggy = Dataset.Case.buggy case in
  let g =
    Fast_think.generate env ~program:buggy ~features:(features_of buggy) ~feedback:None
      ~abstract_enabled:true ~count:5
  in
  Alcotest.(check int) "five solutions" 5 (List.length g.Fast_think.solutions);
  let names = List.map (fun s -> s.Solution.sname) g.Fast_think.solutions in
  Alcotest.(check int) "all distinct" 5 (List.length (List.sort_uniq compare names))

let test_fast_think_respects_abstract_toggle () =
  let env = make_env () in
  let buggy = Dataset.Case.buggy case in
  let g =
    Fast_think.generate env ~program:buggy ~features:(features_of buggy) ~feedback:None
      ~abstract_enabled:false ~count:6
  in
  List.iter
    (fun s ->
      if List.mem Solution.Abstract s.Solution.steps then
        Alcotest.fail "abstract step generated while disabled")
    g.Fast_think.solutions

(* feedback *)

let test_feedback_recall () =
  let fb = Feedback.create () in
  let buggy = Dataset.Case.buggy case in
  let vec = Features.vector buggy (features_of buggy) in
  let plan = { Solution.sname = "won"; steps = [ Solution.Fix Ub_class.C_replace ]; origin = "test" } in
  Feedback.learn fb vec
    { Feedback.category = case.Dataset.Case.category; plan; winning_class = Some Ub_class.C_replace };
  (match Feedback.recall fb vec with
  | Some (score, m) ->
    Alcotest.(check bool) "high similarity" true (score > 0.9);
    Alcotest.(check string) "plan recalled" "won" m.Feedback.plan.Solution.sname
  | None -> Alcotest.fail "expected a recall");
  (* a very different error should not recall *)
  let other = Option.get (Dataset.Corpus.find "dr_two_writers") in
  let other_buggy = Dataset.Case.buggy other in
  let run =
    match
      Miri.Machine.analyze
        ~config:{ Miri.Machine.default_config with Miri.Machine.inputs = [| 5L |] }
        other_buggy
    with
    | Miri.Machine.Ran r -> r
    | Miri.Machine.Compile_error _ -> Alcotest.fail "compiles"
  in
  let other_vec = Features.vector other_buggy (Features.extract other_buggy run) in
  match Feedback.recall fb other_vec with
  | None -> ()
  | Some (score, _) ->
    Alcotest.(check bool) "cross-category recall is weak" true (score < 0.9)

let test_fast_think_uses_feedback () =
  let env = make_env () in
  let buggy = Dataset.Case.buggy case in
  let features = features_of buggy in
  let fb = Feedback.create () in
  let vec = Features.vector buggy features in
  let plan = { Solution.sname = "won"; steps = [ Solution.Fix Ub_class.C_replace ]; origin = "test" } in
  Feedback.learn fb vec
    { Feedback.category = case.Dataset.Case.category; plan; winning_class = Some Ub_class.C_replace };
  let g =
    Fast_think.generate env ~program:buggy ~features ~feedback:(Some fb)
      ~abstract_enabled:true ~count:4
  in
  Alcotest.(check bool) "feedback hit" true (g.Fast_think.feedback_hit <> None);
  match g.Fast_think.solutions with
  | first :: _ -> Alcotest.(check string) "recalled plan first" "feedback" first.Solution.origin
  | [] -> Alcotest.fail "no solutions"

(* slow thinking *)

let test_slow_think_fixes () =
  let env = make_env ~kb:true () in
  let solution =
    { Solution.sname = "test"; origin = "test";
      steps = [ Solution.Abstract; Solution.Fix Ub_class.C_replace; Solution.Fix Ub_class.C_modify ] }
  in
  let exec =
    Slow_think.execute env ~program:(Dataset.Case.buggy case) ~solution
      ~rollback:Slow_think.Adaptive ~max_iters:8
  in
  Alcotest.(check bool) "n sequence starts with initial errors" true
    (match exec.Slow_think.n_sequence with n :: _ -> n > 0 | [] -> false);
  Alcotest.(check bool) "some iterations happened" true (exec.Slow_think.iterations > 0);
  Alcotest.(check bool) "time consumed" true (exec.Slow_think.seconds > 0.0)

let test_slow_think_iteration_budget () =
  let env = make_env () in
  let solution =
    { Solution.sname = "test"; origin = "test"; steps = [ Solution.Fix Ub_class.C_assert ] }
  in
  let exec =
    Slow_think.execute env ~program:(Dataset.Case.buggy case) ~solution
      ~rollback:Slow_think.No_rollback ~max_iters:2
  in
  Alcotest.(check bool) "bounded" true (exec.Slow_think.iterations <= 2)

let suite =
  [ Alcotest.test_case "classify_diag total" `Quick test_classify_diag_total;
    Alcotest.test_case "unsafe profile" `Quick test_unsafe_profile;
    Alcotest.test_case "features extract" `Quick test_features_extract;
    Alcotest.test_case "fix agent repairs" `Quick test_agent_repairs_case;
    Alcotest.test_case "agent already clean" `Quick test_agent_already_clean;
    Alcotest.test_case "agent counts iterations" `Quick test_agent_iterations_counted;
    Alcotest.test_case "adaptive rollback" `Quick test_adaptive_rollback;
    Alcotest.test_case "rollback keeps best" `Quick test_rollback_keeps_best;
    Alcotest.test_case "rollback to initial" `Quick test_rollback_to_initial;
    Alcotest.test_case "abstract enriches prompt" `Quick test_abstract_enriches_prompt;
    Alcotest.test_case "abstract without kb" `Quick test_abstract_without_kb;
    Alcotest.test_case "fast thinking diversity" `Quick test_fast_think_diversity;
    Alcotest.test_case "fast thinking abstract toggle" `Quick test_fast_think_respects_abstract_toggle;
    Alcotest.test_case "feedback recall" `Quick test_feedback_recall;
    Alcotest.test_case "fast thinking uses feedback" `Quick test_fast_think_uses_feedback;
    Alcotest.test_case "slow thinking fixes" `Quick test_slow_think_fixes;
    Alcotest.test_case "slow thinking budget" `Quick test_slow_think_iteration_budget ]

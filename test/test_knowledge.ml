(* Knowledge base: Algorithm-1 pruning, vectorization, retrieval. *)

let program_with_noise =
  Minirust.Parser.parse
    {|
fn irrelevant_math(a: i64) -> i64 {
    let mut t = a * 2;
    let mut u = t + 3;
    return u;
}

fn main() {
    let mut noise1 = 1;
    let mut noise2 = noise1 + 2;
    print(noise2);
    let mut buf = 0 as *mut i64;
    unsafe {
        buf = alloc(8, 8) as *mut i64;
        *buf = 5;
        print(*buf);
        dealloc(buf as *mut i8, 8, 8);
    }
}
|}

let test_prune_keeps_unsafe () =
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  let rendered = Knowledge.Prune.render sketch in
  Alcotest.(check bool) "keeps the alloc" true (Helpers.contains rendered "alloc(8i64, 8i64)");
  Alcotest.(check bool) "keeps the dealloc" true (Helpers.contains rendered "dealloc");
  Alcotest.(check bool) "drops pure-math noise" false (Helpers.contains rendered "noise2 + ")

let test_prune_drops_counted () =
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  Alcotest.(check bool) "something was dropped" true (sketch.Knowledge.Prune.dropped > 0)

let test_prune_keeps_hinted () =
  (* the statement a diagnostic points at is kept even if not unsafe *)
  let target = ref (-1) in
  Minirust.Visit.iter_stmts
    (fun st ->
      match st.Minirust.Ast.s with
      | Minirust.Ast.S_print _ when !target < 0 -> target := st.Minirust.Ast.sid
      | _ -> ())
    program_with_noise;
  let diag = { (Miri.Diag.make Miri.Diag.Validity "x") with Miri.Diag.stmt_hint = !target } in
  let sketch = Knowledge.Prune.prune program_with_noise [ diag ] in
  Alcotest.(check bool) "hinted stmt kept" true
    (List.exists (fun st -> st.Minirust.Ast.sid = !target) sketch.Knowledge.Prune.kept_stmts)

let test_prune_keeps_dependencies () =
  (* `buf` is used by retained unsafe statements, so its definition stays *)
  let sketch = Knowledge.Prune.prune program_with_noise [] in
  let rendered = Knowledge.Prune.render sketch in
  Alcotest.(check bool) "dependency definition kept" true
    (Helpers.contains rendered "let mut buf")

(* vectors *)

let test_vector_normalized () =
  let v = Knowledge.Featvec.of_program program_with_noise [] in
  let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
  if abs_float (norm -. 1.0) > 1e-6 && norm <> 0.0 then Alcotest.failf "norm %f" norm

let test_cosine_self () =
  let v = Knowledge.Featvec.of_program program_with_noise [] in
  Alcotest.(check (float 1e-6)) "self similarity" 1.0 (Knowledge.Featvec.cosine v v)

let test_cosine_category_dominates () =
  let d1 = Miri.Diag.make Miri.Diag.Alloc "a" in
  let d2 = Miri.Diag.make Miri.Diag.Data_race "b" in
  let same_cat_a = Knowledge.Featvec.of_program program_with_noise [ d1 ] in
  let same_cat_b =
    Knowledge.Featvec.of_program
      (Minirust.Parser.parse "fn main() { unsafe { let mut p = alloc(8, 8); dealloc(p, 8, 8); } }")
      [ d1 ]
  in
  let other_cat = Knowledge.Featvec.of_program program_with_noise [ d2 ] in
  let same = Knowledge.Featvec.cosine same_cat_a same_cat_b in
  let diff = Knowledge.Featvec.cosine same_cat_a other_cat in
  if same <= diff then
    Alcotest.failf "same-category similarity (%f) should beat cross-category (%f)" same diff

(* store *)

let test_store_topk () =
  let store = Knowledge.Store.create () in
  let unit_vec i = Array.init 4 (fun j -> if i = j then 1.0 else 0.0) in
  List.iter (fun i -> Knowledge.Store.add store (unit_vec i) i) [ 0; 1; 2; 3 ];
  let query = [| 0.9; 0.1; 0.0; 0.0 |] in
  match Knowledge.Store.query store query ~k:2 with
  | [ (s1, 0); (s2, 1) ] ->
    Alcotest.(check bool) "ordered by similarity" true (s1 > s2)
  | other -> Alcotest.failf "unexpected top-2: %d entries" (List.length other)

let test_store_threshold () =
  let store = Knowledge.Store.create () in
  Knowledge.Store.add store [| 1.0; 0.0 |] "x";
  Alcotest.(check int) "above" 1
    (List.length (Knowledge.Store.query_above store [| 1.0; 0.0 |] ~threshold:0.9));
  Alcotest.(check int) "below" 0
    (List.length (Knowledge.Store.query_above store [| 0.0; 1.0 |] ~threshold:0.9))

(* kb *)

let test_kb_query_and_cost () =
  let clock = Rb_util.Simclock.create () in
  let kb = Knowledge.Kb.create ~clock () in
  Knowledge.Kb.seed_default kb;
  Alcotest.(check int) "seeded with 12 entries" 12 (Knowledge.Kb.size kb);
  let vec = Knowledge.Featvec.of_program program_with_noise [ Miri.Diag.make Miri.Diag.Alloc "x" ] in
  let before = Rb_util.Simclock.now clock in
  let hits = Knowledge.Kb.query kb vec in
  Alcotest.(check bool) "query costs time" true (Rb_util.Simclock.now clock > before);
  (match hits with
  | (_, e) :: _ -> Alcotest.(check bool) "top hit is alloc advice" true (e.Knowledge.Kb.category = Miri.Diag.Alloc)
  | [] -> Alcotest.fail "expected at least one hit");
  let bias = Knowledge.Kb.kind_bias hits in
  Alcotest.(check bool) "bias non-empty" true (bias <> []);
  Alcotest.(check bool) "hints render" true (String.length (Knowledge.Kb.hints_text hits) > 0)

let test_kb_learning_grows () =
  let clock = Rb_util.Simclock.create () in
  let kb = Knowledge.Kb.create ~clock () in
  let vec = Knowledge.Featvec.of_program program_with_noise [] in
  Knowledge.Kb.learn kb vec
    { Knowledge.Kb.category = Miri.Diag.Alloc; advice = "learned"; recommended = Repairs.Rule.Modify };
  Alcotest.(check int) "size grew" 1 (Knowledge.Kb.size kb)

(* -- correctness sweep: dimensions, ties, bias order -------------------- *)

let test_cosine_mismatch_raises () =
  match Knowledge.Featvec.cosine [| 1.0; 0.0 |] [| 1.0; 0.0; 0.0 |] with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "mismatched dims produced %f instead of raising" s

let test_category_index_total () =
  (* every kind maps to a distinct slot covering 0..n-1: no category can
     alias onto another (the old fallback collapsed unknowns onto slot 0) *)
  let idxs = List.map Knowledge.Featvec.category_index Miri.Diag.all_kinds in
  let n = List.length Miri.Diag.all_kinds in
  Alcotest.(check (list int)) "distinct dense slots" (List.init n Fun.id)
    (List.sort_uniq compare idxs)

let test_store_quarantines_mismatch () =
  let store = Knowledge.Store.create ~dim:4 () in
  Knowledge.Store.add store [| 1.0; 0.0; 0.0 |] "bad";
  Alcotest.(check int) "store unchanged" 0 (Knowledge.Store.size store);
  Alcotest.(check int) "quarantined" 1 (Knowledge.Store.quarantined store);
  Knowledge.Store.add store [| 1.0; 0.0; 0.0; 0.0 |] "good";
  Alcotest.(check int) "good vector accepted" 1 (Knowledge.Store.size store)

let test_store_tie_insertion_order () =
  (* equal scores surface in insertion order — pinned, not accidental *)
  let store = Knowledge.Store.create () in
  let v = [| 0.6; 0.8 |] in
  List.iter (fun i -> Knowledge.Store.add store v i) [ 0; 1; 2 ];
  let ids = List.map (fun (_, id, _) -> id) (Knowledge.Store.query_ids store v ~k:3) in
  Alcotest.(check (list int)) "ties break toward earlier insertion" [ 0; 1; 2 ] ids;
  let above = List.map snd (Knowledge.Store.query_above store v ~threshold:0.5) in
  Alcotest.(check (list int)) "query_above is insertion-stable too" [ 0; 1; 2 ] above

let test_kind_bias_canonical_order () =
  let e k = { Knowledge.Kb.category = Miri.Diag.Alloc; advice = "a"; recommended = k } in
  (* hits arrive retrieval-ordered with Modify first; the bias list must
     still come out in fix-kind declaration order with summed weights *)
  let hits =
    [ (0.5, e Repairs.Rule.Modify); (0.25, e Repairs.Rule.Replace);
      (0.25, e Repairs.Rule.Modify) ]
  in
  let bias = Knowledge.Kb.kind_bias hits in
  let name = Repairs.Rule.fix_kind_name in
  Alcotest.(check (list string)) "declaration order, absent kinds dropped"
    [ name Repairs.Rule.Replace; name Repairs.Rule.Modify ]
    (List.map fst bias);
  (match List.assoc_opt (name Repairs.Rule.Modify) bias with
  | Some w -> Alcotest.(check (float 1e-9)) "weights sum over hits" (0.08 *. 0.75) w
  | None -> Alcotest.fail "modify bias missing")

(* -- segment store ------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_dir f =
  let dir = Filename.temp_file "rb-test-kb" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let copy_store src dst =
  Rb_util.Fsfile.mkdir_p dst;
  Array.iter
    (fun n ->
      let s = Filename.concat src n in
      if not (Sys.is_directory s) then write_file (Filename.concat dst n) (read_file s))
    (Sys.readdir src)

let payload i = Rb_util.Json.Obj [ ("i", Rb_util.Json.Num (float_of_int i)) ]

let seg_ids (r : Knowledge.Segment.load_report) =
  List.map (fun (rc : Knowledge.Segment.record) -> rc.Knowledge.Segment.id) r.Knowledge.Segment.records

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_segment_roundtrip_bits () =
  with_store_dir (fun dir ->
      (* floats with no short decimal form must survive the JSON round-trip
         bit-for-bit — retrieval scores depend on exact vector bytes *)
      let vecs =
        [ [| 0.1; 1.0 /. 3.0; 4.0 *. atan 1.0; 1e-300 |];
          [| -0.0; 1e300; 0.30000000000000004; 2.2250738585072014e-308 |] ]
      in
      let w, _ = ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~dir ()) in
      List.iteri (fun i v -> ignore (ok (Knowledge.Segment.append w ~vec:v ~payload:(payload i)))) vecs;
      Knowledge.Segment.close w;
      let r = ok (Knowledge.Segment.load ~expect:(4, 1) dir) in
      let loaded = List.map (fun (rc : Knowledge.Segment.record) -> rc.Knowledge.Segment.vec) r.Knowledge.Segment.records in
      Alcotest.(check bool) "vectors bit-identical after reload" true (loaded = vecs))

let test_segment_torn_tail_heals () =
  with_store_dir (fun dir ->
      let w, _ = ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~dir ()) in
      let vec i = [| float_of_int i; 0.5; 0.25; 1.0 |] in
      ignore (ok (Knowledge.Segment.append w ~vec:(vec 0) ~payload:(payload 0)));
      ignore (ok (Knowledge.Segment.append w ~vec:(vec 1) ~payload:(payload 1)));
      let tail = Filename.concat dir "tail.log" in
      let two = (Unix.stat tail).Unix.st_size in
      ignore (ok (Knowledge.Segment.append w ~vec:(vec 2) ~payload:(payload 2)));
      let three = (Unix.stat tail).Unix.st_size in
      (* cut the last frame at every possible byte boundary: each prefix must
         load as exactly the first two records *)
      with_store_dir (fun cut_dir ->
          for cut = 1 to three - two do
            rm_rf cut_dir;
            copy_store dir cut_dir;
            Unix.truncate (Filename.concat cut_dir "tail.log") (three - cut);
            let r = ok (Knowledge.Segment.load ~expect:(4, 1) cut_dir) in
            if seg_ids r <> [ 0; 1 ] then
              Alcotest.failf "cut of %d byte(s): survivors %s" cut
                (String.concat "," (List.map string_of_int (seg_ids r)));
            if cut < three - two && r.Knowledge.Segment.healed_tail_bytes <= 0 then
              Alcotest.failf "cut of %d byte(s): no healed bytes reported" cut
          done);
      Knowledge.Segment.close w)

let test_segment_append_quarantines_dim () =
  with_store_dir (fun dir ->
      let w, _ = ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~dir ()) in
      ignore (ok (Knowledge.Segment.append w ~vec:[| 1.0; 0.0; 0.0; 0.0 |] ~payload:(payload 0)));
      (match Knowledge.Segment.append w ~vec:[| 1.0; 0.0 |] ~payload:(payload 1) with
      | Ok _ -> Alcotest.fail "mismatched vector was accepted"
      | Error _ -> ());
      Alcotest.(check int) "store unchanged" 1 (List.length (Knowledge.Segment.records w));
      let qfile = Filename.concat (Filename.concat dir "quarantined") "records.jsonl" in
      Alcotest.(check bool) "quarantine preserves the bytes" true
        (Sys.file_exists qfile && String.length (read_file qfile) > 0);
      Knowledge.Segment.close w)

let test_segment_corrupt_segment_quarantined () =
  with_store_dir (fun dir ->
      let w, _ =
        ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~seal_every:2 ~dir ())
      in
      for i = 0 to 3 do
        ignore (ok (Knowledge.Segment.append w ~vec:[| float_of_int i; 0.0; 0.0; 1.0 |] ~payload:(payload i)))
      done;
      Knowledge.Segment.close w;
      let seg =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".seg")
        |> List.sort compare |> List.hd
      in
      let path = Filename.concat dir seg in
      let bytes = Bytes.of_string (read_file path) in
      Bytes.set bytes (Bytes.length bytes / 2) '#';
      write_file path (Bytes.to_string bytes);
      let r = ok (Knowledge.Segment.load ~expect:(4, 1) dir) in
      Alcotest.(check int) "one segment is corrupt" 1 r.Knowledge.Segment.corrupt_segments;
      Alcotest.(check (list int)) "the other segment's records survive" [ 2; 3 ] (seg_ids r);
      let fixed = ok (Knowledge.Segment.fsck ~fix:true ~expect:(4, 1) dir) in
      Alcotest.(check (list int)) "fsck keeps the survivors" [ 2; 3 ] (seg_ids fixed);
      let again = ok (Knowledge.Segment.load ~expect:(4, 1) dir) in
      Alcotest.(check int) "after fsck the store is clean" 0 again.Knowledge.Segment.corrupt_segments;
      Alcotest.(check bool) "corrupt bytes preserved in quarantine" true
        (Sys.file_exists (Filename.concat (Filename.concat dir "quarantined") "corrupt")))

let test_segment_duplicate_ids_first_wins () =
  with_store_dir (fun dir ->
      (* the compaction-crash window: merged segment written, an input not
         yet deleted — the same ids appear twice and dedupe keeps the first *)
      let w, _ =
        ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~seal_every:2 ~dir ())
      in
      for i = 0 to 3 do
        ignore (ok (Knowledge.Segment.append w ~vec:[| float_of_int i; 0.0; 0.0; 1.0 |] ~payload:(payload i)))
      done;
      let before = Knowledge.Segment.records w in
      Knowledge.Segment.close w;
      let seg =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".seg")
        |> List.sort compare |> List.hd
      in
      write_file (Filename.concat dir "seg-00009999.seg") (read_file (Filename.concat dir seg));
      let r = ok (Knowledge.Segment.load ~expect:(4, 1) dir) in
      Alcotest.(check bool) "first record wins, set unchanged" true
        (r.Knowledge.Segment.records = before);
      Alcotest.(check bool) "duplicates counted" true (r.Knowledge.Segment.duplicates > 0))

let test_segment_compaction_equivalent () =
  with_store_dir (fun dir ->
      let w, _ =
        ok (Knowledge.Segment.open_writer ~expect:(4, 1) ~seal_every:3 ~compact_at:100 ~dir ())
      in
      for i = 0 to 16 do
        ignore (ok (Knowledge.Segment.append w ~vec:[| float_of_int i; 0.1; 0.2; 1.0 |] ~payload:(payload i)))
      done;
      let before = Knowledge.Segment.records w in
      Knowledge.Segment.compact w;
      Knowledge.Segment.close w;
      let r = ok (Knowledge.Segment.load ~expect:(4, 1) dir) in
      Alcotest.(check bool) "load-equivalent after compaction" true
        (r.Knowledge.Segment.records = before);
      Alcotest.(check int) "a single merged segment remains" 1 r.Knowledge.Segment.segments)

let test_kb_snapshot_frozen_in_process () =
  with_store_dir (fun dir ->
      let clock = Rb_util.Simclock.create () in
      let kb = ok (Knowledge.Kb.open_dir ~dir ~clock ()) in
      let seeds = Knowledge.Kb.size kb in
      Alcotest.(check bool) "persistent store self-seeds" true (seeds > 0);
      let vec = Knowledge.Featvec.of_program program_with_noise [] in
      Knowledge.Kb.learn kb vec
        { Knowledge.Kb.category = Miri.Diag.Alloc; advice = "learned"; recommended = Repairs.Rule.Modify };
      Alcotest.(check int) "snapshot frozen: learn goes to disk only" seeds
        (Knowledge.Kb.size kb);
      let again = ok (Knowledge.Kb.open_dir ~dir ~clock ()) in
      Alcotest.(check int) "same-process reopen sees the frozen snapshot" seeds
        (Knowledge.Kb.size again);
      let on_disk = ok (Knowledge.Segment.load dir) in
      Alcotest.(check int) "the learned entry is durable for the next process"
        (seeds + 1)
        (List.length on_disk.Knowledge.Segment.records);
      (* a read-only handle drops learns entirely *)
      let ro = ok (Knowledge.Kb.open_dir ~readonly:true ~dir ~clock ()) in
      Knowledge.Kb.learn ro vec
        { Knowledge.Kb.category = Miri.Diag.Alloc; advice = "dropped"; recommended = Repairs.Rule.Modify };
      let after = ok (Knowledge.Segment.load dir) in
      Alcotest.(check int) "read-only learn leaves the disk untouched"
        (seeds + 1)
        (List.length after.Knowledge.Segment.records))

(* -- knn: exact == indexed, parallel == sequential ---------------------- *)

let knn_of_vecs dim vecs =
  let t = Knowledge.Knn.create ~dim in
  List.iter (fun v -> ignore (Knowledge.Knn.add t v)) vecs;
  t

let prop_exact_equals_indexed =
  QCheck.Test.make ~name:"knn: indexed hits = exact hits" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (array_of_size (Gen.return 6) (float_range (-1.0) 1.0)))
        (array_of_size (Gen.return 6) (float_range (-1.0) 1.0)))
    (fun (vecs, q) ->
      QCheck.assume (vecs <> []);
      let t = knn_of_vecs 6 vecs in
      let ex = Knowledge.Knn.search_exact t q ~k:5 in
      let ix = Knowledge.Knn.search_indexed t q ~k:5 in
      ex.Knowledge.Knn.hits = ix.Knowledge.Knn.hits)

(* Featvec-shaped vectors (dominant one-hot + sparse block) actually drive
   the pruning path; random dense vectors rarely do *)
let prop_exact_equals_indexed_featvec =
  QCheck.Test.make ~name:"knn: indexed = exact on Featvec-shaped data" ~count:60
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, extra) ->
      let dim = Knowledge.Featvec.dim in
      let hd = Knowledge.Featvec.hash_dim in
      let ncat = dim - hd in
      let rng = Rb_util.Rng.create (seed + extra) in
      let synth cat =
        let v = Array.make dim 0.0 in
        for _ = 1 to 6 do
          v.(Rb_util.Rng.int rng hd) <- Rb_util.Rng.float rng
        done;
        v.(hd + cat) <- 2.0;
        v
      in
      let n = 40 + Rb_util.Rng.int rng 80 in
      let t = knn_of_vecs dim (List.init n (fun i -> synth (i mod ncat))) in
      let q = synth (Rb_util.Rng.int rng ncat) in
      let ex = Knowledge.Knn.search_exact t q ~k:8 in
      let ix = Knowledge.Knn.search_indexed t q ~k:8 in
      ex.Knowledge.Knn.hits = ix.Knowledge.Knn.hits)

let test_knn_parallel_bitwise () =
  (* above the 4096-row cutoff the scan really forks domains; the score
     array must still be bit-identical to the sequential pass *)
  let dim = 6 in
  let rng = Rb_util.Rng.create 0xace in
  let vecs =
    List.init 5000 (fun _ -> Array.init dim (fun _ -> (2.0 *. Rb_util.Rng.float rng) -. 1.0))
  in
  let t = knn_of_vecs dim vecs in
  for _ = 1 to 10 do
    let q = Array.init dim (fun _ -> (2.0 *. Rb_util.Rng.float rng) -. 1.0) in
    let s1 = Knowledge.Knn.scores ~domains:1 t q in
    let s3 = Knowledge.Knn.scores ~domains:3 t q in
    if s1 <> s3 then Alcotest.fail "parallel scores differ from sequential";
    let e1 = Knowledge.Knn.search_exact ~domains:1 t q ~k:7 in
    let e3 = Knowledge.Knn.search_exact ~domains:3 t q ~k:7 in
    if e1.Knowledge.Knn.hits <> e3.Knowledge.Knn.hits then
      Alcotest.fail "parallel hits differ from sequential"
  done

let suite =
  [ Alcotest.test_case "prune keeps unsafe" `Quick test_prune_keeps_unsafe;
    Alcotest.test_case "prune drops noise" `Quick test_prune_drops_counted;
    Alcotest.test_case "prune keeps hinted" `Quick test_prune_keeps_hinted;
    Alcotest.test_case "prune keeps dependencies" `Quick test_prune_keeps_dependencies;
    Alcotest.test_case "vector normalized" `Quick test_vector_normalized;
    Alcotest.test_case "cosine self" `Quick test_cosine_self;
    Alcotest.test_case "category dominates similarity" `Quick test_cosine_category_dominates;
    Alcotest.test_case "store top-k" `Quick test_store_topk;
    Alcotest.test_case "store threshold" `Quick test_store_threshold;
    Alcotest.test_case "kb query and cost" `Quick test_kb_query_and_cost;
    Alcotest.test_case "kb learning grows" `Quick test_kb_learning_grows;
    Alcotest.test_case "cosine mismatch raises" `Quick test_cosine_mismatch_raises;
    Alcotest.test_case "category index total and distinct" `Quick test_category_index_total;
    Alcotest.test_case "store quarantines dim mismatch" `Quick test_store_quarantines_mismatch;
    Alcotest.test_case "store ties break on insertion order" `Quick test_store_tie_insertion_order;
    Alcotest.test_case "kind bias canonical order" `Quick test_kind_bias_canonical_order;
    Alcotest.test_case "segment round-trips float bits" `Quick test_segment_roundtrip_bits;
    Alcotest.test_case "segment heals torn tail at every cut" `Quick test_segment_torn_tail_heals;
    Alcotest.test_case "segment quarantines mismatched append" `Quick test_segment_append_quarantines_dim;
    Alcotest.test_case "segment quarantines corrupt segment" `Quick test_segment_corrupt_segment_quarantined;
    Alcotest.test_case "segment duplicate ids first-wins" `Quick test_segment_duplicate_ids_first_wins;
    Alcotest.test_case "segment compaction load-equivalent" `Quick test_segment_compaction_equivalent;
    Alcotest.test_case "kb snapshot frozen in-process" `Quick test_kb_snapshot_frozen_in_process;
    QCheck_alcotest.to_alcotest prop_exact_equals_indexed;
    QCheck_alcotest.to_alcotest prop_exact_equals_indexed_featvec;
    Alcotest.test_case "knn parallel scan bit-identical" `Quick test_knn_parallel_bitwise ]

(* Test entry point. `dune runtest` runs everything; the heavyweight
   campaign-level checks are marked `Slow and can be skipped with
   ALCOTEST_QUICK_TESTS=1. *)

let () =
  Alcotest.run "rustbrain-repro"
    [ ("rng", Test_rng.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("layout", Test_layout.suite);
      ("typecheck", Test_typecheck.suite);
      ("edit", Test_edit.suite);
      ("visit", Test_visit.suite);
      ("vclock", Test_vclock.suite);
      ("borrow", Test_borrow.suite);
      ("mem", Test_mem.suite);
      ("machine", Test_machine.suite);
      ("golden", Test_golden.suite);
      ("differential", Test_differential.suite);
      ("dataset", Test_dataset.suite);
      ("llm", Test_llm.suite);
      ("knowledge", Test_knowledge.suite);
      ("repairs", Test_repairs.suite);
      ("core", Test_core.suite);
      ("pipeline", Test_pipeline.suite);
      ("exec", Test_exec.suite);
      ("journal", Test_journal.suite);
      ("resilience", Test_resilience.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite) ]

(* Corpus validation — generated per case, three genuine checks each:
   1. the buggy program deterministically exhibits the declared UB category
      (on at least one probe, and never a *different* category),
   2. the reference fix is clean on every probe (no UB, no leak, no panic
      that the case's own probes should not trigger),
   3. the reference fix is semantically acceptable against itself (the
      [Semantic] judgment is reflexive on the reference). *)

let analyze program inputs =
  Miri.Machine.analyze
    ~config:{ Miri.Machine.default_config with Miri.Machine.inputs }
    program

let buggy_exhibits (c : Dataset.Case.t) () =
  let buggy = Dataset.Case.buggy c in
  let expected = Miri.Diag.kind_name c.Dataset.Case.category in
  let outcomes =
    List.filter_map
      (fun inputs ->
        match analyze buggy inputs with
        | Miri.Machine.Ran r -> (
          match r.Miri.Machine.outcome with
          | Miri.Machine.Ub d -> Some (Miri.Diag.kind_name d.Miri.Diag.kind)
          | Miri.Machine.Panicked _ -> Some "panic"
          | Miri.Machine.Finished -> None
          | Miri.Machine.Step_limit -> Some "step-limit"
          | Miri.Machine.Resource_limit _ -> Some "resource-limit")
        | Miri.Machine.Compile_error m -> Some ("compile-error: " ^ m))
      c.Dataset.Case.probes
  in
  if not (List.mem expected outcomes) then
    Alcotest.failf "no probe exhibits %s (got: %s)" expected (String.concat ", " outcomes);
  List.iter
    (fun o ->
      if not (String.equal o expected) then
        Alcotest.failf "probe exhibits %s instead of %s" o expected)
    outcomes

let fixed_clean (c : Dataset.Case.t) () =
  let fixed = Dataset.Case.fixed c in
  List.iter
    (fun inputs ->
      match analyze fixed inputs with
      | Miri.Machine.Ran r -> (
        match r.Miri.Machine.outcome with
        | Miri.Machine.Finished | Miri.Machine.Panicked _ -> ()
        | Miri.Machine.Ub d -> Alcotest.failf "fixed has UB: %s" (Miri.Diag.to_string d)
        | Miri.Machine.Step_limit -> Alcotest.fail "fixed hit the step limit"
        | Miri.Machine.Resource_limit m -> Alcotest.failf "fixed hit a resource limit: %s" m)
      | Miri.Machine.Compile_error m -> Alcotest.failf "fixed does not compile: %s" m)
    c.Dataset.Case.probes

let fixed_self_semantic (c : Dataset.Case.t) () =
  let v = Dataset.Semantic.check c (Dataset.Case.fixed c) in
  Alcotest.(check bool) "reference passes" true v.Dataset.Semantic.passes;
  Alcotest.(check bool) "reference is self-acceptable" true v.Dataset.Semantic.semantic

let per_case_tests =
  List.concat_map
    (fun (c : Dataset.Case.t) ->
      let n = c.Dataset.Case.name in
      [ Alcotest.test_case (n ^ ": buggy exhibits category") `Quick (buggy_exhibits c);
        Alcotest.test_case (n ^ ": reference is clean") `Quick (fixed_clean c);
        Alcotest.test_case (n ^ ": reference self-semantic") `Quick (fixed_self_semantic c) ])
    Dataset.Corpus.all

(* corpus shape *)

let test_coverage () =
  List.iter
    (fun (kind, count) ->
      if count < 5 then
        Alcotest.failf "category %s has only %d cases" (Miri.Diag.kind_name kind) count)
    (Dataset.Corpus.stats ())

let test_unique_names () =
  let names = List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) Dataset.Corpus.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check bool) "find existing" true (Dataset.Corpus.find "al_double_free" <> None);
  Alcotest.(check bool) "find missing" true (Dataset.Corpus.find "nope" = None)

let test_buggy_differs_from_fixed () =
  List.iter
    (fun (c : Dataset.Case.t) ->
      if Minirust.Ast.equal_program (Dataset.Case.buggy c) (Dataset.Case.fixed c) then
        Alcotest.failf "%s: buggy and fixed are identical" c.Dataset.Case.name)
    Dataset.Corpus.all

(* semantic judgment details *)

let test_semantic_rejects_wrong_output () =
  let c = Option.get (Dataset.Corpus.find "pn_div_by_zero") in
  (* a "fix" that passes but prints the wrong value *)
  let wrong =
    Minirust.Parser.parse
      "fn main() { let mut total = input(0); let mut count = input(1); print(0); }"
  in
  let v = Dataset.Semantic.check c wrong in
  Alcotest.(check bool) "passes" true v.Dataset.Semantic.passes;
  Alcotest.(check bool) "but not semantic" false v.Dataset.Semantic.semantic

let test_semantic_rejects_remaining_ub () =
  let c = Option.get (Dataset.Corpus.find "al_double_free") in
  let v = Dataset.Semantic.check c (Dataset.Case.buggy c) in
  Alcotest.(check bool) "buggy does not pass" false v.Dataset.Semantic.passes

let test_semantic_accepts_matching_panic () =
  (* an assertion-agent style fix: panics (with a different message) exactly
     where the reference's checked indexing panics — acceptable *)
  let c = Option.get (Dataset.Corpus.find "dp_unchecked_index_oob") in
  let candidate =
    Minirust.Parser.parse
      {|
fn main() {
    let mut samples = [4, 8, 15, 16];
    let mut i = input(0);
    assert(i >= 0 && i < 4, "index must be in range");
    unsafe {
        print(samples.get_unchecked(i));
    }
}
|}
  in
  let v = Dataset.Semantic.check c candidate in
  Alcotest.(check bool) "passes" true v.Dataset.Semantic.passes;
  Alcotest.(check bool) "acceptable" true v.Dataset.Semantic.semantic

let test_semantic_rejects_spurious_panic () =
  (* a guard that also rejects a legal input is not acceptable *)
  let c = Option.get (Dataset.Corpus.find "dp_unchecked_index_oob") in
  let candidate =
    Minirust.Parser.parse
      {|
fn main() {
    let mut samples = [4, 8, 15, 16];
    let mut i = input(0);
    assert(i >= 0 && i < 2, "over-strict");
    unsafe {
        print(samples.get_unchecked(i));
    }
}
|}
  in
  let v = Dataset.Semantic.check c candidate in
  Alcotest.(check bool) "not passing (panics where reference succeeds)" false
    v.Dataset.Semantic.passes

let test_score_ordering () =
  let c = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  let s_fixed = Dataset.Semantic.score c (Dataset.Case.fixed c) in
  let s_buggy = Dataset.Semantic.score c (Dataset.Case.buggy c) in
  Alcotest.(check (float 0.001)) "reference scores 1.0" 1.0 s_fixed;
  Alcotest.(check bool) "buggy scores lower" true (s_buggy < s_fixed)

let test_score_ill_typed () =
  let c = Option.get (Dataset.Corpus.find "dp_use_after_free_read") in
  let broken = Minirust.Parser.parse "fn main() { let mut x: bool = 1; }" in
  let s = Dataset.Semantic.score c broken in
  Alcotest.(check bool) "ill-typed scores ~0" true (s < 0.05)

let test_error_count_collect () =
  let program =
    Minirust.Parser.parse
      "fn main() { let mut a = [1]; unsafe { print(a.get_unchecked(3)); print(a.get_unchecked(4)); } }"
  in
  Alcotest.(check int) "two errors" 2 (Dataset.Semantic.error_count program [||])

let suite =
  per_case_tests
  @ [ Alcotest.test_case "every category covered" `Quick test_coverage;
      Alcotest.test_case "unique names" `Quick test_unique_names;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "buggy differs from fixed" `Quick test_buggy_differs_from_fixed;
      Alcotest.test_case "semantic rejects wrong output" `Quick test_semantic_rejects_wrong_output;
      Alcotest.test_case "semantic rejects remaining UB" `Quick test_semantic_rejects_remaining_ub;
      Alcotest.test_case "semantic accepts matching panic" `Quick test_semantic_accepts_matching_panic;
      Alcotest.test_case "semantic rejects spurious panic" `Quick test_semantic_rejects_spurious_panic;
      Alcotest.test_case "score ordering" `Quick test_score_ordering;
      Alcotest.test_case "score ill-typed" `Quick test_score_ill_typed;
      Alcotest.test_case "error_count collect" `Quick test_error_count_collect ]

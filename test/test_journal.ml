(* The durability layer: render-exact report round trips, write-ahead
   journal persistence, corrupt-tail recovery, checkpoint/resume and the
   campaign fingerprint guard. *)

module Journal = Exec.Journal

let with_dir f =
  let dir = Filename.temp_file "rustbrain-test-journal" "" in
  Sys.remove dir;
  Rb_util.Fsfile.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let mk_report ?(name = "case-a") ?(seconds = 12.5) ?(passed = true) () =
  { Rustbrain.Report.case_name = name;
    category = Miri.Diag.Validity;
    passed;
    semantic = false;
    seconds;
    llm_calls = 3;
    tokens = 1234;
    iterations = 2;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = [ 3; 1; 0 ];
    winning_solution = Some "s1";
    feedback_hit = false;
    retries = 1;
    faults = 2;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = [ "line one"; "line \"two\"\twith\\escapes" ] }

(* -- report round trip -------------------------------------------------- *)

let gen_small_string =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_range 0 10)
         (oneofl
            [ "a"; "z"; "_"; " "; "\""; "\\"; "\n"; "\t"; ","; ";"; "{"; "[" ])))

let gen_report =
  QCheck.Gen.(
    let int_small = int_range 0 10_000 in
    let* case_name = gen_small_string in
    let* category = oneofl Miri.Diag.all_kinds in
    let* passed = bool in
    let* semantic = bool in
    (* bounded magnitude keeps %.6f printing in the regime where
       print→parse→print is idempotent (documented contract of of_json) *)
    let* seconds = map (fun i -> float_of_int i /. 1000.0) (int_range 0 10_000_000) in
    let* llm_calls = int_small in
    let* tokens = int_small in
    let* iterations = int_small in
    let* solutions_tried = int_small in
    let* rollbacks = int_small in
    let* n_sequence = list_size (int_range 0 6) int_small in
    let* winning_solution = opt gen_small_string in
    let* feedback_hit = bool in
    let* retries = int_small in
    let* faults = int_small in
    let* breaker_trips = int_small in
    let* degraded = bool in
    let* gave_up = bool in
    let* trace = list_size (int_range 0 4) gen_small_string in
    return
      { Rustbrain.Report.case_name; category; passed; semantic; seconds;
        llm_calls; tokens; iterations; solutions_tried; rollbacks; n_sequence;
        winning_solution; feedback_hit; retries; faults; breaker_trips;
        degraded; gave_up; trace })

let report_arb =
  QCheck.make ~print:(fun r -> Rustbrain.Report.to_json r) gen_report

let prop_json_roundtrip =
  QCheck.Test.make ~name:"of_json (to_json r) is render-exact" ~count:300
    report_arb (fun r ->
      let json = Rustbrain.Report.to_json r in
      match Rustbrain.Report.of_json json with
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s on %s" e json
      | Ok r' ->
        Rustbrain.Report.to_json r' = json
        && Rustbrain.Report.csv_row r' = Rustbrain.Report.csv_row r)

let test_of_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Rustbrain.Report.of_json s with
      | Ok _ -> Alcotest.failf "of_json accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,2]"; "{\"case\":\"x\"}"; "null";
      (* truncated mid-string: a torn journal write *)
      (let j = Rustbrain.Report.to_json (mk_report ()) in
       String.sub j 0 (String.length j / 2)) ]

(* -- journal append/load ------------------------------------------------ *)

let manifest jobs cases =
  { Journal.version = Journal.version; fingerprint = "fp-test"; jobs; cases }

let record ~job ~case ?(seconds = 1.25) () =
  { Journal.job; backend = "rustbrain"; seed = 1; case; cache_hits = 2;
    cache_misses = 3; report = mk_report ~name:case ~seconds () }

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let j = Journal.create ~dir (manifest [ "j0"; "j1" ] [ "a"; "b" ]) in
      Journal.append j (record ~job:"j0" ~case:"a" ()) ~snapshot:"snap-a";
      Journal.append j (record ~job:"j1" ~case:"a" ~seconds:9.75 ()) ~snapshot:"snap-b";
      Journal.append j (record ~job:"j0" ~case:"b" ()) ~snapshot:"snap-c";
      match Journal.load ~dir with
      | Error e -> Alcotest.fail e
      | Ok l ->
        Alcotest.(check int) "records" 3 (List.length l.Journal.records);
        Alcotest.(check int) "nothing dropped" 0 l.Journal.dropped;
        Alcotest.(check string) "manifest fingerprint" "fp-test"
          l.Journal.manifest.Journal.fingerprint;
        Alcotest.(check (list string)) "append order"
          [ "j0/a"; "j1/a"; "j0/b" ]
          (List.map
             (fun (r : Journal.record) -> r.Journal.job ^ "/" ^ r.Journal.case)
             l.Journal.records);
        (* replayed reports render exactly as the originals *)
        List.iter
          (fun (r : Journal.record) ->
            Alcotest.(check string) "render-exact replay"
              (Rustbrain.Report.to_json (mk_report ~name:r.Journal.case
                 ~seconds:r.Journal.report.Rustbrain.Report.seconds ()))
              (Rustbrain.Report.to_json r.Journal.report))
          l.Journal.records;
        (* latest snapshot per job, tagged with that job's record count *)
        Alcotest.(check (option (pair int string))) "j0 snapshot"
          (Some (2, "snap-c"))
          (List.assoc_opt "j0" l.Journal.snapshots);
        Alcotest.(check (option (pair int string))) "j1 snapshot"
          (Some (1, "snap-b"))
          (List.assoc_opt "j1" l.Journal.snapshots))

let test_corrupt_tail_dropped () =
  with_dir (fun dir ->
      let j = Journal.create ~dir (manifest [ "j0" ] [ "a"; "b"; "c" ]) in
      Journal.append j (record ~job:"j0" ~case:"a" ()) ~snapshot:"s1";
      Journal.append j (record ~job:"j0" ~case:"b" ()) ~snapshot:"s2";
      Journal.append j (record ~job:"j0" ~case:"c" ()) ~snapshot:"s3";
      (* truncate the tail segment mid-record: a torn write *)
      let tail = Filename.concat dir "rec-000002.json" in
      let full = Option.get (Rb_util.Fsfile.read tail) in
      let oc = open_out_bin tail in
      output_string oc (String.sub full 0 (String.length full - 7));
      close_out oc;
      (match Journal.load ~dir with
      | Error e -> Alcotest.fail e
      | Ok l ->
        Alcotest.(check int) "valid prefix kept" 2 (List.length l.Journal.records);
        Alcotest.(check int) "tail dropped, not fatal" 1 l.Journal.dropped;
        (* the snapshot now outruns the records; Checkpoint must see the
           disagreement via the embedded count *)
        Alcotest.(check (option (pair int string))) "snapshot count stale"
          (Some (3, "s3"))
          (List.assoc_opt "j0" l.Journal.snapshots));
      (* attach clears the corrupt tail and continues after the prefix *)
      match Journal.attach ~dir with
      | Error e -> Alcotest.fail e
      | Ok j2 ->
        Alcotest.(check bool) "corrupt segment removed" false (Sys.file_exists tail);
        Journal.append j2 (record ~job:"j0" ~case:"c" ()) ~snapshot:"s3'";
        (match Journal.load ~dir with
        | Error e -> Alcotest.fail e
        | Ok l2 ->
          Alcotest.(check int) "recomputed record landed" 3
            (List.length l2.Journal.records);
          Alcotest.(check int) "clean again" 0 l2.Journal.dropped;
          Alcotest.(check (option (pair int string))) "snapshot consistent again"
            (Some (3, "s3'"))
            (List.assoc_opt "j0" l2.Journal.snapshots)))

let test_corrupt_snapshot_omitted () =
  with_dir (fun dir ->
      let j = Journal.create ~dir (manifest [ "j0" ] [ "a" ]) in
      Journal.append j (record ~job:"j0" ~case:"a" ()) ~snapshot:"payload";
      let snap = Filename.concat dir "snap-000.bin" in
      let oc = open_out_bin snap in
      output_string oc "RBSNAP1 1 0123456789abcdef0123456789abcdef\npayloaX";
      close_out oc;
      match Journal.load ~dir with
      | Error e -> Alcotest.fail e
      | Ok l ->
        Alcotest.(check int) "records intact" 1 (List.length l.Journal.records);
        Alcotest.(check bool) "bad snapshot omitted" true
          (List.assoc_opt "j0" l.Journal.snapshots = None))

let test_kill_after () =
  with_dir (fun dir ->
      let j = Journal.create ~dir (manifest [ "j0" ] [ "a"; "b"; "c" ]) in
      Journal.kill_after j 2;
      Journal.append j (record ~job:"j0" ~case:"a" ()) ~snapshot:"s";
      Journal.append j (record ~job:"j0" ~case:"b" ()) ~snapshot:"s";
      (match Journal.append j (record ~job:"j0" ~case:"c" ()) ~snapshot:"s" with
      | () -> Alcotest.fail "expected Killed"
      | exception Journal.Killed -> ());
      (* a dead writer stays dead *)
      (match Journal.append j (record ~job:"j0" ~case:"c" ()) ~snapshot:"s" with
      | () -> Alcotest.fail "expected Killed again"
      | exception Journal.Killed -> ());
      match Journal.load ~dir with
      | Error e -> Alcotest.fail e
      | Ok l ->
        Alcotest.(check int) "exactly the budgeted records durable" 2
          (List.length l.Journal.records))

let test_manifest_guard () =
  with_dir (fun dir ->
      Alcotest.(check bool) "no journal yet" false (Journal.exists ~dir);
      (match Journal.attach ~dir with
      | Ok _ -> Alcotest.fail "attach without manifest must fail"
      | Error _ -> ());
      let _ = Journal.create ~dir (manifest [ "j0" ] [ "a" ]) in
      Alcotest.(check bool) "journal exists" true (Journal.exists ~dir);
      Journal.wipe ~dir;
      Alcotest.(check bool) "wiped" false (Journal.exists ~dir))

(* -- snapshot/restore determinism --------------------------------------- *)

let two_cases () =
  match Dataset.Corpus.all with
  | a :: b :: _ -> (a, b)
  | _ -> Alcotest.fail "corpus too small"

let test_snapshot_restore_determinism () =
  let a, b = two_cases () in
  let runner = Exec.Backends.rustbrain () in
  let live = Exec.Runner.start runner in
  let _ = Exec.Runner.step live a in
  let frozen = Exec.Runner.snapshot live in
  (* continuing the live session and continuing the restored one must
     produce byte-identical reports: sessions accumulate cross-case state
     (tokens, RNG streams, feedback), so this is the property resume
     correctness stands on *)
  let r_live = Exec.Runner.step live b in
  let restored = Exec.Runner.restore runner frozen in
  let r_restored = Exec.Runner.step restored b in
  Alcotest.(check string) "restored session continues identically"
    (Rustbrain.Report.to_json r_live)
    (Rustbrain.Report.to_json r_restored)

(* -- checkpoint/resume --------------------------------------------------- *)

let quick_jobs ?(seeds = [ 1; 2 ]) () =
  let a, b = two_cases () in
  Exec.Scheduler.seeded_jobs (Exec.Backends.human_expert ()) ~seeds [ a; b ]

let render results =
  List.concat_map (fun r -> r.Exec.Scheduler.reports) results
  |> List.map Rustbrain.Report.to_json

let test_checkpoint_kill_resume () =
  with_dir (fun dir ->
      let baseline =
        let results, _ = Exec.Scheduler.run_jobs ~domains:1 (quick_jobs ()) in
        render results
      in
      let o1 =
        Exec.Checkpoint.run ~domains:1 ~kill_after:2 ~dir
          ~mode:Exec.Checkpoint.Fresh (quick_jobs ())
      in
      Alcotest.(check bool) "killed run crashed" true
        (Exec.Scheduler.failures o1.Exec.Checkpoint.results <> []);
      let o2 =
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Resume
          (quick_jobs ())
      in
      Alcotest.(check (list string)) "stitched == uninterrupted" baseline
        (render o2.Exec.Checkpoint.results);
      Alcotest.(check int) "journaled work replayed, not re-verified" 2
        o2.Exec.Checkpoint.replayed;
      Alcotest.(check int) "only the remainder recomputed" 2
        o2.Exec.Checkpoint.recomputed)

let test_checkpoint_fingerprint_mismatch () =
  with_dir (fun dir ->
      let _ =
        Exec.Checkpoint.run ~domains:1 ~kill_after:1 ~dir
          ~mode:Exec.Checkpoint.Fresh (quick_jobs ())
      in
      (match
         Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Resume
           (quick_jobs ~seeds:[ 7; 8 ] ())
       with
      | _ -> Alcotest.fail "foreign journal accepted"
      | exception Exec.Checkpoint.Fingerprint_mismatch _ -> ());
      (* --fresh semantics: the same foreign jobs are fine when starting over *)
      let o =
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Fresh
          (quick_jobs ~seeds:[ 7; 8 ] ())
      in
      Alcotest.(check int) "fresh run recomputes everything" 4
        o.Exec.Checkpoint.recomputed)

let test_checkpoint_truncated_tail_recomputes () =
  with_dir (fun dir ->
      let baseline =
        let results, _ = Exec.Scheduler.run_jobs ~domains:1 (quick_jobs ()) in
        render results
      in
      let _ =
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Fresh
          (quick_jobs ())
      in
      (* tear the last record: its job's snapshot now outruns the records,
         so that job must be recomputed from scratch — and the final
         reports must still be byte-identical *)
      let tail = Filename.concat dir "rec-000003.json" in
      let full = Option.get (Rb_util.Fsfile.read tail) in
      let oc = open_out_bin tail in
      output_string oc (String.sub full 0 (String.length full - 5));
      close_out oc;
      let o =
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Resume
          (quick_jobs ())
      in
      Alcotest.(check int) "torn record detected" 1 o.Exec.Checkpoint.dropped;
      Alcotest.(check (list string)) "reports still byte-identical" baseline
        (render o.Exec.Checkpoint.results);
      (* the journal heals: a further resume replays everything *)
      let o2 =
        Exec.Checkpoint.run ~domains:1 ~dir ~mode:Exec.Checkpoint.Resume
          (quick_jobs ())
      in
      Alcotest.(check int) "healed journal fully replays" 0
        o2.Exec.Checkpoint.recomputed)

let suite =
  [ QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "of_json rejects garbage" `Quick test_of_json_rejects_garbage;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "corrupt tail dropped" `Quick test_corrupt_tail_dropped;
    Alcotest.test_case "corrupt snapshot omitted" `Quick test_corrupt_snapshot_omitted;
    Alcotest.test_case "kill_after" `Quick test_kill_after;
    Alcotest.test_case "manifest guard" `Quick test_manifest_guard;
    Alcotest.test_case "snapshot/restore determinism" `Slow
      test_snapshot_restore_determinism;
    Alcotest.test_case "checkpoint kill+resume" `Quick test_checkpoint_kill_resume;
    Alcotest.test_case "fingerprint mismatch refused" `Quick
      test_checkpoint_fingerprint_mismatch;
    Alcotest.test_case "truncated tail recomputed" `Quick
      test_checkpoint_truncated_tail_recomputes ]

(* Small shared helpers for the test suite. *)

let contains hay sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Run a source program through the machine with a fixed configuration. *)
let run ?(inputs = [||]) ?(mode = Miri.Machine.Stop_first) ?(seed = 1)
    ?(max_steps = 200_000)
    ?(max_allocs = Miri.Machine.default_config.Miri.Machine.max_allocs)
    ?(max_alloc_bytes = Miri.Machine.default_config.Miri.Machine.max_alloc_bytes)
    ?(engine = Miri.Machine.default_config.Miri.Machine.engine)
    src =
  let program = Minirust.Parser.parse src in
  match
    Miri.Machine.analyze
      ~config:{ Miri.Machine.mode; seed; max_steps; inputs; trace = false;
                max_allocs; max_alloc_bytes; engine }
      program
  with
  | Miri.Machine.Compile_error msg -> Alcotest.failf "compile error: %s" msg
  | Miri.Machine.Ran r -> r

let outcome_kind (r : Miri.Machine.run_result) =
  match r.Miri.Machine.outcome with
  | Miri.Machine.Finished -> "finished"
  | Miri.Machine.Panicked _ -> "panic"
  | Miri.Machine.Ub d -> "ub:" ^ Miri.Diag.kind_name d.Miri.Diag.kind
  | Miri.Machine.Step_limit -> "step-limit"
  | Miri.Machine.Resource_limit _ -> "resource-limit"

let expect_ub ?(inputs = [||]) src kind () =
  let r = run ~inputs src in
  Alcotest.(check string) "outcome" ("ub:" ^ Miri.Diag.kind_name kind) (outcome_kind r)

let expect_finished ?(inputs = [||]) src expected_output () =
  let r = run ~inputs src in
  Alcotest.(check string) "outcome" "finished" (outcome_kind r);
  Alcotest.(check (list string)) "output" expected_output r.Miri.Machine.output

let expect_panic ?(inputs = [||]) src () =
  let r = run ~inputs src in
  Alcotest.(check string) "outcome" "panic" (outcome_kind r)

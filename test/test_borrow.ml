(* Borrow stacks: the stacked-borrows transitions in isolation. *)

open Miri

let fresh () =
  let base = Borrow.fresh_tag () in
  (Borrow.create ~base_tag:base, base)

let ok = function Ok v -> v | Error v -> Alcotest.failf "unexpected violation: %s" v.Borrow.detail

(* access/retag return the popped items; most tests only care about success *)
let ok_access r = ignore (ok r : (int * Borrow.perm) list)
let ok_retag r = fst (ok r)

let test_base_access () =
  let stack, base = fresh () in
  ok_access (Borrow.access stack ~tag:(Some base) ~write:true);
  ok_access (Borrow.access stack ~tag:(Some base) ~write:false)

let test_unique_chain () =
  let stack, base = fresh () in
  let r1 = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Unique) in
  let r2 = ok_retag (Borrow.retag stack ~parent:(Some r1) Borrow.Unique) in
  ok_access (Borrow.access stack ~tag:(Some r2) ~write:true);
  (* using r1 invalidates r2: the popped list names it *)
  let popped = ok (Borrow.access stack ~tag:(Some r1) ~write:true) in
  Alcotest.(check bool) "r2 reported popped" true (List.mem_assoc r2 popped);
  match Borrow.access stack ~tag:(Some r2) ~write:true with
  | Error v -> Alcotest.(check int) "missing tag is r2" r2 v.Borrow.missing_tag
  | Ok _ -> Alcotest.fail "r2 should be invalidated"

let test_base_write_pops_all () =
  let stack, base = fresh () in
  let r = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Unique) in
  (* the Shared_ro retag performs a read through base, which already pops r *)
  let s = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Shared_ro) in
  Alcotest.(check bool) "r popped by the shared retag" true
    (Result.is_error (Borrow.access stack ~tag:(Some r) ~write:false));
  let popped = ok (Borrow.access stack ~tag:(Some base) ~write:true) in
  Alcotest.(check bool) "s reported popped by the base write" true (List.mem_assoc s popped);
  Alcotest.(check bool) "s gone" true
    (Result.is_error (Borrow.access stack ~tag:(Some s) ~write:false))

let test_read_keeps_shared () =
  let stack, base = fresh () in
  let s = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Shared_ro) in
  (* a read through the base keeps shared readers alive *)
  ok_access (Borrow.access stack ~tag:(Some base) ~write:false);
  ok_access (Borrow.access stack ~tag:(Some s) ~write:false)

let test_read_pops_unique () =
  let stack, base = fresh () in
  let u = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Unique) in
  ok_access (Borrow.access stack ~tag:(Some base) ~write:false);
  Alcotest.(check bool) "unique popped by read" true
    (Result.is_error (Borrow.access stack ~tag:(Some u) ~write:true))

let test_write_through_shared_ro () =
  let stack, base = fresh () in
  let s = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Shared_ro) in
  match Borrow.access stack ~tag:(Some s) ~write:true with
  | Error v -> Alcotest.(check bool) "flagged as write-through-ro" true v.Borrow.write_through_ro
  | Ok _ -> Alcotest.fail "write through SharedRO must fail"

let test_shared_rw_can_write () =
  let stack, base = fresh () in
  let s = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Shared_rw) in
  ok_access (Borrow.access stack ~tag:(Some s) ~write:true)

let test_wildcard_access_is_free () =
  let stack, _base = fresh () in
  Alcotest.(check int) "wildcard pops nothing" 0
    (List.length (ok (Borrow.access stack ~tag:None ~write:true)))

let test_missing_perm_recorded () =
  let stack, base = fresh () in
  let s = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Shared_ro) in
  ok_access (Borrow.access stack ~tag:(Some base) ~write:true);
  match Borrow.access stack ~tag:(Some s) ~write:false with
  | Error v ->
    Alcotest.(check bool) "records SharedRO creation perm" true
      (v.Borrow.missing_perm = Borrow.Shared_ro)
  | Ok _ -> Alcotest.fail "expected violation"

let test_unknown_tag_classified () =
  (* a tag this stack never created (forged, or carried over from another
     allocation) must not be misreported as a popped Unique borrow *)
  let stack, _base = fresh () in
  let foreign = Borrow.fresh_tag () in
  match Borrow.access stack ~tag:(Some foreign) ~write:false with
  | Error v ->
    Alcotest.(check int) "tag recorded" foreign v.Borrow.missing_tag;
    Alcotest.(check bool) "detail says unknown" true
      (Helpers.contains v.Borrow.detail "unknown to this allocation's borrow stack")
  | Ok _ -> Alcotest.fail "unknown tag must be a violation"

let test_popped_tag_keeps_old_wording () =
  (* a tag the stack did create keeps the popped-from-stack diagnostic *)
  let stack, base = fresh () in
  let u = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Unique) in
  ok_access (Borrow.access stack ~tag:(Some base) ~write:true);
  match Borrow.access stack ~tag:(Some u) ~write:false with
  | Error v ->
    Alcotest.(check bool) "says no longer on stack" true
      (Helpers.contains v.Borrow.detail "no longer on the borrow stack")
  | Ok _ -> Alcotest.fail "expected violation"

let test_retag_from_wildcard_parent () =
  let stack, _base = fresh () in
  let t = ok_retag (Borrow.retag stack ~parent:None Borrow.Shared_rw) in
  ok_access (Borrow.access stack ~tag:(Some t) ~write:true)

let test_items_order () =
  let stack, base = fresh () in
  let a = ok_retag (Borrow.retag stack ~parent:(Some base) Borrow.Unique) in
  let items = Borrow.items stack in
  match items with
  | (top, Borrow.Unique) :: _ -> Alcotest.(check int) "top is newest" a top
  | _ -> Alcotest.fail "unexpected stack shape"

let suite =
  [ Alcotest.test_case "base access" `Quick test_base_access;
    Alcotest.test_case "unique chain invalidation" `Quick test_unique_chain;
    Alcotest.test_case "base write pops all" `Quick test_base_write_pops_all;
    Alcotest.test_case "read keeps shared" `Quick test_read_keeps_shared;
    Alcotest.test_case "read pops unique" `Quick test_read_pops_unique;
    Alcotest.test_case "write through SharedRO" `Quick test_write_through_shared_ro;
    Alcotest.test_case "SharedRW can write" `Quick test_shared_rw_can_write;
    Alcotest.test_case "wildcard access" `Quick test_wildcard_access_is_free;
    Alcotest.test_case "missing perm recorded" `Quick test_missing_perm_recorded;
    Alcotest.test_case "unknown tag classified" `Quick test_unknown_tag_classified;
    Alcotest.test_case "popped tag keeps old wording" `Quick test_popped_tag_keeps_old_wording;
    Alcotest.test_case "retag from wildcard parent" `Quick test_retag_from_wildcard_parent;
    Alcotest.test_case "items order" `Quick test_items_order ]

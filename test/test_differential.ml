(* Differential testing: the machine's arithmetic against a reference
   evaluator written directly in OCaml, over randomly generated expression
   trees. Any divergence in wrapping, precedence handling, short-circuiting
   or panic behaviour shows up here. *)

type rexpr =
  | R_int of int
  | R_add of rexpr * rexpr
  | R_sub of rexpr * rexpr
  | R_mul of rexpr * rexpr
  | R_and of rexpr * rexpr
  | R_or of rexpr * rexpr
  | R_xor of rexpr * rexpr

(* reference semantics: exact 64-bit ops; operands are small enough that
   overflow cannot occur *)
let rec reval = function
  | R_int n -> Int64.of_int n
  | R_add (a, b) -> Int64.add (reval a) (reval b)
  | R_sub (a, b) -> Int64.sub (reval a) (reval b)
  | R_mul (a, b) -> Int64.mul (reval a) (reval b)
  | R_and (a, b) -> Int64.logand (reval a) (reval b)
  | R_or (a, b) -> Int64.logor (reval a) (reval b)
  | R_xor (a, b) -> Int64.logxor (reval a) (reval b)

let rec render = function
  | R_int n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | R_add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | R_sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | R_mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | R_and (a, b) -> Printf.sprintf "(%s & %s)" (render a) (render b)
  | R_or (a, b) -> Printf.sprintf "(%s | %s)" (render a) (render b)
  | R_xor (a, b) -> Printf.sprintf "(%s ^ %s)" (render a) (render b)

let gen_rexpr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth <= 0 then int_range (-50) 50 >|= fun n -> R_int n
      else
        frequency
          [ (2, int_range (-50) 50 >|= fun n -> R_int n);
            (1, map2 (fun a b -> R_add (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> R_sub (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> R_mul (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> R_and (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> R_or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> R_xor (a, b)) (self (depth - 1)) (self (depth - 1))) ])
    4

let arbitrary_rexpr = QCheck.make ~print:render gen_rexpr

(* |values| stay under ~50^16, far from overflow at depth 4 with *; actually
   multiplication chains could reach 50^8 ~ 4e13, still < 2^62: no panics *)
let prop_machine_matches_reference =
  QCheck.Test.make ~name:"machine arithmetic = reference semantics" ~count:300
    arbitrary_rexpr
    (fun re ->
      let src = Printf.sprintf "fn main() { print(%s); }" (render re) in
      let r = Helpers.run src in
      r.Miri.Machine.output = [ Int64.to_string (reval re) ])

(* scheduler-seed independence for a race-free threaded program: the final
   observable result must not depend on interleaving *)
let prop_seed_independent_result =
  QCheck.Test.make ~name:"race-free result is schedule-independent" ~count:30
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let src =
        Printf.sprintf
          "static mut C: i64 = 0; fn w(n: i64) { let mut i = 0; while i < n { unsafe { \
           atomic_add(&raw mut C, 1); } i = i + 1; } } fn main() { let a = spawn w(%d); \
           let b = spawn w(%d); join(a); join(b); unsafe { print(atomic_load(&raw mut C)); } }"
          n n
      in
      let r = Helpers.run ~seed src in
      r.Miri.Machine.output = [ string_of_int (2 * n) ])

(* small random well-typed programs assembled from UB-prone statement
   templates; shared by the totality and engine-equivalence properties *)
let gen_stmt_src : string QCheck.Gen.t =
  let open QCheck.Gen in
  let tmpl =
    oneofl
      [ "let mut a = [1, 2, 3]; print(a[input(0)]);";
        "let mut x = input(0); print(x * x);";
        "let mut x = input(0); print(100 / x);";
        "unsafe { let mut p = alloc(8, 8) as *mut i64; *p = input(0); print(*p); \
         dealloc(p as *mut i8, 8, 8); }";
        "let mut x = input(0); let mut r = &mut x; *r = *r + 1; print(x);";
        "unsafe { let mut a = [9, 8]; print(a.get_unchecked(input(0))); }";
        "let mut i = 0; while i < input(0) { i = i + 1; } print(i);" ]
  in
  list_size (int_range 1 4) tmpl >|= fun stmts ->
  "fn main() { " ^ String.concat " " stmts ^ " }"

(* a random well-typed program must never crash the machine: it finishes,
   panics, reports UB or hits the step limit — OCaml exceptions escaping the
   interpreter would show up here *)
let prop_total_machine =
  QCheck.Test.make ~name:"machine is total on well-typed programs" ~count:200
    (QCheck.make ~print:(fun (s, _) -> s) QCheck.Gen.(pair gen_stmt_src (int_range (-3) 9)))
    (fun (src, input0) ->
      let program = Minirust.Parser.parse src in
      match Minirust.Typecheck.check program with
      | Error _ -> QCheck.assume_fail ()
      | Ok info ->
        let config =
          { Miri.Machine.default_config with Miri.Machine.inputs = [| Int64.of_int input0 |] }
        in
        let r = Miri.Machine.run ~config program info in
        (* any outcome is fine; reaching here without an exception is the test *)
        r.Miri.Machine.steps >= 0)

(* -- engine equivalence -------------------------------------------------- *)

(* everything the rest of the system can observe about a run, as strings:
   both engines must agree on all of it, not just the outcome tag *)
let observables (r : Miri.Machine.run_result) =
  let outcome =
    match r.Miri.Machine.outcome with
    | Miri.Machine.Finished -> "finished"
    | Miri.Machine.Panicked m -> "panicked: " ^ m
    | Miri.Machine.Ub d -> "ub: " ^ Miri.Diag.to_string d
    | Miri.Machine.Step_limit -> "step-limit"
    | Miri.Machine.Resource_limit m -> "resource-limit: " ^ m
  in
  ( outcome, r.Miri.Machine.output,
    List.map Miri.Diag.to_string r.Miri.Machine.diags,
    r.Miri.Machine.steps, r.Miri.Machine.error_count )

let engines_agree ~mode ~seed ~inputs src =
  let program = Minirust.Parser.parse src in
  match Minirust.Typecheck.check program with
  | Error _ -> QCheck.assume_fail ()
  | Ok info ->
    let run engine =
      let config =
        { Miri.Machine.default_config with Miri.Machine.mode; seed; inputs; engine }
      in
      observables (Miri.Machine.run ~config program info)
    in
    run Miri.Machine.Bytecode = run Miri.Machine.Tree_walk

(* the bytecode VM and the tree-walker must execute every corpus program
   (buggy and fixed, any mode, any scheduler seed) identically: same
   outcome, print trace, diagnostic strings, step and error counts *)
let prop_engines_agree_on_corpus =
  let cases = Array.of_list Dataset.Corpus.all in
  QCheck.Test.make ~name:"bytecode VM = tree-walker on corpus programs" ~count:150
    (QCheck.make
       ~print:(fun (i, buggy, collect, seed) ->
         Printf.sprintf "%s/%s collect=%d seed=%d"
           cases.(i).Dataset.Case.name
           (if buggy then "buggy" else "fixed")
           collect seed)
       QCheck.Gen.(
         quad
           (int_bound (Array.length cases - 1))
           bool (int_bound 5) (int_range 1 50)))
    (fun (i, buggy, collect, seed) ->
      let c = cases.(i) in
      let src = if buggy then c.Dataset.Case.buggy_src else c.Dataset.Case.fixed_src in
      let mode =
        if collect = 0 then Miri.Machine.Stop_first else Miri.Machine.Collect collect
      in
      let inputs = match c.Dataset.Case.probes with p :: _ -> p | [] -> [||] in
      engines_agree ~mode ~seed ~inputs src)

(* same contract over random template programs with adversarial inputs *)
let prop_engines_agree_on_random =
  QCheck.Test.make ~name:"bytecode VM = tree-walker on random programs" ~count:150
    (QCheck.make
       ~print:(fun (s, i) -> Printf.sprintf "%s input0=%d" s i)
       QCheck.Gen.(pair gen_stmt_src (int_range (-3) 9)))
    (fun (src, input0) ->
      engines_agree ~mode:Miri.Machine.Stop_first ~seed:1
        ~inputs:[| Int64.of_int input0 |] src)

let suite =
  [ QCheck_alcotest.to_alcotest prop_machine_matches_reference;
    QCheck_alcotest.to_alcotest prop_seed_independent_result;
    QCheck_alcotest.to_alcotest prop_total_machine;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_corpus;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_random ]

(* Bytecode execution engine.

   Executes [Minirust.Bytecode] programs over the shared [Rt] substrate.
   The hot loop is a tail-recursive dispatch over a flat instruction array
   that allocates nothing per step: operand values, places (pointer+type),
   frame slots, live-local indices and scope marks all live in preallocated
   growable arrays owned by the per-thread [vctx]. Every semantic judgment
   (typed access, retags, arithmetic, diagnostics) goes through the same
   [Rt] cores as the tree-walker, so results — including report strings,
   recovery values, step counts and scheduler interleavings — are
   byte-identical between the engines. *)

open Minirust

(* one bound local: its stack allocation plus the layout resolved once at
   bind time instead of once per access *)
type slot_entry = {
  sl_alloc : Mem.allocation;
  sl_ty : Ast.ty;
  sl_size : int;
  sl_align : int;
}

type vctx = {
  ec : Rt.ectx;
  code : Bytecode.program_code;
  statics : Mem.allocation option array;  (* shared across threads *)
  (* operand stack *)
  mutable ops : Value.t array;
  mutable osp : int;
  (* place stack: parallel pointer/type arrays *)
  mutable pptr : Value.pointer array;
  mutable pty : Ast.ty array;
  mutable psp : int;
  (* frame slots: call frames stack their slot windows at [frame_base] *)
  mutable slots : slot_entry option array;
  mutable frame_base : int;
  mutable slot_top : int;
  (* live locals (absolute slot indices, newest last) + scope marks *)
  mutable live : int array;
  mutable lsp : int;
  mutable marks : int array;
  mutable msp : int;
}

let make_vctx st code statics tid =
  {
    ec = Rt.make_ectx st tid;
    code;
    statics;
    ops = Array.make 64 Value.V_unit;
    osp = 0;
    pptr = Array.make 16 Value.null_pointer;
    pty = Array.make 16 Ast.T_unit;
    psp = 0;
    slots = Array.make 64 None;
    frame_base = 0;
    slot_top = 0;
    live = Array.make 64 0;
    lsp = 0;
    marks = Array.make 32 0;
    msp = 0;
  }

(* ------------------------------------------------------------------ *)
(* Stack helpers: amortized-growable, no per-step allocation *)

let push c v =
  let n = Array.length c.ops in
  if c.osp >= n then begin
    let bigger = Array.make (2 * n) Value.V_unit in
    Array.blit c.ops 0 bigger 0 n;
    c.ops <- bigger
  end;
  Array.unsafe_set c.ops c.osp v;
  c.osp <- c.osp + 1

let pop c =
  c.osp <- c.osp - 1;
  Array.unsafe_get c.ops c.osp

(* values produced by [I_to_int] are always [V_int] *)
let pop_int c =
  match pop c with
  | Value.V_int (n, _) -> n
  | _ -> assert false

(* pop [n] values into a list preserving push (evaluation) order *)
let rec pop_list c n acc = if n = 0 then acc else pop_list c (n - 1) (pop c :: acc)

let push_place c ptr ty =
  let n = Array.length c.pptr in
  if c.psp >= n then begin
    let bp = Array.make (2 * n) Value.null_pointer in
    Array.blit c.pptr 0 bp 0 n;
    c.pptr <- bp;
    let bt = Array.make (2 * n) Ast.T_unit in
    Array.blit c.pty 0 bt 0 n;
    c.pty <- bt
  end;
  c.pptr.(c.psp) <- ptr;
  c.pty.(c.psp) <- ty;
  c.psp <- c.psp + 1

let ensure_slots c top =
  let n = Array.length c.slots in
  if top > n then begin
    let bigger = Array.make (max (2 * n) top) None in
    Array.blit c.slots 0 bigger 0 n;
    c.slots <- bigger
  end

let get_slot c i =
  match c.slots.(c.frame_base + i) with Some e -> e | None -> assert false

let get_static c k =
  match c.statics.(k) with Some a -> a | None -> assert false

let push_live c idx =
  let n = Array.length c.live in
  if c.lsp >= n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit c.live 0 bigger 0 n;
    c.live <- bigger
  end;
  c.live.(c.lsp) <- idx;
  c.lsp <- c.lsp + 1

let set_slot c idx e =
  c.slots.(idx) <- Some e;
  push_live c idx

let push_mark c =
  let n = Array.length c.marks in
  if c.msp >= n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit c.marks 0 bigger 0 n;
    c.marks <- bigger
  end;
  c.marks.(c.msp) <- c.lsp;
  c.msp <- c.msp + 1

(* deallocate live locals newest-first down to [target]: the same order the
   tree-walker's nested [close_scope]s produce (inner scopes, then outer,
   then parameters) *)
let unwind_live c target =
  while c.lsp > target do
    c.lsp <- c.lsp - 1;
    match c.slots.(c.live.(c.lsp)) with
    | Some e -> Mem.deallocate c.ec.Rt.st.Rt.mem e.sl_alloc
    | None -> ()
  done

let truthy v = Option.value (Value.as_bool v) ~default:false

(* ------------------------------------------------------------------ *)
(* Instruction loop *)

let rec run_code c (f : Bytecode.fn_code) ~lsp0 pc : Value.t =
  let code = f.Bytecode.fc_code in
  if pc >= Array.length code then begin
    (* only the statics prologue falls off the end; functions end in
       [I_fn_end] *)
    unwind_live c lsp0;
    Value.V_unit
  end
  else
    let ec = c.ec in
    let st = ec.Rt.st in
    match Array.unsafe_get code pc with
    | Bytecode.I_push_unit ->
      push c Value.V_unit;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_push_bool b ->
      push c (Value.V_bool b);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_push_int (n, w) ->
      push c (Value.V_int (n, w));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_push_fn (name, sg) ->
      push c (Value.V_fn (name, sg));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_load_local slot ->
      let e = get_slot c slot in
      push c
        (Rt.typed_read_sized ec (Rt.base_pointer e.sl_alloc) e.sl_ty ~len:e.sl_size
           ~align:e.sl_align ~atomic:false);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_store_local slot ->
      let v = pop c in
      let e = get_slot c slot in
      Rt.typed_write_sized ec (Rt.base_pointer e.sl_alloc) e.sl_ty v ~len:e.sl_size
        ~align:e.sl_align ~atomic:false;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_load_deref_local slot ->
      let e = get_slot c slot in
      let pv =
        Rt.typed_read_sized ec (Rt.base_pointer e.sl_alloc) e.sl_ty ~len:e.sl_size
          ~align:e.sl_align ~atomic:false
      in
      let ptr, ty = Rt.place_deref ec pv in
      push c (Rt.typed_read ec ptr ty ~atomic:false);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_store_deref_local slot ->
      let v = pop c in
      let e = get_slot c slot in
      let pv =
        Rt.typed_read_sized ec (Rt.base_pointer e.sl_alloc) e.sl_ty ~len:e.sl_size
          ~align:e.sl_align ~atomic:false
      in
      let ptr, ty = Rt.place_deref ec pv in
      Rt.typed_write ec ptr ty v ~atomic:false;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_local_binop (slot, op, k, kw) ->
      let e = get_slot c slot in
      let base = Rt.base_pointer e.sl_alloc in
      let va =
        Rt.typed_read_sized ec base e.sl_ty ~len:e.sl_size ~align:e.sl_align
          ~atomic:false
      in
      let r = Rt.apply_binop ec op va (Value.V_int (k, kw)) in
      Rt.typed_write_sized ec base e.sl_ty r ~len:e.sl_size ~align:e.sl_align
        ~atomic:false;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_load_static k ->
      let a = get_static c k in
      let si = c.code.Bytecode.pc_statics.(k) in
      push c
        (Rt.typed_read_sized ec (Rt.base_pointer a) si.Bytecode.si_ty
           ~len:si.Bytecode.si_size ~align:si.Bytecode.si_align ~atomic:false);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_store_static k ->
      let v = pop c in
      let a = get_static c k in
      let si = c.code.Bytecode.pc_statics.(k) in
      Rt.typed_write_sized ec (Rt.base_pointer a) si.Bytecode.si_ty v
        ~len:si.Bytecode.si_size ~align:si.Bytecode.si_align ~atomic:false;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_unop op ->
      push c (Rt.apply_unop ec op (pop c));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_binop op ->
      let vb = pop c in
      let va = pop c in
      push c (Rt.apply_binop ec op va vb);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_to_int ->
      push c (Value.V_int (Rt.value_as_int ec (pop c), Ast.I64));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_jump t -> run_code c f ~lsp0 t
    | Bytecode.I_br_false t ->
      if truthy (pop c) then run_code c f ~lsp0 (pc + 1) else run_code c f ~lsp0 t
    | Bytecode.I_cmp_br_false (op, t) ->
      let vb = pop c in
      let va = pop c in
      if truthy (Rt.apply_binop ec op va vb) then run_code c f ~lsp0 (pc + 1)
      else run_code c f ~lsp0 t
    | Bytecode.I_sc_and t ->
      if truthy (pop c) then run_code c f ~lsp0 (pc + 1)
      else begin
        push c (Value.V_bool false);
        run_code c f ~lsp0 t
      end
    | Bytecode.I_sc_or t ->
      if truthy (pop c) then begin
        push c (Value.V_bool true);
        run_code c f ~lsp0 t
      end
      else run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_tuple n ->
      push c (Value.V_tuple (pop_list c n []));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_array n ->
      push c (Value.V_array (pop_list c n []));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_repeat n ->
      let v = pop c in
      push c (Value.V_array (List.init n (fun _ -> v)));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_ref m ->
      c.psp <- c.psp - 1;
      let ptr = c.pptr.(c.psp) and ty = c.pty.(c.psp) in
      let perm = match m with Ast.Mut -> Borrow.Unique | Ast.Imm -> Borrow.Shared_ro in
      let retagged = Rt.retag_pointer ec ptr perm in
      push c (Value.V_ptr (retagged, Ast.T_ref (m, ty)));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_raw_of m ->
      c.psp <- c.psp - 1;
      let ptr = c.pptr.(c.psp) and ty = c.pty.(c.psp) in
      let perm = match m with Ast.Mut -> Borrow.Shared_rw | Ast.Imm -> Borrow.Shared_ro in
      let retagged = Rt.retag_pointer ec ptr perm in
      push c (Value.V_ptr (retagged, Ast.T_raw (m, ty)));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_call (idx, argc) | Bytecode.I_call_arity (idx, argc) ->
      let v = exec_call c idx argc in
      push c v;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_call_value argc ->
      let callee_pos = c.osp - argc - 1 in
      let callee = c.ops.(callee_pos) in
      (match Rt.resolve_callee ec callee with
      | Rt.Call_fn idx ->
        let v = exec_call c idx argc in
        (* the callee cell is now the stack top; replace it with the result *)
        c.ops.(callee_pos) <- v
      | Rt.Call_recover v ->
        c.osp <- callee_pos;
        push c v);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_call_unknown name ->
      invalid_arg ("Machine: call to unknown function " ^ name)
    | Bytecode.I_cast t ->
      push c (Rt.apply_cast ec (pop c) t);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_transmute t ->
      push c (Rt.apply_transmute ec (pop c) t);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_offset ->
      let vn = pop_int c in
      let vp = pop c in
      push c (Rt.apply_offset ec vp vn);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_alloc ->
      let align = Int64.to_int (pop_int c) in
      let size = Int64.to_int (pop_int c) in
      push c (Rt.apply_alloc ec ~size ~align);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_len_place ->
      c.psp <- c.psp - 1;
      let ty = c.pty.(c.psp) in
      push c (Rt.len_of_place_ty ec ty);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_len_value ->
      push c (Rt.len_of_value ec (pop c));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_input ->
      let idx = Int64.to_int (pop_int c) in
      push c (Rt.input_value st idx);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_atomic_load ->
      push c (Rt.atomic_load_v ec (pop c));
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_atomic_add ->
      let delta = pop_int c in
      let pv = pop c in
      push c (Rt.atomic_add_v ec pv delta);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_atomic_store ->
      let v = pop c in
      let pv = pop c in
      Rt.atomic_store_v ec pv v;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_local slot ->
      let e = get_slot c slot in
      push_place c (Rt.base_pointer e.sl_alloc) e.sl_ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_static k ->
      let a = get_static c k in
      let si = c.code.Bytecode.pc_statics.(k) in
      push_place c (Rt.base_pointer a) si.Bytecode.si_ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_deref ->
      let v = pop c in
      let ptr, ty = Rt.place_deref ec v in
      push_place c ptr ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_index ->
      let i = Int64.to_int (pop_int c) in
      c.psp <- c.psp - 1;
      let bptr = c.pptr.(c.psp) and bty = c.pty.(c.psp) in
      let ptr, ty = Rt.place_index ec bptr bty i in
      push_place c ptr ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_index_unchecked ->
      let i = Int64.to_int (pop_int c) in
      c.psp <- c.psp - 1;
      let bptr = c.pptr.(c.psp) and bty = c.pty.(c.psp) in
      let ptr, ty = Rt.place_index_unchecked ec bptr bty i in
      push_place c ptr ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_field i ->
      c.psp <- c.psp - 1;
      let bptr = c.pptr.(c.psp) and bty = c.pty.(c.psp) in
      let ptr, ty = Rt.place_field ec bptr bty i in
      push_place c ptr ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_union_field fld ->
      c.psp <- c.psp - 1;
      let bptr = c.pptr.(c.psp) and bty = c.pty.(c.psp) in
      let ptr, ty = Rt.place_union_field ec bptr bty fld in
      push_place c ptr ty;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_read ->
      c.psp <- c.psp - 1;
      let ptr = c.pptr.(c.psp) and ty = c.pty.(c.psp) in
      push c (Rt.typed_read ec ptr ty ~atomic:false);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_place_unknown name ->
      invalid_arg ("Machine: unknown variable " ^ name)
    | Bytecode.I_stmt sid ->
      st.Rt.cur_stmt <- sid;
      Rt.yield_point st;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_loop_head ->
      Rt.yield_point st;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_pop ->
      c.osp <- c.osp - 1;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_let (slot, ty, size, align) ->
      let v = pop c in
      let a = Rt.tracked_allocate st ~size ~align:(max 1 align) ~kind:Mem.Stack in
      Rt.typed_write_sized ec (Rt.base_pointer a) ty v ~len:size ~align ~atomic:false;
      set_slot c (c.frame_base + slot) { sl_alloc = a; sl_ty = ty; sl_size = size; sl_align = align };
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_let_dyn slot ->
      let v = pop c in
      let ty = Rt.ty_of_value st v in
      let size = Layout.size_of st.Rt.program ty in
      let align = Layout.align_of st.Rt.program ty in
      let a = Rt.tracked_allocate st ~size ~align:(max 1 align) ~kind:Mem.Stack in
      Rt.typed_write_sized ec (Rt.base_pointer a) ty v ~len:size ~align ~atomic:false;
      set_slot c (c.frame_base + slot) { sl_alloc = a; sl_ty = ty; sl_size = size; sl_align = align };
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_assign ->
      c.psp <- c.psp - 1;
      let ptr = c.pptr.(c.psp) and ty = c.pty.(c.psp) in
      let v = pop c in
      Rt.typed_write ec ptr ty v ~atomic:false;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_push_scope ->
      push_mark c;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_pop_scope ->
      c.msp <- c.msp - 1;
      unwind_live c c.marks.(c.msp);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_assert msg ->
      if truthy (pop c) then run_code c f ~lsp0 (pc + 1)
      else raise (Rt.Panic_exc ("assertion failed: " ^ msg))
    | Bytecode.I_panic msg -> raise (Rt.Panic_exc msg)
    | Bytecode.I_ret ->
      let v = pop c in
      unwind_live c lsp0;
      v
    | Bytecode.I_ret_unit ->
      unwind_live c lsp0;
      Value.V_unit
    | Bytecode.I_fn_end ->
      unwind_live c lsp0;
      if f.Bytecode.fc_ret_unit then Value.V_unit
      else Rt.missing_return_value ec f.Bytecode.fc_name f.Bytecode.fc_ret
    | Bytecode.I_print ->
      let v = pop c in
      st.Rt.outputs <- Value.to_display v :: st.Rt.outputs;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_dealloc ->
      let align = Int64.to_int (pop_int c) in
      let size = Int64.to_int (pop_int c) in
      let pv = pop c in
      Rt.dealloc_v ec pv ~size ~align;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_spawn (idx, argc, slot) ->
      let args = pop_list c argc [] in
      let body tid =
        let cc = make_vctx st c.code c.statics tid in
        ignore (exec_call_list cc idx args)
      in
      let tid = Effect.perform (Rt.Spawn_eff body) in
      (* bind the handle as a local *)
      let ty = Ast.T_handle in
      let a = Rt.tracked_allocate st ~size:8 ~align:8 ~kind:Mem.Stack in
      Rt.typed_write ec (Rt.base_pointer a) ty (Value.V_handle tid) ~atomic:false;
      set_slot c (c.frame_base + slot)
        { sl_alloc = a; sl_ty = ty;
          sl_size = Layout.size_of st.Rt.program ty;
          sl_align = Layout.align_of st.Rt.program ty };
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_spawn_unknown name ->
      invalid_arg ("Machine: spawn of unknown function " ^ name)
    | Bytecode.I_join ->
      Rt.join_v ec (pop c);
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_static_alloc k ->
      let si = c.code.Bytecode.pc_statics.(k) in
      let a =
        Rt.tracked_allocate st ~size:si.Bytecode.si_size
          ~align:(max 1 si.Bytecode.si_align) ~kind:Mem.Global
      in
      c.statics.(k) <- Some a;
      run_code c f ~lsp0 (pc + 1)
    | Bytecode.I_static_store k ->
      let v = pop c in
      let a = get_static c k in
      let si = c.code.Bytecode.pc_statics.(k) in
      Rt.typed_write_sized ec (Rt.base_pointer a) si.Bytecode.si_ty v
        ~len:si.Bytecode.si_size ~align:si.Bytecode.si_align ~atomic:false;
      run_code c f ~lsp0 (pc + 1)

(* call with the arguments already on the operand stack *)
and exec_call c idx argc : Value.t =
  let f = c.code.Bytecode.pc_fns.(idx) in
  let nparams = Array.length f.Bytecode.fc_param_layout in
  if argc <> nparams then begin
    let v =
      Rt.call_arity_error c.ec f.Bytecode.fc_name ~got:argc ~want:nparams
        f.Bytecode.fc_ret
    in
    c.osp <- c.osp - argc;
    v
  end
  else
    let args_base = c.osp - argc in
    enter c f (fun i -> c.ops.(args_base + i)) ~args_base

(* call with an argument list (spawned thread bodies, main) *)
and exec_call_list c idx (args : Value.t list) : Value.t =
  let f = c.code.Bytecode.pc_fns.(idx) in
  let nparams = Array.length f.Bytecode.fc_param_layout in
  let argc = List.length args in
  if argc <> nparams then
    Rt.call_arity_error c.ec f.Bytecode.fc_name ~got:argc ~want:nparams
      f.Bytecode.fc_ret
  else begin
    let arr = Array.of_list args in
    enter c f (fun i -> arr.(i)) ~args_base:c.osp
  end

(* push a frame: slot window, parameter binding, body, epilogue. Parameters
   allocate and bind in declaration order, exactly like [call_fn]. *)
and enter c (f : Bytecode.fn_code) get_arg ~args_base : Value.t =
  let st = c.ec.Rt.st in
  let saved_base = c.frame_base
  and saved_top = c.slot_top
  and saved_lsp = c.lsp
  and saved_msp = c.msp in
  let new_base = c.slot_top in
  ensure_slots c (new_base + f.Bytecode.fc_nslots);
  c.frame_base <- new_base;
  c.slot_top <- new_base + f.Bytecode.fc_nslots;
  try
    let layouts = f.Bytecode.fc_param_layout in
    for i = 0 to Array.length layouts - 1 do
      let pty, size, align = layouts.(i) in
      let a = Rt.tracked_allocate st ~size ~align:(max 1 align) ~kind:Mem.Stack in
      Rt.typed_write_sized c.ec (Rt.base_pointer a) pty (get_arg i) ~len:size ~align
        ~atomic:false;
      set_slot c (new_base + i)
        { sl_alloc = a; sl_ty = pty; sl_size = size; sl_align = align }
    done;
    c.osp <- args_base;
    let v = run_code c f ~lsp0:saved_lsp 0 in
    c.frame_base <- saved_base;
    c.slot_top <- saved_top;
    c.msp <- saved_msp;
    v
  with e ->
    unwind_live c saved_lsp;
    c.frame_base <- saved_base;
    c.slot_top <- saved_top;
    c.msp <- saved_msp;
    c.osp <- args_base;
    raise e

(* ------------------------------------------------------------------ *)

let statics_frame (code : Bytecode.program_code) : Bytecode.fn_code =
  {
    Bytecode.fc_name = "<statics>";
    fc_param_layout = [||];
    fc_ret = Ast.T_unit;
    fc_ret_unit = true;
    fc_nslots = 0;
    fc_code = code.Bytecode.pc_statics_code;
  }

let run ~config (program : Ast.program) (info : Typecheck.info)
    (code : Bytecode.program_code) : Rt.run_result =
  let statics = Array.make (Array.length code.Bytecode.pc_statics) None in
  Rt.drive ~config ~program ~info
    ~init_statics:(fun st tid ->
      let c = make_vctx st code statics tid in
      ignore (run_code c (statics_frame code) ~lsp0:0 0))
    ~main_body:(fun st tid ->
      match code.Bytecode.pc_main with
      | Some idx ->
        let c = make_vctx st code statics tid in
        ignore (exec_call_list c idx [])
      | None -> invalid_arg "Machine: program has no main function")

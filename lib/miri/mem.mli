(** Byte-level simulated memory with provenance, borrow stacks and
    happens-before race metadata.

    Every allocation (heap block, stack slot of a local, global static) gets
    an absolute address range, a packed byte store, one borrow stack and
    per-8-byte race buckets. Pointer-typed values are stored as 8
    provenance-carrying fragments, so transmuting or byte-copying a pointer
    preserves (or deliberately destroys) provenance exactly as in Miri's
    model.

    Representation: allocation contents live in a packed [Bytes.t] payload
    plus an initialization bitmap and a sparse side table of pointer
    fragments, rather than one boxed variant per byte; the payload byte of a
    stored fragment is the corresponding address byte, so integer reads
    never consult the side table. Address resolution for wildcard pointers
    is a binary search over a base-sorted dynamic array of every allocation
    ever made (dead ones stay visible for use-after-free diagnostics). See
    DESIGN.md "Interpreter memory representation". *)

type alloc_kind = Heap | Stack | Global

type byte =
  | B_uninit
  | B_int of int                               (** 0..255 *)
  | B_frag of Value.pointer * int              (** fragment [i] of a stored pointer *)

type store
(** Packed contents of one allocation: payload bytes, init bitmap, sparse
    pointer-fragment table, race buckets. Only this module reads or writes
    it; the [byte] view above is reconstructed on demand. *)

type allocation = {
  id : int;
  base : int;
  size : int;
  align : int;
  kind : alloc_kind;
  mutable live : bool;
  store : store;
  borrows : Borrow.t;
  base_tag : int;
  mutable exposed : bool;  (** some pointer to this allocation was cast to an integer *)
}

type access_error =
  | Dead of string         (** use of a deallocated or out-of-scope allocation *)
  | Oob of string          (** access outside the allocation bounds *)
  | No_alloc of string     (** address belongs to no allocation (incl. null) *)
  | Misaligned of string
  | Borrow_bad of Borrow.violation
  | Race of string
  | Not_exposed of string  (** wildcard pointer into a never-exposed allocation *)

type t

val create : unit -> t

val set_racing : t -> unit
(** Latch on race-conflict checking. Until this is called (the interpreter
    calls it when a second thread is spawned), accesses record race-bucket
    epochs — later diagnostics print whole bucket clocks — but skip the
    conflict checks: a single thread cannot race, and any later thread
    inherits a clock dominating every pre-spawn access, so no skipped check
    could have fired. *)

val allocate : t -> size:int -> align:int -> kind:alloc_kind -> allocation
(** Fresh live allocation; [align] must be a positive power of two. *)

val deallocate : t -> allocation -> unit
(** Mark dead and drop the allocation's race metadata (a dead allocation can
    never pass the access checks again, so no live clock can reference it).
    The address range is never reused, so dangling accesses are reliably
    detected. *)

val find_alloc : t -> int -> allocation option
(** Allocation by id (dead or alive). *)

val alloc_containing : t -> int -> allocation option
(** Live-or-dead allocation whose range contains the address (O(log n)
    binary search; a zero-size allocation claims one byte). *)

val live_heap_allocations : t -> allocation list
(** For the leak check at program exit; newest allocation first. *)

val check_access :
  t ->
  ptr:Value.pointer ->
  len:int ->
  align:int ->
  write:bool ->
  tid:int ->
  clock:Vclock.t ->
  atomic:bool ->
  (allocation * int * (int * Borrow.perm) list, access_error) result
(** Validate an access of [len] bytes at [ptr] and perform the borrow-stack
    transition and race-metadata update. Returns the allocation, the offset
    within it, and the borrow-stack items the access invalidated (for the
    event trace). A zero-length access only checks provenance. *)

val sync_clock_of : t -> allocation -> int -> Vclock.t
(** Release clock of the bucket containing [offset] (acquire loads merge it
    into the reading thread's clock). *)

val read_bytes : allocation -> offset:int -> len:int -> byte array
(** Byte view of a range, reconstructed from the packed store (tests and
    debugging; the interpreter reads via [read_value]). *)

val write_bytes : allocation -> offset:int -> byte array -> unit
(** Store a byte-array image (tests and debugging; the interpreter writes
    via [write_value]). *)

val expose : t -> Value.pointer -> unit
(** Record that the pointed-to allocation had its address observed as an
    integer (enables later wildcard access). *)

val retag :
  t -> ptr:Value.pointer -> perm:Borrow.perm ->
  (Value.pointer * (int * Borrow.perm) list, access_error) result
(** Derive a new tagged pointer from [ptr] (reference creation / ref-to-raw
    cast), also returning the borrow-stack items the implied access popped.
    Pointers without provenance retag from the base item. *)

(* -- typed encoding ------------------------------------------------- *)

val encode :
  Minirust.Ast.program -> fn_addr:(string -> Value.pointer) -> Minirust.Ast.ty ->
  Value.t -> byte array
(** Serialize a value at a type into a byte array. [fn_addr] maps a named
    function to its function-table pointer. Used by transmute (which works
    on detached byte images) and tests; typed memory writes go through
    [write_value]. *)

val decode :
  Minirust.Ast.program -> Minirust.Ast.ty -> byte array -> (Value.t, string) result
(** Deserialize bytes at a type; [Error msg] is a validity violation
    (uninitialized read, invalid bool, null reference...). Function-pointer
    bytes decode to a [V_ptr] carrying the *claimed* type; the machine checks
    claimed-vs-actual signatures at call time. *)

val read_value :
  Minirust.Ast.program -> allocation -> offset:int -> Minirust.Ast.ty ->
  (Value.t, string) result
(** Decode a typed value straight from the packed store — semantically
    identical to [decode] over [read_bytes], without materializing the byte
    array. Error strings match [decode] exactly. *)

val write_value :
  Minirust.Ast.program -> fn_addr:(string -> Value.pointer) -> allocation ->
  offset:int -> Minirust.Ast.ty -> Value.t -> unit
(** Encode a typed value straight into the packed store — semantically
    identical to [write_bytes] of [encode], without the intermediate array.
    Aggregate padding/missing bytes become uninitialized, as [encode]'s
    all-uninit starting image guarantees. *)

type perm = Unique | Shared_rw | Shared_ro

type violation = {
  missing_tag : int;
  missing_perm : perm;
  write_through_ro : bool;
  detail : string;
}

type item = { tag : int; perm : perm }

type t = {
  mutable stack : item list;  (** head = top *)
  mutable created : (int * perm) list;
      (** every tag ever created on this stack, newest first, for violation
          classification. An assoc list, not a hashtable: stacks hold a
          handful of tags, lookups happen only on the UB (cold) path, and a
          fresh allocation — every stack slot of every local — must not pay
          for a table it almost never consults. *)
}

(* Domain-local so parallel campaign workers (lib/exec) never race on tag
   allocation; Machine.run resets it so tags — which appear in diagnostic
   text — are a deterministic function of the program under test, not of
   how many runs happened before. *)
let tag_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_tag () =
  let r = Domain.DLS.get tag_counter in
  incr r;
  !r

let reset_tags () = Domain.DLS.get tag_counter := 0

let create ~base_tag =
  { stack = [ { tag = base_tag; perm = Unique } ];
    created = [ (base_tag, Unique) ] }

let perm_name = function
  | Unique -> "Unique"
  | Shared_rw -> "SharedRW"
  | Shared_ro -> "SharedRO"

let find_index t tag =
  let rec go i = function
    | [] -> None
    | item :: rest -> if item.tag = tag then Some (i, item) else go (i + 1) rest
  in
  go 0 t.stack

let missing t tag =
  match List.assoc_opt tag t.created with
  | Some perm ->
    {
      missing_tag = tag;
      missing_perm = perm;
      write_through_ro = false;
      detail =
        Printf.sprintf "tag %d (%s) is no longer on the borrow stack" tag
          (perm_name perm);
    }
  | None ->
    (* The tag never existed on this stack: the pointer was forged or carried
       over from another allocation. Calling it a popped Unique borrow (the
       old default) misdescribes the failure. *)
    {
      missing_tag = tag;
      missing_perm = Unique;
      write_through_ro = false;
      detail =
        Printf.sprintf "tag %d is unknown to this allocation's borrow stack" tag;
    }

(* Keep only items at or below position [idx], except that a read access
   keeps non-Unique items above (reads only invalidate unique borrows).
   Returns the popped items, top-first. *)
let truncate_for_access t idx ~write =
  let popped = ref [] in
  let rec go i = function
    | [] -> []
    | item :: rest ->
      if i >= idx then item :: rest
      else if write || item.perm = Unique then begin
        popped := item :: !popped;
        go (i + 1) rest
      end
      else item :: go (i + 1) rest
  in
  t.stack <- go 0 t.stack;
  List.rev_map (fun item -> (item.tag, item.perm)) !popped

let access t ~tag ~write =
  match tag with
  | None -> Ok []  (* wildcard: bounds/expose checks happen in the memory layer *)
  | Some tag when
      (match t.stack with
       | top :: _ -> top.tag = tag && not (write && top.perm = Shared_ro)
       | [] -> false) ->
    (* hot path: access through the innermost borrow pops nothing *)
    Ok []
  | Some tag -> (
    match find_index t tag with
    | None -> Error (missing t tag)
    | Some (idx, item) ->
      if write && item.perm = Shared_ro then
        Error
          {
            missing_tag = tag;
            missing_perm = Shared_ro;
            write_through_ro = true;
            detail = Printf.sprintf "write through shared read-only tag %d" tag;
          }
      else Ok (truncate_for_access t idx ~write))

let retag t ~parent perm =
  let parent_tag =
    match parent with
    | Some tag -> Some tag
    | None -> (
      (* wildcard parent: derive from the bottom (base) item *)
      match List.rev t.stack with
      | [] -> None
      | base :: _ -> Some base.tag)
  in
  match parent_tag with
  | None ->
    Error
      {
        missing_tag = -1;
        missing_perm = Unique;
        write_through_ro = false;
        detail = "retag from an empty borrow stack";
      }
  | Some ptag -> (
    let write = match perm with Unique | Shared_rw -> true | Shared_ro -> false in
    match access t ~tag:(Some ptag) ~write with
    | Error v -> Error v
    | Ok popped ->
      let tag = fresh_tag () in
      t.created <- (tag, perm) :: t.created;
      t.stack <- { tag; perm } :: t.stack;
      Ok (tag, popped))

let perm_of_tag t tag =
  Option.map (fun (_, item) -> item.perm) (find_index t tag)

let items t = List.map (fun item -> (item.tag, item.perm)) t.stack

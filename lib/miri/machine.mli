(** The UB-detecting abstract machine — this repo's stand-in for Miri.

    [run] executes a (well-typed) MiniRust program under the full dynamic
    discipline: byte-level memory with provenance, stacked borrows, alignment
    and validity checks, allocation tracking (double free, layout mismatch,
    leaks), function-pointer signature checks, and vector-clock data-race
    detection over cooperatively scheduled threads (OCaml 5 effects).

    Two modes mirror how the paper uses Miri:
    - [Stop_first] (Miri's behaviour): execution aborts at the first UB.
    - [Collect n]: each UB is recorded, the failing operation is given a
      defined recovery result, and execution continues (up to [n]
      diagnostics). The paper's rollback analysis needs per-iteration error
      *counts* (its sequences N = \{n_0, n_1, ...\}); this mode produces them.

    Panics (failed asserts, arithmetic overflow, out-of-bounds checked
    indexing, explicit [panic]) are *defined* behaviour: they terminate the
    program with [Panicked] and are not UB diagnostics. The dataset's
    "panic"-category cases are judged on outcome, not on diags. *)

type mode = Stop_first | Collect of int

(** Which execution engine interprets the program. [Bytecode] (the default)
    lowers the typechecked AST to a flat pre-resolved instruction array and
    runs it on an allocation-free step loop; [Tree_walk] is the original AST
    evaluator, kept as a differential-testing escape hatch (CLI
    [--tree-walk]). Both engines share every semantic judgment, so their
    results — diagnostics, outputs, step counts — are byte-identical. *)
type engine = Bytecode | Tree_walk

type config = {
  mode : mode;
  seed : int;            (** thread-scheduler seed *)
  max_steps : int;       (** statement budget before [Step_limit] *)
  inputs : int64 array;  (** values returned by [input(i)] *)
  trace : bool;          (** record allocation/retag/invalidation events *)
  max_allocs : int;      (** allocation-count fuel before [Resource_limit] *)
  max_alloc_bytes : int; (** cumulative allocated-byte fuel *)
  engine : engine;       (** bytecode VM (default) or tree-walker *)
}

val default_config : config
(** Allocation fuel defaults are generous (4M allocations, 64 MiB): no
    legitimate corpus program approaches them, so they only ever convert a
    pathological repaired candidate (an allocation bomb) into a diagnosed
    verdict instead of an effectively hung verification. *)

type outcome =
  | Finished
  | Panicked of string
  | Ub of Diag.t         (** fatal diagnostic ([Stop_first], or collect overflow) *)
  | Step_limit
  | Resource_limit of string  (** allocation fuel exhausted; message says which cap *)

type run_result = {
  outcome : outcome;
  output : string list;  (** chronological [print] trace *)
  diags : Diag.t list;   (** all recorded diagnostics, chronological *)
  steps : int;
  error_count : int;     (** |diags| + 1 if panicked or resource-limited — the paper's n_i *)
  events : string list;
      (** chronological borrow/allocation event trace — Miri's pointer-tag
          tracking equivalent; empty unless [config.trace] *)
}

val run : ?config:config -> Minirust.Ast.program -> Minirust.Typecheck.info -> run_result
(** Execute [main]. The program must have passed [Typecheck.check] (whose
    [info] is required here); running an ill-typed program is a programming
    error and may raise [Invalid_argument]. With [config.engine = Bytecode]
    the program is first lowered (under an Obs trace span named ["lower"]),
    then executed by the VM. *)

type lowered
(** A program lowered to bytecode, reusable across runs. *)

val lower : Minirust.Ast.program -> Minirust.Typecheck.info -> lowered
(** Compile to bytecode without running. Callers that profile phases wrap
    this in their own ["lower"] span and then time {!run_lowered}
    separately, so the interp span covers only VM execution. *)

val run_lowered :
  ?config:config -> Minirust.Ast.program -> Minirust.Typecheck.info -> lowered ->
  run_result
(** Execute pre-lowered bytecode on the VM (ignores [config.engine]). *)

type analysis = Compile_error of string | Ran of run_result

val analyze : ?config:config -> Minirust.Ast.program -> analysis
(** Typecheck then run: the one-call interface the repair pipeline uses. *)

val is_clean : run_result -> bool
(** No UB and no panic: the program "passes Miri". *)

val first_ub : run_result -> Diag.t option

(** {2 Verification memo-cache}

    Oracle candidate scoring re-analyzes structurally identical programs
    over and over (every candidate is judged against the same reference on
    the same probes, and rollback re-checks restored snapshots). The cache
    memoizes an {e id-free} digest of an analysis keyed on the pretty-printed
    program plus the full machine configuration (mode, scheduler seed, step
    budget, probe inputs), so a hit is valid for any parse of the same
    source. Hit/miss counters feed the bench harness's perf report.

    The cache is intentionally transparent: it stores only behaviour that is
    independent of node ids and borrow tags, so cached and uncached runs
    produce byte-identical results. It is not thread-safe; give each
    campaign session its own instance (lib/exec does). *)

type summary = {
  sm_compile_error : bool;
  sm_clean : bool;             (** no UB, no panic *)
  sm_panic : string option;
  sm_output : string list;     (** chronological [print] trace *)
  sm_ub_count : int;           (** UB diagnostics recorded *)
  sm_error_count : int;        (** the paper's n_i; type-error count if ill-typed *)
  sm_resource : string option; (** set when the run blew an allocation budget *)
}

val summarize : analysis -> summary

module Cache : sig
  type t

  type stats = { hits : int; misses : int }

  val create : ?enabled:bool -> unit -> t
  (** [enabled:false] makes a pass-through cache: every lookup recomputes
      and no entry is stored (for A/B-testing cache transparency). *)

  val enabled : t -> bool
  val stats : t -> stats
  val hit_rate : t -> float
  val reset_stats : t -> unit

  val record_hit : t -> unit
  (** Credit a hit from an external memo layer (e.g. the pipeline's
      canonical-program run memo) so {!hit_rate} covers all verification
      caching. *)

  val record_miss : t -> unit
  val clear : t -> unit

  val memo : t -> key:string -> (unit -> summary) -> summary
  (** Generic memoized lookup; used by [Dataset.Semantic] to cache
      reference observations under case-name keys (skipping even the
      reference re-parse on a hit). *)
end

val analyze_summary :
  ?cache:Cache.t -> ?fingerprint:string -> ?config:config ->
  Minirust.Ast.program -> summary
(** [analyze] reduced to its id-free digest, memoized when [cache] is given.
    [fingerprint] overrides the pretty-printed-program cache key component
    when the caller already computed it. *)

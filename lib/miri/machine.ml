(* The UB-detecting abstract machine.

   Since the bytecode lowering, this module is the public face over two
   engines sharing the [Rt] substrate:
   - [Vm] executes flat pre-resolved bytecode ([Minirust.Bytecode], lowered
     by [Minirust.Compile]) — the default, allocation-free per step;
   - the tree-walking evaluator below, kept behind [config.engine =
     Tree_walk] as a differential-testing escape hatch.

   All semantics (typed access, arithmetic, diagnostics, scheduling) live in
   [Rt]; the walker here only decides evaluation order, which the compiler
   mirrors instruction-for-instruction, so the engines stay byte-identical. *)

open Minirust

type mode = Rt.mode = Stop_first | Collect of int
type engine = Rt.engine = Bytecode | Tree_walk

type config = Rt.config = {
  mode : mode;
  seed : int;
  max_steps : int;
  inputs : int64 array;
  trace : bool;
  max_allocs : int;
  max_alloc_bytes : int;
  engine : engine;
}

let default_config = Rt.default_config

type outcome = Rt.outcome =
  | Finished
  | Panicked of string
  | Ub of Diag.t
  | Step_limit
  | Resource_limit of string

type run_result = Rt.run_result = {
  outcome : outcome;
  output : string list;
  diags : Diag.t list;
  steps : int;
  error_count : int;
  events : string list;
}

(* ------------------------------------------------------------------ *)
(* Tree-walking evaluator *)

(* Execution context of one thread: the stack of lexical scopes of the
   function currently executing. Each local is its own stack allocation. *)
type local = { l_alloc : Mem.allocation; l_ty : Ast.ty }

type scope = (string * local) list ref

(* [locals] is the flat name->local view of [scopes], exploiting
   [Hashtbl.add]'s shadowing semantics: an inner binding is added after (and
   removed before) an outer one of the same name, so [Hashtbl.find_opt]
   always sees the innermost binding. The scope lists survive solely to
   drive deallocation and table cleanup at scope exit. *)
type ctx = {
  ec : Rt.ectx;
  mutable scopes : scope list;
  locals : (string, local) Hashtbl.t;
}

let make_ctx st tid =
  { ec = Rt.make_ectx st tid; scopes = []; locals = Hashtbl.create 16 }

let bind_local ctx scope name local =
  scope := (name, local) :: !scope;
  Hashtbl.add ctx.locals name local

let close_scope ctx scope =
  (* newest-first, so a same-name shadow's Hashtbl entries pop in order *)
  List.iter
    (fun (name, l) ->
      Hashtbl.remove ctx.locals name;
      Mem.deallocate ctx.ec.Rt.st.Rt.mem l.l_alloc)
    !scope

let lookup_local ctx name : local option = Hashtbl.find_opt ctx.locals name

let rec eval_expr (ctx : ctx) (e : Ast.expr) : Value.t =
  match e.Ast.e with
  | Ast.E_unit -> Value.V_unit
  | Ast.E_bool b -> Value.V_bool b
  | Ast.E_int (n, w) -> Value.V_int (n, w)
  | Ast.E_place p -> eval_place_read ctx p
  | Ast.E_unop (op, a) -> Rt.apply_unop ctx.ec op (eval_expr ctx a)
  | Ast.E_binop (op, a, b) -> eval_binop ctx op a b
  | Ast.E_tuple es -> Value.V_tuple (List.map (eval_expr ctx) es)
  | Ast.E_array es -> Value.V_array (List.map (eval_expr ctx) es)
  | Ast.E_repeat (x, n) ->
    let v = eval_expr ctx x in
    Value.V_array (List.init n (fun _ -> v))
  | Ast.E_ref (m, p) ->
    let ptr, ty = eval_place ctx p in
    let perm = match m with Ast.Mut -> Borrow.Unique | Ast.Imm -> Borrow.Shared_ro in
    let retagged = Rt.retag_pointer ctx.ec ptr perm in
    Value.V_ptr (retagged, Ast.T_ref (m, ty))
  | Ast.E_raw_of (m, p) ->
    let ptr, ty = eval_place ctx p in
    let perm = match m with Ast.Mut -> Borrow.Shared_rw | Ast.Imm -> Borrow.Shared_ro in
    let retagged = Rt.retag_pointer ctx.ec ptr perm in
    Value.V_ptr (retagged, Ast.T_raw (m, ty))
  | Ast.E_call (name, args) -> eval_call ctx name args
  | Ast.E_call_ptr (callee, args) ->
    let v = eval_expr ctx callee in
    let arg_vals = List.map (eval_expr ctx) args in
    call_value ctx v arg_vals
  | Ast.E_cast (a, target) -> Rt.apply_cast ctx.ec (eval_expr ctx a) target
  | Ast.E_transmute (target, a) ->
    let v = eval_expr ctx a in
    Rt.apply_transmute ctx.ec v target
  | Ast.E_offset (p, n) ->
    let vp = eval_expr ctx p in
    let vn = Rt.value_as_int ctx.ec (eval_expr ctx n) in
    Rt.apply_offset ctx.ec vp vn
  | Ast.E_alloc (size_e, align_e) ->
    let size = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx size_e)) in
    let align = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx align_e)) in
    Rt.apply_alloc ctx.ec ~size ~align
  | Ast.E_len a -> (
    match a.Ast.e with
    | Ast.E_place p ->
      let _, ty = eval_place ctx p in
      Rt.len_of_place_ty ctx.ec ty
    | _ -> Rt.len_of_value ctx.ec (eval_expr ctx a))
  | Ast.E_input i ->
    let idx = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx i)) in
    Rt.input_value ctx.ec.Rt.st idx
  | Ast.E_atomic_load p -> Rt.atomic_load_v ctx.ec (eval_expr ctx p)
  | Ast.E_atomic_add (p, n) ->
    let pv = eval_expr ctx p in
    let delta = Rt.value_as_int ctx.ec (eval_expr ctx n) in
    Rt.atomic_add_v ctx.ec pv delta

and eval_binop ctx op a b =
  match op with
  | Ast.And ->
    (* short-circuit *)
    let va = eval_expr ctx a in
    if Option.value (Value.as_bool va) ~default:false then eval_expr ctx b
    else Value.V_bool false
  | Ast.Or ->
    let va = eval_expr ctx a in
    if Option.value (Value.as_bool va) ~default:false then Value.V_bool true
    else eval_expr ctx b
  | _ ->
    let va = eval_expr ctx a in
    let vb = eval_expr ctx b in
    Rt.apply_binop ctx.ec op va vb

and eval_call ctx name args =
  (* name resolution: local fn-pointer first, then declared function *)
  match lookup_local ctx name with
  | Some local ->
    let callee =
      Rt.typed_read ctx.ec (Rt.base_pointer local.l_alloc) local.l_ty ~atomic:false
    in
    let arg_vals = List.map (eval_expr ctx) args in
    call_value ctx callee arg_vals
  | None -> (
    match Ast.lookup_fn ctx.ec.Rt.st.Rt.program name with
    | Some f ->
      let arg_vals = List.map (eval_expr ctx) args in
      call_fn ctx f arg_vals
    | None -> invalid_arg ("Machine: call to unknown function " ^ name))

and call_value ctx (callee : Value.t) (args : Value.t list) : Value.t =
  match Rt.resolve_callee ctx.ec callee with
  | Rt.Call_fn idx -> call_fn ctx ctx.ec.Rt.st.Rt.fn_table.(idx) args
  | Rt.Call_recover v -> v

and call_fn ctx (f : Ast.fn_decl) (args : Value.t list) : Value.t =
  let st = ctx.ec.Rt.st in
  if List.length args <> List.length f.Ast.params then
    Rt.call_arity_error ctx.ec f.Ast.fname ~got:(List.length args)
      ~want:(List.length f.Ast.params) f.Ast.ret
  else begin
    let callee_ctx = make_ctx st ctx.ec.Rt.tid in
    let scope : scope = ref [] in
    callee_ctx.scopes <- [ scope ];
    List.iter2
      (fun (pname, pty) v ->
        let size = Layout.size_of st.Rt.program pty in
        let align = max 1 (Layout.align_of st.Rt.program pty) in
        let a = Rt.tracked_allocate st ~size ~align ~kind:Mem.Stack in
        Rt.typed_write callee_ctx.ec (Rt.base_pointer a) pty v ~atomic:false;
        bind_local callee_ctx scope pname { l_alloc = a; l_ty = pty })
      f.Ast.params args;
    let finish () =
      (* leaving the function kills its parameter slots *)
      close_scope callee_ctx scope
    in
    match exec_block callee_ctx f.Ast.body with
    | () ->
      finish ();
      if Ast.equal_ty f.Ast.ret Ast.T_unit then Value.V_unit
      else Rt.missing_return_value ctx.ec f.Ast.fname f.Ast.ret
    | exception Rt.Return_exc v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Places *)

and eval_place (ctx : ctx) (p : Ast.place) : Value.pointer * Ast.ty =
  match p with
  | Ast.P_var name -> (
    match lookup_local ctx name with
    | Some l -> (Rt.base_pointer l.l_alloc, l.l_ty)
    | None -> (
      match Hashtbl.find_opt ctx.ec.Rt.st.Rt.statics_tbl name with
      | Some (a, ty) -> (Rt.base_pointer a, ty)
      | None -> invalid_arg ("Machine: unknown variable " ^ name)))
  | Ast.P_deref e -> Rt.place_deref ctx.ec (eval_expr ctx e)
  | Ast.P_index (base, idx) ->
    let bptr, bty = eval_place ctx base in
    let i = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx idx)) in
    Rt.place_index ctx.ec bptr bty i
  | Ast.P_index_unchecked (base, idx) ->
    let bptr, bty = eval_place ctx base in
    let i = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx idx)) in
    Rt.place_index_unchecked ctx.ec bptr bty i
  | Ast.P_field (base, i) ->
    let bptr, bty = eval_place ctx base in
    Rt.place_field ctx.ec bptr bty i
  | Ast.P_union_field (base, fld) ->
    let bptr, bty = eval_place ctx base in
    Rt.place_union_field ctx.ec bptr bty fld

and eval_place_read ctx p : Value.t =
  match p with
  | Ast.P_var name when lookup_local ctx name = None
                        && not (Hashtbl.mem ctx.ec.Rt.st.Rt.statics_tbl name) -> (
    (* a bare function name used as a value *)
    match Ast.lookup_fn ctx.ec.Rt.st.Rt.program name with
    | Some f -> Value.V_fn (name, Rt.fn_sig f)
    | None -> invalid_arg ("Machine: unknown variable " ^ name))
  | _ ->
    let ptr, ty = eval_place ctx p in
    Rt.typed_read ctx.ec ptr ty ~atomic:false

(* ------------------------------------------------------------------ *)
(* Statements *)

and exec_stmt (ctx : ctx) (stmt : Ast.stmt) : unit =
  let st = ctx.ec.Rt.st in
  st.Rt.cur_stmt <- stmt.Ast.sid;
  Rt.yield_point st;
  match stmt.Ast.s with
  | Ast.S_let (name, annot, e) ->
    let v = eval_expr ctx e in
    let ty =
      match annot with
      | Some t -> t
      | None -> (
        match Typecheck.ty_of_expr st.Rt.info e with
        | Some t -> t
        | None -> Rt.ty_of_value st v)
    in
    let size = Layout.size_of st.Rt.program ty in
    let align = max 1 (Layout.align_of st.Rt.program ty) in
    let a = Rt.tracked_allocate st ~size ~align ~kind:Mem.Stack in
    Rt.typed_write ctx.ec (Rt.base_pointer a) ty v ~atomic:false;
    (match ctx.scopes with
    | scope :: _ -> bind_local ctx scope name { l_alloc = a; l_ty = ty }
    | [] -> invalid_arg "Machine: let outside any scope")
  | Ast.S_assign (p, e) ->
    let v = eval_expr ctx e in
    let ptr, ty = eval_place ctx p in
    Rt.typed_write ctx.ec ptr ty v ~atomic:false
  | Ast.S_expr e -> ignore (eval_expr ctx e)
  | Ast.S_if (c, t, f) ->
    let cond = Option.value (Value.as_bool (eval_expr ctx c)) ~default:false in
    if cond then exec_block ctx t else exec_block ctx f
  | Ast.S_while (c, body) ->
    let rec loop () =
      Rt.yield_point st;
      let cond = Option.value (Value.as_bool (eval_expr ctx c)) ~default:false in
      if cond then begin
        exec_block ctx body;
        loop ()
      end
    in
    loop ()
  | Ast.S_block b | Ast.S_unsafe b -> exec_block ctx b
  | Ast.S_assert (e, msg) ->
    let ok = Option.value (Value.as_bool (eval_expr ctx e)) ~default:false in
    if not ok then raise (Rt.Panic_exc ("assertion failed: " ^ msg))
  | Ast.S_panic msg -> raise (Rt.Panic_exc msg)
  | Ast.S_return None -> raise (Rt.Return_exc Value.V_unit)
  | Ast.S_return (Some e) -> raise (Rt.Return_exc (eval_expr ctx e))
  | Ast.S_print e ->
    let v = eval_expr ctx e in
    st.Rt.outputs <- Value.to_display v :: st.Rt.outputs
  | Ast.S_dealloc (pe, size_e, align_e) ->
    let pv = eval_expr ctx pe in
    let size = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx size_e)) in
    let align = Int64.to_int (Rt.value_as_int ctx.ec (eval_expr ctx align_e)) in
    Rt.dealloc_v ctx.ec pv ~size ~align
  | Ast.S_spawn (handle, fname, args) -> exec_spawn ctx handle fname args
  | Ast.S_join e -> Rt.join_v ctx.ec (eval_expr ctx e)
  | Ast.S_atomic_store (pe, ve) ->
    let pv = eval_expr ctx pe in
    let v = eval_expr ctx ve in
    Rt.atomic_store_v ctx.ec pv v

and exec_spawn ctx handle fname args =
  let st = ctx.ec.Rt.st in
  match Ast.lookup_fn st.Rt.program fname with
  | None -> invalid_arg ("Machine: spawn of unknown function " ^ fname)
  | Some f ->
    let arg_vals = List.map (eval_expr ctx) args in
    let body tid =
      let child_ctx = make_ctx st tid in
      ignore (call_fn child_ctx f arg_vals)
    in
    let tid = Effect.perform (Rt.Spawn_eff body) in
    (* bind the handle as a local *)
    let ty = Ast.T_handle in
    let a = Rt.tracked_allocate st ~size:8 ~align:8 ~kind:Mem.Stack in
    Rt.typed_write ctx.ec (Rt.base_pointer a) ty (Value.V_handle tid) ~atomic:false;
    (match ctx.scopes with
    | scope :: _ -> bind_local ctx scope handle { l_alloc = a; l_ty = ty }
    | [] -> invalid_arg "Machine: spawn outside any scope")

and exec_block (ctx : ctx) (b : Ast.block) : unit =
  let scope : scope = ref [] in
  ctx.scopes <- scope :: ctx.scopes;
  let cleanup () =
    (* locals die at scope exit; pointers to them become dangling *)
    close_scope ctx scope;
    ctx.scopes <- (match ctx.scopes with [] -> [] | _ :: rest -> rest)
  in
  match List.iter (exec_stmt ctx) b with
  | () -> cleanup ()
  | exception e ->
    cleanup ();
    raise e

(* ------------------------------------------------------------------ *)
(* Engine dispatch *)

let run_tree ~config (program : Ast.program) (info : Typecheck.info) : run_result =
  Rt.drive ~config ~program ~info
    ~init_statics:(fun st tid ->
      let ctx = make_ctx st tid in
      ctx.scopes <- [ ref [] ];
      List.iter
        (fun (s : Ast.static_decl) ->
          let ty = s.Ast.sty in
          let size = Layout.size_of program ty in
          let align = max 1 (Layout.align_of program ty) in
          let a = Rt.tracked_allocate st ~size ~align ~kind:Mem.Global in
          Hashtbl.replace st.Rt.statics_tbl s.Ast.sname (a, ty);
          let v = eval_expr ctx s.Ast.sinit in
          Rt.typed_write ctx.ec (Rt.base_pointer a) ty v ~atomic:false)
        program.Ast.statics)
    ~main_body:(fun st tid ->
      let ctx = make_ctx st tid in
      match Ast.lookup_fn program "main" with
      | Some f -> ignore (call_fn ctx f [])
      | None -> invalid_arg "Machine: program has no main function")

type lowered = Bytecode.program_code

let lower (program : Ast.program) (info : Typecheck.info) : lowered =
  Compile.lower program info

let run_lowered ?(config = default_config) (program : Ast.program)
    (info : Typecheck.info) (code : lowered) : run_result =
  Vm.run ~config program info code

let run ?(config = default_config) (program : Ast.program) (info : Typecheck.info) :
    run_result =
  match config.engine with
  | Tree_walk -> run_tree ~config program info
  | Bytecode ->
    (* lowering is its own trace phase so profiles separate compile cost
       from execution cost *)
    let code = Obs.Trace.in_span "lower" (fun () -> Compile.lower program info) in
    Vm.run ~config program info code

type analysis = Compile_error of string | Ran of run_result

let analyze ?(config = default_config) program =
  match Typecheck.check program with
  | Error errors -> Compile_error (Typecheck.errors_to_string errors)
  | Ok info -> Ran (run ~config program info)

let is_clean r = r.outcome = Finished && r.diags = []

let first_ub (r : run_result) = match r.diags with [] -> None | d :: _ -> Some d

(* ------------------------------------------------------------------ *)
(* Verification memo-cache *)

(* An id-free digest of an analysis: everything the oracle scoring needs
   (outcome class, print trace, error counts) and nothing that embeds node
   ids or borrow tags, so a digest computed for one parse of a program is
   valid for any structurally identical parse. *)
type summary = {
  sm_compile_error : bool;
  sm_clean : bool;
  sm_panic : string option;
  sm_output : string list;
  sm_ub_count : int;      (* UB diagnostics recorded *)
  sm_error_count : int;   (* the paper's n_i; type-error count if ill-typed *)
  sm_resource : string option;  (* the run blew an allocation budget *)
}

let summarize = function
  | Compile_error msg ->
    { sm_compile_error = true; sm_clean = false; sm_panic = None; sm_output = [];
      sm_ub_count = 0;
      sm_error_count =
        (* one reported line per type error *)
        max 1 (List.length (String.split_on_char '\n' (String.trim msg)));
      sm_resource = None }
  | Ran r ->
    { sm_compile_error = false;
      sm_clean = is_clean r;
      sm_panic = (match r.outcome with Panicked m -> Some m | _ -> None);
      sm_output = r.output;
      sm_ub_count = List.length r.diags;
      sm_error_count = r.error_count;
      sm_resource = (match r.outcome with Resource_limit m -> Some m | _ -> None) }

module Cache = struct
  type stats = { hits : int; misses : int }

  type t = {
    table : (string, summary) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    enabled : bool;
  }

  let create ?(enabled = true) () =
    { table = Hashtbl.create 256; hits = 0; misses = 0; enabled }

  let enabled t = t.enabled
  let stats t = { hits = t.hits; misses = t.misses }

  let hit_rate t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0

  (* external memo layers (e.g. the pipeline's canonical-program run memo)
     report into the same counters so hit_rate covers all verification
     caching *)
  let record_hit t = t.hits <- t.hits + 1
  let record_miss t = t.misses <- t.misses + 1

  let clear t =
    Hashtbl.reset t.table;
    reset_stats t

  let memo t ~key compute =
    if not t.enabled then compute ()
    else
      match Hashtbl.find_opt t.table key with
      | Some s ->
        t.hits <- t.hits + 1;
        s
      | None ->
        t.misses <- t.misses + 1;
        let s = compute () in
        Hashtbl.add t.table key s;
        s
end

let config_key config =
  Printf.sprintf "%s|%d|%d|%b|%d|%d|%s|%s"
    (match config.mode with Stop_first -> "S" | Collect n -> "C" ^ string_of_int n)
    config.seed config.max_steps config.trace
    config.max_allocs config.max_alloc_bytes
    (match config.engine with Bytecode -> "B" | Tree_walk -> "T")
    (String.concat "," (Array.to_list (Array.map Int64.to_string config.inputs)))

let analyze_summary ?cache ?fingerprint ?(config = default_config) program =
  (* id-neutral so a cache hit (which skips compute entirely) and every
     uncached path consume identical node-id space — labels printed after a
     verification can not depend on whether it was cached *)
  let compute () =
    Minirust.Ast.id_preserving @@ fun () ->
    match Typecheck.check program with
    | Error errors ->
      { sm_compile_error = true; sm_clean = false; sm_panic = None; sm_output = [];
        sm_ub_count = 0; sm_error_count = List.length errors; sm_resource = None }
    | Ok info -> summarize (Ran (run ~config program info))
  in
  match cache with
  | None -> compute ()
  | Some c when not (Cache.enabled c) -> compute ()
  | Some c ->
    let fp =
      match fingerprint with
      | Some fp -> fp
      | None -> Minirust.Pretty.program program
    in
    Cache.memo c ~key:(config_key config ^ "\n" ^ fp) compute

open Minirust

type mode = Stop_first | Collect of int

type config = {
  mode : mode;
  seed : int;
  max_steps : int;
  inputs : int64 array;
  trace : bool;  (* record allocation/retag/invalidation events *)
  max_allocs : int;       (* allocation-count fuel *)
  max_alloc_bytes : int;  (* cumulative allocated-byte fuel *)
}

let default_config =
  { mode = Stop_first; seed = 1; max_steps = 200_000; inputs = [||]; trace = false;
    (* generous enough that no legitimate corpus program comes near them;
       they exist to turn an allocation bomb into a diagnosis *)
    max_allocs = 4_000_000; max_alloc_bytes = 64 * 1024 * 1024 }

type outcome =
  | Finished
  | Panicked of string
  | Ub of Diag.t
  | Step_limit
  | Resource_limit of string  (* allocation fuel exhausted: diagnosed, not hung *)

type run_result = {
  outcome : outcome;
  output : string list;
  diags : Diag.t list;
  steps : int;
  error_count : int;
  events : string list;  (* chronological trace, empty unless [config.trace] *)
}

(* ------------------------------------------------------------------ *)
(* Machine state *)

type thread_status =
  | T_runnable
  | T_blocked_on of int
  | T_done
  | T_joined

type thread = { tid : int; mutable clock : Vclock.t; mutable status : thread_status }

type state = {
  config : config;
  program : Ast.program;
  info : Typecheck.info;
  mem : Mem.t;
  fn_table : Ast.fn_decl array;
  fn_index_tbl : (string, int) Hashtbl.t;  (* first index of each name *)
  statics_tbl : (string, Mem.allocation * Ast.ty) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable steps : int;
  mutable outputs : string list;  (* reversed *)
  mutable diags : Diag.t list;    (* reversed *)
  mutable events : string list;   (* reversed *)
  mutable stop : outcome option;  (* set when the run must end *)
  sched_rng : Rb_util.Rng.t;
  mutable cur_stmt : int;         (* node id of the statement being executed *)
  mutable allocs : int;           (* allocations performed so far *)
  mutable alloc_bytes : int;      (* cumulative bytes allocated *)
}

(* Execution context of one thread: the stack of lexical scopes of the
   function currently executing. Each local is its own stack allocation. *)
type local = { l_alloc : Mem.allocation; l_ty : Ast.ty }

type scope = (string * local) list ref

(* [locals] is the flat name->local view of [scopes], exploiting
   [Hashtbl.add]'s shadowing semantics: an inner binding is added after (and
   removed before) an outer one of the same name, so [Hashtbl.find_opt]
   always sees the innermost binding — what the old scope-list walk computed
   in O(depth). The scope lists survive solely to drive deallocation and
   table cleanup at scope exit. *)
type ctx = {
  st : state;
  tid : int;
  thread : thread;
      (** cached [threads] entry for [tid]: the record is created once per
          thread and only ever mutated, so every ctx of the thread can share
          it without a per-access table lookup *)
  mutable scopes : scope list;
  locals : (string, local) Hashtbl.t;
}

let make_ctx st tid =
  { st; tid; thread = Hashtbl.find st.threads tid; scopes = [];
    locals = Hashtbl.create 16 }

let bind_local ctx scope name local =
  scope := (name, local) :: !scope;
  Hashtbl.add ctx.locals name local

let close_scope ctx scope =
  (* newest-first, so a same-name shadow's Hashtbl entries pop in order *)
  List.iter
    (fun (name, l) ->
      Hashtbl.remove ctx.locals name;
      Mem.deallocate ctx.st.mem l.l_alloc)
    !scope

exception Panic_exc of string
exception Ub_fatal of Diag.t
exception Step_limit_exc
exception Resource_exc of string
exception Return_exc of Value.t

(* Every machine allocation funnels through here so the fuel caps are
   checked *before* memory is created: an allocation bomb fails cleanly
   instead of first materialising a huge block. *)
let tracked_allocate (st : state) ~size ~align ~kind =
  if st.allocs >= st.config.max_allocs then
    raise
      (Resource_exc
         (Printf.sprintf "allocation budget exhausted (%d allocations)"
            st.config.max_allocs));
  if st.alloc_bytes + size > st.config.max_alloc_bytes then
    raise
      (Resource_exc
         (Printf.sprintf
            "allocation-byte budget exhausted (%d bytes requested, cap %d)"
            (st.alloc_bytes + size) st.config.max_alloc_bytes));
  st.allocs <- st.allocs + 1;
  st.alloc_bytes <- st.alloc_bytes + size;
  Mem.allocate st.mem ~size ~align ~kind

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let report (ctx : ctx) (kind : Diag.ub_kind) (message : string) ~(recover : unit -> 'a) : 'a =
  let st = ctx.st in
  let d = Diag.make ~thread:ctx.tid ~stmt_hint:st.cur_stmt kind message in
  st.diags <- d :: st.diags;
  match st.config.mode with
  | Stop_first -> raise (Ub_fatal d)
  | Collect limit ->
    if List.length st.diags >= limit then raise (Ub_fatal d) else recover ()

let classify_access_error (err : Mem.access_error) : Diag.ub_kind * string =
  match err with
  | Mem.Dead msg | Mem.Oob msg | Mem.No_alloc msg -> (Diag.Dangling_pointer, msg)
  | Mem.Misaligned msg -> (Diag.Unaligned_pointer, msg)
  | Mem.Race msg -> (Diag.Data_race, msg)
  | Mem.Not_exposed msg -> (Diag.Provenance, msg)
  | Mem.Borrow_bad v ->
    let kind =
      if v.Borrow.write_through_ro then Diag.Both_borrow
      else
        match v.Borrow.missing_perm with
        | Borrow.Shared_ro -> Diag.Both_borrow
        | Borrow.Unique | Borrow.Shared_rw -> Diag.Stack_borrow
    in
    (kind, v.Borrow.detail)

let trace_event (st : state) fmt =
  (* test [trace] before formatting: with tracing off (benchmarks, campaign
     sweeps) the hot path must not pay for sprintf *)
  if st.config.trace then
    Printf.ksprintf (fun s -> st.events <- s :: st.events) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let perm_name = function
  | Borrow.Unique -> "Unique"
  | Borrow.Shared_rw -> "SharedRW"
  | Borrow.Shared_ro -> "SharedRO"

let trace_popped (st : state) what popped =
  if st.config.trace then
    List.iter
      (fun (tag, perm) ->
        trace_event st "%s invalidated tag %d (%s)" what tag (perm_name perm))
      popped

(* ------------------------------------------------------------------ *)
(* Function table *)

let fn_addr_base = 0x7F00_0000_0000

let fn_index st name = Hashtbl.find_opt st.fn_index_tbl name

let fn_pointer st name : Value.pointer =
  match fn_index st name with
  | Some idx -> { Value.prov = Value.P_fn idx; addr = fn_addr_base + (idx * 16); tag = None }
  | None -> invalid_arg ("Machine: unknown function " ^ name)

let fn_sig (f : Ast.fn_decl) = Ast.T_fn (List.map snd f.Ast.params, f.Ast.ret)

(* ------------------------------------------------------------------ *)
(* Locals and statics *)

let lookup_local ctx name : local option = Hashtbl.find_opt ctx.locals name

let thread_of ctx = ctx.thread

(* ------------------------------------------------------------------ *)
(* Typed memory access *)

let base_pointer (a : Mem.allocation) : Value.pointer =
  { Value.prov = Value.P_alloc a.Mem.id; addr = a.Mem.base; tag = Some a.Mem.base_tag }

let typed_read ctx (ptr : Value.pointer) (ty : Ast.ty) ~atomic : Value.t =
  let st = ctx.st in
  let len = Layout.size_of st.program ty in
  let align = Layout.align_of st.program ty in
  if len = 0 then Value.V_unit
  else begin
    let thread = thread_of ctx in
    match
      Mem.check_access st.mem ~ptr ~len ~align ~write:false ~tid:ctx.tid
        ~clock:thread.clock ~atomic
    with
    | Error err ->
      let kind, msg = classify_access_error err in
      report ctx kind msg ~recover:(fun () -> Value.zero st.program ty)
    | Ok (alloc, offset, popped) -> (
      if st.config.trace then
        trace_popped st (Printf.sprintf "read of alloc %d" alloc.Mem.id) popped;
      if atomic then begin
        (* acquire: merge the location's release clock into this thread *)
        let sync = Mem.sync_clock_of st.mem alloc offset in
        thread.clock <- Vclock.merge thread.clock sync
      end;
      match Mem.read_value st.program alloc ~offset ty with
      | Ok v -> v
      | Error msg ->
        report ctx Diag.Validity msg ~recover:(fun () -> Value.zero st.program ty))
  end

let typed_write ctx (ptr : Value.pointer) (ty : Ast.ty) (v : Value.t) ~atomic : unit =
  let st = ctx.st in
  let len = Layout.size_of st.program ty in
  let align = Layout.align_of st.program ty in
  if len = 0 then ()
  else begin
    let thread = thread_of ctx in
    match
      Mem.check_access st.mem ~ptr ~len ~align ~write:true ~tid:ctx.tid
        ~clock:thread.clock ~atomic
    with
    | Error err ->
      let kind, msg = classify_access_error err in
      report ctx kind msg ~recover:(fun () -> ())
    | Ok (alloc, offset, popped) ->
      if st.config.trace then
        trace_popped st (Printf.sprintf "write to alloc %d" alloc.Mem.id) popped;
      Mem.write_value st.program ~fn_addr:(fn_pointer st) alloc ~offset ty v;
      if atomic then
        (* release: later writes by this thread must not appear ordered
           before the release an acquirer synchronized with *)
        thread.clock <- Vclock.tick thread.clock ctx.tid
  end

(* ------------------------------------------------------------------ *)
(* Integer arithmetic with Rust overflow semantics (debug profile: panic) *)

let width_bits = function
  | Ast.I8 -> 8
  | Ast.I16 -> 16
  | Ast.I32 -> 32
  | Ast.I64 | Ast.Usize -> 64

let fits_width (n : int64) (w : Ast.int_width) =
  match w with
  | Ast.I64 -> true
  | Ast.Usize -> true (* 64-bit wrap handled by unsigned checks below *)
  | _ ->
    let bits = width_bits w in
    let lo = Int64.neg (Int64.shift_left 1L (bits - 1)) in
    let hi = Int64.sub (Int64.shift_left 1L (bits - 1)) 1L in
    Int64.compare n lo >= 0 && Int64.compare n hi <= 0

let truncate_to_width (n : int64) (w : Ast.int_width) =
  match w with
  | Ast.I64 | Ast.Usize -> n
  | _ ->
    let bits = width_bits w in
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left n shift) shift

let arith_panic op = raise (Panic_exc (Printf.sprintf "attempt to %s with overflow" op))

let eval_arith (op : Ast.binop) (a : int64) (b : int64) (w : Ast.int_width) : int64 =
  let unsigned = w = Ast.Usize in
  (* overflow is checked on the untruncated result; only then is the value
     narrowed to the width (at which point narrowing is the identity) *)
  let check name result =
    if unsigned then begin
      (* unsigned 64-bit: overflow iff result is "less" than an operand for
         add, or borrow for sub, detected via unsigned compare *)
      match op with
      | Ast.Add -> if Int64.unsigned_compare result a < 0 then arith_panic name else result
      | Ast.Sub -> if Int64.unsigned_compare a b < 0 then arith_panic name else result
      | Ast.Mul ->
        if (not (Int64.equal a 0L)) && not (Int64.equal (Int64.unsigned_div result a) b)
        then arith_panic name
        else result
      | _ -> result
    end
    else if fits_width result w then result
    else arith_panic name
  in
  match op with
  | Ast.Add ->
    let r = Int64.add a b in
    if (not unsigned) && w = Ast.I64 && Int64.compare a 0L > 0 && Int64.compare b 0L > 0
       && Int64.compare r 0L < 0
    then arith_panic "add"
    else if (not unsigned) && w = Ast.I64 && Int64.compare a 0L < 0
            && Int64.compare b 0L < 0 && Int64.compare r 0L >= 0
    then arith_panic "add"
    else truncate_to_width (check "add" r) w
  | Ast.Sub ->
    let r = Int64.sub a b in
    if (not unsigned) && w = Ast.I64 && Int64.compare b 0L < 0 && Int64.compare a 0L > 0
       && Int64.compare r 0L < 0
    then arith_panic "subtract"
    else if (not unsigned) && w = Ast.I64 && Int64.compare b 0L > 0
            && Int64.compare a 0L < 0 && Int64.compare r 0L > 0
    then arith_panic "subtract"
    else truncate_to_width (check "subtract" r) w
  | Ast.Mul ->
    let r = Int64.mul a b in
    if (not unsigned) && w = Ast.I64 && (not (Int64.equal a 0L))
       && not (Int64.equal (Int64.div r a) b)
    then arith_panic "multiply"
    else truncate_to_width (check "multiply" r) w
  | Ast.Div ->
    if Int64.equal b 0L then raise (Panic_exc "attempt to divide by zero")
    else if unsigned then Int64.unsigned_div a b
    else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then arith_panic "divide"
    else Int64.div a b
  | Ast.Rem ->
    if Int64.equal b 0L then
      raise (Panic_exc "attempt to calculate the remainder with a divisor of zero")
    else if unsigned then Int64.unsigned_rem a b
    else Int64.rem a b
  | Ast.Bit_and -> Int64.logand a b
  | Ast.Bit_or -> Int64.logor a b
  | Ast.Bit_xor -> Int64.logxor a b
  | Ast.Shl ->
    let bits = width_bits w in
    if Int64.compare b 0L < 0 || Int64.compare b (Int64.of_int bits) >= 0 then
      arith_panic "shift left"
    else truncate_to_width (Int64.shift_left a (Int64.to_int b)) w
  | Ast.Shr ->
    let bits = width_bits w in
    if Int64.compare b 0L < 0 || Int64.compare b (Int64.of_int bits) >= 0 then
      arith_panic "shift right"
    else if w = Ast.Usize then Int64.shift_right_logical a (Int64.to_int b)
    else truncate_to_width (Int64.shift_right a (Int64.to_int b)) w
  | Ast.And | Ast.Or | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    invalid_arg "Machine.eval_arith: not an arithmetic operator"

let compare_ints (w : Ast.int_width) a b =
  if w = Ast.Usize then Int64.unsigned_compare a b else Int64.compare a b

(* ------------------------------------------------------------------ *)
(* Effects for cooperative threading *)

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn_eff : (int -> unit) -> int Effect.t
  | Join_eff : int -> bool Effect.t
        (** resumes with [false] if the handle was invalid / already joined *)

let yield_point ctx =
  let st = ctx.st in
  st.steps <- st.steps + 1;
  if st.steps > st.config.max_steps then raise Step_limit_exc;
  if Hashtbl.length st.threads > 1 then Effect.perform Yield

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let value_as_int ctx (v : Value.t) : int64 =
  match v with
  | Value.V_int (n, _) -> n
  | Value.V_bool b -> if b then 1L else 0L
  | _ ->
    report ctx Diag.Validity
      ("expected an integer value, found " ^ Value.to_display v)
      ~recover:(fun () -> 0L)

let rec ty_of_value st (v : Value.t) : Ast.ty =
  match v with
  | Value.V_unit -> Ast.T_unit
  | Value.V_bool _ -> Ast.T_bool
  | Value.V_int (_, w) -> Ast.T_int w
  | Value.V_ptr (_, ty) -> ty
  | Value.V_fn (name, _) -> (
    match Ast.lookup_fn st.program name with
    | Some f -> fn_sig f
    | None -> Ast.T_fn ([], Ast.T_unit))
  | Value.V_handle _ -> Ast.T_handle
  | Value.V_tuple vs -> Ast.T_tuple (List.map (ty_of_value st) vs)
  | Value.V_array [] -> Ast.T_array (Ast.T_unit, 0)
  | Value.V_array (v :: rest) -> Ast.T_array (ty_of_value st v, List.length rest + 1)
  | Value.V_bytes b -> Ast.T_array (Ast.T_int Ast.I8, Array.length b)

let rec eval_expr (ctx : ctx) (e : Ast.expr) : Value.t =
  match e.Ast.e with
  | Ast.E_unit -> Value.V_unit
  | Ast.E_bool b -> Value.V_bool b
  | Ast.E_int (n, w) -> Value.V_int (n, w)
  | Ast.E_place p -> eval_place_read ctx p
  | Ast.E_unop (op, a) -> eval_unop ctx op a
  | Ast.E_binop (op, a, b) -> eval_binop ctx op a b
  | Ast.E_tuple es -> Value.V_tuple (List.map (eval_expr ctx) es)
  | Ast.E_array es -> Value.V_array (List.map (eval_expr ctx) es)
  | Ast.E_repeat (x, n) ->
    let v = eval_expr ctx x in
    Value.V_array (List.init n (fun _ -> v))
  | Ast.E_ref (m, p) ->
    let ptr, ty = eval_place ctx p in
    let perm = match m with Ast.Mut -> Borrow.Unique | Ast.Imm -> Borrow.Shared_ro in
    let retagged = retag_pointer ctx ptr perm in
    Value.V_ptr (retagged, Ast.T_ref (m, ty))
  | Ast.E_raw_of (m, p) ->
    let ptr, ty = eval_place ctx p in
    let perm = match m with Ast.Mut -> Borrow.Shared_rw | Ast.Imm -> Borrow.Shared_ro in
    let retagged = retag_pointer ctx ptr perm in
    Value.V_ptr (retagged, Ast.T_raw (m, ty))
  | Ast.E_call (name, args) -> eval_call ctx name args
  | Ast.E_call_ptr (callee, args) ->
    let v = eval_expr ctx callee in
    let arg_vals = List.map (eval_expr ctx) args in
    call_value ctx v arg_vals
  | Ast.E_cast (a, target) -> eval_cast ctx a target
  | Ast.E_transmute (target, a) ->
    let v = eval_expr ctx a in
    eval_transmute ctx v target
  | Ast.E_offset (p, n) -> eval_offset ctx p n
  | Ast.E_alloc (size_e, align_e) -> eval_alloc ctx size_e align_e
  | Ast.E_len a -> eval_len ctx a
  | Ast.E_input i ->
    let idx = Int64.to_int (value_as_int ctx (eval_expr ctx i)) in
    let inputs = ctx.st.config.inputs in
    let v = if idx >= 0 && idx < Array.length inputs then inputs.(idx) else 0L in
    Value.V_int (v, Ast.I64)
  | Ast.E_atomic_load p -> (
    let v = eval_expr ctx p in
    match v with
    | Value.V_ptr (ptr, _) -> typed_read ctx ptr (Ast.T_int Ast.I64) ~atomic:true
    | _ ->
      report ctx Diag.Validity "atomic_load on a non-pointer"
        ~recover:(fun () -> Value.V_int (0L, Ast.I64)))
  | Ast.E_atomic_add (p, n) -> (
    (* fetch-and-add with acquire/release semantics: the load acquires the
       location's release clock, the store releases this thread's *)
    let pv = eval_expr ctx p in
    let delta = value_as_int ctx (eval_expr ctx n) in
    match pv with
    | Value.V_ptr (ptr, _) -> (
      let old = typed_read ctx ptr (Ast.T_int Ast.I64) ~atomic:true in
      match old with
      | Value.V_int (o, _) ->
        typed_write ctx ptr (Ast.T_int Ast.I64)
          (Value.V_int (eval_arith Ast.Add o delta Ast.I64, Ast.I64))
          ~atomic:true;
        Value.V_int (o, Ast.I64)
      | other -> other)
    | _ ->
      report ctx Diag.Validity "atomic_add on a non-pointer"
        ~recover:(fun () -> Value.V_int (0L, Ast.I64)))

and eval_unop ctx op a =
  let v = eval_expr ctx a in
  match (op, v) with
  | Ast.Neg, Value.V_int (n, w) ->
    if (not (fits_width (Int64.neg n) w)) || (w <> Ast.Usize && Int64.equal n Int64.min_int)
    then raise (Panic_exc "attempt to negate with overflow")
    else Value.V_int (Int64.neg n, w)
  | Ast.Not, Value.V_bool b -> Value.V_bool (not b)
  | Ast.Not, Value.V_int (n, w) -> Value.V_int (truncate_to_width (Int64.lognot n) w, w)
  | _ ->
    report ctx Diag.Validity "invalid operand for unary operator"
      ~recover:(fun () -> v)

and eval_binop ctx op a b =
  match op with
  | Ast.And ->
    (* short-circuit *)
    let va = eval_expr ctx a in
    if Option.value (Value.as_bool va) ~default:false then eval_expr ctx b
    else Value.V_bool false
  | Ast.Or ->
    let va = eval_expr ctx a in
    if Option.value (Value.as_bool va) ~default:false then Value.V_bool true
    else eval_expr ctx b
  | _ -> (
    let va = eval_expr ctx a in
    let vb = eval_expr ctx b in
    match (va, vb) with
    | Value.V_int (x, w), Value.V_int (y, _) -> (
      match op with
      | Ast.Eq -> Value.V_bool (Int64.equal x y)
      | Ast.Ne -> Value.V_bool (not (Int64.equal x y))
      | Ast.Lt -> Value.V_bool (compare_ints w x y < 0)
      | Ast.Le -> Value.V_bool (compare_ints w x y <= 0)
      | Ast.Gt -> Value.V_bool (compare_ints w x y > 0)
      | Ast.Ge -> Value.V_bool (compare_ints w x y >= 0)
      | _ -> Value.V_int (eval_arith op x y w, w))
    | Value.V_bool x, Value.V_bool y -> (
      match op with
      | Ast.Eq -> Value.V_bool (x = y)
      | Ast.Ne -> Value.V_bool (x <> y)
      | _ ->
        report ctx Diag.Validity "invalid bool operands" ~recover:(fun () -> va))
    | Value.V_ptr (p, _), Value.V_ptr (q, _) -> (
      match op with
      | Ast.Eq -> Value.V_bool (p.Value.addr = q.Value.addr)
      | Ast.Ne -> Value.V_bool (p.Value.addr <> q.Value.addr)
      | _ ->
        report ctx Diag.Validity "invalid pointer operands" ~recover:(fun () -> va))
    | Value.V_unit, Value.V_unit -> (
      match op with
      | Ast.Eq -> Value.V_bool true
      | Ast.Ne -> Value.V_bool false
      | _ -> report ctx Diag.Validity "invalid unit operands" ~recover:(fun () -> va))
    | _ ->
      report ctx Diag.Validity "mismatched operand types at runtime"
        ~recover:(fun () -> va))

and retag_pointer ctx (ptr : Value.pointer) (perm : Borrow.perm) : Value.pointer =
  match Mem.retag ctx.st.mem ~ptr ~perm with
  | Ok (p, popped) ->
    if ctx.st.config.trace then begin
      trace_event ctx.st "retag: new tag %s (%s) at addr %d"
        (match p.Value.tag with Some t -> string_of_int t | None -> "?")
        (perm_name perm) p.Value.addr;
      trace_popped ctx.st "retag" popped
    end;
    p
  | Error err ->
    let kind, msg = classify_access_error err in
    report ctx kind msg ~recover:(fun () -> ptr)

and eval_cast ctx a target =
  let v = eval_expr ctx a in
  match (v, target) with
  | Value.V_int (n, _), Ast.T_int w ->
    let truncated = truncate_to_width n w in
    let adjusted = if w = Ast.Usize then n else truncated in
    Value.V_int (adjusted, w)
  | Value.V_bool b, Ast.T_int w -> Value.V_int ((if b then 1L else 0L), w)
  | Value.V_ptr (p, src_ty), Ast.T_raw (_, _) -> (
    (* ref-to-raw is a retag; raw-to-raw just repaints the type *)
    match src_ty with
    | Ast.T_ref (m, _) ->
      let perm =
        match (m, target) with
        | Ast.Mut, Ast.T_raw (Ast.Mut, _) -> Borrow.Shared_rw
        | _, _ -> Borrow.Shared_ro
      in
      let retagged = retag_pointer ctx p perm in
      Value.V_ptr (retagged, target)
    | _ -> Value.V_ptr (p, target))
  | Value.V_ptr (p, _), Ast.T_int w ->
    (* ptr-to-int observes the address and exposes the allocation *)
    Mem.expose ctx.st.mem p;
    Value.V_int (truncate_to_width (Int64.of_int p.Value.addr) w, w)
  | Value.V_int (n, _), Ast.T_raw _ ->
    Value.V_ptr ({ Value.prov = Value.P_wild; addr = Int64.to_int n; tag = None }, target)
  | Value.V_fn (name, _), Ast.T_int w ->
    Value.V_int (Int64.of_int (fn_pointer ctx.st name).Value.addr, w)
  | Value.V_fn (name, _), Ast.T_raw _ -> Value.V_ptr (fn_pointer ctx.st name, target)
  | _ ->
    report ctx Diag.Validity
      (Printf.sprintf "unsupported cast of %s to %s" (Value.to_display v)
         (Pretty.ty target))
      ~recover:(fun () -> Value.zero ctx.st.program target)

and eval_transmute ctx (v : Value.t) (target : Ast.ty) : Value.t =
  let st = ctx.st in
  let bytes =
    match v with
    | Value.V_bytes b -> Array.map (function Some n -> Mem.B_int n | None -> Mem.B_uninit) b
    | _ -> Mem.encode st.program ~fn_addr:(fn_pointer st) (ty_of_value st v) v
  in
  if Array.length bytes <> Layout.size_of st.program target then
    report ctx Diag.Validity "transmute size mismatch at runtime"
      ~recover:(fun () -> Value.zero st.program target)
  else
    match Mem.decode st.program target bytes with
    | Ok out -> out
    | Error msg ->
      report ctx Diag.Validity ("transmute produced an invalid value: " ^ msg)
        ~recover:(fun () -> Value.zero st.program target)

and eval_offset ctx p n =
  let vp = eval_expr ctx p in
  let vn = value_as_int ctx (eval_expr ctx n) in
  match vp with
  | Value.V_ptr (ptr, (Ast.T_raw (_, elem) as rty)) -> (
    let elem_size = max 1 (Layout.size_of ctx.st.program elem) in
    let new_addr = ptr.Value.addr + (Int64.to_int vn * elem_size) in
    let moved = { ptr with Value.addr = new_addr } in
    match ptr.Value.prov with
    | Value.P_alloc id -> (
      match Mem.find_alloc ctx.st.mem id with
      | Some a ->
        let off = new_addr - a.Mem.base in
        if off < 0 || off > a.Mem.size then
          report ctx Diag.Dangling_pointer
            (Printf.sprintf
               "pointer arithmetic leaves the bounds of allocation %d (offset %d of %d)"
               id off a.Mem.size)
            ~recover:(fun () -> Value.V_ptr (moved, rty))
        else Value.V_ptr (moved, rty)
      | None ->
        report ctx Diag.Dangling_pointer "offset of pointer to unknown allocation"
          ~recover:(fun () -> Value.V_ptr (moved, rty)))
    | Value.P_wild | Value.P_none | Value.P_fn _ -> Value.V_ptr (moved, rty))
  | _ ->
    report ctx Diag.Validity "offset on a non-raw-pointer" ~recover:(fun () -> vp)

and eval_alloc ctx size_e align_e =
  let size = Int64.to_int (value_as_int ctx (eval_expr ctx size_e)) in
  let align = Int64.to_int (value_as_int ctx (eval_expr ctx align_e)) in
  let bad msg =
    report ctx Diag.Alloc msg ~recover:(fun () ->
        Value.V_ptr (Value.null_pointer, Ast.T_raw (Ast.Mut, Ast.T_int Ast.I8)))
  in
  if size <= 0 then bad (Printf.sprintf "alloc with invalid size %d" size)
  else if align <= 0 || align land (align - 1) <> 0 then
    bad (Printf.sprintf "alloc with invalid alignment %d" align)
  else begin
    let a = tracked_allocate ctx.st ~size ~align ~kind:Mem.Heap in
    trace_event ctx.st "alloc: allocation %d (%d bytes, align %d, base tag %d)"
      a.Mem.id size align a.Mem.base_tag;
    Value.V_ptr (base_pointer a, Ast.T_raw (Ast.Mut, Ast.T_int Ast.I8))
  end

and eval_len ctx a =
  match a.Ast.e with
  | Ast.E_place p ->
    let _, ty = eval_place ctx p in
    (match ty with
    | Ast.T_array (_, n) -> Value.V_int (Int64.of_int n, Ast.Usize)
    | _ ->
      report ctx Diag.Validity "len() of a non-array place"
        ~recover:(fun () -> Value.V_int (0L, Ast.Usize)))
  | _ -> (
    match eval_expr ctx a with
    | Value.V_array vs -> Value.V_int (Int64.of_int (List.length vs), Ast.Usize)
    | Value.V_ptr (_, Ast.T_ref (_, Ast.T_array (_, n))) ->
      Value.V_int (Int64.of_int n, Ast.Usize)
    | v ->
      report ctx Diag.Validity ("len() of non-array value " ^ Value.to_display v)
        ~recover:(fun () -> Value.V_int (0L, Ast.Usize)))

and eval_call ctx name args =
  (* name resolution: local fn-pointer first, then declared function *)
  match lookup_local ctx name with
  | Some local ->
    let callee = typed_read ctx (base_pointer local.l_alloc) local.l_ty ~atomic:false in
    let arg_vals = List.map (eval_expr ctx) args in
    call_value ctx callee arg_vals
  | None -> (
    match Ast.lookup_fn ctx.st.program name with
    | Some f ->
      let arg_vals = List.map (eval_expr ctx) args in
      call_fn ctx f arg_vals
    | None ->
      invalid_arg ("Machine: call to unknown function " ^ name))

and call_value ctx (callee : Value.t) (args : Value.t list) : Value.t =
  let st = ctx.st in
  match callee with
  | Value.V_fn (name, _) -> (
    match Ast.lookup_fn st.program name with
    | Some f -> call_fn ctx f args
    | None ->
      report ctx Diag.Func_call ("call of unknown function " ^ name)
        ~recover:(fun () -> Value.V_unit))
  | Value.V_ptr (p, claimed) -> (
    match p.Value.prov with
    | Value.P_fn idx when idx >= 0 && idx < Array.length st.fn_table ->
      let f = st.fn_table.(idx) in
      let actual = fn_sig f in
      if not (Ast.equal_ty actual claimed) then
        report ctx Diag.Func_pointer
          (Printf.sprintf
             "calling %s through a pointer of incompatible type %s (actual %s)"
             f.Ast.fname (Pretty.ty claimed) (Pretty.ty actual))
          ~recover:(fun () ->
            match claimed with
            | Ast.T_fn (_, ret) -> Value.zero st.program ret
            | _ -> Value.V_unit)
      else call_fn ctx f args
    | Value.P_fn _ ->
      report ctx Diag.Func_call "call through a corrupt function-table pointer"
        ~recover:(fun () -> Value.V_unit)
    | Value.P_alloc _ | Value.P_wild | Value.P_none ->
      let what = if p.Value.addr = 0 then "a null pointer" else "a non-function pointer" in
      report ctx Diag.Func_call ("attempting to call " ^ what)
        ~recover:(fun () ->
          match claimed with
          | Ast.T_fn (_, ret) -> Value.zero st.program ret
          | _ -> Value.V_unit))
  | v ->
    report ctx Diag.Func_call ("attempting to call value " ^ Value.to_display v)
      ~recover:(fun () -> Value.V_unit)

and call_fn ctx (f : Ast.fn_decl) (args : Value.t list) : Value.t =
  let st = ctx.st in
  if List.length args <> List.length f.Ast.params then
    report ctx Diag.Func_pointer
      (Printf.sprintf "function %s called with %d arguments (expects %d)" f.Ast.fname
         (List.length args) (List.length f.Ast.params))
      ~recover:(fun () -> Value.zero st.program f.Ast.ret)
  else begin
    let callee_ctx = make_ctx st ctx.tid in
    let scope : scope = ref [] in
    callee_ctx.scopes <- [ scope ];
    List.iter2
      (fun (pname, pty) v ->
        let size = Layout.size_of st.program pty in
        let align = max 1 (Layout.align_of st.program pty) in
        let a = tracked_allocate st ~size ~align ~kind:Mem.Stack in
        typed_write callee_ctx (base_pointer a) pty v ~atomic:false;
        bind_local callee_ctx scope pname { l_alloc = a; l_ty = pty })
      f.Ast.params args;
    let finish () =
      (* leaving the function kills its parameter slots *)
      close_scope callee_ctx scope
    in
    match exec_block callee_ctx f.Ast.body with
    | () ->
      finish ();
      if Ast.equal_ty f.Ast.ret Ast.T_unit then Value.V_unit
      else
        report ctx Diag.Validity
          (Printf.sprintf "function %s finished without returning a value" f.Ast.fname)
          ~recover:(fun () -> Value.zero st.program f.Ast.ret)
    | exception Return_exc v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Places *)

and eval_place (ctx : ctx) (p : Ast.place) : Value.pointer * Ast.ty =
  match p with
  | Ast.P_var name -> (
    match lookup_local ctx name with
    | Some l -> (base_pointer l.l_alloc, l.l_ty)
    | None -> (
      match Hashtbl.find_opt ctx.st.statics_tbl name with
      | Some (a, ty) -> (base_pointer a, ty)
      | None -> invalid_arg ("Machine: unknown variable " ^ name)))
  | Ast.P_deref e -> (
    let v = eval_expr ctx e in
    match v with
    | Value.V_ptr (ptr, (Ast.T_ref (_, t) | Ast.T_raw (_, t))) -> (ptr, t)
    | Value.V_ptr (ptr, _) -> (ptr, Ast.T_unit)
    | _ ->
      report ctx Diag.Validity
        ("dereference of non-pointer value " ^ Value.to_display v)
        ~recover:(fun () -> (Value.null_pointer, Ast.T_unit)))
  | Ast.P_index (base, idx) -> (
    let bptr, bty = eval_place ctx base in
    let i = Int64.to_int (value_as_int ctx (eval_expr ctx idx)) in
    match bty with
    | Ast.T_array (elem, n) ->
      if i < 0 || i >= n then
        raise
          (Panic_exc
             (Printf.sprintf "index out of bounds: the len is %d but the index is %d" n i))
      else
        let elem_size = Layout.size_of ctx.st.program elem in
        ({ bptr with Value.addr = bptr.Value.addr + (i * elem_size) }, elem)
    | _ ->
      report ctx Diag.Validity "indexing a non-array place"
        ~recover:(fun () -> (bptr, Ast.T_unit)))
  | Ast.P_index_unchecked (base, idx) -> (
    let bptr, bty = eval_place ctx base in
    let i = Int64.to_int (value_as_int ctx (eval_expr ctx idx)) in
    match bty with
    | Ast.T_array (elem, _) ->
      (* no bounds check: the access layer flags out-of-range addresses *)
      let elem_size = Layout.size_of ctx.st.program elem in
      ({ bptr with Value.addr = bptr.Value.addr + (i * elem_size) }, elem)
    | _ ->
      report ctx Diag.Validity "get_unchecked on a non-array place"
        ~recover:(fun () -> (bptr, Ast.T_unit)))
  | Ast.P_field (base, i) -> (
    let bptr, bty = eval_place ctx base in
    match bty with
    | Ast.T_tuple ts when i >= 0 && i < List.length ts ->
      let off = List.nth (Layout.tuple_offsets ctx.st.program ts) i in
      ({ bptr with Value.addr = bptr.Value.addr + off }, List.nth ts i)
    | _ ->
      report ctx Diag.Validity "tuple field access on a non-tuple place"
        ~recover:(fun () -> (bptr, Ast.T_unit)))
  | Ast.P_union_field (base, fld) -> (
    let bptr, bty = eval_place ctx base in
    match bty with
    | Ast.T_union u -> (
      match Ast.lookup_union ctx.st.program u with
      | Some decl -> (
        match List.assoc_opt fld decl.Ast.ufields with
        | Some fty -> (bptr, fty)  (* all union fields live at offset 0 *)
        | None ->
          report ctx Diag.Validity ("unknown union field " ^ fld)
            ~recover:(fun () -> (bptr, Ast.T_unit)))
      | None ->
        report ctx Diag.Validity ("unknown union type " ^ u)
          ~recover:(fun () -> (bptr, Ast.T_unit)))
    | _ ->
      report ctx Diag.Validity "union field access on a non-union place"
        ~recover:(fun () -> (bptr, Ast.T_unit)))

and eval_place_read ctx p : Value.t =
  match p with
  | Ast.P_var name when lookup_local ctx name = None
                        && not (Hashtbl.mem ctx.st.statics_tbl name) -> (
    (* a bare function name used as a value *)
    match Ast.lookup_fn ctx.st.program name with
    | Some f -> Value.V_fn (name, fn_sig f)
    | None -> invalid_arg ("Machine: unknown variable " ^ name))
  | _ ->
    let ptr, ty = eval_place ctx p in
    typed_read ctx ptr ty ~atomic:false

(* ------------------------------------------------------------------ *)
(* Statements *)

and exec_stmt (ctx : ctx) (stmt : Ast.stmt) : unit =
  ctx.st.cur_stmt <- stmt.Ast.sid;
  yield_point ctx;
  match stmt.Ast.s with
  | Ast.S_let (name, annot, e) ->
    let v = eval_expr ctx e in
    let ty =
      match annot with
      | Some t -> t
      | None -> (
        match Typecheck.ty_of_expr ctx.st.info e with
        | Some t -> t
        | None -> ty_of_value ctx.st v)
    in
    let size = Layout.size_of ctx.st.program ty in
    let align = max 1 (Layout.align_of ctx.st.program ty) in
    let a = tracked_allocate ctx.st ~size ~align ~kind:Mem.Stack in
    typed_write ctx (base_pointer a) ty v ~atomic:false;
    (match ctx.scopes with
    | scope :: _ -> bind_local ctx scope name { l_alloc = a; l_ty = ty }
    | [] -> invalid_arg "Machine: let outside any scope")
  | Ast.S_assign (p, e) ->
    let v = eval_expr ctx e in
    let ptr, ty = eval_place ctx p in
    typed_write ctx ptr ty v ~atomic:false
  | Ast.S_expr e -> ignore (eval_expr ctx e)
  | Ast.S_if (c, t, f) ->
    let cond = Option.value (Value.as_bool (eval_expr ctx c)) ~default:false in
    if cond then exec_block ctx t else exec_block ctx f
  | Ast.S_while (c, body) ->
    let rec loop () =
      yield_point ctx;
      let cond = Option.value (Value.as_bool (eval_expr ctx c)) ~default:false in
      if cond then begin
        exec_block ctx body;
        loop ()
      end
    in
    loop ()
  | Ast.S_block b | Ast.S_unsafe b -> exec_block ctx b
  | Ast.S_assert (e, msg) ->
    let ok = Option.value (Value.as_bool (eval_expr ctx e)) ~default:false in
    if not ok then raise (Panic_exc ("assertion failed: " ^ msg))
  | Ast.S_panic msg -> raise (Panic_exc msg)
  | Ast.S_return None -> raise (Return_exc Value.V_unit)
  | Ast.S_return (Some e) -> raise (Return_exc (eval_expr ctx e))
  | Ast.S_print e ->
    let v = eval_expr ctx e in
    ctx.st.outputs <- Value.to_display v :: ctx.st.outputs
  | Ast.S_dealloc (pe, size_e, align_e) -> exec_dealloc ctx pe size_e align_e
  | Ast.S_spawn (handle, fname, args) -> exec_spawn ctx handle fname args
  | Ast.S_join e -> exec_join ctx e
  | Ast.S_atomic_store (pe, ve) -> (
    let pv = eval_expr ctx pe in
    let v = eval_expr ctx ve in
    match pv with
    | Value.V_ptr (ptr, _) -> typed_write ctx ptr (Ast.T_int Ast.I64) v ~atomic:true
    | _ -> report ctx Diag.Validity "atomic_store on a non-pointer" ~recover:(fun () -> ()))

and exec_dealloc ctx pe size_e align_e =
  let st = ctx.st in
  let pv = eval_expr ctx pe in
  let size = Int64.to_int (value_as_int ctx (eval_expr ctx size_e)) in
  let align = Int64.to_int (value_as_int ctx (eval_expr ctx align_e)) in
  match pv with
  | Value.V_ptr (ptr, _) -> (
    let resolve () =
      match ptr.Value.prov with
      | Value.P_alloc id -> Mem.find_alloc st.mem id
      | Value.P_wild -> Mem.alloc_containing st.mem ptr.Value.addr
      | Value.P_fn _ | Value.P_none -> None
    in
    match resolve () with
    | None ->
      report ctx Diag.Alloc "dealloc of a pointer that was never allocated"
        ~recover:(fun () -> ())
    | Some a ->
      if not a.Mem.live then
        report ctx Diag.Alloc "double free" ~recover:(fun () -> ())
      else if a.Mem.kind <> Mem.Heap then
        report ctx Diag.Alloc "dealloc of non-heap memory" ~recover:(fun () -> ())
      else if ptr.Value.addr <> a.Mem.base then
        report ctx Diag.Alloc "dealloc of a pointer not at the allocation start"
          ~recover:(fun () -> ())
      else if size <> a.Mem.size || align <> a.Mem.align then
        report ctx Diag.Alloc
          (Printf.sprintf
             "dealloc with wrong layout: (size %d, align %d) vs allocated (size %d, align %d)"
             size align a.Mem.size a.Mem.align)
          ~recover:(fun () -> ())
      else begin
        (* freeing is a write-like access for the race detector *)
        let thread = thread_of ctx in
        (match
           Mem.check_access st.mem ~ptr ~len:a.Mem.size ~align:1 ~write:true
             ~tid:ctx.tid ~clock:thread.clock ~atomic:false
         with
        | Error err ->
          let kind, msg = classify_access_error err in
          report ctx kind msg ~recover:(fun () -> ())
        | Ok _ -> ());
        trace_event st "dealloc: freed allocation %d (%d bytes)" a.Mem.id a.Mem.size;
        Mem.deallocate st.mem a
      end)
  | v ->
    report ctx Diag.Alloc ("dealloc of non-pointer " ^ Value.to_display v)
      ~recover:(fun () -> ())

and exec_spawn ctx handle fname args =
  let st = ctx.st in
  match Ast.lookup_fn st.program fname with
  | None -> invalid_arg ("Machine: spawn of unknown function " ^ fname)
  | Some f ->
    let arg_vals = List.map (eval_expr ctx) args in
    let body tid =
      let child_ctx = make_ctx st tid in
      ignore (call_fn child_ctx f arg_vals)
    in
    let tid = Effect.perform (Spawn_eff body) in
    (* bind the handle as a local *)
    let ty = Ast.T_handle in
    let a = tracked_allocate st ~size:8 ~align:8 ~kind:Mem.Stack in
    typed_write ctx (base_pointer a) ty (Value.V_handle tid) ~atomic:false;
    (match ctx.scopes with
    | scope :: _ -> bind_local ctx scope handle { l_alloc = a; l_ty = ty }
    | [] -> invalid_arg "Machine: spawn outside any scope")

and exec_join ctx e =
  let v = eval_expr ctx e in
  match v with
  | Value.V_handle tid -> (
    match Hashtbl.find_opt ctx.st.threads tid with
    | None ->
      report ctx Diag.Concurrency
        (Printf.sprintf "join of invalid thread handle %d" tid)
        ~recover:(fun () -> ())
    | Some t -> (
      match t.status with
      | T_joined ->
        report ctx Diag.Concurrency
          (Printf.sprintf "thread %d joined twice" tid)
          ~recover:(fun () -> ())
      | T_runnable | T_blocked_on _ | T_done ->
        let ok = Effect.perform (Join_eff tid) in
        if ok then begin
          (* join synchronizes: acquire the child's final clock *)
          let self = thread_of ctx in
          self.clock <- Vclock.tick (Vclock.merge self.clock t.clock) ctx.tid
        end
        else
          report ctx Diag.Concurrency
            (Printf.sprintf "join of thread %d failed" tid)
            ~recover:(fun () -> ())))
  | _ ->
    report ctx Diag.Concurrency "join of a non-handle value" ~recover:(fun () -> ())

and exec_block (ctx : ctx) (b : Ast.block) : unit =
  let scope : scope = ref [] in
  ctx.scopes <- scope :: ctx.scopes;
  let cleanup () =
    (* locals die at scope exit; pointers to them become dangling *)
    close_scope ctx scope;
    ctx.scopes <- (match ctx.scopes with [] -> [] | _ :: rest -> rest)
  in
  match List.iter (exec_stmt ctx) b with
  | () -> cleanup ()
  | exception e ->
    cleanup ();
    raise e

(* ------------------------------------------------------------------ *)
(* Scheduler *)

type pending = { p_tid : int; run : unit -> unit }

let run ?(config = default_config) (program : Ast.program) (info : Typecheck.info) :
    run_result =
  (* deterministic tags per run: diagnostics mention tag numbers, and repair
     traces built from them must not depend on how many runs came before *)
  Borrow.reset_tags ();
  let fn_table = Array.of_list program.Ast.funcs in
  let fn_index_tbl = Hashtbl.create (Array.length fn_table) in
  Array.iteri
    (fun i (f : Ast.fn_decl) ->
      (* first declaration wins, as the linear scan it replaces did *)
      if not (Hashtbl.mem fn_index_tbl f.Ast.fname) then
        Hashtbl.add fn_index_tbl f.Ast.fname i)
    fn_table;
  let st =
    {
      config;
      program;
      info;
      mem = Mem.create ();
      fn_table;
      fn_index_tbl;
      statics_tbl = Hashtbl.create 8;
      threads = Hashtbl.create 8;
      next_tid = 0;
      steps = 0;
      outputs = [];
      diags = [];
      events = [];
      stop = None;
      sched_rng = Rb_util.Rng.create (config.seed * 2 + 1);
      cur_stmt = -1;
      allocs = 0;
      alloc_bytes = 0;
    }
  in
  let runnable : pending list ref = ref [] in
  let enqueue p = runnable := !runnable @ [ p ] in
  (* joiners waiting on a tid *)
  let waiters : (int, pending list) Hashtbl.t = Hashtbl.create 8 in
  let new_thread () =
    let tid = st.next_tid in
    st.next_tid <- tid + 1;
    let t = { tid; clock = Vclock.tick Vclock.empty tid; status = T_runnable } in
    Hashtbl.replace st.threads tid t;
    t
  in
  let record_stop outcome = if st.stop = None then st.stop <- Some outcome in
  let rec spawn_thread (parent : thread option) (body : int -> unit) : int =
    let t = new_thread () in
    (match parent with
    | Some p ->
      (* child inherits the parent's history; both sides then advance *)
      t.clock <- Vclock.tick (Vclock.merge t.clock p.clock) t.tid;
      p.clock <- Vclock.tick p.clock p.tid
    | None -> ());
    enqueue { p_tid = t.tid; run = (fun () -> run_thread t body) };
    t.tid
  and run_thread (t : thread) (body : int -> unit) : unit =
    let open Effect.Deep in
    match_with
      (fun () -> body t.tid)
      ()
      {
        retc =
          (fun () ->
            t.status <- T_done;
            (* wake joiners *)
            match Hashtbl.find_opt waiters t.tid with
            | Some ws ->
              Hashtbl.remove waiters t.tid;
              List.iter enqueue ws
            | None -> ());
        exnc =
          (fun e ->
            t.status <- T_done;
            (match Hashtbl.find_opt waiters t.tid with
            | Some ws ->
              Hashtbl.remove waiters t.tid;
              List.iter enqueue ws
            | None -> ());
            match e with
            | Panic_exc msg -> record_stop (Panicked msg)
            | Ub_fatal d -> record_stop (Ub d)
            | Step_limit_exc -> record_stop Step_limit
            | Resource_exc msg -> record_stop (Resource_limit msg)
            | e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  enqueue { p_tid = t.tid; run = (fun () -> continue k ()) })
            | Spawn_eff body' ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let tid = spawn_thread (Some t) body' in
                  continue k tid)
            | Join_eff target ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Hashtbl.find_opt st.threads target with
                  | None -> continue k false
                  | Some tgt -> (
                    match tgt.status with
                    | T_done ->
                      tgt.status <- T_joined;
                      continue k true
                    | T_joined -> continue k false
                    | T_runnable | T_blocked_on _ ->
                      t.status <- T_blocked_on target;
                      let resume =
                        {
                          p_tid = t.tid;
                          run =
                            (fun () ->
                              t.status <- T_runnable;
                              (match Hashtbl.find_opt st.threads target with
                              | Some tgt2 when tgt2.status = T_done ->
                                tgt2.status <- T_joined
                              | _ -> ());
                              continue k true);
                        }
                      in
                      let existing =
                        Option.value (Hashtbl.find_opt waiters target) ~default:[]
                      in
                      Hashtbl.replace waiters target (existing @ [ resume ])))
            | _ -> None);
      }
  in
  (* initialize statics *)
  let static_error = ref None in
  let init_statics main_tid =
    let ctx = make_ctx st main_tid in
    ctx.scopes <- [ ref [] ];
    List.iter
      (fun (s : Ast.static_decl) ->
        let ty = s.Ast.sty in
        let size = Layout.size_of program ty in
        let align = max 1 (Layout.align_of program ty) in
        let a = tracked_allocate st ~size ~align ~kind:Mem.Global in
        Hashtbl.replace st.statics_tbl s.Ast.sname (a, ty);
        let v = eval_expr ctx s.Ast.sinit in
        typed_write ctx (base_pointer a) ty v ~atomic:false)
      program.Ast.statics
  in
  let main_body tid =
    (match !static_error with Some e -> raise e | None -> ());
    let ctx = make_ctx st tid in
    match Ast.lookup_fn program "main" with
    | Some f -> ignore (call_fn ctx f [])
    | None -> invalid_arg "Machine: program has no main function"
  in
  let main_tid =
    spawn_thread None (fun tid ->
        (try init_statics tid
         with (Panic_exc _ | Ub_fatal _ | Step_limit_exc | Resource_exc _) as e ->
           static_error := Some e);
        main_body tid)
  in
  (* scheduler loop *)
  let rec loop () =
    match st.stop with
    | Some _ -> ()
    | None -> (
      match !runnable with
      | [] -> ()
      | pendings ->
        let n = List.length pendings in
        let idx = Rb_util.Rng.int st.sched_rng n in
        let chosen = List.nth pendings idx in
        runnable := List.filteri (fun i _ -> i <> idx) pendings;
        chosen.run ();
        loop ())
  in
  loop ();
  (* post-run checks *)
  let main_done =
    match Hashtbl.find_opt st.threads main_tid with
    | Some t -> t.status = T_done || t.status = T_joined
    | None -> false
  in
  let final_diags = ref [] in
  (match st.stop with
  | Some _ -> ()
  | None ->
    if not main_done then begin
      (* all remaining threads blocked on joins: deadlock *)
      let d =
        Diag.make ~thread:main_tid Diag.Concurrency
          "deadlock: every thread is blocked on a join"
      in
      final_diags := d :: !final_diags
    end
    else begin
      (* leaked threads: main finished while children still exist unjoined *)
      Hashtbl.iter
        (fun tid t ->
          if tid <> main_tid && t.status <> T_joined then
            final_diags :=
              Diag.make ~thread:tid Diag.Concurrency
                (Printf.sprintf "thread %d was never joined before main exited" tid)
              :: !final_diags)
        st.threads;
      (* leaked heap allocations *)
      List.iter
        (fun (a : Mem.allocation) ->
          final_diags :=
            Diag.make ~thread:main_tid Diag.Alloc
              (Printf.sprintf "memory leak: allocation %d (%d bytes) never freed"
                 a.Mem.id a.Mem.size)
            :: !final_diags)
        (Mem.live_heap_allocations st.mem)
    end);
  st.diags <- !final_diags @ st.diags;
  let outcome =
    match st.stop with
    | Some o -> o
    | None -> (
      match st.diags with
      | [] -> Finished
      | d :: _ -> (
        match config.mode with
        | Stop_first -> Ub d
        | Collect _ -> if !final_diags <> [] then Ub (List.hd !final_diags) else Finished))
  in
  let diags = List.rev st.diags in
  (* a panic or a blown resource budget each count as one error on top of
     the recorded UB diagnostics; a step-limit stop stays cost-free, as it
     always has (spin loops are scored by their diagnostics alone) *)
  let aborted = match outcome with Panicked _ | Resource_limit _ -> true | _ -> false in
  let result =
    {
      outcome;
      output = List.rev st.outputs;
      diags;
      steps = st.steps;
      error_count = List.length diags + (if aborted then 1 else 0);
      events = List.rev st.events;
    }
  in
  (* one event per run, never per step: the interpreter hot loop stays
     untouched and the counters ride along for free *)
  Obs.Trace.note "interp" (fun () ->
      [ ("steps", Obs.Trace.I st.steps);
        ("allocs", Obs.Trace.I st.allocs);
        ("alloc_bytes", Obs.Trace.I st.alloc_bytes);
        ("diags", Obs.Trace.I (List.length diags));
        ( "outcome",
          Obs.Trace.S
            (match outcome with
            | Finished -> "finished"
            | Panicked _ -> "panicked"
            | Ub _ -> "ub"
            | Step_limit -> "step-limit"
            | Resource_limit _ -> "resource-limit") ) ]);
  Obs.Metrics.inc "interp.runs";
  Obs.Metrics.inc ~by:st.steps "interp.steps";
  Obs.Metrics.inc ~by:st.allocs "interp.allocs";
  result

type analysis = Compile_error of string | Ran of run_result

let analyze ?(config = default_config) program =
  match Typecheck.check program with
  | Error errors -> Compile_error (Typecheck.errors_to_string errors)
  | Ok info -> Ran (run ~config program info)

let is_clean r = r.outcome = Finished && r.diags = []

let first_ub (r : run_result) = match r.diags with [] -> None | d :: _ -> Some d

(* ------------------------------------------------------------------ *)
(* Verification memo-cache *)

(* An id-free digest of an analysis: everything the oracle scoring needs
   (outcome class, print trace, error counts) and nothing that embeds node
   ids or borrow tags, so a digest computed for one parse of a program is
   valid for any structurally identical parse. *)
type summary = {
  sm_compile_error : bool;
  sm_clean : bool;
  sm_panic : string option;
  sm_output : string list;
  sm_ub_count : int;      (* UB diagnostics recorded *)
  sm_error_count : int;   (* the paper's n_i; type-error count if ill-typed *)
  sm_resource : string option;  (* the run blew an allocation budget *)
}

let summarize = function
  | Compile_error msg ->
    { sm_compile_error = true; sm_clean = false; sm_panic = None; sm_output = [];
      sm_ub_count = 0;
      sm_error_count =
        (* one reported line per type error *)
        max 1 (List.length (String.split_on_char '\n' (String.trim msg)));
      sm_resource = None }
  | Ran r ->
    { sm_compile_error = false;
      sm_clean = is_clean r;
      sm_panic = (match r.outcome with Panicked m -> Some m | _ -> None);
      sm_output = r.output;
      sm_ub_count = List.length r.diags;
      sm_error_count = r.error_count;
      sm_resource = (match r.outcome with Resource_limit m -> Some m | _ -> None) }

module Cache = struct
  type stats = { hits : int; misses : int }

  type t = {
    table : (string, summary) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    enabled : bool;
  }

  let create ?(enabled = true) () =
    { table = Hashtbl.create 256; hits = 0; misses = 0; enabled }

  let enabled t = t.enabled
  let stats t = { hits = t.hits; misses = t.misses }

  let hit_rate t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0

  (* external memo layers (e.g. the pipeline's canonical-program run memo)
     report into the same counters so hit_rate covers all verification
     caching *)
  let record_hit t = t.hits <- t.hits + 1
  let record_miss t = t.misses <- t.misses + 1

  let clear t =
    Hashtbl.reset t.table;
    reset_stats t

  let memo t ~key compute =
    if not t.enabled then compute ()
    else
      match Hashtbl.find_opt t.table key with
      | Some s ->
        t.hits <- t.hits + 1;
        s
      | None ->
        t.misses <- t.misses + 1;
        let s = compute () in
        Hashtbl.add t.table key s;
        s
end

let config_key config =
  Printf.sprintf "%s|%d|%d|%b|%d|%d|%s"
    (match config.mode with Stop_first -> "S" | Collect n -> "C" ^ string_of_int n)
    config.seed config.max_steps config.trace
    config.max_allocs config.max_alloc_bytes
    (String.concat "," (Array.to_list (Array.map Int64.to_string config.inputs)))

let analyze_summary ?cache ?fingerprint ?(config = default_config) program =
  (* id-neutral so a cache hit (which skips compute entirely) and every
     uncached path consume identical node-id space — labels printed after a
     verification can not depend on whether it was cached *)
  let compute () =
    Minirust.Ast.id_preserving @@ fun () ->
    match Typecheck.check program with
    | Error errors ->
      { sm_compile_error = true; sm_clean = false; sm_panic = None; sm_output = [];
        sm_ub_count = 0; sm_error_count = List.length errors; sm_resource = None }
    | Ok info -> summarize (Ran (run ~config program info))
  in
  match cache with
  | None -> compute ()
  | Some c when not (Cache.enabled c) -> compute ()
  | Some c ->
    let fp =
      match fingerprint with
      | Some fp -> fp
      | None -> Minirust.Pretty.program program
    in
    Cache.memo c ~key:(config_key config ^ "\n" ^ fp) compute

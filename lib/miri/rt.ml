(* Shared runtime substrate of the two execution engines.

   Everything that defines the *semantics* of a MiniRust run — machine
   state, diagnostics, typed memory access, integer arithmetic, the
   value-level operation cores, cooperative threading and the scheduler —
   lives here and is shared verbatim between the tree-walking evaluator
   (Machine) and the bytecode VM (Vm). The two engines only differ in how
   they *drive* these cores, which is what keeps their diagnostics
   byte-identical by construction. *)

open Minirust

type mode = Stop_first | Collect of int

(* Which execution engine interprets the program. [Bytecode] lowers the
   typechecked AST to a flat pre-resolved instruction array (Compile/Vm);
   [Tree_walk] is the original AST evaluator, kept as a differential-testing
   escape hatch. *)
type engine = Bytecode | Tree_walk

type config = {
  mode : mode;
  seed : int;
  max_steps : int;
  inputs : int64 array;
  trace : bool;  (* record allocation/retag/invalidation events *)
  max_allocs : int;       (* allocation-count fuel *)
  max_alloc_bytes : int;  (* cumulative allocated-byte fuel *)
  engine : engine;
}

let default_config =
  { mode = Stop_first; seed = 1; max_steps = 200_000; inputs = [||]; trace = false;
    (* generous enough that no legitimate corpus program comes near them;
       they exist to turn an allocation bomb into a diagnosis *)
    max_allocs = 4_000_000; max_alloc_bytes = 64 * 1024 * 1024;
    engine = Bytecode }

type outcome =
  | Finished
  | Panicked of string
  | Ub of Diag.t
  | Step_limit
  | Resource_limit of string  (* allocation fuel exhausted: diagnosed, not hung *)

type run_result = {
  outcome : outcome;
  output : string list;
  diags : Diag.t list;
  steps : int;
  error_count : int;
  events : string list;  (* chronological trace, empty unless [config.trace] *)
}

(* ------------------------------------------------------------------ *)
(* Machine state *)

type thread_status =
  | T_runnable
  | T_blocked_on of int
  | T_done
  | T_joined

type thread = { tid : int; mutable clock : Vclock.t; mutable status : thread_status }

type state = {
  config : config;
  program : Ast.program;
  info : Typecheck.info;
  mem : Mem.t;
  fn_table : Ast.fn_decl array;
  fn_index_tbl : (string, int) Hashtbl.t;  (* first index of each name *)
  statics_tbl : (string, Mem.allocation * Ast.ty) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable steps : int;
  mutable outputs : string list;  (* reversed *)
  mutable diags : Diag.t list;    (* reversed *)
  mutable events : string list;   (* reversed *)
  mutable stop : outcome option;  (* set when the run must end *)
  sched_rng : Rb_util.Rng.t;
  mutable cur_stmt : int;         (* node id of the statement being executed *)
  mutable allocs : int;           (* allocations performed so far *)
  mutable alloc_bytes : int;      (* cumulative bytes allocated *)
}

(* Per-thread evaluation context shared by both engines: the state plus the
   thread's id and cached record, so hot paths never pay a table lookup. *)
type ectx = { st : state; tid : int; thread : thread }

let make_ectx st tid = { st; tid; thread = Hashtbl.find st.threads tid }

exception Panic_exc of string
exception Ub_fatal of Diag.t
exception Step_limit_exc
exception Resource_exc of string
exception Return_exc of Value.t

(* Every machine allocation funnels through here so the fuel caps are
   checked *before* memory is created: an allocation bomb fails cleanly
   instead of first materialising a huge block. *)
let tracked_allocate (st : state) ~size ~align ~kind =
  if st.allocs >= st.config.max_allocs then
    raise
      (Resource_exc
         (Printf.sprintf "allocation budget exhausted (%d allocations)"
            st.config.max_allocs));
  if st.alloc_bytes + size > st.config.max_alloc_bytes then
    raise
      (Resource_exc
         (Printf.sprintf
            "allocation-byte budget exhausted (%d bytes requested, cap %d)"
            (st.alloc_bytes + size) st.config.max_alloc_bytes));
  st.allocs <- st.allocs + 1;
  st.alloc_bytes <- st.alloc_bytes + size;
  Mem.allocate st.mem ~size ~align ~kind

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let report (ec : ectx) (kind : Diag.ub_kind) (message : string) ~(recover : unit -> 'a) : 'a =
  let st = ec.st in
  let d = Diag.make ~thread:ec.tid ~stmt_hint:st.cur_stmt kind message in
  st.diags <- d :: st.diags;
  match st.config.mode with
  | Stop_first -> raise (Ub_fatal d)
  | Collect limit ->
    if List.length st.diags >= limit then raise (Ub_fatal d) else recover ()

let classify_access_error (err : Mem.access_error) : Diag.ub_kind * string =
  match err with
  | Mem.Dead msg | Mem.Oob msg | Mem.No_alloc msg -> (Diag.Dangling_pointer, msg)
  | Mem.Misaligned msg -> (Diag.Unaligned_pointer, msg)
  | Mem.Race msg -> (Diag.Data_race, msg)
  | Mem.Not_exposed msg -> (Diag.Provenance, msg)
  | Mem.Borrow_bad v ->
    let kind =
      if v.Borrow.write_through_ro then Diag.Both_borrow
      else
        match v.Borrow.missing_perm with
        | Borrow.Shared_ro -> Diag.Both_borrow
        | Borrow.Unique | Borrow.Shared_rw -> Diag.Stack_borrow
    in
    (kind, v.Borrow.detail)

let trace_event (st : state) fmt =
  (* test [trace] before formatting: with tracing off (benchmarks, campaign
     sweeps) the hot path must not pay for sprintf *)
  if st.config.trace then
    Printf.ksprintf (fun s -> st.events <- s :: st.events) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let perm_name = function
  | Borrow.Unique -> "Unique"
  | Borrow.Shared_rw -> "SharedRW"
  | Borrow.Shared_ro -> "SharedRO"

let trace_popped (st : state) what popped =
  if st.config.trace then
    List.iter
      (fun (tag, perm) ->
        trace_event st "%s invalidated tag %d (%s)" what tag (perm_name perm))
      popped

(* ------------------------------------------------------------------ *)
(* Function table *)

let fn_addr_base = 0x7F00_0000_0000

let fn_index st name = Hashtbl.find_opt st.fn_index_tbl name

let fn_pointer st name : Value.pointer =
  match fn_index st name with
  | Some idx -> { Value.prov = Value.P_fn idx; addr = fn_addr_base + (idx * 16); tag = None }
  | None -> invalid_arg ("Machine: unknown function " ^ name)

let fn_sig (f : Ast.fn_decl) = Ast.T_fn (List.map snd f.Ast.params, f.Ast.ret)

(* ------------------------------------------------------------------ *)
(* Typed memory access *)

let base_pointer (a : Mem.allocation) : Value.pointer =
  { Value.prov = Value.P_alloc a.Mem.id; addr = a.Mem.base; tag = Some a.Mem.base_tag }

(* [_sized] variants take the layout precomputed: the bytecode compiler
   resolves [Layout.size_of]/[align_of] once per binding instead of once per
   access. The unsized wrappers recompute it, exactly as the tree-walker
   always did. *)
let typed_read_sized (ec : ectx) (ptr : Value.pointer) (ty : Ast.ty) ~len ~align ~atomic :
    Value.t =
  let st = ec.st in
  if len = 0 then Value.V_unit
  else begin
    let thread = ec.thread in
    match
      Mem.check_access st.mem ~ptr ~len ~align ~write:false ~tid:ec.tid
        ~clock:thread.clock ~atomic
    with
    | Error err ->
      let kind, msg = classify_access_error err in
      report ec kind msg ~recover:(fun () -> Value.zero st.program ty)
    | Ok (alloc, offset, popped) -> (
      if st.config.trace then
        trace_popped st (Printf.sprintf "read of alloc %d" alloc.Mem.id) popped;
      if atomic then begin
        (* acquire: merge the location's release clock into this thread *)
        let sync = Mem.sync_clock_of st.mem alloc offset in
        thread.clock <- Vclock.merge thread.clock sync
      end;
      match Mem.read_value st.program alloc ~offset ty with
      | Ok v -> v
      | Error msg ->
        report ec Diag.Validity msg ~recover:(fun () -> Value.zero st.program ty))
  end

let typed_read (ec : ectx) (ptr : Value.pointer) (ty : Ast.ty) ~atomic : Value.t =
  let len = Layout.size_of ec.st.program ty in
  let align = Layout.align_of ec.st.program ty in
  typed_read_sized ec ptr ty ~len ~align ~atomic

let typed_write_sized (ec : ectx) (ptr : Value.pointer) (ty : Ast.ty) (v : Value.t)
    ~len ~align ~atomic : unit =
  let st = ec.st in
  if len = 0 then ()
  else begin
    let thread = ec.thread in
    match
      Mem.check_access st.mem ~ptr ~len ~align ~write:true ~tid:ec.tid
        ~clock:thread.clock ~atomic
    with
    | Error err ->
      let kind, msg = classify_access_error err in
      report ec kind msg ~recover:(fun () -> ())
    | Ok (alloc, offset, popped) ->
      if st.config.trace then
        trace_popped st (Printf.sprintf "write to alloc %d" alloc.Mem.id) popped;
      Mem.write_value st.program ~fn_addr:(fn_pointer st) alloc ~offset ty v;
      if atomic then
        (* release: later writes by this thread must not appear ordered
           before the release an acquirer synchronized with *)
        thread.clock <- Vclock.tick thread.clock ec.tid
  end

let typed_write (ec : ectx) (ptr : Value.pointer) (ty : Ast.ty) (v : Value.t) ~atomic : unit =
  let len = Layout.size_of ec.st.program ty in
  let align = Layout.align_of ec.st.program ty in
  typed_write_sized ec ptr ty v ~len ~align ~atomic

(* ------------------------------------------------------------------ *)
(* Integer arithmetic with Rust overflow semantics (debug profile: panic) *)

let width_bits = function
  | Ast.I8 -> 8
  | Ast.I16 -> 16
  | Ast.I32 -> 32
  | Ast.I64 | Ast.Usize -> 64

let fits_width (n : int64) (w : Ast.int_width) =
  match w with
  | Ast.I64 -> true
  | Ast.Usize -> true (* 64-bit wrap handled by unsigned checks below *)
  | _ ->
    let bits = width_bits w in
    let lo = Int64.neg (Int64.shift_left 1L (bits - 1)) in
    let hi = Int64.sub (Int64.shift_left 1L (bits - 1)) 1L in
    Int64.compare n lo >= 0 && Int64.compare n hi <= 0

let truncate_to_width (n : int64) (w : Ast.int_width) =
  match w with
  | Ast.I64 | Ast.Usize -> n
  | _ ->
    let bits = width_bits w in
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left n shift) shift

let arith_panic op = raise (Panic_exc (Printf.sprintf "attempt to %s with overflow" op))

let eval_arith (op : Ast.binop) (a : int64) (b : int64) (w : Ast.int_width) : int64 =
  let unsigned = w = Ast.Usize in
  (* overflow is checked on the untruncated result; only then is the value
     narrowed to the width (at which point narrowing is the identity) *)
  let check name result =
    if unsigned then begin
      (* unsigned 64-bit: overflow iff result is "less" than an operand for
         add, or borrow for sub, detected via unsigned compare *)
      match op with
      | Ast.Add -> if Int64.unsigned_compare result a < 0 then arith_panic name else result
      | Ast.Sub -> if Int64.unsigned_compare a b < 0 then arith_panic name else result
      | Ast.Mul ->
        if (not (Int64.equal a 0L)) && not (Int64.equal (Int64.unsigned_div result a) b)
        then arith_panic name
        else result
      | _ -> result
    end
    else if fits_width result w then result
    else arith_panic name
  in
  match op with
  | Ast.Add ->
    let r = Int64.add a b in
    if (not unsigned) && w = Ast.I64 && Int64.compare a 0L > 0 && Int64.compare b 0L > 0
       && Int64.compare r 0L < 0
    then arith_panic "add"
    else if (not unsigned) && w = Ast.I64 && Int64.compare a 0L < 0
            && Int64.compare b 0L < 0 && Int64.compare r 0L >= 0
    then arith_panic "add"
    else truncate_to_width (check "add" r) w
  | Ast.Sub ->
    let r = Int64.sub a b in
    if (not unsigned) && w = Ast.I64 && Int64.compare b 0L < 0 && Int64.compare a 0L > 0
       && Int64.compare r 0L < 0
    then arith_panic "subtract"
    else if (not unsigned) && w = Ast.I64 && Int64.compare b 0L > 0
            && Int64.compare a 0L < 0 && Int64.compare r 0L > 0
    then arith_panic "subtract"
    else truncate_to_width (check "subtract" r) w
  | Ast.Mul ->
    let r = Int64.mul a b in
    if (not unsigned) && w = Ast.I64 && (not (Int64.equal a 0L))
       && not (Int64.equal (Int64.div r a) b)
    then arith_panic "multiply"
    else truncate_to_width (check "multiply" r) w
  | Ast.Div ->
    if Int64.equal b 0L then raise (Panic_exc "attempt to divide by zero")
    else if unsigned then Int64.unsigned_div a b
    else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then arith_panic "divide"
    else Int64.div a b
  | Ast.Rem ->
    if Int64.equal b 0L then
      raise (Panic_exc "attempt to calculate the remainder with a divisor of zero")
    else if unsigned then Int64.unsigned_rem a b
    else Int64.rem a b
  | Ast.Bit_and -> Int64.logand a b
  | Ast.Bit_or -> Int64.logor a b
  | Ast.Bit_xor -> Int64.logxor a b
  | Ast.Shl ->
    let bits = width_bits w in
    if Int64.compare b 0L < 0 || Int64.compare b (Int64.of_int bits) >= 0 then
      arith_panic "shift left"
    else truncate_to_width (Int64.shift_left a (Int64.to_int b)) w
  | Ast.Shr ->
    let bits = width_bits w in
    if Int64.compare b 0L < 0 || Int64.compare b (Int64.of_int bits) >= 0 then
      arith_panic "shift right"
    else if w = Ast.Usize then Int64.shift_right_logical a (Int64.to_int b)
    else truncate_to_width (Int64.shift_right a (Int64.to_int b)) w
  | Ast.And | Ast.Or | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    invalid_arg "Machine.eval_arith: not an arithmetic operator"

let compare_ints (w : Ast.int_width) a b =
  if w = Ast.Usize then Int64.unsigned_compare a b else Int64.compare a b

(* ------------------------------------------------------------------ *)
(* Effects for cooperative threading *)

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn_eff : (int -> unit) -> int Effect.t
  | Join_eff : int -> bool Effect.t
        (** resumes with [false] if the handle was invalid / already joined *)

let yield_point (st : state) =
  st.steps <- st.steps + 1;
  if st.steps > st.config.max_steps then raise Step_limit_exc;
  if Hashtbl.length st.threads > 1 then Effect.perform Yield

(* ------------------------------------------------------------------ *)
(* Value-level operation cores. Both engines dispatch differently (AST walk
   vs. instruction array) but land on these same functions, so every report
   string, recovery value and evaluation outcome is shared code. *)

let value_as_int ec (v : Value.t) : int64 =
  match v with
  | Value.V_int (n, _) -> n
  | Value.V_bool b -> if b then 1L else 0L
  | _ ->
    report ec Diag.Validity
      ("expected an integer value, found " ^ Value.to_display v)
      ~recover:(fun () -> 0L)

let rec ty_of_value st (v : Value.t) : Ast.ty =
  match v with
  | Value.V_unit -> Ast.T_unit
  | Value.V_bool _ -> Ast.T_bool
  | Value.V_int (_, w) -> Ast.T_int w
  | Value.V_ptr (_, ty) -> ty
  | Value.V_fn (name, _) -> (
    match Ast.lookup_fn st.program name with
    | Some f -> fn_sig f
    | None -> Ast.T_fn ([], Ast.T_unit))
  | Value.V_handle _ -> Ast.T_handle
  | Value.V_tuple vs -> Ast.T_tuple (List.map (ty_of_value st) vs)
  | Value.V_array [] -> Ast.T_array (Ast.T_unit, 0)
  | Value.V_array (v :: rest) -> Ast.T_array (ty_of_value st v, List.length rest + 1)
  | Value.V_bytes b -> Ast.T_array (Ast.T_int Ast.I8, Array.length b)

let apply_unop ec op (v : Value.t) : Value.t =
  match (op, v) with
  | Ast.Neg, Value.V_int (n, w) ->
    if (not (fits_width (Int64.neg n) w)) || (w <> Ast.Usize && Int64.equal n Int64.min_int)
    then raise (Panic_exc "attempt to negate with overflow")
    else Value.V_int (Int64.neg n, w)
  | Ast.Not, Value.V_bool b -> Value.V_bool (not b)
  | Ast.Not, Value.V_int (n, w) -> Value.V_int (truncate_to_width (Int64.lognot n) w, w)
  | _ ->
    report ec Diag.Validity "invalid operand for unary operator"
      ~recover:(fun () -> v)

(* non-short-circuit binary operators; [And]/[Or] never reach here *)
let apply_binop ec op (va : Value.t) (vb : Value.t) : Value.t =
  match (va, vb) with
  | Value.V_int (x, w), Value.V_int (y, _) -> (
    match op with
    | Ast.Eq -> Value.V_bool (Int64.equal x y)
    | Ast.Ne -> Value.V_bool (not (Int64.equal x y))
    | Ast.Lt -> Value.V_bool (compare_ints w x y < 0)
    | Ast.Le -> Value.V_bool (compare_ints w x y <= 0)
    | Ast.Gt -> Value.V_bool (compare_ints w x y > 0)
    | Ast.Ge -> Value.V_bool (compare_ints w x y >= 0)
    | _ -> Value.V_int (eval_arith op x y w, w))
  | Value.V_bool x, Value.V_bool y -> (
    match op with
    | Ast.Eq -> Value.V_bool (x = y)
    | Ast.Ne -> Value.V_bool (x <> y)
    | _ ->
      report ec Diag.Validity "invalid bool operands" ~recover:(fun () -> va))
  | Value.V_ptr (p, _), Value.V_ptr (q, _) -> (
    match op with
    | Ast.Eq -> Value.V_bool (p.Value.addr = q.Value.addr)
    | Ast.Ne -> Value.V_bool (p.Value.addr <> q.Value.addr)
    | _ ->
      report ec Diag.Validity "invalid pointer operands" ~recover:(fun () -> va))
  | Value.V_unit, Value.V_unit -> (
    match op with
    | Ast.Eq -> Value.V_bool true
    | Ast.Ne -> Value.V_bool false
    | _ -> report ec Diag.Validity "invalid unit operands" ~recover:(fun () -> va))
  | _ ->
    report ec Diag.Validity "mismatched operand types at runtime"
      ~recover:(fun () -> va)

let retag_pointer ec (ptr : Value.pointer) (perm : Borrow.perm) : Value.pointer =
  match Mem.retag ec.st.mem ~ptr ~perm with
  | Ok (p, popped) ->
    if ec.st.config.trace then begin
      trace_event ec.st "retag: new tag %s (%s) at addr %d"
        (match p.Value.tag with Some t -> string_of_int t | None -> "?")
        (perm_name perm) p.Value.addr;
      trace_popped ec.st "retag" popped
    end;
    p
  | Error err ->
    let kind, msg = classify_access_error err in
    report ec kind msg ~recover:(fun () -> ptr)

let apply_cast ec (v : Value.t) (target : Ast.ty) : Value.t =
  match (v, target) with
  | Value.V_int (n, _), Ast.T_int w ->
    let truncated = truncate_to_width n w in
    let adjusted = if w = Ast.Usize then n else truncated in
    Value.V_int (adjusted, w)
  | Value.V_bool b, Ast.T_int w -> Value.V_int ((if b then 1L else 0L), w)
  | Value.V_ptr (p, src_ty), Ast.T_raw (_, _) -> (
    (* ref-to-raw is a retag; raw-to-raw just repaints the type *)
    match src_ty with
    | Ast.T_ref (m, _) ->
      let perm =
        match (m, target) with
        | Ast.Mut, Ast.T_raw (Ast.Mut, _) -> Borrow.Shared_rw
        | _, _ -> Borrow.Shared_ro
      in
      let retagged = retag_pointer ec p perm in
      Value.V_ptr (retagged, target)
    | _ -> Value.V_ptr (p, target))
  | Value.V_ptr (p, _), Ast.T_int w ->
    (* ptr-to-int observes the address and exposes the allocation *)
    Mem.expose ec.st.mem p;
    Value.V_int (truncate_to_width (Int64.of_int p.Value.addr) w, w)
  | Value.V_int (n, _), Ast.T_raw _ ->
    Value.V_ptr ({ Value.prov = Value.P_wild; addr = Int64.to_int n; tag = None }, target)
  | Value.V_fn (name, _), Ast.T_int w ->
    Value.V_int (Int64.of_int (fn_pointer ec.st name).Value.addr, w)
  | Value.V_fn (name, _), Ast.T_raw _ -> Value.V_ptr (fn_pointer ec.st name, target)
  | _ ->
    report ec Diag.Validity
      (Printf.sprintf "unsupported cast of %s to %s" (Value.to_display v)
         (Pretty.ty target))
      ~recover:(fun () -> Value.zero ec.st.program target)

let apply_transmute ec (v : Value.t) (target : Ast.ty) : Value.t =
  let st = ec.st in
  let bytes =
    match v with
    | Value.V_bytes b -> Array.map (function Some n -> Mem.B_int n | None -> Mem.B_uninit) b
    | _ -> Mem.encode st.program ~fn_addr:(fn_pointer st) (ty_of_value st v) v
  in
  if Array.length bytes <> Layout.size_of st.program target then
    report ec Diag.Validity "transmute size mismatch at runtime"
      ~recover:(fun () -> Value.zero st.program target)
  else
    match Mem.decode st.program target bytes with
    | Ok out -> out
    | Error msg ->
      report ec Diag.Validity ("transmute produced an invalid value: " ^ msg)
        ~recover:(fun () -> Value.zero st.program target)

(* [vn] has already been through [value_as_int], matching the evaluation
   order of the tree-walker (pointer first, count second, coercion third). *)
let apply_offset ec (vp : Value.t) (vn : int64) : Value.t =
  match vp with
  | Value.V_ptr (ptr, (Ast.T_raw (_, elem) as rty)) -> (
    let elem_size = max 1 (Layout.size_of ec.st.program elem) in
    let new_addr = ptr.Value.addr + (Int64.to_int vn * elem_size) in
    let moved = { ptr with Value.addr = new_addr } in
    match ptr.Value.prov with
    | Value.P_alloc id -> (
      match Mem.find_alloc ec.st.mem id with
      | Some a ->
        let off = new_addr - a.Mem.base in
        if off < 0 || off > a.Mem.size then
          report ec Diag.Dangling_pointer
            (Printf.sprintf
               "pointer arithmetic leaves the bounds of allocation %d (offset %d of %d)"
               id off a.Mem.size)
            ~recover:(fun () -> Value.V_ptr (moved, rty))
        else Value.V_ptr (moved, rty)
      | None ->
        report ec Diag.Dangling_pointer "offset of pointer to unknown allocation"
          ~recover:(fun () -> Value.V_ptr (moved, rty)))
    | Value.P_wild | Value.P_none | Value.P_fn _ -> Value.V_ptr (moved, rty))
  | _ ->
    report ec Diag.Validity "offset on a non-raw-pointer" ~recover:(fun () -> vp)

let apply_alloc ec ~size ~align : Value.t =
  let bad msg =
    report ec Diag.Alloc msg ~recover:(fun () ->
        Value.V_ptr (Value.null_pointer, Ast.T_raw (Ast.Mut, Ast.T_int Ast.I8)))
  in
  if size <= 0 then bad (Printf.sprintf "alloc with invalid size %d" size)
  else if align <= 0 || align land (align - 1) <> 0 then
    bad (Printf.sprintf "alloc with invalid alignment %d" align)
  else begin
    let a = tracked_allocate ec.st ~size ~align ~kind:Mem.Heap in
    trace_event ec.st "alloc: allocation %d (%d bytes, align %d, base tag %d)"
      a.Mem.id size align a.Mem.base_tag;
    Value.V_ptr (base_pointer a, Ast.T_raw (Ast.Mut, Ast.T_int Ast.I8))
  end

let len_of_place_ty ec (ty : Ast.ty) : Value.t =
  match ty with
  | Ast.T_array (_, n) -> Value.V_int (Int64.of_int n, Ast.Usize)
  | _ ->
    report ec Diag.Validity "len() of a non-array place"
      ~recover:(fun () -> Value.V_int (0L, Ast.Usize))

let len_of_value ec (v : Value.t) : Value.t =
  match v with
  | Value.V_array vs -> Value.V_int (Int64.of_int (List.length vs), Ast.Usize)
  | Value.V_ptr (_, Ast.T_ref (_, Ast.T_array (_, n))) ->
    Value.V_int (Int64.of_int n, Ast.Usize)
  | v ->
    report ec Diag.Validity ("len() of non-array value " ^ Value.to_display v)
      ~recover:(fun () -> Value.V_int (0L, Ast.Usize))

let input_value (st : state) idx : Value.t =
  let inputs = st.config.inputs in
  let v = if idx >= 0 && idx < Array.length inputs then inputs.(idx) else 0L in
  Value.V_int (v, Ast.I64)

let atomic_load_v ec (v : Value.t) : Value.t =
  match v with
  | Value.V_ptr (ptr, _) -> typed_read ec ptr (Ast.T_int Ast.I64) ~atomic:true
  | _ ->
    report ec Diag.Validity "atomic_load on a non-pointer"
      ~recover:(fun () -> Value.V_int (0L, Ast.I64))

(* fetch-and-add with acquire/release semantics: the load acquires the
   location's release clock, the store releases this thread's *)
let atomic_add_v ec (pv : Value.t) (delta : int64) : Value.t =
  match pv with
  | Value.V_ptr (ptr, _) -> (
    let old = typed_read ec ptr (Ast.T_int Ast.I64) ~atomic:true in
    match old with
    | Value.V_int (o, _) ->
      typed_write ec ptr (Ast.T_int Ast.I64)
        (Value.V_int (eval_arith Ast.Add o delta Ast.I64, Ast.I64))
        ~atomic:true;
      Value.V_int (o, Ast.I64)
    | other -> other)
  | _ ->
    report ec Diag.Validity "atomic_add on a non-pointer"
      ~recover:(fun () -> Value.V_int (0L, Ast.I64))

let atomic_store_v ec (pv : Value.t) (v : Value.t) : unit =
  match pv with
  | Value.V_ptr (ptr, _) -> typed_write ec ptr (Ast.T_int Ast.I64) v ~atomic:true
  | _ -> report ec Diag.Validity "atomic_store on a non-pointer" ~recover:(fun () -> ())

let dealloc_v ec (pv : Value.t) ~size ~align : unit =
  let st = ec.st in
  match pv with
  | Value.V_ptr (ptr, _) -> (
    let resolve () =
      match ptr.Value.prov with
      | Value.P_alloc id -> Mem.find_alloc st.mem id
      | Value.P_wild -> Mem.alloc_containing st.mem ptr.Value.addr
      | Value.P_fn _ | Value.P_none -> None
    in
    match resolve () with
    | None ->
      report ec Diag.Alloc "dealloc of a pointer that was never allocated"
        ~recover:(fun () -> ())
    | Some a ->
      if not a.Mem.live then
        report ec Diag.Alloc "double free" ~recover:(fun () -> ())
      else if a.Mem.kind <> Mem.Heap then
        report ec Diag.Alloc "dealloc of non-heap memory" ~recover:(fun () -> ())
      else if ptr.Value.addr <> a.Mem.base then
        report ec Diag.Alloc "dealloc of a pointer not at the allocation start"
          ~recover:(fun () -> ())
      else if size <> a.Mem.size || align <> a.Mem.align then
        report ec Diag.Alloc
          (Printf.sprintf
             "dealloc with wrong layout: (size %d, align %d) vs allocated (size %d, align %d)"
             size align a.Mem.size a.Mem.align)
          ~recover:(fun () -> ())
      else begin
        (* freeing is a write-like access for the race detector *)
        let thread = ec.thread in
        (match
           Mem.check_access st.mem ~ptr ~len:a.Mem.size ~align:1 ~write:true
             ~tid:ec.tid ~clock:thread.clock ~atomic:false
         with
        | Error err ->
          let kind, msg = classify_access_error err in
          report ec kind msg ~recover:(fun () -> ())
        | Ok _ -> ());
        trace_event st "dealloc: freed allocation %d (%d bytes)" a.Mem.id a.Mem.size;
        Mem.deallocate st.mem a
      end)
  | v ->
    report ec Diag.Alloc ("dealloc of non-pointer " ^ Value.to_display v)
      ~recover:(fun () -> ())

let join_v ec (v : Value.t) : unit =
  match v with
  | Value.V_handle tid -> (
    match Hashtbl.find_opt ec.st.threads tid with
    | None ->
      report ec Diag.Concurrency
        (Printf.sprintf "join of invalid thread handle %d" tid)
        ~recover:(fun () -> ())
    | Some t -> (
      match t.status with
      | T_joined ->
        report ec Diag.Concurrency
          (Printf.sprintf "thread %d joined twice" tid)
          ~recover:(fun () -> ())
      | T_runnable | T_blocked_on _ | T_done ->
        let ok = Effect.perform (Join_eff tid) in
        if ok then begin
          (* join synchronizes: acquire the child's final clock *)
          let self = ec.thread in
          self.clock <- Vclock.tick (Vclock.merge self.clock t.clock) ec.tid
        end
        else
          report ec Diag.Concurrency
            (Printf.sprintf "join of thread %d failed" tid)
            ~recover:(fun () -> ())))
  | _ ->
    report ec Diag.Concurrency "join of a non-handle value" ~recover:(fun () -> ())

(* ------------------------------------------------------------------ *)
(* Place projection cores: pointer+type pairs, engine-independent *)

let place_deref ec (v : Value.t) : Value.pointer * Ast.ty =
  match v with
  | Value.V_ptr (ptr, (Ast.T_ref (_, t) | Ast.T_raw (_, t))) -> (ptr, t)
  | Value.V_ptr (ptr, _) -> (ptr, Ast.T_unit)
  | _ ->
    report ec Diag.Validity
      ("dereference of non-pointer value " ^ Value.to_display v)
      ~recover:(fun () -> (Value.null_pointer, Ast.T_unit))

let place_index ec (bptr : Value.pointer) (bty : Ast.ty) (i : int) :
    Value.pointer * Ast.ty =
  match bty with
  | Ast.T_array (elem, n) ->
    if i < 0 || i >= n then
      raise
        (Panic_exc
           (Printf.sprintf "index out of bounds: the len is %d but the index is %d" n i))
    else
      let elem_size = Layout.size_of ec.st.program elem in
      ({ bptr with Value.addr = bptr.Value.addr + (i * elem_size) }, elem)
  | _ ->
    report ec Diag.Validity "indexing a non-array place"
      ~recover:(fun () -> (bptr, Ast.T_unit))

let place_index_unchecked ec (bptr : Value.pointer) (bty : Ast.ty) (i : int) :
    Value.pointer * Ast.ty =
  match bty with
  | Ast.T_array (elem, _) ->
    (* no bounds check: the access layer flags out-of-range addresses *)
    let elem_size = Layout.size_of ec.st.program elem in
    ({ bptr with Value.addr = bptr.Value.addr + (i * elem_size) }, elem)
  | _ ->
    report ec Diag.Validity "get_unchecked on a non-array place"
      ~recover:(fun () -> (bptr, Ast.T_unit))

let place_field ec (bptr : Value.pointer) (bty : Ast.ty) (i : int) :
    Value.pointer * Ast.ty =
  match bty with
  | Ast.T_tuple ts when i >= 0 && i < List.length ts ->
    let off = List.nth (Layout.tuple_offsets ec.st.program ts) i in
    ({ bptr with Value.addr = bptr.Value.addr + off }, List.nth ts i)
  | _ ->
    report ec Diag.Validity "tuple field access on a non-tuple place"
      ~recover:(fun () -> (bptr, Ast.T_unit))

let place_union_field ec (bptr : Value.pointer) (bty : Ast.ty) (fld : string) :
    Value.pointer * Ast.ty =
  match bty with
  | Ast.T_union u -> (
    match Ast.lookup_union ec.st.program u with
    | Some decl -> (
      match List.assoc_opt fld decl.Ast.ufields with
      | Some fty -> (bptr, fty)  (* all union fields live at offset 0 *)
      | None ->
        report ec Diag.Validity ("unknown union field " ^ fld)
          ~recover:(fun () -> (bptr, Ast.T_unit)))
    | None ->
      report ec Diag.Validity ("unknown union type " ^ u)
        ~recover:(fun () -> (bptr, Ast.T_unit)))
  | _ ->
    report ec Diag.Validity "union field access on a non-union place"
      ~recover:(fun () -> (bptr, Ast.T_unit))

(* ------------------------------------------------------------------ *)
(* Call-target resolution: the reporting half of [call_value], shared so
   both engines emit identical diagnostics; the actual frame push is
   engine-specific. *)

type callee_resolution =
  | Call_fn of int            (* index into [fn_table] *)
  | Call_recover of Value.t   (* a diagnostic was reported; use this value *)

let resolve_callee ec (callee : Value.t) : callee_resolution =
  let st = ec.st in
  match callee with
  | Value.V_fn (name, _) -> (
    match fn_index st name with
    | Some idx -> Call_fn idx
    | None ->
      Call_recover
        (report ec Diag.Func_call ("call of unknown function " ^ name)
           ~recover:(fun () -> Value.V_unit)))
  | Value.V_ptr (p, claimed) -> (
    match p.Value.prov with
    | Value.P_fn idx when idx >= 0 && idx < Array.length st.fn_table ->
      let f = st.fn_table.(idx) in
      let actual = fn_sig f in
      if not (Ast.equal_ty actual claimed) then
        Call_recover
          (report ec Diag.Func_pointer
             (Printf.sprintf
                "calling %s through a pointer of incompatible type %s (actual %s)"
                f.Ast.fname (Pretty.ty claimed) (Pretty.ty actual))
             ~recover:(fun () ->
               match claimed with
               | Ast.T_fn (_, ret) -> Value.zero st.program ret
               | _ -> Value.V_unit))
      else Call_fn idx
    | Value.P_fn _ ->
      Call_recover
        (report ec Diag.Func_call "call through a corrupt function-table pointer"
           ~recover:(fun () -> Value.V_unit))
    | Value.P_alloc _ | Value.P_wild | Value.P_none ->
      let what = if p.Value.addr = 0 then "a null pointer" else "a non-function pointer" in
      Call_recover
        (report ec Diag.Func_call ("attempting to call " ^ what)
           ~recover:(fun () ->
             match claimed with
             | Ast.T_fn (_, ret) -> Value.zero st.program ret
             | _ -> Value.V_unit)))
  | v ->
    Call_recover
      (report ec Diag.Func_call ("attempting to call value " ^ Value.to_display v)
         ~recover:(fun () -> Value.V_unit))

let call_arity_error ec fname ~got ~want (ret : Ast.ty) : Value.t =
  report ec Diag.Func_pointer
    (Printf.sprintf "function %s called with %d arguments (expects %d)" fname got want)
    ~recover:(fun () -> Value.zero ec.st.program ret)

let missing_return_value ec fname (ret : Ast.ty) : Value.t =
  report ec Diag.Validity
    (Printf.sprintf "function %s finished without returning a value" fname)
    ~recover:(fun () -> Value.zero ec.st.program ret)

(* ------------------------------------------------------------------ *)
(* Scheduler: the harness [drive] owns thread creation, the seeded pick
   loop, join bookkeeping and the post-run deadlock/leak sweep. An engine
   supplies [init_statics] and [main_body]; spawned threads enter through
   the [Spawn_eff] body closure the engine built. *)

type pending = { p_tid : int; run : unit -> unit }

let drive ~(config : config) ~(program : Ast.program) ~(info : Typecheck.info)
    ~(init_statics : state -> int -> unit) ~(main_body : state -> int -> unit) :
    run_result =
  (* deterministic tags per run: diagnostics mention tag numbers, and repair
     traces built from them must not depend on how many runs came before *)
  Borrow.reset_tags ();
  let fn_table = Array.of_list program.Ast.funcs in
  let fn_index_tbl = Hashtbl.create (Array.length fn_table) in
  Array.iteri
    (fun i (f : Ast.fn_decl) ->
      (* first declaration wins, as the linear scan it replaces did *)
      if not (Hashtbl.mem fn_index_tbl f.Ast.fname) then
        Hashtbl.add fn_index_tbl f.Ast.fname i)
    fn_table;
  let st =
    {
      config;
      program;
      info;
      mem = Mem.create ();
      fn_table;
      fn_index_tbl;
      statics_tbl = Hashtbl.create 8;
      threads = Hashtbl.create 8;
      next_tid = 0;
      steps = 0;
      outputs = [];
      diags = [];
      events = [];
      stop = None;
      sched_rng = Rb_util.Rng.create (config.seed * 2 + 1);
      cur_stmt = -1;
      allocs = 0;
      alloc_bytes = 0;
    }
  in
  let runnable : pending list ref = ref [] in
  let enqueue p = runnable := !runnable @ [ p ] in
  (* joiners waiting on a tid *)
  let waiters : (int, pending list) Hashtbl.t = Hashtbl.create 8 in
  let new_thread () =
    let tid = st.next_tid in
    st.next_tid <- tid + 1;
    let t = { tid; clock = Vclock.tick Vclock.empty tid; status = T_runnable } in
    Hashtbl.replace st.threads tid t;
    t
  in
  let record_stop outcome = if st.stop = None then st.stop <- Some outcome in
  let rec spawn_thread (parent : thread option) (body : int -> unit) : int =
    let t = new_thread () in
    (* a second thread exists: start checking and recording race metadata
       (everything before this point is ordered before every new thread) *)
    if Hashtbl.length st.threads > 1 then Mem.set_racing st.mem;
    (match parent with
    | Some p ->
      (* child inherits the parent's history; both sides then advance *)
      t.clock <- Vclock.tick (Vclock.merge t.clock p.clock) t.tid;
      p.clock <- Vclock.tick p.clock p.tid
    | None -> ());
    enqueue { p_tid = t.tid; run = (fun () -> run_thread t body) };
    t.tid
  and run_thread (t : thread) (body : int -> unit) : unit =
    let open Effect.Deep in
    match_with
      (fun () -> body t.tid)
      ()
      {
        retc =
          (fun () ->
            t.status <- T_done;
            (* wake joiners *)
            match Hashtbl.find_opt waiters t.tid with
            | Some ws ->
              Hashtbl.remove waiters t.tid;
              List.iter enqueue ws
            | None -> ());
        exnc =
          (fun e ->
            t.status <- T_done;
            (match Hashtbl.find_opt waiters t.tid with
            | Some ws ->
              Hashtbl.remove waiters t.tid;
              List.iter enqueue ws
            | None -> ());
            match e with
            | Panic_exc msg -> record_stop (Panicked msg)
            | Ub_fatal d -> record_stop (Ub d)
            | Step_limit_exc -> record_stop Step_limit
            | Resource_exc msg -> record_stop (Resource_limit msg)
            | e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  enqueue { p_tid = t.tid; run = (fun () -> continue k ()) })
            | Spawn_eff body' ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let tid = spawn_thread (Some t) body' in
                  continue k tid)
            | Join_eff target ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Hashtbl.find_opt st.threads target with
                  | None -> continue k false
                  | Some tgt -> (
                    match tgt.status with
                    | T_done ->
                      tgt.status <- T_joined;
                      continue k true
                    | T_joined -> continue k false
                    | T_runnable | T_blocked_on _ ->
                      t.status <- T_blocked_on target;
                      let resume =
                        {
                          p_tid = t.tid;
                          run =
                            (fun () ->
                              t.status <- T_runnable;
                              (match Hashtbl.find_opt st.threads target with
                              | Some tgt2 when tgt2.status = T_done ->
                                tgt2.status <- T_joined
                              | _ -> ());
                              continue k true);
                        }
                      in
                      let existing =
                        Option.value (Hashtbl.find_opt waiters target) ~default:[]
                      in
                      Hashtbl.replace waiters target (existing @ [ resume ])))
            | _ -> None);
      }
  in
  (* initialize statics, then fall through into main on the same thread *)
  let static_error = ref None in
  let main_tid =
    spawn_thread None (fun tid ->
        (try init_statics st tid
         with (Panic_exc _ | Ub_fatal _ | Step_limit_exc | Resource_exc _) as e ->
           static_error := Some e);
        (match !static_error with Some e -> raise e | None -> ());
        main_body st tid)
  in
  (* scheduler loop *)
  let rec loop () =
    match st.stop with
    | Some _ -> ()
    | None -> (
      match !runnable with
      | [] -> ()
      | pendings ->
        let n = List.length pendings in
        let idx = Rb_util.Rng.int st.sched_rng n in
        let chosen = List.nth pendings idx in
        runnable := List.filteri (fun i _ -> i <> idx) pendings;
        chosen.run ();
        loop ())
  in
  loop ();
  (* post-run checks *)
  let main_done =
    match Hashtbl.find_opt st.threads main_tid with
    | Some t -> t.status = T_done || t.status = T_joined
    | None -> false
  in
  let final_diags = ref [] in
  (match st.stop with
  | Some _ -> ()
  | None ->
    if not main_done then begin
      (* all remaining threads blocked on joins: deadlock *)
      let d =
        Diag.make ~thread:main_tid Diag.Concurrency
          "deadlock: every thread is blocked on a join"
      in
      final_diags := d :: !final_diags
    end
    else begin
      (* leaked threads: main finished while children still exist unjoined *)
      Hashtbl.iter
        (fun tid t ->
          if tid <> main_tid && t.status <> T_joined then
            final_diags :=
              Diag.make ~thread:tid Diag.Concurrency
                (Printf.sprintf "thread %d was never joined before main exited" tid)
              :: !final_diags)
        st.threads;
      (* leaked heap allocations *)
      List.iter
        (fun (a : Mem.allocation) ->
          final_diags :=
            Diag.make ~thread:main_tid Diag.Alloc
              (Printf.sprintf "memory leak: allocation %d (%d bytes) never freed"
                 a.Mem.id a.Mem.size)
            :: !final_diags)
        (Mem.live_heap_allocations st.mem)
    end);
  st.diags <- !final_diags @ st.diags;
  let outcome =
    match st.stop with
    | Some o -> o
    | None -> (
      match st.diags with
      | [] -> Finished
      | d :: _ -> (
        match config.mode with
        | Stop_first -> Ub d
        | Collect _ -> if !final_diags <> [] then Ub (List.hd !final_diags) else Finished))
  in
  let diags = List.rev st.diags in
  (* a panic or a blown resource budget each count as one error on top of
     the recorded UB diagnostics; a step-limit stop stays cost-free, as it
     always has (spin loops are scored by their diagnostics alone) *)
  let aborted = match outcome with Panicked _ | Resource_limit _ -> true | _ -> false in
  let result =
    {
      outcome;
      output = List.rev st.outputs;
      diags;
      steps = st.steps;
      error_count = List.length diags + (if aborted then 1 else 0);
      events = List.rev st.events;
    }
  in
  (* one event per run, never per step: the interpreter hot loop stays
     untouched and the counters ride along for free *)
  Obs.Trace.note "interp" (fun () ->
      [ ("steps", Obs.Trace.I st.steps);
        ("allocs", Obs.Trace.I st.allocs);
        ("alloc_bytes", Obs.Trace.I st.alloc_bytes);
        ("diags", Obs.Trace.I (List.length diags));
        ( "outcome",
          Obs.Trace.S
            (match outcome with
            | Finished -> "finished"
            | Panicked _ -> "panicked"
            | Ub _ -> "ub"
            | Step_limit -> "step-limit"
            | Resource_limit _ -> "resource-limit") ) ]);
  Obs.Metrics.inc "interp.runs";
  Obs.Metrics.inc ~by:st.steps "interp.steps";
  Obs.Metrics.inc ~by:st.allocs "interp.allocs";
  result

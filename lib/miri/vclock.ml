(* Sorted-by-tid immutable pair array. Thread counts are tiny (the corpus
   tops out at a handful), so linear scans beat a balanced map and, more
   importantly, the race-detector hot path ([set] with an unchanged epoch,
   [merge] with a dominated side) returns its argument physically instead of
   rebuilding map spines — steady-state race checking allocates nothing. *)

type t = (int * int) array

let empty : t = [||]

let get (c : t) tid =
  let n = Array.length c in
  let rec go i =
    if i >= n then 0
    else
      let t, e = Array.unsafe_get c i in
      if t = tid then e else if t > tid then 0 else go (i + 1)
  in
  go 0

let set (c : t) tid v =
  let n = Array.length c in
  let rec find i =
    if i >= n then -1
    else
      let t, _ = Array.unsafe_get c i in
      if t = tid then i else if t > tid then -1 else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then
    if snd c.(i) = v then c  (* unchanged: physically the same clock *)
    else begin
      let out = Array.copy c in
      out.(i) <- (tid, v);
      out
    end
  else begin
    let out = Array.make (n + 1) (tid, v) in
    let rec fill src dst =
      if src < n then
        let ((t, _) as p) = c.(src) in
        if t < tid then begin
          out.(dst) <- p;
          fill (src + 1) (dst + 1)
        end
        else begin
          (* out.(dst) already holds (tid, v) *)
          Array.blit c src out (dst + 1) (n - src)
        end
    in
    fill 0 0;
    out
  end

let tick c tid = set c tid (get c tid + 1)

let merge (a : t) (b : t) =
  if a == b || Array.length b = 0 then a
  else if Array.length a = 0 then b
  else begin
    let na = Array.length a and nb = Array.length b in
    (* count the merged size, and whether one side already dominates *)
    let rec count i j n a_covers b_covers =
      if i >= na && j >= nb then (n, a_covers, b_covers)
      else if j >= nb then (n + (na - i), a_covers, false)
      else if i >= na then (n + (nb - j), false, b_covers)
      else
        let ta, ea = a.(i) and tb, eb = b.(j) in
        if ta = tb then
          count (i + 1) (j + 1) (n + 1) (a_covers && ea >= eb) (b_covers && eb >= ea)
        else if ta < tb then count (i + 1) j (n + 1) a_covers false
        else count i (j + 1) (n + 1) false b_covers
    in
    let n, a_covers, b_covers = count 0 0 0 true true in
    if a_covers then a
    else if b_covers then b
    else begin
      let out = Array.make n (0, 0) in
      let rec fill i j k =
        if i >= na then Array.blit b j out k (nb - j)
        else if j >= nb then Array.blit a i out k (na - i)
        else
          let ((ta, ea) as pa) = a.(i) and ((tb, eb) as pb) = b.(j) in
          if ta = tb then begin
            out.(k) <- (if ea >= eb then pa else pb);
            fill (i + 1) (j + 1) (k + 1)
          end
          else if ta < tb then begin
            out.(k) <- pa;
            fill (i + 1) j (k + 1)
          end
          else begin
            out.(k) <- pb;
            fill i (j + 1) (k + 1)
          end
      in
      fill 0 0 0;
      out
    end
  end

let leq (a : t) (b : t) =
  a == b
  ||
  let na = Array.length a and nb = Array.length b in
  (* both sorted: advance through b once instead of a search per entry *)
  let rec go i j =
    i >= na
    ||
    let ta, ea = Array.unsafe_get a i in
    if j >= nb then ea <= 0 && go (i + 1) j
    else
      let tb, eb = Array.unsafe_get b j in
      if tb < ta then go i (j + 1)
      else if tb = ta then ea <= eb && go (i + 1) (j + 1)
      else ea <= 0 && go (i + 1) j
  in
  go 0 0

let to_string (c : t) =
  let entries =
    Array.to_list c |> List.map (fun (tid, e) -> Printf.sprintf "%d:%d" tid e)
  in
  "{" ^ String.concat ", " entries ^ "}"

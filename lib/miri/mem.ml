open Minirust

type alloc_kind = Heap | Stack | Global

type byte = B_uninit | B_int of int | B_frag of Value.pointer * int

type bucket = {
  mutable na_write : Vclock.t;
  mutable na_read : Vclock.t;
  mutable at_write : Vclock.t;
  mutable at_read : Vclock.t;
  mutable sync : Vclock.t;
}

(* Packed per-allocation contents. The payload always holds the concrete
   byte value — for a stored pointer fragment that is the corresponding
   address byte, matching what [byte_as_int] reports for [B_frag] — so the
   integer decode path never consults the fragment table. The bitmap tracks
   initialization (bit set = initialized, [uninit_count] makes the
   all-initialized fast path O(1)), and the sparse fragment table carries
   provenance for stored pointer bytes ([frag_count] = 0 means no lookup on
   reads). Race buckets live here too, one lazily-created bucket per 8-byte
   granule, so race checks are a plain array index instead of a tuple-keyed
   hash probe. *)
type store = {
  mutable data : Bytes.t;
  mutable initmap : Bytes.t;
  mutable uninit_count : int;
  mutable frag_ptr : Value.pointer array;
      (* parallel to [data]; entry meaningful only where [frag_idx] <> 255.
         [||] until the first pointer is stored in this allocation. *)
  mutable frag_idx : Bytes.t;  (* fragment index per byte; '\255' = none *)
  mutable frag_count : int;
  mutable buckets : bucket option array;
  (* Pre-racing fast path: before a second thread exists, every access is by
     thread 0 and [Vclock.set] just overwrites thread 0's epoch — so the
     whole bucket collapses to "last write epoch, last read epoch" per
     granule, two plain int stores instead of bucket records and clock
     updates. 0 = never accessed. A real bucket, seeded from these (a clock
     [{0: e}] per nonzero epoch, exactly what eager recording would have
     built), materializes lazily on the first atomic access or once racing
     is latched; a materialized bucket then owns the granule and the flat
     entries go stale. [||] until first accessed. *)
  mutable nw_epoch : int array;
  mutable nr_epoch : int array;
}

type allocation = {
  id : int;
  base : int;
  size : int;
  align : int;
  kind : alloc_kind;
  mutable live : bool;
  store : store;
  borrows : Borrow.t;
  base_tag : int;
  mutable exposed : bool;
}

type access_error =
  | Dead of string
  | Oob of string
  | No_alloc of string
  | Misaligned of string
  | Borrow_bad of Borrow.violation
  | Race of string
  | Not_exposed of string

(* One growable array indexes every allocation ever made, and it serves
   both lookups at once: ids are handed out densely from 1 in allocation
   order, so [index.(id - 1)] is the id lookup, and bases are handed out
   monotonically and never reused, so the same array is base-sorted and
   wildcard address resolution is a binary search. Dead allocations stay in
   the index so use-after-free keeps its precise diagnostic.

   [racing] starts false and is latched on by the interpreter when a second
   thread is spawned. While it is off, race buckets still record epochs
   (later diagnostics print whole bucket clocks, which may include pre-spawn
   accesses) but skip the conflict checks: a single thread cannot race, and
   any thread spawned later inherits the spawner's clock, which dominates
   every pre-spawn access. *)
type t = {
  mutable next_addr : int;
  mutable next_id : int;
  mutable index : allocation array;  (* sorted by base; length [index_len] *)
  mutable index_len : int;
  mutable racing : bool;
}

let create () =
  { next_addr = 0x1001; next_id = 1; index = [||]; index_len = 0;
    racing = false }

let set_racing t = t.racing <- true

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let fresh_store size =
  { data = Bytes.create size;
    initmap = Bytes.make ((size + 7) / 8) '\000';
    uninit_count = size;
    frag_ptr = [||];
    frag_idx = Bytes.empty;
    frag_count = 0;
    buckets = [||];
    nw_epoch = [||];
    nr_epoch = [||] }

let index_append t a =
  let cap = Array.length t.index in
  if t.index_len = cap then begin
    let bigger = Array.make (max 64 (2 * cap)) a in
    Array.blit t.index 0 bigger 0 t.index_len;
    t.index <- bigger
  end;
  t.index.(t.index_len) <- a;
  t.index_len <- t.index_len + 1

let allocate t ~size ~align ~kind =
  if size < 0 then invalid_arg "Mem.allocate: negative size";
  if not (is_power_of_two align) then invalid_arg "Mem.allocate: bad alignment";
  let base = Layout.round_up t.next_addr align in
  (* Guard gap so off-by-one pointers never fall into a neighbour. The odd
     37 also prevents low-alignment allocations from accidentally landing on
     8-byte boundaries, which would mask unaligned-access UB. *)
  t.next_addr <- base + size + 37;
  let id = t.next_id in
  t.next_id <- id + 1;
  let base_tag = Borrow.fresh_tag () in
  let a =
    { id; base; size; align; kind; live = true;
      store = fresh_store size;
      borrows = Borrow.create ~base_tag; base_tag; exposed = false }
  in
  index_append t a;
  a

let deallocate _t a =
  a.live <- false;
  (* Dead allocations are unreachable for every further access (the Dead
     check fires before any race/borrow/data consultation), so their race
     metadata would only leak across a campaign. Drop it now. *)
  a.store.buckets <- [||];
  a.store.nw_epoch <- [||];
  a.store.nr_epoch <- [||]

let find_alloc t id =
  if id >= 1 && id <= t.index_len then Some t.index.(id - 1) else None

let alloc_containing t addr =
  (* Greatest base <= addr, then the containment check. Ranges are disjoint
     (guard gaps, addresses never reused), so this finds the unique candidate
     the old newest-first linear scan would have found. Zero-size allocations
     claim one byte ([max size 1]) exactly as before. *)
  let arr = t.index in
  let n = t.index_len in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref n in
    (* invariant: arr.(i).base <= addr for i < lo; > addr for i >= hi *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid).base <= addr then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then None
    else
      let a = arr.(!lo - 1) in
      if addr < a.base + max a.size 1 then Some a else None
  end

let live_heap_allocations t =
  (* newest-first, as the leak check's diagnostic order depends on it *)
  let out = ref [] in
  for i = 0 to t.index_len - 1 do
    let a = t.index.(i) in
    if a.live && a.kind = Heap then out := a :: !out
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Packed-store primitives *)

let init_get s i =
  Char.code (Bytes.unsafe_get s.initmap (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_init s i =
  let j = i lsr 3 in
  let m = 1 lsl (i land 7) in
  let c = Char.code (Bytes.unsafe_get s.initmap j) in
  if c land m = 0 then begin
    Bytes.unsafe_set s.initmap j (Char.unsafe_chr (c lor m));
    s.uninit_count <- s.uninit_count - 1
  end

let clear_init s i =
  let j = i lsr 3 in
  let m = 1 lsl (i land 7) in
  let c = Char.code (Bytes.unsafe_get s.initmap j) in
  if c land m <> 0 then begin
    Bytes.unsafe_set s.initmap j (Char.unsafe_chr (c land lnot m));
    s.uninit_count <- s.uninit_count + 1
  end

let popcount8 n =
  let n = n - ((n lsr 1) land 0x55) in
  let n = (n land 0x33) + ((n lsr 2) land 0x33) in
  (n + (n lsr 4)) land 0x0F

let set_init_range s ~offset ~len =
  if s.uninit_count > 0 then
    if len = 8 && offset land 7 = 0 then begin
      (* whole bitmap byte: the overwhelmingly common 8-byte aligned store *)
      let j = offset lsr 3 in
      let c = Char.code (Bytes.unsafe_get s.initmap j) in
      if c <> 0xFF then begin
        Bytes.unsafe_set s.initmap j '\xFF';
        s.uninit_count <- s.uninit_count - popcount8 (0xFF lxor c)
      end
    end
    else for i = offset to offset + len - 1 do set_init s i done

let range_fully_init s ~offset ~len =
  s.uninit_count = 0
  || (len = 8 && offset land 7 = 0
      && Char.code (Bytes.unsafe_get s.initmap (offset lsr 3)) = 0xFF)
  ||
  let rec go i = i >= offset + len || (init_get s i && go (i + 1)) in
  go offset

let no_frag = '\255'

let ensure_frags s =
  if Array.length s.frag_ptr = 0 then begin
    let size = Bytes.length s.data in
    s.frag_ptr <- Array.make size Value.null_pointer;
    s.frag_idx <- Bytes.make size no_frag
  end

let frag_at s i =
  if s.frag_count = 0 then None
  else
    let c = Bytes.unsafe_get s.frag_idx i in
    if c = no_frag then None else Some (s.frag_ptr.(i), Char.code c)

let frag_remove s i =
  if s.frag_count > 0 && Bytes.unsafe_get s.frag_idx i <> no_frag then begin
    Bytes.unsafe_set s.frag_idx i no_frag;
    s.frag_count <- s.frag_count - 1
  end

let frag_set s i p idx =
  ensure_frags s;
  if Bytes.unsafe_get s.frag_idx i = no_frag then s.frag_count <- s.frag_count + 1;
  Bytes.unsafe_set s.frag_idx i (Char.unsafe_chr idx);
  s.frag_ptr.(i) <- p

let clear_frags_range s ~offset ~len =
  if s.frag_count > 0 then
    for i = offset to offset + len - 1 do frag_remove s i done

(* ------------------------------------------------------------------ *)
(* Race metadata *)

let fresh_bucket () =
  { na_write = Vclock.empty; na_read = Vclock.empty; at_write = Vclock.empty;
    at_read = Vclock.empty; sync = Vclock.empty }

let bucket_of a idx =
  let s = a.store in
  let n = Array.length s.buckets in
  if idx >= n then begin
    (* grow once to the allocation's full granule count: sizes are small and
       this keeps every later access a plain array index *)
    let needed = max (idx + 1) ((a.size + 7) / 8) in
    let bigger = Array.make needed None in
    Array.blit s.buckets 0 bigger 0 n;
    s.buckets <- bigger
  end;
  match s.buckets.(idx) with
  | Some b -> b
  | None ->
    let b = fresh_bucket () in
    (* seed from the pre-racing flat epochs: the clock eager recording
       would have left is exactly {0: last-epoch} per nonzero class *)
    (if Array.length s.nw_epoch > idx then begin
       let w = s.nw_epoch.(idx) in
       if w > 0 then b.na_write <- Vclock.set Vclock.empty 0 w;
       let r = s.nr_epoch.(idx) in
       if r > 0 then b.na_read <- Vclock.set Vclock.empty 0 r
     end);
    s.buckets.(idx) <- Some b;
    b

(* Top-level (not nested in [race_check]) so the per-access hot path does
   not allocate closure blocks. *)
let conflict vc ~clock ~tid ~write what =
  if not (Vclock.leq vc clock) then
    Some (Printf.sprintf
            "conflicting %s: earlier access %s not ordered before thread %d's %s"
            what (Vclock.to_string vc) tid
            (if write then "write" else "read"))
  else None

(* [check] is false until the interpreter latches racing on (second thread
   spawned): a single thread cannot conflict with itself, so the leq checks
   are skipped — but epochs are still RECORDED, because race diagnostics
   print the whole bucket clock and a pre-spawn epoch can legitimately
   appear in a later message. Recording is cheap in steady state: an
   unchanged epoch returns the clock physically unchanged. *)
let check_bucket b ~tid ~clock ~write ~atomic ~check =
  let issue =
    if not check then None
    else if atomic then
      if write then
        match conflict b.na_write ~clock ~tid ~write "non-atomic write vs atomic write" with
        | Some _ as s -> s
        | None -> conflict b.na_read ~clock ~tid ~write "non-atomic read vs atomic write"
      else conflict b.na_write ~clock ~tid ~write "non-atomic write vs atomic read"
    else if write then
      match conflict b.na_write ~clock ~tid ~write "write-after-write" with
      | Some _ as s -> s
      | None -> (
        match conflict b.na_read ~clock ~tid ~write "write-after-read" with
        | Some _ as s -> s
        | None -> (
          match conflict b.at_write ~clock ~tid ~write "write vs atomic write" with
          | Some _ as s -> s
          | None -> conflict b.at_read ~clock ~tid ~write "write vs atomic read"))
    else
      match conflict b.na_write ~clock ~tid ~write "read-after-write" with
      | Some _ as s -> s
      | None -> conflict b.at_write ~clock ~tid ~write "read vs atomic write"
  in
  match issue with
  | Some msg -> Error msg
  | None ->
    (* [Vclock.set] with an unchanged epoch returns the map unchanged
       (physically), so steady-state marking does not allocate *)
    let epoch = Vclock.get clock tid in
    (if atomic then
       if write then begin
         b.at_write <- Vclock.set b.at_write tid epoch;
         b.sync <- Vclock.merge b.sync clock
       end
       else b.at_read <- Vclock.set b.at_read tid epoch
     else if write then b.na_write <- Vclock.set b.na_write tid epoch
     else b.na_read <- Vclock.set b.na_read tid epoch);
    Ok ()

let rec check_buckets a idx last ~tid ~clock ~write ~atomic ~check =
  if idx > last then Ok ()
  else
    match check_bucket (bucket_of a idx) ~tid ~clock ~write ~atomic ~check with
    | Ok () -> check_buckets a (idx + 1) last ~tid ~clock ~write ~atomic ~check
    | Error _ as e -> e

(* Pre-racing non-atomic recording: two int stores per granule. A granule
   whose bucket already materialized (an atomic access touched it) records
   into the bucket so the later seed does not clobber it. *)
let rec record_flat a idx last ~tid ~write ~epoch =
  if idx <= last then begin
    let s = a.store in
    (match if Array.length s.buckets > idx then s.buckets.(idx) else None with
    | Some b ->
      if write then b.na_write <- Vclock.set b.na_write tid epoch
      else b.na_read <- Vclock.set b.na_read tid epoch
    | None ->
      if Array.length s.nw_epoch = 0 then begin
        let n = max (last + 1) ((a.size + 7) / 8) in
        s.nw_epoch <- Array.make n 0;
        s.nr_epoch <- Array.make n 0
      end;
      if write then s.nw_epoch.(idx) <- epoch else s.nr_epoch.(idx) <- epoch);
    record_flat a (idx + 1) last ~tid ~write ~epoch
  end

let race_check t a ~offset ~len ~tid ~clock ~write ~atomic =
  if len <= 0 then Ok ()
  else begin
    let first = offset / 8 and last = (offset + len - 1) / 8 in
    if (not t.racing) && not atomic then begin
      record_flat a first last ~tid ~write ~epoch:(Vclock.get clock tid);
      Ok ()
    end
    else check_buckets a first last ~tid ~clock ~write ~atomic ~check:t.racing
  end

let sync_clock_of _t a offset = (bucket_of a (offset / 8)).sync

(* ------------------------------------------------------------------ *)
(* Access validation *)

let check_access t ~ptr ~len ~align ~write ~tid ~clock ~atomic =
  let open Value in
  let fail_no_alloc () =
    if ptr.addr = 0 then Error (No_alloc "null pointer dereference")
    else Error (No_alloc (Printf.sprintf "no allocation at address %d" ptr.addr))
  in
  let resolve () =
    match ptr.prov with
    | P_alloc id -> (
      match find_alloc t id with
      | Some a -> Ok a
      | None -> fail_no_alloc ())
    | P_wild -> (
      match alloc_containing t ptr.addr with
      | None -> fail_no_alloc ()
      | Some a ->
        if a.exposed then Ok a
        else
          Error
            (Not_exposed
               (Printf.sprintf
                  "wildcard pointer into allocation %d whose address was never exposed"
                  a.id)))
    | P_fn _ -> Error (No_alloc "data access through a function pointer")
    | P_none -> fail_no_alloc ()
  in
  match resolve () with
  | Error _ as e -> e
  | Ok a ->
    if not a.live then
      Error
        (Dead
           (Printf.sprintf "use of deallocated memory (allocation %d at address %d)"
              a.id ptr.addr))
    else begin
      let offset = ptr.addr - a.base in
      if offset < 0 || offset + len > a.size then
        Error
          (Oob
             (Printf.sprintf
                "out-of-bounds access: %d bytes at offset %d of %d-byte allocation %d"
                len offset a.size a.id))
      else if align > 1 && ptr.addr mod align <> 0 then
        Error
          (Misaligned
             (Printf.sprintf "address %d is not aligned to %d bytes" ptr.addr align))
      else if len = 0 then Ok (a, offset, [])
      else
        match Borrow.access a.borrows ~tag:ptr.tag ~write with
        | Error v -> Error (Borrow_bad v)
        | Ok popped -> (
          match race_check t a ~offset ~len ~tid ~clock ~write ~atomic with
          | Error msg -> Error (Race msg)
          | Ok () -> Ok (a, offset, popped))
    end

(* ------------------------------------------------------------------ *)
(* Byte view (tests, transmute boundary) *)

let byte_at s i =
  if not (init_get s i) then B_uninit
  else
    match frag_at s i with
    | Some (p, idx) -> B_frag (p, idx)
    | None -> B_int (Char.code (Bytes.get s.data i))

let write_byte s i = function
  | B_uninit ->
    frag_remove s i;
    clear_init s i
  | B_int n ->
    frag_remove s i;
    Bytes.set s.data i (Char.chr (n land 0xFF));
    set_init s i
  | B_frag ((p : Value.pointer), idx) ->
    Bytes.set s.data i (Char.chr ((p.Value.addr lsr (8 * idx)) land 0xFF));
    frag_set s i p idx;
    set_init s i

let read_bytes a ~offset ~len = Array.init len (fun i -> byte_at a.store (offset + i))

let write_bytes a ~offset bytes =
  Array.iteri (fun i b -> write_byte a.store (offset + i) b) bytes

let expose t (ptr : Value.pointer) =
  match ptr.prov with
  | Value.P_alloc id -> (
    match find_alloc t id with Some a -> a.exposed <- true | None -> ())
  | Value.P_wild -> (
    match alloc_containing t ptr.addr with Some a -> a.exposed <- true | None -> ())
  | Value.P_fn _ | Value.P_none -> ()

let retag t ~(ptr : Value.pointer) ~perm =
  let open Value in
  match ptr.prov with
  | P_alloc id -> (
    match find_alloc t id with
    | None -> Error (No_alloc "retag of pointer to unknown allocation")
    | Some a ->
      if not a.live then Error (Dead "retag of pointer into deallocated memory")
      else (
        match Borrow.retag a.borrows ~parent:ptr.tag perm with
        | Error v -> Error (Borrow_bad v)
        | Ok (tag, popped) -> Ok ({ ptr with tag = Some tag }, popped)))
  | P_wild -> (
    match alloc_containing t ptr.addr with
    | None -> Error (No_alloc "retag of wildcard pointer outside any allocation")
    | Some a ->
      if not a.live then Error (Dead "retag of wildcard pointer into dead memory")
      else if not a.exposed then
        Error (Not_exposed "retag of wildcard pointer into a never-exposed allocation")
      else (
        match Borrow.retag a.borrows ~parent:None perm with
        | Error v -> Error (Borrow_bad v)
        | Ok (tag, popped) ->
          Ok ({ prov = P_alloc a.id; addr = ptr.addr; tag = Some tag }, popped)))
  | P_fn _ -> Error (No_alloc "retag of a function pointer")
  | P_none -> Error (No_alloc "retag of a pointer without provenance")

(* ------------------------------------------------------------------ *)
(* Typed encoding — pure byte-array form (transmute, tests) *)

let encode_int64 value len =
  Array.init len (fun i ->
      B_int (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL)))

let encode_pointer (ptr : Value.pointer) =
  Array.init 8 (fun i -> B_frag (ptr, i))

let width_len = function
  | Ast.I8 -> 1
  | Ast.I16 -> 2
  | Ast.I32 -> 4
  | Ast.I64 | Ast.Usize -> 8

let rec encode program ~fn_addr (ty : Ast.ty) (v : Value.t) : byte array =
  let open Value in
  match (ty, v) with
  | Ast.T_unit, _ -> [||]
  | Ast.T_bool, V_bool b -> [| B_int (if b then 1 else 0) |]
  | Ast.T_int w, V_int (n, _) -> encode_int64 n (width_len w)
  | (Ast.T_ref _ | Ast.T_raw _), V_ptr (p, _) -> encode_pointer p
  | Ast.T_fn _, V_ptr (p, _) -> encode_pointer p
  | Ast.T_fn _, V_fn (name, _) -> encode_pointer (fn_addr name)
  | Ast.T_handle, V_handle h -> encode_int64 (Int64.of_int h) 8
  | Ast.T_array (elem, n), V_array vs ->
    let elem_size = Layout.size_of program elem in
    let out = Array.make (elem_size * n) B_uninit in
    List.iteri
      (fun i v ->
        Array.blit (encode program ~fn_addr elem v) 0 out (i * elem_size) elem_size)
      vs;
    out
  | Ast.T_tuple ts, V_tuple vs ->
    let out = Array.make (Layout.size_of program ty) B_uninit in
    List.iter2
      (fun (t, off) v ->
        let enc = encode program ~fn_addr t v in
        Array.blit enc 0 out off (Array.length enc))
      (List.combine ts (Layout.tuple_offsets program ts))
      vs;
    out
  | Ast.T_union _, V_bytes bytes ->
    Array.map (function Some n -> B_int n | None -> B_uninit) bytes
  | _ ->
    (* A value/type mismatch is an interpreter invariant violation, not a
       program UB: the typechecker rules it out. *)
    invalid_arg
      (Printf.sprintf "Mem.encode: cannot encode %s at type %s" (Value.to_display v)
         (Pretty.ty ty))

let byte_as_int = function
  | B_int n -> Some n
  | B_frag (ptr, i) -> Some ((ptr.Value.addr lsr (8 * i)) land 0xFF)
  | B_uninit -> None

let decode_int bytes =
  let n = Array.length bytes in
  let rec go i acc =
    if i >= n then Ok acc
    else
      match byte_as_int bytes.(i) with
      | None -> Error "read of uninitialized memory"
      | Some b -> go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  go 0 0L

let sign_extend value bits =
  if bits >= 64 then value
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left value shift) shift

let decode_pointer bytes =
  (* Preserved provenance requires all 8 bytes to be consecutive fragments of
     the same pointer. Anything else reconstructs a wildcard address. *)
  let all_frags =
    Array.for_all (function B_frag _ -> true | B_int _ | B_uninit -> false) bytes
  in
  if all_frags && Array.length bytes = 8 then begin
    match bytes.(0) with
    | B_frag (p0, 0) ->
      let consistent = ref true in
      Array.iteri
        (fun i b ->
          match b with
          | B_frag (p, idx) when idx = i && p = p0 -> ()
          | B_frag _ | B_int _ | B_uninit -> consistent := false)
        bytes;
      if !consistent then Ok p0
      else
        Result.map
          (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
          (decode_int bytes)
    | B_frag _ | B_int _ | B_uninit ->
      Result.map
        (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
        (decode_int bytes)
  end
  else
    Result.map
      (fun addr -> Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None })
      (decode_int bytes)

let rec decode program (ty : Ast.ty) (bytes : byte array) :
    (Value.t, string) result =
  let open Value in
  match ty with
  | Ast.T_unit -> Ok V_unit
  | Ast.T_bool -> (
    match byte_as_int bytes.(0) with
    | None -> Error "read of uninitialized memory at type bool"
    | Some 0 -> Ok (V_bool false)
    | Some 1 -> Ok (V_bool true)
    | Some n -> Error (Printf.sprintf "invalid bool byte %d (must be 0 or 1)" n))
  | Ast.T_int w -> (
    match decode_int bytes with
    | Error e -> Error e
    | Ok raw ->
      let bits = 8 * width_len w in
      let v = match w with Ast.Usize -> raw | _ -> sign_extend raw bits in
      Ok (V_int (v, w)))
  | Ast.T_raw _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_ref _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p ->
      if p.addr = 0 then Error "constructed an invalid value: null reference"
      else Ok (V_ptr (p, ty)))
  | Ast.T_fn _ -> (
    match decode_pointer bytes with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_handle -> (
    match decode_int bytes with
    | Error e -> Error e
    | Ok raw -> Ok (V_handle (Int64.to_int raw)))
  | Ast.T_array (elem, n) ->
    let elem_size = Layout.size_of program elem in
    let rec go i acc =
      if i >= n then Ok (V_array (List.rev acc))
      else
        match decode program elem (Array.sub bytes (i * elem_size) elem_size) with
        | Error e -> Error e
        | Ok v -> go (i + 1) (v :: acc)
    in
    go 0 []
  | Ast.T_tuple ts ->
    let offsets = Layout.tuple_offsets program ts in
    let rec go ts offs acc =
      match (ts, offs) with
      | [], [] -> Ok (V_tuple (List.rev acc))
      | t :: ts', off :: offs' -> (
        match decode program t (Array.sub bytes off (Layout.size_of program t)) with
        | Error e -> Error e
        | Ok v -> go ts' offs' (v :: acc))
      | _ -> Error "internal: tuple arity mismatch"
    in
    go ts offsets []
  | Ast.T_union _ ->
    Ok (V_bytes (Array.map byte_as_int bytes))

(* ------------------------------------------------------------------ *)
(* Typed access straight on the packed store — the interpreter hot path.
   These must produce exactly the values and error strings the byte-array
   [encode]/[decode] pair would: the golden-corpus test holds them to it. *)

let read_raw_int s ~offset ~len =
  if range_fully_init s ~offset ~len then
    if len = 8 then Some (Bytes.get_int64_le s.data offset)
    else begin
      let rec go i acc =
        if i >= len then acc
        else
          go (i + 1)
            (Int64.logor acc
               (Int64.shift_left
                  (Int64.of_int (Char.code (Bytes.unsafe_get s.data (offset + i))))
                  (8 * i)))
      in
      Some (go 0 0L)
    end
  else None

let read_raw_wildcard s ~offset =
  match read_raw_int s ~offset ~len:8 with
  | None -> Error "read of uninitialized memory"
  | Some addr -> Ok Value.{ prov = P_wild; addr = Int64.to_int addr; tag = None }

let read_raw_pointer s ~offset =
  (* Mirrors [decode_pointer]: provenance survives only when all 8 bytes are
     consecutive fragments of one pointer; otherwise the payload bytes (which
     for fragments are exactly the address bytes) rebuild a wildcard. The
     common case — a pointer stored whole, read whole — is 8 unhashed array
     probes and one physical-equality chain. *)
  if s.frag_count >= 8 && Bytes.unsafe_get s.frag_idx offset = '\000' then begin
    let p0 = s.frag_ptr.(offset) in
    let rec all i =
      i >= 8
      || (Char.code (Bytes.unsafe_get s.frag_idx (offset + i)) = i
          && (let p = s.frag_ptr.(offset + i) in
              p == p0 || p = p0)
          && all (i + 1))
    in
    if all 1 then Ok p0 else read_raw_wildcard s ~offset
  end
  else read_raw_wildcard s ~offset

let rec read_value program (a : allocation) ~offset (ty : Ast.ty) :
    (Value.t, string) result =
  let open Value in
  let s = a.store in
  match ty with
  | Ast.T_unit -> Ok V_unit
  | Ast.T_bool ->
    if not (init_get s offset) then Error "read of uninitialized memory at type bool"
    else (
      match Char.code (Bytes.unsafe_get s.data offset) with
      | 0 -> Ok (V_bool false)
      | 1 -> Ok (V_bool true)
      | n -> Error (Printf.sprintf "invalid bool byte %d (must be 0 or 1)" n))
  | Ast.T_int w -> (
    let len = width_len w in
    match read_raw_int s ~offset ~len with
    | None -> Error "read of uninitialized memory"
    | Some raw ->
      let v = match w with Ast.Usize -> raw | _ -> sign_extend raw (8 * len) in
      Ok (V_int (v, w)))
  | Ast.T_raw _ -> (
    match read_raw_pointer s ~offset with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_ref _ -> (
    match read_raw_pointer s ~offset with
    | Error e -> Error e
    | Ok p ->
      if p.addr = 0 then Error "constructed an invalid value: null reference"
      else Ok (V_ptr (p, ty)))
  | Ast.T_fn _ -> (
    match read_raw_pointer s ~offset with
    | Error e -> Error e
    | Ok p -> Ok (V_ptr (p, ty)))
  | Ast.T_handle -> (
    match read_raw_int s ~offset ~len:8 with
    | None -> Error "read of uninitialized memory"
    | Some raw -> Ok (V_handle (Int64.to_int raw)))
  | Ast.T_array (elem, n) ->
    let elem_size = Layout.size_of program elem in
    let rec go i acc =
      if i >= n then Ok (V_array (List.rev acc))
      else
        match read_value program a ~offset:(offset + (i * elem_size)) elem with
        | Error e -> Error e
        | Ok v -> go (i + 1) (v :: acc)
    in
    go 0 []
  | Ast.T_tuple ts ->
    let offsets = Layout.tuple_offsets program ts in
    let rec go ts offs acc =
      match (ts, offs) with
      | [], [] -> Ok (V_tuple (List.rev acc))
      | t :: ts', off :: offs' -> (
        match read_value program a ~offset:(offset + off) t with
        | Error e -> Error e
        | Ok v -> go ts' offs' (v :: acc))
      | _ -> Error "internal: tuple arity mismatch"
    in
    go ts offsets []
  | Ast.T_union _ ->
    let size = Layout.size_of program ty in
    Ok
      (V_bytes
         (Array.init size (fun i ->
              if init_get s (offset + i) then
                Some (Char.code (Bytes.get s.data (offset + i)))
              else None)))

let write_raw_int s ~offset ~len v =
  clear_frags_range s ~offset ~len;
  if len = 8 then Bytes.set_int64_le s.data offset v
  else
    for i = 0 to len - 1 do
      Bytes.unsafe_set s.data (offset + i)
        (Char.unsafe_chr
           (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
    done;
  set_init_range s ~offset ~len

let write_raw_pointer s ~offset (p : Value.pointer) =
  ensure_frags s;
  (* the payload of a stored pointer is its address bytes, so integer reads
     of pointer memory never need the fragment table *)
  Bytes.set_int64_le s.data offset (Int64.of_int p.Value.addr);
  for i = 0 to 7 do
    let j = offset + i in
    if Bytes.unsafe_get s.frag_idx j = no_frag then
      s.frag_count <- s.frag_count + 1;
    Bytes.unsafe_set s.frag_idx j (Char.unsafe_chr i);
    s.frag_ptr.(j) <- p
  done;
  set_init_range s ~offset ~len:8

let mark_uninit_range s ~offset ~len =
  clear_frags_range s ~offset ~len;
  for i = offset to offset + len - 1 do clear_init s i done

let rec write_value program ~fn_addr (a : allocation) ~offset (ty : Ast.ty)
    (v : Value.t) : unit =
  let open Value in
  let s = a.store in
  match (ty, v) with
  | Ast.T_unit, _ -> ()
  | Ast.T_bool, V_bool b -> write_raw_int s ~offset ~len:1 (if b then 1L else 0L)
  | Ast.T_int w, V_int (n, _) -> write_raw_int s ~offset ~len:(width_len w) n
  | (Ast.T_ref _ | Ast.T_raw _), V_ptr (p, _) -> write_raw_pointer s ~offset p
  | Ast.T_fn _, V_ptr (p, _) -> write_raw_pointer s ~offset p
  | Ast.T_fn _, V_fn (name, _) -> write_raw_pointer s ~offset (fn_addr name)
  | Ast.T_handle, V_handle h -> write_raw_int s ~offset ~len:8 (Int64.of_int h)
  | Ast.T_array (elem, n), V_array vs ->
    let elem_size = Layout.size_of program elem in
    (* the byte-array encoder starts from all-uninit, so missing/padding
       bytes must end up uninitialized here too *)
    mark_uninit_range s ~offset ~len:(elem_size * n);
    List.iteri
      (fun i v -> write_value program ~fn_addr a ~offset:(offset + (i * elem_size)) elem v)
      vs
  | Ast.T_tuple ts, V_tuple vs ->
    mark_uninit_range s ~offset ~len:(Layout.size_of program ty);
    List.iter2
      (fun (t, off) v -> write_value program ~fn_addr a ~offset:(offset + off) t v)
      (List.combine ts (Layout.tuple_offsets program ts))
      vs
  | Ast.T_union _, V_bytes bytes ->
    Array.iteri
      (fun i ob ->
        match ob with
        | Some n ->
          frag_remove s (offset + i);
          Bytes.set s.data (offset + i) (Char.chr (n land 0xFF));
          set_init s (offset + i)
        | None ->
          frag_remove s (offset + i);
          clear_init s (offset + i))
      bytes
  | _ ->
    invalid_arg
      (Printf.sprintf "Mem.encode: cannot encode %s at type %s" (Value.to_display v)
         (Pretty.ty ty))

(** Simplified Stacked-Borrows discipline, per allocation.

    Each allocation carries one stack of borrow items. Creating a reference
    (retag) pushes an item derived from the parent tag; every typed access
    first performs the stack transition for its tag. An access through a tag
    that is no longer on the stack is undefined behaviour; the reported kind
    distinguishes the paper's "both borrow" row (a shared reference that was
    invalidated by a conflicting mutable borrow) from plain "stack borrow".

    Simplification vs Miri: stacks are per-allocation rather than per-byte;
    the corpus does not rely on disjoint sub-borrows (see DESIGN.md). *)

type perm =
  | Unique     (** [&mut]: exclusive read/write *)
  | Shared_rw  (** raw pointer derived from a mutable place *)
  | Shared_ro  (** [&]: shared read-only *)

type violation = {
  missing_tag : int;
  missing_perm : perm;
      (** permission the tag had when created on this stack; [Unique] for a
          tag this stack never created (the [detail] says so distinctly) *)
  write_through_ro : bool;    (** write attempted through a live [Shared_ro] *)
  detail : string;
}

type t
(** Mutable borrow stack of one allocation. *)

val create : base_tag:int -> t
(** Fresh stack containing only the allocation's base tag (Unique). *)

val fresh_tag : unit -> int
(** Domain-locally unique tags (also used by the allocator for base tags). *)

val reset_tags : unit -> unit
(** Reset the current domain's tag counter. [Machine.run] calls this on
    entry so the tags embedded in diagnostic text are a deterministic
    function of the program under test, independent of prior runs or of
    which domain executes the run. *)

val retag : t -> parent:int option -> perm -> (int * (int * perm) list, violation) result
(** Derive a new pointer with permission [perm] from [parent]. Performs the
    access implied by the new permission through the parent tag, pushes the
    new item, and returns its tag together with the items that access popped
    (for diagnostics/tracing). [parent = None] means a wildcard parent: the
    retag is performed from the base item. *)

val access : t -> tag:int option -> write:bool -> ((int * perm) list, violation) result
(** Perform a read or write access through [tag], returning the items the
    access invalidated (popped), top-first. [None] is a wildcard access,
    which only the exposed-ness check in the memory layer guards; here it
    succeeds without disturbing the stack. *)

val perm_of_tag : t -> int -> perm option
(** Permission a (live) tag holds on this stack. *)

val items : t -> (int * perm) list
(** Top-first snapshot, for debugging and tests. *)

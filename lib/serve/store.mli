(** Durable accepted-jobs store: the server's source of truth on disk.

    The admission contract is: a job id is sent back as ACCEPTED only
    after its submission record is durable. Every transition is its own
    atomically-written file (via {!Rb_util.Fsfile}, which fsyncs both the
    file and its directory entry), so a server killed with [kill -9] at
    any instant restarts into a consistent state and {!pending} returns
    exactly the accepted-but-unfinished jobs, in admission order.

    Layout under the state directory:
    {v
    queue/job-NNNNNN.json        durable admission record (id, tenant,
                                 backend, case names, wire opts)
    queue/done-NNNNNN.json       completion marker (cases/passed/failed)
    queue/cancelled-NNNNNN.json  cancellation marker
    results/job-NNNNNN.jsonl     stitched per-case reports, one
                                 Report.to_json line per case
    jobs/job-NNNNNN/             that job's Exec.Journal directory
    v}

    Crash windows are all safe: killed after admission → the job re-runs
    from its journal; killed after results but before the done marker →
    the re-run fully replays from the journal and rewrites byte-identical
    results; markers and results are never ambiguous because each is one
    atomic rename. *)

type submission = {
  id : int;
  tenant : string;
  backend : string;
  cases : string list;          (** resolved case names, campaign order *)
  opts : Exec.Campaign_opts.t;  (** wire subset *)
}

type completion = { cases : int; passed : int; failed : string option }

type status = Queued | Done of completion | Cancelled

type t

val open_dir : dir:string -> t
(** Create/scan the state directory; in-memory status mirrors disk. *)

val dir : t -> string

val admit :
  t -> tenant:string -> backend:string -> cases:string list ->
  opts:Exec.Campaign_opts.t -> submission
(** Assign the next id and durably record the submission before returning
    — the caller may acknowledge ACCEPTED the moment this returns. *)

val pending : t -> submission list
(** Accepted-but-unfinished jobs, admission order. On a fresh {!open_dir}
    this is the restart work list. *)

val submission : t -> int -> submission option
val status : t -> int -> status option

val counts : t -> int * int * int
(** (queued-or-running, completed, cancelled). *)

val cancel : t -> int -> bool
(** Durably cancel a still-queued job; [false] if unknown or past that. *)

val write_results : t -> int -> Rustbrain.Report.t list -> unit
(** Atomically (re)write the stitched results JSONL. *)

val complete : t -> int -> completion -> unit
(** Durably mark the job finished; call after {!write_results}. *)

val read_results : t -> int -> string option

val results_path : t -> int -> string

val journal_dir : t -> int -> string
(** Where this job's {!Exec.Checkpoint} write-ahead journal lives. *)

val progress : t -> int -> int
(** Journaled case-repairs so far (counts the job journal's record
    segments) — live progress that survives a kill. *)

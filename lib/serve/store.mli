(** Durable accepted-jobs store: the server's source of truth on disk.

    The admission contract is: a job id is sent back as ACCEPTED only
    after its submission record is durable. Every transition is its own
    atomically-written file (via {!Rb_util.Fsfile}, which fsyncs both the
    file and its directory entry), so a server killed with [kill -9] at
    any instant restarts into a consistent state and {!pending} returns
    exactly the accepted-but-unfinished jobs, in admission order.

    Layout under the state directory:
    {v
    queue/job-NNNNNN.json        durable admission record (id, tenant,
                                 backend, case names, wire opts)
    queue/done-NNNNNN.json       completion marker (cases/passed/failed)
    queue/cancelled-NNNNNN.json  cancellation marker
    queue/attempts-NNNNNN.json   crash-counting WAL (started/ended)
    results/job-NNNNNN.jsonl     stitched per-case reports, one
                                 Report.to_json line per case
    jobs/job-NNNNNN/             that job's Exec.Journal directory
    quarantined/job-NNNNNN.json  poison-job quarantine record
    quarantined/corrupt/         records fsck set aside, bytes preserved
    v}

    Queue and quarantine records are written as CRC-checksummed checked
    records ({!Rb_util.Fsfile.write_checked}); records from before the
    header existed are accepted as legacy. {!fsck} classifies every
    record — intact / legacy / healed / torn / corrupt — heals what it
    can and sets aside what it cannot, and {!open_dir} runs it as a
    startup scrub, so no state-dir damage is ever fatal.

    Crash windows are all safe: killed after admission → the job re-runs
    from its journal; killed after results but before the done marker →
    the re-run fully replays from the journal and rewrites byte-identical
    results; markers and results are never ambiguous because each is one
    atomic rename. *)

type submission = {
  id : int;
  tenant : string;
  backend : string;
  cases : string list;          (** resolved case names, campaign order *)
  opts : Exec.Campaign_opts.t;  (** wire subset *)
}

type completion = { cases : int; passed : int; failed : string option }

type quarantine_info = {
  crashes : int;            (** attempts that died before this record *)
  reason : string;
  backtrace : string;       (** last captured backtrace, may be empty *)
  last_case : string option;
      (** final case the runner journaled before dying — triage starts
          with "it died right after this" *)
}

type status =
  | Queued
  | Done of completion
  | Cancelled
  | Quarantined of quarantine_info

type t

val open_dir : ?scrub:bool -> dir:string -> unit -> t
(** Create/scan the state directory; in-memory status mirrors disk.
    [scrub] (default [true]) first runs {!fsck} with healing on — point
    it at a state dir that survived [kill -9] or disk rot and it comes
    up with the damage classified and contained, never an exception. *)

val dir : t -> string

val admit :
  t -> tenant:string -> backend:string -> cases:string list ->
  opts:Exec.Campaign_opts.t -> submission
(** Assign the next id and durably record the submission before returning
    — the caller may acknowledge ACCEPTED the moment this returns. *)

val pending : t -> submission list
(** Accepted-but-unfinished jobs, admission order. On a fresh {!open_dir}
    this is the restart work list (quarantined jobs excluded). *)

val submission : t -> int -> submission option
val status : t -> int -> status option

val counts : t -> int * int * int * int
(** (queued-or-running, completed, cancelled, quarantined). *)

val cancel : t -> int -> bool
(** Durably cancel a still-queued job; [false] if unknown or past that. *)

val write_results : t -> int -> Rustbrain.Report.t list -> unit
(** Atomically (re)write the stitched results JSONL. *)

val complete : t -> int -> completion -> unit
(** Durably mark the job finished (and its attempt cleanly ended); call
    after {!write_results}. *)

val read_results : t -> int -> string option

val results_path : t -> int -> string

val journal_dir : t -> int -> string
(** Where this job's {!Exec.Checkpoint} write-ahead journal lives. *)

val progress : t -> int -> int
(** Journaled case-repairs so far (counts the job journal's record
    segments) — live progress that survives a kill. *)

(** {2 Crash accounting}

    A tiny per-job WAL ([queue/attempts-NNNNNN.json]) holding two
    counters: attempts started and attempts cleanly ended. The
    difference is the number of attempts that crashed — a runner domain
    dying, a watchdog abandonment, or the whole server killed with the
    job in flight — and it survives restarts because the record is read
    back by {!open_dir}. *)

val begin_attempt : t -> int -> unit
(** Durably bump the started counter; call before handing the job to a
    runner slot. *)

val end_attempt : t -> int -> unit
(** Durably mark every started attempt as ended — the attempt concluded
    under the server's control (completion, isolated failure, or
    cancellation), so it was not a crash. *)

val crash_count : t -> int -> int
(** started − ended: attempts that never concluded cleanly. *)

(** {2 Quarantine}

    A job that keeps killing its runner is poison: re-running it forever
    converts one bad input into a crash loop for the whole fleet. Once
    its {!crash_count} reaches the server's threshold it is moved to
    [Quarantined] — durable, excluded from {!pending}, its journal and
    last backtrace preserved for triage. *)

val quarantine : t -> int -> reason:string -> backtrace:string -> quarantine_info
(** Durably quarantine the job, capturing the current crash count and
    the last journaled case. *)

val quarantined : t -> (int * quarantine_info) list
(** All quarantined jobs, id order. *)

(** {2 fsck}

    Classify (and optionally repair) every durable record under a state
    directory. Detected damage and the action taken:
    - checked record with a torn tail or failing CRC → set aside under
      [quarantined/corrupt/] (bytes preserved for triage)
    - verified prefix followed by junk → rewritten clean ([`Healed])
    - stale [.tmp.<pid>] files from interrupted atomic writes → removed
    - results JSONL with a torn trailing line → tail dropped; interior
      rot → whole file set aside
    - garbage journal segment or manifest → set aside so resume
      recomputes from the surviving frontier instead of refusing
    - conflicting done+cancelled markers → completion wins; orphan
      markers (no admission record) → set aside

    Never raises on record damage; healing failures degrade to
    reporting. *)

type fsck_issue = {
  rel_path : string;  (** relative to the state dir *)
  severity : [ `Healed | `Torn | `Corrupt ];
  detail : string;    (** what was wrong *)
  action : string;    (** what fsck did (or would do, in a dry run) *)
}

type fsck_report = {
  scanned : int;      (** records examined *)
  intact : int;       (** checksum-verified (or fully valid) records *)
  legacy : int;       (** pre-checksum records accepted as-is *)
  issues : fsck_issue list;
}

val fsck : ?heal:bool -> dir:string -> unit -> fsck_report
(** Scan the state directory under [dir]. [heal] (default [true])
    applies the repairs; [heal:false] is a dry run that only reports. *)

val fsck_count : [ `Healed | `Torn | `Corrupt ] -> fsck_report -> int

val severity_label : [ `Healed | `Torn | `Corrupt ] -> string

val fsck_report_to_json : fsck_report -> Rb_util.Json.t

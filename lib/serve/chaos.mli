(** Seeded socket chaos harness for the repair server.

    Drives a live server socket through the faults real clients and real
    networks produce — writes split at arbitrary byte boundaries,
    connections dying mid-frame, framing headers that lie, readers that
    stop reading, connection churn — in a reproducible seeded order.
    After every fault a fresh well-behaved connection must get a clean
    STATUS reply: the property under test is that a fault's blast radius
    is one connection, never the event loop.

    In-process and deterministic by construction: the fault sequence and
    every size/variant choice comes from {!Rb_util.Rng}, so a failing
    seed is a repro, not an anecdote. *)

type fault =
  | Split_write           (** valid frame, written in 1–3-byte dribbles *)
  | Mid_frame_disconnect  (** partial frame, then close *)
  | Garbage_frame         (** zero/oversized declared length, or junk *)
  | Slowloris             (** request replies, never read them *)
  | Churn                 (** connections opened and closed idle *)

val fault_label : fault -> string

val all_faults : fault list

val plan : seed:int -> steps:int -> fault list
(** The fault sequence a given seed produces (same RNG as {!run}). *)

type step_result = {
  step : int;
  fault : fault;
  detail : string;   (** what the fault concretely did *)
  probe_ok : bool;   (** did the post-fault STATUS probe round-trip? *)
}

type outcome = {
  steps : step_result list;
  survived : bool;  (** every probe answered *)
}

val probe : ?timeout_s:float -> string -> bool
(** One clean STATUS round-trip on a fresh connection. *)

val run :
  ?probe_timeout_s:float -> socket:string -> seed:int -> steps:int -> unit ->
  outcome
(** Execute [steps] seeded faults against the server listening on
    [socket], probing after each. *)

(** {1 Worker-fault matrix}

    Faults injected {e inside worker processes} of a worker-mode server
    (via its poison plan), exercising the supervision ladder the socket
    faults above cannot: SIGSTOP (a hung worker no cooperative abort can
    reach — must be SIGKILLed within stall-timeout + grace), SIGKILL
    mid-case (nothing flushed), and rlimit-triggered OOM death. Each
    step asserts the slot is reclaimed, the job is crash-accounted into
    quarantine after exactly the server's [max_crashes] budget, and the
    server answers probes throughout. *)

type worker_fault =
  | Wf_stop  (** worker SIGSTOPs itself mid-job *)
  | Wf_kill  (** worker SIGKILLs itself mid-job *)
  | Wf_oom   (** worker allocates until its memory cap kills it *)

val worker_fault_label : worker_fault -> string
(** ["sigstop"], ["sigkill"], ["oom"] — matching {!Jobrun.poison_label}
    spellings ["stop"], ["kill"], ["oom"] used in server poison plans. *)

val all_worker_faults : worker_fault list

type worker_step = {
  w_fault : worker_fault;
  w_case : string;     (** the case the server's poison plan booby-traps *)
  w_job : int;         (** submitted job id; [-1] if the step never started *)
  w_crashes : int;     (** crash count the quarantine verdict reported *)
  w_reason : string;   (** quarantine reason (names the death signal) *)
  w_reclaimed : bool;  (** no slot still references the job afterwards *)
  w_wall_s : float;    (** submit → quarantine wall time *)
  w_probe_ok : bool;
}

type worker_outcome = {
  w_steps : worker_step list;
  w_pids : int list;   (** every distinct worker pid HEALTH reported —
                           the leak check kills each after server exit
                           and expects ESRCH *)
  w_survived : bool;   (** every step: accepted, quarantined, reclaimed,
                           probe answered *)
}

val run_worker_matrix :
  ?timeout_s:float ->
  socket:string ->
  backend:string ->
  ?opts:Exec.Campaign_opts.t ->
  plan:(worker_fault * string) list ->
  unit ->
  worker_outcome
(** For each [(fault, case)] pair: submit a one-case job naming [case]
    (which the server's poison plan must map to [fault]'s poison), poll
    STATUS until the job is quarantined (bounded by [timeout_s],
    default 60s), then poll HEALTH until no slot references the job.
    Worker pids are harvested from every HEALTH reply along the way. *)

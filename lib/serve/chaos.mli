(** Seeded socket chaos harness for the repair server.

    Drives a live server socket through the faults real clients and real
    networks produce — writes split at arbitrary byte boundaries,
    connections dying mid-frame, framing headers that lie, readers that
    stop reading, connection churn — in a reproducible seeded order.
    After every fault a fresh well-behaved connection must get a clean
    STATUS reply: the property under test is that a fault's blast radius
    is one connection, never the event loop.

    In-process and deterministic by construction: the fault sequence and
    every size/variant choice comes from {!Rb_util.Rng}, so a failing
    seed is a repro, not an anecdote. *)

type fault =
  | Split_write           (** valid frame, written in 1–3-byte dribbles *)
  | Mid_frame_disconnect  (** partial frame, then close *)
  | Garbage_frame         (** zero/oversized declared length, or junk *)
  | Slowloris             (** request replies, never read them *)
  | Churn                 (** connections opened and closed idle *)

val fault_label : fault -> string

val all_faults : fault list

val plan : seed:int -> steps:int -> fault list
(** The fault sequence a given seed produces (same RNG as {!run}). *)

type step_result = {
  step : int;
  fault : fault;
  detail : string;   (** what the fault concretely did *)
  probe_ok : bool;   (** did the post-fault STATUS probe round-trip? *)
}

type outcome = {
  steps : step_result list;
  survived : bool;  (** every probe answered *)
}

val probe : ?timeout_s:float -> string -> bool
(** One clean STATUS round-trip on a fresh connection. *)

val run :
  ?probe_timeout_s:float -> socket:string -> seed:int -> steps:int -> unit ->
  outcome
(** Execute [steps] seeded faults against the server listening on
    [socket], probing after each. *)

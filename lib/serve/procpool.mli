(** Process-isolated runner pool: spawning, wire protocol and worker side.

    Each runner slot fork/execs a hidden worker subcommand of the
    server's own binary and speaks the length-prefixed {!Wire} framing
    over a socketpair dup2'd onto the worker's stdin. One worker process
    runs one job attempt, then exits: rlimit budgets are per-attempt by
    construction and no state bleeds between jobs. Unlike the in-process
    domain path, a wedged worker can always be reclaimed — the watchdog
    escalation ends in SIGKILL, which no userspace state can block.

    Protocol, all frames JSON over {!Wire.encode} framing:
    - worker → server: [Hello {pid}] handshake, [Heartbeat] liveness,
      [Case_done] per repaired case (report spliced verbatim, the exact
      bytes the results file stores), [Job_done] only after the durable
      results file is written.
    - server → worker: [Job] (id, backend, cases,
      {!Exec.Campaign_opts.to_wire_json} opts, journal dir, results path,
      poison plan), [Cancel] (the cooperative rung of the escalation
    ladder). EOF on the channel tells the worker its supervisor is gone:
    it exits, so a dead server never strands orphans. *)

type job_spec = {
  id : int;
  backend : string;
  cases : string list;
  opts : Exec.Campaign_opts.t;  (** wire subset ({!Exec.Campaign_opts}) *)
  journal_dir : string;
  results_path : string;
  domains : int option;
  poison : (string * Jobrun.poison_mode) list;
  kb_dir : string option;
      (** per-tenant persistent KB store; server-chosen (never taken off the
          client wire) and carried on this server→worker frame only *)
  kb_readonly : bool;
}

type to_worker = Job of job_spec | Cancel

type to_server =
  | Hello of { pid : int }
  | Heartbeat
  | Case_done of { seq : int; case : string; seed : int; report_json : string }
  | Job_done of {
      cases : int;
      passed : int;
      failed : string option;
      replayed : int;
    }

val to_worker_string : to_worker -> string
val to_worker_of_string : string -> (to_worker, string) result
val to_server_string : to_server -> string
val to_server_of_string : string -> (to_server, string) result

val backoff_delay : failures:int -> Rb_util.Rng.t -> float
(** Respawn delay after the [failures]-th consecutive worker death:
    exponential from 0.25s doubling to a 30s cap, scaled by a seeded
    uniform ±25% jitter draw so crashed workers never respawn in
    lockstep. *)

type worker = {
  pid : int;
  fd : Unix.file_descr;  (** supervisor's socketpair end, nonblocking *)
  dec : Wire.decoder;
  mutable alive : bool;
      (** flips false on EOF/IO error; the process itself is reaped via
          SIGCHLD + [waitpid] *)
}

val spawn :
  argv:string array -> ?mem_mb:int -> ?cpu_s:int -> unit ->
  (worker, string) result
(** Fork/exec [argv] with the socketpair on its stdin. [mem_mb] > 0 caps
    RLIMIT_AS, [cpu_s] > 0 caps RLIMIT_CPU (both applied in the child
    before exec). [Error] is the fork/socketpair failure message — the
    caller decides whether to back off or fall back in-process. *)

val send : worker -> to_worker -> bool
(** Best-effort framed write, bounded at ~0.5s: control frames are tiny
    and a healthy worker keeps its socket drained. [false] means the
    worker did not take the frame — exactly the worker the SIGTERM /
    SIGKILL rungs exist for. *)

val worker_main : unit -> 'a
(** The worker process entry point (hidden CLI subcommand): Hello, one
    Job, stream cases, write durable results, Job_done, exit. Never
    returns. *)

type config = {
  socket : string;
  tenants : int;
  jobs_per_tenant : int;
  cases_per_job : int;
  backend : string;
  opts : Exec.Campaign_opts.t option;
  timeout_s : float;
  jitter_seed : int;
}

let default_config =
  { socket = "rustbrain.sock";
    tenants = 4;
    jobs_per_tenant = 4;
    cases_per_job = 2;
    backend = "llm-only";
    opts = None;
    timeout_s = 120.0;
    jitter_seed = 1 }

type outcome = {
  submitted : int;
  completed : int;
  busy : int;          (** BUSY responses absorbed (each one retried) *)
  errors : int;
  cases_done : int;
  wall_s : float;
  jobs_per_s : float;
  cases_per_s : float;
  per_tenant : (string * int) list;  (** tenant -> completed jobs *)
}

let outcome_to_json o =
  let open Rb_util.Json in
  let num i = Num (float_of_int i) in
  Obj
    [ ("submitted", num o.submitted);
      ("completed", num o.completed);
      ("busy", num o.busy);
      ("errors", num o.errors);
      ("cases_done", num o.cases_done);
      ("wall_s", Num o.wall_s);
      ("jobs_per_s", Num o.jobs_per_s);
      ("cases_per_s", Num o.cases_per_s);
      ("per_tenant", Obj (List.map (fun (t, n) -> (t, num n)) o.per_tenant)) ]

(* Per-tenant worker result, computed on its own domain. *)
type tenant_result = {
  t_name : string;
  t_completed : int;
  t_busy : int;
  t_errors : int;
  t_cases : int;
}

(* One tenant = one domain = one connection, submitting jobs back to back
   and honoring BUSY retry-after like a well-behaved client. Case lists
   rotate through the corpus so tenants do not all hit the same case. *)
let tenant_worker cfg ~index =
  let t_name = Printf.sprintf "tenant-%d" index in
  let corpus = Dataset.Corpus.all in
  let ncorpus = List.length corpus in
  let case_at i =
    (List.nth corpus ((i : int) mod ncorpus)).Dataset.Case.name
  in
  (* de-synchronizes the BUSY retry sweep (see below); seeded per tenant
     so a given load-config replays the same schedule *)
  let rng = Rb_util.Rng.create (cfg.jitter_seed + (index * 7919)) in
  match Client.connect cfg.socket with
  | Error _ ->
    { t_name; t_completed = 0; t_busy = 0; t_errors = cfg.jobs_per_tenant;
      t_cases = 0 }
  | Ok client ->
    let completed = ref 0 and busy = ref 0 and errors = ref 0 in
    let cases_done = ref 0 in
    for j = 0 to cfg.jobs_per_tenant - 1 do
      let cases =
        List.init cfg.cases_per_job (fun k ->
            case_at ((index * 37) + (j * cfg.cases_per_job) + k))
      in
      (* retry BUSY with the server's own backoff advice, bounded *)
      let rec attempt tries =
        match
          Client.request ~timeout_s:cfg.timeout_s client
            (Wire.Submit
               { tenant = t_name; backend = cfg.backend; cases = Some cases;
                 opts = cfg.opts })
        with
        | Ok (Wire.Accepted { id; _ }) -> (
          let rec wait () =
            match Client.recv ~timeout_s:cfg.timeout_s client with
            | Ok (Wire.Case { id = cid; _ }) when cid = id ->
              incr cases_done;
              wait ()
            | Ok (Wire.Done { id = did; failed; _ }) when did = id ->
              if failed = None then incr completed else incr errors
            | Ok _ -> wait ()
            | Error _ -> incr errors
          in
          wait ())
        | Ok (Wire.Busy { retry_after_ms; _ }) when tries > 0 ->
          incr busy;
          (* ±25% jitter on the server's advice: every rejected tenant
             gets the same retry_after_ms, so sleeping it exactly stampedes
             them back in lockstep to be rejected together again *)
          let jitter = 0.75 +. (0.5 *. Rb_util.Rng.float rng) in
          Unix.sleepf (float_of_int (max 1 retry_after_ms) /. 1000.0 *. jitter);
          attempt (tries - 1)
        | Ok _ | Error _ -> incr errors
      in
      attempt 50
    done;
    Client.close client;
    { t_name; t_completed = !completed; t_busy = !busy; t_errors = !errors;
      t_cases = !cases_done }

let run cfg =
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init cfg.tenants (fun i ->
        Domain.spawn (fun () -> tenant_worker cfg ~index:i))
  in
  let results = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let completed = List.fold_left (fun a r -> a + r.t_completed) 0 results in
  let cases_done = List.fold_left (fun a r -> a + r.t_cases) 0 results in
  { submitted = cfg.tenants * cfg.jobs_per_tenant;
    completed;
    busy = List.fold_left (fun a r -> a + r.t_busy) 0 results;
    errors = List.fold_left (fun a r -> a + r.t_errors) 0 results;
    cases_done;
    wall_s;
    jobs_per_s = (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
    cases_per_s =
      (if wall_s > 0.0 then float_of_int cases_done /. wall_s else 0.0);
    per_tenant = List.map (fun r -> (r.t_name, r.t_completed)) results }

type submission = {
  id : int;
  tenant : string;
  backend : string;
  cases : string list;
  opts : Exec.Campaign_opts.t;
}

type completion = { cases : int; passed : int; failed : string option }

type status = Queued | Done of completion | Cancelled

type t = {
  dir : string;
  queue_dir : string;
  results_dir : string;
  jobs_dir : string;
  statuses : (int, status) Hashtbl.t;
  subs : (int, submission) Hashtbl.t;
  mutable next_id : int;
}

let job_file t id = Filename.concat t.queue_dir (Printf.sprintf "job-%06d.json" id)
let done_file t id = Filename.concat t.queue_dir (Printf.sprintf "done-%06d.json" id)

let cancelled_file t id =
  Filename.concat t.queue_dir (Printf.sprintf "cancelled-%06d.json" id)

let results_path t id =
  Filename.concat t.results_dir (Printf.sprintf "job-%06d.jsonl" id)

let journal_dir t id = Filename.concat t.jobs_dir (Printf.sprintf "job-%06d" id)

(* -- submission codec --------------------------------------------------- *)

let render_submission s =
  Rb_util.Json.(
    to_string
      (Obj
         [ ("id", Num (float_of_int s.id));
           ("tenant", Str s.tenant);
           ("backend", Str s.backend);
           ("cases", List (List.map (fun c -> Str c) s.cases));
           ("opts", Exec.Campaign_opts.to_wire_json s.opts) ]))

let parse_submission text =
  let ( let* ) r f = Result.bind r f in
  let open Rb_util.Json in
  let* json = parse text in
  let field name conv =
    match Option.bind (member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "submission field %S missing or mistyped" name)
  in
  let* id = field "id" to_int in
  let* tenant = field "tenant" to_str in
  let* backend = field "backend" to_str in
  let* cases = field "cases" to_list in
  let* cases =
    List.fold_right
      (fun c acc ->
        let* acc = acc in
        match to_str c with
        | Some s -> Ok (s :: acc)
        | None -> Error "non-string case name")
      cases (Ok [])
  in
  let* opts =
    match member "opts" json with
    | Some o -> Exec.Campaign_opts.of_wire_json o
    | None -> Ok Exec.Campaign_opts.default
  in
  Ok { id; tenant; backend; cases; opts }

let render_completion id c =
  Rb_util.Json.(
    to_string
      (Obj
         ([ ("id", Num (float_of_int id));
            ("cases", Num (float_of_int c.cases));
            ("passed", Num (float_of_int c.passed)) ]
         @ match c.failed with None -> [] | Some m -> [ ("failed", Str m) ])))

let parse_completion text =
  match Rb_util.Json.parse text with
  | Error _ -> None
  | Ok j ->
    let open Rb_util.Json in
    let int name = Option.bind (member name j) to_int in
    (match (int "cases", int "passed") with
    | Some cases, Some passed ->
      Some { cases; passed; failed = Option.bind (member "failed" j) to_str }
    | _ -> None)

(* -- scan / open -------------------------------------------------------- *)

let scan_ids dir prefix =
  (match Sys.readdir dir with
  | files -> Array.to_list files
  | exception Sys_error _ -> [])
  |> List.filter_map (fun f ->
       let pn = String.length prefix in
       if
         String.length f = pn + 11
         && String.sub f 0 pn = prefix
         && Filename.check_suffix f ".json"
       then int_of_string_opt (String.sub f pn 6)
       else None)

let open_dir ~dir =
  let t =
    { dir;
      queue_dir = Filename.concat dir "queue";
      results_dir = Filename.concat dir "results";
      jobs_dir = Filename.concat dir "jobs";
      statuses = Hashtbl.create 64;
      subs = Hashtbl.create 64;
      next_id = 0 }
  in
  Rb_util.Fsfile.mkdir_p t.queue_dir;
  Rb_util.Fsfile.mkdir_p t.results_dir;
  Rb_util.Fsfile.mkdir_p t.jobs_dir;
  (* Admission records are the source of truth; markers refine them. An
     unparseable admission record (torn by a crash mid-write is impossible
     — writes are atomic — but disks rot) is skipped, not fatal. *)
  List.iter
    (fun id ->
      match Option.map parse_submission (Rb_util.Fsfile.read (job_file t id)) with
      | Some (Ok sub) ->
        Hashtbl.replace t.subs id sub;
        Hashtbl.replace t.statuses id Queued
      | Some (Error _) | None -> ())
    (List.sort compare (scan_ids t.queue_dir "job-"));
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id then
        match
          Option.bind (Rb_util.Fsfile.read (done_file t id)) parse_completion
        with
        | Some c -> Hashtbl.replace t.statuses id (Done c)
        | None -> ())
    (scan_ids t.queue_dir "done-");
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id then Hashtbl.replace t.statuses id Cancelled)
    (scan_ids t.queue_dir "cancelled-");
  t.next_id <-
    1 + Hashtbl.fold (fun id _ acc -> max id acc) t.subs (-1);
  t

let dir t = t.dir

let submission t id = Hashtbl.find_opt t.subs id

let status t id = Hashtbl.find_opt t.statuses id

let pending t =
  Hashtbl.fold
    (fun id s acc -> match s with Queued -> id :: acc | _ -> acc)
    t.statuses []
  |> List.sort compare
  |> List.map (fun id -> Hashtbl.find t.subs id)

let counts t =
  Hashtbl.fold
    (fun _ s (q, d, c) ->
      match s with
      | Queued -> (q + 1, d, c)
      | Done _ -> (q, d + 1, c)
      | Cancelled -> (q, d, c + 1))
    t.statuses (0, 0, 0)

(* -- transitions (each durable before it is acknowledged) ---------------- *)

let admit t ~tenant ~backend ~cases ~opts =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sub = { id; tenant; backend; cases; opts } in
  (* write_atomic fsyncs the record and its directory entry: once this
     returns, a kill -9 cannot lose the acceptance we are about to send *)
  Rb_util.Fsfile.write_atomic (job_file t id) (render_submission sub);
  Hashtbl.replace t.subs id sub;
  Hashtbl.replace t.statuses id Queued;
  sub

let cancel t id =
  match Hashtbl.find_opt t.statuses id with
  | Some Queued ->
    Rb_util.Fsfile.write_atomic (cancelled_file t id)
      (Printf.sprintf {|{"id":%d}|} id);
    Hashtbl.replace t.statuses id Cancelled;
    true
  | _ -> false

let write_results t id reports =
  Rb_util.Fsfile.write_channel (results_path t id) (fun oc ->
      Rustbrain.Report.emit_jsonl oc (List.to_seq reports))

let complete t id completion =
  Rb_util.Fsfile.write_atomic (done_file t id) (render_completion id completion);
  Hashtbl.replace t.statuses id (Done completion)

let read_results t id = Rb_util.Fsfile.read (results_path t id)

(* Journaled case-repairs for a running job — progress visible across a
   kill because each record segment is its own durable file. *)
let progress t id =
  match Sys.readdir (journal_dir t id) with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if
          String.length f > 4
          && String.sub f 0 4 = "rec-"
          && Filename.check_suffix f ".json"
        then n + 1
        else n)
      0 files
